(* Brightening attacks on an image classifier (§7.1).

   Trains the MNIST-like 3x100 benchmark network, builds brightening
   attack properties at increasing severities around one test image, and
   decides each with Charon.  Small perturbations verify; past some
   severity the attack genuinely flips the classification and Charon
   returns the adversarial image.

   Run with:  dune exec examples/mnist_brightening.exe *)

open Linalg

let () =
  Format.printf "training the mnist-3x100 benchmark network...@.";
  let entry = Datasets.Suite.build_network ~seed:2019 "mnist-3x100" in
  let net = entry.Datasets.Suite.net in
  Format.printf "%s: %s, test accuracy %.2f@." entry.Datasets.Suite.name
    entry.Datasets.Suite.description entry.Datasets.Suite.test_accuracy;

  (* Scan noisy test images for one that sits near a decision boundary:
     robust to nothing-much but flipped by the full brightening attack.
     Such borderline images are exactly where the interplay of
     counterexample search and proof search is interesting. *)
  let rng = Rng.create 99 in
  let spec =
    { entry.Datasets.Suite.image_spec with Datasets.Synth_images.noise = 0.45 }
  in
  let tau = 0.5 in
  let rec pick_borderline attempts =
    if attempts > 200 then
      failwith "no borderline image found; try another seed"
    else begin
      let image = Datasets.Synth_images.sample rng spec (attempts mod 10) in
      let label = Nn.Network.classify net image in
      let full = Datasets.Brightening.region image ~tau ~severity:1.0 in
      let obj = Optim.Objective.create net ~k:label in
      let _, f = Optim.Pgd.minimize ~rng:(Rng.create 5) obj full in
      let small = Datasets.Brightening.region image ~tau ~severity:0.05 in
      let small_margin =
        Absint.Analyzer.margin_lower net small ~k:label Domains.Domain.zonotope
      in
      (* Falsifiable under the full attack, provably robust to the weak
         one: a genuine transition. *)
      if f <= 0.0 && small_margin > 0.0 then (image, label)
      else pick_borderline (attempts + 1)
    end
  in
  let image, label = pick_borderline 0 in
  Format.printf "borderline test image found, classified as %d@." label;

  let policy = Charon.Policy.default in
  List.iter
    (fun severity ->
      let prop =
        Datasets.Brightening.property
          ~name:(Printf.sprintf "brighten-%.2f" severity)
          net image ~tau ~severity
      in
      let rng = Rng.create 1 in
      let report =
        Charon.Verify.run
          ~budget:(Common.Budget.of_seconds 20.0)
          ~rng ~policy net prop
      in
      (match report.Charon.Verify.outcome with
      | Common.Outcome.Verified ->
          Format.printf
            "severity %.2f: robust (proved in %.2fs, %d regions)@." severity
            report.Charon.Verify.elapsed report.Charon.Verify.nodes
      | Common.Outcome.Refuted x ->
          let adversarial_class = Nn.Network.classify net x in
          Format.printf
            "severity %.2f: NOT robust - brightened image classified %d \
             (found in %.2fs, perturbed %d pixels)@."
            severity adversarial_class report.Charon.Verify.elapsed
            (let moved = ref 0 in
             Array.iteri
               (fun i v -> if abs_float (v -. image.(i)) > 1e-9 then incr moved)
               x;
             !moved)
      | Common.Outcome.Timeout ->
          Format.printf "severity %.2f: timeout@." severity
      | Common.Outcome.Unknown ->
          Format.printf "severity %.2f: unknown@." severity);
      ())
    [ 0.05; 0.15; 0.3; 0.5; 0.75; 1.0 ];

  (* Show what pure optimization finds on the full attack, for
     comparison with the decision procedure. *)
  let prop = Datasets.Brightening.property net image ~tau ~severity:1.0 in
  let obj = Optim.Objective.create net ~k:label in
  let x, f =
    Optim.Pgd.minimize ~rng:(Rng.create 2) obj prop.Common.Property.region
  in
  Format.printf "@.PGD alone on the full attack: F(x) = %.4f -> %s@." f
    (if f <= 0.0 then
       Printf.sprintf "adversarial (class %d)" (Nn.Network.classify net x)
     else "no counterexample found");

  (* And what the incomplete AI2 baseline can say about the severities
     Charon proved. *)
  let small = Datasets.Brightening.property net image ~tau ~severity:0.05 in
  let verdict =
    Absint.Analyzer.analyze net small.Common.Property.region
      ~k:small.Common.Property.target Domains.Domain.zonotope_join
  in
  Format.printf "AI2-Zonotope on severity 0.05: %s@."
    (match verdict with
    | Absint.Analyzer.Verified -> "verified"
    | Absint.Analyzer.Unknown -> "unknown (cannot refine or falsify)")
