(* A head-to-head of every verifier in the repository on a handful of
   brightening-attack benchmarks — the §7 evaluation in miniature, on
   one trained network.

   Tools: Charon (learned-policy and default), AI2 with two domains,
   ReluVal, Reluplex (with and without LP presolve), and the
   Charon+Reluplex portfolio of §9's future-work sketch.

   Run with:  dune exec examples/tool_shootout.exe *)

let timeout = 2.0

let () =
  Printf.printf "training the benchmark network...\n%!";
  let entry = Datasets.Suite.build_network ~seed:2019 "mnist-3x100" in
  let props = Datasets.Suite.properties ~seed:2019 entry ~count:8 in
  let workload = [ (entry, props) ] in

  Printf.printf "learning a verification policy...\n%!";
  let policy = Experiments.Training.learned_policy ~seed:2019 () in

  let reluplex_presolve =
    {
      Experiments.Tool.name = "Reluplex+Presolve";
      supports_conv = false;
      can_falsify = true;
      run =
        (fun ~seed:_ net prop ~budget ->
          (Reluplex.run
             ~config:{ Reluplex.default_config with Reluplex.presolve = true }
             ~budget net prop)
            .Reluplex.outcome);
    }
  in
  let tools =
    [
      Experiments.Tool.charon ~policy ();
      Experiments.Tool.ai2 Domains.Domain.zonotope_join;
      Experiments.Tool.ai2 (Domains.Domain.powerset Domains.Domain.Zonotope_join_base 64);
      Experiments.Tool.reluval;
      Experiments.Tool.reluplex;
      reluplex_presolve;
      Experiments.Tool.charon_then_reluplex ~policy ~split:0.5 ();
    ]
  in
  let results =
    Experiments.Runner.run_suite ~seed:2019 ~timeout tools workload
  in

  (* One row per property, one column per tool. *)
  Printf.printf "\n%-22s" "property";
  List.iter
    (fun (t : Experiments.Tool.t) ->
      Printf.printf " %18s" t.Experiments.Tool.name)
    tools;
  print_newline ();
  List.iter
    (fun (p : Common.Property.t) ->
      Printf.printf "%-22s" p.Common.Property.name;
      List.iter
        (fun (t : Experiments.Tool.t) ->
          let r =
            List.find
              (fun (r : Experiments.Runner.result) ->
                r.Experiments.Runner.tool = t.Experiments.Tool.name
                && r.Experiments.Runner.property = p.Common.Property.name)
              results
          in
          Printf.printf " %18s"
            (Printf.sprintf "%s/%.2fs"
               (Common.Outcome.label r.Experiments.Runner.outcome)
               r.Experiments.Runner.time))
        tools;
      print_newline ())
    props;

  (* Summary and the cross-tool consistency check. *)
  Printf.printf "\n%-22s %8s %10s\n" "tool" "solved" "total-time";
  List.iter
    (fun (t : Experiments.Tool.t) ->
      let rs = Experiments.Runner.by_tool results t.Experiments.Tool.name in
      Printf.printf "%-22s %8d %9.2fs\n" t.Experiments.Tool.name
        (List.length (Experiments.Runner.solved rs))
        (List.fold_left
           (fun acc (r : Experiments.Runner.result) ->
             acc +. r.Experiments.Runner.time)
           0.0 rs))
    tools;
  Experiments.Figures.consistency results;

  (* Everyone's refutations are real counterexamples. *)
  let obj_of (p : Common.Property.t) =
    Optim.Objective.create entry.Datasets.Suite.net ~k:p.Common.Property.target
  in
  List.iter
    (fun (r : Experiments.Runner.result) ->
      match r.Experiments.Runner.outcome with
      | Common.Outcome.Refuted x ->
          let p =
            List.find
              (fun (p : Common.Property.t) ->
                p.Common.Property.name = r.Experiments.Runner.property)
              props
          in
          assert (Optim.Objective.value (obj_of p) x <= 1e-4)
      | _ -> ())
    results;
  Printf.printf "all refutation witnesses re-checked concretely.\n"
