(* Quickstart: build a network, state a robustness property, and decide
   it with Charon.

   This walks through Example 2.2 of the paper: a two-layer network with
   one input and two classes.  The network classifies every point of
   [-1, 1] as class 1, so that property verifies; widening the region to
   [-1, 2] makes the property false and Charon produces a concrete
   counterexample.

   Run with:  dune exec examples/quickstart.exe *)

open Linalg

let decide net prop =
  let rng = Rng.create 2019 in
  let report =
    Charon.Verify.run
      ~budget:(Common.Budget.of_seconds 10.0)
      ~rng ~policy:Charon.Policy.default net prop
  in
  Format.printf "%a -> %a  (%.3fs, %d nodes)@." Common.Property.pp prop
    Common.Outcome.pp report.Charon.Verify.outcome report.Charon.Verify.elapsed
    report.Charon.Verify.nodes;
  report.Charon.Verify.outcome

let () =
  (* The network of Example 2.2:
       N(x) = W2 (ReLU (W1 x + b1)) + b2. *)
  let net = Nn.Init.example_2_2 () in
  print_string (Nn.Network.describe net);

  (* N(0) = [1; 3], so 0 is classified as class 1. *)
  let scores = Nn.Network.eval net [| 0.0 |] in
  Format.printf "N(0) = %a, class %d@." Vec.pp scores
    (Nn.Network.classify net [| 0.0 |]);

  (* The property ([-1, 1], 1) holds... *)
  let robust =
    Common.Property.create ~name:"robust-on-[-1,1]"
      ~region:(Domains.Box.create ~lo:[| -1.0 |] ~hi:[| 1.0 |])
      ~target:1 ()
  in
  assert (decide net robust = Common.Outcome.Verified);

  (* ... but N(2) = [8; 6] is class 0, so ([-1, 2], 1) does not. *)
  let fragile =
    Common.Property.create ~name:"not-robust-on-[-1,2]"
      ~region:(Domains.Box.create ~lo:[| -1.0 |] ~hi:[| 2.0 |])
      ~target:1 ()
  in
  match decide net fragile with
  | Common.Outcome.Refuted x ->
      Format.printf "counterexample x = %a classified as %d@." Vec.pp x
        (Nn.Network.classify net x)
  | Common.Outcome.Verified | Common.Outcome.Timeout | Common.Outcome.Unknown
    ->
      failwith "expected a counterexample"
