(* Example 2.3 / Figure 4: a property that the plain (AI2) zonotope
   domain cannot verify but a 2-disjunct powerset of zonotopes can.

   The first ReLU unit crosses zero on the input region, so the plain
   domain joins the two branch zonotopes into one that contains the
   unsafe point near [1.2; 1.2] of Figure 4; keeping the branches as
   separate disjuncts excludes it.

   Run with:  dune exec examples/zonotope_vs_powerset.exe *)

open Domains

let () =
  let net = Nn.Init.example_2_3 () in
  print_string (Nn.Network.describe net);
  let region = Box.create ~lo:[| 0.0; 0.0 |] ~hi:[| 1.0; 1.0 |] in
  let target = 1 (* class B *) in

  let report name spec =
    let stats = Absint.Analyzer.fresh_stats () in
    let margin = Absint.Analyzer.margin_lower ~stats net region ~k:target spec in
    Format.printf "%-28s margin %+.4f -> %s@." name margin
      (if margin > 0.0 then "verified" else "cannot verify");
    margin
  in

  Format.printf "@.Property: all of [0,1]^2 is classified as class B.@.";
  let interval = report "interval (I1)" Domain.interval in
  let zj1 = report "AI2 zonotope (ZJ1)" Domain.zonotope_join in
  let zj2 =
    report "2 zonotope disjuncts (ZJ2)"
      (Domain.powerset Domain.Zonotope_join_base 2)
  in
  let z1 = report "DeepZ zonotope (Z1)" Domain.zonotope in

  (* The paper's Figure 4 story: the joined zonotope admits an unsafe
     output point, the powerset does not. *)
  assert (interval <= 0.0);
  assert (zj1 <= 0.0);
  assert (zj2 > 0.0);
  Format.printf
    "@.As in Figure 4: the joined zonotope includes unsafe outputs, the@.\
     powerset of two zonotopes proves the property.  (The DeepZ-style@.\
     transformer, margin %+.2f, is tight enough on its own here — see@.\
     DESIGN.md on transformer variants.)@."
    z1;

  (* Show the abstract output bounds each way. *)
  let show_bounds name spec =
    let bounds = Absint.Analyzer.output_bounds net region spec in
    Format.printf "%-28s" name;
    Array.iteri
      (fun i (lo, hi) -> Format.printf " y%d in [%+.2f, %+.2f]" i lo hi)
      bounds;
    Format.printf "@."
  in
  Format.printf "@.Abstract output bounds:@.";
  show_bounds "AI2 zonotope" Domain.zonotope_join;
  show_bounds "2-disjunct powerset" (Domain.powerset Domain.Zonotope_join_base 2);

  (* Finally, sanity-check concretely: the property is actually true. *)
  let rng = Linalg.Rng.create 42 in
  let prop = Common.Property.create ~region ~target () in
  match Common.Property.check_samples rng net prop ~n:20_000 with
  | None -> Format.printf "@.20k random samples found no violation, as expected.@."
  | Some x ->
      Format.printf "@.unexpected violation at %a!@." Linalg.Vec.pp x;
      exit 1
