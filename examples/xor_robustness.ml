(* Example 3.1 / Figure 5: verifying the XOR network with abstraction
   refinement, watching the splits the algorithm makes.

   The property: every input in [0.3, 0.7]^2 is classified as class 1.
   With the AI2-style zonotope transformer the whole region cannot be
   proved in one shot, so the verifier splits the input region and
   proves the pieces separately — exactly the workflow Figure 5 draws.

   Run with:  dune exec examples/xor_robustness.exe *)

open Linalg
open Domains

(* A verbose re-enactment of Algorithm 1 with a fixed (AI2-zonotope)
   domain, printing each region and the verdict, to visualise the
   recursion tree. *)
let rec verify_verbose net prop region depth =
  let indent = String.make (2 * depth) ' ' in
  let target = prop.Common.Property.target in
  let margin = Absint.Analyzer.margin_lower net region ~k:target Domain.zonotope_join in
  if margin > 0.0 then begin
    Format.printf "%s%a : verified (margin %.3f)@." indent Box.pp region margin;
    true
  end
  else begin
    Format.printf "%s%a : needs refinement (margin %.3f)@." indent Box.pp
      region margin;
    let left, right = Box.bisect region in
    verify_verbose net prop left (depth + 1)
    && verify_verbose net prop right (depth + 1)
  end

let () =
  let net = Nn.Init.xor () in
  Format.printf "The XOR network (Figure 3):@.%s@." (Nn.Network.describe net);

  (* Check the truth table. *)
  List.iter
    (fun (a, b) ->
      Format.printf "  classify [%g %g] = %d@." a b
        (Nn.Network.classify net [| a; b |]))
    [ (0.0, 0.0); (0.0, 1.0); (1.0, 0.0); (1.0, 1.0) ];

  let region = Box.create ~lo:[| 0.3; 0.3 |] ~hi:[| 0.7; 0.7 |] in
  let prop =
    Common.Property.create ~name:"example-3.1" ~region ~target:1 ()
  in

  Format.printf "@.Refinement trace with the AI2 zonotope domain:@.";
  assert (verify_verbose net prop region 0);

  (* The real algorithm gets there too, using its policy to pick domains
     and split points. *)
  Format.printf "@.Full Charon run:@.";
  let rng = Rng.create 7 in
  let report =
    Charon.Verify.run ~rng ~policy:Charon.Policy.default net prop
  in
  Format.printf "outcome: %a after %d nodes, %d abstract runs@."
    Common.Outcome.pp report.Charon.Verify.outcome report.Charon.Verify.nodes
    report.Charon.Verify.analyze_calls;
  List.iter
    (fun (spec, n) ->
      Format.printf "  domain %a chosen %d times@." Domain.pp spec n)
    report.Charon.Verify.domains_used;

  (* And the complementary property is refuted with a witness. *)
  let bad = { prop with Common.Property.target = 0 } in
  let report = Charon.Verify.run ~rng ~policy:Charon.Policy.default net bad in
  match report.Charon.Verify.outcome with
  | Common.Outcome.Refuted x ->
      Format.printf "negated property refuted at %a (class %d)@." Vec.pp x
        (Nn.Network.classify net x)
  | _ -> failwith "expected refutation"
