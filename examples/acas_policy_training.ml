(* The training phase (§4 and §6): learn a verification policy with
   Bayesian optimization on 12 robustness properties of an ACAS-Xu-like
   collision-avoidance network, then compare the learned policy against
   the hand-crafted default and static single-domain strategies on
   held-out properties.

   Run with:  dune exec examples/acas_policy_training.exe *)

open Linalg

let cost_of config problems policy =
  Charon.Learn.cost config ~seed:5 problems policy

let () =
  Format.printf "building the ACAS-like advisory network...@.";
  let rng = Rng.create 2019 in
  let net = Datasets.Acas.network rng ~hidden:[ 16; 16; 16 ] in
  let samples = Datasets.Acas.dataset (Rng.create 3) ~n:1000 in
  Format.printf "advisory accuracy vs oracle: %.2f@."
    (Nn.Train.accuracy net samples);

  let props = Datasets.Acas.training_properties rng net ~n:12 ~radius:0.05 in
  Format.printf "training properties:@.";
  List.iter (fun p -> Format.printf "  %a@." Common.Property.pp p) props;
  let problems =
    List.map (fun property -> { Charon.Learn.net; property }) props
  in

  (* Learn θ by Bayesian optimization over the policy parameter space. *)
  let config =
    {
      Charon.Learn.default_config with
      Charon.Learn.per_problem = Charon.Learn.Steps 3000;
      bopt =
        {
          Bayesopt.Bopt.default_config with
          Bayesopt.Bopt.init_samples = 10;
          iterations = 20;
        };
    }
  in
  Format.printf "@.running Bayesian optimization (%d evaluations)...@."
    (config.Charon.Learn.bopt.Bayesopt.Bopt.init_samples
    + config.Charon.Learn.bopt.Bayesopt.Bopt.iterations);
  let result = Charon.Learn.train ~config ~rng:(Rng.create 123) problems in

  (* Show how the incumbent improved over the run. *)
  let best = ref neg_infinity in
  List.iteri
    (fun i (e : Bayesopt.Bopt.evaluation) ->
      if e.Bayesopt.Bopt.value > !best then begin
        best := e.Bayesopt.Bopt.value;
        Format.printf "  eval %2d: new best objective %.0f@." (i + 1)
          e.Bayesopt.Bopt.value
      end)
    result.Charon.Learn.bopt.Bayesopt.Bopt.history;

  (* Compare policies on the training objective (total solving cost in
     abstract steps; lower is better). *)
  Format.printf "@.total cost on the 12 problems (abstract steps, lower is \
                 better):@.";
  let candidates =
    [
      ("learned (Bayesian opt)", result.Charon.Learn.policy);
      ("hand-crafted default", Charon.Policy.default);
      ("always zonotope + bisect", Charon.Policy.fixed_domain Domains.Domain.zonotope);
      ("always interval + bisect", Charon.Policy.fixed_domain Domains.Domain.interval);
    ]
  in
  List.iter
    (fun (name, policy) ->
      Format.printf "  %-26s %8.0f@." name (cost_of config problems policy))
    candidates;

  (* Persist the learned policy for the CLI / benchmarks. *)
  Charon.Policy.save "acas_policy.txt" result.Charon.Learn.policy;
  Format.printf "@.saved learned policy to acas_policy.txt@."
