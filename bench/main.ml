(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§7) and runs Bechamel micro-benchmarks of the system's
   components.

   Usage:
     dune exec bench/main.exe                     # everything, quick scale
     dune exec bench/main.exe -- fig6             # one figure
     dune exec bench/main.exe -- all --per-network 86 --timeout 10
   Modes: all fig6 cactus fig14 fig15 rq2 ablation delta curve replicate
   micro.
   Options: --per-network N (properties per net), --timeout S (per
   benchmark), --seed S, --no-learn (skip policy training),
   --workers/-j N (worker domains for the suite runs; JSON artifacts
   record the worker count and wall clock per run). *)

open Experiments

type options = {
  mode : string;
  per_network : int;
  timeout : float;
  seed : int;
  learn : bool;
  seeds : int;  (** replications for the summary experiment *)
  workers : int;  (** worker domains for suite runs (1 = sequential) *)
}

let parse_options () =
  let opts =
    ref
      {
        mode = "all";
        per_network = 12;
        timeout = 1.0;
        seed = 2019;
        learn = true;
        seeds = 1;
        workers = 1;
      }
  in
  let rec go = function
    | [] -> ()
    | "--per-network" :: v :: rest ->
        opts := { !opts with per_network = int_of_string v };
        go rest
    | "--timeout" :: v :: rest ->
        opts := { !opts with timeout = float_of_string v };
        go rest
    | "--seed" :: v :: rest ->
        opts := { !opts with seed = int_of_string v };
        go rest
    | "--no-learn" :: rest ->
        opts := { !opts with learn = false };
        go rest
    | "--seeds" :: v :: rest ->
        opts := { !opts with seeds = int_of_string v };
        go rest
    | ("--workers" | "-j") :: v :: rest ->
        let workers =
          match int_of_string_opt v with
          | Some w when w >= 1 -> w
          | _ ->
              Printf.eprintf
                "bench: --workers expects a positive integer (got %s)\n" v;
              exit 2
        in
        opts := { !opts with workers };
        go rest
    | mode :: rest ->
        opts := { !opts with mode };
        go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  !opts

let artifacts = "_artifacts"

let progress (r : Runner.result) =
  Printf.eprintf "  [%s] %s/%s: %s (%.2fs)\n%!" r.Runner.tool r.Runner.network
    r.Runner.property
    (Common.Outcome.label r.Runner.outcome)
    r.Runner.time

let policy_of opts =
  if opts.learn then begin
    Printf.printf "training verification policy on ACAS-like problems...\n%!";
    let t0 = Unix.gettimeofday () in
    let policy =
      Training.learned_policy
        ~cache:(Filename.concat artifacts "policy.txt")
        ~seed:opts.seed ()
    in
    Printf.printf "policy ready (%.1fs)\n%!" (Unix.gettimeofday () -. t0);
    policy
  end
  else Charon.Policy.default

let workload opts =
  Printf.printf "building benchmark suite (7 networks, %d properties each)...\n%!"
    opts.per_network;
  let t0 = Unix.gettimeofday () in
  let w =
    Datasets.Suite.benchmark ~cache_dir:artifacts ~seed:opts.seed
      ~per_network:opts.per_network ()
  in
  List.iter
    (fun ((e : Datasets.Suite.entry), _) ->
      Printf.printf "  %-14s %-45s acc=%.2f\n" e.Datasets.Suite.name
        e.Datasets.Suite.description e.Datasets.Suite.test_accuracy)
    w;
  Printf.printf "suite ready (%.1fs)\n%!" (Unix.gettimeofday () -. t0);
  w

let non_conv w =
  List.filter
    (fun ((e : Datasets.Suite.entry), _) -> not e.Datasets.Suite.convolutional)
    w

(* Suite runs go through one wrapper so every experiment also leaves a
   JSON record with the worker count, end-to-end wall clock, and the
   aggregate telemetry counters for that run — the fields BENCH_*.json
   archives and bin/benchdiff.exe use to track speedup and work done.
   Metrics are reset per suite so each JSON's counters cover exactly
   its own run. *)
let timed_suite opts ~json tools w =
  Telemetry.enable ();
  Telemetry.Metrics.reset ();
  let t0 = Unix.gettimeofday () in
  let results =
    Runner.run_suite ~progress ~jobs:opts.workers ~seed:opts.seed
      ~timeout:opts.timeout tools w
  in
  let wall = Unix.gettimeofday () -. t0 in
  Printf.printf "suite run done: %.1fs wall with %d worker(s)\n%!" wall
    opts.workers;
  Runner.save_json ~workers:opts.workers ~wall_seconds:wall
    ~counters:(Telemetry.Metrics.counters ())
    (Filename.concat artifacts json)
    results;
  results

(* Figures 6-13 share one run of {Charon, AI2-Zonotope, AI2-Bounded64}. *)
let run_ai2_experiment opts policy w =
  Printf.printf "\nrunning Charon vs AI2 (%d benchmarks x 3 tools)...\n%!"
    (List.fold_left (fun acc (_, ps) -> acc + List.length ps) 0 w);
  timed_suite opts ~json:"ai2_results.json" (Tool.all_figure6 ~policy) w

(* Figures 14-15 and §7.3 share one run of {Charon, ReluVal, Reluplex}
   on the fully-connected networks. *)
let run_complete_experiment opts policy w =
  let w = non_conv w in
  Printf.printf "\nrunning Charon vs complete tools (%d benchmarks x 3 tools)...\n%!"
    (List.fold_left (fun acc (_, ps) -> acc + List.length ps) 0 w);
  timed_suite opts ~json:"complete_results.json" (Tool.all_complete ~policy) w

(* Bechamel micro-benchmarks: one group per paper artefact, measuring
   the dominant kernel behind it. *)
let micro opts =
  let open Bechamel in
  let seed = opts.seed in
  let entry = Datasets.Suite.build_network ~seed "mnist-3x100" in
  let net = entry.Datasets.Suite.net in
  let prop = List.hd (Datasets.Suite.properties ~seed entry ~count:1) in
  let region = prop.Common.Property.region in
  let k = prop.Common.Property.target in
  let margin spec () =
    ignore (Absint.Analyzer.margin_lower net region ~k spec)
  in
  let pgd () =
    let rng = Linalg.Rng.create seed in
    let obj = Optim.Objective.create net ~k in
    ignore (Optim.Pgd.minimize ~rng obj region)
  in
  let gp_fit () =
    let rng = Linalg.Rng.create seed in
    let box =
      Domains.Box.create ~lo:(Linalg.Vec.create 5 (-1.0))
        ~hi:(Linalg.Vec.create 5 1.0)
    in
    let inputs = Bayesopt.Latin.sample rng box ~n:24 in
    let targets = Array.map (fun x -> Linalg.Vec.norm2 x) inputs in
    ignore
      (Bayesopt.Gp.fit (Bayesopt.Kernel.matern52 ~length:0.3 ()) ~inputs ~targets)
  in
  let symbolic () = ignore (Reluval.Symbolic_interval.propagate net region) in
  let lp () =
    let enc = Reluplex.Encoding.build net region in
    let lp = Simplex.Lp.create ~nvars:enc.Reluplex.Encoding.nvars in
    Array.iteri
      (fun i (lo, hi) -> Simplex.Lp.set_bounds lp i ~lo ~hi)
      enc.Reluplex.Encoding.var_bounds;
    Array.iter
      (fun (row, b) -> Simplex.Lp.add_eq lp row b)
      enc.Reluplex.Encoding.equalities;
    ignore
      (Simplex.Lp.maximize lp [ (enc.Reluplex.Encoding.output_vars.(0), 1.0) ])
  in
  let charon () =
    let rng = Linalg.Rng.create seed in
    ignore
      (Charon.Verify.run ~budget:(Common.Budget.of_steps 500) ~rng
         ~policy:Charon.Policy.default net prop)
  in
  let tests =
    [
      Test.make_grouped ~name:"fig6-domains"
        [
          Test.make ~name:"interval" (Staged.stage (margin Domains.Domain.interval));
          Test.make ~name:"zonotope" (Staged.stage (margin Domains.Domain.zonotope));
          Test.make ~name:"ai2-zonotope"
            (Staged.stage (margin Domains.Domain.zonotope_join));
          Test.make ~name:"ai2-bounded4"
            (Staged.stage
               (margin (Domains.Domain.powerset Domains.Domain.Zonotope_join_base 4)));
        ];
      Test.make_grouped ~name:"fig14-solvers"
        [
          Test.make ~name:"charon-500steps" (Staged.stage charon);
          Test.make ~name:"reluval-symbolic-pass" (Staged.stage symbolic);
          Test.make ~name:"reluplex-lp-relaxation" (Staged.stage lp);
        ];
      Test.make_grouped ~name:"training-phase"
        [
          Test.make ~name:"pgd-counterexample-search" (Staged.stage pgd);
          Test.make ~name:"gp-fit-24pts" (Staged.stage gp_fit);
        ];
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances test in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw) instances
    in
    Analyze.merge ols instances results
  in
  Printf.printf "\n== Bechamel micro-benchmarks ==\n%!";
  List.iter
    (fun group ->
      let results = benchmark group in
      Hashtbl.iter
        (fun _measure tbl ->
          Hashtbl.iter
            (fun name ols ->
              match Analyze.OLS.estimates ols with
              | Some [ t ] -> Printf.printf "%-45s %12.1f ns/run\n" name t
              | Some _ | None -> Printf.printf "%-45s (no estimate)\n" name)
            tbl)
        results)
    tests

let () =
  let opts = parse_options () in
  (try if not (Sys.file_exists artifacts) then Sys.mkdir artifacts 0o755
   with Sys_error _ -> ());
  Printf.printf
    "charon benchmark harness: mode=%s per-network=%d timeout=%.1fs seed=%d\n%!"
    opts.mode opts.per_network opts.timeout opts.seed;
  match opts.mode with
  | "micro" -> micro opts
  | "replicate" ->
      (* Statistical replication of the Figure 6 headline across seeds:
         solved counts per tool, mean and standard deviation. *)
      let policy = policy_of opts in
      let runs =
        List.init (Stdlib.max 1 opts.seeds) (fun i ->
            let seed = opts.seed + (1000 * i) in
            let w =
              Datasets.Suite.benchmark ~seed ~per_network:opts.per_network ()
            in
            Printf.printf "seed %d...
%!" seed;
            Runner.run_suite ~jobs:opts.workers ~seed ~timeout:opts.timeout
              (Tool.all_figure6 ~policy) w)
      in
      Printf.printf "
== Figure 6 replicated over %d seeds ==
"
        (List.length runs);
      Printf.printf "%-16s %14s %14s
" "tool" "solved (mean)" "stddev";
      List.iter
        (fun tool ->
          let counts =
            Array.of_list
              (List.map
                 (fun results ->
                   float_of_int
                     (List.length (Runner.solved (Runner.by_tool results tool))))
                 runs)
          in
          Printf.printf "%-16s %14.1f %14.2f
" tool
            (Linalg.Stats.mean counts)
            (Linalg.Stats.stddev counts))
        [ "Charon"; "AI2-Zonotope"; "AI2-Bounded64" ]
  | "fig6" | "cactus" ->
      let policy = policy_of opts in
      let results = run_ai2_experiment opts policy (workload opts) in
      Figures.fig6 results;
      Figures.cactus_per_network results;
      Figures.consistency results
  | "fig14" | "fig15" | "rq2" ->
      let policy = policy_of opts in
      let results = run_complete_experiment opts policy (workload opts) in
      Figures.fig14 results;
      Figures.fig15 results;
      Figures.rq2 results;
      Figures.consistency results
  | "curve" ->
      let policy = policy_of opts in
      let entry = Datasets.Suite.build_network ~seed:opts.seed "mnist-3x100" in
      let rng = Linalg.Rng.create (opts.seed + 5) in
      let spec =
        { entry.Datasets.Suite.image_spec with Datasets.Synth_images.noise = 0.45 }
      in
      let images =
        Array.init 20 (fun i -> Datasets.Synth_images.sample rng spec (i mod 10))
      in
      let points =
        Robustness_curve.compute ~timeout:opts.timeout ~policy ~seed:opts.seed
          entry.Datasets.Suite.net ~images
          ~epsilons:[ 0.005; 0.01; 0.02; 0.04; 0.08; 0.16 ]
      in
      Robustness_curve.print ~total:(Array.length images) points
  | "delta" ->
      let policy = policy_of opts in
      let w = non_conv (workload opts) in
      Delta_sweep.run ~seed:opts.seed ~timeout:opts.timeout ~policy
        ~deltas:[ 1e-6; 1e-4; 1e-2; 1e-1; 0.5 ]
        w
  | "ablation" ->
      let policy = policy_of opts in
      let w = non_conv (workload opts) in
      let _results =
        Ablation.policies ~seed:opts.seed ~timeout:opts.timeout ~policy w
      in
      let entry = Datasets.Suite.build_network ~seed:opts.seed "mnist-3x100" in
      Ablation.transformers entry.Datasets.Suite.net
        (Datasets.Suite.properties ~seed:opts.seed entry ~count:24)
  | "all" ->
      let policy = policy_of opts in
      let w = workload opts in
      let ai2_results = run_ai2_experiment opts policy w in
      Runner.save_csv (Filename.concat artifacts "ai2_results.csv") ai2_results;
      Figures.fig6 ai2_results;
      Figures.cactus_per_network ai2_results;
      let complete_results = run_complete_experiment opts policy w in
      Runner.save_csv
        (Filename.concat artifacts "complete_results.csv")
        complete_results;
      Figures.fig14 complete_results;
      Figures.fig15 complete_results;
      Figures.rq2 complete_results;
      Figures.consistency (ai2_results @ complete_results);
      let _abl =
        Ablation.policies ~seed:opts.seed ~timeout:opts.timeout ~policy
          (non_conv w)
      in
      let entry = Datasets.Suite.build_network ~seed:opts.seed "mnist-3x100" in
      Ablation.transformers entry.Datasets.Suite.net
        (Datasets.Suite.properties ~seed:opts.seed entry ~count:24);
      Delta_sweep.run ~seed:opts.seed ~timeout:opts.timeout ~policy
        ~deltas:[ 1e-6; 1e-4; 1e-2; 1e-1; 0.5 ]
        (non_conv w);
      (let entry = Datasets.Suite.build_network ~seed:opts.seed "mnist-3x100" in
       let rng = Linalg.Rng.create (opts.seed + 5) in
       let spec =
         { entry.Datasets.Suite.image_spec with Datasets.Synth_images.noise = 0.45 }
       in
       let images =
         Array.init 20 (fun i -> Datasets.Synth_images.sample rng spec (i mod 10))
       in
       let points =
         Robustness_curve.compute ~timeout:opts.timeout ~policy ~seed:opts.seed
           entry.Datasets.Suite.net ~images
           ~epsilons:[ 0.005; 0.01; 0.02; 0.04; 0.08; 0.16 ]
       in
       Robustness_curve.print ~total:(Array.length images) points);
      micro opts
  | other ->
      Printf.eprintf
        "unknown mode %S (expected \
         all/fig6/cactus/fig14/fig15/rq2/ablation/delta/curve/replicate/micro)\n"
        other;
      exit 2
