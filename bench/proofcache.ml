(* Proof-cache warm-start benchmark.

   Measures what the subregion proof cache buys on overlapping queries:
   verify a base region cold, then verify a region shifted by 20% of
   its width in one dimension against the populated cache.  Split cuts
   snap onto the canonical partition (Domains.Partition), so the two
   searches reach bit-identical subregions inside the overlap and the
   warm run discharges whole subtrees without an analyze call.

   Counterexample search is disabled (the RQ2 ablation): the candidate
   point is then the region center, so the policy's feature vector —
   and with it the whole split tree — is a deterministic function of
   the region.  That makes the reuse measurable instead of hostage to
   PGD's RNG.

   Usage:
     dune exec bench/proofcache.exe                # sweep -> BENCH_proofcache.json
     dune exec bench/proofcache.exe -- --out FILE  # custom output path
     dune exec bench/proofcache.exe -- --quick     # single repeat; CI's
                                                   # warn-only regression probe
     dune exec bench/proofcache.exe -- --smoke     # tiny budget, gates only
                                                   # (nonzero hits, verdicts),
                                                   # no timing, no JSON *)

open Linalg
open Domains

type result = {
  group : string;
  name : string;
  shape : string;
  ns_per_op : float;
  speedup : float;
}

let results : result list ref = ref []

let record ~group ~name ~shape ?(speedup = 0.0) ns =
  results := { group; name; shape; ns_per_op = ns; speedup } :: !results;
  Printf.printf "  %-16s %-26s %14.0f ns/op%s\n%!" name shape ns
    (if speedup > 0.0 then Printf.sprintf "  %5.2fx" speedup else "")

(* ------------------------------------------------------------------ *)
(* Workload: a fixed dense ReLU net and a robust box; the warm query is
   the same box shifted +15% of its width along dimension 0.  The net
   is awkward enough that the proof needs a few hundred splits (about
   380 nodes cold), so the cache has subtrees worth reusing. *)

let net =
  let rng = Rng.create 11 in
  Nn.Init.dense rng ~layer_sizes:[ 3; 24; 24; 3 ]

let radius = 0.55

let center = [| 0.2; -0.4; 0.6 |]

let target = Nn.Network.classify net center

let base_box = Box.of_center_radius center radius

let shifted_box =
  (* +15% of the width in dimension 0: well inside the <= 25%/dim
     overlap regime the cache is built for. *)
  let shift = 0.15 *. (2.0 *. radius) in
  let lo = Array.copy base_box.Box.lo in
  let hi = Array.copy base_box.Box.hi in
  lo.(0) <- lo.(0) +. shift;
  hi.(0) <- hi.(0) +. shift;
  Box.create ~lo ~hi

let config =
  { Charon.Verify.default_config with Charon.Verify.use_cex_search = false }

let verify ~cache ~steps box =
  let prop = Common.Property.create ~region:box ~target () in
  Charon.Verify.run ~config
    ~budget:(Common.Budget.of_steps steps)
    ~proofcache:cache ~rng:(Rng.create 7) ~policy:Charon.Policy.default net
    prop

let require_verified what (report : Charon.Verify.report) =
  match report.Charon.Verify.outcome with
  | Common.Outcome.Verified -> ()
  | o ->
      Printf.eprintf "bench/proofcache: %s run ended %s, not verified\n%!" what
        (Common.Outcome.label o);
      exit 1

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

(* One cold / warm pair.  Both runs verify the *shifted* box so the
   comparison is apples to apples; the warm cache was populated by an
   untimed run on the base box.  Fresh caches per repeat keep later
   repeats from inheriting earlier ones' facts. *)
let measure_pair ~steps =
  let cold_cache = Charon.Proofcache.create () in
  let cold_s, cold_report =
    time (fun () -> verify ~cache:cold_cache ~steps shifted_box)
  in
  require_verified "cold" cold_report;
  let warm_cache = Charon.Proofcache.create () in
  require_verified "populate" (verify ~cache:warm_cache ~steps base_box);
  let warm_s, warm_report =
    time (fun () -> verify ~cache:warm_cache ~steps shifted_box)
  in
  require_verified "warm" warm_report;
  (cold_s, warm_s, warm_report)

let run_bench ~repeats ~steps =
  let best_cold = ref infinity and best_warm = ref infinity in
  let hits = ref 0 and lookups = ref 0 in
  for _ = 1 to repeats do
    let cold_s, warm_s, warm_report = measure_pair ~steps in
    if cold_s < !best_cold then best_cold := cold_s;
    if warm_s < !best_warm then best_warm := warm_s;
    hits := warm_report.Charon.Verify.cache_hits;
    lookups := warm_report.Charon.Verify.cache_lookups
  done;
  let shape = Printf.sprintf "3->24->24->3 r%.2f +15%%d0" radius in
  let cold_ns = !best_cold *. 1e9 and warm_ns = !best_warm *. 1e9 in
  Printf.printf "== proofcache warm start ==\n%!";
  record ~group:"proofcache" ~name:"cold" ~shape cold_ns;
  record ~group:"proofcache" ~name:"warm-shifted" ~shape
    ~speedup:(cold_ns /. warm_ns) warm_ns;
  Printf.printf "  warm run: %d cache hits / %d lookups\n%!" !hits !lookups;
  if !hits = 0 then begin
    Printf.eprintf
      "bench/proofcache: warm run scored zero cache hits — the canonical \
       partition is not aligning overlapping queries\n%!";
    exit 1
  end;
  let speedup = cold_ns /. warm_ns in
  if speedup < 2.0 then
    Printf.eprintf
      "WARNING: warm-start speedup %.2fx < 2x (cold %.1fms, warm %.1fms)\n%!"
      speedup (cold_ns /. 1e6) (warm_ns /. 1e6)

(* ------------------------------------------------------------------ *)
(* JSON output: same record schema as bench/kernels.ml, so
   bin/benchdiff.exe can diff BENCH_proofcache.json baselines. *)

let write_json path rs =
  let open Telemetry.Jsonw in
  let row r =
    Obj
      [
        ("group", Str r.group);
        ("name", Str r.name);
        ("shape", Str r.shape);
        ("ns_per_op", Float r.ns_per_op);
        ("gflops", Float 0.0);
        ("speedup", Float r.speedup);
      ]
  in
  let doc =
    Obj
      [
        ("benchmark", Str "proofcache");
        ("workers", Int 1);
        ("results", Arr (List.map row rs));
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~pretty:true doc ^ "\n"));
  Printf.printf "wrote %s (%d records)\n%!" path (List.length rs)

let () =
  let smoke = Array.exists (String.equal "--smoke") Sys.argv in
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  let out_path =
    let rec find = function
      | "--out" :: v :: _ -> v
      | _ :: rest -> find rest
      | [] -> "BENCH_proofcache.json"
    in
    find (Array.to_list Sys.argv)
  in
  if smoke then begin
    (* Correctness gates only, used under `dune runtest`: the warm run
       must score hits and all verdicts must be Verified. *)
    let _, _, warm_report = measure_pair ~steps:400_000 in
    if warm_report.Charon.Verify.cache_hits = 0 then begin
      prerr_endline "bench/proofcache: smoke scored zero warm cache hits";
      exit 1
    end;
    Printf.printf "proofcache smoke ok (%d hits / %d lookups)\n%!"
      warm_report.Charon.Verify.cache_hits
      warm_report.Charon.Verify.cache_lookups
  end
  else begin
    run_bench ~repeats:(if quick then 1 else 5) ~steps:400_000;
    write_json out_path (List.rev !results)
  end
