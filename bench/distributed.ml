(* Distributed split-and-conquer benchmark (docs/serving.md).

   Verifies the staircase family — always Verified, cost geometric in
   the input dimension — three ways: in-process [Charon.Verify.run]
   (the oracle), and through the charon-dverify coordinator with one
   and with two worker processes.  The interesting numbers are the
   coordination tax (w1 vs single: process spawn, JSON framing, split
   round-trips) and the scaling win (w2 vs w1).

   The bench re-executes itself as its own worker fleet, exactly like
   `charon_cli dverify` does, so process spawn and handshake costs are
   the real ones.

   Usage:
     dune exec bench/distributed.exe                # sweep -> BENCH_distributed.json
     dune exec bench/distributed.exe -- --out FILE  # custom output path
     dune exec bench/distributed.exe -- --quick     # smallest sweep, single
                                                    # repeat; CI's warn-only
                                                    # regression probe
     dune exec bench/distributed.exe -- --smoke     # verdict gates only (incl.
                                                    # a crash-injected run), no
                                                    # timing, no JSON
     dune exec bench/distributed.exe -- --emit-net FILE [--dim N]
                                                    # just write the staircase
                                                    # network (Nn.Serial text),
                                                    # for `charon_cli dverify`
                                                    # runs in CI *)

(* Worker re-exec mode: must run before anything else touches argv. *)
let () =
  if Array.exists (String.equal "--charon-dverify-worker") Sys.argv then
    exit (Server.Worker.main ())

open Linalg

type result = {
  group : string;
  name : string;
  shape : string;
  workers : int;
  ns_per_op : float;
  speedup : float;
}

let results : result list ref = ref []

let record ~name ~shape ~workers ?(speedup = 0.0) ns =
  results :=
    { group = "distributed"; name; shape; workers; ns_per_op = ns; speedup }
    :: !results;
  Printf.printf "  %-12s %-16s %14.0f ns/op%s\n%!" name shape ns
    (if speedup > 0.0 then Printf.sprintf "  %5.2fx" speedup else "")

(* ------------------------------------------------------------------ *)
(* Workload: the staircase family of test_server.ml.  Margin >= eps
   everywhere, but interval/zonotope proofs only land after splitting
   essentially every input dimension. *)

let eps = 0.05

let staircase dim =
  let w1 =
    Mat.init (2 * dim) dim (fun r c ->
        if r = c || r - dim = c then 1.0 else 0.0)
  in
  let b1 = Vec.init (2 * dim) (fun r -> if r < dim then 0.0 else -1.0) in
  let w2 =
    Mat.init 2 (2 * dim) (fun r c ->
        if r = 1 then 0.0 else if c < dim then 1.0 else -1.0)
  in
  Nn.Network.create ~input_dim:dim
    [
      Nn.Layer.affine w1 b1;
      Nn.Layer.Relu;
      Nn.Layer.affine w2 [| 0.0; -.eps |];
    ]

let staircase_box dim = Domains.Box.of_center_radius (Vec.create dim 0.25) 1.25

let spec dim =
  {
    Server.Protocol.name = Printf.sprintf "staircase-d%d" dim;
    network = Nn.Serial.to_string (staircase dim);
    box = staircase_box dim;
    target = 0;
    delta = 1e-4;
    timeout = Some 600.0;
    max_steps = None;
    seed = 1;
  }

let require_verified what outcome =
  match outcome with
  | Common.Outcome.Verified -> ()
  | o ->
      Printf.eprintf "bench/distributed: %s run ended %s, not verified\n%!"
        what (Common.Outcome.label o);
      exit 1

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let single dim =
  let prop =
    Common.Property.create
      ~name:(Printf.sprintf "staircase-d%d" dim)
      ~region:(staircase_box dim) ~target:0 ()
  in
  let r =
    Charon.Verify.run
      ~budget:(Common.Budget.create ~seconds:600.0 ())
      ~rng:(Rng.create 1) ~policy:Charon.Policy.default (staircase dim) prop
  in
  r.Charon.Verify.outcome

let self_worker = [| Sys.executable_name; "--charon-dverify-worker" |]

let dverify ?crash_injection ~workers dim =
  let config =
    { (Server.Coordinator.default_config ~workers) with crash_injection }
  in
  Server.Coordinator.run ~worker_cmd:self_worker ~config (spec dim)

(* ------------------------------------------------------------------ *)

let best repeats f =
  let b = ref infinity in
  for _ = 1 to repeats do
    let s, () = time f in
    if s < !b then b := s
  done;
  !b

let run_bench ~repeats ~dims =
  List.iter
    (fun dim ->
      let shape = Printf.sprintf "staircase-d%d" dim in
      Printf.printf "== %s ==\n%!" shape;
      let single_s =
        best repeats (fun () -> require_verified "single" (single dim))
      in
      let dist workers =
        best repeats (fun () ->
            let r = dverify ~workers dim in
            require_verified
              (Printf.sprintf "w%d" workers)
              r.Server.Coordinator.outcome)
      in
      let w1_s = dist 1 in
      let w2_s = dist 2 in
      let ns s = s *. 1e9 in
      record ~name:"single" ~shape ~workers:1 (ns single_s);
      record ~name:"dverify" ~shape ~workers:1
        ~speedup:(single_s /. w1_s) (ns w1_s);
      record ~name:"dverify" ~shape ~workers:2
        ~speedup:(single_s /. w2_s) (ns w2_s))
    dims

(* ------------------------------------------------------------------ *)
(* JSON output: bench/kernels.ml record schema with a per-row workers
   field, so bin/benchdiff.exe keys w1 and w2 rows apart. *)

let write_json path rs =
  let open Telemetry.Jsonw in
  let row r =
    Obj
      [
        ("group", Str r.group);
        ("name", Str r.name);
        ("shape", Str r.shape);
        ("workers", Int r.workers);
        ("ns_per_op", Float r.ns_per_op);
        ("gflops", Float 0.0);
        ("speedup", Float r.speedup);
      ]
  in
  let doc =
    Obj
      [
        ("benchmark", Str "distributed");
        ("workers", Int 2);
        ("results", Arr (List.map row rs));
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~pretty:true doc ^ "\n"));
  Printf.printf "wrote %s (%d records)\n%!" path (List.length rs)

let flag_value name =
  let rec find = function
    | f :: v :: _ when String.equal f name -> Some v
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let () =
  let smoke = Array.exists (String.equal "--smoke") Sys.argv in
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  let out_path =
    Option.value (flag_value "--out") ~default:"BENCH_distributed.json"
  in
  match flag_value "--emit-net" with
  | Some path ->
      let dim =
        match Option.map int_of_string_opt (flag_value "--dim") with
        | Some (Some d) when d >= 1 -> d
        | Some _ ->
            prerr_endline "bench/distributed: --dim wants a positive int";
            exit 2
        | None -> 6
      in
      Nn.Serial.save path (staircase dim);
      Printf.printf
        "wrote %s (staircase d%d; verify with --center %s --radius 1.25 \
         --target 0)\n%!"
        path dim
        (String.concat "," (List.init dim (fun _ -> "0.25")))
  | None ->
  if smoke then begin
    (* Verdict gates only, used under `dune runtest`: a 2-worker run and
       a crash-injected run must both agree with the in-process oracle.
       No timing, so scheduler noise can't fail CI. *)
    let dim = 5 in
    require_verified "single" (single dim);
    let r = dverify ~workers:2 dim in
    require_verified "w2" r.Server.Coordinator.outcome;
    let r = dverify ~workers:2 ~crash_injection:(0, 0) dim in
    require_verified "w2-crash" r.Server.Coordinator.outcome;
    let s = r.Server.Coordinator.stats in
    if s.Server.Coordinator.worker_deaths < 1 then begin
      prerr_endline "bench/distributed: crash injection killed no worker";
      exit 1
    end;
    Printf.printf
      "distributed smoke ok (crash run: %d deaths, %d reassigned)\n%!"
      s.Server.Coordinator.worker_deaths s.Server.Coordinator.reassigned
  end
  else begin
    run_bench
      ~repeats:(if quick then 1 else 3)
      ~dims:(if quick then [ 6 ] else [ 6; 7 ]);
    write_json out_path (List.rev !results)
  end
