(* Kernel microbenchmark harness.

   Times the dense kernels that dominate the abstract interpreter —
   [Mat.gemm], the batched zonotope affine transformer, and im2col
   convolution — at several sizes, and writes [BENCH_kernels.json]
   records (shape, ns/op, GFLOP/s, workers) so later PRs have a perf
   trajectory to regress against.

   Usage:
     dune exec bench/kernels.exe                  # full sweep -> BENCH_kernels.json
     dune exec bench/kernels.exe -- --out FILE    # custom output path
     dune exec bench/kernels.exe -- --quick       # subset of the sweep's
                                                  # shapes, shorter quota;
                                                  # CI's regression probe
     dune exec bench/kernels.exe -- --smoke       # tiny sizes, correctness
                                                  # gates only, no JSON *)

open Linalg

type result = {
  group : string;
  name : string;
  shape : string;
  workers : int;  (** kernel worker count for this row; 1 = sequential *)
  ns_per_op : float;
  gflops : float;  (** 0.0 when a FLOP count is not meaningful *)
  speedup : float;  (** vs the group's reference kernel; 0.0 if none *)
}

(* Best-of-repeats timing: run [f] in batches sized to take ~[quota]
   seconds, repeat, report the best batch (least scheduler noise). *)
let batch_size ~quota f =
  (* Warm up and estimate a batch size. *)
  f ();
  let t0 = Unix.gettimeofday () in
  f ();
  let once = Stdlib.max 1e-9 (Unix.gettimeofday () -. t0) in
  Stdlib.max 1 (int_of_float (quota /. once))

let run_batch batch f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to batch do
    f ()
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int batch

(* Time a (reference, candidate) pair with interleaved repeats —
   ref, cand, ref, cand, ... — so the reported speedup ratio is robust
   against frequency / scheduler drift on a shared machine, which would
   otherwise skew two back-to-back measurements in the same direction. *)
let time_pair_ns ?(quota = 0.2) ?(repeats = 5) fref fcand =
  let bref = batch_size ~quota fref and bcand = batch_size ~quota fcand in
  let best_ref = ref infinity and best_cand = ref infinity in
  for _ = 1 to repeats do
    let r = run_batch bref fref in
    if r < !best_ref then best_ref := r;
    let c = run_batch bcand fcand in
    if c < !best_cand then best_cand := c
  done;
  (!best_ref *. 1e9, !best_cand *. 1e9)

let results : result list ref = ref []

let record ~group ~name ~shape ?(workers = 1) ~flops ?(speedup = 0.0) ns =
  let gflops = if flops <= 0.0 then 0.0 else flops /. ns in
  results :=
    { group; name; shape; workers; ns_per_op = ns; gflops; speedup }
    :: !results;
  Printf.printf "  %-24s %-18s w%d %12.0f ns/op %8.2f GFLOP/s%s\n%!" name shape
    workers ns gflops
    (if speedup > 0.0 then Printf.sprintf "  %5.2fx" speedup else "")

let rng = Rng.create 2019

let random_mat r c = Mat.init r c (fun _ _ -> Rng.gaussian rng)

let random_vec n = Vec.init n (fun _ -> Rng.gaussian rng)

(* ------------------------------------------------------------------ *)
(* GEMM *)

let bench_gemm ?(jobs_sweep = []) ~sizes () =
  Printf.printf "== gemm ==\n%!";
  List.concat_map
    (fun n ->
      let a = random_mat n n and b = random_mat n n in
      let c = Mat.zeros n n in
      let flops = 2.0 *. float_of_int (n * n * n) in
      let shape = Printf.sprintf "%dx%dx%d" n n n in
      let naive_ns, gemm_ns =
        time_pair_ns
          (fun () ->
            (* Row-at-a-time reference: the seed repo's matmul loop. *)
            Array.fill c.Mat.data 0 (n * n) 0.0;
            for i = 0 to n - 1 do
              for k = 0 to n - 1 do
                let aik = Mat.get a i k in
                if aik <> 0.0 then begin
                  let base_b = k * n and base_c = i * n in
                  for j = 0 to n - 1 do
                    c.Mat.data.(base_c + j) <-
                      c.Mat.data.(base_c + j) +. (aik *. b.Mat.data.(base_b + j))
                  done
                end
              done
            done)
          (fun () -> Mat.gemm a b c)
      in
      record ~group:"gemm" ~name:"matmul-naive" ~shape ~flops naive_ns;
      record ~group:"gemm" ~name:"gemm" ~shape ~flops
        ~speedup:(naive_ns /. gemm_ns) gemm_ns;
      (* Workers sweep: the same product on the kernel-helper team,
         interleaved against the sequential kernel so the parallel
         speedup survives frequency drift.  Results must stay
         bit-identical to the sequential output — that is the whole
         contract of the row-panel split. *)
      let seq = Mat.zeros n n in
      Mat.gemm ~jobs:1 a b seq;
      List.map
        (fun j ->
          let seq_ns, par_ns =
            time_pair_ns
              (fun () -> Mat.gemm ~jobs:1 a b c)
              (fun () -> Mat.gemm ~jobs:j a b c)
          in
          let speedup = seq_ns /. par_ns in
          record ~group:"gemm" ~name:"gemm" ~shape ~workers:j ~flops ~speedup
            par_ns;
          Mat.gemm ~jobs:j a b c;
          if c.Mat.data <> seq.Mat.data then
            failwith
              (Printf.sprintf
                 "bench/kernels: gemm jobs=%d result differs from sequential \
                  at %s"
                 j shape);
          ((n, j), speedup))
        jobs_sweep)
    sizes

(* ------------------------------------------------------------------ *)
(* Zonotope affine: batched generator matrix vs per-generator matvec *)

(* The seed implementation: one matvec per generator plus the
   list-round-trip prune, kept verbatim as the reference kernel. *)
let per_gen_affine w b ~center ~gens =
  let tiny = 1e-300 in
  let norm1 g = Array.fold_left (fun acc x -> acc +. abs_float x) 0.0 g in
  let prune gens =
    Array.of_list (List.filter (fun g -> norm1 g > tiny) (Array.to_list gens))
  in
  ( Vec.add (Mat.matvec w center) b,
    prune (Array.map (fun g -> Mat.matvec w g) gens) )

let bench_zonotope ~configs () =
  Printf.printf "== zonotope affine ==\n%!";
  List.map
    (fun (gens, dim) ->
      let w = random_mat dim dim and b = random_vec dim in
      let center = random_vec dim in
      let gvecs = Array.init gens (fun _ -> random_vec dim) in
      let z = Domains.Zonotope.create ~center ~gens:gvecs in
      let flops = 2.0 *. float_of_int (gens * dim * dim) in
      let shape = Printf.sprintf "%dgens x %ddim" gens dim in
      let ref_ns, batched_ns =
        time_pair_ns
          (fun () -> ignore (per_gen_affine w b ~center ~gens:gvecs))
          (fun () -> ignore (Domains.Zonotope.affine w b z))
      in
      record ~group:"zonotope-affine" ~name:"per-gen-matvec" ~shape ~flops
        ref_ns;
      let speedup = ref_ns /. batched_ns in
      record ~group:"zonotope-affine" ~name:"batched-gemm" ~shape ~flops
        ~speedup batched_ns;
      (* Correctness gate: both paths must agree bitwise-closely. *)
      let rc, rg = per_gen_affine w b ~center ~gens:gvecs in
      let out = Domains.Zonotope.affine w b z in
      if not (Vec.approx_equal ~eps:1e-9 rc (Domains.Zonotope.center out)) then
        failwith "bench/kernels: zonotope affine center mismatch";
      let og = Domains.Zonotope.generators out in
      if Array.length og <> Array.length rg then
        failwith "bench/kernels: zonotope affine generator count mismatch";
      Array.iteri
        (fun i g ->
          if not (Vec.approx_equal ~eps:1e-9 g og.(i)) then
            failwith "bench/kernels: zonotope affine generator mismatch")
        rg;
      ((gens, dim), speedup))
    configs

(* ------------------------------------------------------------------ *)
(* Convolution: im2col + gemm vs the direct nested loop *)

let bench_conv ~configs () =
  Printf.printf "== conv forward ==\n%!";
  List.iter
    (fun (channels, hw, out_channels, kernel) ->
      let input = Nn.Shape.create ~channels ~height:hw ~width:hw in
      let wcount =
        Nn.Conv.weight_count ~out_channels ~in_channels:channels ~kernel
      in
      let conv =
        Nn.Conv.create ~input ~out_channels ~kernel ~stride:1 ~padding:1
          ~weights:(Array.init wcount (fun _ -> Rng.gaussian rng))
          ~bias:(random_vec out_channels)
      in
      let x = random_vec (Nn.Shape.size input) in
      let out = Nn.Conv.output_shape conv in
      let flops =
        2.0
        *. float_of_int
             (Nn.Shape.size out * channels * kernel * kernel)
      in
      let shape =
        Printf.sprintf "%dx%dx%d k%d oc%d" channels hw hw kernel out_channels
      in
      let direct_ns, im2col_ns =
        time_pair_ns
          (fun () -> ignore (Nn.Conv.forward_direct conv x))
          (fun () -> ignore (Nn.Conv.forward conv x))
      in
      record ~group:"conv-forward" ~name:"direct" ~shape ~flops direct_ns;
      record ~group:"conv-forward" ~name:"im2col-gemm" ~shape ~flops
        ~speedup:(direct_ns /. im2col_ns) im2col_ns;
      if
        not
          (Vec.approx_equal ~eps:1e-9
             (Nn.Conv.forward conv x)
             (Nn.Conv.forward_direct conv x))
      then failwith "bench/kernels: conv im2col/direct mismatch")
    configs

(* ------------------------------------------------------------------ *)
(* End-to-end deep propagation: a deep affine/ReLU stack pushed through
   the abstract interpreter with the zonotope domain, at several kernel
   worker counts.  This is the verifier's actual hot loop — generator
   GEMMs wrapped in prune/relu bookkeeping — so it shows how much of
   the raw GEMM speedup survives end to end. *)

let bench_deep_propagate ~jobs_list () =
  Printf.printf "== deep-propagate ==\n%!";
  let dim = 192 and pairs = 6 in
  (* 6 x (affine 192x192 + relu) = 12 layers.  Weights are scaled like
     Xavier init so activations neither explode nor die. *)
  let scale = 1.0 /. sqrt (float_of_int dim) in
  let layers =
    List.concat
      (List.init pairs (fun _ ->
           let w =
             Mat.init dim dim (fun _ _ -> scale *. Rng.gaussian rng)
           in
           [ Nn.Layer.affine w (random_vec dim); Nn.Layer.Relu ]))
  in
  let net = Nn.Network.create ~input_dim:dim layers in
  let center = random_vec dim in
  let box =
    Domains.Box.create
      ~lo:(Vec.init dim (fun i -> center.(i) -. 0.05))
      ~hi:(Vec.init dim (fun i -> center.(i) +. 0.05))
  in
  let shape = Printf.sprintf "%dL x %d" (Nn.Network.num_layers net) dim in
  let propagate jobs () =
    ignore
      (Absint.Analyzer.propagate
         (module Domains.Zonotope)
         ~jobs net
         (Domains.Zonotope.of_box box))
  in
  let base_out =
    Absint.Analyzer.propagate
      (module Domains.Zonotope)
      ~jobs:1 net
      (Domains.Zonotope.of_box box)
  in
  List.iter
    (fun jobs ->
      let seq_ns, par_ns = time_pair_ns (propagate 1) (propagate jobs) in
      let ns = if jobs = 1 then seq_ns else par_ns in
      let speedup = if jobs = 1 then 0.0 else seq_ns /. par_ns in
      record ~group:"deep-propagate" ~name:"analyzer-zonotope" ~shape
        ~workers:jobs ~flops:0.0 ~speedup ns;
      (* Determinism gate: the abstract output must be bit-identical to
         the sequential pass at every worker count. *)
      let out =
        Absint.Analyzer.propagate
          (module Domains.Zonotope)
          ~jobs net
          (Domains.Zonotope.of_box box)
      in
      if
        Domains.Zonotope.center out <> Domains.Zonotope.center base_out
        || Domains.Zonotope.generators out
           <> Domains.Zonotope.generators base_out
      then
        failwith
          (Printf.sprintf
             "bench/kernels: deep propagate jobs=%d differs from sequential"
             jobs))
    jobs_list

(* ------------------------------------------------------------------ *)
(* JSON output *)

let write_json path rs =
  let open Telemetry.Jsonw in
  let row r =
    Obj
      [
        ("group", Str r.group);
        ("name", Str r.name);
        ("shape", Str r.shape);
        ("workers", Int r.workers);
        ("ns_per_op", Float r.ns_per_op);
        ("gflops", Float r.gflops);
        ("speedup", Float r.speedup);
      ]
  in
  (* [cores] records the machine the numbers came from: parallel rows
     measured on fewer cores than workers are expected to show no
     speedup, and bin/benchdiff.exe compares rows like-for-like on the
     per-row [workers] field. *)
  let doc =
    Obj
      [
        ("benchmark", Str "kernels");
        ("cores", Int (Domain.recommended_domain_count ()));
        ("results", Arr (List.map row rs));
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~pretty:true doc ^ "\n"));
  Printf.printf "wrote %s (%d records)\n%!" path (List.length rs)

let () =
  let smoke = Array.exists (String.equal "--smoke") Sys.argv in
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  let out_path =
    let rec find = function
      | "--out" :: v :: _ -> v
      | _ :: rest -> find rest
      | [] -> "BENCH_kernels.json"
    in
    find (Array.to_list Sys.argv)
  in
  if smoke then begin
    (* Tiny sizes: exercises every kernel path and the correctness
       gates — including the parallel row-panel bit-identity and the
       deep-propagate determinism gate — used as the tier-1 regression
       smoke under `dune runtest`. *)
    ignore (bench_gemm ~jobs_sweep:[ 2; 4 ] ~sizes:[ 17 ] ());
    ignore (bench_zonotope ~configs:[ (9, 13) ] ());
    bench_conv ~configs:[ (2, 6, 3, 3) ] ();
    Printf.printf "kernel smoke ok\n%!"
  end
  else if quick then begin
    (* CI regression probe: a mid-size shape per group, chosen to
       overlap the full sweep so bin/benchdiff.exe can compare the
       output against the committed BENCH_kernels.json baseline
       (like-for-like on the per-row workers field). *)
    ignore (bench_gemm ~jobs_sweep:[ 2; 4 ] ~sizes:[ 64 ] ());
    ignore (bench_zonotope ~configs:[ (64, 128) ] ());
    bench_conv ~configs:[ (4, 16, 8, 3) ] ();
    bench_deep_propagate ~jobs_list:[ 1; 4 ] ();
    write_json out_path (List.rev !results)
  end
  else begin
    let gemm_speedups =
      bench_gemm ~jobs_sweep:[ 2; 4 ] ~sizes:[ 32; 64; 128; 256 ] ()
    in
    let zono = bench_zonotope ~configs:[ (32, 64); (64, 128); (128, 256); (256, 256) ] () in
    bench_conv ~configs:[ (1, 16, 4, 3); (4, 16, 8, 3); (8, 28, 16, 3) ] ();
    bench_deep_propagate ~jobs_list:[ 1; 2; 4 ] ();
    write_json out_path (List.rev !results);
    (* The acceptance gate of the batching PR: batched zonotope affine
       must beat the per-generator path by >= 3x at 128 gens x 256 dims. *)
    (match List.assoc_opt (128, 256) zono with
    | Some s when s < 3.0 ->
        Printf.eprintf
          "WARNING: batched zonotope affine speedup %.2fx < 3x at 128x256\n" s
    | _ -> ());
    (* The acceptance gate of the parallel-GEMM PR: >= 2.5x at 4 workers
       on 256x256x256.  Only meaningful on a machine that actually has
       the cores — a 1-core container runs all panels on one domain and
       the sweep documents that honestly (speedup ~1x, cores field in
       the JSON). *)
    let cores = Domain.recommended_domain_count () in
    match List.assoc_opt (256, 4) gemm_speedups with
    | Some s when cores >= 4 && s < 2.5 ->
        Printf.eprintf
          "WARNING: parallel gemm speedup %.2fx < 2.5x at 256^3 with 4 \
           workers on %d cores\n"
          s cores
    | Some s when cores < 4 ->
        Printf.printf
          "note: %d core(s) available; 4-worker gemm speedup %.2fx is \
           core-bound, not a regression\n%!"
          cores s
    | _ -> ()
  end
