(* charon-serve-client: command-line client for the charon-serve
   daemon (docs/serving.md).

   Every subcommand opens one connection, performs one request, and
   prints the daemon's JSON response (pretty-printed).  Exit code 0 on
   an {"ok":true} response, 1 otherwise.

   The daemon is addressed either by its Unix socket (--socket, the
   trusted local transport) or over TCP (--tcp HOST:PORT); --api-key
   authenticates as a configured tenant on either transport. *)

open Cmdliner

let socket_arg =
  let doc = "Unix-domain socket the daemon listens on." in
  Arg.(
    value
    & opt string "charon-serve.sock"
    & info [ "socket"; "s" ] ~docv:"PATH" ~doc)

let tcp_arg =
  let doc =
    "Reach the daemon over TCP at $(docv) instead of the Unix socket \
     (HOST:PORT, or just PORT for 127.0.0.1)."
  in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let api_key_arg =
  let doc = "Tenant API key (required over TCP when tenants are configured)." in
  Arg.(value & opt (some string) None & info [ "api-key" ] ~docv:"KEY" ~doc)

let parse_tcp s =
  match String.rindex_opt s ':' with
  | None -> ("127.0.0.1", int_of_string s)
  | Some i ->
      let host = String.sub s 0 i in
      let port = int_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      ((if host = "" then "127.0.0.1" else host), port)

let addr_of socket tcp =
  match tcp with
  | None -> Server.Client.Unix_socket socket
  | Some s -> (
      match parse_tcp s with
      | host, port -> Server.Client.Tcp (host, port)
      | exception (Failure _ | Invalid_argument _) ->
          Printf.eprintf "bad --tcp endpoint %S (expected HOST:PORT)\n" s;
          exit 2)

let print_response json =
  print_endline (Telemetry.Jsonw.to_string ~pretty:true json);
  match Telemetry.Jsonw.member "ok" json with
  | Some (Telemetry.Jsonw.Bool true) -> 0
  | _ -> 1

let with_server f =
  match f () with
  | json -> print_response json
  | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "cannot reach the daemon: %s\n" (Unix.error_message e);
      1
  | exception Server.Client.Server_error msg ->
      Printf.eprintf "server error: %s\n" msg;
      1
  | exception Server.Client.Rejected { code; retryable; message } ->
      Printf.eprintf "rejected (%s%s): %s\n" code
        (if retryable then ", retryable" else "")
        message;
      1
  | exception Telemetry.Jsonw.Parse_error msg ->
      (* A daemon dying mid-write can also tear a line *on* the '\n'
         boundary, leaving syntactically broken JSON; that is a failed
         request, not a response worth exit code 0. *)
      Printf.eprintf "malformed response from the daemon: %s\n" msg;
      1

let id_arg =
  let doc = "Job id (from the submit response)." in
  Arg.(required & opt (some int) None & info [ "id"; "i" ] ~docv:"ID" ~doc)

(* ------------------------------------------------------------------ *)

let ping_cmd =
  let run socket tcp api_key =
    let addr = addr_of socket tcp in
    with_server (fun () -> Server.Client.ping ?api_key ~addr ())
  in
  Cmd.v (Cmd.info "ping" ~doc:"Check that the daemon answers")
    Term.(const run $ socket_arg $ tcp_arg $ api_key_arg)

let stats_cmd =
  let run socket tcp api_key =
    let addr = addr_of socket tcp in
    with_server (fun () -> Server.Client.stats ?api_key ~addr ())
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Queue depth, in-flight jobs, per-tenant accounting, cache hit \
          rate, counters")
    Term.(const run $ socket_arg $ tcp_arg $ api_key_arg)

let status_cmd =
  let since_arg =
    let doc = "Only return events with sequence number at least $(docv)." in
    Arg.(value & opt int 0 & info [ "since" ] ~docv:"SEQ" ~doc)
  in
  let run socket tcp api_key id since =
    let addr = addr_of socket tcp in
    with_server (fun () -> Server.Client.status ?api_key ~addr ~since id)
  in
  Cmd.v (Cmd.info "status" ~doc:"Poll one job's state and events")
    Term.(const run $ socket_arg $ tcp_arg $ api_key_arg $ id_arg $ since_arg)

let cancel_cmd =
  let run socket tcp api_key id =
    let addr = addr_of socket tcp in
    with_server (fun () -> Server.Client.cancel ?api_key ~addr id)
  in
  Cmd.v (Cmd.info "cancel" ~doc:"Cancel a queued or running job")
    Term.(const run $ socket_arg $ tcp_arg $ api_key_arg $ id_arg)

let shutdown_cmd =
  let run socket tcp api_key =
    let addr = addr_of socket tcp in
    with_server (fun () -> Server.Client.shutdown ?api_key ~addr ())
  in
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:"Stop the daemon (cancels all pending jobs)")
    Term.(const run $ socket_arg $ tcp_arg $ api_key_arg)

let submit_cmd =
  let network_arg =
    let doc = "Network file (text format of Nn.Serial / charon netgen)." in
    Arg.(
      required & opt (some file) None & info [ "network"; "n" ] ~docv:"FILE" ~doc)
  in
  let target_arg =
    let doc = "Target class K of the robustness property." in
    Arg.(required & opt (some int) None & info [ "target"; "k" ] ~docv:"K" ~doc)
  in
  let center_arg =
    let doc = "Region center as comma-separated floats (with $(b,--radius))." in
    Arg.(value & opt (some string) None & info [ "center" ] ~docv:"X1,X2,..." ~doc)
  in
  let radius_arg =
    let doc = "L-infinity radius around $(b,--center)." in
    Arg.(value & opt float 0.05 & info [ "radius" ] ~docv:"R" ~doc)
  in
  let box_arg =
    let doc = "Region as comma-separated lo:hi bounds, one per input." in
    Arg.(
      value & opt (some string) None & info [ "box" ] ~docv:"L1:H1,L2:H2,..." ~doc)
  in
  let delta_arg =
    let doc = "The delta of the delta-complete counterexample test." in
    Arg.(value & opt float 1e-4 & info [ "delta" ] ~docv:"DELTA" ~doc)
  in
  let timeout_arg =
    let doc = "Per-job wall-clock budget in seconds." in
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let max_steps_arg =
    let doc = "Per-job abstract-transformer step budget." in
    Arg.(value & opt (some int) None & info [ "max-steps" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Random seed for the job's counterexample search." in
    Arg.(value & opt int 2019 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let name_arg =
    let doc = "Label echoed back in status responses." in
    Arg.(value & opt string "property" & info [ "name" ] ~docv:"NAME" ~doc)
  in
  let wait_arg =
    let doc = "Poll until the job finishes and print the final status." in
    Arg.(value & flag & info [ "wait"; "w" ] ~doc)
  in
  let run socket tcp api_key network target center radius box delta timeout
      max_steps seed name wait =
    let addr = addr_of socket tcp in
    let spec =
      {
        Server.Protocol.name;
        network = In_channel.with_open_text network In_channel.input_all;
        box = Common.Regionspec.of_options ~center ~radius ~box;
        target;
        delta;
        timeout;
        max_steps;
        seed;
      }
    in
    with_server (fun () ->
        let id, response = Server.Client.submit ?api_key ~addr spec in
        if wait && not (Server.Client.terminal (Server.Client.job_state response))
        then Server.Client.wait ?api_key ~addr id
        else response)
  in
  Cmd.v
    (Cmd.info "submit" ~doc:"Submit a verification job")
    Term.(
      const run $ socket_arg $ tcp_arg $ api_key_arg $ network_arg $ target_arg
      $ center_arg $ radius_arg $ box_arg $ delta_arg $ timeout_arg
      $ max_steps_arg $ seed_arg $ name_arg $ wait_arg)

let () =
  let doc = "client for the charon-serve verification daemon" in
  let info = Cmd.info "charon-serve-client" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            ping_cmd;
            submit_cmd;
            status_cmd;
            cancel_cmd;
            stats_cmd;
            shutdown_cmd;
          ]))
