(* charon-lint: the repo's own soundness & data-race lint.

   Parses every .ml with compiler-libs and runs the rule registry in
   lib/lint (see docs/lint.md).  Exit code: 0 clean, 1 findings,
   2 parse errors — so `dune build @lint` fails the build on a new
   finding. *)

let usage =
  "charon-lint [options] [paths...]\n\
   Lints the .ml files under the given root-relative paths (default: lib \
   bin).\nOptions:"

let () =
  let json = ref false in
  let show_suppressed = ref false in
  let list_rules = ref false in
  let root = ref "." in
  let paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " machine-readable output");
      ( "--show-suppressed",
        Arg.Set show_suppressed,
        " also list findings silenced by [@lint.allow]" );
      ("--list-rules", Arg.Set list_rules, " print the rule registry and exit");
      ( "--root",
        Arg.Set_string root,
        "DIR directory the paths are relative to (default: .)" );
    ]
  in
  Arg.parse (Arg.align spec) (fun p -> paths := p :: !paths) usage;
  if !list_rules then print_string (Charon_lint.Driver.list_rules_text ())
  else begin
    let paths =
      match List.rev !paths with [] -> [ "lib"; "bin" ] | ps -> ps
    in
    let result = Charon_lint.Driver.lint ~root:!root ~paths () in
    if !json then print_endline (Charon_lint.Driver.render_json result)
    else
      print_string
        (Charon_lint.Driver.render_text ~show_suppressed:!show_suppressed
           result);
    exit
      (if result.Charon_lint.Driver.errors <> [] then 2
       else if result.Charon_lint.Driver.findings <> [] then 1
       else 0)
  end
