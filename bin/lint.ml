(* charon-lint: the repo's own soundness & data-race lint.

   Parses every .ml with compiler-libs and runs the selected passes
   from lib/lint (see docs/lint.md).  Exit code: 0 clean, 1 findings,
   2 parse/usage errors — so `dune build @lint` fails the build on a
   new finding. *)

let usage =
  "charon-lint [options] [paths...]\n\
   Lints the .ml files under the given root-relative paths (default: lib \
   bin).\nOptions:"

let split_commas s = String.split_on_char ',' s |> List.filter (( <> ) "")

let () =
  let json = ref false in
  let show_suppressed = ref false in
  let list_rules = ref false in
  let root = ref "." in
  let pass = ref "all" in
  let only = ref [] in
  let exclude = ref [] in
  let paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " machine-readable output");
      ( "--show-suppressed",
        Arg.Set show_suppressed,
        " also list findings silenced by [@lint.allow]" );
      ("--list-rules", Arg.Set list_rules, " print the rule registry and exit");
      ( "--root",
        Arg.Set_string root,
        "DIR directory the paths are relative to (default: .)" );
      ( "--pass",
        Arg.Symbol
          ([ "syntactic"; "race"; "all" ], fun s -> pass := s),
        " which passes run: per-file syntactic rules, the \
         interprocedural race pass, or both (default: all)" );
      ( "--only",
        Arg.String (fun s -> only := !only @ split_commas s),
        "RULES run only these rules (comma-separated; repeatable)" );
      ( "--exclude",
        Arg.String (fun s -> exclude := !exclude @ split_commas s),
        "RULES skip these rules (comma-separated; repeatable)" );
    ]
  in
  Arg.parse (Arg.align spec) (fun p -> paths := p :: !paths) usage;
  if !list_rules then print_string (Charon_lint.Driver.list_rules_text ())
  else begin
    let known = Charon_lint.Driver.rule_ids () in
    (match
       List.filter (fun id -> not (List.mem id known)) (!only @ !exclude)
     with
    | [] -> ()
    | unknown ->
        Printf.eprintf "charon-lint: unknown rule%s: %s (see --list-rules)\n"
          (if List.length unknown > 1 then "s" else "")
          (String.concat ", " unknown);
        exit 2);
    let passes =
      match !pass with
      | "syntactic" -> [ Charon_lint.Driver.Syntactic ]
      | "race" -> [ Charon_lint.Driver.Race ]
      | _ -> [ Charon_lint.Driver.Syntactic; Charon_lint.Driver.Race ]
    in
    let paths =
      match List.rev !paths with [] -> [ "lib"; "bin" ] | ps -> ps
    in
    let result =
      Charon_lint.Driver.lint ~passes ~only:!only ~exclude:!exclude
        ~root:!root ~paths ()
    in
    if !json then print_endline (Charon_lint.Driver.render_json result)
    else
      print_string
        (Charon_lint.Driver.render_text ~show_suppressed:!show_suppressed
           result);
    exit
      (if result.Charon_lint.Driver.errors <> [] then 2
       else if result.Charon_lint.Driver.findings <> [] then 1
       else 0)
  end
