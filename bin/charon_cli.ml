(* The charon command-line interface.

   Subcommands:
     verify   decide a robustness property of a saved network
     check    decide every property in a property file
     analyze  one abstract-interpretation pass with a chosen domain
     attack   search for an adversarial counterexample with PGD / FGSM
     train    learn a verification policy with Bayesian optimization
     netgen   train a benchmark network and save it to disk
     suite    run the benchmark suite and print per-benchmark outcomes
     export   write the benchmark suite to disk as networks + property files
     serve    run the charon-serve verification daemon (docs/serving.md)
     submit   send one verification job to a running daemon
     demo     the XOR walkthrough of Example 3.1 *)

open Cmdliner

let setup_logs level =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level level

let logs_term = Term.(const setup_logs $ Logs_cli.level ())

(* ------------------------------------------------------------------ *)
(* Shared argument parsing                                            *)

let network_arg =
  let doc = "Network file (text format produced by $(b,netgen) or Nn.Serial)." in
  Arg.(required & opt (some file) None & info [ "network"; "n" ] ~docv:"FILE" ~doc)

let target_arg =
  let doc = "Target class K of the robustness property." in
  Arg.(required & opt (some int) None & info [ "target"; "k" ] ~docv:"K" ~doc)

let timeout_arg =
  let doc = "Per-problem wall-clock budget in seconds." in
  Arg.(value & opt float 10.0 & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let delta_arg =
  let doc = "The delta of the delta-complete counterexample test (Eq. 4)." in
  Arg.(value & opt float 1e-4 & info [ "delta" ] ~docv:"DELTA" ~doc)

let seed_arg =
  let doc = "Random seed (all runs are deterministic given the seed)." in
  Arg.(value & opt int 2019 & info [ "seed" ] ~docv:"SEED" ~doc)

let workers_arg =
  let doc =
    "Worker domains for the region search (1 = the sequential Algorithm \
     1 path; more drains the split worklist in parallel)."
  in
  let positive_int =
    let parse s =
      match Arg.conv_parser Arg.int s with
      | Ok n when n >= 1 -> Ok n
      | Ok n -> Error (`Msg (Printf.sprintf "%d is not a positive worker count" n))
      | Error _ as e -> e
    in
    Arg.conv (parse, Arg.conv_printer Arg.int)
  in
  Arg.(value & opt positive_int 1 & info [ "workers"; "j" ] ~docv:"N" ~doc)

let policy_arg =
  let doc =
    "Learned policy file (from $(b,charon train)); defaults to the \
     hand-crafted policy."
  in
  Arg.(value & opt (some file) None & info [ "policy" ] ~docv:"FILE" ~doc)

let region_of ~center ~radius ~box =
  Common.Regionspec.of_options ~center ~radius ~box

let center_arg =
  let doc = "Region center as comma-separated floats (with $(b,--radius))." in
  Arg.(value & opt (some string) None & info [ "center" ] ~docv:"X1,X2,..." ~doc)

let radius_arg =
  let doc = "L-infinity radius around $(b,--center)." in
  Arg.(value & opt float 0.05 & info [ "radius" ] ~docv:"R" ~doc)

let box_arg =
  let doc = "Region as comma-separated lo:hi bounds, one per input." in
  Arg.(value & opt (some string) None & info [ "box" ] ~docv:"L1:H1,L2:H2,..." ~doc)

let load_policy = function
  | None -> Charon.Policy.default
  | Some path -> Charon.Policy.load path

(* Telemetry plumbing shared by the solver subcommands.  [--stats]
   turns metrics on and prints the summary table at exit; [--trace F]
   additionally streams a JSONL trace to F (docs/telemetry.md). *)

let trace_arg =
  let doc =
    "Write a JSONL telemetry trace (spans, counters, per-worker events) \
     to $(docv).  See docs/telemetry.md for the event schema."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let stats_arg =
  let doc =
    "Print a telemetry summary table (counters and span timings) after \
     the run."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let with_telemetry ~trace ~stats f =
  (match trace with
  | Some path -> Telemetry.enable ~path ()
  | None -> if stats then Telemetry.enable ());
  Fun.protect
    ~finally:(fun () ->
      if stats then print_string (Telemetry.Metrics.summary_table ());
      if Telemetry.enabled () then Telemetry.disable ())
    f

(* Subregion proof cache plumbing (docs/serving.md).  [--proofcache]
   attaches an in-memory cache to the run; [--proofcache-persist F]
   additionally replays F's journal first and appends newly proved
   subregions to it, so repeated invocations warm-start each other. *)

let proofcache_flag =
  let doc =
    "Attach a subregion proof cache: proved sub-boxes are reused across \
     the properties of this invocation (and across invocations with \
     $(b,--proofcache-persist))."
  in
  Arg.(value & flag & info [ "proofcache" ] ~doc)

let proofcache_persist_arg =
  let doc =
    "Persist the proof cache as a JSONL journal at $(docv): proved \
     subregions are loaded from it on start and appended as they are \
     found.  Implies $(b,--proofcache)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "proofcache-persist" ] ~docv:"FILE" ~doc)

let proofcache_of ~enabled ~persist =
  if enabled || Option.is_some persist then
    Some (Charon.Proofcache.create ?persist ())
  else None

let report_proofcache cache =
  Option.iter
    (fun cache ->
      let s = Charon.Proofcache.stats cache in
      Format.printf "proof cache: %d hits / %d lookups, %d entries@."
        s.Charon.Proofcache.hits s.Charon.Proofcache.lookups
        s.Charon.Proofcache.entries;
      Charon.Proofcache.close cache)
    cache

(* ------------------------------------------------------------------ *)
(* verify                                                             *)

let verify_cmd =
  let run () network target center radius box timeout delta seed workers
      policy_file use_proofcache proofcache_persist trace stats =
    let net = Nn.Serial.load network in
    let region = region_of ~center ~radius ~box in
    let prop = Common.Property.create ~region ~target () in
    let policy = load_policy policy_file in
    let config = { Charon.Verify.default_config with Charon.Verify.delta } in
    let rng = Linalg.Rng.create seed in
    let proofcache =
      proofcache_of ~enabled:use_proofcache ~persist:proofcache_persist
    in
    let report =
      with_telemetry ~trace ~stats (fun () ->
          Charon.Verify.run ~config
            ~budget:(Common.Budget.of_seconds timeout)
            ~workers ?proofcache ~rng ~policy net prop)
    in
    Format.printf "%a@." Common.Outcome.pp report.Charon.Verify.outcome;
    Format.printf
      "time %.3fs, %d nodes, %d abstract runs, %d PGD calls, depth %d, %d \
       workers@."
      report.Charon.Verify.elapsed report.Charon.Verify.nodes
      report.Charon.Verify.analyze_calls report.Charon.Verify.pgd_calls
      report.Charon.Verify.peak_depth report.Charon.Verify.workers;
    List.iter
      (fun (spec, n) ->
        Format.printf "  domain %a used %d times@." Domains.Domain.pp spec n)
      report.Charon.Verify.domains_used;
    if Option.is_some proofcache then
      Format.printf "proof cache: %d hits / %d lookups this run@."
        report.Charon.Verify.cache_hits report.Charon.Verify.cache_lookups;
    if report.Charon.Verify.kernel_fanouts > 0 then
      Format.printf
        "kernel parallelism: %d solo regions fanned out, peak %d domains@."
        report.Charon.Verify.kernel_fanouts
        report.Charon.Verify.kernel_peak_domains;
    report_proofcache proofcache;
    match report.Charon.Verify.outcome with
    | Common.Outcome.Verified | Common.Outcome.Refuted _ -> 0
    | Common.Outcome.Timeout | Common.Outcome.Unknown -> 1
  in
  let term =
    Term.(
      const run $ logs_term $ network_arg $ target_arg $ center_arg
      $ radius_arg $ box_arg $ timeout_arg $ delta_arg $ seed_arg
      $ workers_arg $ policy_arg $ proofcache_flag $ proofcache_persist_arg
      $ trace_arg $ stats_arg)
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify or refute a robustness property")
    term

(* ------------------------------------------------------------------ *)
(* train                                                              *)

let train_cmd =
  let out_arg =
    let doc = "Where to write the learned policy parameters." in
    Arg.(value & opt string "policy.txt" & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let run () out seed =
    Printf.printf "learning a verification policy on ACAS-like problems...\n%!";
    let result = Experiments.Training.learn ~seed () in
    Charon.Policy.save out result.Charon.Learn.policy;
    Printf.printf "best objective %.1f after %d evaluations; saved to %s\n"
      result.Charon.Learn.best_score result.Charon.Learn.evaluations out;
    0
  in
  let term = Term.(const run $ logs_term $ out_arg $ seed_arg) in
  Cmd.v
    (Cmd.info "train"
       ~doc:"Learn a verification policy with Bayesian optimization")
    term

(* ------------------------------------------------------------------ *)
(* netgen                                                             *)

let netgen_cmd =
  let arch_arg =
    let doc =
      Printf.sprintf "Benchmark architecture: one of %s."
        (String.concat ", " Datasets.Suite.network_names)
    in
    Arg.(
      value
      & opt string "mnist-3x100"
      & info [ "arch"; "a" ] ~docv:"NAME" ~doc)
  in
  let out_arg =
    let doc = "Output network file." in
    Arg.(value & opt string "network.net" & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let run () arch out seed =
    let entry = Datasets.Suite.build_network ~seed arch in
    Nn.Serial.save out entry.Datasets.Suite.net;
    Printf.printf "%s (%s): test accuracy %.2f, saved to %s\n"
      entry.Datasets.Suite.name entry.Datasets.Suite.description
      entry.Datasets.Suite.test_accuracy out;
    0
  in
  let term = Term.(const run $ logs_term $ arch_arg $ out_arg $ seed_arg) in
  Cmd.v (Cmd.info "netgen" ~doc:"Train and save a benchmark network") term

(* ------------------------------------------------------------------ *)
(* suite                                                              *)

let suite_cmd =
  let per_network_arg =
    let doc = "Number of properties per benchmark network." in
    Arg.(value & opt int 6 & info [ "per-network" ] ~docv:"N" ~doc)
  in
  let run () per_network timeout seed workers policy_file trace stats =
    let policy = load_policy policy_file in
    let w = Datasets.Suite.benchmark ~seed ~per_network () in
    let tool = Experiments.Tool.charon ~policy () in
    let results =
      with_telemetry ~trace ~stats (fun () ->
          Experiments.Runner.run_suite ~jobs:workers ~seed ~timeout [ tool ] w
            ~progress:(fun r ->
              Printf.printf "%-14s %-24s %-9s %.2fs\n%!"
                r.Experiments.Runner.network r.Experiments.Runner.property
                (Common.Outcome.label r.Experiments.Runner.outcome)
                r.Experiments.Runner.time))
    in
    let solved = List.length (Experiments.Runner.solved results) in
    Printf.printf "solved %d / %d\n" solved (List.length results);
    0
  in
  let term =
    Term.(
      const run $ logs_term $ per_network_arg $ timeout_arg $ seed_arg
      $ workers_arg $ policy_arg $ trace_arg $ stats_arg)
  in
  Cmd.v (Cmd.info "suite" ~doc:"Run Charon over the benchmark suite") term

(* ------------------------------------------------------------------ *)
(* check                                                              *)

let check_cmd =
  let props_arg =
    let doc = "Property file (see Common.Propfile for the format)." in
    Arg.(
      required
      & opt (some file) None
      & info [ "properties"; "p" ] ~docv:"FILE" ~doc)
  in
  let default_net_arg =
    let doc =
      "Network file used for records that do not name one themselves."
    in
    Arg.(
      value & opt (some file) None & info [ "network"; "n" ] ~docv:"FILE" ~doc)
  in
  let run () props_file default_net timeout delta seed workers policy_file
      use_proofcache proofcache_persist trace stats =
    let entries = Common.Propfile.load props_file in
    let policy = load_policy policy_file in
    let config = { Charon.Verify.default_config with Charon.Verify.delta } in
    (* One proof cache across the whole property file: overlapping
       regions on the same network reuse each other's subregion
       proofs. *)
    let proofcache =
      proofcache_of ~enabled:use_proofcache ~persist:proofcache_persist
    in
    (* Cache loaded networks: property files typically share one. *)
    let nets = Hashtbl.create 4 in
    let network_of entry =
      let path =
        match (entry.Common.Propfile.network, default_net) with
        | Some p, _ -> Filename.concat (Filename.dirname props_file) p
        | None, Some p -> p
        | None, None ->
            failwith
              (Printf.sprintf "property %s names no network and no --network                                was given"
                 entry.Common.Propfile.property.Common.Property.name)
      in
      match Hashtbl.find_opt nets path with
      | Some net -> net
      | None ->
          let net = Nn.Serial.load path in
          Hashtbl.add nets path net;
          net
    in
    let unsolved = ref 0 in
    with_telemetry ~trace ~stats (fun () ->
        List.iter
          (fun entry ->
            let net = network_of entry in
            let rng = Linalg.Rng.create seed in
            let report =
              Charon.Verify.run ~config
                ~budget:(Common.Budget.of_seconds timeout)
                ~workers ?proofcache ~rng ~policy net
                entry.Common.Propfile.property
            in
            if not (Common.Outcome.is_solved report.Charon.Verify.outcome) then
              incr unsolved;
            Format.printf "%-32s %-10s %.3fs@."
              entry.Common.Propfile.property.Common.Property.name
              (Common.Outcome.label report.Charon.Verify.outcome)
              report.Charon.Verify.elapsed)
          entries);
    Format.printf "%d properties, %d unsolved@." (List.length entries) !unsolved;
    report_proofcache proofcache;
    if !unsolved = 0 then 0 else 1
  in
  let term =
    Term.(
      const run $ logs_term $ props_arg $ default_net_arg $ timeout_arg
      $ delta_arg $ seed_arg $ workers_arg $ policy_arg $ proofcache_flag
      $ proofcache_persist_arg $ trace_arg $ stats_arg)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Decide every property in a property file")
    term

(* ------------------------------------------------------------------ *)
(* export                                                             *)

let export_cmd =
  let dir_arg =
    let doc = "Output directory (created if missing)." in
    Arg.(value & opt string "suite" & info [ "out"; "o" ] ~docv:"DIR" ~doc)
  in
  let per_network_arg =
    let doc = "Number of properties per benchmark network." in
    Arg.(value & opt int 12 & info [ "per-network" ] ~docv:"N" ~doc)
  in
  let run () dir per_network seed =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let w = Datasets.Suite.benchmark ~seed ~per_network () in
    List.iter
      (fun ((entry : Datasets.Suite.entry), props) ->
        let net_file = entry.Datasets.Suite.name ^ ".net" in
        Nn.Serial.save (Filename.concat dir net_file) entry.Datasets.Suite.net;
        let records =
          List.map
            (fun property ->
              { Common.Propfile.property; network = Some net_file })
            props
        in
        Common.Propfile.save
          (Filename.concat dir (entry.Datasets.Suite.name ^ ".props"))
          records;
        Printf.printf "%s: %d properties
" entry.Datasets.Suite.name
          (List.length props))
      w;
    Printf.printf "suite written to %s/
" dir;
    0
  in
  let term = Term.(const run $ logs_term $ dir_arg $ per_network_arg $ seed_arg) in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Write the benchmark suite to disk as networks and property files")
    term

(* ------------------------------------------------------------------ *)
(* analyze                                                            *)

let analyze_cmd =
  let domain_arg =
    let doc = "Abstract domain: I1, Z1, ZJ1, S1, Z4, ZJ64, ..." in
    Arg.(value & opt string "Z1" & info [ "domain"; "d" ] ~docv:"SPEC" ~doc)
  in
  let run () network target center radius box domain =
    let net = Nn.Serial.load network in
    let region = region_of ~center ~radius ~box in
    let spec =
      match Domains.Domain.of_string domain with
      | Some s -> s
      | None -> failwith (Printf.sprintf "unknown domain %S" domain)
    in
    let margin = Absint.Analyzer.margin_lower net region ~k:target spec in
    let bounds = Absint.Analyzer.output_bounds net region spec in
    Format.printf "domain %a: margin lower bound %+g -> %s@."
      Domains.Domain.pp spec margin
      (if margin > 0.0 then "verified" else "cannot verify");
    Array.iteri
      (fun i (lo, hi) -> Format.printf "  y%d in [%+g, %+g]@." i lo hi)
      bounds;
    if margin > 0.0 then 0 else 1
  in
  let term =
    Term.(
      const run $ logs_term $ network_arg $ target_arg $ center_arg
      $ radius_arg $ box_arg $ domain_arg)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"One abstract-interpretation pass with a chosen domain")
    term

(* ------------------------------------------------------------------ *)
(* attack                                                             *)

let attack_cmd =
  let method_arg =
    let doc = "Attack method: pgd or fgsm." in
    Arg.(value & opt string "pgd" & info [ "method"; "m" ] ~docv:"NAME" ~doc)
  in
  let run () network target center radius box seed method_ =
    let net = Nn.Serial.load network in
    let region = region_of ~center ~radius ~box in
    let obj = Optim.Objective.create net ~k:target in
    let x, v =
      match method_ with
      | "pgd" -> Optim.Pgd.minimize ~rng:(Linalg.Rng.create seed) obj region
      | "fgsm" -> Optim.Fgsm.attack_center obj region
      | other -> failwith (Printf.sprintf "unknown attack method %S" other)
    in
    Format.printf "F(x) = %+g at %a@." v Linalg.Vec.pp x;
    if v <= 0.0 then begin
      Format.printf "adversarial: classified as %d instead of %d@."
        (Nn.Network.classify net x) target;
      0
    end
    else begin
      Format.printf "no counterexample found@.";
      1
    end
  in
  let term =
    Term.(
      const run $ logs_term $ network_arg $ target_arg $ center_arg
      $ radius_arg $ box_arg $ seed_arg $ method_arg)
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Gradient-based counterexample search")
    term

(* ------------------------------------------------------------------ *)
(* serve / submit                                                     *)

let socket_arg =
  let doc = "Unix-domain socket of the charon-serve daemon." in
  Arg.(
    value
    & opt string "charon-serve.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp_client_arg =
  let doc =
    "Reach the daemon over TCP at $(docv) instead of the Unix socket \
     (HOST:PORT, or just PORT for 127.0.0.1)."
  in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let api_key_arg =
  let doc = "Tenant API key (required over TCP when tenants are configured)." in
  Arg.(value & opt (some string) None & info [ "api-key" ] ~docv:"KEY" ~doc)

let parse_tcp_endpoint s =
  match String.rindex_opt s ':' with
  | None -> ("127.0.0.1", int_of_string s)
  | Some i ->
      let host = String.sub s 0 i in
      let port =
        int_of_string (String.sub s (i + 1) (String.length s - i - 1))
      in
      ((if host = "" then "127.0.0.1" else host), port)

let addr_of socket tcp =
  match tcp with
  | None -> Server.Client.Unix_socket socket
  | Some s -> (
      match parse_tcp_endpoint s with
      | host, port -> Server.Client.Tcp (host, port)
      | exception (Failure _ | Invalid_argument _) ->
          Printf.eprintf "bad --tcp endpoint %S (expected HOST:PORT)\n" s;
          exit 2)

(* Shared error surface for the daemon-client subcommands (submit,
   stats): connection failures, structured rejects, prose errors. *)
let with_daemon addr f =
  match f () with
  | code -> code
  | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "cannot reach the daemon at %s: %s\n"
        (Server.Client.addr_to_string addr)
        (Unix.error_message e);
      1
  | exception Server.Client.Server_error msg ->
      Printf.eprintf "server error: %s\n" msg;
      1
  | exception Server.Client.Rejected { code; retryable; message } ->
      Printf.eprintf "rejected (%s%s): %s\n" code
        (if retryable then ", retryable" else "")
        message;
      1

let serve_cmd =
  let cache_arg =
    let doc = "Verdict cache capacity (entries, LRU eviction)." in
    Arg.(value & opt int 256 & info [ "cache-size" ] ~docv:"N" ~doc)
  in
  let proofcache_size_arg =
    let doc = "Subregion proof cache capacity (entries, LRU eviction)." in
    Arg.(value & opt int 65536 & info [ "proofcache-size" ] ~docv:"N" ~doc)
  in
  let tcp_listen_arg =
    let doc =
      "Also listen on TCP at $(docv) (HOST:PORT, or just PORT for \
       127.0.0.1; port 0 picks an ephemeral port)."
    in
    Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)
  in
  let tenants_file_arg =
    let doc =
      "Tenant registry: a JSON file mapping API keys to named tenants \
       with fair-share weights and quotas (docs/serving.md)."
    in
    Arg.(value & opt (some file) None & info [ "tenants" ] ~docv:"FILE" ~doc)
  in
  let store_file_arg =
    let doc =
      "Persist verdicts as a JSONL journal at $(docv); proved problems \
       answer from disk across daemon restarts."
    in
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"FILE" ~doc)
  in
  let queue_capacity_arg =
    let doc =
      "Bound on queued runs; past it, submits get a retryable busy reject."
    in
    Arg.(value & opt int 256 & info [ "queue-capacity" ] ~docv:"N" ~doc)
  in
  let run () socket tcp tenants_file store queue_capacity workers cache_size
      proofcache_size proofcache_persist trace stats =
    match
      let socket = if socket = "" then None else Some socket in
      let tcp =
        match tcp with
        | None -> None
        | Some s -> (
            try Some (parse_tcp_endpoint s)
            with Failure _ | Invalid_argument _ ->
              failwith
                (Printf.sprintf "bad --tcp endpoint %S (expected HOST:PORT)" s))
      in
      let tenants =
        match tenants_file with
        | None -> Server.Tenant.empty
        | Some path -> Server.Tenant.load path
      in
      (match trace with
      | Some path -> Telemetry.enable ~path ()
      | None -> Telemetry.enable ());
      Printf.printf
        "charon serve: listening on %s (%d workers, cache %d, proofcache %d%s%s)\n%!"
        (String.concat " + "
           ((match socket with Some s -> [ s ] | None -> [])
           @
           match tcp with
           | Some (h, p) -> [ Printf.sprintf "%s:%d" h p ]
           | None -> []))
        workers cache_size proofcache_size
        (match proofcache_persist with
        | Some p -> Printf.sprintf " persisted to %s" p
        | None -> "")
        (match store with
        | Some p -> Printf.sprintf ", verdict store %s" p
        | None -> "");
      Server.Daemon.serve ?socket ?tcp ~workers ~cache_capacity:cache_size
        ~proofcache_capacity:proofcache_size ?proofcache_persist
        ?store_path:store ~queue_capacity ~tenants ()
    with
    | () ->
        if stats then print_string (Telemetry.Metrics.summary_table ());
        Telemetry.disable ();
        0
    | exception (Failure msg | Invalid_argument msg) ->
        Printf.eprintf "charon serve: %s\n" msg;
        2
  in
  let term =
    Term.(
      const run $ logs_term $ socket_arg $ tcp_listen_arg $ tenants_file_arg
      $ store_file_arg $ queue_capacity_arg $ workers_arg $ cache_arg
      $ proofcache_size_arg $ proofcache_persist_arg $ trace_arg
      $ stats_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the verification daemon (see also charon-serve-client)")
    term

let submit_cmd =
  let wait_flag =
    let doc = "Poll until the job finishes and print the final status." in
    Arg.(value & flag & info [ "wait"; "w" ] ~doc)
  in
  let name_arg =
    let doc = "Label echoed back in status responses." in
    Arg.(value & opt string "property" & info [ "name" ] ~docv:"NAME" ~doc)
  in
  let run () socket tcp api_key network target center radius box timeout delta
      seed name wait =
    let addr = addr_of socket tcp in
    let spec =
      {
        Server.Protocol.name;
        network = In_channel.with_open_text network In_channel.input_all;
        box = region_of ~center ~radius ~box;
        target;
        delta;
        timeout = Some timeout;
        max_steps = None;
        seed;
      }
    in
    with_daemon addr (fun () ->
        let id, response = Server.Client.submit ?api_key ~addr spec in
        let json =
          if
            wait
            && not (Server.Client.terminal (Server.Client.job_state response))
          then Server.Client.wait ?api_key ~addr id
          else response
        in
        print_endline (Telemetry.Jsonw.to_string ~pretty:true json);
        0)
  in
  let term =
    Term.(
      const run $ logs_term $ socket_arg $ tcp_client_arg $ api_key_arg
      $ network_arg $ target_arg $ center_arg $ radius_arg $ box_arg
      $ timeout_arg $ delta_arg $ seed_arg $ name_arg $ wait_flag)
  in
  Cmd.v
    (Cmd.info "submit" ~doc:"Submit one verification job to a running daemon")
    term

let stats_srv_cmd =
  let json_flag =
    let doc = "Print the raw stats JSON instead of the summary." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let module J = Telemetry.Jsonw in
  (* Tolerant accessors: a field the daemon doesn't know yet (or an
     older daemon not sending one we expect) prints as 0, not a crash —
     client and daemon versions may skew. *)
  let jint path json =
    let rec go path json =
      match path with
      | [] -> J.to_int_opt json
      | k :: rest -> Option.bind (J.member k json) (go rest)
    in
    Option.value ~default:0 (go path json)
  in
  let jfloat path json =
    let rec go path json =
      match path with
      | [] -> J.to_float_opt json
      | k :: rest -> Option.bind (J.member k json) (go rest)
    in
    Option.value ~default:0.0 (go path json)
  in
  let jstr path json =
    let rec go path json =
      match path with
      | [] -> J.to_string_opt json
      | k :: rest -> Option.bind (J.member k json) (go rest)
    in
    Option.value ~default:"?" (go path json)
  in
  let print_summary json =
    Printf.printf "charon-serve: %d workers, up %.1fs\n" (jint [ "workers" ] json)
      (jfloat [ "uptime_seconds" ] json);
    Printf.printf "queue: %d queued (capacity %d), %d in flight (peak %d)\n"
      (jint [ "queue_depth" ] json)
      (jint [ "queue_capacity" ] json)
      (jint [ "in_flight" ] json)
      (jint [ "peak_in_flight" ] json);
    Printf.printf
      "jobs: %d submitted, %d completed, %d cancelled, %d failed, %d rejected\n"
      (jint [ "jobs"; "submitted" ] json)
      (jint [ "jobs"; "completed" ] json)
      (jint [ "jobs"; "cancelled" ] json)
      (jint [ "jobs"; "failed" ] json)
      (jint [ "jobs"; "rejected" ] json);
    Printf.printf "cache: %.1f%% hit rate; coalesced %d (inflight keys %d)\n"
      (100.0 *. jfloat [ "cache"; "hit_rate" ] json)
      (jint [ "coalesce"; "coalesced_total" ] json)
      (jint [ "coalesce"; "inflight_keys" ] json);
    (match J.member "store" json with
    | Some store ->
        Printf.printf "store: %s (%d entries, %d loaded, %d hits)\n"
          (jstr [ "path" ] store) (jint [ "entries" ] store)
          (jint [ "loaded" ] store) (jint [ "hits" ] store)
    | None -> ());
    match J.member "tenants" json with
    | Some (J.Arr (_ :: _ as tenants)) ->
        Printf.printf "%-12s %6s %5s %8s %6s %6s %6s %7s %7s %9s\n" "tenant"
          "weight" "quota" "accepted" "cached" "coal" "done" "rej/q" "rej/b"
          "p95-age";
        List.iter
          (fun t ->
            Printf.printf "%-12s %6.1f %5s %8d %6d %6d %6d %7d %7d %8.3fs\n"
              (jstr [ "name" ] t)
              (jfloat [ "weight" ] t)
              (match J.member "quota" t with
              | Some (J.Int q) -> string_of_int q
              | _ -> "-")
              (jint [ "accepted" ] t) (jint [ "cache_hits" ] t)
              (jint [ "coalesced" ] t) (jint [ "completed" ] t)
              (jint [ "rejected_quota" ] t)
              (jint [ "rejected_busy" ] t)
              (jfloat [ "queue_age"; "p95_seconds" ] t))
          tenants
    | Some _ | None -> ()
  in
  let run () socket tcp api_key raw =
    let addr = addr_of socket tcp in
    with_daemon addr (fun () ->
        let json = Server.Client.stats ?api_key ~addr () in
        if raw then print_endline (J.to_string ~pretty:true json)
        else print_summary json;
        0)
  in
  let term =
    Term.(
      const run $ logs_term $ socket_arg $ tcp_client_arg $ api_key_arg
      $ json_flag)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Per-tenant accounting, queue and cache statistics of a running \
          daemon")
    term

(* ------------------------------------------------------------------ *)
(* dverify / worker                                                   *)

let dverify_cmd =
  let dworkers_arg =
    let doc = "Worker $(i,processes) to shard the problem across." in
    Arg.(value & opt int 2 & info [ "workers"; "w" ] ~docv:"N" ~doc)
  in
  let splits_arg =
    let doc =
      "Lower bound on initial canonical splits (0 = four per worker)."
    in
    Arg.(value & opt int 0 & info [ "splits" ] ~docv:"N" ~doc)
  in
  let steps_arg =
    let doc =
      "Per-split transformer-step budget before a shard yields its \
       frontier for escalation."
    in
    Arg.(value & opt int 20_000 & info [ "split-steps" ] ~docv:"N" ~doc)
  in
  let worker_exe_arg =
    let doc =
      "Worker executable (defaults to this binary, re-executed as \
       $(b,charon worker))."
    in
    Arg.(
      value & opt (some string) None & info [ "worker-exe" ] ~docv:"EXE" ~doc)
  in
  let crash_after_arg =
    let doc =
      "Crash injection: the first worker SIGKILLs itself upon receiving \
       its ($(docv)+1)-th split.  Exercises the reassignment path (used \
       by the CI distributed lane)."
    in
    Arg.(
      value & opt (some int) None & info [ "crash-after" ] ~docv:"K" ~doc)
  in
  let trace_dir_arg =
    let doc =
      "Directory for per-process JSONL traces (coordinator.jsonl plus \
       worker-N.jsonl, via each worker's CHARON_WORKER_TRACE)."
    in
    Arg.(
      value & opt (some string) None & info [ "trace-dir" ] ~docv:"DIR" ~doc)
  in
  let stats_json_arg =
    let doc = "Write the outcome and coordinator statistics to $(docv)." in
    Arg.(
      value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE" ~doc)
  in
  let run () network target center radius box timeout delta seed workers
      splits steps worker_exe crash_after trace_dir proofcache_persist
      stats_json trace stats =
    let spec =
      {
        Server.Protocol.name = Filename.basename network;
        network = In_channel.with_open_text network In_channel.input_all;
        box = region_of ~center ~radius ~box;
        target;
        delta;
        timeout = Some timeout;
        max_steps = None;
        seed;
      }
    in
    let config =
      {
        (Server.Coordinator.default_config ~workers) with
        Server.Coordinator.initial_splits = splits;
        initial_steps = steps;
        trace_dir;
        proofcache_persist;
        crash_injection = Option.map (fun k -> (0, k)) crash_after;
      }
    in
    (match trace_dir with
    | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
    | Some _ | None -> ());
    let worker_cmd =
      match worker_exe with
      | Some exe -> [| exe; "worker" |]
      | None -> [| Sys.executable_name; "worker" |]
    in
    let trace =
      (* --trace-dir routes the coordinator's own trace next to the
         workers' unless --trace already named a file. *)
      match (trace, trace_dir) with
      | (Some _ as t), _ -> t
      | None, Some dir -> Some (Filename.concat dir "coordinator.jsonl")
      | None, None -> None
    in
    with_telemetry ~trace ~stats (fun () ->
        match Server.Coordinator.run ~worker_cmd ~config spec with
        | r ->
            let s = r.Server.Coordinator.stats in
            Format.printf "%a@." Common.Outcome.pp r.Server.Coordinator.outcome;
            Format.printf "time %.3fs, %d worker processes@."
              r.Server.Coordinator.elapsed workers;
            Format.printf
              "dverify stats: initial %d, dealt %d, stolen %d, reassigned \
               %d, escalated %d, deaths %d, respawns %d@."
              s.Server.Coordinator.initial_splits s.Server.Coordinator.dealt
              s.Server.Coordinator.stolen s.Server.Coordinator.reassigned
              s.Server.Coordinator.escalated
              s.Server.Coordinator.worker_deaths
              s.Server.Coordinator.respawns;
            List.iter
              (fun (slot, wall) ->
                Format.printf "  shard %d busy %.3fs@." slot wall)
              s.Server.Coordinator.shard_walls;
            (match stats_json with
            | None -> ()
            | Some path ->
                let j =
                  Telemetry.Jsonw.Obj
                    [
                      ( "outcome",
                        Server.Protocol.outcome_to_json
                          r.Server.Coordinator.outcome );
                      ("elapsed", Telemetry.Jsonw.Float
                         r.Server.Coordinator.elapsed);
                      ("workers", Telemetry.Jsonw.Int workers);
                      ( "initial_splits",
                        Telemetry.Jsonw.Int s.Server.Coordinator.initial_splits
                      );
                      ("dealt", Telemetry.Jsonw.Int s.Server.Coordinator.dealt);
                      ( "stolen",
                        Telemetry.Jsonw.Int s.Server.Coordinator.stolen );
                      ( "reassigned",
                        Telemetry.Jsonw.Int s.Server.Coordinator.reassigned );
                      ( "escalated",
                        Telemetry.Jsonw.Int s.Server.Coordinator.escalated );
                      ( "worker_deaths",
                        Telemetry.Jsonw.Int s.Server.Coordinator.worker_deaths
                      );
                      ( "respawns",
                        Telemetry.Jsonw.Int s.Server.Coordinator.respawns );
                      ( "handshake_rejects",
                        Telemetry.Jsonw.Int
                          s.Server.Coordinator.handshake_rejects );
                      ( "shard_walls",
                        Telemetry.Jsonw.Arr
                          (List.map
                             (fun (slot, wall) ->
                               Telemetry.Jsonw.Obj
                                 [
                                   ("slot", Telemetry.Jsonw.Int slot);
                                   ("wall", Telemetry.Jsonw.Float wall);
                                 ])
                             s.Server.Coordinator.shard_walls) );
                    ]
                in
                Out_channel.with_open_text path (fun oc ->
                    output_string oc
                      (Telemetry.Jsonw.to_string ~pretty:true j);
                    output_char oc '\n'));
            (match r.Server.Coordinator.outcome with
            | Common.Outcome.Verified | Common.Outcome.Refuted _ -> 0
            | Common.Outcome.Timeout | Common.Outcome.Unknown -> 1)
        | exception Failure msg ->
            Printf.eprintf "charon dverify: %s\n" msg;
            2)
  in
  let term =
    Term.(
      const run $ logs_term $ network_arg $ target_arg $ center_arg
      $ radius_arg $ box_arg $ timeout_arg $ delta_arg $ seed_arg
      $ dworkers_arg $ splits_arg $ steps_arg $ worker_exe_arg
      $ crash_after_arg $ trace_dir_arg $ proofcache_persist_arg
      $ stats_json_arg $ trace_arg $ stats_arg)
  in
  Cmd.v
    (Cmd.info "dverify"
       ~doc:
         "Verify one hard property across multiple worker processes \
          (split-and-conquer with work-stealing and crash recovery)")
    term

let worker_cmd =
  let run () = Server.Worker.main () in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Run as a charon-dverify worker speaking Protocol.Dist on \
          stdin/stdout (spawned by $(b,charon dverify); rarely useful \
          by hand)")
    Term.(const run $ logs_term)

(* ------------------------------------------------------------------ *)
(* demo                                                               *)

let demo_cmd =
  let run () trace stats =
    let net = Nn.Init.xor () in
    print_string (Nn.Network.describe net);
    let region = Domains.Box.create ~lo:[| 0.3; 0.3 |] ~hi:[| 0.7; 0.7 |] in
    let prop =
      Common.Property.create ~name:"example-3.1" ~region ~target:1 ()
    in
    let rng = Linalg.Rng.create 2019 in
    with_telemetry ~trace ~stats (fun () ->
        let report =
          Charon.Verify.run ~rng ~policy:Charon.Policy.default net prop
        in
        Format.printf "property %a: %a@." Common.Property.pp prop
          Common.Outcome.pp report.Charon.Verify.outcome;
        let bad = { prop with Common.Property.target = 0; name = "negation" } in
        let report =
          Charon.Verify.run ~rng ~policy:Charon.Policy.default net bad
        in
        Format.printf "property %a: %a@." Common.Property.pp bad
          Common.Outcome.pp report.Charon.Verify.outcome);
    0
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Verify the XOR example from the paper")
    Term.(const run $ logs_term $ trace_arg $ stats_arg)

let () =
  let doc = "robustness analysis of neural networks (Charon)" in
  let info = Cmd.info "charon" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            verify_cmd;
            check_cmd;
            analyze_cmd;
            attack_cmd;
            train_cmd;
            netgen_cmd;
            suite_cmd;
            export_cmd;
            serve_cmd;
            submit_cmd;
            stats_srv_cmd;
            dverify_cmd;
            worker_cmd;
            demo_cmd;
          ]))
