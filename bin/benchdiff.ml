(* benchdiff: compare two BENCH_*.json files and flag perf regressions.

   Usage:
     dune exec bin/benchdiff.exe -- BASE.json NEW.json
       [--threshold 0.15]   relative slowdown tolerated before a record
                            counts as a regression (default 0.15)
     [--warn-only]          report regressions but exit 0 (CI on noisy
                            shared runners)
     [--only GROUP]         compare only kernels records of that group
                            (e.g. CI's hard gate on `gemm` while conv /
                            deep-propagate stay warn-only)

   Understands both repo benchmark schemas:
     - kernels files (bench/kernels.exe): records keyed by
       (group, name, shape, workers) — the worker count defaults to 1
       when the row predates the field, so parallel rows only ever
       compare like-for-like — metric ns_per_op;
     - suite files (Runner.save_json): records keyed by
       (tool, network, property), metric time_seconds.
   Top-level wall_seconds and telemetry counters are compared too, as
   informational context (counters measure work done, not time, so they
   never trip the gate on their own).

   Exit status: 0 no regression (or --warn-only), 1 regression beyond
   the threshold, 2 usage / IO / parse errors or nothing comparable. *)

module J = Telemetry.Jsonw

type record = { key : string; group : string option; metric : float }

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("benchdiff: " ^ s); exit 2) fmt

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> die "%s" msg
  | ic ->
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (match J.parse text with
      | json -> json
      | exception J.Parse_error msg -> die "%s: %s" path msg)

let str_field name json =
  Option.bind (J.member name json) J.to_string_opt

let float_field name json =
  Option.bind (J.member name json) J.to_float_opt

let int_field name json = Option.bind (J.member name json) J.to_int_opt

(* One comparable record per result row.  A kernels row is keyed by
   (group, name, shape) with ns_per_op; a suite row by (tool, network,
   property) with time_seconds.  Rows that fit neither schema are
   skipped — so a file mixing both, or a future schema, degrades to
   "fewer comparable records", not an error. *)
let record_of_row row =
  match (str_field "group" row, str_field "name" row, str_field "shape" row) with
  | Some g, Some n, Some s -> begin
      match float_field "ns_per_op" row with
      | Some m ->
          (* Workers join the key so a 4-worker row can only ever be
             compared against another 4-worker row; rows written before
             the field existed were all sequential. *)
          let w = Option.value ~default:1 (int_field "workers" row) in
          Some
            {
              key = Printf.sprintf "%s/%s %s@w%d" g n s w;
              group = Some g;
              metric = m;
            }
      | None -> None
    end
  | _ -> begin
      match
        ( str_field "tool" row,
          str_field "network" row,
          str_field "property" row,
          float_field "time_seconds" row )
      with
      | Some t, Some n, Some p, Some m ->
          Some { key = Printf.sprintf "%s/%s/%s" t n p; group = None; metric = m }
      | _ -> None
    end

let records json =
  match J.member "results" json with
  | Some (J.Arr rows) -> List.filter_map record_of_row rows
  | Some _ | None -> []

let counters json =
  match J.member "counters" json with
  | Some (J.Obj fields) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun n -> (k, n)) (J.to_int_opt v))
        fields
  | Some _ | None -> []

let () =
  let threshold = ref 0.15 in
  let warn_only = ref false in
  let only = ref None in
  let files = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--threshold" :: v :: rest -> begin
        match float_of_string_opt v with
        | Some t when t > 0.0 ->
            threshold := t;
            parse_args rest
        | Some _ | None -> die "--threshold expects a positive float (got %s)" v
      end
    | "--warn-only" :: rest ->
        warn_only := true;
        parse_args rest
    | "--only" :: g :: rest ->
        only := Some g;
        parse_args rest
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
        die "unknown option %s" arg
    | file :: rest ->
        files := file :: !files;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let base_path, new_path =
    match List.rev !files with
    | [ b; n ] -> (b, n)
    | _ -> die "expected exactly two files: benchdiff BASE.json NEW.json"
  in
  let base = load base_path and next = load new_path in
  let keep (r : record) =
    match !only with None -> true | Some g -> r.group = Some g
  in
  let base_records = List.filter keep (records base) in
  let next_records = List.filter keep (records next) in
  let qualifier =
    match !only with
    | None -> ""
    | Some g -> Printf.sprintf " in group %s" g
  in
  if base_records = [] then
    die "%s: no benchmark records found%s" base_path qualifier;
  if next_records = [] then
    die "%s: no benchmark records found%s" new_path qualifier;
  let regressions = ref 0 and improvements = ref 0 and compared = ref 0 in
  Printf.printf "%-44s %14s %14s %8s\n" "record" "base" "new" "ratio";
  List.iter
    (fun (b : record) ->
      match List.find_opt (fun (n : record) -> n.key = b.key) next_records with
      | None -> ()
      | Some n when b.metric <= 0.0 || n.metric <= 0.0 -> ()
      | Some n ->
          incr compared;
          let ratio = n.metric /. b.metric in
          let flag =
            if ratio > 1.0 +. !threshold then begin
              incr regressions;
              "  REGRESSION"
            end
            else if ratio < 1.0 -. !threshold then begin
              incr improvements;
              "  improved"
            end
            else ""
          in
          Printf.printf "%-44s %14.1f %14.1f %7.2fx%s\n" b.key b.metric
            n.metric ratio flag)
    base_records;
  if !compared = 0 then
    die "no records in common between %s and %s" base_path new_path;
  (match (float_field "wall_seconds" base, float_field "wall_seconds" next) with
  | Some wb, Some wn when wb > 0.0 ->
      Printf.printf "%-44s %14.2f %14.2f %7.2fx\n" "(wall_seconds)" wb wn
        (wn /. wb)
  | _ -> ());
  let base_counters = counters base in
  let next_counters = counters next in
  if base_counters <> [] && next_counters <> [] then begin
    Printf.printf "\ncounters (work done; informational):\n";
    List.iter
      (fun (k, b) ->
        match List.assoc_opt k next_counters with
        | Some n when b > 0 ->
            Printf.printf "  %-42s %14d %14d %7.2fx\n" k b n
              (float_of_int n /. float_of_int b)
        | Some _ | None -> ())
      base_counters
  end;
  Printf.printf
    "\n%d records compared: %d regression(s), %d improvement(s) at %.0f%% \
     threshold\n"
    !compared !regressions !improvements
    (100.0 *. !threshold);
  if !regressions > 0 && not !warn_only then exit 1
