(* charon-serve: the long-running verification daemon.

   Accepts line-framed JSON verification requests over a Unix-domain
   socket, schedules them onto a pool of worker domains, and answers
   repeated questions from the verdict cache.  Wire protocol and
   operational notes: docs/serving.md.

     dune exec bin/serve.exe -- --socket /tmp/charon.sock --workers 4

   The process runs until a client sends {"op":"shutdown"} (e.g.
   `charon-serve-client shutdown`).

   With --worker the binary is a charon-dverify worker instead: it
   speaks Protocol.Dist on stdin/stdout and verifies split subtrees
   for a coordinator (`charon dverify --worker-exe ...`). *)

open Cmdliner

(* Intercepted before cmdliner: a worker's stdin/stdout belong to the
   coordinator's pipes, so nothing else (not even --help printing) may
   touch them. *)
(* Both spellings so the binary also fits `charon dverify
   --worker-exe`, which invokes its worker executable with argv
   [|exe; "worker"|]. *)
let () =
  if
    Array.exists
      (fun a -> String.equal a "--worker" || String.equal a "worker")
      Sys.argv
  then exit (Server.Worker.main ())

let socket_arg =
  let doc = "Unix-domain socket path to listen on." in
  Arg.(
    value
    & opt string "charon-serve.sock"
    & info [ "socket"; "s" ] ~docv:"PATH" ~doc)

let workers_arg =
  let doc = "Worker domains in the verification pool." in
  Arg.(value & opt int 4 & info [ "workers"; "j" ] ~docv:"N" ~doc)

let cache_arg =
  let doc = "Verdict cache capacity (entries, LRU eviction)." in
  Arg.(value & opt int 256 & info [ "cache-size" ] ~docv:"N" ~doc)

let proofcache_arg =
  let doc = "Subregion proof cache capacity (entries, LRU eviction)." in
  Arg.(value & opt int 65536 & info [ "proofcache-size" ] ~docv:"N" ~doc)

let proofcache_persist_arg =
  let doc =
    "Persist the subregion proof cache as a JSONL journal at $(docv): \
     proved subregions are replayed on start and appended as jobs prove \
     new ones, so warm starts survive daemon restarts."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "proofcache-persist" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc = "Stream a JSONL telemetry trace to $(docv) (docs/telemetry.md)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let stats_arg =
  let doc = "Print the telemetry summary table when the daemon exits." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let run socket workers cache_size proofcache_size proofcache_persist trace
    stats =
  if workers < 1 then begin
    prerr_endline "charon-serve: --workers must be at least 1";
    2
  end
  else begin
    (match trace with
    | Some path -> Telemetry.enable ~path ()
    | None -> Telemetry.enable ());
    Printf.printf
      "charon-serve: listening on %s (%d workers, cache %d, proofcache %d%s)\n%!"
      socket workers cache_size proofcache_size
      (match proofcache_persist with
      | Some p -> Printf.sprintf " persisted to %s" p
      | None -> "");
    Server.Daemon.serve ~socket ~workers ~cache_capacity:cache_size
      ~proofcache_capacity:proofcache_size ?proofcache_persist ();
    if stats then print_string (Telemetry.Metrics.summary_table ());
    Telemetry.disable ();
    print_endline "charon-serve: shut down cleanly";
    0
  end

let cmd =
  let doc = "concurrent verification service with a verdict cache" in
  Cmd.v
    (Cmd.info "charon-serve" ~version:"1.0.0" ~doc)
    Term.(const run $ socket_arg $ workers_arg $ cache_arg $ proofcache_arg
          $ proofcache_persist_arg $ trace_arg $ stats_arg)

let () = exit (Cmd.eval' cmd)
