(* charon-serve: the long-running verification daemon.

   Accepts line-framed JSON verification requests over a Unix-domain
   socket and/or a TCP endpoint, schedules them onto a pool of worker
   domains, and answers repeated questions from the verdict cache.
   Wire protocol, tenancy and operational notes: docs/serving.md.

     dune exec bin/serve.exe -- --socket /tmp/charon.sock --workers 4
     dune exec bin/serve.exe -- --tcp 0.0.0.0:4019 --tenants tenants.json

   The process runs until a client sends {"op":"shutdown"} (e.g.
   `charon-serve-client shutdown`).

   With --worker the binary is a charon-dverify worker instead: it
   speaks Protocol.Dist on stdin/stdout and verifies split subtrees
   for a coordinator (`charon dverify --worker-exe ...`). *)

open Cmdliner

(* Intercepted before cmdliner: a worker's stdin/stdout belong to the
   coordinator's pipes, so nothing else (not even --help printing) may
   touch them. *)
(* Both spellings so the binary also fits `charon dverify
   --worker-exe`, which invokes its worker executable with argv
   [|exe; "worker"|]. *)
let () =
  if
    Array.exists
      (fun a -> String.equal a "--worker" || String.equal a "worker")
      Sys.argv
  then exit (Server.Worker.main ())

let socket_arg =
  let doc =
    "Unix-domain socket path to listen on (trusted local transport). \
     Pass the empty string to disable it and serve TCP only."
  in
  Arg.(
    value
    & opt string "charon-serve.sock"
    & info [ "socket"; "s" ] ~docv:"PATH" ~doc)

let tcp_arg =
  let doc =
    "Also listen on TCP at $(docv) (HOST:PORT, or just PORT for \
     127.0.0.1; port 0 picks an ephemeral port).  TCP clients must \
     open with the hello handshake when tenants are configured."
  in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let tenants_arg =
  let doc =
    "Tenant registry: a JSON file mapping API keys to named tenants \
     with fair-share weights and outstanding-job quotas \
     (docs/serving.md)."
  in
  Arg.(value & opt (some file) None & info [ "tenants" ] ~docv:"FILE" ~doc)

let store_arg =
  let doc =
    "Persist verdicts as a JSONL journal at $(docv): entries are \
     replayed into the cache's backing store on start, so proved \
     problems answer from disk across restarts."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"FILE" ~doc)

let queue_capacity_arg =
  let doc =
    "Bound on queued runs; past it, submits get a retryable \
     $(i,busy) reject (backpressure)."
  in
  Arg.(value & opt int 256 & info [ "queue-capacity" ] ~docv:"N" ~doc)

let workers_arg =
  let doc = "Worker domains in the verification pool." in
  Arg.(value & opt int 4 & info [ "workers"; "j" ] ~docv:"N" ~doc)

let cache_arg =
  let doc = "Verdict cache capacity (entries, LRU eviction)." in
  Arg.(value & opt int 256 & info [ "cache-size" ] ~docv:"N" ~doc)

let proofcache_arg =
  let doc = "Subregion proof cache capacity (entries, LRU eviction)." in
  Arg.(value & opt int 65536 & info [ "proofcache-size" ] ~docv:"N" ~doc)

let proofcache_persist_arg =
  let doc =
    "Persist the subregion proof cache as a JSONL journal at $(docv): \
     proved subregions are replayed on start and appended as jobs prove \
     new ones, so warm starts survive daemon restarts."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "proofcache-persist" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc = "Stream a JSONL telemetry trace to $(docv) (docs/telemetry.md)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let stats_arg =
  let doc = "Print the telemetry summary table when the daemon exits." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let parse_tcp s =
  match String.rindex_opt s ':' with
  | None -> ("127.0.0.1", int_of_string s)
  | Some i ->
      let host = String.sub s 0 i in
      let port =
        int_of_string (String.sub s (i + 1) (String.length s - i - 1))
      in
      ((if host = "" then "127.0.0.1" else host), port)

let run socket tcp tenants_file store queue_capacity workers cache_size
    proofcache_size proofcache_persist trace stats =
  if workers < 1 then begin
    prerr_endline "charon-serve: --workers must be at least 1";
    2
  end
  else begin
    match
      let socket = if socket = "" then None else Some socket in
      let tcp =
        match tcp with
        | None -> None
        | Some s -> (
            try Some (parse_tcp s)
            with Failure _ | Invalid_argument _ ->
              failwith
                (Printf.sprintf "bad --tcp endpoint %S (expected HOST:PORT)" s))
      in
      let tenants =
        match tenants_file with
        | None -> Server.Tenant.empty
        | Some path -> Server.Tenant.load path
      in
      (match trace with
      | Some path -> Telemetry.enable ~path ()
      | None -> Telemetry.enable ());
      Printf.printf
        "charon-serve: listening on %s (%d workers, cache %d, proofcache %d%s%s%s)\n%!"
        (String.concat " + "
           ((match socket with Some s -> [ s ] | None -> [])
           @
           match tcp with
           | Some (h, p) -> [ Printf.sprintf "%s:%d" h p ]
           | None -> []))
        workers cache_size proofcache_size
        (match proofcache_persist with
        | Some p -> Printf.sprintf " persisted to %s" p
        | None -> "")
        (match store with
        | Some p -> Printf.sprintf ", verdict store %s" p
        | None -> "")
        (let n = List.length (Server.Tenant.tenants tenants) in
         if n = 0 then "" else Printf.sprintf ", %d tenants" n);
      Server.Daemon.serve ?socket ?tcp ~workers ~cache_capacity:cache_size
        ~proofcache_capacity:proofcache_size ?proofcache_persist
        ?store_path:store ~queue_capacity ~tenants ()
    with
    | () ->
        if stats then print_string (Telemetry.Metrics.summary_table ());
        Telemetry.disable ();
        print_endline "charon-serve: shut down cleanly";
        0
    | exception (Failure msg | Invalid_argument msg) ->
        Printf.eprintf "charon-serve: %s\n" msg;
        2
  end

let cmd =
  let doc = "concurrent verification service with a verdict cache" in
  Cmd.v
    (Cmd.info "charon-serve" ~version:"1.0.0" ~doc)
    Term.(const run $ socket_arg $ tcp_arg $ tenants_arg $ store_arg
          $ queue_capacity_arg $ workers_arg $ cache_arg $ proofcache_arg
          $ proofcache_persist_arg $ trace_arg $ stats_arg)

let () = exit (Cmd.eval' cmd)
