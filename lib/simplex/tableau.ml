open Linalg

type result =
  | Optimal of { x : Vec.t; value : float }
  | Infeasible
  | Unbounded

type constr = Le of Vec.t * float | Eq of Vec.t * float

exception Aborted

let eps = 1e-9

(* Internal state: [tab] is an m x width array of equality rows over the
   extended variable vector (structural, slack, artificial), [rhs] the
   right-hand sides (kept non-negative), [basis.(i)] the variable basic
   in row i. *)
type tableau = {
  m : int;
  width : int;
  tab : float array array;
  rhs : float array;
  basis : int array;
}

let pivot t ~row ~col =
  let pr = t.tab.(row) in
  let p = pr.(col) in
  for j = 0 to t.width - 1 do
    pr.(j) <- pr.(j) /. p
  done;
  t.rhs.(row) <- t.rhs.(row) /. p;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let f = t.tab.(i).(col) in
      if abs_float f > 0.0 then begin
        let ri = t.tab.(i) in
        for j = 0 to t.width - 1 do
          ri.(j) <- ri.(j) -. (f *. pr.(j))
        done;
        t.rhs.(i) <- t.rhs.(i) -. (f *. t.rhs.(row))
      end
    end
  done;
  t.basis.(row) <- col

(* Reduced costs z_j - c_j for the current basis under cost vector c
   (dense over all width columns). *)
let reduced_costs t c =
  let z = Array.make t.width 0.0 in
  for j = 0 to t.width - 1 do
    let acc = ref (-.c.(j)) in
    for i = 0 to t.m - 1 do
      acc := !acc +. (c.(t.basis.(i)) *. t.tab.(i).(j))
    done;
    z.(j) <- !acc
  done;
  z

(* Primal simplex iterations with Bland's rule; [allowed j] masks columns
   that may enter (used to keep artificials out in phase 2).  Returns
   [`Optimal] or [`Unbounded].  [should_stop] is polled every few
   iterations so callers can bound wall-clock time mid-solve.

   The reduced-cost row is maintained incrementally across pivots (and
   refreshed periodically against numerical drift), which roughly halves
   the per-iteration cost on the dense tableaux the Reluplex encoding
   produces. *)
let iterate ?(should_stop = fun () -> false) t c ~allowed =
  let finished = ref None in
  let iters = ref 0 in
  let z = ref (reduced_costs t c) in
  while !finished = None do
    incr iters;
    if !iters land 15 = 0 && should_stop () then raise Aborted;
    if !iters land 63 = 0 then z := reduced_costs t c;
    let z = !z in
    (* Bland: the lowest-index improving column. *)
    let entering = ref (-1) in
    (try
       for j = 0 to t.width - 1 do
         if allowed j && z.(j) < -.eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then finished := Some `Optimal
    else begin
      let col = !entering in
      (* Ratio test; Bland tie-break on the basic variable index. *)
      let row = ref (-1) in
      let best = ref infinity in
      for i = 0 to t.m - 1 do
        let a = t.tab.(i).(col) in
        if a > eps then begin
          let ratio = t.rhs.(i) /. a in
          if
            ratio < !best -. eps
            || (ratio < !best +. eps
               && (!row < 0 || t.basis.(i) < t.basis.(!row)))
          then begin
            best := ratio;
            row := i
          end
        end
      done;
      if !row < 0 then finished := Some `Unbounded
      else begin
        let row = !row in
        pivot t ~row ~col;
        (* Eliminate the entering column from the reduced-cost row using
           the (now normalized) pivot row. *)
        let zc = z.(col) in
        if zc <> 0.0 then begin
          let pr = t.tab.(row) in
          for j = 0 to t.width - 1 do
            z.(j) <- z.(j) -. (zc *. pr.(j))
          done
        end
      end
    end
  done;
  Option.get !finished

let objective_value t c =
  let acc = ref 0.0 in
  for i = 0 to t.m - 1 do
    acc := !acc +. (c.(t.basis.(i)) *. t.rhs.(i))
  done;
  !acc

let maximize ?should_stop ~nvars constraints ~obj () =
  if Vec.dim obj <> nvars then invalid_arg "Tableau.maximize: objective size";
  Array.iter
    (fun c ->
      let a = match c with Le (a, _) | Eq (a, _) -> a in
      if Vec.dim a <> nvars then
        invalid_arg "Tableau.maximize: constraint size")
    constraints;
  let m = Array.length constraints in
  let num_slack =
    Array.fold_left
      (fun acc c -> match c with Le _ -> acc + 1 | Eq _ -> acc)
      0 constraints
  in
  (* Worst case every row needs an artificial. *)
  let width = nvars + num_slack + m in
  let tab = Array.init m (fun _ -> Array.make width 0.0) in
  let rhs = Array.make m 0.0 in
  let basis = Array.make m (-1) in
  let next_slack = ref nvars in
  let next_art = ref (nvars + num_slack) in
  let num_art = ref 0 in
  Array.iteri
    (fun i c ->
      let a, b, has_slack =
        match c with Le (a, b) -> (a, b, true) | Eq (a, b) -> (a, b, false)
      in
      let sign = if b < 0.0 then -1.0 else 1.0 in
      Array.iteri (fun j v -> tab.(i).(j) <- sign *. v) a;
      rhs.(i) <- sign *. b;
      let slack_ok = ref false in
      if has_slack then begin
        let s = !next_slack in
        incr next_slack;
        tab.(i).(s) <- sign;
        if sign > 0.0 then begin
          basis.(i) <- s;
          slack_ok := true
        end
      end;
      if not !slack_ok then begin
        let t = !next_art in
        incr next_art;
        incr num_art;
        tab.(i).(t) <- 1.0;
        basis.(i) <- t
      end)
    constraints;
  let t = { m; width; tab; rhs; basis } in
  let art_start = nvars + num_slack in
  (* Phase 1: maximize -(sum of artificials). *)
  if !num_art > 0 then begin
    let c1 = Array.make width 0.0 in
    for j = art_start to !next_art - 1 do
      c1.(j) <- -1.0
    done;
    (match iterate ?should_stop t c1 ~allowed:(fun _ -> true) with
    | `Unbounded -> assert false (* phase-1 objective is bounded by 0 *)
    | `Optimal -> ());
    if objective_value t c1 < -.eps *. 100.0 then raise Exit
  end;
  (* Drive any residual artificial out of the basis or ignore its
     (degenerate, zero) row. *)
  for i = 0 to m - 1 do
    if t.basis.(i) >= art_start then begin
      let found = ref false in
      let j = ref 0 in
      while (not !found) && !j < art_start do
        if abs_float t.tab.(i).(!j) > eps then begin
          pivot t ~row:i ~col:!j;
          found := true
        end;
        incr j
      done
    end
  done;
  (* Phase 2 with the real objective. *)
  let c2 = Array.make width 0.0 in
  Array.blit obj 0 c2 0 nvars;
  let allowed j = j < art_start in
  match iterate ?should_stop t c2 ~allowed with
  | `Unbounded -> Unbounded
  | `Optimal ->
      let x = Vec.zeros nvars in
      for i = 0 to m - 1 do
        if t.basis.(i) < nvars then x.(t.basis.(i)) <- t.rhs.(i)
      done;
      Optimal { x; value = objective_value t c2 }

let maximize ?should_stop ~nvars constraints ~obj () =
  try maximize ?should_stop ~nvars constraints ~obj () with
  | Exit -> Infeasible

let minimize ?should_stop ~nvars constraints ~obj () =
  match maximize ?should_stop ~nvars constraints ~obj:(Vec.scale (-1.0) obj) () with
  | Optimal { x; value } -> Optimal { x; value = -.value }
  | (Infeasible | Unbounded) as r -> r
