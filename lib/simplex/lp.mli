(** Linear programs over variables with general (finite) bounds.

    A convenience layer over {!Tableau}: variables live in boxes
    [lo <= x <= hi] (possibly negative), constraints are sparse rows.
    Bounds are compiled away by shifting each variable to be
    non-negative and adding its upper bound as a constraint row. *)

type t
(** A mutable problem builder over a fixed number of variables. *)

type row = (int * float) list
(** Sparse linear expression: [(variable index, coefficient)] pairs. *)

val create : nvars:int -> t
(** All variables start with bounds [\[0, 0\]]; set real bounds with
    {!set_bounds}. *)

val nvars : t -> int

val set_bounds : t -> int -> lo:float -> hi:float -> unit
(** @raise Invalid_argument if [lo > hi] or either bound is not finite
    (the Reluplex encoding always has finite bounds from interval
    analysis). *)

val add_le : t -> row -> float -> unit
(** Add [row · x <= b]. *)

val add_ge : t -> row -> float -> unit

val add_eq : t -> row -> float -> unit

type solution =
  | Optimal of { x : Linalg.Vec.t; value : float }
  | Infeasible
  | Unbounded

val maximize : ?should_stop:(unit -> bool) -> t -> row -> solution
(** Maximize the sparse objective over the accumulated constraints.  The
    returned [x] is in the original (unshifted) variable space.
    @raise Tableau.Aborted if [should_stop] fires mid-solve. *)

val minimize : ?should_stop:(unit -> bool) -> t -> row -> solution
