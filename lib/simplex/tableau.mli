(** A dense two-phase primal simplex solver.

    This is the LP substrate underneath the Reluplex-class complete
    checker (the role GLPK or a native simplex core plays in the real
    tools).  Problems are stated over non-negative variables; the
    higher-level {!Lp} module handles general variable bounds by
    shifting. *)

type result =
  | Optimal of { x : Linalg.Vec.t; value : float }
  | Infeasible
  | Unbounded

type constr =
  | Le of Linalg.Vec.t * float  (** [a · x <= b] *)
  | Eq of Linalg.Vec.t * float  (** [a · x = b] *)

exception Aborted
(** Raised mid-solve when [should_stop] returns true, so callers can
    bound wall-clock time on large programs. *)

val maximize :
  ?should_stop:(unit -> bool) ->
  nvars:int ->
  constr array ->
  obj:Linalg.Vec.t ->
  unit ->
  result
(** [maximize ~nvars constraints ~obj ()] maximizes [obj · x] subject to
    the constraints and [x >= 0].  Uses Bland's rule, so it terminates
    on all inputs.  [should_stop] is polled periodically during
    pivoting.
    @raise Invalid_argument on dimension mismatches.
    @raise Aborted if [should_stop] fires. *)

val minimize :
  ?should_stop:(unit -> bool) ->
  nvars:int ->
  constr array ->
  obj:Linalg.Vec.t ->
  unit ->
  result
(** Minimization via negation; [value] is the true (minimal) objective. *)
