open Linalg

type row = (int * float) list

type stored = { coeffs : row; bound : float; kind : [ `Le | `Ge | `Eq ] }

(* An LP builder is confined to the solver call that created it; each
   worker domain builds its own. *)
type t = {
  n : int;
  lo : float array;
  hi : float array;
  mutable rows : stored list;  (** in reverse insertion order *)
}
[@@race.domain_local]

type solution =
  | Optimal of { x : Vec.t; value : float }
  | Infeasible
  | Unbounded

let create ~nvars =
  if nvars <= 0 then invalid_arg "Lp.create: nvars must be positive";
  { n = nvars; lo = Array.make nvars 0.0; hi = Array.make nvars 0.0; rows = [] }

let nvars t = t.n

let set_bounds t i ~lo ~hi =
  if i < 0 || i >= t.n then invalid_arg "Lp.set_bounds: variable out of range";
  if not (Float.is_finite lo && Float.is_finite hi) then
    invalid_arg "Lp.set_bounds: bounds must be finite";
  if lo > hi then invalid_arg "Lp.set_bounds: lo > hi";
  t.lo.(i) <- lo;
  t.hi.(i) <- hi

let check_row t row =
  List.iter
    (fun (i, _) ->
      if i < 0 || i >= t.n then invalid_arg "Lp: row variable out of range")
    row

let add_le t row b =
  check_row t row;
  t.rows <- { coeffs = row; bound = b; kind = `Le } :: t.rows

let add_ge t row b =
  check_row t row;
  t.rows <- { coeffs = row; bound = b; kind = `Ge } :: t.rows

let add_eq t row b =
  check_row t row;
  t.rows <- { coeffs = row; bound = b; kind = `Eq } :: t.rows

(* Shift x = lo + x', densify rows, and append upper-bound rows
   x'_i <= hi_i - lo_i. *)
let compile t =
  let dense row =
    let a = Vec.zeros t.n in
    List.iter (fun (i, c) -> a.(i) <- a.(i) +. c) row;
    a
  in
  let shift_bound a b =
    (* a · (lo + x') <= b  <=>  a · x' <= b - a · lo *)
    b -. Vec.dot a t.lo
  in
  let rows = List.rev t.rows in
  let constrs =
    List.concat_map
      (fun { coeffs; bound; kind } ->
        let a = dense coeffs in
        let b = shift_bound a bound in
        match kind with
        | `Le -> [ Tableau.Le (a, b) ]
        | `Ge -> [ Tableau.Le (Vec.scale (-1.0) a, -.b) ]
        | `Eq -> [ Tableau.Eq (a, b) ])
      rows
  in
  let ub_rows =
    List.filter_map
      (fun i ->
        let w = t.hi.(i) -. t.lo.(i) in
        if w <= 0.0 then
          (* Degenerate variable: pin it with an equality. *)
          Some
            (Tableau.Eq
               ( Vec.init t.n (fun j -> if j = i then 1.0 else 0.0),
                 0.0 ))
        else
          Some
            (Tableau.Le
               ( Vec.init t.n (fun j -> if j = i then 1.0 else 0.0),
                 w )))
      (List.init t.n Fun.id)
  in
  Array.of_list (constrs @ ub_rows)

let run ?should_stop t obj ~sense =
  check_row t obj;
  let dense_obj = Vec.zeros t.n in
  List.iter (fun (i, c) -> dense_obj.(i) <- dense_obj.(i) +. c) obj;
  let constraints = compile t in
  let result =
    match sense with
    | `Max -> Tableau.maximize ?should_stop ~nvars:t.n constraints ~obj:dense_obj ()
    | `Min -> Tableau.minimize ?should_stop ~nvars:t.n constraints ~obj:dense_obj ()
  in
  match result with
  | Tableau.Infeasible -> Infeasible
  | Tableau.Unbounded -> Unbounded
  | Tableau.Optimal { x; value } ->
      let x0 = Vec.add x t.lo in
      Optimal { x = x0; value = value +. Vec.dot dense_obj t.lo }

let maximize ?should_stop t obj = run ?should_stop t obj ~sense:`Max

let minimize ?should_stop t obj = run ?should_stop t obj ~sense:`Min
