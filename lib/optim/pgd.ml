open Linalg
open Domains

type config = {
  steps : int;
  restarts : int;
  step_scale : float;
  early_stop : float option;
}

let default_config =
  { steps = 40; restarts = 5; step_scale = 0.25; early_stop = None }

let c_calls = Telemetry.Metrics.counter "optim.pgd.calls"

let c_steps = Telemetry.Metrics.counter "optim.pgd.steps"

let c_restarts = Telemetry.Metrics.counter "optim.pgd.restarts"

let run_from ~config obj region x0 =
  let base_step = config.step_scale *. Box.mean_width region in
  let best_x = ref (Box.clamp region x0) in
  let best_v = ref (Objective.value obj !best_x) in
  let x = ref !best_x in
  let stop = ref false in
  let step = ref 0 in
  while (not !stop) && !step < config.steps do
    incr step;
    let _, g = Objective.value_grad obj !x in
    let gnorm = Vec.norm2 g in
    if gnorm <= 1e-12 then stop := true
    else begin
      (* Diminishing step: eta_t = base / sqrt(t), normalized gradient. *)
      let eta = base_step /. sqrt (float_of_int !step) in
      let next =
        Box.clamp region (Vec.sub !x (Vec.scale (eta /. gnorm) g))
      in
      let v = Objective.value obj next in
      if v < !best_v then begin
        best_v := v;
        best_x := next
      end;
      x := next;
      match config.early_stop with
      | Some threshold when !best_v <= threshold -> stop := true
      | Some _ | None -> ()
    end
  done;
  Telemetry.Metrics.add c_steps !step;
  (!best_x, !best_v)

let minimize ?(config = default_config) ~rng obj region =
  if Box.dim region <> (Objective.network obj).Nn.Network.input_dim then
    invalid_arg "Pgd.minimize: region dimension mismatch";
  Telemetry.Metrics.incr c_calls;
  let sp = Telemetry.Span.enter "optim.pgd" in
  let starts =
    Array.init (Stdlib.max 1 config.restarts) (fun i ->
        if i = 0 then Box.center region else Box.sample rng region)
  in
  let best = ref None in
  let restarts_used = ref 0 in
  Array.iter
    (fun x0 ->
      let stop_now =
        match (config.early_stop, !best) with
        | Some threshold, Some (_, v) -> v <= threshold
        | _ -> false
      in
      if not stop_now then begin
        Telemetry.Metrics.incr c_restarts;
        incr restarts_used;
        let x, v = run_from ~config obj region x0 in
        match !best with
        | Some (_, bv) when bv <= v -> ()
        | Some _ | None -> best := Some (x, v)
      end)
    starts;
  match !best with
  | Some (_, v) as result ->
      Telemetry.Span.exit sp
        ~attrs:(fun () ->
          [
            ("restarts", Telemetry.Jsonw.Int !restarts_used);
            ("best", Telemetry.Jsonw.Float v);
          ]);
      Option.get result
  | None -> assert false
