(** Fast Gradient Sign Method (Goodfellow et al.), adapted to box
    regions.

    One-shot attack: step from a start point to the face of the region
    indicated by the sign of the objective gradient.  Much cheaper than
    PGD and used as a quick pre-check and in ablations. *)

val attack :
  Objective.t -> Domains.Box.t -> from:Linalg.Vec.t -> Linalg.Vec.t * float
(** [(x, F(x))] where [x] is the region point obtained by moving against
    the gradient sign all the way to the boundary. *)

val attack_center : Objective.t -> Domains.Box.t -> Linalg.Vec.t * float
(** {!attack} starting from the region center. *)
