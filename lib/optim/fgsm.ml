open Linalg
open Domains

let c_calls = Telemetry.Metrics.counter "optim.fgsm.calls"

let attack obj region ~from =
  Telemetry.Metrics.incr c_calls;
  let x0 = Box.clamp region from in
  let g = Objective.grad obj x0 in
  (* Move each coordinate to the face that decreases F: against the
     gradient sign.  Coordinates with zero gradient stay put. *)
  let x =
    Vec.init (Vec.dim x0) (fun i ->
        if g.(i) > 0.0 then region.Box.lo.(i)
        else if g.(i) < 0.0 then region.Box.hi.(i)
        else x0.(i))
  in
  (x, Objective.value obj x)

let attack_center obj region = attack obj region ~from:(Box.center region)
