(** Momentum Iterative FGSM (Dong et al.), adapted to box regions.

    Iterates signed-gradient steps with an accumulated momentum
    direction, projecting into the region after each step.  Sits between
    {!Fgsm} (one shot) and {!Pgd} (full gradient descent with restarts)
    in cost; the paper notes its method is agnostic to the choice of
    gradient-based optimizer (§8), and this module backs that claim up
    as a drop-in alternative. *)

type config = {
  steps : int;
  momentum : float;  (** decay of the accumulated direction (μ) *)
  step_scale : float;  (** per-step size as a fraction of the mean width *)
}

val default_config : config
(** 20 steps, μ = 0.9, step 0.1. *)

val attack :
  ?config:config ->
  Objective.t ->
  Domains.Box.t ->
  from:Linalg.Vec.t ->
  Linalg.Vec.t * float
(** [(x_best, f_best)]: the best point visited and its objective value;
    always inside the region. *)

val attack_center :
  ?config:config -> Objective.t -> Domains.Box.t -> Linalg.Vec.t * float
