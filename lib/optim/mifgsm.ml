open Linalg
open Domains

type config = { steps : int; momentum : float; step_scale : float }

let default_config = { steps = 20; momentum = 0.9; step_scale = 0.1 }

let norm1 v = Array.fold_left (fun acc x -> acc +. abs_float x) 0.0 v

let c_calls = Telemetry.Metrics.counter "optim.mifgsm.calls"

let attack ?(config = default_config) obj region ~from =
  Telemetry.Metrics.incr c_calls;
  let x = ref (Box.clamp region from) in
  let best_x = ref !x in
  let best_v = ref (Objective.value obj !x) in
  let accum = Vec.zeros (Box.dim region) in
  let step = config.step_scale *. Box.mean_width region in
  for _ = 1 to config.steps do
    let g = Objective.grad obj !x in
    let n1 = norm1 g in
    if n1 > 1e-12 then begin
      (* accum <- mu * accum + g / |g|_1, the MI-FGSM update. *)
      Array.iteri
        (fun i gi -> accum.(i) <- (config.momentum *. accum.(i)) +. (gi /. n1))
        g;
      let next =
        Box.clamp region
          (Vec.init (Vec.dim !x) (fun i ->
               (* descend: move against the accumulated direction *)
               !x.(i) -. (step *. Float.of_int (Float.compare accum.(i) 0.0))))
      in
      x := next;
      let v = Objective.value obj next in
      if v < !best_v then begin
        best_v := v;
        best_x := next
      end
    end
  done;
  (!best_x, !best_v)

let attack_center ?config obj region =
  attack ?config obj region ~from:(Box.center region)
