(** The adversarial objective of Eq. 1–2.

    [F(x) = N(x)_K − max_{j≠K} N(x)_j] measures how far [x] is from
    violating the robustness property [(I, K)]: a non-positive value
    means [x] is a true counterexample, and a value at most [δ] makes it
    a δ-counterexample (Definition 5.3). *)

type t

val create : Nn.Network.t -> k:int -> t
(** @raise Invalid_argument if [k] is out of range or the network has
    fewer than two classes. *)

val network : t -> Nn.Network.t

val target_class : t -> int

val value : t -> Linalg.Vec.t -> float
(** [F(x)]. *)

val grad : t -> Linalg.Vec.t -> Linalg.Vec.t
(** Gradient of [F] at [x] (subgradient at ties: the runner-up class is
    the first argmax among [j ≠ K]). *)

val value_grad : t -> Linalg.Vec.t -> float * Linalg.Vec.t
(** Both at once, sharing the forward pass. *)

val is_counterexample : t -> Linalg.Vec.t -> bool
(** [F(x) <= 0]. *)

val is_delta_counterexample : t -> delta:float -> Linalg.Vec.t -> bool
(** [F(x) <= delta]; Definition 5.3. *)
