open Linalg

type t = { net : Nn.Network.t; k : int }

let create net ~k =
  let m = net.Nn.Network.output_dim in
  if m < 2 then invalid_arg "Objective.create: need at least two classes";
  if k < 0 || k >= m then invalid_arg "Objective.create: class out of range";
  { net; k }

let network t = t.net

let target_class t = t.k

let runner_up t scores =
  let best = ref (if t.k = 0 then 1 else 0) in
  Array.iteri
    (fun j s -> if j <> t.k && s > scores.(!best) then best := j)
    scores;
  !best

let value t x =
  let scores = Nn.Network.eval t.net x in
  scores.(t.k) -. scores.(runner_up t scores)

let value_grad t x =
  let scores = Nn.Network.eval t.net x in
  let j = runner_up t scores in
  let v = scores.(t.k) -. scores.(j) in
  let dout =
    Vec.init (Vec.dim scores) (fun i ->
        if i = t.k then 1.0 else if i = j then -1.0 else 0.0)
  in
  (v, Nn.Grad.vjp t.net ~x ~dout)

let grad t x = snd (value_grad t x)

let is_counterexample t x = value t x <= 0.0

let is_delta_counterexample t ~delta x = value t x <= delta
