(** Projected gradient descent over a box region (the [Minimize] call of
    Algorithm 1).

    Minimises the adversarial objective with a diminishing step schedule
    and several random restarts, projecting back into the region after
    every step.  PGD is exactly the method named in §3; FGSM lives in
    {!Fgsm}. *)

type config = {
  steps : int;  (** gradient steps per restart *)
  restarts : int;  (** independent starts (first is the region center) *)
  step_scale : float;
      (** initial step as a fraction of the region's mean width *)
  early_stop : float option;
      (** stop as soon as the objective falls to this value or below
          (e.g. [Some delta]); [None] runs the full budget *)
}

val default_config : config
(** 40 steps, 5 restarts, step 0.25, no early stop. *)

val minimize :
  ?config:config ->
  rng:Linalg.Rng.t ->
  Objective.t ->
  Domains.Box.t ->
  Linalg.Vec.t * float
(** [(x_best, f_best)]: the best point found and its objective value.
    The returned point always lies inside the region. *)
