open Linalg

let expected_improvement ?(xi = 0.01) ~best ~mean ~variance () =
  let std = sqrt (Float.max variance 0.0) in
  if std <= 1e-12 then 0.0
  else begin
    let imp = mean -. best -. xi in
    let z = imp /. std in
    (imp *. Special.normal_cdf z) +. (std *. Special.normal_pdf z)
  end

let upper_confidence_bound ?(beta = 2.0) ~mean ~variance () =
  mean +. (beta *. sqrt (Float.max variance 0.0))
