(** Covariance kernels for Gaussian-process regression. *)

type t =
  | Squared_exponential of { length : float; variance : float }
      (** [variance * exp(-r² / (2 length²))] *)
  | Matern52 of { length : float; variance : float }
      (** Matérn with smoothness 5/2, the default of most Bayesian
          optimization packages (including BayesOpt). *)

val se : ?variance:float -> length:float -> unit -> t
(** Squared-exponential kernel; [variance] defaults to 1. *)

val matern52 : ?variance:float -> length:float -> unit -> t

val eval : t -> Linalg.Vec.t -> Linalg.Vec.t -> float

val diag : t -> float
(** [eval t x x], which is independent of [x]. *)

val gram : t -> Linalg.Vec.t array -> Linalg.Mat.t
(** Symmetric Gram matrix of a point set. *)
