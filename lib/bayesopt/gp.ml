open Linalg

type t = {
  kernel : Kernel.t;
  inputs : Vec.t array;
  chol : Mat.t;  (** lower Cholesky factor of K + noise*I *)
  alpha : Vec.t;  (** (K + noise*I)^-1 y, standardized targets *)
  y_mean : float;
  y_scale : float;
  y_std : float array;  (** standardized targets, kept for the LML *)
}

let standardize targets =
  let m = Stats.mean targets in
  let s = Stats.stddev targets in
  let scale = if s > 1e-12 then s else 1.0 in
  (m, scale, Array.map (fun y -> (y -. m) /. scale) targets)

let fit ?(noise = 1e-6) kernel ~inputs ~targets =
  let n = Array.length inputs in
  if n = 0 then invalid_arg "Gp.fit: no observations";
  if Array.length targets <> n then
    invalid_arg "Gp.fit: inputs and targets differ in length";
  let y_mean, y_scale, y_std = standardize targets in
  let gram = Kernel.gram kernel inputs in
  (* Jitter escalation: retry with increasing diagonal regularisation
     until the factorisation succeeds. *)
  let rec factor jitter attempts =
    let k = Mat.copy gram in
    for i = 0 to n - 1 do
      Mat.set k i i (Mat.get k i i +. noise +. jitter)
    done;
    match Mat.cholesky k with
    | l -> l
    | exception Failure _ when attempts < 8 ->
        factor (Float.max (jitter *. 10.0) 1e-10) (attempts + 1)
  in
  let chol = factor 0.0 0 in
  let alpha = Mat.cholesky_solve chol y_std in
  { kernel; inputs; chol; alpha; y_mean; y_scale; y_std }

let kvec t x = Array.map (fun xi -> Kernel.eval t.kernel x xi) t.inputs

let predict t x =
  let ks = kvec t x in
  let mean_std = Vec.dot ks t.alpha in
  let v = Mat.solve_lower t.chol ks in
  let var_std = Kernel.diag t.kernel -. Vec.dot v v in
  let var_std = Float.max var_std 0.0 in
  (t.y_mean +. (t.y_scale *. mean_std), var_std *. t.y_scale *. t.y_scale)

let mean t x = fst (predict t x)

let num_observations t = Array.length t.inputs

let log_marginal_likelihood t =
  let n = float_of_int (Array.length t.inputs) in
  let data_fit = -0.5 *. Vec.dot t.y_std t.alpha in
  let log_det = ref 0.0 in
  for i = 0 to Array.length t.inputs - 1 do
    log_det := !log_det +. log (Mat.get t.chol i i)
  done;
  data_fit -. !log_det -. (0.5 *. n *. log (2.0 *. Float.pi))
