open Linalg
open Domains

let sample rng box ~n =
  if n <= 0 then invalid_arg "Latin.sample: n must be positive";
  let d = Box.dim box in
  (* One stratum permutation per dimension. *)
  let perms =
    Array.init d (fun _ ->
        let p = Array.init n Fun.id in
        Rng.shuffle rng p;
        p)
  in
  Array.init n (fun i ->
      Vec.init d (fun j ->
          let stratum = float_of_int perms.(j).(i) in
          let u = (stratum +. Rng.float rng 1.0) /. float_of_int n in
          box.Box.lo.(j) +. (u *. (box.Box.hi.(j) -. box.Box.lo.(j)))))
