open Linalg

type t =
  | Squared_exponential of { length : float; variance : float }
  | Matern52 of { length : float; variance : float }

let check_params ~length ~variance =
  if length <= 0.0 then invalid_arg "Kernel: length scale must be positive";
  if variance <= 0.0 then invalid_arg "Kernel: variance must be positive"

let se ?(variance = 1.0) ~length () =
  check_params ~length ~variance;
  Squared_exponential { length; variance }

let matern52 ?(variance = 1.0) ~length () =
  check_params ~length ~variance;
  Matern52 { length; variance }

let eval t x y =
  let r = Vec.dist2 x y in
  match t with
  | Squared_exponential { length; variance } ->
      variance *. exp (-.(r *. r) /. (2.0 *. length *. length))
  | Matern52 { length; variance } ->
      let s = sqrt 5.0 *. r /. length in
      variance *. (1.0 +. s +. (s *. s /. 3.0)) *. exp (-.s)

let diag = function
  | Squared_exponential { variance; _ } | Matern52 { variance; _ } -> variance

let gram t points =
  let n = Array.length points in
  Mat.init n n (fun i j ->
      if j < i then 0.0 else eval t points.(i) points.(j))
  |> fun m ->
  (* Fill the lower triangle by symmetry. *)
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      Mat.set m i j (Mat.get m j i)
    done
  done;
  m
