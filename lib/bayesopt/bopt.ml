open Linalg
open Domains

type config = {
  init_samples : int;
  iterations : int;
  candidates : int;
  local_candidates : int;
  xi : float;
  noise : float;
  kernel : Kernel.t;
}

let default_config =
  {
    init_samples = 8;
    iterations = 24;
    candidates = 256;
    local_candidates = 64;
    xi = 0.01;
    noise = 1e-6;
    kernel = Kernel.matern52 ~length:0.25 ();
  }

type evaluation = { point : Vec.t; value : float }

type result = { best : evaluation; history : evaluation list }

(* The GP operates on coordinates normalized to the unit cube so a
   single kernel length scale is meaningful regardless of the search
   box's units. *)
let normalizer box =
  let lo = box.Box.lo and w = Box.widths box in
  fun x ->
    Vec.init (Vec.dim x) (fun i ->
        if w.(i) > 0.0 then (x.(i) -. lo.(i)) /. w.(i) else 0.5)

let perturb rng box x ~scale =
  Box.clamp box
    (Vec.init (Vec.dim x) (fun i ->
         x.(i) +. (scale *. Box.width box i *. Rng.gaussian rng)))

let maximize ?(config = default_config) ~rng box f =
  if config.init_samples < 1 then invalid_arg "Bopt.maximize: need seeds";
  let norm = normalizer box in
  let history = ref [] in
  let evaluate x =
    let e = { point = x; value = f x } in
    history := e :: !history;
    e
  in
  let seeds = Latin.sample rng box ~n:config.init_samples in
  let best = ref (evaluate seeds.(0)) in
  for i = 1 to Array.length seeds - 1 do
    let e = evaluate seeds.(i) in
    if e.value > !best.value then best := e
  done;
  for _iter = 1 to config.iterations do
    let evals = Array.of_list !history in
    let inputs = Array.map (fun e -> norm e.point) evals in
    let targets = Array.map (fun e -> e.value) evals in
    let gp = Gp.fit ~noise:config.noise config.kernel ~inputs ~targets in
    let score x =
      let mean, variance = Gp.predict gp (norm x) in
      Acquisition.expected_improvement ~xi:config.xi ~best:!best.value ~mean
        ~variance ()
    in
    let best_cand = ref (Box.sample rng box) in
    let best_score = ref (score !best_cand) in
    let consider x =
      let s = score x in
      if s > !best_score then begin
        best_score := s;
        best_cand := x
      end
    in
    for _ = 2 to config.candidates do
      consider (Box.sample rng box)
    done;
    for _ = 1 to config.local_candidates do
      consider (perturb rng box !best.point ~scale:0.05)
    done;
    let e = evaluate !best_cand in
    if e.value > !best.value then best := e
  done;
  { best = !best; history = List.rev !history }
