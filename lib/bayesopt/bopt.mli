(** The Bayesian optimization loop (§4.2).

    Maximizes a black-box function over a box by repeatedly fitting a
    Gaussian-process surrogate to the evaluations so far and evaluating
    the point that maximizes expected improvement.  This is the engine
    that learns verification-policy parameters in the paper (through the
    BayesOpt library); here it is self-contained. *)

type config = {
  init_samples : int;  (** Latin-hypercube seeding evaluations *)
  iterations : int;  (** acquisition-driven evaluations *)
  candidates : int;  (** random candidates scored per iteration *)
  local_candidates : int;
      (** additional candidates perturbed around the incumbent *)
  xi : float;  (** EI exploration bonus *)
  noise : float;  (** GP observation noise *)
  kernel : Kernel.t;
}

val default_config : config
(** 8 seeds, 24 iterations, 256 + 64 candidates, Matérn-5/2 kernel with
    length scale 0.25 on normalized coordinates. *)

type evaluation = { point : Linalg.Vec.t; value : float }

type result = {
  best : evaluation;
  history : evaluation list;  (** in evaluation order *)
}

val maximize :
  ?config:config ->
  rng:Linalg.Rng.t ->
  Domains.Box.t ->
  (Linalg.Vec.t -> float) ->
  result
(** [maximize box f] runs the loop and returns the best point found
    along with the full evaluation history.  The total number of [f]
    evaluations is [init_samples + iterations]. *)
