(** Acquisition functions for Bayesian optimization (maximization
    convention). *)

val expected_improvement :
  ?xi:float -> best:float -> mean:float -> variance:float -> unit -> float
(** Expected improvement over the incumbent [best] for a Gaussian
    posterior with the given [mean] and [variance].  [xi] (default 0.01)
    is the exploration bonus.  Zero when the variance vanishes. *)

val upper_confidence_bound :
  ?beta:float -> mean:float -> variance:float -> unit -> float
(** GP-UCB with exploration weight [beta] (default 2.0); provided for the
    acquisition-function ablation. *)
