(** Latin hypercube sampling, used to seed the Bayesian optimizer. *)

val sample : Linalg.Rng.t -> Domains.Box.t -> n:int -> Linalg.Vec.t array
(** [sample rng box ~n] draws [n] points from [box] such that each
    dimension's [n] strata each contain exactly one point.
    @raise Invalid_argument if [n <= 0]. *)
