(** Gaussian-process regression (the surrogate model of §4.2).

    A zero-mean GP prior over functions, conditioned on observed
    input/value pairs.  Targets are internally standardised so kernel
    hyper-parameters behave consistently across objectives of different
    scales. *)

type t

val fit :
  ?noise:float -> Kernel.t -> inputs:Linalg.Vec.t array -> targets:float array -> t
(** [fit kernel ~inputs ~targets] conditions the GP on the observations.
    [noise] (default [1e-6]) is the observation noise variance; a jitter
    escalation retries the Cholesky factorisation if the Gram matrix is
    numerically singular.
    @raise Invalid_argument on empty or mismatched observations. *)

val predict : t -> Linalg.Vec.t -> float * float
(** [(mean, variance)] of the posterior at a point, in the original
    target scale.  Variance is clamped to be non-negative. *)

val mean : t -> Linalg.Vec.t -> float

val num_observations : t -> int

val log_marginal_likelihood : t -> float
(** Log marginal likelihood of the standardized observations; used by
    tests and by the (optional) hyper-parameter grid search in {!Bopt}. *)
