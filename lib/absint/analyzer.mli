(** Abstract interpretation of networks (the AI2 reimplementation).

    Propagates an abstraction of the input region through every layer of
    the network and checks the robustness condition on the abstract
    output.  This is the [Analyze] procedure of Algorithm 1 and also, run
    with a fixed domain, the AI2 baseline of §7.1. *)

type verdict = Verified | Unknown

type stats = {
  mutable peak_disjuncts : int;
  mutable peak_generators : int;
  mutable transformer_calls : int;
      (** Number of abstract layer applications; the deterministic cost
          unit used by budgeted experiments. *)
}

val fresh_stats : unit -> stats

exception Out_of_budget
(** Raised by {!propagate} between layers when the supplied budget runs
    out, so a single expensive abstract pass (e.g. a 64-disjunct
    powerset on the conv net) can be abandoned mid-way. *)

val propagate :
  (module Domains.Domain_sig.S with type t = 'a) ->
  ?jobs:int ->
  ?stats:stats ->
  ?budget:Common.Budget.t ->
  Nn.Network.t ->
  'a ->
  'a
(** Push an abstract element through every layer of the network.
    [jobs] (default [1]) sets the ambient kernel worker count for the
    pass ({!Linalg.Mat.with_default_jobs}): the generator GEMMs of
    affine layers then fan out over the persistent kernel-helper team,
    with bit-identical results for every value.
    @raise Out_of_budget if [budget] expires between layers. *)

val output_bounds :
  Nn.Network.t -> Domains.Box.t -> Domains.Domain.spec -> (float * float) array
(** Bounds of each output score over the input region. *)

val margin_lower :
  ?jobs:int ->
  ?stats:stats ->
  ?budget:Common.Budget.t ->
  Nn.Network.t ->
  Domains.Box.t ->
  k:int ->
  Domains.Domain.spec ->
  float
(** Lower bound, over the input region, of
    [min_{j≠k} (N(x)_K - N(x)_j)].  The property is verified iff this is
    strictly positive.  Returns [neg_infinity] when the budget expires
    mid-pass. *)

val analyze :
  ?jobs:int ->
  ?stats:stats ->
  ?budget:Common.Budget.t ->
  Nn.Network.t ->
  Domains.Box.t ->
  k:int ->
  Domains.Domain.spec ->
  verdict
(** [analyze net region ~k spec] attempts to prove that every point of
    [region] is classified as [k], using the abstract domain described
    by [spec].  Sound: [Verified] implies the property holds.
    @raise Invalid_argument if [k] is not a valid class or the region
    dimension differs from the network input dimension. *)
