open Linalg
open Domains

type verdict = Verified | Unknown

(* A [stats] record is created per analysis call and only ever mutated
   by the domain running that call; it is never shared. *)
type stats = {
  mutable peak_disjuncts : int;
  mutable peak_generators : int;
  mutable transformer_calls : int;
}
[@@race.domain_local]

let fresh_stats () =
  { peak_disjuncts = 0; peak_generators = 0; transformer_calls = 0 }

exception Out_of_budget

let c_transformer = Telemetry.Metrics.counter "absint.transformer_calls"

let c_out_of_budget = Telemetry.Metrics.counter "absint.out_of_budget"

let h_generators = Telemetry.Metrics.histogram "absint.generators"

let layer_kind = function
  | Nn.Layer.Relu -> "relu"
  | Nn.Layer.Maxpool _ -> "maxpool"
  | Nn.Layer.Affine _ -> "affine"
  | Nn.Layer.Conv _ -> "conv"
  | Nn.Layer.Avgpool _ -> "avgpool"

let propagate (type a) (module D : Domain_sig.S with type t = a) ?(jobs = 1)
    ?stats ?budget net (input : a) : a =
  (* [jobs] grants the pass ambient kernel parallelism: the generator
     GEMM inside [D.affine] picks it up through [Mat.default_jobs]
     without widening the [Domain_sig.S] interface.  Results are
     bit-identical for every value (see {!Linalg.Mat.gemm}). *)
  Mat.with_default_jobs jobs @@ fun () ->
  let poll () =
    match budget with
    | Some b when Common.Budget.exhausted b -> raise Out_of_budget
    | Some _ | None -> ()
  in
  let record (x : a) =
    match stats with
    | None -> ()
    | Some s ->
        s.transformer_calls <- s.transformer_calls + 1;
        s.peak_disjuncts <- Stdlib.max s.peak_disjuncts (D.disjuncts x);
        s.peak_generators <- Stdlib.max s.peak_generators (D.num_generators x)
  in
  let index = ref 0 in
  List.fold_left
    (fun acc layer ->
      poll ();
      Telemetry.Metrics.incr c_transformer;
      let sp = Telemetry.Span.enter "absint.layer" in
      let next =
        match layer with
        | Nn.Layer.Relu -> D.relu acc
        | Nn.Layer.Maxpool p -> D.maxpool p acc
        | Nn.Layer.Affine { w; b } -> D.affine w b acc
        | Nn.Layer.Conv c ->
            let w, b = Nn.Conv.to_affine c in
            D.affine w b acc
        | Nn.Layer.Avgpool p ->
            let w, b = Nn.Avgpool.to_affine p in
            D.affine w b acc
      in
      record next;
      Telemetry.Metrics.observe h_generators (D.num_generators next);
      Telemetry.Span.exit sp
        ~attrs:(fun () ->
          [
            ("index", Telemetry.Jsonw.Int !index);
            ("layer", Telemetry.Jsonw.Str (layer_kind layer));
            ("generators", Telemetry.Jsonw.Int (D.num_generators next));
            ("disjuncts", Telemetry.Jsonw.Int (D.disjuncts next));
          ]);
      incr index;
      next)
    input net.Nn.Network.layers

let check_region net region =
  if Box.dim region <> net.Nn.Network.input_dim then
    invalid_arg "Analyzer: region dimension differs from network input"

let output_bounds net region spec =
  check_region net region;
  let (module D) = Domain.get spec in
  let out = propagate (module D) net (D.of_box region) in
  Array.init net.Nn.Network.output_dim (fun i -> D.bounds out i)

let margin_of (type a) (module D : Domain_sig.S with type t = a) (out : a)
    ~num_classes ~k =
  let best = ref infinity in
  for j = 0 to num_classes - 1 do
    if j <> k then begin
      let coeffs =
        Vec.init num_classes (fun i ->
            if i = k then 1.0 else if i = j then -1.0 else 0.0)
      in
      best := Stdlib.min !best (D.linear_lower out ~coeffs)
    end
  done;
  !best

let margin_lower ?jobs ?stats ?budget net region ~k spec =
  check_region net region;
  let m = net.Nn.Network.output_dim in
  if k < 0 || k >= m then invalid_arg "Analyzer: class index out of range";
  if m < 2 then invalid_arg "Analyzer: need at least two classes";
  let (module D) = Domain.get spec in
  match propagate (module D) ?jobs ?stats ?budget net (D.of_box region) with
  | out -> margin_of (module D) out ~num_classes:m ~k
  | exception Out_of_budget ->
      Telemetry.Metrics.incr c_out_of_budget;
      neg_infinity

let analyze ?jobs ?stats ?budget net region ~k spec =
  if margin_lower ?jobs ?stats ?budget net region ~k spec > 0.0 then Verified
  else Unknown
