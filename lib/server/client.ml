(* Thin client for the charon-serve wire protocol: one connection per
   request, line-framed JSON both ways (see Protocol).  Shared by
   bin/serve_client.ml, the `charon submit` subcommand, and the server
   lifecycle tests. *)

module J = Telemetry.Jsonw

exception Server_error of string

let request ~socket req =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  | () ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      Fun.protect
        ~finally:(fun () ->
          (* The two channels share [fd]; closing the output side both
             flushes and closes it, so the input close only tidies the
             buffer and must ignore the dead descriptor. *)
          close_out_noerr oc;
          close_in_noerr ic)
        (fun () ->
          Protocol.send oc (Protocol.to_json req);
          match Protocol.recv ic with
          | Some json -> json
          | None -> raise (Server_error "connection closed before a response")
          | exception Protocol.Torn_line n ->
              (* A dying daemon can flush a partial line before the
                 socket drops; surfacing it as success would hand the
                 caller a truncated verdict. *)
              raise
                (Server_error
                   (Printf.sprintf
                      "connection closed mid-response (%d bytes of a torn \
                       message)"
                      n)))

let ok_or_error json =
  match J.member "ok" json with
  | Some (J.Bool true) -> json
  | _ -> (
      match Option.bind (J.member "error" json) J.to_string_opt with
      | Some msg -> raise (Server_error msg)
      | None -> raise (Server_error ("malformed response: " ^ J.to_string json)))

let submit ~socket spec =
  let json = ok_or_error (request ~socket (Protocol.Submit spec)) in
  match Option.bind (J.member "id" json) J.to_int_opt with
  | Some id -> (id, json)
  | None -> raise (Server_error "submit response carries no job id")

let status ~socket ?(since = 0) id =
  ok_or_error (request ~socket (Protocol.Status { id; since }))

let cancel ~socket id = ok_or_error (request ~socket (Protocol.Cancel id))

let stats ~socket () = ok_or_error (request ~socket Protocol.Stats)

let ping ~socket () = ok_or_error (request ~socket Protocol.Ping)

let shutdown ~socket () = ok_or_error (request ~socket Protocol.Shutdown)

let job_state json =
  match Option.bind (J.member "state" json) J.to_string_opt with
  | Some s -> s
  | None -> raise (Server_error "status response carries no state")

let terminal state =
  match state with
  | "done" | "cancelled" | "failed" -> true
  | _ -> false

(* Polling loop: statuses are cheap (no verification work happens on
   the daemon's accept thread), so a tight-ish poll keeps latency low
   without bothering the pool. *)
let wait ~socket ?(poll_interval = 0.02) ?deadline id =
  let started = Unix.gettimeofday () in
  let rec go () =
    let json = status ~socket id in
    if terminal (job_state json) then json
    else begin
      (match deadline with
      | Some d when Unix.gettimeofday () -. started > d ->
          raise
            (Server_error (Printf.sprintf "job %d still running after %gs" id d))
      | Some _ | None -> ());
      Unix.sleepf poll_interval;
      go ()
    end
  in
  go ()
