(* Thin client for the charon-serve wire protocol: one connection per
   request, line-framed JSON both ways (see Protocol).  Shared by
   bin/serve_client.ml, the `charon submit` subcommand, and the server
   lifecycle tests.

   Transports: a Unix socket connection sends the request directly
   (trusted, anonymous); a TCP connection — or any connection carrying
   an API key — opens with the versioned [hello] handshake and only
   sends the request after [hello_ok].  Structured refusals from the
   daemon (busy / quota / auth / version ...) surface as [Rejected]
   with their machine code and retryability bit, so callers can back
   off without parsing prose. *)

module J = Telemetry.Jsonw

type addr = Unix_socket of string | Tcp of string * int

exception Server_error of string

exception Rejected of { code : string; retryable : bool; message : string }

let addr_to_string = function
  | Unix_socket path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let connect addr =
  match addr with
  | Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
  | Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match
            Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ]
          with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ ->
              raise
                (Server_error (Printf.sprintf "cannot resolve host %S" host)))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (inet, port))
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd

(* Raise the daemon's refusal in structured form when it carries a
   code, as prose otherwise. *)
let raise_refusal json =
  let message =
    match Option.bind (J.member "error" json) J.to_string_opt with
    | Some msg -> msg
    | None -> "malformed response: " ^ J.to_string json
  in
  match Protocol.reject_code json with
  | Some code ->
      raise (Rejected { code; retryable = Protocol.reject_retryable json;
                        message })
  | None -> raise (Server_error message)

let recv_or_fail ic =
  match Protocol.recv ic with
  | Some json -> json
  | None -> raise (Server_error "connection closed before a response")
  | exception Protocol.Torn_line n ->
      (* A dying daemon can flush a partial line before the socket
         drops; surfacing it as success would hand the caller a
         truncated verdict. *)
      raise
        (Server_error
           (Printf.sprintf
              "connection closed mid-response (%d bytes of a torn message)" n))

let request ?api_key ~addr req =
  let fd = connect addr in
  (* The reader gets a duplicated descriptor so that each channel owns
     exactly one fd: closing two channels over a single fd double-closes
     it, and under concurrency the second close(2) can hit a reused
     number — another thread's live connection. *)
  let rfd =
    try Unix.dup fd
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  let ic = Unix.in_channel_of_descr rfd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () ->
      (* Output first (flushes, closes [fd]), then the reader's dup. *)
      close_out_noerr oc;
      close_in_noerr ic)
    (fun () ->
      (* TCP daemons with tenants configured demand the handshake;
         greeting whenever we are on TCP or hold a key works against
         every daemon configuration, while bare Unix-socket requests
         keep the single-transport wire format unchanged. *)
      let must_hello =
        match addr with Tcp _ -> true | Unix_socket _ -> api_key <> None
      in
      if must_hello then begin
        Protocol.send oc
          (Protocol.Serve.hello_to_json
             { Protocol.Serve.version = Protocol.Serve.version; api_key });
        let greeting = recv_or_fail ic in
        match J.member "ok" greeting with
        | Some (J.Bool true) -> ()
        | Some _ | None -> raise_refusal greeting
      end;
      Protocol.send oc (Protocol.to_json req);
      recv_or_fail ic)

let ok_or_error json =
  match J.member "ok" json with
  | Some (J.Bool true) -> json
  | _ -> raise_refusal json

let submit ?api_key ~addr spec =
  let json = ok_or_error (request ?api_key ~addr (Protocol.Submit spec)) in
  match Option.bind (J.member "id" json) J.to_int_opt with
  | Some id -> (id, json)
  | None -> raise (Server_error "submit response carries no job id")

let status ?api_key ~addr ?(since = 0) id =
  ok_or_error (request ?api_key ~addr (Protocol.Status { id; since }))

let cancel ?api_key ~addr id =
  ok_or_error (request ?api_key ~addr (Protocol.Cancel id))

let stats ?api_key ~addr () =
  ok_or_error (request ?api_key ~addr Protocol.Stats)

let ping ?api_key ~addr () = ok_or_error (request ?api_key ~addr Protocol.Ping)

let shutdown ?api_key ~addr () =
  ok_or_error (request ?api_key ~addr Protocol.Shutdown)

let job_state json =
  match Option.bind (J.member "state" json) J.to_string_opt with
  | Some s -> s
  | None -> raise (Server_error "status response carries no state")

let terminal state =
  match state with
  | "done" | "cancelled" | "failed" -> true
  | _ -> false

(* Polling loop: statuses are cheap (no verification work happens on
   the daemon's accept thread), so a tight-ish poll keeps latency low
   without bothering the pool. *)
let wait ?api_key ~addr ?(poll_interval = 0.02) ?deadline id =
  let started = Unix.gettimeofday () in
  let rec go () =
    let json = status ?api_key ~addr id in
    if terminal (job_state json) then json
    else begin
      (match deadline with
      | Some d when Unix.gettimeofday () -. started > d ->
          raise
            (Server_error
               (Printf.sprintf "job %d still running after %gs" id d))
      | Some _ | None -> ());
      Unix.sleepf poll_interval;
      go ()
    end
  in
  go ()
