(** Multi-tenant identity and accounting for charon-serve
    (docs/serving.md, "Tenants, quotas and coalescing").

    The registry maps API keys to named tenants with fair-share
    weights and outstanding-jobs quotas.  It is immutable once loaded;
    the mutable per-tenant [counters] are owned by the scheduler and
    only touched with the scheduler's mutex held. *)

type tenant = {
  name : string;
  key : string option;  (** [None] for the trusted local principal *)
  quota : int;  (** max outstanding (queued + running) jobs; 0 = unlimited *)
  weight : float;  (** fair-share weight, > 0; default 1.0 *)
}

val anonymous : tenant
(** The implicit principal of unauthenticated local (Unix-socket)
    requests: no key, no quota, weight 1. *)

type t

val empty : t
(** No tenants configured: every request maps to {!anonymous}. *)

val configured : t -> bool

val tenants : t -> tenant list
(** In config-file order (stable stats output). *)

val of_json : Telemetry.Jsonw.t -> t
(** Parse a [{"tenants": [{"name", "key", "quota"?, "weight"?}, ...]}]
    config document.  @raise Failure on malformed entries, duplicate
    names, or shared keys. *)

val load : string -> t
(** {!of_json} over a file.  @raise Failure on unreadable or malformed
    config, with the path in the message. *)

val find_key : t -> string -> tenant option

(** {2 Runtime accounting} — scheduler-owned, scheduler-mutex-guarded. *)

type counters = {
  tenant : tenant;
  mutable accepted : int;
  mutable cache_hits : int;
  mutable coalesced : int;
  mutable completed : int;
  mutable cancelled : int;
  mutable failed : int;
  mutable rejected_quota : int;
  mutable rejected_busy : int;
  mutable outstanding : int;
  ages : float array;
  mutable age_count : int;
}

val fresh_counters : tenant -> counters

val record_age : counters -> float -> unit
(** Push one queue-age sample (seconds a job waited before a worker
    claimed its run) into the tenant's fixed-size ring. *)

type age_stats = { samples : int; mean : float; p95 : float; max : float }

val age_stats : counters -> age_stats
(** Over the ring's current window ({!record_age} keeps the most
    recent 512 samples); [samples] counts all ever recorded. *)

val counters_json : counters -> Telemetry.Jsonw.t
(** The per-tenant stats block served by [{"op":"stats"}]. *)
