(* charon-dverify coordinator: shard one hard verification across N
   worker processes (docs/serving.md, "Distributed split-and-conquer").

   The coordinator owns the problem: it cuts the input box into an
   initial pool of canonical splits (Domains.Partition cuts, so shard
   results keep canonical proof-cache keys), deals splits to workers
   over [Protocol.Dist], and runs a small event loop driven by three
   sources — per-worker reader domains (one blocking [Protocol.recv]
   loop each), a 20 Hz timer tick (global wall budget, drain grace),
   and the dealing logic itself.  Policy, in order:

   - Deal: an idle worker gets the queue's front split.  Budgets are
     per-split transformer-step counts; a split that comes back
     [yielded/budget] is re-queued with its escalation bumped, and the
     step budget grows geometrically with the escalation (Wu et al.'s
     iterative deepening, so no shard ever wedges on one hard region
     while others idle).
   - Steal: when the queue is empty and a worker sits idle, the
     longest-busy worker is asked to [steal]-yield its unexplored
     frontier; the reclaimed splits are dealt to the idle workers.
   - Refute: the first [refuted] settles the verdict and broadcasts
     cancel — with the same one-way upgrade rule as the in-process
     drain ([Verify.run]'s settle): a refutation arriving while a
     Timeout/Unknown verdict drains out still wins, the reverse never.
   - Survive: a worker dying (EOF / torn line / protocol violation)
     re-queues its outstanding split — nothing is lost, because a
     split is only ever discharged by an explicit [proved]/[refuted]/
     [yielded] report.  Dead workers are respawned while there is work
     left, up to a respawn budget so a crash-looping binary cannot spin
     forever.  Verified requires every split proved: queue empty,
     nothing assigned, nobody owed a report. *)

module J = Telemetry.Jsonw
module D = Protocol.Dist

let c_dealt = Telemetry.Metrics.counter "dverify.splits.dealt"

let c_stolen = Telemetry.Metrics.counter "dverify.splits.stolen"

let c_reassigned = Telemetry.Metrics.counter "dverify.splits.reassigned"

let c_escalated = Telemetry.Metrics.counter "dverify.splits.escalated"

let c_deaths = Telemetry.Metrics.counter "dverify.worker_deaths"

let h_shard_wall = Telemetry.Metrics.histogram "dverify.shard.wall_ns"

type config = {
  workers : int;
  initial_splits : int;  (* 0 = 4x workers *)
  initial_steps : int;  (* per-split transformer budget at escalation 0 *)
  escalation_factor : int;
  max_escalations : int;
  max_respawns : int;
  drain_grace : float;  (* seconds before stragglers are SIGKILLed *)
  trace_dir : string option;
  proofcache_persist : string option;
  crash_injection : (int * int) option;
      (* (initial worker index, splits before self-SIGKILL) *)
}

let default_config ~workers =
  if workers < 1 then
    invalid_arg "Coordinator.default_config: workers must be at least 1";
  {
    workers;
    initial_splits = 0;
    initial_steps = 20_000;
    escalation_factor = 4;
    max_escalations = 16;
    max_respawns = workers;
    drain_grace = 5.0;
    trace_dir = None;
    proofcache_persist = None;
    crash_injection = None;
  }

type stats = {
  initial_splits : int;
  dealt : int;
  stolen : int;
  reassigned : int;
  escalated : int;
  worker_deaths : int;
  respawns : int;
  handshake_rejects : int;
  shard_walls : (int * float) list;
}

type result = { outcome : Common.Outcome.t; elapsed : float; stats : stats }

(* ------------------------------------------------------------------ *)
(* Initial canonical partition: expand the box level by level, always
   cutting every piece's widest dimension at its canonical dyadic cut,
   until at least [target] pieces exist.  Level-by-level keeps the
   shard depths uniform, and canonical cuts keep every shard's
   subregions on the partition a single-process cached run uses. *)

let widest_dim box =
  let dims = Domains.Box.dim box in
  let best = ref 0 in
  for d = 1 to dims - 1 do
    if Domains.Box.width box d > Domains.Box.width box !best then best := d
  done;
  !best

let initial_partition box ~target =
  let split_one (b, depth) =
    let dim = widest_dim b in
    if Domains.Box.width b dim <= 0.0 then [ (b, depth) ]
    else
      let at = Domains.Partition.snap_split b ~dim in
      let l, r = Domains.Box.split b ~dim ~at in
      [ (l, depth + 1); (r, depth + 1) ]
  in
  let rec level pieces =
    if List.length pieces >= target then pieces
    else
      let next = List.concat_map split_one pieces in
      (* A box of all-zero widths stops expanding; don't loop on it. *)
      if List.length next = List.length pieces then pieces else level next
  in
  List.map (fun (box, depth) -> { D.box; depth }) (level [ (box, 0) ])

(* ------------------------------------------------------------------ *)
(* Event mailbox: reader domains and the timer push, the main loop
   pops.  The only cross-domain state in the coordinator. *)

type event =
  | Msg of int * D.from_worker
  | Bad of int * string
  | Died of int
  | Tick

type mailbox = { m : Mutex.t; c : Condition.t; q : event Queue.t }
[@@race.guarded_by "m"]

let mb_create () =
  { m = Mutex.create (); c = Condition.create (); q = Queue.create () }

let mb_push mb e =
  Mutex.lock mb.m;
  Queue.push e mb.q;
  Condition.signal mb.c;
  Mutex.unlock mb.m

let mb_pop mb =
  Mutex.lock mb.m;
  while Queue.is_empty mb.q do
    Condition.wait mb.c mb.m
  done;
  let e = Queue.pop mb.q in
  Mutex.unlock mb.m;
  e

let reader ~slot ic mb =
  let rec loop () =
    match Protocol.recv ic with
    | None -> mb_push mb (Died slot)
    | Some json -> (
        match D.from_worker_of_json json with
        | msg ->
            mb_push mb (Msg (slot, msg));
            loop ()
        | exception Protocol.Bad_request m -> mb_push mb (Bad (slot, m)))
    | exception
        (Protocol.Torn_line _ | J.Parse_error _ | Sys_error _ | End_of_file)
      ->
        mb_push mb (Died slot)
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Worker processes.  Every mutable field below belongs to the main
   event loop alone — reader domains communicate exclusively through
   the mailbox, and the closure a reader runs captures only its slot
   number, its in_channel, and the mailbox. *)

type wstate = Greeting | Idle | Busy of int | Gone

type wrk = {
  slot : int;
  pid : int;
  oc : out_channel;
  reader : unit Domain.t;
  mutable state : wstate;
  mutable steal_sent : bool;
  mutable rejected : bool;  (* handshake refused: never respawn *)
  mutable busy_since : float;
  mutable wall : float;
}
[@@race.domain_local]

let is_idle w = match w.state with Idle -> true | _ -> false

let is_gone w = match w.state with Gone -> true | _ -> false

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let spawn_worker ~cmd ~crash_after ~trace_dir ~mb ~slot =
  let keep s =
    not
      (starts_with ~prefix:"CHARON_DVERIFY_CRASH_AFTER=" s
      || starts_with ~prefix:"CHARON_WORKER_TRACE=" s)
  in
  let env = List.filter keep (Array.to_list (Unix.environment ())) in
  let env =
    match trace_dir with
    | Some dir ->
        Printf.sprintf "CHARON_WORKER_TRACE=%s"
          (Filename.concat dir (Printf.sprintf "worker-%d.jsonl" slot))
        :: env
    | None -> env
  in
  let env =
    match crash_after with
    | Some k -> Printf.sprintf "CHARON_DVERIFY_CRASH_AFTER=%d" k :: env
    | None -> env
  in
  let c2w_read, c2w_write = Unix.pipe ~cloexec:false () in
  let w2c_read, w2c_write = Unix.pipe ~cloexec:false () in
  Unix.set_close_on_exec c2w_write;
  Unix.set_close_on_exec w2c_read;
  let pid =
    Unix.create_process_env cmd.(0) cmd (Array.of_list env) c2w_read w2c_write
      Unix.stderr
  in
  Unix.close c2w_read;
  Unix.close w2c_write;
  let ic = Unix.in_channel_of_descr w2c_read in
  {
    slot;
    pid;
    oc = Unix.out_channel_of_descr c2w_write;
    reader = Domain.spawn (fun () -> reader ~slot ic mb);
    state = Greeting;
    steal_sent = false;
    rejected = false;
    busy_since = 0.0;
    wall = 0.0;
  }

(* ------------------------------------------------------------------ *)

let run ~worker_cmd ?config (spec : Protocol.job_spec) =
  let cfg =
    match config with Some c -> c | None -> default_config ~workers:2
  in
  if cfg.workers < 1 then
    invalid_arg "Coordinator.run: workers must be at least 1";
  if Array.length worker_cmd = 0 then
    invalid_arg "Coordinator.run: worker_cmd must name an executable";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let started = Unix.gettimeofday () in
  let mb = mb_create () in
  let stop_timer = Atomic.make false in
  let timer =
    Domain.spawn (fun () ->
        while not (Atomic.get stop_timer) do
          Unix.sleepf 0.05;
          mb_push mb Tick
        done)
  in
  (* --- main-loop state (single domain, never shared) --- *)
  let split_target =
    if cfg.initial_splits > 0 then cfg.initial_splits else 4 * cfg.workers
  in
  let initial = initial_partition spec.Protocol.box ~target:split_target in
  let queue = ref (List.map (fun p -> (p, 0)) initial) in
  let assigned : (int, D.pending * int * int) Hashtbl.t = Hashtbl.create 64 in
  let workers : (int, wrk) Hashtbl.t = Hashtbl.create 8 in
  let next_sid = ref 0 in
  let next_slot = ref 0 in
  let verdict = ref None in
  let settled_at = ref 0.0 in
  let killed = ref false in
  let s_dealt = ref 0 in
  let s_stolen = ref 0 in
  let s_reassigned = ref 0 in
  let s_escalated = ref 0 in
  let s_deaths = ref 0 in
  let s_respawns = ref 0 in
  let s_rejects = ref 0 in
  let queue_empty () = match !queue with [] -> true | _ :: _ -> false in
  let outstanding () = List.length !queue + Hashtbl.length assigned in
  let unsettled () = Option.is_none !verdict in
  let alive () =
    Hashtbl.fold (fun _ w acc -> if is_gone w then acc else w :: acc) workers []
  in
  let send_to w msg = Protocol.send w.oc msg in
  let send_safe w msg =
    try send_to w msg
    with Sys_error _ | Unix.Unix_error _ ->
      (* The pipe is gone; the reader will report the death. *)
      ()
  in
  let spawn ~crash_after () =
    let slot = !next_slot in
    incr next_slot;
    let w =
      spawn_worker ~cmd:worker_cmd ~crash_after ~trace_dir:cfg.trace_dir ~mb
        ~slot
    in
    Hashtbl.replace workers slot w;
    w
  in
  let settle outcome =
    match !verdict with
    | None ->
        verdict := Some outcome;
        settled_at := Unix.gettimeofday ();
        List.iter
          (fun w -> send_safe w (D.to_worker_to_json D.Cancel_all))
          (alive ())
    | Some (Common.Outcome.Timeout | Common.Outcome.Unknown) -> (
        (* Same one-way upgrade as Verify.run's settle: a counterexample
           arriving while an exhaustion verdict drains out still wins;
           the reverse downgrade never happens. *)
        match outcome with
        | Common.Outcome.Refuted _ -> verdict := Some outcome
        | Common.Outcome.Verified | Common.Outcome.Timeout
        | Common.Outcome.Unknown ->
            ())
    | Some (Common.Outcome.Verified | Common.Outcome.Refuted _) -> ()
  in
  let steps_for escalation =
    (* 20k * 4^12 still fits comfortably in an int; beyond that the
       budget is effectively unlimited anyway. *)
    let rec pow acc n =
      if n <= 0 then acc else pow (acc * cfg.escalation_factor) (n - 1)
    in
    pow cfg.initial_steps (min escalation 12)
  in
  let assign w (pending, escalation) =
    let sid = !next_sid in
    incr next_sid;
    Hashtbl.replace assigned sid (pending, escalation, w.slot);
    w.state <- Busy sid;
    w.steal_sent <- false;
    w.busy_since <- Unix.gettimeofday ();
    incr s_dealt;
    Telemetry.Metrics.incr c_dealt;
    send_safe w
      (D.to_worker_to_json
         (D.Assign
            {
              sid;
              box = pending.D.box;
              depth = pending.D.depth;
              max_steps = steps_for escalation;
              seconds = None;
            }))
  in
  let dispatch () =
    if unsettled () then
      List.iter
        (fun w ->
          match (w.state, !queue) with
          | Idle, item :: rest ->
              queue := rest;
              assign w item
          | _ -> ())
        (List.sort (fun a b -> Int.compare a.slot b.slot) (alive ()))
  in
  let maybe_steal () =
    if unsettled () && queue_empty () && List.exists is_idle (alive ()) then
      (* Ask the longest-running shard: it has had the most time to fan
         out, so its unexplored frontier is the biggest. *)
      let busiest =
        List.fold_left
          (fun acc w ->
            match (w.state, acc) with
            | Busy _, _ when w.steal_sent -> acc
            | Busy _, None -> Some w
            | Busy _, Some b ->
                if Float.compare w.busy_since b.busy_since < 0 then Some w
                else acc
            | (Greeting | Idle | Gone), _ -> acc)
          None (alive ())
      in
      match busiest with
      | Some w ->
          w.steal_sent <- true;
          send_safe w (D.to_worker_to_json D.Steal)
      | None -> ()
  in
  let finish_split w sid ~wall =
    (match Hashtbl.find_opt assigned sid with
    | Some (_, _, slot) when slot = w.slot -> Hashtbl.remove assigned sid
    | Some _ | None -> ());
    w.wall <- w.wall +. wall;
    Telemetry.Metrics.observe h_shard_wall (int_of_float (wall *. 1e9));
    (match w.state with Busy s when s = sid -> w.state <- Idle | _ -> ());
    w.steal_sent <- false
  in
  let requeue ~front items =
    match items with
    | [] -> ()
    | _ :: _ -> if front then queue := items @ !queue else queue := !queue @ items
  in
  let after_report () =
    if unsettled () then begin
      if outstanding () = 0 then settle Common.Outcome.Verified
      else begin
        dispatch ();
        maybe_steal ()
      end
    end
  in
  let on_msg slot msg =
    match Hashtbl.find_opt workers slot with
    | None -> ()
    | Some w when is_gone w -> ()
    | Some w -> (
        match msg with
        | D.Hello { version; pid = _ } ->
            if version = D.version then
              send_safe w
                (D.to_worker_to_json
                   (D.Hello_ok
                      {
                        version = D.version;
                        job = spec;
                        proofcache = cfg.proofcache_persist;
                      }))
            else begin
              (* Clean reject: an incompatible worker can still parse
                 {"ok":false} even if it knows none of our ops.  The
                 worker exits on it and the reader reports the death;
                 [rejected] keeps it from being respawned. *)
              incr s_rejects;
              w.rejected <- true;
              send_safe w
                (Protocol.error
                   (Printf.sprintf
                      "dist protocol version mismatch: coordinator v%d, \
                       worker v%d" D.version version))
            end
        | D.Split_request ->
            (match w.state with Greeting -> w.state <- Idle | _ -> ());
            dispatch ();
            maybe_steal ()
        | D.Proved { sid; nodes = _; wall } ->
            finish_split w sid ~wall;
            after_report ()
        | D.Refuted { sid; witness; wall } ->
            finish_split w sid ~wall;
            settle (Common.Outcome.Refuted witness)
        | D.Yielded { sid; reason; frontier; nodes = _; wall } ->
            let escalation =
              match Hashtbl.find_opt assigned sid with
              | Some (_, e, _) -> e
              | None -> 0
            in
            finish_split w sid ~wall;
            let items = List.map (fun p -> (p, escalation)) frontier in
            (match reason with
            | D.Stolen ->
                let n = List.length items in
                s_stolen := !s_stolen + n;
                Telemetry.Metrics.add c_stolen n;
                requeue ~front:true items
            | D.Budget ->
                if escalation + 1 > cfg.max_escalations then
                  settle Common.Outcome.Timeout
                else begin
                  let bumped = List.map (fun (p, e) -> (p, e + 1)) items in
                  let n = List.length bumped in
                  s_escalated := !s_escalated + n;
                  Telemetry.Metrics.add c_escalated n;
                  (* To the back: every other split gets its cheap try
                     before anyone's expensive retry. *)
                  requeue ~front:false bumped
                end
            | D.Precision ->
                (* A region no budget can decide — same verdict the
                   sequential drain gives, same upgrade-on-refute
                   semantics while the fleet drains out. *)
                settle Common.Outcome.Unknown);
            after_report ())
  in
  let on_died slot =
    match Hashtbl.find_opt workers slot with
    | None -> ()
    | Some w when is_gone w -> ()
    | Some w ->
        (match w.state with
        | Busy sid -> (
            w.wall <- w.wall +. (Unix.gettimeofday () -. w.busy_since);
            match Hashtbl.find_opt assigned sid with
            | Some (pending, escalation, slot') when slot' = slot ->
                (* The crashed worker's outstanding split goes back to
                   the front of the queue: this re-deal is the whole
                   crash-safety argument. *)
                Hashtbl.remove assigned sid;
                incr s_reassigned;
                Telemetry.Metrics.incr c_reassigned;
                requeue ~front:true [ (pending, escalation) ]
            | Some _ | None -> ())
        | Greeting | Idle | Gone -> ());
        let premature = unsettled () in
        w.state <- Gone;
        (try close_out w.oc with Sys_error _ -> ());
        (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
        (* Only a pre-verdict exit is a death; workers draining out
           after cancel are orderly shutdowns. *)
        if premature && not w.rejected then begin
          incr s_deaths;
          Telemetry.Metrics.incr c_deaths
        end;
        if unsettled () then begin
          if outstanding () = 0 then settle Common.Outcome.Verified
          else if
            (not w.rejected)
            && !s_respawns < cfg.max_respawns
            && List.length (alive ()) < cfg.workers
          then begin
            incr s_respawns;
            (* Replacements never inherit the crash injection: the CI
               crash lane kills one worker once, then must recover. *)
            ignore (spawn ~crash_after:None ());
            dispatch ()
          end
          else begin
            match alive () with
            | [] ->
                (* Out of workers with work left: resource exhaustion.
                   The all-rejected case is turned into a failure after
                   the drain instead. *)
                settle Common.Outcome.Timeout
            | _ :: _ -> ()
          end
        end
  in
  (* --- spawn the initial fleet --- *)
  for i = 0 to cfg.workers - 1 do
    let crash_after =
      match cfg.crash_injection with
      | Some (slot, k) when slot = i -> Some k
      | Some _ | None -> None
    in
    ignore (spawn ~crash_after ())
  done;
  (* --- event loop: phase 1 until settled, phase 2 drain --- *)
  let deadline = Option.map (fun s -> started +. s) spec.Protocol.timeout in
  let rec loop () =
    if unsettled () then begin
      (match mb_pop mb with
      | Msg (slot, msg) -> on_msg slot msg
      | Bad (slot, _msg) ->
          (* Protocol violation: the reader already stopped; treat the
             worker as dead and put it out of its misery. *)
          (match Hashtbl.find_opt workers slot with
          | Some w when not (is_gone w) -> (
              try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ())
          | Some _ | None -> ());
          on_died slot
      | Died slot -> on_died slot
      | Tick -> (
          match deadline with
          | Some d when Float.compare (Unix.gettimeofday ()) d > 0 ->
              settle Common.Outcome.Timeout
          | Some _ | None -> ()));
      loop ()
    end
  in
  let rec drain () =
    match alive () with
    | [] -> ()
    | _ :: _ ->
        (match mb_pop mb with
        | Msg (_, D.Refuted { witness; _ }) ->
            settle (Common.Outcome.Refuted witness)
        | Msg (_, _) -> ()
        | Bad (slot, _) | Died slot -> on_died slot
        | Tick ->
            if
              (not !killed)
              && Unix.gettimeofday () -. !settled_at > cfg.drain_grace
            then begin
              killed := true;
              List.iter
                (fun w ->
                  try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ())
                (alive ())
            end);
        drain ()
  in
  let cleanup () =
    Atomic.set stop_timer true;
    (* Readers exit on their worker's EOF; all workers are Gone by now,
       so the joins return promptly. *)
    Hashtbl.iter (fun _ w -> Domain.join w.reader) workers;
    Domain.join timer
  in
  match
    loop ();
    drain ()
  with
  | () ->
      cleanup ();
      let outcome =
        match !verdict with
        | Some o -> o
        | None -> Common.Outcome.Timeout (* unreachable: loop settles first *)
      in
      if !s_rejects > 0 && !s_dealt = 0 && not (Common.Outcome.is_solved outcome)
      then
        failwith
          "charon-dverify: every worker was rejected at the handshake (dist \
           protocol version mismatch)";
      {
        outcome;
        elapsed = Unix.gettimeofday () -. started;
        stats =
          {
            initial_splits = List.length initial;
            dealt = !s_dealt;
            stolen = !s_stolen;
            reassigned = !s_reassigned;
            escalated = !s_escalated;
            worker_deaths = !s_deaths;
            respawns = !s_respawns;
            handshake_rejects = !s_rejects;
            shard_walls =
              List.sort
                (fun (a, _) (b, _) -> Int.compare a b)
                (Hashtbl.fold
                   (fun _ w acc -> (w.slot, w.wall) :: acc)
                   workers []);
          };
      }
  | exception e ->
      (* Never leave orphan workers behind, whatever went wrong. *)
      Hashtbl.iter
        (fun _ w ->
          if not (is_gone w) then begin
            (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
            (try close_out w.oc with Sys_error _ -> ());
            try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ()
          end)
        workers;
      cleanup ();
      raise e
