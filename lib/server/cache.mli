(** The verdict cache behind charon-serve: an LRU hot set over an
    optional persistent {!Store} journal.

    Maps a structural digest of the verification question — network
    weights, input box, target class, δ — to a previously computed
    verdict, so a repeated identical request is answered without paying
    the cold verification.  An LRU miss falls through to the store
    (and promotes on hit), so verdicts survive both eviction and
    daemon restarts.  Domain-safe: [Common.Lru] holds one mutex over
    table and recency list, the store its own.  Hit/miss/eviction
    counts are mirrored into the telemetry counters
    [serve.cache.hits] / [.misses] / [.evictions]; a hit from either
    layer counts as a hit. *)

type t

val create : ?capacity:int -> ?store:Store.t -> unit -> t
(** [capacity] (default 256) is the maximum number of hot entries; the
    least-recently-used entry is evicted on overflow (and remains
    findable in [store], if given).
    @raise Invalid_argument when [capacity < 1]. *)

val store : t -> Store.t option

val key :
  network:string -> box:Domains.Box.t -> target:int -> delta:float -> string
(** Structural cache key.  [network] is the [Nn.Serial] text (floats
    rendered with [%.17g], so weight bits round-trip); the box is
    rendered via [Common.Regionspec.to_box_string] at the same
    precision.  Equal keys imply the same verification question. *)

val get : t -> string -> (Common.Outcome.t * float) option
(** Lookup, refreshing recency — LRU first, then the store.  The float
    is the wall-clock seconds the original cold run took — served back
    to clients as evidence of the saved work. *)

val put : t -> string -> Common.Outcome.t -> cold_wall:float -> unit
(** Insert into the LRU and append to the store.  Callers should only
    store *solved* verdicts ([Verified] / [Refuted]): timeouts and
    unknowns depend on the budget and depth limit of the particular
    run, not the question. *)

val hit_rate : t -> float
(** Hits over total lookups, in [0, 1].  [0.0] before the first
    lookup (never nan — the cold-start division is guarded). *)

type stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

val stats : t -> stats
