(** The LRU verdict cache behind charon-serve.

    Maps a structural digest of the verification question — network
    weights, input box, target class, δ — to a previously computed
    verdict, so a repeated identical request is answered without paying
    the cold verification.  A thin key-scheme wrapper over the shared
    [Common.Lru] (domain-safe: one mutex over table and recency list,
    shared between the daemon's accept loop and every pool worker).
    Hit/miss/eviction counts are mirrored into the telemetry counters
    [serve.cache.hits] / [.misses] / [.evictions]. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 256) is the maximum number of entries; the
    least-recently-used entry is evicted on overflow.
    @raise Invalid_argument when [capacity < 1]. *)

val key :
  network:string -> box:Domains.Box.t -> target:int -> delta:float -> string
(** Structural cache key.  [network] is the [Nn.Serial] text (floats
    rendered with [%.17g], so weight bits round-trip); the box is
    rendered via [Common.Regionspec.to_box_string] at the same
    precision.  Equal keys imply the same verification question. *)

val get : t -> string -> (Common.Outcome.t * float) option
(** Lookup, refreshing recency.  The float is the wall-clock seconds
    the original cold run took — served back to clients as evidence of
    the saved work. *)

val put : t -> string -> Common.Outcome.t -> cold_wall:float -> unit
(** Insert or refresh.  Callers should only store *solved* verdicts
    ([Verified] / [Refuted]): timeouts and unknowns depend on the
    budget and depth limit of the particular run, not the question. *)

type stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

val stats : t -> stats
