(* A blocking, bounded, priority-aged fair-share queue.

   This replaced the plain FIFO when charon-serve went multi-tenant.
   Items are pushed into per-tenant *lanes* (FIFO within a lane) and
   popped by weighted fair queueing with aging:

   - Each lane carries a virtual time [vtime], advanced by [1/weight]
     per item served — stride scheduling, so a tenant with weight 2
     drains twice as fast as a weight-1 tenant under contention.
   - A lane (re)activating starts at the queue's virtual floor (the
     vtime of the most recently served lane), so an idle tenant
     resumes at the current service level: no monopolizing burst from
     a fresh lane, no penalty for having been idle.
   - [pop] picks the non-empty lane minimizing
     [vtime - aging_rate * head_wait]: the aging term grows linearly
     while a lane's head item waits, so *every* lane's score
     eventually undercuts the rest — no tenant starves, whatever the
     weights (the fairness property test_soak.ml measures as p95
     queue age).

   Pushing with the defaults (one implicit lane) degenerates to the
   old FIFO exactly, which is what the dverify worker mailbox still
   uses.  Capacity bounds the *total* queued items across lanes;
   [push] refuses with [`Busy] at the bound, which the scheduler turns
   into a structured, retryable backpressure reject.

   Blocking discipline is unchanged: [pop] waits until an item arrives
   or the queue closes, and [close] is the only way a consumer sees
   [None].  [wakeup] is signalled on push and broadcast on close. *)

type 'a lane = {
  tenant : string;
  mutable weight : float;
  mutable vtime : float;
  items : (float * 'a) Queue.t;  (* (enqueued_at, item) *)
}
[@@race.guarded_by "mutex"]

type 'a t = {
  mutex : Mutex.t;
  wakeup : Condition.t;
  lanes : (string, 'a lane) Hashtbl.t;
  order : string Queue.t;  (* lane creation order, for stable scans *)
  capacity : int;
  aging_rate : float;  (* vtime units gained per second of head wait *)
  mutable vfloor : float;
  mutable total : int;
  mutable closed : bool;
}
[@@race.guarded_by "mutex"]

let default_tenant = "default"

let create ?(capacity = max_int) ?(aging_rate = 0.05) () =
  if capacity < 1 then invalid_arg "Jobq.create: capacity must be positive";
  if not (Float.is_finite aging_rate) || aging_rate < 0.0 then
    invalid_arg "Jobq.create: aging_rate must be non-negative";
  {
    mutex = Mutex.create ();
    wakeup = Condition.create ();
    lanes = Hashtbl.create 8;
    order = Queue.create ();
    capacity;
    aging_rate;
    vfloor = 0.0;
    total = 0;
    closed = false;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let lane_of t tenant weight =
  match Hashtbl.find_opt t.lanes tenant with
  | Some lane ->
      lane.weight <- weight;
      if Queue.is_empty lane.items then
        (* Reactivation: catch up to the current service level. *)
        lane.vtime <- Float.max lane.vtime t.vfloor;
      lane
  | None ->
      let lane = { tenant; weight; vtime = t.vfloor; items = Queue.create () } in
      Hashtbl.replace t.lanes tenant lane;
      Queue.add tenant t.order;
      lane
[@@race.locked "mutex"]

let push ?(tenant = default_tenant) ?(weight = 1.0) t x =
  if not (Float.is_finite weight) || weight <= 0.0 then
    invalid_arg "Jobq.push: weight must be positive";
  with_lock t (fun () ->
      if t.closed then `Closed
      else if t.total >= t.capacity then `Busy
      else begin
        let lane = lane_of t tenant weight in
        Queue.add (Unix.gettimeofday (), x) lane.items;
        t.total <- t.total + 1;
        Condition.signal t.wakeup;
        `Queued
      end)

(* The winning lane: minimum [vtime - aging_rate * head_wait] over
   non-empty lanes, scanned in creation order (ties go to the older
   lane, keeping single-lane use bit-exact FIFO). *)
let select t ~now =
  let best = ref None in
  Queue.iter
    (fun tenant ->
      match Hashtbl.find_opt t.lanes tenant with
      | Some lane when not (Queue.is_empty lane.items) ->
          let enqueued, _ = Queue.peek lane.items in
          let score = lane.vtime -. (t.aging_rate *. (now -. enqueued)) in
          (match !best with
          | Some (s, _) when s <= score -> ()
          | _ -> best := Some (score, lane))
      | Some _ | None -> ())
    t.order;
  !best
[@@race.locked "mutex"]

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if t.total > 0 then begin
          match select t ~now:(Unix.gettimeofday ()) with
          | Some (_, lane) ->
              let _, x = Queue.pop lane.items in
              t.total <- t.total - 1;
              lane.vtime <- lane.vtime +. (1.0 /. lane.weight);
              t.vfloor <- Float.max t.vfloor lane.vtime;
              Some x
          | None ->
              (* total > 0 guarantees a non-empty lane. *)
              assert false
        end
        else if t.closed then None
        else begin
          Condition.wait t.wakeup t.mutex;
          wait ()
        end
      in
      wait ())

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.wakeup)

let closed t = with_lock t (fun () -> t.closed)

let length t = with_lock t (fun () -> t.total)

let capacity t = t.capacity

let depths t =
  with_lock t (fun () ->
      let acc = ref [] in
      Queue.iter
        (fun tenant ->
          match Hashtbl.find_opt t.lanes tenant with
          | Some lane when not (Queue.is_empty lane.items) ->
              acc := (tenant, Queue.length lane.items) :: !acc
          | Some _ | None -> ())
        t.order;
      List.rev !acc)
