(* A blocking FIFO for long-lived producer/consumer pipelines.

   Unlike [Parallel.Wqueue] — whose emptiness protocol is tuned for
   divide-and-conquer drains that terminate when the work tree is
   exhausted — this queue lives as long as the serving daemon: [pop]
   blocks until an item arrives or the queue is closed, and [close] is
   the only way a consumer ever sees [None].  Items are served strictly
   in arrival order.

   [wakeup] is signalled on push and broadcast on close. *)
type 'a t = {
  mutex : Mutex.t;
  wakeup : Condition.t;
  items : 'a Queue.t;
  mutable closed : bool;
}
[@@race.guarded_by "mutex"]

let create () =
  {
    mutex = Mutex.create ();
    wakeup = Condition.create ();
    items = Queue.create ();
    closed = false;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let push t x =
  with_lock t (fun () ->
      if t.closed then false
      else begin
        Queue.add x t.items;
        Condition.signal t.wakeup;
        true
      end)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.items) then Some (Queue.pop t.items)
        else if t.closed then None
        else begin
          Condition.wait t.wakeup t.mutex;
          wait ()
        end
      in
      wait ())

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.wakeup)

let closed t = with_lock t (fun () -> t.closed)

let length t = with_lock t (fun () -> Queue.length t.items)
