(** charon-dverify worker process: verifies split subtrees assigned by
    {!Coordinator} over the [Protocol.Dist] session on its
    stdin/stdout.  Host binaries expose it behind a flag
    ([charon worker], [serve.exe --worker]) so the coordinator can
    spawn its own executable as the worker.

    Environment:
    - [CHARON_WORKER_TRACE]: path; enables JSONL telemetry traces.
    - [CHARON_DVERIFY_CRASH_AFTER]: integer k; the worker SIGKILLs
      itself on receiving its (k+1)-th split (crash-injection hook for
      the CI distributed lane and the reassignment tests). *)

val main : ?ic:in_channel -> ?oc:out_channel -> unit -> int
(** Run the worker session on [ic]/[oc] (default stdin/stdout) until
    the coordinator cancels, the work drains, or the stream dies.
    Returns the process exit code: 0 orderly, 2 protocol violation,
    3 handshake refused (version mismatch). *)
