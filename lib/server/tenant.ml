(* Multi-tenant identity and accounting for charon-serve.

   A tenant is a named principal with an API key, a fair-share weight
   (how much of the pool it deserves under contention) and an
   outstanding-jobs quota (how much of the queue it may occupy at
   once).  The registry is loaded once from a JSON config file and is
   immutable afterwards — authentication is a read-only key lookup, so
   the daemon's accept loop never takes a lock to authenticate.

   Runtime accounting lives in [counters]: one mutable record per
   tenant, owned by the scheduler and only ever touched with the
   scheduler's mutex held (like its job table).  Queue-age samples go
   into a fixed ring so the fairness statistics (p95 age) cost O(ring)
   to compute and O(1) per job to record, no matter how long the
   daemon has been up. *)

module J = Telemetry.Jsonw

type tenant = {
  name : string;
  key : string option;  (* None: the trusted local principal *)
  quota : int;  (* max outstanding (queued + running) jobs; 0 = unlimited *)
  weight : float;  (* fair-share weight, > 0 *)
}

let anonymous = { name = "anonymous"; key = None; quota = 0; weight = 1.0 }

(* A registry is a handful of entries at most, so key lookup is a list
   scan — which keeps the type immutable and safely shared across the
   accept loop and every worker domain without a lock. *)
type t = { tenants : tenant list (* config order, for stable stats *) }

let empty = { tenants = [] }

let configured t = t.tenants <> []

let tenants t = t.tenants

let fail fmt = Printf.ksprintf failwith fmt

let tenant_of_json json =
  let str name =
    match Option.bind (J.member name json) J.to_string_opt with
    | Some s -> s
    | None -> fail "tenant entry: field %S must be a string" name
  in
  let name = str "name" in
  if name = "" then fail "tenant entry: name must be non-empty";
  let key = str "key" in
  if key = "" then fail "tenant %S: key must be non-empty" name;
  let quota =
    match J.member "quota" json with
    | None | Some J.Null -> 0
    | Some v -> (
        match J.to_int_opt v with
        | Some q when q >= 0 -> q
        | Some _ | None ->
            fail "tenant %S: quota must be a non-negative integer" name)
  in
  let weight =
    match J.member "weight" json with
    | None | Some J.Null -> 1.0
    | Some v -> (
        match J.to_float_opt v with
        | Some w when Float.is_finite w && w > 0.0 -> w
        | Some _ | None ->
            fail "tenant %S: weight must be a positive finite number" name)
  in
  { name; key = Some key; quota; weight }

let of_json json =
  let entries =
    match J.member "tenants" json with
    | Some (J.Arr items) -> List.map tenant_of_json items
    | Some _ -> fail "config: \"tenants\" must be an array"
    | None -> fail "config: missing \"tenants\" array"
  in
  let seen_names = Hashtbl.create 8 in
  let seen_keys = Hashtbl.create 8 in
  List.iter
    (fun tn ->
      if Hashtbl.mem seen_names tn.name then
        fail "config: duplicate tenant name %S" tn.name;
      Hashtbl.add seen_names tn.name ();
      match tn.key with
      | Some k ->
          (match Hashtbl.find_opt seen_keys k with
          | Some earlier ->
              fail "config: tenants %S and %S share an API key" earlier tn.name
          | None -> ());
          Hashtbl.add seen_keys k tn.name
      | None -> ())
    entries;
  { tenants = entries }

let load path =
  let text = In_channel.with_open_text path In_channel.input_all in
  match J.parse text with
  | json -> of_json json
  | exception J.Parse_error msg -> fail "config %s: %s" path msg

let find_key t key =
  List.find_opt (fun tn -> tn.key = Some key) t.tenants

(* ------------------------------------------------------------------ *)
(* Runtime accounting (scheduler-owned; every field below is only
   touched with the scheduler's mutex held). *)

let age_ring = 512  (* queue-age samples kept per tenant *)

type counters = {
  tenant : tenant;
  mutable accepted : int;  (* submits answered or queued, incl. hits *)
  mutable cache_hits : int;
  mutable coalesced : int;  (* submits attached to an in-flight run *)
  mutable completed : int;
  mutable cancelled : int;
  mutable failed : int;
  mutable rejected_quota : int;
  mutable rejected_busy : int;
  mutable outstanding : int;  (* queued-or-running jobs right now *)
  ages : float array;  (* ring of queue-age samples, seconds *)
  mutable age_count : int;  (* total ever recorded *)
}
(* The guard is the *scheduler's* mutex (scheduler.ml), which the
   file-local race pass cannot see; the discipline is stated in the
   mli and enforced at every touch point in scheduler.ml. *)
[@@lint.allow "domain-unsafe-global"]

let fresh_counters tenant =
  {
    tenant;
    accepted = 0;
    cache_hits = 0;
    coalesced = 0;
    completed = 0;
    cancelled = 0;
    failed = 0;
    rejected_quota = 0;
    rejected_busy = 0;
    outstanding = 0;
    ages = Array.make age_ring 0.0;
    age_count = 0;
  }

let record_age c age =
  c.ages.(c.age_count mod age_ring) <- age;
  c.age_count <- c.age_count + 1

type age_stats = { samples : int; mean : float; p95 : float; max : float }

let age_stats c =
  let n = min c.age_count age_ring in
  if n = 0 then { samples = 0; mean = 0.0; p95 = 0.0; max = 0.0 }
  else begin
    let window = Array.sub c.ages 0 n in
    Array.sort Float.compare window;
    let sum = Array.fold_left ( +. ) 0.0 window in
    let idx = min (n - 1) (int_of_float (ceil (0.95 *. float_of_int n)) - 1) in
    {
      samples = c.age_count;
      mean = sum /. float_of_int n;
      p95 = window.(max 0 idx);
      max = window.(n - 1);
    }
  end

let counters_json c =
  let a = age_stats c in
  J.Obj
    [
      ("name", J.Str c.tenant.name);
      ("weight", J.Float c.tenant.weight);
      ( "quota",
        if c.tenant.quota = 0 then J.Null else J.Int c.tenant.quota );
      ("accepted", J.Int c.accepted);
      ("cache_hits", J.Int c.cache_hits);
      ("coalesced", J.Int c.coalesced);
      ("completed", J.Int c.completed);
      ("cancelled", J.Int c.cancelled);
      ("failed", J.Int c.failed);
      ("rejected_quota", J.Int c.rejected_quota);
      ("rejected_busy", J.Int c.rejected_busy);
      ("outstanding", J.Int c.outstanding);
      ( "queue_age",
        J.Obj
          [
            ("samples", J.Int a.samples);
            ("mean_seconds", J.Float a.mean);
            ("p95_seconds", J.Float a.p95);
            ("max_seconds", J.Float a.max);
          ] );
    ]
