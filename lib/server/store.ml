(* The persistent verdict store behind the charon-serve LRU.

   The in-memory verdict cache answers repeats fast but forgets on
   restart; this store is the durable layer underneath it.  Same
   journal discipline as Charon.Proofcache: an append-only JSONL file,
   one verdict per line, appended and flushed as jobs solve new
   problems and replayed on [create].  Unparseable or torn lines are
   skipped on load, so a crash mid-append can lose at most the final
   fact, never poison a restart.

   One line per fact:

     {"v":1,"key":"<hex>","cold_wall":1.23,
      "verdict":{"verdict":"verified"}}

   The verdict object is Protocol's outcome encoding, so falsified
   entries carry their bit-exact (%.17g) witness and a restart serves
   back the very counterexample the cold run found.  Only *solved*
   verdicts belong here — callers enforce that, same as for the LRU.

   Unlike the LRU, the store keeps every fact in memory (a hash table,
   not a recency list): it is the system of record the LRU is a hot
   set of, and a verdict is a few hundred bytes.  Domain-safe: one
   mutex over table and journal. *)

module J = Telemetry.Jsonw

let c_loaded = Telemetry.Metrics.counter "serve.store.loaded"

let c_appended = Telemetry.Metrics.counter "serve.store.appended"

let c_hits = Telemetry.Metrics.counter "serve.store.hits"

type t = {
  mutex : Mutex.t;
  table : (string, Common.Outcome.t * float) Hashtbl.t;
  mutable journal : out_channel option;
  path : string;
  loaded : int;
  mutable appended : int;
  mutable hits : int;
}
[@@race.guarded_by "mutex"]

let journal_line key outcome ~cold_wall =
  J.to_string
    (J.Obj
       [
         ("v", J.Int 1);
         ("key", J.Str key);
         ("cold_wall", J.Float cold_wall);
         ("verdict", Protocol.outcome_to_json outcome);
       ])

(* A line only counts when it parses end to end, carries the v:1 tag,
   and its verdict decodes; anything else — torn tail, garbage, a
   future format — is skipped, not fatal. *)
let parse_journal_line line =
  match J.parse line with
  | exception J.Parse_error _ -> None
  | json -> (
      match (J.member "v" json, J.member "key" json, J.member "verdict" json)
      with
      | Some (J.Int 1), Some (J.Str key), Some verdict -> (
          match Protocol.outcome_of_json verdict with
          | outcome ->
              let cold_wall =
                Option.value ~default:0.0
                  (Option.bind (J.member "cold_wall" json) J.to_float_opt)
              in
              Some (key, outcome, cold_wall)
          | exception Protocol.Bad_request _ -> None)
      | _ -> None)

let load_journal table path =
  if Sys.file_exists path then begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = ref 0 in
        (try
           while true do
             match parse_journal_line (input_line ic) with
             | Some (key, outcome, cold_wall) ->
                 (* Later lines win: a re-solved problem (e.g. after an
                    eviction race duplicated an append) keeps its most
                    recent record. *)
                 Hashtbl.replace table key (outcome, cold_wall);
                 incr n
             | None -> ()
           done
         with End_of_file -> ());
        !n)
  end
  else 0

let create ~path () =
  let table = Hashtbl.create 1024 in
  let loaded = load_journal table path in
  Telemetry.Metrics.add c_loaded loaded;
  let journal = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  {
    mutex = Mutex.create ();
    table;
    journal = Some journal;
    path;
    loaded;
    appended = 0;
    hits = 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some v ->
          t.hits <- t.hits + 1;
          Telemetry.Metrics.incr c_hits;
          Some v
      | None -> None)

let record t key outcome ~cold_wall =
  with_lock t (fun () ->
      if not (Hashtbl.mem t.table key) then begin
        Hashtbl.replace t.table key (outcome, cold_wall);
        t.appended <- t.appended + 1;
        Telemetry.Metrics.incr c_appended;
        match t.journal with
        | None -> ()
        | Some oc ->
            output_string oc (journal_line key outcome ~cold_wall);
            output_char oc '\n';
            flush oc
      end)

let close t =
  with_lock t (fun () ->
      match t.journal with
      | Some oc ->
          t.journal <- None;
          close_out_noerr oc
      | None -> ())

let path t = t.path

let loaded t = t.loaded

type stats = { entries : int; loaded : int; appended : int; hits : int }

let stats t =
  with_lock t (fun () ->
      {
        entries = Hashtbl.length t.table;
        loaded = t.loaded;
        appended = t.appended;
        hits = t.hits;
      })
