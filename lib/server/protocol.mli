(** The charon-serve wire protocol: one compact JSON document per line
    in each direction, over a Unix-domain stream socket.  A connection
    carries exactly one request/response pair.  Schema and examples:
    docs/serving.md. *)

module J = Telemetry.Jsonw

type job_spec = {
  name : string;  (** free-form label echoed in status responses *)
  network : string;  (** the network in [Nn.Serial] text form *)
  box : Domains.Box.t;  (** input region *)
  target : int;  (** robustness target class K *)
  delta : float;  (** δ of the δ-complete counterexample test *)
  timeout : float option;  (** per-job wall-clock budget, seconds *)
  max_steps : int option;  (** per-job transformer-call budget *)
  seed : int;  (** RNG seed for the job's PGD stream *)
}

type request =
  | Submit of job_spec
  | Status of { id : int; since : int }
      (** poll job [id], returning events with sequence number >= [since] *)
  | Cancel of int
  | Stats
  | Ping
  | Shutdown

exception Bad_request of string
(** Raised by the parsing functions on malformed or ill-typed input;
    the daemon turns it into an [error] response. *)

val send : out_channel -> J.t -> unit
(** Write one line-framed compact JSON document and flush. *)

val recv : in_channel -> J.t option
(** Read one line-framed document; [None] on EOF.
    @raise J.Parse_error on malformed JSON. *)

val to_json : request -> J.t

val of_json : J.t -> request
(** @raise Bad_request on unknown ops or missing/ill-typed fields. *)

val outcome_to_json : Common.Outcome.t -> J.t
(** [{"verdict": "verified" | "falsified" | "timeout" | "unknown"}],
    with a bit-exact [witness] float-string array when falsified. *)

val outcome_of_json : J.t -> Common.Outcome.t
(** @raise Bad_request on malformed verdicts. *)

val ok : (string * J.t) list -> J.t
(** [{"ok": true, ...fields}] *)

val error : string -> J.t
(** [{"ok": false, "error": msg}] *)
