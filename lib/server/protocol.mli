(** The charon-serve wire protocol: one compact JSON document per line
    in each direction, over a Unix-domain stream socket.  A connection
    carries exactly one request/response pair.  Schema and examples:
    docs/serving.md. *)

module J = Telemetry.Jsonw

type job_spec = {
  name : string;  (** free-form label echoed in status responses *)
  network : string;  (** the network in [Nn.Serial] text form *)
  box : Domains.Box.t;  (** input region *)
  target : int;  (** robustness target class K *)
  delta : float;  (** δ of the δ-complete counterexample test *)
  timeout : float option;  (** per-job wall-clock budget, seconds *)
  max_steps : int option;  (** per-job transformer-call budget *)
  seed : int;  (** RNG seed for the job's PGD stream *)
}

type request =
  | Submit of job_spec
  | Status of { id : int; since : int }
      (** poll job [id], returning events with sequence number >= [since] *)
  | Cancel of int
  | Stats
  | Ping
  | Shutdown

exception Bad_request of string
(** Raised by the parsing functions on malformed or ill-typed input;
    the daemon turns it into an [error] response. *)

exception Torn_line of int
(** The peer closed the stream in the middle of a message: EOF arrived
    after that many bytes of an unterminated line.  Clients must treat
    this as failure (never as a response); the dverify coordinator
    treats it as a worker death. *)

exception Oversized_line of int
(** A line exceeded the reader's [max_len] bound: that many bytes
    arrived with no terminator.  The daemon answers with a
    code=["oversized"] reject and closes the connection. *)

val send : out_channel -> J.t -> unit
(** Write one line-framed compact JSON document and flush. *)

val recv : ?max_len:int -> in_channel -> J.t option
(** Read one line-framed document; [None] on clean EOF (the stream
    ended exactly on a message boundary).  [max_len] (default
    unbounded) caps the line length in bytes — the daemon's defence
    against a peer streaming newline-free garbage.
    @raise Torn_line on EOF mid-message.
    @raise Oversized_line when a line exceeds [max_len].
    @raise J.Parse_error on malformed JSON. *)

val to_json : request -> J.t

val of_json : J.t -> request
(** @raise Bad_request on unknown ops or missing/ill-typed fields. *)

val outcome_to_json : Common.Outcome.t -> J.t
(** [{"verdict": "verified" | "falsified" | "timeout" | "unknown"}],
    with a bit-exact [witness] float-string array when falsified. *)

val outcome_of_json : J.t -> Common.Outcome.t
(** @raise Bad_request on malformed verdicts. *)

val ok : (string * J.t) list -> J.t
(** [{"ok": true, ...fields}] *)

val error : string -> J.t
(** [{"ok": false, "error": msg}] *)

val reject : code:string -> retryable:bool -> string -> J.t
(** [{"ok": false, "error": msg, "code": code, "retryable": b}] — a
    structured refusal.  Codes in use: ["busy"] (queue full, retryable),
    ["quota"] (tenant's outstanding-job limit), ["auth"] (unknown or
    missing API key), ["version"] (handshake mismatch), ["oversized"],
    ["bad_request"], ["shutting_down"]. *)

val reject_code : J.t -> string option
(** The [code] of a structured reject, if present. *)

val reject_retryable : J.t -> bool
(** The [retryable] bit of a reject; [false] when absent. *)

(** The multi-tenant TCP handshake.  Unix-socket connections stay
    anonymous (the socket path's filesystem permissions are the
    credential) and send their request directly; TCP connections must
    open with [hello] (version + API key) and wait for [hello_ok] —
    or a terminal code=["version"]/["auth"] reject — before the
    request line. *)
module Serve : sig
  val version : int

  type hello = { version : int; api_key : string option }

  val hello_to_json : hello -> J.t

  val is_hello : J.t -> bool
  (** [true] for [{"op": "hello", ...}] — lets the daemon accept an
      optional hello on the trusted Unix socket too (a client that
      always greets works on both transports). *)

  val hello_of_json : J.t -> hello
  (** @raise Bad_request on missing/ill-typed fields. *)

  val hello_ok : tenant:string -> J.t
  (** [{"ok": true, "op": "hello_ok", "version": v, "tenant": name}] *)
end

(** The charon-dverify coordinator/worker message set: same line
    framing over a worker process's stdin/stdout, long-lived session,
    versioned handshake.  Message grammar and the full session shape:
    docs/serving.md, "Distributed split-and-conquer". *)
module Dist : sig
  val version : int
  (** Protocol revision spoken by this build.  [hello]/[hello_ok] with
      any other value is rejected with an [error] document (coordinator
      side) or a non-zero exit (worker side) — never answered with ops
      the peer may not know. *)

  type pending = { box : Domains.Box.t; depth : int }
  (** One unexplored region and the absolute split depth that produced
      it — exactly a {!Verify.run_subtree} frontier entry. *)

  type to_worker =
    | Hello_ok of { version : int; job : job_spec; proofcache : string option }
        (** handshake accept: the job every split belongs to, plus an
            optional shared proof-cache journal path *)
    | Assign of {
        sid : int;
        box : Domains.Box.t;
        depth : int;
        max_steps : int;
        seconds : float option;
      }  (** verify this split (op ["split"] on the wire) *)
    | Steal  (** yield the current split's unexplored frontier back *)
    | Cancel_all  (** global cancel: stop and exit cleanly *)

  type yield_reason =
    | Budget  (** the per-split budget ran out; frontier is re-dealt
                  with an escalated budget *)
    | Stolen  (** answering a [Steal] *)
    | Precision
        (** a region hit a precision limit (depth cap / zero-width
            split); harder budgets will not help *)

  type from_worker =
    | Hello of { version : int; pid : int }
    | Split_request  (** idle and ready for a split *)
    | Proved of { sid : int; nodes : int; wall : float }
    | Refuted of { sid : int; witness : Linalg.Vec.t; wall : float }
    | Yielded of {
        sid : int;
        reason : yield_reason;
        frontier : pending list;
        nodes : int;
        wall : float;
      }

  val to_worker_to_json : to_worker -> J.t

  val to_worker_of_json : J.t -> to_worker
  (** @raise Bad_request on unknown ops or missing/ill-typed fields. *)

  val from_worker_to_json : from_worker -> J.t

  val from_worker_of_json : J.t -> from_worker
  (** @raise Bad_request on unknown ops or missing/ill-typed fields. *)

  val is_rejection : J.t -> bool
  (** [true] for [{"ok": false, ...}] — the coordinator's handshake
      rejection, the only non-op document in a dverify session. *)
end
