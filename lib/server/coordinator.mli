(** charon-dverify coordinator: shard one hard verification across N
    worker processes over the [Protocol.Dist] session (message grammar
    and policies: docs/serving.md, "Distributed split-and-conquer").

    The coordinator cuts the input box into canonical initial splits
    ({!Domains.Partition} cuts, so shard results keep canonical
    proof-cache keys), deals them to spawned worker processes, steals
    unexplored splits back from slow shards, escalates per-split step
    budgets geometrically (iterative deepening), broadcasts cancel the
    moment any shard refutes, and — the crash-safety core — re-queues a
    dead worker's outstanding split so a SIGKILLed worker never loses a
    verdict.  [Verified] is returned only when every split has been
    explicitly proved. *)

type config = {
  workers : int;  (** worker processes to spawn *)
  initial_splits : int;
      (** lower bound on initial canonical splits; [0] means
          [4 * workers] *)
  initial_steps : int;
      (** per-split transformer-step budget at escalation 0 *)
  escalation_factor : int;
      (** budget multiplier per re-deal of a budget-yielded split *)
  max_escalations : int;
      (** escalations after which the run settles [Timeout] *)
  max_respawns : int;  (** replacement workers across the whole run *)
  drain_grace : float;
      (** seconds after settling before stragglers are SIGKILLed *)
  trace_dir : string option;
      (** write [worker-N.jsonl] telemetry traces here (and point each
          worker's [CHARON_WORKER_TRACE] at its file) *)
  proofcache_persist : string option;
      (** shared proof-cache journal path handed to every worker, so
          shard facts land in one reusable cache *)
  crash_injection : (int * int) option;
      (** [(i, k)]: initial worker [i] runs with
          [CHARON_DVERIFY_CRASH_AFTER=k] (test/CI hook; replacements
          never inherit it) *)
}

val default_config : workers:int -> config
(** 4x[workers] initial splits, 20k steps escalating 4x up to 16
    times, [workers] respawns, 5 s drain grace, no traces, no shared
    cache, no crash injection.  Raises [Invalid_argument] when
    [workers < 1]. *)

type stats = {
  initial_splits : int;
  dealt : int;  (** splits handed to workers (incl. re-deals) *)
  stolen : int;  (** frontier entries reclaimed by steal requests *)
  reassigned : int;  (** outstanding splits re-queued off dead workers *)
  escalated : int;  (** budget-yielded splits re-queued with a bigger
                        budget *)
  worker_deaths : int;
      (** pre-verdict EOFs/kills observed (handshake rejects and
          orderly post-verdict drain exits not included) *)
  respawns : int;
  handshake_rejects : int;
  shard_walls : (int * float) list;
      (** per worker slot: seconds spent busy on splits *)
}

type result = { outcome : Common.Outcome.t; elapsed : float; stats : stats }

val run :
  worker_cmd:string array -> ?config:config -> Protocol.job_spec -> result
(** Verify [spec] across [config.workers] processes spawned from
    [worker_cmd] (argv; [worker_cmd.(0)] is the executable — typically
    the host binary re-executing itself with a worker flag).  The
    spec's [timeout] is the global wall budget; [max_steps] is ignored
    (per-split budgets come from [config]).

    The verdict has [Verify.run] semantics: [Verified] iff every
    subregion was proved, [Refuted x] with a transport-exact witness
    the moment any shard finds one (upgrading a concurrent
    Timeout/Unknown, never the reverse), [Timeout] on wall/escalation
    exhaustion or when every worker has died with work left, [Unknown]
    when a shard hits a precision limit.  Worker crashes — including
    SIGKILL mid-split — never lose work: the dead worker's outstanding
    split is re-dealt, and replacements are spawned up to
    [config.max_respawns].

    @raise Failure when no worker ever passed the handshake (e.g. a
    protocol version mismatch rejected the whole fleet).
    @raise Invalid_argument on an empty [worker_cmd] or
    [config.workers < 1]. *)
