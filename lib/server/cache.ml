(* The verdict cache behind charon-serve.

   Keyed by a structural digest of the full verification question —
   network weights (the Nn.Serial text, which renders every float with
   %.17g and therefore round-trips bit-for-bit), input box, target
   class and δ — so two requests share an entry exactly when they ask
   the same question.  Only *solved* verdicts (Verified / Refuted) are
   worth storing: Timeout depends on the budget that happened to ride
   along, and Unknown on the depth limit, so the scheduler never
   inserts those.

   Two layers since the daemon went multi-tenant: the LRU is the hot
   set, and an optional [Store.t] journal behind it is the system of
   record.  An LRU miss falls through to the store; a store hit is
   promoted back into the LRU, so a verdict computed before a restart
   costs one Hashtbl probe forever after.  Inserts go to both layers.

   Hit/miss accounting lives at this level (atomics, not the LRU's own
   counters) because "hit" means *either* layer answered.  Storage and
   eviction live in Common.Lru (shared with the subregion proof
   cache): intrusive LRU list, one mutex, hit/miss/eviction atomics.
   This wrapper owns the key scheme and mirrors events into the
   serve.cache.* telemetry counters. *)

type t = {
  lru : (Common.Outcome.t * float) Common.Lru.t;
  store : Store.t option;
  hits : int Atomic.t;
  misses : int Atomic.t;
}
[@@race.atomic]

let c_hits = Telemetry.Metrics.counter "serve.cache.hits"

let c_misses = Telemetry.Metrics.counter "serve.cache.misses"

let c_evictions = Telemetry.Metrics.counter "serve.cache.evictions"

let create ?(capacity = 256) ?store () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be positive";
  {
    lru = Common.Lru.create ~capacity ();
    store;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let store t = t.store

let key ~network ~(box : Domains.Box.t) ~target ~delta =
  let buf = Buffer.create (String.length network + 64) in
  Buffer.add_string buf network;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Common.Regionspec.to_box_string box);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (string_of_int target);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "%.17g" delta);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let hit t v =
  Atomic.incr t.hits;
  Telemetry.Metrics.incr c_hits;
  Some v

let get t k =
  match Common.Lru.get t.lru k with
  | Some v -> hit t v
  | None -> (
      match Option.bind t.store (fun s -> Store.find s k) with
      | Some v ->
          (* Promote: the next identical request stays in the hot set. *)
          if Common.Lru.put t.lru k v then Telemetry.Metrics.incr c_evictions;
          hit t v
      | None ->
          Atomic.incr t.misses;
          Telemetry.Metrics.incr c_misses;
          None)

let put t k outcome ~cold_wall =
  if Common.Lru.put t.lru k (outcome, cold_wall) then
    Telemetry.Metrics.incr c_evictions;
  match t.store with
  | Some s -> Store.record s k outcome ~cold_wall
  | None -> ()

let hit_rate t =
  (* Guard the cold-start division: before the first lookup both
     counters are zero, and 0/0 must read as "no hits yet", not nan. *)
  let h = Atomic.get t.hits and m = Atomic.get t.misses in
  let total = h + m in
  if total = 0 then 0.0 else float_of_int h /. float_of_int total

type stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

let stats t =
  let s = Common.Lru.stats t.lru in
  {
    size = s.Common.Lru.size;
    capacity = s.Common.Lru.capacity;
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = s.Common.Lru.evictions;
  }
