(* The verdict cache behind charon-serve.

   Keyed by a structural digest of the full verification question —
   network weights (the Nn.Serial text, which renders every float with
   %.17g and therefore round-trips bit-for-bit), input box, target
   class and δ — so two requests share an entry exactly when they ask
   the same question.  Only *solved* verdicts (Verified / Refuted) are
   worth storing: Timeout depends on the budget that happened to ride
   along, and Unknown on the depth limit, so the scheduler never
   inserts those.

   Eviction is least-recently-used over an intrusive doubly-linked
   list: [get] and [put] both move the touched entry to the front, and
   inserting into a full cache drops the back.  All operations take the
   one mutex; the table is shared between the daemon's accept loop and
   every pool worker.

   Discipline: every mutable field (list links, table, counters) is
   only touched with [mutex] held; the hit/miss atomics are
   fetch-and-add only and readable without the lock. *)

type entry = {
  key : string;
  outcome : Common.Outcome.t;
  cold_wall : float;  (* seconds the uncached run took *)
  mutable prev : entry option;  (* toward the front (most recent) *)
  mutable next : entry option;  (* toward the back (eviction end) *)
}
[@@lint.allow "domain-unsafe-global"]

type t = {
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  capacity : int;
  mutable front : entry option;
  mutable back : entry option;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
}
[@@lint.allow "domain-unsafe-global"]

let c_hits = Telemetry.Metrics.counter "serve.cache.hits"

let c_misses = Telemetry.Metrics.counter "serve.cache.misses"

let c_evictions = Telemetry.Metrics.counter "serve.cache.evictions"

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be positive";
  {
    mutex = Mutex.create ();
    table = Hashtbl.create (2 * capacity);
    capacity;
    front = None;
    back = None;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let key ~network ~(box : Domains.Box.t) ~target ~delta =
  let buf = Buffer.create (String.length network + 64) in
  Buffer.add_string buf network;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Common.Regionspec.to_box_string box);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (string_of_int target);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "%.17g" delta);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* List surgery; callers hold [mutex]. *)

let unlink t e =
  (match e.prev with
  | Some p -> p.next <- e.next
  | None -> t.front <- e.next);
  (match e.next with
  | Some n -> n.prev <- e.prev
  | None -> t.back <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.prev <- None;
  e.next <- t.front;
  (match t.front with Some f -> f.prev <- Some e | None -> t.back <- Some e);
  t.front <- Some e

let get t k =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some e ->
          unlink t e;
          push_front t e;
          ignore (Atomic.fetch_and_add t.hits 1);
          Telemetry.Metrics.incr c_hits;
          Some (e.outcome, e.cold_wall)
      | None ->
          ignore (Atomic.fetch_and_add t.misses 1);
          Telemetry.Metrics.incr c_misses;
          None)

let put t k outcome ~cold_wall =
  with_lock t (fun () ->
      (match Hashtbl.find_opt t.table k with
      | Some e -> unlink t e; Hashtbl.remove t.table k
      | None -> ());
      if Hashtbl.length t.table >= t.capacity then begin
        match t.back with
        | Some victim ->
            unlink t victim;
            Hashtbl.remove t.table victim.key;
            ignore (Atomic.fetch_and_add t.evictions 1);
            Telemetry.Metrics.incr c_evictions
        | None -> ()
      end;
      let e = { key = k; outcome; cold_wall; prev = None; next = None } in
      Hashtbl.replace t.table k e;
      push_front t e)

type stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

let stats t =
  with_lock t (fun () ->
      {
        size = Hashtbl.length t.table;
        capacity = t.capacity;
        hits = Atomic.get t.hits;
        misses = Atomic.get t.misses;
        evictions = Atomic.get t.evictions;
      })
