(* The verdict cache behind charon-serve.

   Keyed by a structural digest of the full verification question —
   network weights (the Nn.Serial text, which renders every float with
   %.17g and therefore round-trips bit-for-bit), input box, target
   class and δ — so two requests share an entry exactly when they ask
   the same question.  Only *solved* verdicts (Verified / Refuted) are
   worth storing: Timeout depends on the budget that happened to ride
   along, and Unknown on the depth limit, so the scheduler never
   inserts those.

   Storage and eviction live in Common.Lru (shared with the subregion
   proof cache): intrusive LRU list, one mutex, hit/miss/eviction
   atomics.  This wrapper owns the key scheme and mirrors events into
   the serve.cache.* telemetry counters. *)

type t = { lru : (Common.Outcome.t * float) Common.Lru.t }

let c_hits = Telemetry.Metrics.counter "serve.cache.hits"

let c_misses = Telemetry.Metrics.counter "serve.cache.misses"

let c_evictions = Telemetry.Metrics.counter "serve.cache.evictions"

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be positive";
  { lru = Common.Lru.create ~capacity () }

let key ~network ~(box : Domains.Box.t) ~target ~delta =
  let buf = Buffer.create (String.length network + 64) in
  Buffer.add_string buf network;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Common.Regionspec.to_box_string box);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (string_of_int target);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "%.17g" delta);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let get t k =
  match Common.Lru.get t.lru k with
  | Some v ->
      Telemetry.Metrics.incr c_hits;
      Some v
  | None ->
      Telemetry.Metrics.incr c_misses;
      None

let put t k outcome ~cold_wall =
  if Common.Lru.put t.lru k (outcome, cold_wall) then
    Telemetry.Metrics.incr c_evictions

type stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

let stats t =
  let s = Common.Lru.stats t.lru in
  {
    size = s.Common.Lru.size;
    capacity = s.Common.Lru.capacity;
    hits = s.Common.Lru.hits;
    misses = s.Common.Lru.misses;
    evictions = s.Common.Lru.evictions;
  }
