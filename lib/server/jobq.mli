(** A domain-safe blocking FIFO for long-lived producer/consumer
    pipelines (the serving daemon's job queue).

    [Parallel.Wqueue] terminates its consumers when the outstanding work
    tree drains; this queue instead blocks consumers until the producer
    closes it, which is the shape a daemon's scheduler needs. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> bool
(** Enqueue one item; wakes one blocked consumer.  Returns [false] (and
    drops the item) if the queue has been closed. *)

val pop : 'a t -> 'a option
(** Dequeue in arrival order, blocking while the queue is empty and
    open.  [None] means the queue was closed; remaining items are still
    served before [None] is reported. *)

val close : 'a t -> unit
(** Idempotent.  Blocked and future [pop]s drain leftover items, then
    return [None]; future [push]es are rejected. *)

val closed : 'a t -> bool

val length : 'a t -> int
(** Items currently queued (the daemon's queue-depth gauge). *)
