(** A domain-safe blocking, bounded, priority-aged fair-share queue —
    the multi-tenant replacement for the serving daemon's FIFO.

    Items live in per-tenant lanes (FIFO within a lane); {!pop} serves
    lanes by weighted fair queueing (stride scheduling: a lane pays
    [1/weight] virtual time per item) with linear aging on the head
    item's wait so no lane ever starves.  Pushing with the default
    tenant and weight degenerates to a plain FIFO (the dverify worker
    mailbox).

    [Parallel.Wqueue] terminates its consumers when the outstanding
    work tree drains; this queue instead blocks consumers until the
    producer closes it, which is the shape a daemon's scheduler
    needs. *)

type 'a t

val create : ?capacity:int -> ?aging_rate:float -> unit -> 'a t
(** [capacity] (default unbounded) bounds total queued items across
    all lanes — the daemon's backpressure limit.  [aging_rate]
    (default 0.05) is the virtual-time credit a waiting lane gains per
    second; higher values approach global FIFO, 0 is pure weighted
    fair queueing.
    @raise Invalid_argument on [capacity < 1] or negative rate. *)

val push : ?tenant:string -> ?weight:float -> 'a t -> 'a -> [ `Queued | `Busy | `Closed ]
(** Enqueue one item on [tenant]'s lane ([weight] updates the lane's
    fair share); wakes one blocked consumer.  [`Busy] when the queue
    is at capacity (the item is dropped — callers reject with a
    retryable error), [`Closed] after {!close}.
    @raise Invalid_argument when [weight <= 0]. *)

val pop : 'a t -> 'a option
(** Dequeue the fair-share winner, blocking while the queue is empty
    and open.  [None] means the queue was closed; remaining items are
    still served before [None] is reported. *)

val close : 'a t -> unit
(** Idempotent.  Blocked and future [pop]s drain leftover items, then
    return [None]; future [push]es are rejected. *)

val closed : 'a t -> bool

val length : 'a t -> int
(** Total items currently queued (the daemon's queue-depth gauge). *)

val capacity : 'a t -> int

val depths : 'a t -> (string * int) list
(** Per-tenant queued-item counts (non-empty lanes only), in lane
    creation order. *)
