(** Request coalescing index for the charon-serve scheduler: problem
    key (verdict-cache MD5) -> the id of the run currently answering
    it.  A duplicate submit attaches to that run as a follower and
    receives its verdict when it settles (docs/serving.md).

    Domain-safe behind its own mutex; the scheduler calls in with its
    own lock already held (the nesting is always scheduler ->
    coalesce, so the order cannot deadlock). *)

type t

val create : unit -> t

val find : t -> string -> int option
(** The in-flight run for a problem key, if any. *)

val register : t -> string -> int -> unit
(** A new run became the in-flight answerer for its key. *)

val attached : t -> unit
(** Tally one follower attachment (mirrors [serve.coalesced]). *)

val finish : t -> string -> unit
(** The run settled (or was cancelled): later identical submits start
    a fresh run (or hit the verdict cache). *)

val inflight_keys : t -> int

val coalesced_total : t -> int

val peak_inflight : t -> int
