(* In-flight request coalescing for charon-serve.

   Identical hard problems arrive in bursts (duplicated queries are
   the common case in fleet traffic), and the verdict cache only helps
   once the *first* run finishes.  This index closes the gap: it maps
   the problem key (the verdict-cache MD5) of every run currently
   queued or executing to that run's id, so a duplicate submit
   attaches to the existing run as a *follower* instead of queueing a
   second identical verification.  When the run settles, every
   attached job receives the verdict.

   Domain-safe behind its own mutex.  The scheduler calls in with its
   own lock held; the nesting is always scheduler -> coalesce, never
   the reverse, so the order cannot deadlock. *)

type t = {
  mutex : Mutex.t;
  inflight : (string, int) Hashtbl.t;  (* problem key -> run id *)
  mutable coalesced_total : int;  (* followers ever attached *)
  mutable peak_inflight : int;  (* high-water of distinct keys *)
}
[@@race.guarded_by "mutex"]

let c_coalesced = Telemetry.Metrics.counter "serve.coalesced"

let create () =
  {
    mutex = Mutex.create ();
    inflight = Hashtbl.create 64;
    coalesced_total = 0;
    peak_inflight = 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key = with_lock t (fun () -> Hashtbl.find_opt t.inflight key)

let register t key rid =
  with_lock t (fun () ->
      Hashtbl.replace t.inflight key rid;
      let n = Hashtbl.length t.inflight in
      if n > t.peak_inflight then t.peak_inflight <- n)

let attached t =
  with_lock t (fun () -> t.coalesced_total <- t.coalesced_total + 1);
  Telemetry.Metrics.incr c_coalesced

let finish t key = with_lock t (fun () -> Hashtbl.remove t.inflight key)

let inflight_keys t = with_lock t (fun () -> Hashtbl.length t.inflight)

let coalesced_total t = with_lock t (fun () -> t.coalesced_total)

let peak_inflight t = with_lock t (fun () -> t.peak_inflight)
