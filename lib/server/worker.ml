(* charon-dverify worker: one shard of a distributed split-and-conquer
   verification (docs/serving.md, "Distributed split-and-conquer").

   The worker speaks [Protocol.Dist] on its stdin/stdout pipes: after
   the versioned handshake it announces itself idle with
   [split_request] and then loops — receive a split, verify the
   subtree with [Verify.run_subtree], report [proved] / [refuted] /
   [yielded].  A dedicated reader domain drains the coordinator's
   messages so a [steal] or [cancel] lands while the main domain is
   mid-subtree: steal flips an atomic the verifier polls between
   regions, cancel trips the shared token and closes the mailbox.

   The process is disposable by design: any protocol irregularity or
   EOF from the coordinator ends it, and the coordinator's reassignment
   logic — not anything here — is what guarantees no split's verdict is
   lost when that happens. *)

module D = Protocol.Dist

let c_splits = Telemetry.Metrics.counter "dverify.worker.splits"

let c_regions = Telemetry.Metrics.counter "dverify.worker.regions"

(* Exit codes: 0 orderly (cancelled, work drained, coordinator gone),
   2 protocol violation mid-session, 3 handshake refused. *)
let exit_ok = 0

let exit_protocol = 2

let exit_handshake = 3

(* Crash injection for the CI distributed lane and the reassignment
   tests: with CHARON_DVERIFY_CRASH_AFTER=k the worker SIGKILLs itself
   upon receiving its (k+1)-th split — a genuine mid-run kill with an
   outstanding assignment, exactly the case the coordinator must
   recover by re-dealing the split elsewhere. *)
let crash_after () =
  match Sys.getenv_opt "CHARON_DVERIFY_CRASH_AFTER" with
  | None -> None
  | Some s -> int_of_string_opt s

(* Deterministic per-split RNG: derived from the job seed and the
   canonical partition key of the split's box, so the stream a region
   sees does not depend on which worker got the split, how often it was
   re-dealt, or assignment order. *)
let split_rng ~seed box =
  let h =
    String.fold_left
      (fun h c -> (h * 131) + Char.code c)
      seed
      (Domains.Partition.key_of_box box)
  in
  Linalg.Rng.create h

type session = {
  net : Nn.Network.t;
  spec : Protocol.job_spec;
  proofcache : Charon.Proofcache.t option;
  steal : bool Atomic.t;
  cancel : Parallel.Cancel.t;
  mailbox : D.to_worker Jobq.t;
}
[@@race.atomic]

let handshake ic oc =
  Protocol.send oc
    (D.from_worker_to_json
       (D.Hello { version = D.version; pid = Unix.getpid () }));
  match Protocol.recv ic with
  | None -> Error (exit_ok, "coordinator went away before the handshake")
  | Some json when D.is_rejection json ->
      let msg =
        match
          Option.bind (Telemetry.Jsonw.member "error" json)
            Telemetry.Jsonw.to_string_opt
        with
        | Some m -> m
        | None -> "handshake rejected"
      in
      Error (exit_handshake, msg)
  | Some json -> (
      match D.to_worker_of_json json with
      | D.Hello_ok { version; job; proofcache } ->
          if version <> D.version then
            Error
              ( exit_handshake,
                Printf.sprintf
                  "coordinator speaks dist protocol v%d, this worker v%d"
                  version D.version )
          else Ok (job, proofcache)
      | D.Cancel_all ->
          (* The run settled while we were greeting (e.g. a replacement
             spawned right before the verdict): orderly shutdown. *)
          Error (exit_ok, "")
      | D.Assign _ | D.Steal ->
          Error (exit_protocol, "expected hello_ok as the first message")
      | exception Protocol.Bad_request msg -> Error (exit_protocol, msg))

(* The reader domain owns stdin for the rest of the session.  It never
   blocks the verifier: assignments flow through the mailbox, steal and
   cancel are side-channel flags.  Any stream irregularity is treated
   as the coordinator's death — cancel the verifier and let the main
   loop drain out. *)
let reader ic session =
  let stop () =
    Parallel.Cancel.cancel session.cancel;
    Jobq.close session.mailbox
  in
  let rec loop () =
    match Option.map D.to_worker_of_json (Protocol.recv ic) with
    | None -> stop ()
    | Some (D.Assign _ as msg) ->
        (* Reset here, not in the verifier: pipe order is authoritative,
           so a [steal] that raced ahead of the verifier popping this
           assignment still applies to it, while one aimed at an earlier
           split is correctly dropped. *)
        Atomic.set session.steal false;
        ignore (Jobq.push session.mailbox msg);
        loop ()
    | Some D.Steal ->
        Atomic.set session.steal true;
        loop ()
    | Some D.Cancel_all -> stop ()
    | Some (D.Hello_ok _) ->
        (* A second handshake is a protocol violation; bail. *)
        stop ()
    | exception
        ( Protocol.Torn_line _ | Protocol.Bad_request _
        | Telemetry.Jsonw.Parse_error _ | Sys_error _ | End_of_file ) ->
        stop ()
  in
  loop ()

let verify_split session ~sid ~box ~depth ~max_steps ~seconds =
  let spec = session.spec in
  Telemetry.Metrics.incr c_splits;
  let prop =
    Common.Property.create
      ~name:(Printf.sprintf "%s#%d" spec.Protocol.name sid)
      ~region:box ~target:spec.Protocol.target ()
  in
  let config =
    { Charon.Verify.default_config with Charon.Verify.delta = spec.Protocol.delta }
  in
  let budget = Common.Budget.create ?seconds ~steps:max_steps () in
  let r =
    Charon.Verify.run_subtree ~config ~budget ~cancel:session.cancel
      ~yield:(fun () -> Atomic.get session.steal)
      ?proofcache:session.proofcache ~root_depth:depth
      ~rng:(split_rng ~seed:spec.Protocol.seed box)
      ~policy:Charon.Policy.default session.net prop
  in
  Telemetry.Metrics.add c_regions r.Charon.Verify.subtree_nodes;
  let wall = r.Charon.Verify.subtree_elapsed in
  let frontier =
    List.map
      (fun (box, depth) -> { D.box; depth })
      r.Charon.Verify.frontier
  in
  match r.Charon.Verify.subtree_outcome with
  | Charon.Verify.Subtree_proved ->
      D.Proved { sid; nodes = r.Charon.Verify.subtree_nodes; wall }
  | Charon.Verify.Subtree_refuted x -> D.Refuted { sid; witness = x; wall }
  | Charon.Verify.Subtree_unknown ->
      D.Yielded
        {
          sid;
          reason = D.Precision;
          frontier;
          nodes = r.Charon.Verify.subtree_nodes;
          wall;
        }
  | Charon.Verify.Subtree_yielded ->
      let reason = if Atomic.get session.steal then D.Stolen else D.Budget in
      D.Yielded
        { sid; reason; frontier; nodes = r.Charon.Verify.subtree_nodes; wall }

let session_loop oc session =
  let crash_after = crash_after () in
  let assigns = ref 0 in
  let rec loop () =
    match Jobq.pop session.mailbox with
    | None -> exit_ok
    | Some (D.Assign { sid; box; depth; max_steps; seconds }) ->
        incr assigns;
        (match crash_after with
        | Some k when !assigns > k ->
            (* Crash injection: die with this split outstanding. *)
            Unix.kill (Unix.getpid ()) Sys.sigkill
        | Some _ | None -> ());
        let report = verify_split session ~sid ~box ~depth ~max_steps ~seconds in
        if Parallel.Cancel.cancelled session.cancel then exit_ok
        else begin
          Protocol.send oc (D.from_worker_to_json report);
          loop ()
        end
    | Some (D.Hello_ok _ | D.Steal | D.Cancel_all) ->
        (* The reader never forwards these. *)
        exit_protocol
  in
  loop ()

let main ?(ic = stdin) ?(oc = stdout) () =
  (* EPIPE on a report beats dying silently on SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (match Sys.getenv_opt "CHARON_WORKER_TRACE" with
  | Some path when path <> "" && not (Telemetry.enabled ()) ->
      Telemetry.enable ~path ()
  | Some _ | None -> ());
  let finish code =
    Telemetry.disable ();
    code
  in
  match handshake ic oc with
  | Error (code, msg) ->
      if not (String.equal msg "") then
        prerr_endline ("charon-dverify worker: " ^ msg);
      finish code
  | Ok (spec, proofcache_path) -> (
      match Nn.Serial.of_string spec.Protocol.network with
      | exception Failure msg ->
          prerr_endline ("charon-dverify worker: bad network: " ^ msg);
          finish exit_protocol
      | net ->
          let session =
            {
              net;
              spec;
              proofcache =
                Option.map
                  (fun persist -> Charon.Proofcache.create ~persist ())
                  proofcache_path;
              steal = Atomic.make false;
              cancel = Parallel.Cancel.create ();
              mailbox = Jobq.create ();
            }
          in
          let rd = Domain.spawn (fun () -> reader ic session) in
          Protocol.send oc (D.from_worker_to_json D.Split_request);
          let code =
            match session_loop oc session with
            | code -> code
            | exception (Sys_error _ | Unix.Unix_error _) ->
                (* The coordinator's pipe is gone; nothing left to say. *)
                exit_ok
          in
          Parallel.Cancel.cancel session.cancel;
          Jobq.close session.mailbox;
          (* The reader is blocked in [recv] until the coordinator
             closes our stdin, which it does as soon as it has seen our
             exit or sent cancel; joining keeps the domain from being
             leaked in in-process tests. *)
          (try close_in ic with Sys_error _ -> ());
          Domain.join rd;
          (match session.proofcache with
          | Some pc -> Charon.Proofcache.close pc
          | None -> ());
          finish code)
