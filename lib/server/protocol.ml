(* The charon-serve wire protocol (docs/serving.md).

   One JSON document per line in both directions, rendered and parsed
   with the shared [Telemetry.Jsonw] value type.  A connection carries
   exactly one request and one response: clients connect, send one
   line, read one line, and disconnect — which keeps the daemon's
   accept loop single-threaded (job execution, not connection
   handling, is where the concurrency lives).

   Exactness: float payloads that feed the cache key or a verdict
   (box bounds, counterexample witnesses) travel as %.17g strings so
   the bits round-trip; incidental floats (timeouts, wall times) use
   plain JSON numbers. *)

module J = Telemetry.Jsonw

type job_spec = {
  name : string;
  network : string;  (* Nn.Serial text *)
  box : Domains.Box.t;
  target : int;
  delta : float;
  timeout : float option;  (* wall-clock seconds *)
  max_steps : int option;  (* transformer-call budget *)
  seed : int;
}

type request =
  | Submit of job_spec
  | Status of { id : int; since : int }
  | Cancel of int
  | Stats
  | Ping
  | Shutdown

(* ------------------------------------------------------------------ *)
(* Framing *)

exception Torn_line of int

exception Oversized_line of int

let send oc (json : J.t) =
  output_string oc (J.to_string json);
  output_char oc '\n';
  flush oc

(* Strict framing: a document only counts once its '\n' terminator has
   arrived.  [In_channel.input_line] silently treats bytes-then-EOF as
   a complete line, which let a peer dying mid-write hand the reader a
   JSON prefix — at best a parse error, at worst (if the tear fell on a
   document boundary inside a buffered stream) a truncated-but-valid
   document.  Distinguishing "clean EOF between messages" ([None])
   from "EOF mid-message" ([Torn_line]) is what lets clients exit
   non-zero on a torn response and lets the dverify coordinator treat
   the tear as a worker death. *)
let recv ?(max_len = max_int) ic =
  let buf = Buffer.create 256 in
  let rec loop () =
    match In_channel.input_char ic with
    | Some '\n' -> Some (J.parse (Buffer.contents buf))
    | Some c ->
        Buffer.add_char buf c;
        (* Refuse unbounded lines before buffering them: a peer
           streaming garbage without a newline must cost at most
           [max_len] bytes of memory, not the machine. *)
        if Buffer.length buf > max_len then
          raise (Oversized_line (Buffer.length buf));
        loop ()
    | None ->
        if Buffer.length buf = 0 then None
        else raise (Torn_line (Buffer.length buf))
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Helpers *)

exception Bad_request of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_request m)) fmt

let field name json =
  match J.member name json with
  | Some v -> v
  | None -> bad "missing field %S" name

let int_field name json =
  match J.to_int_opt (field name json) with
  | Some i -> i
  | None -> bad "field %S must be an integer" name

let string_field name json =
  match J.to_string_opt (field name json) with
  | Some s -> s
  | None -> bad "field %S must be a string" name

let opt_field name conv json =
  match J.member name json with
  | None | Some J.Null -> None
  | Some v -> (
      match conv v with
      | Some x -> Some x
      | None -> bad "field %S has the wrong type" name)

(* ------------------------------------------------------------------ *)
(* Exact floats: %.17g strings round-trip every bit of a double. *)

let exact_float f = J.Str (Printf.sprintf "%.17g" f)

let exact_float_of = function
  | J.Str s -> (
      match float_of_string_opt s with
      | Some f -> f
      | None -> bad "malformed exact float %S" s)
  | v -> (
      match J.to_float_opt v with
      | Some f -> f
      | None -> bad "expected an exact float")

let vec_to_json (v : Linalg.Vec.t) =
  J.Arr (Array.to_list (Array.map exact_float v))

let vec_of_json = function
  | J.Arr items -> Array.of_list (List.map exact_float_of items)
  | _ -> bad "expected a float array"

(* ------------------------------------------------------------------ *)
(* Outcomes *)

let outcome_to_json (o : Common.Outcome.t) =
  match o with
  | Common.Outcome.Verified -> J.Obj [ ("verdict", J.Str "verified") ]
  | Common.Outcome.Refuted x ->
      J.Obj [ ("verdict", J.Str "falsified"); ("witness", vec_to_json x) ]
  | Common.Outcome.Timeout -> J.Obj [ ("verdict", J.Str "timeout") ]
  | Common.Outcome.Unknown -> J.Obj [ ("verdict", J.Str "unknown") ]

let outcome_of_json json =
  match J.to_string_opt (field "verdict" json) with
  | Some "verified" -> Common.Outcome.Verified
  | Some "falsified" ->
      Common.Outcome.Refuted (vec_of_json (field "witness" json))
  | Some "timeout" -> Common.Outcome.Timeout
  | Some "unknown" -> Common.Outcome.Unknown
  | Some other -> bad "unknown verdict %S" other
  | None -> bad "field \"verdict\" must be a string"

(* ------------------------------------------------------------------ *)
(* Requests *)

let spec_to_json s =
  let base =
    [
      ("op", J.Str "submit");
      ("name", J.Str s.name);
      ("network", J.Str s.network);
      ("box", J.Str (Common.Regionspec.to_box_string s.box));
      ("target", J.Int s.target);
      ("delta", exact_float s.delta);
      ("seed", J.Int s.seed);
    ]
  in
  let base =
    match s.timeout with
    | Some t -> base @ [ ("timeout", J.Float t) ]
    | None -> base
  in
  match s.max_steps with
  | Some n -> base @ [ ("max_steps", J.Int n) ]
  | None -> base

let to_json = function
  | Submit s -> J.Obj (spec_to_json s)
  | Status { id; since } ->
      J.Obj [ ("op", J.Str "status"); ("id", J.Int id); ("since", J.Int since) ]
  | Cancel id -> J.Obj [ ("op", J.Str "cancel"); ("id", J.Int id) ]
  | Stats -> J.Obj [ ("op", J.Str "stats") ]
  | Ping -> J.Obj [ ("op", J.Str "ping") ]
  | Shutdown -> J.Obj [ ("op", J.Str "shutdown") ]

let spec_of_json json =
  let box =
    let s = string_field "box" json in
    match Common.Regionspec.parse_box s with
    | box -> box
    | exception Failure m -> bad "bad box %S: %s" s m
  in
  let delta = exact_float_of (field "delta" json) in
  if not (Float.is_finite delta && delta > 0.0) then
    bad "delta must be a positive finite float";
  let target = int_field "target" json in
  if target < 0 then bad "target class must be non-negative";
  {
    name =
      (match opt_field "name" J.to_string_opt json with
      | Some n -> n
      | None -> "property");
    network = string_field "network" json;
    box;
    target;
    delta;
    timeout = opt_field "timeout" J.to_float_opt json;
    max_steps = opt_field "max_steps" J.to_int_opt json;
    seed =
      (match opt_field "seed" J.to_int_opt json with
      | Some s -> s
      | None -> 2019);
  }

let of_json json =
  match J.to_string_opt (field "op" json) with
  | Some "submit" -> Submit (spec_of_json json)
  | Some "status" ->
      Status
        {
          id = int_field "id" json;
          since =
            (match opt_field "since" J.to_int_opt json with
            | Some s -> s
            | None -> 0);
        }
  | Some "cancel" -> Cancel (int_field "id" json)
  | Some "stats" -> Stats
  | Some "ping" -> Ping
  | Some "shutdown" -> Shutdown
  | Some other -> bad "unknown op %S" other
  | None -> bad "field \"op\" must be a string"

(* ------------------------------------------------------------------ *)
(* Responses *)

let ok fields = J.Obj (("ok", J.Bool true) :: fields)

let error msg = J.Obj [ ("ok", J.Bool false); ("error", J.Str msg) ]

(* Structured rejects: every multi-tenant refusal carries a machine
   code and a retryability bit so clients can distinguish "back off
   and resend" (queue full) from "fix your request" (bad key, quota
   exhausted, protocol mismatch) without parsing prose. *)
let reject ~code ~retryable msg =
  J.Obj
    [
      ("ok", J.Bool false);
      ("error", J.Str msg);
      ("code", J.Str code);
      ("retryable", J.Bool retryable);
    ]

let reject_code json =
  match J.member "code" json with
  | Some (J.Str c) -> Some c
  | Some _ | None -> None

let reject_retryable json =
  match J.member "retryable" json with
  | Some (J.Bool b) -> b
  | Some _ | None -> false

(* ------------------------------------------------------------------ *)
(* The multi-tenant TCP handshake (docs/serving.md).

   Unix-socket connections stay trusted and anonymous: filesystem
   permissions on the socket path are the credential, and the first
   line is the request itself, exactly as in the single-tenant
   protocol.  TCP reaches beyond the machine boundary, so a TCP
   connection must open with a [hello] carrying the protocol version
   and the tenant's API key; the daemon answers [hello_ok] (echoing
   the resolved tenant name) or a terminal reject — code ["version"]
   or ["auth"] — before any request is read.  Same versioned-handshake
   discipline as [Dist], for the same reason: an incompatible peer is
   refused with a document it can parse, never answered with ops it
   cannot. *)

module Serve = struct
  let version = 1

  type hello = { version : int; api_key : string option }

  let hello_to_json { version = v; api_key } =
    let base = [ ("op", J.Str "hello"); ("version", J.Int v) ] in
    J.Obj
      (match api_key with
      | Some k -> base @ [ ("api_key", J.Str k) ]
      | None -> base)

  let is_hello json =
    match J.member "op" json with
    | Some (J.Str "hello") -> true
    | Some _ | None -> false

  let hello_of_json json =
    {
      version = int_field "version" json;
      api_key = opt_field "api_key" J.to_string_opt json;
    }

  let hello_ok ~tenant =
    ok [ ("op", J.Str "hello_ok"); ("version", J.Int version);
         ("tenant", J.Str tenant) ]
end

(* ------------------------------------------------------------------ *)
(* Distributed split-and-conquer (charon-dverify, docs/serving.md).

   Same line framing, but over a worker process's stdin/stdout pipes
   and with a long-lived conversation instead of one request/response
   pair.  The session opens with a versioned handshake — worker sends
   [hello], coordinator answers [hello_ok] carrying the job, or an
   [error] document on version mismatch so an incompatible worker is
   rejected cleanly instead of hanging on an op it cannot parse. *)

module Dist = struct
  let version = 1

  type pending = { box : Domains.Box.t; depth : int }

  type to_worker =
    | Hello_ok of { version : int; job : job_spec; proofcache : string option }
    | Assign of {
        sid : int;
        box : Domains.Box.t;
        depth : int;
        max_steps : int;
        seconds : float option;
      }
    | Steal
    | Cancel_all

  type yield_reason = Budget | Stolen | Precision

  type from_worker =
    | Hello of { version : int; pid : int }
    | Split_request
    | Proved of { sid : int; nodes : int; wall : float }
    | Refuted of { sid : int; witness : Linalg.Vec.t; wall : float }
    | Yielded of {
        sid : int;
        reason : yield_reason;
        frontier : pending list;
        nodes : int;
        wall : float;
      }

  let box_to_json box = J.Str (Common.Regionspec.to_box_string box)

  let box_of_field name json =
    let s = string_field name json in
    match Common.Regionspec.parse_box s with
    | box -> box
    | exception Failure m -> bad "bad box %S: %s" s m

  let pending_to_json { box; depth } =
    J.Obj [ ("box", box_to_json box); ("depth", J.Int depth) ]

  let pending_of_json json =
    let depth = int_field "depth" json in
    if depth < 0 then bad "frontier depth must be non-negative";
    { box = box_of_field "box" json; depth }

  let reason_to_string = function
    | Budget -> "budget"
    | Stolen -> "stolen"
    | Precision -> "precision"

  let reason_of_string = function
    | "budget" -> Budget
    | "stolen" -> Stolen
    | "precision" -> Precision
    | other -> bad "unknown yield reason %S" other

  let to_worker_to_json = function
    | Hello_ok { version = v; job; proofcache } ->
        let base =
          [
            ("op", J.Str "hello_ok");
            ("version", J.Int v);
            (* [spec_to_json] tags the spec as a submit request; the
               embedded job is not one, so the tag is dropped. *)
            ( "job",
              J.Obj (List.filter (fun (k, _) -> k <> "op") (spec_to_json job))
            );
          ]
        in
        J.Obj
          (match proofcache with
          | Some path -> base @ [ ("proofcache", J.Str path) ]
          | None -> base)
    | Assign { sid; box; depth; max_steps; seconds } ->
        let base =
          [
            ("op", J.Str "split");
            ("sid", J.Int sid);
            ("box", box_to_json box);
            ("depth", J.Int depth);
            ("max_steps", J.Int max_steps);
          ]
        in
        J.Obj
          (match seconds with
          | Some s -> base @ [ ("seconds", J.Float s) ]
          | None -> base)
    | Steal -> J.Obj [ ("op", J.Str "steal") ]
    | Cancel_all -> J.Obj [ ("op", J.Str "cancel") ]

  let to_worker_of_json json =
    match J.to_string_opt (field "op" json) with
    | Some "hello_ok" ->
        Hello_ok
          {
            version = int_field "version" json;
            job = spec_of_json (field "job" json);
            proofcache = opt_field "proofcache" J.to_string_opt json;
          }
    | Some "split" ->
        let depth = int_field "depth" json in
        if depth < 0 then bad "split depth must be non-negative";
        Assign
          {
            sid = int_field "sid" json;
            box = box_of_field "box" json;
            depth;
            max_steps = int_field "max_steps" json;
            seconds = opt_field "seconds" J.to_float_opt json;
          }
    | Some "steal" -> Steal
    | Some "cancel" -> Cancel_all
    | Some other -> bad "unknown coordinator op %S" other
    | None -> bad "field \"op\" must be a string"

  let from_worker_to_json = function
    | Hello { version = v; pid } ->
        J.Obj [ ("op", J.Str "hello"); ("version", J.Int v); ("pid", J.Int pid) ]
    | Split_request -> J.Obj [ ("op", J.Str "split_request") ]
    | Proved { sid; nodes; wall } ->
        J.Obj
          [
            ("op", J.Str "proved");
            ("sid", J.Int sid);
            ("nodes", J.Int nodes);
            ("wall", J.Float wall);
          ]
    | Refuted { sid; witness; wall } ->
        J.Obj
          [
            ("op", J.Str "refuted");
            ("sid", J.Int sid);
            ("witness", vec_to_json witness);
            ("wall", J.Float wall);
          ]
    | Yielded { sid; reason; frontier; nodes; wall } ->
        J.Obj
          [
            ("op", J.Str "yielded");
            ("sid", J.Int sid);
            ("reason", J.Str (reason_to_string reason));
            ("frontier", J.Arr (List.map pending_to_json frontier));
            ("nodes", J.Int nodes);
            ("wall", J.Float wall);
          ]

  let from_worker_of_json json =
    match J.to_string_opt (field "op" json) with
    | Some "hello" ->
        Hello
          { version = int_field "version" json; pid = int_field "pid" json }
    | Some "split_request" -> Split_request
    | Some "proved" ->
        Proved
          {
            sid = int_field "sid" json;
            nodes = int_field "nodes" json;
            wall = Option.value ~default:0.0 (J.to_float_opt (field "wall" json));
          }
    | Some "refuted" ->
        Refuted
          {
            sid = int_field "sid" json;
            witness = vec_of_json (field "witness" json);
            wall = Option.value ~default:0.0 (J.to_float_opt (field "wall" json));
          }
    | Some "yielded" ->
        Yielded
          {
            sid = int_field "sid" json;
            reason = reason_of_string (string_field "reason" json);
            frontier =
              (match field "frontier" json with
              | J.Arr items -> List.map pending_of_json items
              | _ -> bad "field \"frontier\" must be an array");
            nodes = int_field "nodes" json;
            wall = Option.value ~default:0.0 (J.to_float_opt (field "wall" json));
          }
    | Some other -> bad "unknown worker op %S" other
    | None -> bad "field \"op\" must be a string"

  (* [{"ok": false, ...}] — the coordinator's handshake rejection (and
     the only non-op document either side ever sends). *)
  let is_rejection json =
    match J.member "ok" json with
    | Some (J.Bool false) -> true
    | Some _ | None -> false
end
