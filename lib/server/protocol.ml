(* The charon-serve wire protocol (docs/serving.md).

   One JSON document per line in both directions, rendered and parsed
   with the shared [Telemetry.Jsonw] value type.  A connection carries
   exactly one request and one response: clients connect, send one
   line, read one line, and disconnect — which keeps the daemon's
   accept loop single-threaded (job execution, not connection
   handling, is where the concurrency lives).

   Exactness: float payloads that feed the cache key or a verdict
   (box bounds, counterexample witnesses) travel as %.17g strings so
   the bits round-trip; incidental floats (timeouts, wall times) use
   plain JSON numbers. *)

module J = Telemetry.Jsonw

type job_spec = {
  name : string;
  network : string;  (* Nn.Serial text *)
  box : Domains.Box.t;
  target : int;
  delta : float;
  timeout : float option;  (* wall-clock seconds *)
  max_steps : int option;  (* transformer-call budget *)
  seed : int;
}

type request =
  | Submit of job_spec
  | Status of { id : int; since : int }
  | Cancel of int
  | Stats
  | Ping
  | Shutdown

(* ------------------------------------------------------------------ *)
(* Framing *)

let send oc (json : J.t) =
  output_string oc (J.to_string json);
  output_char oc '\n';
  flush oc

let recv ic =
  match In_channel.input_line ic with
  | None -> None
  | Some line -> Some (J.parse line)

(* ------------------------------------------------------------------ *)
(* Helpers *)

exception Bad_request of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_request m)) fmt

let field name json =
  match J.member name json with
  | Some v -> v
  | None -> bad "missing field %S" name

let int_field name json =
  match J.to_int_opt (field name json) with
  | Some i -> i
  | None -> bad "field %S must be an integer" name

let string_field name json =
  match J.to_string_opt (field name json) with
  | Some s -> s
  | None -> bad "field %S must be a string" name

let opt_field name conv json =
  match J.member name json with
  | None | Some J.Null -> None
  | Some v -> (
      match conv v with
      | Some x -> Some x
      | None -> bad "field %S has the wrong type" name)

(* ------------------------------------------------------------------ *)
(* Exact floats: %.17g strings round-trip every bit of a double. *)

let exact_float f = J.Str (Printf.sprintf "%.17g" f)

let exact_float_of = function
  | J.Str s -> (
      match float_of_string_opt s with
      | Some f -> f
      | None -> bad "malformed exact float %S" s)
  | v -> (
      match J.to_float_opt v with
      | Some f -> f
      | None -> bad "expected an exact float")

let vec_to_json (v : Linalg.Vec.t) =
  J.Arr (Array.to_list (Array.map exact_float v))

let vec_of_json = function
  | J.Arr items -> Array.of_list (List.map exact_float_of items)
  | _ -> bad "expected a float array"

(* ------------------------------------------------------------------ *)
(* Outcomes *)

let outcome_to_json (o : Common.Outcome.t) =
  match o with
  | Common.Outcome.Verified -> J.Obj [ ("verdict", J.Str "verified") ]
  | Common.Outcome.Refuted x ->
      J.Obj [ ("verdict", J.Str "falsified"); ("witness", vec_to_json x) ]
  | Common.Outcome.Timeout -> J.Obj [ ("verdict", J.Str "timeout") ]
  | Common.Outcome.Unknown -> J.Obj [ ("verdict", J.Str "unknown") ]

let outcome_of_json json =
  match J.to_string_opt (field "verdict" json) with
  | Some "verified" -> Common.Outcome.Verified
  | Some "falsified" ->
      Common.Outcome.Refuted (vec_of_json (field "witness" json))
  | Some "timeout" -> Common.Outcome.Timeout
  | Some "unknown" -> Common.Outcome.Unknown
  | Some other -> bad "unknown verdict %S" other
  | None -> bad "field \"verdict\" must be a string"

(* ------------------------------------------------------------------ *)
(* Requests *)

let spec_to_json s =
  let base =
    [
      ("op", J.Str "submit");
      ("name", J.Str s.name);
      ("network", J.Str s.network);
      ("box", J.Str (Common.Regionspec.to_box_string s.box));
      ("target", J.Int s.target);
      ("delta", exact_float s.delta);
      ("seed", J.Int s.seed);
    ]
  in
  let base =
    match s.timeout with
    | Some t -> base @ [ ("timeout", J.Float t) ]
    | None -> base
  in
  match s.max_steps with
  | Some n -> base @ [ ("max_steps", J.Int n) ]
  | None -> base

let to_json = function
  | Submit s -> J.Obj (spec_to_json s)
  | Status { id; since } ->
      J.Obj [ ("op", J.Str "status"); ("id", J.Int id); ("since", J.Int since) ]
  | Cancel id -> J.Obj [ ("op", J.Str "cancel"); ("id", J.Int id) ]
  | Stats -> J.Obj [ ("op", J.Str "stats") ]
  | Ping -> J.Obj [ ("op", J.Str "ping") ]
  | Shutdown -> J.Obj [ ("op", J.Str "shutdown") ]

let spec_of_json json =
  let box =
    let s = string_field "box" json in
    match Common.Regionspec.parse_box s with
    | box -> box
    | exception Failure m -> bad "bad box %S: %s" s m
  in
  let delta = exact_float_of (field "delta" json) in
  if not (Float.is_finite delta && delta > 0.0) then
    bad "delta must be a positive finite float";
  let target = int_field "target" json in
  if target < 0 then bad "target class must be non-negative";
  {
    name =
      (match opt_field "name" J.to_string_opt json with
      | Some n -> n
      | None -> "property");
    network = string_field "network" json;
    box;
    target;
    delta;
    timeout = opt_field "timeout" J.to_float_opt json;
    max_steps = opt_field "max_steps" J.to_int_opt json;
    seed =
      (match opt_field "seed" J.to_int_opt json with
      | Some s -> s
      | None -> 2019);
  }

let of_json json =
  match J.to_string_opt (field "op" json) with
  | Some "submit" -> Submit (spec_of_json json)
  | Some "status" ->
      Status
        {
          id = int_field "id" json;
          since =
            (match opt_field "since" J.to_int_opt json with
            | Some s -> s
            | None -> 0);
        }
  | Some "cancel" -> Cancel (int_field "id" json)
  | Some "stats" -> Stats
  | Some "ping" -> Ping
  | Some "shutdown" -> Shutdown
  | Some other -> bad "unknown op %S" other
  | None -> bad "field \"op\" must be a string"

(* ------------------------------------------------------------------ *)
(* Responses *)

let ok fields = J.Obj (("ok", J.Bool true) :: fields)

let error msg = J.Obj [ ("ok", J.Bool false); ("error", J.Str msg) ]
