(** The charon-serve job scheduler: a job table, a priority-aged
    fair-share queue of *runs* (one execution per distinct verification
    question — duplicate submits coalesce onto the in-flight run as
    followers), and a pool of worker domains draining it through
    [Charon.Verify.run] with per-run budgets and cooperative
    cancellation, fronted by the {!Cache} verdict cache (an LRU hot
    set over an optional persistent {!Store}).

    All entry points return the wire-ready JSON response the daemon
    writes back, so the accept loop stays a thin dispatcher.  Every
    function is safe to call from any domain. *)

type t

val create :
  ?workers:int ->
  ?cache_capacity:int ->
  ?proofcache_capacity:int ->
  ?proofcache_persist:string ->
  ?store_path:string ->
  ?queue_capacity:int ->
  ?aging_rate:float ->
  ?tenants:Tenant.t ->
  unit ->
  t
(** Start the pool ([workers], default 4, worker domains inside one
    supervisor domain), an empty verdict cache, and one subregion proof
    cache ([Charon.Proofcache], capacity [proofcache_capacity], default
    65536) shared by every run the pool executes — overlapping queries
    from different clients reuse each other's subregion proofs.
    [proofcache_persist] names the proof cache's JSONL journal;
    [store_path] names the persistent *verdict* store's journal (solved
    verdicts are replayed from it on create and appended as runs solve
    new ones, so restarts answer old questions from disk).
    [queue_capacity] (default 256) bounds the run queue — submits
    beyond it get a retryable code=["busy"] reject.  [aging_rate]
    tunes the fair-share queue's anti-starvation term ({!Jobq.create}).
    [tenants] seeds the per-tenant accounting in config order.
    Returns immediately.
    @raise Invalid_argument when [workers < 1] or
    [queue_capacity < 1]. *)

val submit : ?tenant:Tenant.tenant -> t -> Protocol.job_spec -> Telemetry.Jsonw.t
(** Enqueue a job for [tenant] (default {!Tenant.anonymous}) — or
    answer synchronously when the verdict cache hits (the response's
    [cache.hit] is [true] and [cache.cold_wall_seconds] reports what
    the cold run cost), or attach to an identical in-flight run (the
    response's [coalesced] is [true]; the job settles when that run
    does).  The response carries the job [id] used by {!status} and
    {!cancel}.  Refusals are structured rejects: code=["quota"] when
    the tenant's outstanding-jobs quota is reached (retryable once one
    settles), code=["busy"] when the run queue is full (retryable with
    backoff), code=["shutting_down"] after {!shutdown}. *)

val status : t -> id:int -> since:int -> Telemetry.Jsonw.t
(** Snapshot of one job: state, progress (nodes explored, peak split
    depth — updated live by the running worker), verdict when done,
    and the status events with sequence number at least [since]
    (queued → running → verdict/cancelled/failed).  Poll with
    [since = next_seq] of the previous response to stream events
    without duplicates. *)

val cancel : t -> int -> Telemetry.Jsonw.t
(** Cancel a job.  A job sharing its run with other attachments
    detaches and settles immediately — the run (and everyone else
    riding it) is untouched.  The sole attachment of a queued run
    settles immediately and kills the run; the sole attachment of an
    executing run has the run's token flagged and stops at the
    verifier's next region poll.  Terminal jobs are returned
    unchanged. *)

val stats : t -> Telemetry.Jsonw.t
(** Queue depth/capacity (total and per tenant), queued and in-flight
    (claimed-by-a-worker, so never above [workers]) and peak in-flight
    run counts, per-state tallies, coalescing totals, the per-tenant
    accounting blocks (accepted/rejected/coalesced counts and
    queue-age mean/p95/max), verdict-cache, persistent-store and
    proof-cache statistics (each with a hit rate), and the non-zero
    telemetry counters. *)

val shutdown : t -> unit
(** Close the queue, cancel every queued and running run, join the
    pool — no worker domain outlives this call — and close the proof
    cache and verdict store journals.  Idempotent. *)

val workers : t -> int

val proofcache : t -> Charon.Proofcache.t
(** The scheduler-wide subregion proof cache (shared by all runs). *)

val store : t -> Store.t option
(** The persistent verdict store, when [store_path] was given. *)
