(** The charon-serve job scheduler: a job table, a blocking FIFO, and a
    pool of worker domains draining it through [Charon.Verify.run] with
    per-job budgets and cooperative cancellation, fronted by the
    {!Cache} verdict cache.

    All entry points return the wire-ready JSON response the daemon
    writes back, so the accept loop stays a thin dispatcher.  Every
    function is safe to call from any domain. *)

type t

val create :
  ?workers:int ->
  ?cache_capacity:int ->
  ?proofcache_capacity:int ->
  ?proofcache_persist:string ->
  unit ->
  t
(** Start the pool ([workers], default 4, worker domains inside one
    supervisor domain), an empty verdict cache, and one subregion proof
    cache ([Charon.Proofcache], capacity [proofcache_capacity], default
    65536) shared by every job the pool runs — overlapping queries from
    different clients reuse each other's subregion proofs.
    [proofcache_persist] names the proof cache's JSONL journal: proved
    facts are replayed from it on create and appended to it as jobs
    prove new ones, so warm starts survive restarts.  Returns
    immediately.
    @raise Invalid_argument when [workers < 1]. *)

val submit : t -> Protocol.job_spec -> Telemetry.Jsonw.t
(** Enqueue a job — or answer synchronously when the verdict cache hits
    (the response's [cache.hit] is [true] and [cache.cold_wall_seconds]
    reports what the cold run cost).  The response carries the job
    [id] used by {!status} and {!cancel}. *)

val status : t -> id:int -> since:int -> Telemetry.Jsonw.t
(** Snapshot of one job: state, progress (nodes explored, peak split
    depth — updated live by the running worker), verdict when done,
    and the status events with sequence number at least [since]
    (queued → running → verdict/cancelled/failed).  Poll with
    [since = next_seq] of the previous response to stream events
    without duplicates. *)

val cancel : t -> int -> Telemetry.Jsonw.t
(** Cancel a job.  A queued job settles immediately; a running one has
    its token flagged and stops at the verifier's next region poll.
    Terminal jobs are returned unchanged. *)

val stats : t -> Telemetry.Jsonw.t
(** Queue depth, queued and in-flight (claimed-by-a-worker, so never
    above [workers]) and peak in-flight job counts, per-state tallies,
    verdict-cache and proof-cache statistics (each with a hit rate),
    and the non-zero telemetry counters. *)

val shutdown : t -> unit
(** Close the queue, cancel every queued and running job, join the
    pool — no worker domain outlives this call — and close the proof
    cache journal.  Idempotent. *)

val workers : t -> int

val proofcache : t -> Charon.Proofcache.t
(** The scheduler-wide subregion proof cache (shared by all jobs). *)
