(** The persistent on-disk verdict store behind the charon-serve LRU
    (docs/serving.md).

    Append-only JSONL journal, one solved verdict per line (Protocol's
    outcome encoding, bit-exact witnesses), replayed into memory on
    {!create}.  Torn or unparseable lines are skipped — a crash
    mid-append loses at most the final fact.  Domain-safe. *)

type t

val create : path:string -> unit -> t
(** Replay [path] (created if absent) and open it for appending. *)

val find : t -> string -> (Common.Outcome.t * float) option
(** Lookup by verdict-cache key; the float is the original cold run's
    wall seconds.  Counts a store hit. *)

val record : t -> string -> Common.Outcome.t -> cold_wall:float -> unit
(** Append one fact (and flush).  A key already present is skipped —
    verdicts are deterministic facts, not updates.  Callers must only
    record *solved* outcomes (Verified / Refuted). *)

val close : t -> unit
(** Close the journal; idempotent.  [find] keeps working. *)

val path : t -> string

val loaded : t -> int
(** Facts replayed from the journal at {!create}. *)

type stats = { entries : int; loaded : int; appended : int; hits : int }

val stats : t -> stats
