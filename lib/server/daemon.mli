(** The charon-serve daemon: a single-threaded accept loop over a
    Unix-domain socket and/or a TCP listener, dispatching line-framed
    JSON requests ({!Protocol}) to a {!Scheduler} whose pool domains do
    the actual verification.  Wire format, tenancy and operational
    notes: docs/serving.md.

    The Unix socket is the trusted local endpoint (anonymous requests;
    filesystem permissions are the credential).  TCP connections must
    open with the {!Protocol.Serve} hello handshake whenever tenants
    are configured; unknown keys and version mismatches get terminal
    structured rejects.  Every accepted connection runs under a
    receive/send timeout and a line-length bound, so a slow, stalled or
    hostile peer cannot wedge the accept loop or balloon its memory.

    Both entry points force telemetry metrics on — live counters
    (cache hit rate, queue depth, per-job wall times) are part of the
    service's responses. *)

val serve :
  ?socket:string ->
  ?tcp:string * int ->
  ?workers:int ->
  ?cache_capacity:int ->
  ?proofcache_capacity:int ->
  ?proofcache_persist:string ->
  ?store_path:string ->
  ?queue_capacity:int ->
  ?tenants:Tenant.t ->
  ?max_line:int ->
  unit ->
  unit
(** Bind [socket] (replacing a stale socket file) and/or [tcp] (a
    [(host, port)] endpoint; port 0 binds an ephemeral port), serve
    requests, and block until a shutdown request arrives; then cancel
    all pending jobs, join every worker domain, close and unlink the
    sockets.  [workers] defaults to 4, [cache_capacity] to 256.
    [proofcache_capacity] / [proofcache_persist] configure the
    scheduler-wide subregion proof cache, [store_path] the persistent
    verdict store, [queue_capacity] the bounded fair-share run queue
    (see {!Scheduler.create}).  [tenants] is the API-key registry
    ({!Tenant.load}); [max_line] (default 8 MiB) bounds a request
    line.
    @raise Invalid_argument when neither [socket] nor [tcp] is
    given. *)

type handle

val start :
  ?socket:string ->
  ?tcp:string * int ->
  ?workers:int ->
  ?cache_capacity:int ->
  ?proofcache_capacity:int ->
  ?proofcache_persist:string ->
  ?store_path:string ->
  ?queue_capacity:int ->
  ?tenants:Tenant.t ->
  ?max_line:int ->
  unit ->
  handle
(** In-process variant for tests and embedding: binds synchronously —
    clients may connect as soon as [start] returns — and runs the
    accept loop on a spawned domain. *)

val stop : handle -> unit
(** Send a shutdown request and join the loop domain.  After [stop]
    returns, no domain started by {!start} is still running and the
    socket file has been removed. *)

val socket_path : handle -> string option

val tcp_port : handle -> int option
(** The actually-bound TCP port (resolves port 0 to the kernel's
    choice), when a TCP endpoint was requested. *)
