(** The charon-serve daemon: a single-threaded accept loop on a
    Unix-domain socket, dispatching line-framed JSON requests
    ({!Protocol}) to a {!Scheduler} whose pool domains do the actual
    verification.  Wire format and operational notes: docs/serving.md.

    Both entry points force telemetry metrics on — live counters
    (cache hit rate, queue depth, per-job wall times) are part of the
    service's responses. *)

val serve :
  socket:string ->
  ?workers:int ->
  ?cache_capacity:int ->
  ?proofcache_capacity:int ->
  ?proofcache_persist:string ->
  unit ->
  unit
(** Bind [socket] (replacing a stale socket file), serve requests, and
    block until a shutdown request arrives; then cancel all pending
    jobs, join every worker domain, close and unlink the socket.
    [workers] defaults to 4, [cache_capacity] to 256.
    [proofcache_capacity] / [proofcache_persist] configure the
    scheduler-wide subregion proof cache (see {!Scheduler.create});
    with a persistence path, proved subregions survive daemon
    restarts. *)

type handle

val start :
  socket:string ->
  ?workers:int ->
  ?cache_capacity:int ->
  ?proofcache_capacity:int ->
  ?proofcache_persist:string ->
  unit ->
  handle
(** In-process variant for tests and embedding: binds synchronously —
    clients may connect as soon as [start] returns — and runs the
    accept loop on a spawned domain. *)

val stop : handle -> unit
(** Send a shutdown request and join the loop domain.  After [stop]
    returns, no domain started by {!start} is still running and the
    socket file has been removed. *)

val socket_path : handle -> string
