(** Thin charon-serve client: one Unix-socket connection per request,
    line-framed JSON both ways.  Used by the CLI client binaries and
    the server lifecycle tests. *)

exception Server_error of string
(** An [{"ok": false}] response, a malformed response, or a poll
    deadline expiring. *)

val request : socket:string -> Protocol.request -> Telemetry.Jsonw.t
(** Lowest level: connect, send, read one response, disconnect.  The
    response is returned as-is, [ok] or not.
    @raise Unix.Unix_error when the daemon is not listening. *)

val submit :
  socket:string -> Protocol.job_spec -> int * Telemetry.Jsonw.t
(** Submit and return [(job id, full response)].
    @raise Server_error on a refusal. *)

val status : socket:string -> ?since:int -> int -> Telemetry.Jsonw.t

val cancel : socket:string -> int -> Telemetry.Jsonw.t

val stats : socket:string -> unit -> Telemetry.Jsonw.t

val ping : socket:string -> unit -> Telemetry.Jsonw.t

val shutdown : socket:string -> unit -> Telemetry.Jsonw.t

val job_state : Telemetry.Jsonw.t -> string
(** The ["state"] field of a submit/status/cancel response. *)

val terminal : string -> bool
(** Whether a state string is final: done, cancelled, or failed. *)

val wait :
  socket:string -> ?poll_interval:float -> ?deadline:float -> int ->
  Telemetry.Jsonw.t
(** Poll {!status} every [poll_interval] seconds (default 20ms) until
    the job reaches a terminal state; returns the final status.
    @raise Server_error if [deadline] seconds pass first. *)
