(** Thin charon-serve client: one connection per request, line-framed
    JSON both ways, over a Unix socket or TCP.  Used by the CLI client
    binaries and the server lifecycle tests.

    TCP connections (and any connection carrying an API key) open with
    the versioned hello handshake before the request; bare Unix-socket
    requests keep the original single-transport wire format. *)

type addr = Unix_socket of string | Tcp of string * int

exception Server_error of string
(** An unstructured [{"ok": false}] response, a malformed response, or
    a poll deadline expiring. *)

exception Rejected of { code : string; retryable : bool; message : string }
(** A structured refusal from the daemon — [code] is machine-readable
    (["busy"], ["quota"], ["auth"], ["version"], ["oversized"],
    ["bad_request"], ["shutting_down"]) and [retryable] says whether
    backing off and resending can succeed. *)

val addr_to_string : addr -> string

val request : ?api_key:string -> addr:addr -> Protocol.request -> Telemetry.Jsonw.t
(** Lowest level: connect (handshaking first on TCP or when [api_key]
    is given), send, read one response, disconnect.  The response is
    returned as-is, [ok] or not.
    @raise Rejected when the handshake itself is refused.
    @raise Unix.Unix_error when the daemon is not listening. *)

val submit :
  ?api_key:string -> addr:addr -> Protocol.job_spec -> int * Telemetry.Jsonw.t
(** Submit and return [(job id, full response)].
    @raise Rejected on a structured refusal (queue full, quota, auth).
    @raise Server_error on an unstructured one. *)

val status : ?api_key:string -> addr:addr -> ?since:int -> int -> Telemetry.Jsonw.t

val cancel : ?api_key:string -> addr:addr -> int -> Telemetry.Jsonw.t

val stats : ?api_key:string -> addr:addr -> unit -> Telemetry.Jsonw.t

val ping : ?api_key:string -> addr:addr -> unit -> Telemetry.Jsonw.t

val shutdown : ?api_key:string -> addr:addr -> unit -> Telemetry.Jsonw.t

val job_state : Telemetry.Jsonw.t -> string
(** The ["state"] field of a submit/status/cancel response. *)

val terminal : string -> bool
(** Whether a state string is final: done, cancelled, or failed. *)

val wait :
  ?api_key:string -> addr:addr -> ?poll_interval:float -> ?deadline:float ->
  int -> Telemetry.Jsonw.t
(** Poll {!status} every [poll_interval] seconds (default 20ms) until
    the job reaches a terminal state; returns the final status.
    @raise Server_error if [deadline] seconds pass first. *)
