(* The charon-serve daemon: a Unix-domain socket and/or a TCP listener
   in front of the Scheduler.

   The accept loop is deliberately single-threaded: every request is a
   metadata operation (enqueue, table lookup, counter snapshot) that
   completes in microseconds, while the heavy lifting happens on the
   scheduler's pool domains.  Clients therefore never wait on each
   other's verifications, only on each other's JSON parsing — and the
   listen backlog absorbs bursts.  What a single-threaded loop must
   defend is its own liveness against a slow or hostile peer, so every
   accepted connection gets a receive/send timeout (a stalled client
   costs at most [io_timeout] seconds, never a wedge) and a line-length
   bound (newline-free garbage costs at most [max_line] bytes).

   Transports and trust: the Unix socket is the *trusted* local
   endpoint — filesystem permissions are the credential, requests are
   anonymous, and the first line of a connection is the request itself.
   TCP reaches beyond the machine, so when tenants are configured a TCP
   connection must open with a [hello] carrying the protocol version
   and an API key (Protocol.Serve); the daemon answers [hello_ok] or a
   terminal code="version"/"auth" reject before reading any request.
   A hello is also accepted (never required) on the Unix socket, so a
   client that always greets works on both transports.

   Lifecycle: [serve] blocks until a shutdown request arrives, then
   drains the scheduler (cancelling all pending work), closes and
   unlinks the sockets, and returns.  [start]/[stop] wrap the same loop
   in a spawned domain for in-process embedding (tests, notably). *)

module J = Telemetry.Jsonw

let c_connections = Telemetry.Metrics.counter "serve.connections"

let c_conn_errors = Telemetry.Metrics.counter "serve.connection_errors"

let c_bad_requests = Telemetry.Metrics.counter "serve.bad_requests"

let c_auth_failures = Telemetry.Metrics.counter "serve.auth_failures"

let io_timeout = 10.0  (* seconds a connection may stall before we drop it *)

let default_max_line = 8 * 1024 * 1024  (* bytes; a dim-1000 network fits *)

let dispatch sched ~tenant json =
  match Protocol.of_json json with
  | Protocol.Submit spec -> (Scheduler.submit ~tenant sched spec, `Continue)
  | Protocol.Status { id; since } ->
      (Scheduler.status sched ~id ~since, `Continue)
  | Protocol.Cancel id -> (Scheduler.cancel sched id, `Continue)
  | Protocol.Stats -> (Scheduler.stats sched, `Continue)
  | Protocol.Ping ->
      ( Protocol.ok
          [
            ("pong", J.Bool true);
            ("workers", J.Int (Scheduler.workers sched));
          ],
        `Continue )
  | Protocol.Shutdown -> (Protocol.ok [ ("stopping", J.Bool true) ], `Stop)
  | exception Protocol.Bad_request msg ->
      Telemetry.Metrics.incr c_bad_requests;
      (Protocol.reject ~code:"bad_request" ~retryable:false msg, `Continue)

(* The peer may be gone by the time we answer; a failed response write
   must cost the connection, never the accept loop. *)
let try_send oc json =
  try Protocol.send oc json
  with Sys_error _ | Unix.Unix_error _ -> Telemetry.Metrics.incr c_conn_errors

(* Who is this connection?  [Ok tenant] to proceed, [Error msg] for an
   auth reject.  Keys always win when presented (even locally — it lets
   a tenant exercise its quota through the Unix socket); the trusted
   transport falls back to the anonymous principal, untrusted TCP only
   does so when no tenants are configured (an open instance). *)
let authenticate ~tenants ~trusted = function
  | Some key -> (
      match Tenant.find_key tenants key with
      | Some tn -> Ok tn
      | None -> Error "unknown API key")
  | None ->
      if trusted || not (Tenant.configured tenants) then Ok Tenant.anonymous
      else Error "an API key is required on this transport"

(* One request/response exchange on an accepted connection.  Client
   misbehaviour (malformed JSON, oversized or torn lines, early hangup,
   a stall tripping the socket timeout) must never take the accept
   loop down, so the whole exchange runs under one handler that turns
   protocol faults into structured rejects and transport faults into
   counted drops. *)
let handle_connection sched ~tenants ~trusted ~max_line fd =
  Telemetry.Metrics.incr c_connections;
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO io_timeout;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO io_timeout
   with Unix.Unix_error _ -> ());
  (* Each channel must own its *own* descriptor.  Two channels over one
     fd close it twice, and in a multi-domain process the second
     close(2) lands on a number the kernel may already have reused for
     somebody else's live connection — observed as phantom resets under
     the soak test.  [dup] gives the reader a private descriptor; if it
     fails (fd exhaustion) the connection is dropped, never the loop. *)
  match Unix.dup fd with
  | exception Unix.Unix_error _ ->
      Telemetry.Metrics.incr c_conn_errors;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      `Continue
  | rfd ->
  let ic = Unix.in_channel_of_descr rfd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () ->
      (* Output first: it flushes, then closes [fd]; the input close
         releases [rfd]. *)
      close_out_noerr oc;
      close_in_noerr ic)
    (fun () ->
      let recv () = Protocol.recv ~max_len:max_line ic in
      let answer ~tenant json =
        let response, verdict = dispatch sched ~tenant json in
        try_send oc response;
        verdict
      in
      try
        match recv () with
        | None -> `Continue
        | Some first when Protocol.Serve.is_hello first -> (
            let hello = Protocol.Serve.hello_of_json first in
            if hello.Protocol.Serve.version <> Protocol.Serve.version then begin
              Telemetry.Metrics.incr c_bad_requests;
              try_send oc
                (Protocol.reject ~code:"version" ~retryable:false
                   (Printf.sprintf
                      "protocol version %d not supported (this daemon \
                       speaks %d)"
                      hello.Protocol.Serve.version Protocol.Serve.version));
              `Continue
            end
            else
              match
                authenticate ~tenants ~trusted hello.Protocol.Serve.api_key
              with
              | Error msg ->
                  Telemetry.Metrics.incr c_auth_failures;
                  try_send oc (Protocol.reject ~code:"auth" ~retryable:false msg);
                  `Continue
              | Ok tenant -> (
                  try_send oc
                    (Protocol.Serve.hello_ok ~tenant:tenant.Tenant.name);
                  match recv () with
                  | None -> `Continue
                  | Some json -> answer ~tenant json))
        | Some first ->
            if (not trusted) && Tenant.configured tenants then begin
              Telemetry.Metrics.incr c_auth_failures;
              try_send oc
                (Protocol.reject ~code:"auth" ~retryable:false
                   "TCP connections must open with a hello carrying an API \
                    key");
              `Continue
            end
            else answer ~tenant:Tenant.anonymous first
      with
      | J.Parse_error msg ->
          Telemetry.Metrics.incr c_bad_requests;
          try_send oc
            (Protocol.reject ~code:"bad_request" ~retryable:false
               ("malformed request: " ^ msg));
          `Continue
      | Protocol.Bad_request msg ->
          Telemetry.Metrics.incr c_bad_requests;
          try_send oc (Protocol.reject ~code:"bad_request" ~retryable:false msg);
          `Continue
      | Protocol.Oversized_line n ->
          Telemetry.Metrics.incr c_bad_requests;
          try_send oc
            (Protocol.reject ~code:"oversized" ~retryable:false
               (Printf.sprintf "line exceeded %d bytes (%d read)" max_line n));
          `Continue
      | Protocol.Torn_line _ ->
          (* The client hung up mid-request; there is nobody left to
             answer, so just count it. *)
          Telemetry.Metrics.incr c_conn_errors;
          `Continue
      | Unix.Unix_error _ | Sys_error _ | End_of_file ->
          (* Includes the receive timeout on a stalled peer. *)
          Telemetry.Metrics.incr c_conn_errors;
          `Continue
      | e ->
          (* Last line of defence for the single-threaded loop: a bug
             anywhere under dispatch must cost this one request a
             structured reject, never the daemon.  The exception text
             goes to the client — the operator debugging it is on
             localhost or holds an API key already.  Genuinely fatal
             conditions still propagate: a daemon that is out of memory
             must die loudly, not keep answering rejects. *)
          (match e with
          | Out_of_memory | Stack_overflow -> raise e
          | _ -> ());
          Telemetry.Metrics.incr c_conn_errors;
          try_send oc
            (Protocol.reject ~code:"internal" ~retryable:true
               ("internal error: " ^ Printexc.to_string e));
          `Continue)

let bind_socket path =
  (* A stale socket file from a crashed daemon would make bind fail;
     removing it is safe because binds race only with another live
     daemon on the same path, which is operator error either way. *)
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64
  with
  | () -> fd
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let bind_tcp ~host ~port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
      | _ -> failwith (Printf.sprintf "cannot resolve bind host %S" host))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd 64
  with
  | () ->
      (* Port 0 asks the kernel for an ephemeral port (tests);
         getsockname reports what was actually bound. *)
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | Unix.ADDR_UNIX _ -> port
      in
      (fd, bound)
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

type listener = { lfd : Unix.file_descr; trusted : bool }

(* [stop_flag] is the out-of-band kill switch for embedded daemons:
   {!stop} may be unable to authenticate a wire shutdown (a TCP-only
   daemon under tenancy rejects its own anonymous stop request), so it
   raises the flag instead and lets that very connection wake the
   select — the loop rechecks the flag after every wakeup. *)
let accept_loop sched ~tenants ~max_line ~stop_flag listeners =
  let fds = List.map (fun l -> l.lfd) listeners in
  let rec loop () =
    if Atomic.get stop_flag then ()
    else
      match Unix.select fds [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | ready, _, _ ->
          let stop =
            List.exists
              (fun fd ->
                let l = List.find (fun l -> l.lfd == fd) listeners in
                match Unix.accept fd with
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
                | client, _ -> (
                    match
                      handle_connection sched ~tenants ~trusted:l.trusted
                        ~max_line client
                    with
                    | `Continue -> false
                    | `Stop -> true))
              ready
          in
          if stop || Atomic.get stop_flag then () else loop ()
  in
  loop ()

let run_until_shutdown ?socket ?(stop_flag = Atomic.make false) sched ~tenants
    ~max_line listeners =
  (* A client that disconnects mid-write must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Fun.protect
    ~finally:(fun () ->
      Scheduler.shutdown sched;
      List.iter
        (fun l -> try Unix.close l.lfd with Unix.Unix_error _ -> ())
        listeners;
      match socket with
      | Some path when Sys.file_exists path -> Sys.remove path
      | Some _ | None -> ())
    (fun () -> accept_loop sched ~tenants ~max_line ~stop_flag listeners)

let make_scheduler ?(workers = 4) ?(cache_capacity = 256) ?proofcache_capacity
    ?proofcache_persist ?store_path ?queue_capacity ~tenants () =
  Scheduler.create ~workers ~cache_capacity ?proofcache_capacity
    ?proofcache_persist ?store_path ?queue_capacity ~tenants ()

let make_listeners ?socket ?tcp () =
  let unix_l =
    Option.map (fun path -> { lfd = bind_socket path; trusted = true }) socket
  in
  let tcp_l, bound_port =
    match tcp with
    | None -> (None, None)
    | Some (host, port) ->
        let fd, bound = bind_tcp ~host ~port in
        (Some { lfd = fd; trusted = false }, Some bound)
  in
  match List.filter_map Fun.id [ unix_l; tcp_l ] with
  | [] -> invalid_arg "Daemon: need a Unix socket path or a TCP endpoint"
  | listeners -> (listeners, bound_port)

let serve ?socket ?tcp ?workers ?cache_capacity ?proofcache_capacity
    ?proofcache_persist ?store_path ?queue_capacity
    ?(tenants = Tenant.empty) ?(max_line = default_max_line) () =
  (* The daemon's whole point is serving live counters (cache hit
     rate, queue depth) back to clients, so metrics are always on. *)
  if not (Telemetry.enabled ()) then Telemetry.enable ();
  let listeners, _ = make_listeners ?socket ?tcp () in
  let sched =
    make_scheduler ?workers ?cache_capacity ?proofcache_capacity
      ?proofcache_persist ?store_path ?queue_capacity ~tenants ()
  in
  run_until_shutdown ?socket sched ~tenants ~max_line listeners

type handle = {
  socket : string option;
  port : int option;
  stop_flag : bool Atomic.t;
  loop : unit Domain.t;
}
[@@race.atomic]

let start ?socket ?tcp ?workers ?cache_capacity ?proofcache_capacity
    ?proofcache_persist ?store_path ?queue_capacity
    ?(tenants = Tenant.empty) ?(max_line = default_max_line) () =
  if not (Telemetry.enabled ()) then Telemetry.enable ();
  (* Bind synchronously so a client may connect the moment [start]
     returns; only the accept loop moves to the spawned domain. *)
  let listeners, port = make_listeners ?socket ?tcp () in
  let sched =
    make_scheduler ?workers ?cache_capacity ?proofcache_capacity
      ?proofcache_persist ?store_path ?queue_capacity ~tenants ()
  in
  let stop_flag = Atomic.make false in
  {
    socket;
    port;
    stop_flag;
    loop =
      Domain.spawn (fun () ->
          run_until_shutdown ?socket ~stop_flag sched ~tenants ~max_line
            listeners);
  }

let stop handle =
  let addr =
    match (handle.socket, handle.port) with
    | Some path, _ -> Client.Unix_socket path
    | None, Some port -> Client.Tcp ("127.0.0.1", port)
    | None, None -> assert false  (* make_listeners refused this *)
  in
  (* Raise the flag first: even when the wire shutdown below is refused
     (a TCP-only daemon under tenancy rejects the anonymous request),
     the rejected connection wakes the select and the loop sees the
     flag. *)
  Atomic.set handle.stop_flag true;
  (try ignore (Client.shutdown ~addr ())
   with
  | Unix.Unix_error _ | Sys_error _ | Client.Server_error _
  | Client.Rejected _ ->
      (* Already stopping or stopped; joining below is still correct
         because the loop domain exits on its own shutdown path. *)
      ());
  Domain.join handle.loop

let socket_path handle = handle.socket

let tcp_port handle = handle.port
