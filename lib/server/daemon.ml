(* The charon-serve daemon: a Unix-domain stream socket in front of
   the Scheduler.

   The accept loop is deliberately single-threaded: every request is a
   metadata operation (enqueue, table lookup, counter snapshot) that
   completes in microseconds, while the heavy lifting happens on the
   scheduler's pool domains.  Clients therefore never wait on each
   other's verifications, only on each other's JSON parsing — and the
   listen backlog absorbs bursts.

   Lifecycle: [serve] blocks until a shutdown request arrives, then
   drains the scheduler (cancelling all pending work), closes and
   unlinks the socket, and returns.  [start]/[stop] wrap the same loop
   in a spawned domain for in-process embedding (tests, notably). *)

module J = Telemetry.Jsonw

let c_connections = Telemetry.Metrics.counter "serve.connections"

let c_conn_errors = Telemetry.Metrics.counter "serve.connection_errors"

let c_bad_requests = Telemetry.Metrics.counter "serve.bad_requests"

let dispatch sched json =
  match Protocol.of_json json with
  | Protocol.Submit spec -> (Scheduler.submit sched spec, `Continue)
  | Protocol.Status { id; since } -> (Scheduler.status sched ~id ~since, `Continue)
  | Protocol.Cancel id -> (Scheduler.cancel sched id, `Continue)
  | Protocol.Stats -> (Scheduler.stats sched, `Continue)
  | Protocol.Ping ->
      (Protocol.ok [ ("pong", J.Bool true); ("workers", J.Int (Scheduler.workers sched)) ],
       `Continue)
  | Protocol.Shutdown -> (Protocol.ok [ ("stopping", J.Bool true) ], `Stop)
  | exception Protocol.Bad_request msg ->
      Telemetry.Metrics.incr c_bad_requests;
      (Protocol.error msg, `Continue)

(* One request/response exchange on an accepted connection.  Client
   misbehaviour (malformed JSON, early hangup) must never take the
   accept loop down, so everything network-ish is caught here. *)
let handle_connection sched fd =
  Telemetry.Metrics.incr c_connections;
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () ->
      (* The channels share [fd]: closing the output side flushes and
         closes the descriptor, the input close just drops its buffer. *)
      close_out_noerr oc;
      close_in_noerr ic)
    (fun () ->
      match Protocol.recv ic with
      | None -> `Continue
      | Some json ->
          let response, verdict = dispatch sched json in
          Protocol.send oc response;
          verdict
      | exception J.Parse_error msg ->
          Telemetry.Metrics.incr c_bad_requests;
          Protocol.send oc (Protocol.error ("malformed request: " ^ msg));
          `Continue
      | exception Protocol.Torn_line _ ->
          (* The client hung up mid-request; there is nobody left to
             answer, so just count it. *)
          Telemetry.Metrics.incr c_conn_errors;
          `Continue
      | exception (Unix.Unix_error _ | Sys_error _ | End_of_file) ->
          Telemetry.Metrics.incr c_conn_errors;
          `Continue)

let bind_socket path =
  (* A stale socket file from a crashed daemon would make bind fail;
     removing it is safe because binds race only with another live
     daemon on the same path, which is operator error either way. *)
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64
  with
  | () -> fd
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let accept_loop sched listen_fd =
  let rec loop () =
    match Unix.accept listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | client, _ -> (
        match handle_connection sched client with
        | `Continue -> loop ()
        | `Stop -> ())
  in
  loop ()

let run_until_shutdown ~socket sched listen_fd =
  (* A client that disconnects mid-write must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Fun.protect
    ~finally:(fun () ->
      Scheduler.shutdown sched;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      if Sys.file_exists socket then Sys.remove socket)
    (fun () -> accept_loop sched listen_fd)

let serve ~socket ?(workers = 4) ?(cache_capacity = 256)
    ?proofcache_capacity ?proofcache_persist () =
  (* The daemon's whole point is serving live counters (cache hit
     rate, queue depth) back to clients, so metrics are always on. *)
  if not (Telemetry.enabled ()) then Telemetry.enable ();
  let listen_fd = bind_socket socket in
  let sched =
    Scheduler.create ~workers ~cache_capacity ?proofcache_capacity
      ?proofcache_persist ()
  in
  run_until_shutdown ~socket sched listen_fd

type handle = { socket : string; loop : unit Domain.t }

let start ~socket ?(workers = 4) ?(cache_capacity = 256)
    ?proofcache_capacity ?proofcache_persist () =
  if not (Telemetry.enabled ()) then Telemetry.enable ();
  (* Bind synchronously so a client may connect the moment [start]
     returns; only the accept loop moves to the spawned domain. *)
  let listen_fd = bind_socket socket in
  let sched =
    Scheduler.create ~workers ~cache_capacity ?proofcache_capacity
      ?proofcache_persist ()
  in
  {
    socket;
    loop = Domain.spawn (fun () -> run_until_shutdown ~socket sched listen_fd);
  }

let stop handle =
  (try ignore (Client.shutdown ~socket:handle.socket ())
   with
  | Unix.Unix_error _ | Sys_error _ | Client.Server_error _ ->
      (* Already stopping or stopped; joining below is still correct
         because the loop domain exits on its own shutdown path. *)
      ());
  Domain.join handle.loop

let socket_path handle = handle.socket
