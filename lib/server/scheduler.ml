(* The charon-serve job scheduler.

   Jobs are queued onto a blocking FIFO ([Jobq]) and drained by a
   fixed pool of OCaml domains ([Parallel.Pool.run] inside one spawned
   supervisor domain, so [create] returns immediately).  Each job runs
   the ordinary [Charon.Verify.run] entry point with a per-job
   [Common.Budget] (wall-clock and/or step bound), a per-job
   [Parallel.Cancel] token polled once per region, and an
   [on_progress] hook that mirrors the node count and peak depth into
   atomics a status poll can read without touching the worker.

   The verdict cache short-circuits the whole pipeline: a submit whose
   structural key hits answers synchronously, and a job that completes
   with a *solved* verdict (Verified/Refuted — the budget-independent
   ones) populates the cache for its successors.

   Discipline: the job table and every job's mutable fields are only
   touched with [mutex] held; per-job progress and the scheduler-wide
   tallies are atomics so polls never contend with workers. *)

module J = Telemetry.Jsonw

type state =
  | Queued
  | Running
  | Done of Common.Outcome.t
  | Cancelled
  | Failed of string

type event = { seq : int; at : float; label : string }

type job = {
  id : int;
  spec : Protocol.job_spec;
  key : string;
  cancel : Parallel.Cancel.t;
  mutable state : state;
  mutable events : event list;  (* newest first *)
  mutable next_seq : int;
  submitted : float;
  mutable wall : float;  (* verification wall seconds, set on completion *)
  mutable from_cache : bool;
  mutable cold_wall : float;  (* cache hits: the original run's wall *)
  progress_nodes : int Atomic.t;
  progress_depth : int Atomic.t;
}
[@@race.guarded_by "mutex"]

type t = {
  mutex : Mutex.t;
  jobs : (int, job) Hashtbl.t;
  queue : job Jobq.t;
  cache : Cache.t;
  proofcache : Charon.Proofcache.t;
  workers : int;
  mutable next_id : int;
  mutable pool : unit Domain.t option;
  started_at : float;
  in_flight : int Atomic.t;
  peak_in_flight : int Atomic.t;
  n_submitted : int Atomic.t;
  n_completed : int Atomic.t;
  n_cancelled : int Atomic.t;
  n_failed : int Atomic.t;
}
[@@race.guarded_by "mutex"]

let c_submitted = Telemetry.Metrics.counter "serve.jobs.submitted"

let c_completed = Telemetry.Metrics.counter "serve.jobs.completed"

let c_cancelled = Telemetry.Metrics.counter "serve.jobs.cancelled"

let c_failed = Telemetry.Metrics.counter "serve.jobs.failed"

let h_job_wall = Telemetry.Metrics.histogram "serve.job.wall"

(* Find-or-create handles on the kernel counters registered by
   [Linalg.Mat] (the registry is name-keyed and idempotent), surfaced
   in the stats block. *)
let c_gemm_parallel = Telemetry.Metrics.counter "kernel.gemm.parallel_calls"

let c_gemm_fallback =
  Telemetry.Metrics.counter "kernel.gemm.sequential_fallbacks"

let now () = Unix.gettimeofday ()

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let emit job label =
  job.events <- { seq = job.next_seq; at = now () -. job.submitted; label }
                 :: job.events;
  job.next_seq <- job.next_seq + 1
[@@race.locked "mutex"]

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

(* [in_flight] counts jobs a worker has *claimed* and is running — not
   queued ones, which have their own gauge — so it can never exceed the
   pool width and [peak_in_flight] measures realised concurrency.
   [enter_flight] runs at the claim in [run_job]; the matching
   [leave_flight] runs at finalize (a claimed job always reaches it,
   including on crash and cancel-while-running). *)
let enter_flight t =
  let n = 1 + Atomic.fetch_and_add t.in_flight 1 in
  atomic_max t.peak_in_flight n

let leave_flight t = ignore (Atomic.fetch_and_add t.in_flight (-1))

(* ------------------------------------------------------------------ *)
(* Job execution (pool workers) *)

let finalize t job ~wall outcome =
  with_lock t (fun () ->
      match job.state with
      | Running ->
          job.wall <- wall;
          (match outcome with
          | Ok _ when Parallel.Cancel.cancelled job.cancel ->
              job.state <- Cancelled;
              emit job "cancelled";
              Atomic.incr t.n_cancelled;
              Telemetry.Metrics.incr c_cancelled
          | Ok o ->
              job.state <- Done o;
              emit job (Common.Outcome.label o);
              Atomic.incr t.n_completed;
              Telemetry.Metrics.incr c_completed;
              if Common.Outcome.is_solved o then
                Cache.put t.cache job.key o ~cold_wall:wall
          | Error msg ->
              job.state <- Failed msg;
              emit job "failed";
              Atomic.incr t.n_failed;
              Telemetry.Metrics.incr c_failed);
          leave_flight t
      | Queued | Done _ | Cancelled | Failed _ ->
          (* Cancelled between our last state read and now; the
             cancelling side already counted and unflighted it. *)
          ())

let run_job t job =
  let claimed =
    with_lock t (fun () ->
        match job.state with
        | Queued ->
            job.state <- Running;
            emit job "running";
            enter_flight t;
            true
        | Running | Done _ | Cancelled | Failed _ -> false)
  in
  if claimed then begin
    let sp = Telemetry.Span.enter "serve.job" in
    let wall = ref 0.0 in
    let result =
      match Nn.Serial.of_string job.spec.Protocol.network with
      | exception Failure msg -> Error ("bad network: " ^ msg)
      | net -> (
          let spec = job.spec in
          let prop =
            Common.Property.create ~name:spec.Protocol.name
              ~region:spec.Protocol.box ~target:spec.Protocol.target ()
          in
          let config =
            {
              Charon.Verify.default_config with
              Charon.Verify.delta = spec.Protocol.delta;
            }
          in
          let budget =
            Common.Budget.create ?seconds:spec.Protocol.timeout
              ?steps:spec.Protocol.max_steps ()
          in
          let started = now () in
          match
            Charon.Verify.run ~config ~budget ~cancel:job.cancel
              ~on_progress:(fun ~nodes ~depth ->
                Atomic.set job.progress_nodes nodes;
                atomic_max job.progress_depth depth)
              ~proofcache:t.proofcache
              ~rng:(Linalg.Rng.create spec.Protocol.seed)
              ~policy:Charon.Policy.default net prop
          with
          | report ->
              wall := now () -. started;
              Ok report.Charon.Verify.outcome
          | exception Invalid_argument msg ->
              Error ("invalid job: " ^ msg)
          | exception Failure msg -> Error msg)
    in
    finalize t job ~wall:!wall result;
    Telemetry.Metrics.observe h_job_wall (int_of_float (!wall *. 1e9));
    let final_state =
      with_lock t (fun () ->
          match job.state with
          | Done o -> Common.Outcome.label o
          | Cancelled -> "cancelled"
          | Failed _ -> "failed"
          | Queued | Running -> "running")
    in
    Telemetry.Span.exit sp
      ~attrs:(fun () ->
        [ ("job", J.Int job.id); ("state", J.Str final_state) ])
  end

let worker t _i =
  let rec loop () =
    match Jobq.pop t.queue with
    | None -> ()
    | Some job ->
        (try run_job t job
         with e ->
           (* A crashed job must not take the worker domain (and with
              it the whole pool) down; record and move on. *)
           finalize t job ~wall:0.0 (Error (Printexc.to_string e)))
        [@lint.allow "catch-all-exn"];
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Public API (daemon accept loop) *)

let create ?(workers = 4) ?(cache_capacity = 256)
    ?(proofcache_capacity = 65536) ?proofcache_persist () =
  if workers < 1 then invalid_arg "Scheduler.create: workers must be positive";
  let t =
    {
      mutex = Mutex.create ();
      jobs = Hashtbl.create 64;
      queue = Jobq.create ();
      cache = Cache.create ~capacity:cache_capacity ();
      (* One proof cache for the whole scheduler: every job threads it
         through Verify.run, so subregions proved for one tenant's
         query serve every later overlapping query on the same
         network. *)
      proofcache =
        Charon.Proofcache.create ~capacity:proofcache_capacity
          ?persist:proofcache_persist ();
      workers;
      next_id = 0;
      pool = None;
      started_at = now ();
      in_flight = Atomic.make 0;
      peak_in_flight = Atomic.make 0;
      n_submitted = Atomic.make 0;
      n_completed = Atomic.make 0;
      n_cancelled = Atomic.make 0;
      n_failed = Atomic.make 0;
    }
  in
  with_lock t (fun () ->
      t.pool <-
        Some
          (Domain.spawn (fun () ->
               Parallel.Pool.run ~workers (fun i -> worker t i))));
  t

let state_label = function
  | Queued -> "queued"
  | Running -> "running"
  | Done _ -> "done"
  | Cancelled -> "cancelled"
  | Failed _ -> "failed"

let job_json job ~since =
  let events =
    List.rev_append
      (List.filter_map
         (fun e ->
           if e.seq < since then None
           else
             Some
               (J.Obj
                  [
                    ("seq", J.Int e.seq);
                    ("t", J.Float e.at);
                    ("label", J.Str e.label);
                  ]))
         job.events)
      []
  in
  let base =
    [
      ("id", J.Int job.id);
      ("name", J.Str job.spec.Protocol.name);
      ("state", J.Str (state_label job.state));
      ("next_seq", J.Int job.next_seq);
      ( "progress",
        J.Obj
          [
            ("nodes", J.Int (Atomic.get job.progress_nodes));
            ("peak_depth", J.Int (Atomic.get job.progress_depth));
          ] );
      ( "cache",
        J.Obj
          (("hit", J.Bool job.from_cache)
          ::
          (if job.from_cache then
             [ ("cold_wall_seconds", J.Float job.cold_wall) ]
           else [])) );
      ("events", J.Arr events);
    ]
  in
  let base =
    match job.state with
    | Done o ->
        base
        @ [
            ("verdict", Protocol.outcome_to_json o);
            ("wall_seconds", J.Float job.wall);
          ]
    | Failed msg -> base @ [ ("error", J.Str msg) ]
    | Queued | Running | Cancelled -> base
  in
  Protocol.ok base
[@@race.locked "mutex"]

let submit t (spec : Protocol.job_spec) =
  let key =
    Cache.key ~network:spec.Protocol.network ~box:spec.Protocol.box
      ~target:spec.Protocol.target ~delta:spec.Protocol.delta
  in
  Atomic.incr t.n_submitted;
  Telemetry.Metrics.incr c_submitted;
  with_lock t (fun () ->
      let id = t.next_id in
      t.next_id <- t.next_id + 1;
      let job =
        {
          id;
          spec;
          key;
          cancel = Parallel.Cancel.create ();
          state = Queued;
          events = [];
          next_seq = 0;
          submitted = now ();
          wall = 0.0;
          from_cache = false;
          cold_wall = 0.0;
          progress_nodes = Atomic.make 0;
          progress_depth = Atomic.make 0;
        }
      in
      Hashtbl.replace t.jobs id job;
      emit job "queued";
      match Cache.get t.cache key with
      | Some (outcome, cold_wall) ->
          job.from_cache <- true;
          job.cold_wall <- cold_wall;
          job.state <- Done outcome;
          emit job "cache_hit";
          emit job (Common.Outcome.label outcome);
          Atomic.incr t.n_completed;
          Telemetry.Metrics.incr c_completed;
          job_json job ~since:0
      | None ->
          (* Not in flight yet: the job only counts toward [in_flight]
             once a pool worker claims it in [run_job]. *)
          if Jobq.push t.queue job then job_json job ~since:0
          else begin
            (* Shut down between accept and here. *)
            job.state <- Cancelled;
            emit job "cancelled";
            Atomic.incr t.n_cancelled;
            Protocol.error "server is shutting down"
          end)

let status t ~id ~since =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.jobs id with
      | Some job -> job_json job ~since
      | None -> Protocol.error (Printf.sprintf "no such job %d" id))

let cancel t id =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.jobs id with
      | None -> Protocol.error (Printf.sprintf "no such job %d" id)
      | Some job -> (
          match job.state with
          | Queued ->
              (* Never started (so never in flight): settle it here;
                 the worker that later pops it sees a non-queued state
                 and skips. *)
              Parallel.Cancel.cancel job.cancel;
              job.state <- Cancelled;
              emit job "cancelled";
              Atomic.incr t.n_cancelled;
              Telemetry.Metrics.incr c_cancelled;
              job_json job ~since:0
          | Running ->
              (* Cooperative: the verifier polls the token once per
                 region and its worker finalizes the job. *)
              Parallel.Cancel.cancel job.cancel;
              emit job "cancel_requested";
              job_json job ~since:0
          | Done _ | Cancelled | Failed _ -> job_json job ~since:0))

let stats t =
  let cache = Cache.stats t.cache in
  let lookups = cache.Cache.hits + cache.Cache.misses in
  let hit_rate =
    if lookups = 0 then 0.0
    else float_of_int cache.Cache.hits /. float_of_int lookups
  in
  let pstats = Charon.Proofcache.stats t.proofcache in
  let p_hit_rate =
    if pstats.Charon.Proofcache.lookups = 0 then 0.0
    else
      float_of_int pstats.Charon.Proofcache.hits
      /. float_of_int pstats.Charon.Proofcache.lookups
  in
  let states = Hashtbl.create 8 in
  with_lock t (fun () ->
      Hashtbl.iter
        (fun _ job ->
          let l = state_label job.state in
          Hashtbl.replace states l
            (1 + Option.value ~default:0 (Hashtbl.find_opt states l)))
        t.jobs);
  let queued = Option.value ~default:0 (Hashtbl.find_opt states "queued") in
  Protocol.ok
    [
      ("workers", J.Int t.workers);
      ("uptime_seconds", J.Float (now () -. t.started_at));
      ("queue_depth", J.Int (Jobq.length t.queue));
      ("queued", J.Int queued);
      ("in_flight", J.Int (Atomic.get t.in_flight));
      ("peak_in_flight", J.Int (Atomic.get t.peak_in_flight));
      ( "jobs",
        J.Obj
          (("submitted", J.Int (Atomic.get t.n_submitted))
          :: ("completed", J.Int (Atomic.get t.n_completed))
          :: ("cancelled", J.Int (Atomic.get t.n_cancelled))
          :: ("failed", J.Int (Atomic.get t.n_failed))
          :: (Hashtbl.fold
                (fun l n acc -> (l, J.Int n) :: acc)
                states []
             |> List.sort (fun (a, _) (b, _) -> String.compare a b))) );
      ( "cache",
        J.Obj
          [
            ("size", J.Int cache.Cache.size);
            ("capacity", J.Int cache.Cache.capacity);
            ("hits", J.Int cache.Cache.hits);
            ("misses", J.Int cache.Cache.misses);
            ("evictions", J.Int cache.Cache.evictions);
            ("hit_rate", J.Float hit_rate);
          ] );
      ( "proofcache",
        J.Obj
          [
            ("entries", J.Int pstats.Charon.Proofcache.entries);
            ("capacity", J.Int pstats.Charon.Proofcache.capacity);
            ("lookups", J.Int pstats.Charon.Proofcache.lookups);
            ("hits", J.Int pstats.Charon.Proofcache.hits);
            ("evictions", J.Int pstats.Charon.Proofcache.evictions);
            ("hit_rate", J.Float p_hit_rate);
          ] );
      (* Kernel-parallelism health: fan-out vs fallback rate of the
         pooled GEMM, and the scratch arena's footprint.  The high-water
         mark is read from the arena directly so it is live even when
         telemetry counters are disabled. *)
      ( "kernel",
        J.Obj
          [
            ( "gemm_parallel_calls",
              J.Int (Telemetry.Metrics.value c_gemm_parallel) );
            ( "gemm_sequential_fallbacks",
              J.Int (Telemetry.Metrics.value c_gemm_fallback) );
            ( "scratch_highwater_words",
              J.Int (Linalg.Scratch.highwater_words ()) );
            ("pool_helpers", J.Int (Parallel.Kpool.helpers ()));
            ( "pool_peak_domains",
              J.Int (Parallel.Kpool.peak_participants ()) );
          ] );
      ( "counters",
        J.Obj
          (List.map (fun (k, v) -> (k, J.Int v)) (Telemetry.Metrics.counters ()))
      );
    ]

let shutdown t =
  let pool =
    with_lock t (fun () ->
        (* Reject new work, settle everything still pending, and ask
           running jobs to stop at their next region poll. *)
        Jobq.close t.queue;
        Hashtbl.iter
          (fun _ job ->
            match job.state with
            | Queued ->
                Parallel.Cancel.cancel job.cancel;
                job.state <- Cancelled;
                emit job "cancelled";
                Atomic.incr t.n_cancelled;
                Telemetry.Metrics.incr c_cancelled
            | Running -> Parallel.Cancel.cancel job.cancel
            | Done _ | Cancelled | Failed _ -> ())
          t.jobs;
        let pool = t.pool in
        t.pool <- None;
        pool)
  in
  (* Workers drain their current (now cancelled) jobs and exit on the
     closed queue; joining here is what guarantees no orphaned domains
     outlive the scheduler. *)
  Option.iter Domain.join pool;
  (* Safe only after the join: no worker can record further facts. *)
  Charon.Proofcache.close t.proofcache

let workers t = t.workers

let proofcache t = t.proofcache
