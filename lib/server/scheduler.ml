(* The charon-serve job scheduler.

   Two layers of bookkeeping since the daemon went multi-tenant:

   - A *job* is what a client sees: an id, a state machine
     (queued -> running -> done/cancelled/failed), an event log, a
     verdict.  One per accepted submit.
   - A *run* is what a worker executes: one [Charon.Verify.run] over
     one verification question.  Distinct jobs asking the *same*
     question (same structural cache key) share one run — the first
     submit creates it, duplicates *coalesce* onto it as followers via
     the [Coalesce] index, and when the run settles every attached job
     receives the verdict.  Burst traffic full of duplicated hard
     queries pays for each question once, not once per client.

   Runs are queued onto the priority-aged fair-share [Jobq] (one lane
   per tenant, weighted, aging so nobody starves) and drained by a
   fixed pool of OCaml domains ([Parallel.Pool.run] inside one spawned
   supervisor domain, so [create] returns immediately).  The queue is
   capacity-bounded: at the bound, submits are refused with a
   retryable code="busy" reject rather than queued into an unbounded
   backlog.  Each tenant additionally has an optional outstanding-jobs
   quota checked at admission.

   Each run executes with a per-run [Common.Budget] (the leader's),
   a per-run [Parallel.Cancel] token polled once per region, and an
   [on_progress] hook that mirrors the node count and peak depth into
   atomics a status poll can read without touching the worker.

   The verdict cache short-circuits the whole pipeline: a submit whose
   structural key hits answers synchronously (from the LRU hot set or
   the persistent store behind it), and a run that completes with a
   *solved* verdict (Verified/Refuted — the budget-independent ones)
   populates both for its successors.

   Cancellation with coalescing: cancelling a follower must never kill
   another tenant's request, so a job cancelled while its run has
   other attachments just *detaches* and settles immediately — the run
   keeps going for the rest.  Only when the cancelled job is the sole
   attachment does the run itself get cancelled (cooperatively, if
   already claimed by a worker — the old single-tenant semantics).

   Discipline: the job table, run table, coalesce index and per-tenant
   counters are only touched with [mutex] held; per-run progress and
   the scheduler-wide tallies are atomics so polls never contend with
   workers. *)

module J = Telemetry.Jsonw

type state =
  | Queued
  | Running
  | Done of Common.Outcome.t
  | Cancelled
  | Failed of string

type event = { seq : int; at : float; label : string }

type job = {
  id : int;
  spec : Protocol.job_spec;
  key : string;
  tname : string;  (* owning tenant, for settle-time accounting *)
  mutable state : state;
  mutable events : event list;  (* newest first *)
  mutable next_seq : int;
  submitted : float;
  mutable wall : float;  (* verification wall seconds, set on completion *)
  mutable from_cache : bool;
  mutable coalesced : bool;  (* attached to an existing run as follower *)
  mutable cold_wall : float;  (* cache hits: the original run's wall *)
  mutable run : run option;  (* the execution unit answering this job *)
}
[@@race.guarded_by "mutex"]

and run = {
  rid : int;  (* = the leader job's id *)
  rspec : Protocol.job_spec;
  rkey : string;
  rcancel : Parallel.Cancel.t;
  mutable attached : int list;  (* job ids, oldest first *)
  mutable claimed : bool;  (* a pool worker is executing it *)
  mutable finalized : bool;
  r_nodes : int Atomic.t;
  r_depth : int Atomic.t;
}
[@@race.guarded_by "mutex"]

type t = {
  mutex : Mutex.t;
  jobs : (int, job) Hashtbl.t;
  runs : (int, run) Hashtbl.t;
  queue : run Jobq.t;
  coalesce : Coalesce.t;
  cache : Cache.t;
  store : Store.t option;
  proofcache : Charon.Proofcache.t;
  tenant_counters : (string, Tenant.counters) Hashtbl.t;
  mutable tenant_order : string list;  (* first-seen order, reversed *)
  workers : int;
  mutable next_id : int;
  mutable pool : unit Domain.t option;
  started_at : float;
  in_flight : int Atomic.t;
  peak_in_flight : int Atomic.t;
  n_submitted : int Atomic.t;
  n_completed : int Atomic.t;
  n_cancelled : int Atomic.t;
  n_failed : int Atomic.t;
  n_rejected : int Atomic.t;
}
[@@race.guarded_by "mutex"]

let c_submitted = Telemetry.Metrics.counter "serve.jobs.submitted"

let c_completed = Telemetry.Metrics.counter "serve.jobs.completed"

let c_cancelled = Telemetry.Metrics.counter "serve.jobs.cancelled"

let c_failed = Telemetry.Metrics.counter "serve.jobs.failed"

let c_rejected = Telemetry.Metrics.counter "serve.jobs.rejected"

let h_job_wall = Telemetry.Metrics.histogram "serve.job.wall"

(* Find-or-create handles on the kernel counters registered by
   [Linalg.Mat] (the registry is name-keyed and idempotent), surfaced
   in the stats block. *)
let c_gemm_parallel = Telemetry.Metrics.counter "kernel.gemm.parallel_calls"

let c_gemm_fallback =
  Telemetry.Metrics.counter "kernel.gemm.sequential_fallbacks"

let now () = Unix.gettimeofday ()

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let emit job label =
  job.events <- { seq = job.next_seq; at = now () -. job.submitted; label }
                 :: job.events;
  job.next_seq <- job.next_seq + 1
[@@race.locked "mutex"]

let tc t name =
  match Hashtbl.find_opt t.tenant_counters name with
  | Some c -> c
  | None ->
      (* Only reachable for [anonymous]: configured tenants are seeded
         in [create]/[register_tenants]. *)
      let c = Tenant.fresh_counters { Tenant.anonymous with name } in
      Hashtbl.replace t.tenant_counters name c;
      t.tenant_order <- name :: t.tenant_order;
      c
[@@race.locked "mutex"]

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

(* [in_flight] counts runs a worker has *claimed* and is running — not
   queued ones, which have their own gauge — so it can never exceed the
   pool width and [peak_in_flight] measures realised concurrency.
   [enter_flight] runs at the claim in [run_job]; the matching
   [leave_flight] runs at finalize (a claimed run always reaches it,
   including on crash and cancel-while-running). *)
let enter_flight t =
  let n = 1 + Atomic.fetch_and_add t.in_flight 1 in
  atomic_max t.peak_in_flight n

let leave_flight t = ignore (Atomic.fetch_and_add t.in_flight (-1))

(* ------------------------------------------------------------------ *)
(* Job settlement (mutex held) *)

let settle_cancelled t job =
  match job.state with
  | Queued | Running ->
      job.state <- Cancelled;
      emit job "cancelled";
      let c = tc t job.tname in
      c.Tenant.cancelled <- c.Tenant.cancelled + 1;
      c.Tenant.outstanding <- c.Tenant.outstanding - 1;
      Atomic.incr t.n_cancelled;
      Telemetry.Metrics.incr c_cancelled
  | Done _ | Cancelled | Failed _ -> ()
[@@race.locked "mutex"]

let settle_done t job outcome ~wall =
  match job.state with
  | Queued | Running ->
      job.state <- Done outcome;
      job.wall <- wall;
      emit job (Common.Outcome.label outcome);
      let c = tc t job.tname in
      c.Tenant.completed <- c.Tenant.completed + 1;
      c.Tenant.outstanding <- c.Tenant.outstanding - 1;
      Atomic.incr t.n_completed;
      Telemetry.Metrics.incr c_completed
  | Done _ | Cancelled | Failed _ -> ()
[@@race.locked "mutex"]

let settle_failed t job msg =
  match job.state with
  | Queued | Running ->
      job.state <- Failed msg;
      emit job "failed";
      let c = tc t job.tname in
      c.Tenant.failed <- c.Tenant.failed + 1;
      c.Tenant.outstanding <- c.Tenant.outstanding - 1;
      Atomic.incr t.n_failed;
      Telemetry.Metrics.incr c_failed
  | Done _ | Cancelled | Failed _ -> ()
[@@race.locked "mutex"]

(* ------------------------------------------------------------------ *)
(* Run execution (pool workers) *)

let finalize_run t run ~wall outcome =
  with_lock t (fun () ->
      if not run.finalized then begin
        run.finalized <- true;
        Coalesce.finish t.coalesce run.rkey;
        Hashtbl.remove t.runs run.rid;
        let cancelled = Parallel.Cancel.cancelled run.rcancel in
        (match outcome with
        | Ok o when (not cancelled) && Common.Outcome.is_solved o ->
            Cache.put t.cache run.rkey o ~cold_wall:wall
        | Ok _ | Error _ -> ());
        List.iter
          (fun jid ->
            match Hashtbl.find_opt t.jobs jid with
            | None -> ()
            | Some job -> (
                match outcome with
                | Ok _ when cancelled -> settle_cancelled t job
                | Ok o -> settle_done t job o ~wall
                | Error msg -> settle_failed t job msg))
          run.attached;
        run.attached <- [];
        if run.claimed then leave_flight t
      end)

let run_job t run =
  let claimed =
    with_lock t (fun () ->
        if run.finalized || run.attached = [] then begin
          (* Every attachment was cancelled while the run sat queued
             (the canceller finalized it); nothing left to compute. *)
          Hashtbl.remove t.runs run.rid;
          false
        end
        else begin
          run.claimed <- true;
          let claim_at = now () in
          List.iter
            (fun jid ->
              match Hashtbl.find_opt t.jobs jid with
              | Some job when job.state = Queued ->
                  job.state <- Running;
                  emit job "running";
                  Tenant.record_age (tc t job.tname)
                    (claim_at -. job.submitted)
              | Some _ | None -> ())
            run.attached;
          enter_flight t;
          true
        end)
  in
  if claimed then begin
    let sp = Telemetry.Span.enter "serve.job" in
    let wall = ref 0.0 in
    let result =
      match Nn.Serial.of_string run.rspec.Protocol.network with
      | exception Failure msg -> Error ("bad network: " ^ msg)
      | net -> (
          let spec = run.rspec in
          let prop =
            Common.Property.create ~name:spec.Protocol.name
              ~region:spec.Protocol.box ~target:spec.Protocol.target ()
          in
          let config =
            {
              Charon.Verify.default_config with
              Charon.Verify.delta = spec.Protocol.delta;
            }
          in
          let budget =
            Common.Budget.create ?seconds:spec.Protocol.timeout
              ?steps:spec.Protocol.max_steps ()
          in
          let started = now () in
          match
            Charon.Verify.run ~config ~budget ~cancel:run.rcancel
              ~on_progress:(fun ~nodes ~depth ->
                Atomic.set run.r_nodes nodes;
                atomic_max run.r_depth depth)
              ~proofcache:t.proofcache
              ~rng:(Linalg.Rng.create spec.Protocol.seed)
              ~policy:Charon.Policy.default net prop
          with
          | report ->
              wall := now () -. started;
              Ok report.Charon.Verify.outcome
          | exception Invalid_argument msg ->
              Error ("invalid job: " ^ msg)
          | exception Failure msg -> Error msg)
    in
    finalize_run t run ~wall:!wall result;
    Telemetry.Metrics.observe h_job_wall (int_of_float (!wall *. 1e9));
    let final_state =
      match result with
      | Ok _ when Parallel.Cancel.cancelled run.rcancel -> "cancelled"
      | Ok o -> Common.Outcome.label o
      | Error _ -> "failed"
    in
    Telemetry.Span.exit sp
      ~attrs:(fun () ->
        [ ("run", J.Int run.rid); ("state", J.Str final_state) ])
  end

let worker t _i =
  let rec loop () =
    match Jobq.pop t.queue with
    | None -> ()
    | Some run ->
        (try run_job t run
         with e ->
           (* A crashed run must not take the worker domain (and with
              it the whole pool) down; record and move on. *)
           finalize_run t run ~wall:0.0 (Error (Printexc.to_string e)))
        [@lint.allow "catch-all-exn"];
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Public API (daemon accept loop) *)

let create ?(workers = 4) ?(cache_capacity = 256)
    ?(proofcache_capacity = 65536) ?proofcache_persist ?store_path
    ?(queue_capacity = 256) ?(aging_rate = 0.05) ?(tenants = Tenant.empty) ()
    =
  if workers < 1 then invalid_arg "Scheduler.create: workers must be positive";
  if queue_capacity < 1 then
    invalid_arg "Scheduler.create: queue_capacity must be positive";
  let store = Option.map (fun path -> Store.create ~path ()) store_path in
  let t =
    {
      mutex = Mutex.create ();
      jobs = Hashtbl.create 64;
      runs = Hashtbl.create 64;
      queue = Jobq.create ~capacity:queue_capacity ~aging_rate ();
      coalesce = Coalesce.create ();
      cache = Cache.create ~capacity:cache_capacity ?store ();
      store;
      (* One proof cache for the whole scheduler: every run threads it
         through Verify.run, so subregions proved for one tenant's
         query serve every later overlapping query on the same
         network. *)
      proofcache =
        Charon.Proofcache.create ~capacity:proofcache_capacity
          ?persist:proofcache_persist ();
      tenant_counters = Hashtbl.create 8;
      tenant_order = [];
      workers;
      next_id = 0;
      pool = None;
      started_at = now ();
      in_flight = Atomic.make 0;
      peak_in_flight = Atomic.make 0;
      n_submitted = Atomic.make 0;
      n_completed = Atomic.make 0;
      n_cancelled = Atomic.make 0;
      n_failed = Atomic.make 0;
      n_rejected = Atomic.make 0;
    }
  in
  with_lock t (fun () ->
      (* Seed counters in config order so the stats block lists every
         configured tenant from the start, idle ones included. *)
      List.iter
        (fun tn ->
          Hashtbl.replace t.tenant_counters tn.Tenant.name
            (Tenant.fresh_counters tn);
          t.tenant_order <- tn.Tenant.name :: t.tenant_order)
        (Tenant.tenants tenants);
      t.pool <-
        Some
          (Domain.spawn (fun () ->
               Parallel.Pool.run ~workers (fun i -> worker t i))));
  t

let state_label = function
  | Queued -> "queued"
  | Running -> "running"
  | Done _ -> "done"
  | Cancelled -> "cancelled"
  | Failed _ -> "failed"

let job_json job ~since =
  let events =
    List.rev_append
      (List.filter_map
         (fun e ->
           if e.seq < since then None
           else
             Some
               (J.Obj
                  [
                    ("seq", J.Int e.seq);
                    ("t", J.Float e.at);
                    ("label", J.Str e.label);
                  ]))
         job.events)
      []
  in
  let nodes, depth =
    match job.run with
    | Some run -> (Atomic.get run.r_nodes, Atomic.get run.r_depth)
    | None -> (0, 0)
  in
  let base =
    [
      ("id", J.Int job.id);
      ("name", J.Str job.spec.Protocol.name);
      ("tenant", J.Str job.tname);
      ("state", J.Str (state_label job.state));
      ("coalesced", J.Bool job.coalesced);
      ("next_seq", J.Int job.next_seq);
      ( "progress",
        J.Obj [ ("nodes", J.Int nodes); ("peak_depth", J.Int depth) ] );
      ( "cache",
        J.Obj
          (("hit", J.Bool job.from_cache)
          ::
          (if job.from_cache then
             [ ("cold_wall_seconds", J.Float job.cold_wall) ]
           else [])) );
      ("events", J.Arr events);
    ]
  in
  let base =
    match job.state with
    | Done o ->
        base
        @ [
            ("verdict", Protocol.outcome_to_json o);
            ("wall_seconds", J.Float job.wall);
          ]
    | Failed msg -> base @ [ ("error", J.Str msg) ]
    | Queued | Running | Cancelled -> base
  in
  Protocol.ok base
[@@race.locked "mutex"]

let fresh_job t ~spec ~key ~tname =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let job =
    {
      id;
      spec;
      key;
      tname;
      state = Queued;
      events = [];
      next_seq = 0;
      submitted = now ();
      wall = 0.0;
      from_cache = false;
      coalesced = false;
      cold_wall = 0.0;
      run = None;
    }
  in
  Hashtbl.replace t.jobs id job;
  emit job "queued";
  job
[@@race.locked "mutex"]

let submit ?(tenant = Tenant.anonymous) t (spec : Protocol.job_spec) =
  let key =
    Cache.key ~network:spec.Protocol.network ~box:spec.Protocol.box
      ~target:spec.Protocol.target ~delta:spec.Protocol.delta
  in
  Atomic.incr t.n_submitted;
  Telemetry.Metrics.incr c_submitted;
  with_lock t (fun () ->
      let c = tc t tenant.Tenant.name in
      if Jobq.closed t.queue then begin
        Atomic.incr t.n_rejected;
        Telemetry.Metrics.incr c_rejected;
        Protocol.reject ~code:"shutting_down" ~retryable:false
          "server is shutting down"
      end
      else
        match Cache.get t.cache key with
        | Some (outcome, cold_wall) ->
            (* Answered synchronously: never outstanding, never counts
               against the quota. *)
            let job = fresh_job t ~spec ~key ~tname:tenant.Tenant.name in
            job.from_cache <- true;
            job.cold_wall <- cold_wall;
            job.state <- Done outcome;
            emit job "cache_hit";
            emit job (Common.Outcome.label outcome);
            c.Tenant.accepted <- c.Tenant.accepted + 1;
            c.Tenant.cache_hits <- c.Tenant.cache_hits + 1;
            c.Tenant.completed <- c.Tenant.completed + 1;
            Atomic.incr t.n_completed;
            Telemetry.Metrics.incr c_completed;
            job_json job ~since:0
        | None ->
            if
              tenant.Tenant.quota > 0
              && c.Tenant.outstanding >= tenant.Tenant.quota
            then begin
              c.Tenant.rejected_quota <- c.Tenant.rejected_quota + 1;
              Atomic.incr t.n_rejected;
              Telemetry.Metrics.incr c_rejected;
              Protocol.reject ~code:"quota" ~retryable:true
                (Printf.sprintf
                   "tenant %S has %d outstanding jobs (quota %d); retry \
                    after one settles"
                   tenant.Tenant.name c.Tenant.outstanding
                   tenant.Tenant.quota)
            end
            else begin
              match
                Option.bind
                  (Coalesce.find t.coalesce key)
                  (Hashtbl.find_opt t.runs)
              with
              | Some run when not run.finalized ->
                  (* Identical question already in flight: attach as a
                     follower and ride the existing run. *)
                  let job = fresh_job t ~spec ~key ~tname:tenant.Tenant.name in
                  job.coalesced <- true;
                  job.run <- Some run;
                  run.attached <- run.attached @ [ job.id ];
                  emit job
                    (Printf.sprintf "coalesced_onto_run_%d" run.rid);
                  if run.claimed then begin
                    job.state <- Running;
                    emit job "running";
                    Tenant.record_age c 0.0
                  end;
                  Coalesce.attached t.coalesce;
                  c.Tenant.accepted <- c.Tenant.accepted + 1;
                  c.Tenant.coalesced <- c.Tenant.coalesced + 1;
                  c.Tenant.outstanding <- c.Tenant.outstanding + 1;
                  job_json job ~since:0
              | Some _ | None -> (
                  let job = fresh_job t ~spec ~key ~tname:tenant.Tenant.name in
                  let run =
                    {
                      rid = job.id;
                      rspec = spec;
                      rkey = key;
                      rcancel = Parallel.Cancel.create ();
                      attached = [ job.id ];
                      claimed = false;
                      finalized = false;
                      r_nodes = Atomic.make 0;
                      r_depth = Atomic.make 0;
                    }
                  in
                  job.run <- Some run;
                  match
                    Jobq.push ~tenant:tenant.Tenant.name
                      ~weight:tenant.Tenant.weight t.queue run
                  with
                  | `Queued ->
                      Hashtbl.replace t.runs run.rid run;
                      Coalesce.register t.coalesce key run.rid;
                      c.Tenant.accepted <- c.Tenant.accepted + 1;
                      c.Tenant.outstanding <- c.Tenant.outstanding + 1;
                      job_json job ~since:0
                  | `Busy ->
                      Hashtbl.remove t.jobs job.id;
                      c.Tenant.rejected_busy <- c.Tenant.rejected_busy + 1;
                      Atomic.incr t.n_rejected;
                      Telemetry.Metrics.incr c_rejected;
                      Protocol.reject ~code:"busy" ~retryable:true
                        (Printf.sprintf
                           "queue is full (%d runs); retry with backoff"
                           (Jobq.capacity t.queue))
                  | `Closed ->
                      Hashtbl.remove t.jobs job.id;
                      Atomic.incr t.n_rejected;
                      Telemetry.Metrics.incr c_rejected;
                      Protocol.reject ~code:"shutting_down" ~retryable:false
                        "server is shutting down")
            end)

let status t ~id ~since =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.jobs id with
      | Some job -> job_json job ~since
      | None -> Protocol.error (Printf.sprintf "no such job %d" id))

let cancel t id =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.jobs id with
      | None -> Protocol.error (Printf.sprintf "no such job %d" id)
      | Some job -> (
          match (job.state, job.run) with
          | (Done _ | Cancelled | Failed _), _ -> job_json job ~since:0
          | (Queued | Running), None ->
              (* Defensive: a live job always has a run. *)
              settle_cancelled t job;
              job_json job ~since:0
          | (Queued | Running), Some run ->
              let others = List.filter (fun j -> j <> id) run.attached in
              if others = [] && run.claimed && not run.finalized then begin
                (* Sole attachment of an executing run: cooperative
                   cancel, exactly the single-tenant semantics.  The
                   verifier polls the token once per region and its
                   worker finalizes the run (and with it this job).
                   Drop the coalesce entry now so a new identical
                   submit starts a fresh run instead of attaching to a
                   dying one. *)
                Parallel.Cancel.cancel run.rcancel;
                Coalesce.finish t.coalesce run.rkey;
                emit job "cancel_requested";
                job_json job ~since:0
              end
              else begin
                (* Detach and settle immediately: other tenants' jobs
                   riding this run are untouched.  If this was the last
                   attachment of a run still sitting in the queue, the
                   run dies with it — the worker that later pops it
                   sees it finalized and skips. *)
                run.attached <- others;
                if others = [] && not run.finalized then begin
                  Parallel.Cancel.cancel run.rcancel;
                  run.finalized <- true;
                  Coalesce.finish t.coalesce run.rkey;
                  Hashtbl.remove t.runs run.rid
                end;
                settle_cancelled t job;
                job_json job ~since:0
              end))

let tenants_json t =
  List.rev_map
    (fun name ->
      match Hashtbl.find_opt t.tenant_counters name with
      | Some c -> Tenant.counters_json c
      | None -> J.Obj [ ("name", J.Str name) ])
    t.tenant_order
[@@race.locked "mutex"]

let stats t =
  let cache = Cache.stats t.cache in
  let hit_rate = Cache.hit_rate t.cache in
  let pstats = Charon.Proofcache.stats t.proofcache in
  let p_hit_rate =
    if pstats.Charon.Proofcache.lookups = 0 then 0.0
    else
      float_of_int pstats.Charon.Proofcache.hits
      /. float_of_int pstats.Charon.Proofcache.lookups
  in
  let states = Hashtbl.create 8 in
  let tenants, depths, inflight_keys, coalesced_total, peak_keys =
    with_lock t (fun () ->
        Hashtbl.iter
          (fun _ job ->
            let l = state_label job.state in
            Hashtbl.replace states l
              (1 + Option.value ~default:0 (Hashtbl.find_opt states l)))
          t.jobs;
        ( tenants_json t,
          Jobq.depths t.queue,
          Coalesce.inflight_keys t.coalesce,
          Coalesce.coalesced_total t.coalesce,
          Coalesce.peak_inflight t.coalesce ))
  in
  let queued = Option.value ~default:0 (Hashtbl.find_opt states "queued") in
  let store_block =
    match t.store with
    | None -> []
    | Some s ->
        let st = Store.stats s in
        [
          ( "store",
            J.Obj
              [
                ("path", J.Str (Store.path s));
                ("entries", J.Int st.Store.entries);
                ("loaded", J.Int st.Store.loaded);
                ("appended", J.Int st.Store.appended);
                ("hits", J.Int st.Store.hits);
              ] );
        ]
  in
  Protocol.ok
    ([
       ("workers", J.Int t.workers);
       ("uptime_seconds", J.Float (now () -. t.started_at));
       ("queue_depth", J.Int (Jobq.length t.queue));
       ("queue_capacity", J.Int (Jobq.capacity t.queue));
       ( "queue_depths",
         J.Obj (List.map (fun (tn, n) -> (tn, J.Int n)) depths) );
       ("queued", J.Int queued);
       ("in_flight", J.Int (Atomic.get t.in_flight));
       ("peak_in_flight", J.Int (Atomic.get t.peak_in_flight));
       ( "jobs",
         J.Obj
           (("submitted", J.Int (Atomic.get t.n_submitted))
           :: ("completed", J.Int (Atomic.get t.n_completed))
           :: ("cancelled", J.Int (Atomic.get t.n_cancelled))
           :: ("failed", J.Int (Atomic.get t.n_failed))
           :: ("rejected", J.Int (Atomic.get t.n_rejected))
           :: (Hashtbl.fold
                 (fun l n acc -> (l, J.Int n) :: acc)
                 states []
              |> List.sort (fun (a, _) (b, _) -> String.compare a b))) );
       ( "coalesce",
         J.Obj
           [
             ("inflight_keys", J.Int inflight_keys);
             ("coalesced_total", J.Int coalesced_total);
             ("peak_inflight_keys", J.Int peak_keys);
           ] );
       ("tenants", J.Arr tenants);
       ( "cache",
         J.Obj
           [
             ("size", J.Int cache.Cache.size);
             ("capacity", J.Int cache.Cache.capacity);
             ("hits", J.Int cache.Cache.hits);
             ("misses", J.Int cache.Cache.misses);
             ("evictions", J.Int cache.Cache.evictions);
             ("hit_rate", J.Float hit_rate);
           ] );
       ( "proofcache",
         J.Obj
           [
             ("entries", J.Int pstats.Charon.Proofcache.entries);
             ("capacity", J.Int pstats.Charon.Proofcache.capacity);
             ("lookups", J.Int pstats.Charon.Proofcache.lookups);
             ("hits", J.Int pstats.Charon.Proofcache.hits);
             ("evictions", J.Int pstats.Charon.Proofcache.evictions);
             ("hit_rate", J.Float p_hit_rate);
           ] );
       (* Kernel-parallelism health: fan-out vs fallback rate of the
          pooled GEMM, and the scratch arena's footprint.  The high-water
          mark is read from the arena directly so it is live even when
          telemetry counters are disabled. *)
       ( "kernel",
         J.Obj
           [
             ( "gemm_parallel_calls",
               J.Int (Telemetry.Metrics.value c_gemm_parallel) );
             ( "gemm_sequential_fallbacks",
               J.Int (Telemetry.Metrics.value c_gemm_fallback) );
             ( "scratch_highwater_words",
               J.Int (Linalg.Scratch.highwater_words ()) );
             ("pool_helpers", J.Int (Parallel.Kpool.helpers ()));
             ( "pool_peak_domains",
               J.Int (Parallel.Kpool.peak_participants ()) );
           ] );
       ( "counters",
         J.Obj
           (List.map
              (fun (k, v) -> (k, J.Int v))
              (Telemetry.Metrics.counters ())) );
     ]
    @ store_block)

let shutdown t =
  let pool =
    with_lock t (fun () ->
        (* Reject new work, settle everything still pending, and ask
           running runs to stop at their next region poll. *)
        Jobq.close t.queue;
        Hashtbl.iter
          (fun _ run ->
            Parallel.Cancel.cancel run.rcancel;
            if not run.claimed && not run.finalized then begin
              run.finalized <- true;
              Coalesce.finish t.coalesce run.rkey;
              List.iter
                (fun jid ->
                  match Hashtbl.find_opt t.jobs jid with
                  | Some job -> settle_cancelled t job
                  | None -> ())
                run.attached;
              run.attached <- []
            end)
          t.runs;
        Hashtbl.reset t.runs;
        let pool = t.pool in
        t.pool <- None;
        pool)
  in
  (* Workers drain their current (now cancelled) runs and exit on the
     closed queue; joining here is what guarantees no orphaned domains
     outlive the scheduler. *)
  Option.iter Domain.join pool;
  (* Safe only after the join: no worker can record further facts. *)
  Charon.Proofcache.close t.proofcache;
  Option.iter Store.close t.store

let workers t = t.workers

let proofcache t = t.proofcache

let store t = t.store
