open Linalg
open Domains

(* Lower and upper affine forms over the inputs: row i of [lo_w] / [lo_b]
   bounds neuron i from below, [up_w] / [up_b] from above. *)
type t = {
  box : Box.t;
  lo_w : Mat.t;
  lo_b : Vec.t;
  up_w : Mat.t;
  up_b : Vec.t;
}

let of_box box =
  let n = Box.dim box in
  {
    box;
    lo_w = Mat.identity n;
    lo_b = Vec.zeros n;
    up_w = Mat.identity n;
    up_b = Vec.zeros n;
  }

let dim t = t.lo_w.Mat.rows

let input_box t = t.box

(* Concrete extrema of the affine form (w, b) over the input box. *)
let form_min box w_row b =
  let acc = ref b in
  Array.iteri
    (fun j c ->
      acc :=
        !acc +. if c >= 0.0 then c *. box.Box.lo.(j) else c *. box.Box.hi.(j))
    w_row;
  !acc

let form_max box w_row b =
  let acc = ref b in
  Array.iteri
    (fun j c ->
      acc :=
        !acc +. if c >= 0.0 then c *. box.Box.hi.(j) else c *. box.Box.lo.(j))
    w_row;
  !acc

let bounds t i =
  ( form_min t.box (Mat.row t.lo_w i) t.lo_b.(i),
    form_max t.box (Mat.row t.up_w i) t.up_b.(i) )

let affine w b t =
  if w.Mat.cols <> dim t then
    invalid_arg "Symbolic_interval.affine: dimension mismatch";
  let n = Box.dim t.box in
  let rows = w.Mat.rows in
  let lo_w = Mat.zeros rows n and up_w = Mat.zeros rows n in
  let lo_b = Vec.zeros rows and up_b = Vec.zeros rows in
  for r = 0 to rows - 1 do
    let lb = ref b.(r) and ub = ref b.(r) in
    for c = 0 to w.Mat.cols - 1 do
      let wrc = Mat.get w r c in
      if wrc > 0.0 then begin
        for j = 0 to n - 1 do
          Mat.set lo_w r j (Mat.get lo_w r j +. (wrc *. Mat.get t.lo_w c j));
          Mat.set up_w r j (Mat.get up_w r j +. (wrc *. Mat.get t.up_w c j))
        done;
        lb := !lb +. (wrc *. t.lo_b.(c));
        ub := !ub +. (wrc *. t.up_b.(c))
      end
      else if wrc < 0.0 then begin
        for j = 0 to n - 1 do
          Mat.set lo_w r j (Mat.get lo_w r j +. (wrc *. Mat.get t.up_w c j));
          Mat.set up_w r j (Mat.get up_w r j +. (wrc *. Mat.get t.lo_w c j))
        done;
        lb := !lb +. (wrc *. t.up_b.(c));
        ub := !ub +. (wrc *. t.lo_b.(c))
      end
    done;
    lo_b.(r) <- !lb;
    up_b.(r) <- !ub
  done;
  { t with lo_w; lo_b; up_w; up_b }

let scale_row w b i s =
  for j = 0 to w.Mat.cols - 1 do
    Mat.set w i j (s *. Mat.get w i j)
  done;
  b.(i) <- s *. b.(i)

let zero_row w b i =
  for j = 0 to w.Mat.cols - 1 do
    Mat.set w i j 0.0
  done;
  b.(i) <- 0.0

let relu t =
  let lo_w = Mat.copy t.lo_w and up_w = Mat.copy t.up_w in
  let lo_b = Vec.copy t.lo_b and up_b = Vec.copy t.up_b in
  for i = 0 to dim t - 1 do
    let l_lo = form_min t.box (Mat.row t.lo_w i) t.lo_b.(i) in
    let u_up = form_max t.box (Mat.row t.up_w i) t.up_b.(i) in
    if l_lo >= 0.0 then () (* stably active: identity *)
    else if u_up <= 0.0 then begin
      zero_row lo_w lo_b i;
      zero_row up_w up_b i
    end
    else begin
      (* Crossing.  Upper form: if its own minimum is negative, apply
         the relaxation up' = s (up - l_up) with s = u/(u - l_up);
         sound because relu(x) <= s (x - l) for x in [l, u]. *)
      let l_up = form_min t.box (Mat.row t.up_w i) t.up_b.(i) in
      if l_up < 0.0 then begin
        let s = u_up /. (u_up -. l_up) in
        scale_row up_w up_b i s;
        up_b.(i) <- up_b.(i) -. (s *. l_up)
      end;
      (* Lower form: relu(x) >= s' x with s' = u'/(u' - l') for the
         lower form's own range [l', u']; if the form is never positive
         the best sound linear lower bound is 0. *)
      let u_lo = form_max t.box (Mat.row t.lo_w i) t.lo_b.(i) in
      if u_lo <= 0.0 then zero_row lo_w lo_b i
      else begin
        let s = u_lo /. (u_lo -. l_lo) in
        scale_row lo_w lo_b i s
      end
    end
  done;
  { t with lo_w; lo_b; up_w; up_b }

let propagate net box =
  if Box.dim box <> net.Nn.Network.input_dim then
    invalid_arg "Symbolic_interval.propagate: dimension mismatch";
  List.fold_left
    (fun acc layer ->
      match layer with
      | Nn.Layer.Affine { w; b } -> affine w b acc
      | Nn.Layer.Conv c ->
          let w, b = Nn.Conv.to_affine c in
          affine w b acc
      | Nn.Layer.Avgpool p ->
          let w, b = Nn.Avgpool.to_affine p in
          affine w b acc
      | Nn.Layer.Relu -> relu acc
      | Nn.Layer.Maxpool _ ->
          failwith "Symbolic_interval: max pooling is not supported")
    (of_box box) net.Nn.Network.layers

let margin_bounds t ~target ~j =
  if target = j then invalid_arg "Symbolic_interval.margin_bounds: target = j";
  let n = Box.dim t.box in
  let diff_lo =
    Vec.init n (fun c -> Mat.get t.lo_w target c -. Mat.get t.up_w j c)
  in
  let diff_lo_b = t.lo_b.(target) -. t.up_b.(j) in
  let diff_up =
    Vec.init n (fun c -> Mat.get t.up_w target c -. Mat.get t.lo_w j c)
  in
  let diff_up_b = t.up_b.(target) -. t.lo_b.(j) in
  (form_min t.box diff_lo diff_lo_b, form_max t.box diff_up diff_up_b)
