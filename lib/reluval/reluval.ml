open Linalg
open Domains

type smear = Gradient_interval | Point_gradient

type config = { delta : float; max_regions : int; smear : smear }

let default_config =
  { delta = 1e-4; max_regions = 1_000_000; smear = Gradient_interval }

type report = {
  outcome : Common.Outcome.t;
  elapsed : float;
  regions_analyzed : int;
  max_depth : int;
}

type region_verdict = Proved | Violated | Split_needed

let analyze_region net region ~target =
  let sym = Symbolic_interval.propagate net region in
  let m = net.Nn.Network.output_dim in
  let verdict = ref Proved in
  (try
     for j = 0 to m - 1 do
       if j <> target then begin
         let lo, hi = Symbolic_interval.margin_bounds sym ~target ~j in
         if hi < 0.0 then begin
           (* The whole region scores class j above the target. *)
           verdict := Violated;
           raise Exit
         end;
         if lo <= 0.0 then verdict := Split_needed
       end
     done
   with Exit -> ());
  !verdict

(* ReluVal computes *interval* gradient bounds over the whole region:
   the backward pass runs in interval arithmetic, with each unstable
   ReLU contributing the mask interval [0, 1].  Returns per-input
   magnitude upper bounds on |dN_target/dx_i| over the region. *)
let gradient_interval net region ~target =
  (* Forward: record, per layer, either the (lowered) weight matrix or
     the ReLU unit masks derived from symbolic bounds. *)
  let steps =
    List.rev
      (fst
         (List.fold_left
            (fun (acc, sym) layer ->
              match layer with
              | Nn.Layer.Affine { w; _ } ->
                  (`Affine w :: acc, Symbolic_interval.affine w (Vec.zeros w.Mat.rows) sym)
              | Nn.Layer.Conv c ->
                  let w, _ = Nn.Conv.to_affine c in
                  (`Affine w :: acc, Symbolic_interval.affine w (Vec.zeros w.Mat.rows) sym)
              | Nn.Layer.Avgpool p ->
                  let w, _ = Nn.Avgpool.to_affine p in
                  (`Affine w :: acc, Symbolic_interval.affine w (Vec.zeros w.Mat.rows) sym)
              | Nn.Layer.Relu ->
                  let masks =
                    Array.init (Symbolic_interval.dim sym) (fun i ->
                        let lo, hi = Symbolic_interval.bounds sym i in
                        if lo >= 0.0 then (1.0, 1.0)
                        else if hi <= 0.0 then (0.0, 0.0)
                        else (0.0, 1.0))
                  in
                  (`Relu masks :: acc, Symbolic_interval.relu sym)
              | Nn.Layer.Maxpool _ ->
                  failwith "Reluval: max pooling is not supported")
            ([], Symbolic_interval.of_box region)
            net.Nn.Network.layers))
  in
  (* Backward: interval cotangent, starting from the target one-hot. *)
  let m = net.Nn.Network.output_dim in
  let g_lo = ref (Vec.init m (fun i -> if i = target then 1.0 else 0.0)) in
  let g_hi = ref (Vec.copy !g_lo) in
  List.iter
    (fun step ->
      match step with
      | `Affine w ->
          (* [W^T g]: scalar-by-interval products summed per column. *)
          let n = w.Mat.cols in
          let lo = Vec.zeros n and hi = Vec.zeros n in
          for i = 0 to w.Mat.rows - 1 do
            for j = 0 to n - 1 do
              let c = Mat.get w i j in
              if c > 0.0 then begin
                lo.(j) <- lo.(j) +. (c *. !g_lo.(i));
                hi.(j) <- hi.(j) +. (c *. !g_hi.(i))
              end
              else if c < 0.0 then begin
                lo.(j) <- lo.(j) +. (c *. !g_hi.(i));
                hi.(j) <- hi.(j) +. (c *. !g_lo.(i))
              end
            done
          done;
          g_lo := lo;
          g_hi := hi
      | `Relu masks ->
          let n = Array.length masks in
          let lo = Vec.zeros n and hi = Vec.zeros n in
          for i = 0 to n - 1 do
            let mlo, mhi = masks.(i) in
            (* Interval product [mlo, mhi] * [g_lo, g_hi] with
               0 <= mlo <= mhi. *)
            let candidates =
              [| mlo *. !g_lo.(i); mlo *. !g_hi.(i); mhi *. !g_lo.(i);
                 mhi *. !g_hi.(i) |]
            in
            lo.(i) <- Vec.min candidates;
            hi.(i) <- Vec.max candidates
          done;
          g_lo := lo;
          g_hi := hi)
    (List.rev steps);
  Vec.init (Box.dim region) (fun i ->
      Float.max (abs_float !g_lo.(i)) (abs_float !g_hi.(i)))

(* ReluVal's smear split heuristic: the input dimension with the
   largest |gradient| * width product — gradient bounds over the whole
   region by default, or the cheaper point gradient at the center. *)
let smear_dim config net region ~target =
  let g =
    match config.smear with
    | Gradient_interval -> gradient_interval net region ~target
    | Point_gradient ->
        Vec.map abs_float
          (Nn.Grad.grad_output net ~x:(Box.center region) ~k:target)
  in
  let best = ref 0 and best_score = ref neg_infinity in
  for i = 0 to Vec.dim g - 1 do
    let score = g.(i) *. Box.width region i in
    if score > !best_score then begin
      best_score := score;
      best := i
    end
  done;
  if Box.width region !best > 0.0 then !best else Box.longest_dim region

let run ?(config = default_config) ?(budget = Common.Budget.unlimited ()) net
    (prop : Common.Property.t) =
  let started = Unix.gettimeofday () in
  let regions = ref 0 and max_depth = ref 0 in
  let finish outcome =
    {
      outcome;
      elapsed = Unix.gettimeofday () -. started;
      regions_analyzed = !regions;
      max_depth = !max_depth;
    }
  in
  let target = prop.Common.Property.target in
  let objective = Optim.Objective.create net ~k:target in
  match
    let rec loop = function
      | [] -> Common.Outcome.Verified
      | (region, depth) :: rest ->
          if Common.Budget.exhausted budget || !regions >= config.max_regions
          then Common.Outcome.Timeout
          else begin
            incr regions;
            max_depth := Stdlib.max !max_depth depth;
            Common.Budget.spend budget 1;
            let split_region () =
              let d = smear_dim config net region ~target in
              if Box.width region d <= 0.0 then Common.Outcome.Timeout
              else begin
                let center = Box.center region in
                let a, b = Box.split region ~dim:d ~at:center.(d) in
                loop ((a, depth + 1) :: (b, depth + 1) :: rest)
              end
            in
            match analyze_region net region ~target with
            | Proved -> loop rest
            | Violated ->
                let witness = Box.center region in
                if Optim.Objective.value objective witness <= config.delta
                then Common.Outcome.Refuted witness
                else
                  (* Numeric corner: the symbolic bound says the whole
                     region violates but the center check disagreed.
                     Keep refining rather than dropping the region. *)
                  split_region ()
            | Split_needed -> split_region ()
          end
    in
    loop [ (prop.Common.Property.region, 0) ]
  with
  | outcome -> finish outcome
  | exception Failure _ -> finish Common.Outcome.Unknown

module Symbolic_interval = Symbolic_interval
