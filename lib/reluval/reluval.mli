(** The ReluVal baseline: symbolic interval analysis with iterative
    input bisection.

    Maintains a worklist of sub-regions.  Each region is analyzed with
    {!Symbolic_interval}; if the margin lower bound is positive the
    region is verified, if the margin upper bound is negative the whole
    region violates the property (and its center is a concrete witness),
    and otherwise the region is bisected along the dimension with the
    largest smear (gradient magnitude times width) — ReluVal's static,
    hand-crafted refinement strategy.  There is no gradient-based
    counterexample search and no learned policy, which is exactly what
    §7.3/§7.4 compare Charon against. *)

type smear =
  | Gradient_interval
      (** ReluVal's measure: interval gradient bounds over the whole
          region (unstable ReLUs contribute the mask interval [0, 1]) *)
  | Point_gradient  (** cheaper: the gradient at the region center *)

type config = {
  delta : float;  (** concrete-witness acceptance threshold *)
  max_regions : int;  (** safety cap on worklist expansions *)
  smear : smear;  (** split-dimension heuristic *)
}

val default_config : config
(** δ = 1e-4, one million region expansions, interval-gradient smear. *)

val gradient_interval :
  Nn.Network.t -> Domains.Box.t -> target:int -> Linalg.Vec.t
(** Per-input upper bounds on the magnitude of
    [∂N(x)_target/∂x_i] over the whole region, by an interval-arithmetic
    backward pass.  Exposed for tests and diagnostics.
    @raise Failure on max-pooling layers. *)

type report = {
  outcome : Common.Outcome.t;
  elapsed : float;
  regions_analyzed : int;
  max_depth : int;
}

val run :
  ?config:config ->
  ?budget:Common.Budget.t ->
  Nn.Network.t ->
  Common.Property.t ->
  report
(** Decide the property by bisection-based abstraction refinement.
    Returns [Unknown] for networks with unsupported (max-pooling)
    layers. *)

module Symbolic_interval = Symbolic_interval
(** Re-export so library users (tests, benchmarks) can reach the
    symbolic-interval machinery directly. *)
