(** Symbolic interval analysis (the core of ReluVal / Neurify).

    Every neuron is bounded below and above by affine functions of the
    network {e inputs}, which preserves input dependencies that plain
    interval arithmetic loses.  Crossing ReLUs are handled with the
    standard sound linear relaxations. *)

type t
(** Symbolic bounds for one layer's neurons over a fixed input box. *)

val of_box : Domains.Box.t -> t
(** Identity bounds: neuron [i] is exactly input [i]. *)

val dim : t -> int
(** Number of neurons currently bounded. *)

val input_box : t -> Domains.Box.t

val bounds : t -> int -> float * float
(** Concrete bounds of neuron [i] over the input box. *)

val affine : Linalg.Mat.t -> Linalg.Vec.t -> t -> t
(** Exact symbolic transformer for an affine layer. *)

val relu : t -> t
(** Sound ReLU transformer: stable neurons pass through or zero out;
    crossing neurons get linear upper/lower relaxations scaled by
    [u/(u-l)]. *)

val propagate : Nn.Network.t -> Domains.Box.t -> t
(** Run the whole network (convolutions are lowered to affine layers).
    @raise Failure on max-pooling layers, which ReluVal does not
    support. *)

val margin_bounds : t -> target:int -> j:int -> float * float
(** Bounds of [y_target - y_j] over the input box, combining the lower
    symbolic form of the target with the upper form of [j] (and vice
    versa), which is tighter than subtracting concretized bounds. *)
