(** A single lint finding: where, which rule, what is wrong, and how to
    fix it.  Diagnostics are plain data so the driver can render them as
    text or JSON and the test suite can assert on them directly. *)

type t = {
  rule : string;  (** rule id, e.g. ["poly-compare"] *)
  file : string;  (** root-relative path of the offending file *)
  line : int;  (** 1-based line of the offending node *)
  col : int;  (** 0-based column of the offending node *)
  message : string;  (** what is wrong, one line *)
  hint : string;  (** how to fix or how to suppress, one line *)
}

val make :
  rule:string ->
  file:string ->
  loc:Location.t ->
  message:string ->
  hint:string ->
  t

(** Source-position order: file, then line, then column, then rule. *)
val order : t -> t -> int

(** [file:line:col: rule: message] — the one-line text rendering. *)
val to_string : t -> string
