type pass = Syntactic | Race

type result = {
  files_scanned : int;
  findings : Diagnostic.t list;
  suppressed : Diagnostic.t list;
  errors : (string * string) list;
}

let read_file path =
  match open_in_bin path with
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      Some s
  | exception Sys_error _ -> None

let parse_impl ~path src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | str -> Ok str
  | exception Syntaxerr.Error _ -> Error "syntax error"
  | exception Lexer.Error (_, _) -> Error "lexing error"

(* Every [.ml] under [paths] (root-relative files or directories),
   skipping dot- and underscore-prefixed entries ([_build], [.git],
   editor droppings). *)
let collect_ml_files ~root ~paths =
  let rec walk full rel acc =
    match Sys.readdir full with
    | exception Sys_error _ -> acc
    | entries ->
        Array.sort String.compare entries;
        Array.fold_left
          (fun acc entry ->
            if String.length entry = 0 || entry.[0] = '.' || entry.[0] = '_'
            then acc
            else
              let f = Filename.concat full entry in
              let r = Filename.concat rel entry in
              if Sys.is_directory f then walk f r acc
              else if Filename.check_suffix entry ".ml" then (f, r) :: acc
              else acc)
          acc entries
  in
  List.concat_map
    (fun p ->
      let full = Filename.concat root p in
      if not (Sys.file_exists full) then []
      else if Sys.is_directory full then List.rev (walk full p [])
      else if Filename.check_suffix p ".ml" then [ (full, p) ]
      else [])
    paths

let first_segment path =
  match String.index_opt path '/' with
  | Some i -> String.sub path 0 i
  | None -> path

let rule_ids () = List.map (fun r -> r.Rules.id) Rules.all @ Race.rule_ids

let lint ?(passes = [ Syntactic; Race ]) ?(only = []) ?(exclude = [])
    ?(parallel_roots = [ "parallel" ])
    ?(unsafe_allowlist = [ "lib/linalg/mat.ml" ]) ~root ~paths () =
  let selected id =
    (match only with [] -> true | l -> List.mem id l)
    && not (List.mem id exclude)
  in
  let libs = Deps.scan ~root ~paths in
  let reachable = Deps.parallel_reachable libs ~roots:parallel_roots in
  let files = collect_ml_files ~root ~paths in
  let errors = ref [] in
  (* Parse once; both passes (and the suppression spans) share the
     trees. *)
  let parsed =
    List.filter_map
      (fun (full, rel) ->
        match read_file full with
        | None ->
            errors := (rel, "unreadable") :: !errors;
            None
        | Some src -> (
            match parse_impl ~path:rel src with
            | Error msg ->
                errors := (rel, msg) :: !errors;
                None
            | Ok str -> Some (rel, str)))
      files
  in
  let raw = ref [] in
  if List.mem Syntactic passes then
    List.iter
      (fun (rel, str) ->
        let ctx =
          {
            Rules.file = rel;
            in_lib = String.equal (first_segment rel) "lib";
            parallel_reachable =
              (match Deps.lib_of_file libs rel with
              | Some l -> reachable l.Deps.name
              | None -> false);
            unsafe_allowlist;
          }
        in
        List.iter
          (fun (r : Rules.rule) ->
            if selected r.Rules.id then raw := r.Rules.check ctx str @ !raw)
          Rules.all)
      parsed;
  if List.mem Race passes && List.exists selected Race.rule_ids then
    raw :=
      List.filter
        (fun (d : Diagnostic.t) -> selected d.Diagnostic.rule)
        (Race.analyze ~files:parsed ~libs ~parallel_reachable:reachable)
      @ !raw;
  let spans =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (rel, str) -> Hashtbl.replace tbl rel (Suppress.collect str))
      parsed;
    tbl
  in
  let findings = ref [] in
  let suppressed = ref [] in
  List.iter
    (fun (d : Diagnostic.t) ->
      let file_spans =
        Option.value ~default:[] (Hashtbl.find_opt spans d.Diagnostic.file)
      in
      if
        Suppress.is_suppressed file_spans ~rule:d.Diagnostic.rule
          ~line:d.Diagnostic.line
      then suppressed := d :: !suppressed
      else findings := d :: !findings)
    !raw;
  {
    files_scanned = List.length files;
    findings = List.sort Diagnostic.order !findings;
    suppressed = List.sort Diagnostic.order !suppressed;
    errors = List.rev !errors;
  }

let clean r = r.findings = [] && r.errors = []

let render_text ?(show_suppressed = false) r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (d : Diagnostic.t) ->
      Buffer.add_string buf (Diagnostic.to_string d);
      Buffer.add_char buf '\n';
      Buffer.add_string buf ("  hint: " ^ d.Diagnostic.hint);
      Buffer.add_char buf '\n')
    r.findings;
  if show_suppressed then
    List.iter
      (fun (d : Diagnostic.t) ->
        Buffer.add_string buf ("suppressed: " ^ Diagnostic.to_string d);
        Buffer.add_char buf '\n')
      r.suppressed;
  List.iter
    (fun (file, msg) ->
      Buffer.add_string buf (Printf.sprintf "%s: parse error: %s\n" file msg))
    r.errors;
  Buffer.add_string buf
    (Printf.sprintf "charon-lint: %d files, %d findings, %d suppressed%s\n"
       r.files_scanned
       (List.length r.findings)
       (List.length r.suppressed)
       (match r.errors with
       | [] -> ""
       | es -> Printf.sprintf ", %d parse errors" (List.length es)));
  Buffer.contents buf

let json_of_diag (d : Diagnostic.t) =
  Json_out.Obj
    [
      ("file", Json_out.Str d.Diagnostic.file);
      ("line", Json_out.Int d.Diagnostic.line);
      ("col", Json_out.Int d.Diagnostic.col);
      ("rule", Json_out.Str d.Diagnostic.rule);
      ("message", Json_out.Str d.Diagnostic.message);
      ("hint", Json_out.Str d.Diagnostic.hint);
    ]

let render_json r =
  Json_out.to_string
    (Json_out.Obj
       [
         ("tool", Json_out.Str "charon-lint");
         ("version", Json_out.Int 1);
         ("files", Json_out.Int r.files_scanned);
         ("findings", Json_out.Arr (List.map json_of_diag r.findings));
         ("suppressed", Json_out.Arr (List.map json_of_diag r.suppressed));
         ( "errors",
           Json_out.Arr
             (List.map
                (fun (file, msg) ->
                  Json_out.Obj
                    [
                      ("file", Json_out.Str file);
                      ("message", Json_out.Str msg);
                    ])
                r.errors) );
       ])

let list_rules_text () =
  let buf = Buffer.create 256 in
  List.iter
    (fun (r : Rules.rule) ->
      Buffer.add_string buf
        (Printf.sprintf "%-22s %s\n" r.Rules.id r.Rules.summary))
    Rules.all;
  List.iter
    (fun (id, summary) ->
      Buffer.add_string buf (Printf.sprintf "%-22s %s\n" id summary))
    Race.rules;
  Buffer.contents buf
