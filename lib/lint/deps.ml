type lib = { name : string; dir : string; deps : string list }

(* ------------------------------------------------------------------ *)
(* A minimal s-expression reader, just enough for dune files: atoms,
   parenthesised lists, double-quoted strings, and [;] line comments. *)

type sexp = Atom of string | List of sexp list

let parse_sexps (src : string) : sexp list =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_blanks () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_blanks ()
    | Some ';' ->
        while !pos < n && src.[!pos] <> '\n' do
          advance ()
        done;
        skip_blanks ()
    | _ -> ()
  in
  let read_string () =
    advance ();
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> ()
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some c ->
              Buffer.add_char buf c;
              advance ()
          | None -> ());
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Atom (Buffer.contents buf)
  in
  let read_atom () =
    let start = !pos in
    let stop = ref false in
    while not !stop do
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' | '"') | None ->
          stop := true
      | Some _ -> advance ()
    done;
    Atom (String.sub src start (!pos - start))
  in
  let rec read_one () =
    skip_blanks ();
    match peek () with
    | None -> None
    | Some '(' ->
        advance ();
        let items = read_list [] in
        Some (List items)
    | Some ')' ->
        (* Stray close: skip it rather than fail — lint must not crash
           on a malformed dune file. *)
        advance ();
        read_one ()
    | Some '"' -> Some (read_string ())
    | Some _ -> Some (read_atom ())
  and read_list acc =
    skip_blanks ();
    match peek () with
    | None -> List.rev acc
    | Some ')' ->
        advance ();
        List.rev acc
    | Some _ -> (
        match read_one () with
        | None -> List.rev acc
        | Some s -> read_list (s :: acc))
  in
  let rec all acc =
    match read_one () with None -> List.rev acc | Some s -> all (s :: acc)
  in
  all []

(* ------------------------------------------------------------------ *)

let read_file path =
  match open_in_bin path with
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      Some s
  | exception Sys_error _ -> None

let field name items =
  List.find_map
    (function
      | List (Atom f :: rest) when String.equal f name -> Some rest | _ -> None)
    items

let atoms items =
  List.filter_map (function Atom a -> Some a | List _ -> None) items

let libs_of_dune ~dir src =
  parse_sexps src
  |> List.filter_map (function
       | List (Atom "library" :: items) -> (
           match field "name" items with
           | Some (Atom name :: _) ->
               let deps =
                 match field "libraries" items with
                 | Some rest -> atoms rest
                 | None -> []
               in
               Some { name; dir; deps }
           | _ -> None)
       | _ -> None)

let rec walk_dirs full rel acc =
  match Sys.readdir full with
  | exception Sys_error _ -> acc
  | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          if String.length entry = 0 || entry.[0] = '.' || entry.[0] = '_' then
            acc
          else
            let f = Filename.concat full entry in
            let r = if rel = "" then entry else Filename.concat rel entry in
            if Sys.is_directory f then walk_dirs f r acc
            else if String.equal entry "dune" then (f, r) :: acc
            else acc)
        acc entries

let scan ~root ~paths =
  List.concat_map
    (fun p ->
      let full = Filename.concat root p in
      if not (Sys.file_exists full) then []
      else if Sys.is_directory full then
        walk_dirs full p []
        |> List.concat_map (fun (f, r) ->
               match read_file f with
               | Some src -> libs_of_dune ~dir:(Filename.dirname r) src
               | None -> [])
      else [])
    paths

(* ------------------------------------------------------------------ *)

let parallel_reachable libs ~roots =
  let find name = List.find_opt (fun l -> String.equal l.name name) libs in
  (* closure name = {name} ∪ transitive local deps of name *)
  let rec closure seen name =
    if List.mem name seen then seen
    else
      match find name with
      | None -> seen (* external library: opaque, no local deps *)
      | Some l -> List.fold_left closure (name :: seen) l.deps
  in
  let reachable =
    List.fold_left
      (fun acc l ->
        let cl = closure [] l.name in
        let touches_root = List.exists (fun r -> List.mem r cl) roots in
        if touches_root then List.rev_append cl acc else acc)
      (List.filter (fun r -> Option.is_some (find r)) roots)
      libs
  in
  fun name -> List.mem name reachable

let lib_of_file libs path =
  let dir = Filename.dirname path in
  List.find_opt (fun l -> String.equal l.dir dir) libs
