(** Suppression spans collected from [[@lint.allow "rule ..."]]
    attributes.

    Attaching the attribute to an expression, value binding, type
    declaration, or module binding suppresses the named rules for every
    line that node spans.  A floating [[@@@lint.allow "rule"]] item
    suppresses the rules from its own line to the end of the file.  The
    payload is a string literal of rule ids separated by spaces or
    commas; an empty payload (or ["*"]) suppresses every rule.

    Suppressed findings are not dropped silently: the driver still
    collects them and reports their count (and, with [--json] or
    [--show-suppressed], their positions), so every [@lint.allow] stays
    visible as an audit trail. *)

type span = {
  rules : string list;  (** ids the span suppresses; [["*"]] = all *)
  start_line : int;
  end_line : int;  (** [max_int] for floating attributes *)
}

(** All suppression spans of one parsed implementation file. *)
val collect : Parsetree.structure -> span list

val is_suppressed : span list -> rule:string -> line:int -> bool
