open Parsetree

type ctx = {
  file : string;
  in_lib : bool;
  parallel_reachable : bool;
  unsafe_allowlist : string list;
}

type rule = {
  id : string;
  summary : string;
  check : ctx -> Parsetree.structure -> Diagnostic.t list;
}

(* ------------------------------------------------------------------ *)
(* Shared syntax helpers live in [Astq] (the race pass uses them too). *)

let ident_path = Astq.ident_path

let norm = Astq.norm

let path_of_expr = Astq.path_of_expr

let iter_exprs = Astq.iter_exprs

(* Operators and functions of the stdlib that return float, used to
   decide — without the typer — that an expression is float-valued. *)
let float_prims =
  [
    "+."; "-."; "*."; "/."; "**"; "~-."; "~+."; "abs_float"; "sqrt"; "exp";
    "expm1"; "log"; "log10"; "log1p"; "cos"; "sin"; "tan"; "acos"; "asin";
    "atan"; "atan2"; "cosh"; "sinh"; "tanh"; "floor"; "ceil"; "mod_float";
    "float_of_int"; "float_of_string"; "hypot"; "copysign"; "ldexp";
  ]

let float_consts =
  [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float";
    "min_float" ]

(* [Float.f] calls that do NOT return float. *)
let float_mod_nonfloat =
  [
    "compare"; "equal"; "is_nan"; "is_finite"; "is_infinite"; "is_integer";
    "to_int"; "to_string"; "of_string_opt"; "sign_bit"; "classify_float";
    "hash";
  ]

let is_float_type ct =
  match ct.ptyp_desc with
  | Ptyp_constr ({ txt = Lident "float"; _ }, []) -> true
  | _ -> false

(* Syntactically float-valued: a float literal, a float constant, an
   application of a float primitive or of a value-returning [Float.*]
   function, or an explicit [(e : float)] coercion. *)
let rec floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt; _ } -> (
      match Option.map norm (ident_path txt) with
      | Some [ c ] -> List.mem c float_consts
      | Some [ "Float"; c ] ->
          List.mem c
            [ "pi"; "max_float"; "min_float"; "epsilon"; "infinity";
              "neg_infinity"; "nan"; "zero"; "one"; "minus_one" ]
      | _ -> false)
  | Pexp_apply (f, _) -> (
      match path_of_expr f with
      | Some [ op ] -> List.mem op float_prims
      | Some [ "Float"; fn ] -> not (List.mem fn float_mod_nonfloat)
      | _ -> false)
  | Pexp_constraint (inner, ct) -> is_float_type ct || floatish inner
  | _ -> false

let structured e =
  match e.pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_construct ({ txt = Lident "::"; _ }, _) -> true
  | _ -> false

let is_float_array_type ct =
  match ct.ptyp_desc with
  | Ptyp_constr ({ txt = Lident "array"; _ }, [ elt ]) -> is_float_type elt
  | Ptyp_constr ({ txt; _ }, []) -> (
      (* Repo-local aliases for [float array] that a syntactic check
         would otherwise see through only at a constraint. *)
      match Option.map norm (ident_path txt) with
      | Some ([ "Vec"; "t" ] | [ "Linalg"; "Vec"; "t" ]) -> true
      | _ -> false)
  | _ -> false

(* Syntactically an array of floats: a literal with a float head, an
   [Array.*] constructor seeded with a float, or a [float array]
   (or [Vec.t]) type constraint.  The well-known blind spot is a bare
   identifier or field access whose float-array type only the
   typechecker knows (exactly how [Box.equal]'s [a.lo = b.lo] slipped
   through); those need an annotation somewhere in the expression to be
   caught here. *)
let rec float_arrayish e =
  match e.pexp_desc with
  | Pexp_array (x :: _) -> floatish x
  | Pexp_apply (f, args) -> (
      match path_of_expr f with
      | Some [ "Array"; "create_float" ] -> true
      | Some [ "Array"; ("make" | "init") ] -> (
          match List.rev args with
          | (_, last) :: _ -> floatish last
          | [] -> false)
      | Some [ "Array"; ("copy" | "append" | "sub" | "map") ] ->
          List.exists (fun (_, a) -> float_arrayish a) args
      | _ -> false)
  | Pexp_constraint (inner, ct) ->
      is_float_array_type ct || float_arrayish inner
  | _ -> false

let is_zero_float e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float (s, _)) -> (
      match float_of_string s with
      | f -> f = 0.0
      | exception Failure _ -> false)
  | _ -> false

let diag ctx ~rule ~loc ~message ~hint =
  Diagnostic.make ~rule ~file:ctx.file ~loc ~message ~hint

(* ------------------------------------------------------------------ *)
(* poly-compare: polymorphic compare/min/max reaching float or
   structured values.  Generic ordering operators on floats follow IEEE
   semantics in the runtime, but [compare] imposes a total order that
   disagrees with [<], and [min]/[max] drop NaN or keep it depending on
   argument order — in a verifier that silently corrupts bounds. *)

let poly_cmp_kind = function
  | [ "compare" ] -> Some "compare"
  | [ "min" ] -> Some "min"
  | [ "max" ] -> Some "max"
  | _ -> None

let poly_compare_rule =
  {
    id = "poly-compare";
    summary =
      "polymorphic compare/min/max applied to (or passed over) float or \
       structured values";
    check =
      (fun ctx str ->
        let acc = ref [] in
        iter_exprs str (fun e ->
            match e.pexp_desc with
            | Pexp_apply (f, args) ->
                (* (Dis)equality on arrays of floats: element-wise
                   structural [=] runs the polymorphic float path, where
                   [-0.0 = 0.0] and NaN is unequal to itself — so two
                   bit-different boxes can compare equal.  Scalar float
                   (dis)equality belongs to the float-eq rule. *)
                (match (path_of_expr f, args) with
                | Some [ (("=" | "<>") as op) ], [ (_, a); (_, b) ]
                  when float_arrayish a || float_arrayish b ->
                    acc :=
                      diag ctx ~rule:"poly-compare" ~loc:e.pexp_loc
                        ~message:
                          (Printf.sprintf
                             "polymorphic %s on an array of floats compares \
                              elements with float structural equality"
                             op)
                        ~hint:
                          "compare per element with Float.equal (NaN-total, \
                           -0.0 distinct), or [@lint.allow \"poly-compare\"] \
                           when IEEE semantics are the intent"
                      :: !acc
                | _ -> ());
                (match Option.bind (path_of_expr f) poly_cmp_kind with
                | Some kind
                  when List.exists
                         (fun (_, a) -> floatish a || structured a)
                         args ->
                    let hint =
                      if String.equal kind "compare" then
                        "use Float.compare (or a field-wise compare for \
                         structured data)"
                      else
                        Printf.sprintf
                          "use Float.%s: polymorphic %s keeps or drops NaN \
                           depending on argument order" kind kind
                    in
                    acc :=
                      diag ctx ~rule:"poly-compare" ~loc:e.pexp_loc
                        ~message:
                          (Printf.sprintf
                             "polymorphic %s applied to a float or structured \
                              expression"
                             kind)
                        ~hint
                      :: !acc
                | _ -> ());
                List.iter
                  (fun (_, a) ->
                    match Option.bind (path_of_expr a) poly_cmp_kind with
                    | Some kind ->
                        acc :=
                          diag ctx ~rule:"poly-compare" ~loc:a.pexp_loc
                            ~message:
                              (Printf.sprintf
                                 "polymorphic %s passed as a comparison \
                                  function"
                                 kind)
                            ~hint:
                              (Printf.sprintf
                                 "pass Float.%s (or a type-specific function) \
                                  so NaN and structured data compare \
                                  deterministically"
                                 kind)
                          :: !acc
                    | None -> ())
                  args
            | _ -> ());
        !acc);
  }

(* ------------------------------------------------------------------ *)
(* domain-unsafe-global: toplevel mutable state, and shared-mutable type
   declarations, in libraries whose code can run on Parallel.Pool worker
   domains.  Atomics are flagged too — not as bugs, but so every piece
   of cross-domain state carries a documented discipline. *)

let mutable_maker = Astq.mutable_maker

let shared_mutable_fields = Astq.shared_mutable_fields

(* A declaration carrying any [@race.*] annotation is exempt here: it
   states a discipline that the interprocedural race pass
   machine-checks (docs/lint.md, "Interprocedural passes"). *)
let race_annotated_value vb =
  Astq.has_race_attr vb.pvb_attributes
  || Astq.has_race_attr (Astq.peel_constraint vb.pvb_expr).pexp_attributes

let race_annotated_type decl =
  Astq.has_race_attr decl.ptype_attributes
  ||
  match decl.ptype_kind with
  | Ptype_record labels ->
      List.exists (fun l -> Astq.has_race_attr l.pld_attributes) labels
  | _ -> false

let domain_unsafe_rule =
  {
    id = "domain-unsafe-global";
    summary =
      "toplevel mutable state or shared-mutable types in libraries reachable \
       from Parallel.Pool workers";
    check =
      (fun ctx str ->
        if not ctx.parallel_reachable then []
        else begin
          let acc = ref [] in
          let flag_value vb =
            match mutable_maker vb.pvb_expr with
            | Some kind when not (race_annotated_value vb) ->
                acc :=
                  diag ctx ~rule:"domain-unsafe-global" ~loc:vb.pvb_loc
                    ~message:
                      (Printf.sprintf
                         "toplevel mutable state (%s) in a module reachable \
                          from Parallel.Pool workers"
                         kind)
                    ~hint:
                      "declare the discipline with [@@race.guarded_by \
                       \"m\"] / [@@race.atomic] / [@@race.domain_local] \
                       (machine-checked by --pass race), allocate per use or \
                       per domain, or [@@lint.allow \"domain-unsafe-global\"]"
                  :: !acc
            | _ -> ()
          in
          let flag_type decl =
            match shared_mutable_fields decl with
            | _ when race_annotated_type decl -> ()
            | [] -> ()
            | fields ->
                let names = String.concat ", " (List.map fst fields) in
                let unsync =
                  List.exists (fun (_, k) -> String.equal k "mutable") fields
                in
                acc :=
                  diag ctx ~rule:"domain-unsafe-global" ~loc:decl.ptype_loc
                    ~message:
                      (Printf.sprintf
                         "%s type in a parallel-reachable library (%s): \
                          values may be shared across worker domains"
                         (if unsync then "mutable" else "shared-mutable")
                         names)
                    ~hint:
                      "declare the discipline with [@@race.guarded_by \"m\"] \
                       / [@@race.atomic] / [@@race.domain_local] on the type \
                       or its fields (machine-checked by --pass race), \
                       confine values to a single domain, or [@@lint.allow \
                       \"domain-unsafe-global\"]"
                  :: !acc
          in
          let rec walk_items items = List.iter walk_item items
          and walk_item item =
            match item.pstr_desc with
            | Pstr_value (_, vbs) -> List.iter flag_value vbs
            | Pstr_type (_, decls) -> List.iter flag_type decls
            | Pstr_module mb -> walk_module mb.pmb_expr
            | Pstr_recmodule mbs ->
                List.iter (fun mb -> walk_module mb.pmb_expr) mbs
            | Pstr_include i -> walk_module i.pincl_mod
            | _ -> ()
          and walk_module me =
            match me.pmod_desc with
            | Pmod_structure items -> walk_items items
            | Pmod_constraint (m, _) -> walk_module m
            | Pmod_functor (_, m) -> walk_module m
            | _ -> ()
          in
          walk_items str;
          !acc
        end);
  }

(* ------------------------------------------------------------------ *)
(* float-eq: (dis)equality on float values.  Comparisons against a
   literal zero are exempt — exact-zero sparsity and sign tests are
   IEEE-exact and idiomatic in the kernels.  [==]/[!=] on floats are
   flagged unconditionally: they compare boxes, not values. *)

let float_eq_rule =
  {
    id = "float-eq";
    summary = "= / == (dis)equality on float expressions";
    check =
      (fun ctx str ->
        let acc = ref [] in
        iter_exprs str (fun e ->
            match e.pexp_desc with
            | Pexp_apply (f, [ (_, a); (_, b) ]) -> (
                match path_of_expr f with
                | Some [ (("=" | "<>") as op) ]
                  when (floatish a || floatish b)
                       && not (is_zero_float a || is_zero_float b) ->
                    acc :=
                      diag ctx ~rule:"float-eq" ~loc:e.pexp_loc
                        ~message:
                          (Printf.sprintf
                             "float (dis)equality via polymorphic %s is \
                              representation-exact and NaN-hostile"
                             op)
                        ~hint:
                          "compare within a tolerance, or [@lint.allow \
                           \"float-eq\"] with a comment when bit-exactness is \
                           the intent (exact-zero tests are always exempt)"
                      :: !acc
                | Some [ (("==" | "!=") as op) ] when floatish a || floatish b
                  ->
                    acc :=
                      diag ctx ~rule:"float-eq" ~loc:e.pexp_loc
                        ~message:
                          (Printf.sprintf
                             "physical %s on floats compares boxes, not \
                              values"
                             op)
                        ~hint:"use Float.equal or an epsilon comparison"
                      :: !acc
                | _ -> ())
            | _ -> ());
        !acc);
  }

(* ------------------------------------------------------------------ *)
(* unsafe-array: unchecked accessors outside the audited-kernel
   allowlist.  Matches any module-qualified identifier whose last
   component starts with "unsafe_", so Bytes/String/Float.Array
   variants are covered too. *)

let unsafe_array_rule =
  {
    id = "unsafe-array";
    summary = "Array.unsafe_get/set (and friends) outside audited kernels";
    check =
      (fun ctx str ->
        if List.mem ctx.file ctx.unsafe_allowlist then []
        else begin
          let acc = ref [] in
          iter_exprs str (fun e ->
              match e.pexp_desc with
              | Pexp_ident { txt; _ } -> (
                  match Option.map norm (ident_path txt) with
                  | Some p -> (
                      (* Only module-qualified accessors: a bare local
                         identifier that happens to be named unsafe_*
                         is not an unchecked access. *)
                      match List.rev p with
                      | last :: _ :: _
                        when String.starts_with ~prefix:"unsafe_" last ->
                          acc :=
                            diag ctx ~rule:"unsafe-array" ~loc:e.pexp_loc
                              ~message:
                                (Printf.sprintf
                                   "unchecked access %s outside the audited \
                                    kernel allowlist"
                                   (String.concat "." p))
                              ~hint:
                                "prove the bounds locally and [@lint.allow \
                                 \"unsafe-array\"], or use checked indexing"
                            :: !acc
                      | _ -> ())
                  | None -> ())
              | _ -> ());
          !acc
        end);
  }

(* ------------------------------------------------------------------ *)
(* catch-all-exn: [try ... with _ ->] (or a variable pattern) that does
   not re-raise can absorb Out_of_memory, Stack_overflow or
   Assert_failure into an ordinary value — in a verifier, into a
   verdict. *)

let rec catches_everything p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> catches_everything p
  | Ppat_or (a, b) -> catches_everything a || catches_everything b
  | _ -> false

(* A handler that calls one of these is either re-raising directly or
   parking the exception with its backtrace for a later
   [Printexc.raise_with_backtrace] (the failure-propagation idiom in
   Kpool: the round must still drain, so the first exception is stored
   and re-raised in the caller). *)
let reraise_names =
  [
    "raise"; "raise_notrace"; "reraise"; "raise_with_backtrace";
    "get_raw_backtrace";
  ]

let mentions_reraise e =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let it =
    {
      super with
      Ast_iterator.expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
              match Option.map norm (ident_path txt) with
              | Some p -> (
                  match List.rev p with
                  | last :: _ when List.mem last reraise_names -> found := true
                  | _ -> ())
              | None -> ())
          | _ -> ());
          super.expr self e);
    }
  in
  it.expr it e;
  !found

let catch_all_rule =
  {
    id = "catch-all-exn";
    summary = "try ... with _ -> that swallows every exception";
    check =
      (fun ctx str ->
        let acc = ref [] in
        iter_exprs str (fun e ->
            match e.pexp_desc with
            | Pexp_try (_, cases) ->
                List.iter
                  (fun c ->
                    if
                      catches_everything c.pc_lhs
                      && Option.is_none c.pc_guard
                      && not (mentions_reraise c.pc_rhs)
                    then
                      acc :=
                        diag ctx ~rule:"catch-all-exn" ~loc:c.pc_lhs.ppat_loc
                          ~message:
                            "catch-all handler can absorb Out_of_memory / \
                             Stack_overflow / Assert_failure into a result"
                          ~hint:
                            "match the specific exceptions, re-raise after \
                             cleanup, or [@lint.allow \"catch-all-exn\"] with \
                             a comment when total absorption is intended"
                        :: !acc)
                  cases
            | _ -> ());
        !acc);
  }

(* ------------------------------------------------------------------ *)
(* printf-in-lib: stdout printing from library code corrupts composed
   output (JSON reports, piped CLIs) and bypasses the logs facility.
   Report-generator modules whose product *is* stdout text may opt out
   with a file-level [@@@lint.allow "printf-in-lib"]. *)

let stdout_printers =
  [
    "print_string"; "print_endline"; "print_newline"; "print_int";
    "print_float"; "print_char"; "print_bytes";
  ]

let printf_rule =
  {
    id = "printf-in-lib";
    summary = "stdout printing from library code";
    check =
      (fun ctx str ->
        if not ctx.in_lib then []
        else begin
          let acc = ref [] in
          let flag loc name =
            acc :=
              diag ctx ~rule:"printf-in-lib" ~loc
                ~message:
                  (Printf.sprintf "library code prints to stdout (%s)" name)
                ~hint:
                  "return a string, take a Format.formatter, use Logs, or \
                   [@@@lint.allow \"printf-in-lib\"] at the top of a report \
                   module"
              :: !acc
          in
          iter_exprs str (fun e ->
              match e.pexp_desc with
              | Pexp_ident { txt; _ } -> (
                  match Option.map norm (ident_path txt) with
                  | Some ([ f ] as p) when List.mem f stdout_printers ->
                      flag e.pexp_loc (String.concat "." p)
                  | Some ([ "Printf"; "printf" ] as p) ->
                      flag e.pexp_loc (String.concat "." p)
                  | Some ([ "Format"; f ] as p)
                    when String.equal f "printf"
                         || String.starts_with ~prefix:"print_" f ->
                      flag e.pexp_loc (String.concat "." p)
                  | Some ([ "Fmt"; "pr" ] as p) ->
                      flag e.pexp_loc (String.concat "." p)
                  | _ -> ())
              | _ -> ());
          !acc
        end);
  }

(* ------------------------------------------------------------------ *)

let all =
  [
    poly_compare_rule;
    domain_unsafe_rule;
    float_eq_rule;
    unsafe_array_rule;
    catch_all_rule;
    printf_rule;
  ]

let check_all ctx str = List.concat_map (fun r -> r.check ctx str) all
