(** The interprocedural race pass: machine-checks the [[@race.*]]
    discipline annotations against the whole-repo call graph.

    Annotations (see docs/lint.md for the reference table):

    - [[@@race.guarded_by "m"]] on a toplevel binding, type declaration,
      or record field: every access must occur in a function that
      acquires a mutex matching [m] ([Mutex.lock]/[Mutex.protect]/
      [Condition.wait], directly or through a same-file lock-wrapper
      like [with_lock]), or that is itself marked [[@@race.locked "m"]].
      Matching is by dotted-path suffix, so the type-level guard
      ["mutex"] matches an acquisition of [t.mutex].
    - [[@@race.atomic]]: the binding's right-hand side must be
      [Atomic.make] (resp. every shared-mutable field of the type must
      be [Atomic]-based); accesses are then type-safe by construction.
    - [[@@race.domain_local]]: the checker trusts the stated
      confinement (per-domain values, index-disjoint writes) and stops
      flagging accesses.
    - [[@@race.read_only]]: immutable after initialisation; syntactic
      writes anywhere are flagged.
    - [[@@race.locked "m"]] on a function: declares the precondition
      "caller holds [m]"; every resolvable call site is checked.

    Rule ids: [race-unguarded-global] (undisciplined mutable global
    touched by domain-reachable code, or a write to [read_only] state),
    [race-wrong-mutex] (guarded access without a matching acquisition),
    [race-captured-escape] (local mutable state written across a spawn
    boundary), [race-locked-caller] (call to a [locked] function
    without its mutex), [race-bad-annotation] (malformed or
    unverifiable annotation). *)

(** (id, summary) for [--list-rules] and the docs-sync test. *)
val rules : (string * string) list

val rule_ids : string list

(** Analyze every parsed file as one program.  [parallel_reachable]
    is the dune-graph predicate from {!Deps.parallel_reachable}:
    undisciplined globals are only flagged in libraries whose code can
    run on worker domains.  Findings are not suppression-filtered. *)
val analyze :
  files:(string * Parsetree.structure) list ->
  libs:Deps.lib list ->
  parallel_reachable:(string -> bool) ->
  Diagnostic.t list
