open Parsetree

type decl = {
  did : int;
  file : string;
  name : string;
  body : Parsetree.expression;
  attrs : Parsetree.attributes;
  loc : Location.t;
}

type t = {
  all : decl array;
  by_file : (string, (string, int) Hashtbl.t) Hashtbl.t;
      (* file -> binding name -> did *)
  file_decls : (string, int list) Hashtbl.t;  (* file -> dids, source order *)
  lib_of : (string, string) Hashtbl.t;  (* file -> dune library name *)
  module_file : (string * string, string) Hashtbl.t;
      (* (lib, Module) -> file *)
  lib_by_module : (string, string) Hashtbl.t;
      (* capitalized lib name -> lib name *)
  mutable is_reachable : bool array;
}

let spawn_suffixes =
  [
    [ "Domain"; "spawn" ];
    [ "Pool"; "run" ];
    [ "Pool"; "iter" ];
    [ "Kpool"; "run" ];
  ]

let suffix_matches path suffix =
  let lp = List.length path and ls = List.length suffix in
  lp >= ls
  && List.equal String.equal
       (List.filteri (fun i _ -> i >= lp - ls) path)
       suffix

let spawn_head path = List.exists (suffix_matches path) spawn_suffixes

let module_name_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

(* The toplevel value bindings of one structure, descending into plain
   nested modules with a dotted prefix.  [let () = ...] and other
   unnamed patterns get a synthetic name: they cannot be referenced,
   but they can contain spawn sites and so must exist as nodes. *)
let decls_of_structure str =
  let out = ref [] in
  let anon = ref 0 in
  let add ~prefix vb =
    let name =
      match (vb.pvb_pat.ppat_desc : pattern_desc) with
      | Ppat_var { txt; _ } -> Some txt
      | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
      | _ -> None
    in
    let name =
      match name with
      | Some n -> if prefix = "" then n else prefix ^ "." ^ n
      | None ->
          incr anon;
          Printf.sprintf "_anon%d" !anon
    in
    out := (name, vb.pvb_expr, vb.pvb_attributes, vb.pvb_loc) :: !out
  in
  let sub_prefix prefix = function
    | None -> prefix
    | Some n -> if prefix = "" then n else prefix ^ "." ^ n
  in
  let rec walk_items ~prefix items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) -> List.iter (add ~prefix) vbs
        | Pstr_module mb ->
            walk_module ~prefix:(sub_prefix prefix mb.pmb_name.txt) mb.pmb_expr
        | Pstr_recmodule mbs ->
            List.iter
              (fun mb ->
                walk_module
                  ~prefix:(sub_prefix prefix mb.pmb_name.txt)
                  mb.pmb_expr)
              mbs
        | Pstr_include i -> walk_module ~prefix i.pincl_mod
        | _ -> ())
      items
  and walk_module ~prefix me =
    match me.pmod_desc with
    | Pmod_structure items -> walk_items ~prefix items
    | Pmod_constraint (m, _) -> walk_module ~prefix m
    | Pmod_functor (_, m) -> walk_module ~prefix m
    | _ -> ()
  in
  walk_items ~prefix:"" str;
  List.rev !out

let resolve t ~file path =
  let in_file file name =
    Option.bind (Hashtbl.find_opt t.by_file file) (fun tbl ->
        Hashtbl.find_opt tbl name)
  in
  let r =
    match path with
    | [] -> None
    | [ x ] -> in_file file x
    | first :: rest -> (
        (* A dotted path: a nested module of this file, a sibling
           module of the same library, or a fully qualified
           Lib.Module.name through the dune graph. *)
        match in_file file (String.concat "." path) with
        | Some d -> Some d
        | None -> (
            let same_lib () =
              Option.bind (Hashtbl.find_opt t.lib_of file) (fun lib ->
                  Option.bind
                    (Hashtbl.find_opt t.module_file (lib, first))
                    (fun f' -> in_file f' (String.concat "." rest)))
            in
            let cross_lib () =
              match rest with
              | m :: (_ :: _ as rest') ->
                  Option.bind
                    (Hashtbl.find_opt t.lib_by_module first)
                    (fun lib ->
                      Option.bind
                        (Hashtbl.find_opt t.module_file (lib, m))
                        (fun f' -> in_file f' (String.concat "." rest')))
              | _ -> None
            in
            match same_lib () with Some d -> Some d | None -> cross_lib ()))
  in
  Option.map (fun i -> t.all.(i)) r

let build ~files ~libs =
  let all =
    let next = ref 0 in
    Array.of_list
      (List.concat_map
         (fun (file, str) ->
           List.map
             (fun (name, body, attrs, loc) ->
               let did = !next in
               incr next;
               { did; file; name; body; attrs; loc })
             (decls_of_structure str))
         files)
  in
  let by_file = Hashtbl.create 64 in
  let file_decls = Hashtbl.create 64 in
  Array.iter
    (fun d ->
      let tbl =
        match Hashtbl.find_opt by_file d.file with
        | Some tbl -> tbl
        | None ->
            let tbl = Hashtbl.create 16 in
            Hashtbl.add by_file d.file tbl;
            tbl
      in
      (* Later bindings shadow earlier ones of the same name, matching
         the language's own scoping for references below them. *)
      Hashtbl.replace tbl d.name d.did;
      Hashtbl.replace file_decls d.file
        (d.did
        :: Option.value ~default:[] (Hashtbl.find_opt file_decls d.file)))
    all;
  Hashtbl.filter_map_inplace
    (fun _file dids -> Some (List.rev dids))
    file_decls;
  let lib_of = Hashtbl.create 64 in
  let module_file = Hashtbl.create 64 in
  List.iter
    (fun (file, _) ->
      match Deps.lib_of_file libs file with
      | Some l ->
          Hashtbl.replace lib_of file l.Deps.name;
          Hashtbl.replace module_file
            (l.Deps.name, module_name_of_file file)
            file
      | None -> ())
    files;
  let lib_by_module = Hashtbl.create 16 in
  List.iter
    (fun (l : Deps.lib) ->
      Hashtbl.replace lib_by_module (String.capitalize_ascii l.name) l.name)
    libs;
  let t =
    {
      all;
      by_file;
      file_decls;
      lib_of;
      module_file;
      lib_by_module;
      is_reachable = [||];
    }
  in
  (* Reference edges and spawn roots, in one sweep per binding. *)
  let refs = Array.make (Array.length all) [] in
  let roots = ref [] in
  Array.iter
    (fun d ->
      let acc = ref [] in
      Astq.iter_expr d.body (fun e ->
          match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
              match Option.map Astq.norm (Astq.ident_path txt) with
              | Some path -> (
                  if spawn_head path then roots := d.did :: !roots;
                  match resolve t ~file:d.file path with
                  | Some target -> acc := target.did :: !acc
                  | None -> ())
              | None -> ())
          | _ -> ());
      refs.(d.did) <- !acc)
    all;
  let is_reachable = Array.make (Array.length all) false in
  let queue = Queue.create () in
  let visit did =
    if not is_reachable.(did) then begin
      is_reachable.(did) <- true;
      Queue.add did queue
    end
  in
  List.iter visit !roots;
  while not (Queue.is_empty queue) do
    List.iter visit refs.(Queue.pop queue)
  done;
  t.is_reachable <- is_reachable;
  t

let decls t = Array.to_list t.all

let decls_of_file t file =
  match Hashtbl.find_opt t.file_decls file with
  | Some dids -> List.map (fun i -> t.all.(i)) dids
  | None -> []

let reachable t d = t.is_reachable.(d.did)
