(** An approximate whole-repo call graph over parsed implementations.

    Nodes are the toplevel value bindings of every scanned [.ml] file
    (bindings inside nested [module S = struct ... end] items are
    registered under the dotted name ["S.f"]).  Edges are resolved
    identifier references: any occurrence of a name inside a binding's
    body that resolves — same file first, then a sibling module of the
    same dune library, then a fully qualified [Lib.Module.name] path
    through the library graph — counts as a reference, whether it is a
    call, a partial application, or a value use.

    On top of the graph sits **domain-reachability**: a binding is a
    spawn root when its body syntactically contains an application of a
    parallel entry point ([Domain.spawn], [Pool.run], [Pool.iter],
    [Kpool.run], matched by path suffix so any qualification works);
    the domain-reachable set is everything transitively referenced from
    a root.  Roots include the enclosing binding itself because every
    entry point in this repo also runs tasks on the calling domain.

    Known approximations (documented in docs/lint.md): references are
    name-based, so [open]ed or module-aliased paths may not resolve
    (missed edges), and locally shadowed names may over-resolve (extra
    edges).  Reachability is therefore an approximation in both
    directions; the race pass compensates by checking annotated
    disciplines in *every* function, reachable or not. *)

type decl = {
  did : int;  (** dense index, usable with [reachable] *)
  file : string;  (** root-relative path of the defining file *)
  name : string;  (** ["f"], ["Sub.f"], or ["_anonN"] for [let () = ...] *)
  body : Parsetree.expression;
  attrs : Parsetree.attributes;  (** the binding's [[@@...]] attributes *)
  loc : Location.t;
}

type t

(** Head paths (already normalised) that hand work to another domain. *)
val spawn_head : string list -> bool

val build :
  files:(string * Parsetree.structure) list -> libs:Deps.lib list -> t

val decls : t -> decl list

val decls_of_file : t -> string -> decl list

(** Resolve a normalised identifier path as seen from [file]. *)
val resolve : t -> file:string -> string list -> decl option

(** The binding can run on a non-main domain. *)
val reachable : t -> decl -> bool
