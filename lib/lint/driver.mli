(** The linter driver: walk the tree, parse every [.ml] with
    compiler-libs, run the rule registry, apply [[@lint.allow]]
    suppression, and render the result.

    The driver never prints — it returns strings — so library code
    stays clean under its own [printf-in-lib] rule; [bin/lint.exe] does
    the printing and owns the exit code. *)

type result = {
  files_scanned : int;
  findings : Diagnostic.t list;  (** active findings, in source order *)
  suppressed : Diagnostic.t list;
      (** findings silenced by [[@lint.allow]], kept as the audit trail *)
  errors : (string * string) list;
      (** files the parser rejected: (path, message) *)
}

(** [lint ~root ~paths ()] lints every [.ml] under the root-relative
    [paths] (files or directories; directories recurse, skipping
    [_*]/dot entries).  The dune dependency graph is scanned from the
    same paths; [parallel_roots] (default [["parallel"]]) seeds the
    reachability analysis of the [domain-unsafe-global] rule, and
    [unsafe_allowlist] (default [["lib/linalg/mat.ml"]]) names the
    audited kernels exempt from [unsafe-array]. *)
val lint :
  ?parallel_roots:string list ->
  ?unsafe_allowlist:string list ->
  root:string ->
  paths:string list ->
  unit ->
  result

val render_text : ?show_suppressed:bool -> result -> string

(** Schema: [{"tool","version","files","findings":[...],
    "suppressed":[...],"errors":[...]}], each diagnostic an object with
    [file], [line], [col], [rule], [message], [hint]. *)
val render_json : result -> string

val list_rules_text : unit -> string

(** [true] iff there are neither findings nor parse errors. *)
val clean : result -> bool
