(** The linter driver: walk the tree, parse every [.ml] with
    compiler-libs (once — the passes share the trees), run the selected
    passes, apply [[@lint.allow]] suppression, and render the result.

    The driver never prints — it returns strings — so library code
    stays clean under its own [printf-in-lib] rule; [bin/lint.exe] does
    the printing and owns the exit code. *)

(** [Syntactic] runs the per-file rules of {!Rules.all}; [Race] runs the
    interprocedural {!Race.analyze} pass over the whole file set. *)
type pass = Syntactic | Race

type result = {
  files_scanned : int;
  findings : Diagnostic.t list;  (** active findings, in source order *)
  suppressed : Diagnostic.t list;
      (** findings silenced by [[@lint.allow]], kept as the audit trail *)
  errors : (string * string) list;
      (** files the parser rejected: (path, message) *)
}

(** Every known rule id, syntactic rules first then race rules, in
    listing order. *)
val rule_ids : unit -> string list

(** [lint ~root ~paths ()] lints every [.ml] under the root-relative
    [paths] (files or directories; directories recurse, skipping
    [_*]/dot entries).

    [passes] selects which passes run (default: both).  [only] keeps
    only the named rules (empty = all); [exclude] then drops the named
    ones.  The filters apply before the passes run, so a fully
    filtered-out pass costs nothing.  The dune dependency graph is
    scanned from the same paths; [parallel_roots] (default
    [["parallel"]]) seeds the domain-reachability analysis shared by
    [domain-unsafe-global] and the race pass, and [unsafe_allowlist]
    (default [["lib/linalg/mat.ml"]]) names the audited kernels exempt
    from [unsafe-array].  Suppression spans apply to findings from
    every pass. *)
val lint :
  ?passes:pass list ->
  ?only:string list ->
  ?exclude:string list ->
  ?parallel_roots:string list ->
  ?unsafe_allowlist:string list ->
  root:string ->
  paths:string list ->
  unit ->
  result

val render_text : ?show_suppressed:bool -> result -> string

(** Schema: [{"tool","version","files","findings":[...],
    "suppressed":[...],"errors":[...]}], each diagnostic an object with
    [file], [line], [col], [rule], [message], [hint]. *)
val render_json : result -> string

(** One line per rule, id then summary, syntactic rules first. *)
val list_rules_text : unit -> string

(** [true] iff there are neither findings nor parse errors. *)
val clean : result -> bool
