(** The rule registry.

    Every rule is a purely-syntactic pass over one parsed [.ml] file.
    The linter runs without the typer, so "float-typed" is a heuristic:
    float literals, applications of float primitives ([+.], [sqrt],
    [Float.*], ...), and the float constants ([nan], [infinity], ...)
    count; an identifier of float type does not.  False negatives are
    accepted; every reported finding should be worth reading. *)

type ctx = {
  file : string;  (** root-relative path, used in diagnostics *)
  in_lib : bool;  (** file lives under a [lib/] tree *)
  parallel_reachable : bool;
      (** file's library can run on [Parallel.Pool] worker domains *)
  unsafe_allowlist : string list;
      (** files where [unsafe-array] is pre-audited and silent *)
}

type rule = {
  id : string;
  summary : string;  (** one line for [--list-rules] and docs *)
  check : ctx -> Parsetree.structure -> Diagnostic.t list;
}

(** The registry, in fixed order.  Ids: [poly-compare],
    [domain-unsafe-global], [float-eq], [unsafe-array], [catch-all-exn],
    [printf-in-lib]. *)
val all : rule list

(** Run every rule on one file.  Findings are not yet
    suppression-filtered and not sorted. *)
val check_all : ctx -> Parsetree.structure -> Diagnostic.t list
