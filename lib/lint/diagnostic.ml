type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
  hint : string;
}

let make ~rule ~file ~(loc : Location.t) ~message ~hint =
  let p = loc.loc_start in
  { rule; file; line = p.pos_lnum; col = p.pos_cnum - p.pos_bol; message; hint }

let order a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let to_string d =
  Printf.sprintf "%s:%d:%d: %s: %s" d.file d.line d.col d.rule d.message
