type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          render buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          render buf (Str k);
          Buffer.add_char buf ':';
          render buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  render buf t;
  Buffer.contents buf
