(** The library dependency graph, recovered from [dune] files.

    The [domain-unsafe-global] rule needs to know which libraries can
    have their code executed by [Parallel.Pool] worker domains.  A
    worker runs a closure built in a library that links [parallel], and
    that closure may call into any of that library's (transitive)
    dependencies — so the "parallel-reachable" set is the union, over
    every library [U] that transitively depends on a parallel root, of
    [{U} ∪ transitive-deps(U)], plus the roots themselves. *)

type lib = {
  name : string;  (** dune library name *)
  dir : string;  (** root-relative directory holding its [dune] file *)
  deps : string list;  (** the [(libraries ...)] field, verbatim *)
}

(** Parse every [dune] file found under [paths] (root-relative
    directories, searched recursively below [root]) and return the
    [(library ...)] stanzas found.  Non-library stanzas and unreadable
    files are skipped; external libraries appear only as [deps]
    entries. *)
val scan : root:string -> paths:string list -> lib list

(** [parallel_reachable libs ~roots] is a predicate on library names:
    true iff code of that library can run on a worker domain of one of
    the [roots] libraries (by the closure rule above).  Names not in
    [libs] (external libraries) are never reachable. *)
val parallel_reachable : lib list -> roots:string list -> string -> bool

(** The library whose [dune] directory is the parent of the given
    root-relative file path, if any. *)
val lib_of_file : lib list -> string -> lib option
