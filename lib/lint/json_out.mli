(** A tiny JSON writer — just enough structure for the linter's
    [--json] output, kept dependency-free so the lint library links
    against compiler-libs alone. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering with standard string escaping. *)
val to_string : t -> string
