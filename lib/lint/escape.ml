open Parsetree

type hit = { name : string; kind : string; loc : Location.t }

(* Environment: innermost binding first.  [gen] is the number of spawn
   boundaries enclosing the binding site; a write at a deeper [gen]
   than its target's crossed a domain boundary. *)
type entry = { e_name : string; e_kind : string option; e_gen : int }

let lookup env name = List.find_opt (fun e -> String.equal e.e_name name) env

let mask env names gen =
  List.fold_left
    (fun env n -> { e_name = n; e_kind = None; e_gen = gen } :: env)
    env names

let check body =
  let hits = ref [] in
  (* Local identifiers handed by name to a spawn point anywhere in this
     binding: their defining closures run on other domains. *)
  let spawned_names = ref [] in
  Astq.iter_expr body (fun e ->
      match e.pexp_desc with
      | Pexp_apply (head, args)
        when (match Astq.path_of_expr head with
             | Some p -> Callgraph.spawn_head p
             | None -> false) ->
          List.iter
            (fun (_, a) ->
              match Astq.path_of_expr a with
              | Some [ x ] -> spawned_names := x :: !spawned_names
              | _ -> ())
            args
      | _ -> ());
  let spawned_names = !spawned_names in
  let flag env gen loc name =
    match lookup env name with
    | Some { e_kind = Some kind; e_gen; _ } when e_gen < gen ->
        hits := { name; kind; loc } :: !hits
    | _ -> ()
  in
  let rec walk env gen e =
    match e.pexp_desc with
    | Pexp_let (rf, vbs, inner) ->
        let names = List.concat_map (fun vb -> Astq.pat_vars vb.pvb_pat) vbs in
        let rhs_env =
          match rf with
          | Asttypes.Recursive -> mask env names gen
          | Asttypes.Nonrecursive -> env
        in
        let env' =
          List.fold_left
            (fun env' vb ->
              (* Walk the right-hand side; a let-bound closure that is
                 later passed to a spawn point is walked as if it were
                 an inline closure literal at the spawn site. *)
              let vars = Astq.pat_vars vb.pvb_pat in
              let body_gen =
                match vars with
                | [ n ]
                  when List.mem n spawned_names && Astq.is_function_expr vb.pvb_expr ->
                    gen + 1
                | _ -> gen
              in
              walk rhs_env body_gen vb.pvb_expr;
              match vars with
              | [ n ] ->
                  let exempt =
                    Astq.has_race_attr vb.pvb_attributes
                    || Astq.has_race_attr vb.pvb_expr.pexp_attributes
                  in
                  let kind =
                    match Astq.mutable_maker vb.pvb_expr with
                    | Some k when (not exempt) && not (String.equal k "atomic")
                      ->
                        Some k
                    | _ -> None
                  in
                  { e_name = n; e_kind = kind; e_gen = gen } :: env'
              | ns -> mask env' ns gen)
            env vbs
        in
        walk env' gen inner
    | Pexp_fun (_, default, pat, inner) ->
        Option.iter (walk env gen) default;
        walk (mask env (Astq.pat_vars pat) gen) gen inner
    | Pexp_function cases -> walk_cases env gen cases
    | Pexp_match (e0, cases) | Pexp_try (e0, cases) ->
        walk env gen e0;
        walk_cases env gen cases
    | Pexp_for (pat, a, b, _, inner) ->
        walk env gen a;
        walk env gen b;
        walk (mask env (Astq.pat_vars pat) gen) gen inner
    | Pexp_setfield (e0, _, v) ->
        (match Astq.path_of_expr e0 with
        | Some [ x ] -> flag env gen e.pexp_loc x
        | _ -> ());
        walk env gen e0;
        walk env gen v
    | Pexp_apply (head, args) ->
        let hp = Astq.path_of_expr head in
        let spawning =
          match hp with Some p -> Callgraph.spawn_head p | None -> false
        in
        (match hp with
        | Some [ ":=" ] -> (
            match args with
            | (_, lhs) :: _ -> (
                match Astq.path_of_expr lhs with
                | Some [ x ] -> flag env gen e.pexp_loc x
                | _ -> ())
            | [] -> ())
        | Some p when Astq.mutator_path p ->
            List.iter
              (fun (lbl, a) ->
                match (lbl, Astq.path_of_expr a) with
                | Asttypes.Nolabel, Some [ x ] -> flag env gen e.pexp_loc x
                | _ -> ())
              args
        | _ -> ());
        walk env gen head;
        List.iter
          (fun (_, a) ->
            if spawning && Astq.is_function_expr a then
              (* The closure literal crosses a domain boundary. *)
              walk env (gen + 1) a
            else walk env gen a)
          args
    | _ -> Astq.child_exprs e (walk env gen)
  and walk_cases env gen cases =
    List.iter
      (fun c ->
        let env' = mask env (Astq.pat_vars c.pc_lhs) gen in
        Option.iter (walk env' gen) c.pc_guard;
        walk env' gen c.pc_rhs)
      cases
  in
  walk [] 0 body;
  List.rev !hits
