(** Shared parsetree query helpers for the syntactic rules and the
    interprocedural race pass.

    Everything here is purely syntactic: the linter runs without the
    typer, so these helpers answer "what does the source say", never
    "what is the type". *)

(** [Longident.flatten] is fatal on [Lapply]; this version is total. *)
val ident_path : Longident.t -> string list option

(** Drop a leading ["Stdlib"], so [Stdlib.compare] and [compare] are
    treated alike. *)
val norm : string list -> string list

(** The (normalised) path of an identifier expression, if it is one. *)
val path_of_expr : Parsetree.expression -> string list option

(** Call [f] on every expression node of a structure (resp. of an
    expression, the node itself included). *)
val iter_exprs : Parsetree.structure -> (Parsetree.expression -> unit) -> unit

val iter_expr : Parsetree.expression -> (Parsetree.expression -> unit) -> unit

(** Call [f] on every expression that is an immediate child of the
    given node (its subexpressions, case bodies, binding bodies, ...),
    without recursing further. *)
val child_exprs : Parsetree.expression -> (Parsetree.expression -> unit) -> unit

(** Strip [Pexp_constraint] wrappers. *)
val peel_constraint : Parsetree.expression -> Parsetree.expression

(** Allocation sites of shared-mutable values, as (path, description)
    pairs: [ref], [Hashtbl.create], [Array.make], ... *)
val mutable_makers : (string list * string) list

(** [Some description] when the expression (constraints peeled)
    allocates shared-mutable state: an application of one of
    [mutable_makers], an array literal, a lazy thunk, or a record
    literal carrying ref cells. *)
val mutable_maker : Parsetree.expression -> string option

(** Type constructors whose values are shared-mutable. *)
val mutable_type_paths : string list list

(** The type mentions one of [mutable_type_paths], at any depth. *)
val mutable_core_type : Parsetree.core_type -> bool

(** Every [mutable_type_paths] constructor mentioned in the type. *)
val mutable_paths_of_core_type : Parsetree.core_type -> string list list

(** Fields (or the manifest) making a type declaration shared-mutable:
    [(name, "mutable" | "shared")]. *)
val shared_mutable_fields :
  Parsetree.type_declaration -> (string * string) list

(** The variables bound by a pattern. *)
val pat_vars : Parsetree.pattern -> string list

(** Peel the [fun p1 ... pn ->] chain of a binding body: the bound
    parameter names and the inner body. *)
val fun_params : Parsetree.expression -> string list * Parsetree.expression

(** The expression (constraints peeled) is a [fun]/[function] literal. *)
val is_function_expr : Parsetree.expression -> bool

(** Head paths of stdlib calls that mutate a positional argument:
    [Array.set], [Hashtbl.replace], [incr], ... *)
val mutator_path : string list -> bool

(** The dotted source path of an identifier-or-field-projection chain
    ([x], [t.mutex], [state.sink.oc]), if the expression is one. *)
val access_path : Parsetree.expression -> string option

(** Last ['.']-separated segment of a dotted path string. *)
val last_seg : string -> string

(** The attribute list carries some [[@race.*]] annotation. *)
val has_race_attr : Parsetree.attributes -> bool
