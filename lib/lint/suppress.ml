open Parsetree

type span = { rules : string list; start_line : int; end_line : int }

let attr_name = "lint.allow"

let split_rules s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char ',')
  |> List.filter_map (fun r ->
         let r = String.trim r in
         if String.equal r "" then None else Some r)

(* The payload of [@lint.allow "a b"]: a single string constant. *)
let rules_of_payload = function
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] -> (
      match split_rules s with [] -> [ "*" ] | rs -> rs)
  | PStr [] -> [ "*" ]
  | _ -> [ "*" ]

let spans_of_attrs ~(loc : Location.t) ~floating attrs acc =
  List.fold_left
    (fun acc (a : attribute) ->
      if String.equal a.attr_name.txt attr_name then
        {
          rules = rules_of_payload a.attr_payload;
          start_line = loc.loc_start.pos_lnum;
          end_line = (if floating then max_int else loc.loc_end.pos_lnum);
        }
        :: acc
      else acc)
    acc attrs

let collect (str : structure) =
  let acc = ref [] in
  let add ~loc ~floating attrs =
    acc := spans_of_attrs ~loc ~floating attrs !acc
  in
  let super = Ast_iterator.default_iterator in
  let iter =
    {
      super with
      expr =
        (fun self e ->
          add ~loc:e.pexp_loc ~floating:false e.pexp_attributes;
          super.expr self e);
      value_binding =
        (fun self vb ->
          add ~loc:vb.pvb_loc ~floating:false vb.pvb_attributes;
          super.value_binding self vb);
      type_declaration =
        (fun self td ->
          add ~loc:td.ptype_loc ~floating:false td.ptype_attributes;
          super.type_declaration self td);
      module_binding =
        (fun self mb ->
          add ~loc:mb.pmb_loc ~floating:false mb.pmb_attributes;
          super.module_binding self mb);
      structure_item =
        (fun self item ->
          (match item.pstr_desc with
          | Pstr_attribute a ->
              add ~loc:item.pstr_loc ~floating:true [ a ]
          | _ -> ());
          super.structure_item self item);
    }
  in
  iter.structure iter str;
  !acc

let is_suppressed spans ~rule ~line =
  List.exists
    (fun s ->
      line >= s.start_line && line <= s.end_line
      && (List.mem "*" s.rules || List.mem rule s.rules))
    spans
