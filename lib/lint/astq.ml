open Parsetree

let rec ident_path (li : Longident.t) =
  match li with
  | Lident s -> Some [ s ]
  | Ldot (p, s) -> Option.map (fun l -> l @ [ s ]) (ident_path p)
  | Lapply _ -> None

let norm = function "Stdlib" :: rest -> rest | p -> p

let path_of_expr e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Option.map norm (ident_path txt)
  | _ -> None

let iter_exprs str f =
  let super = Ast_iterator.default_iterator in
  let it =
    {
      super with
      Ast_iterator.expr =
        (fun self e ->
          f e;
          super.expr self e);
    }
  in
  it.structure it str

let iter_expr e f =
  let super = Ast_iterator.default_iterator in
  let it =
    {
      super with
      Ast_iterator.expr =
        (fun self e ->
          f e;
          super.expr self e);
    }
  in
  it.expr it e

(* One-level traversal: the collecting callback deliberately does not
   recurse, so running the default iterator on the node yields exactly
   its immediate subexpressions (through cases, bindings, etc.). *)
let child_exprs e f =
  let super = Ast_iterator.default_iterator in
  let it = { super with Ast_iterator.expr = (fun _self c -> f c) } in
  super.expr it e

let rec peel_constraint e =
  match e.pexp_desc with
  | Pexp_constraint (inner, _) -> peel_constraint inner
  | _ -> e

let mutable_makers =
  [
    ([ "ref" ], "ref cell");
    ([ "Hashtbl"; "create" ], "Hashtbl");
    ([ "Array"; "make" ], "array");
    ([ "Array"; "init" ], "array");
    ([ "Array"; "create_float" ], "array");
    ([ "Array"; "make_matrix" ], "array");
    ([ "Array"; "of_list" ], "array");
    ([ "Array"; "copy" ], "array");
    ([ "Bytes"; "create" ], "bytes");
    ([ "Bytes"; "make" ], "bytes");
    ([ "Buffer"; "create" ], "Buffer");
    ([ "Queue"; "create" ], "Queue");
    ([ "Stack"; "create" ], "Stack");
    ([ "Atomic"; "make" ], "atomic");
    ([ "Dynarray"; "create" ], "Dynarray");
    ([ "Weak"; "create" ], "weak array");
  ]

let mutable_maker e =
  let e = peel_constraint e in
  match e.pexp_desc with
  | Pexp_apply (f, _) ->
      Option.bind (path_of_expr f) (fun p -> List.assoc_opt p mutable_makers)
  | Pexp_array _ -> Some "array literal"
  | Pexp_lazy _ -> Some "lazy thunk (forcing races under domains)"
  | Pexp_record (fields, _)
    when List.exists
           (fun (_, v) ->
             match (peel_constraint v).pexp_desc with
             | Pexp_apply (f, _) -> (
                 match path_of_expr f with
                 | Some [ "ref" ] -> true
                 | _ -> false)
             | _ -> false)
           fields ->
      Some "record carrying ref cells"
  | _ -> None

let mutable_type_paths =
  [
    [ "ref" ]; [ "Atomic"; "t" ]; [ "Hashtbl"; "t" ]; [ "Buffer"; "t" ];
    [ "Queue"; "t" ]; [ "Stack"; "t" ]; [ "Dynarray"; "t" ]; [ "Weak"; "t" ];
    [ "bytes" ];
  ]

let rec mutable_core_type ct =
  match ct.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, args) ->
      (match Option.map norm (ident_path txt) with
      | Some p when List.mem p mutable_type_paths -> true
      | _ -> false)
      || List.exists mutable_core_type args
  | _ -> false

let mutable_paths_of_core_type ct =
  let acc = ref [] in
  let rec go ct =
    match ct.ptyp_desc with
    | Ptyp_constr ({ txt; _ }, args) ->
        (match Option.map norm (ident_path txt) with
        | Some p when List.mem p mutable_type_paths -> acc := p :: !acc
        | _ -> ());
        List.iter go args
    | Ptyp_arrow (_, a, b) ->
        go a;
        go b
    | Ptyp_tuple ts -> List.iter go ts
    | _ -> ()
  in
  go ct;
  !acc

let shared_mutable_fields decl =
  match decl.ptype_kind with
  | Ptype_record labels ->
      List.filter_map
        (fun l ->
          if l.pld_mutable = Asttypes.Mutable then
            Some (l.pld_name.txt, "mutable")
          else if mutable_core_type l.pld_type then
            Some (l.pld_name.txt, "shared")
          else None)
        labels
  | _ -> (
      match decl.ptype_manifest with
      | Some ct when mutable_core_type ct -> [ (decl.ptype_name.txt, "shared") ]
      | _ -> [])

let pat_vars p =
  let acc = ref [] in
  let rec go p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> acc := txt :: !acc
    | Ppat_alias (p, { txt; _ }) ->
        acc := txt :: !acc;
        go p
    | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_exception p | Ppat_open (_, p)
      ->
        go p
    | Ppat_tuple ps | Ppat_array ps -> List.iter go ps
    | Ppat_construct (_, Some (_, p)) | Ppat_variant (_, Some p) -> go p
    | Ppat_record (fields, _) -> List.iter (fun (_, p) -> go p) fields
    | Ppat_or (a, b) ->
        go a;
        go b
    | _ -> ()
  in
  go p;
  !acc

let fun_params e =
  let rec go acc e =
    match e.pexp_desc with
    | Pexp_fun (_, _, pat, body) -> go (List.rev_append (pat_vars pat) acc) body
    | Pexp_newtype (_, body) -> go acc body
    | Pexp_constraint (body, _) -> go acc body
    | _ -> (List.rev acc, e)
  in
  go [] e

let is_function_expr e =
  match (peel_constraint e).pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | _ -> false

(* Stdlib entry points that mutate their main argument.  Any positional
   identifier argument counts as a potential target, which
   over-approximates ([Array.blit src ... dst ...] marks both) but
   never misses the mutated one. *)
let mutator_names =
  [
    ("Array", [ "set"; "fill"; "blit"; "sort"; "unsafe_set" ]);
    ( "Hashtbl",
      [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ] );
    ("Bytes", [ "set"; "fill"; "blit"; "blit_string"; "unsafe_set" ]);
    ( "Buffer",
      [
        "add_string"; "add_char"; "add_bytes"; "add_substring"; "add_buffer";
        "add_subbytes"; "clear"; "reset"; "truncate";
      ] );
    ("Queue", [ "add"; "push"; "pop"; "take"; "clear"; "transfer" ]);
    ("Stack", [ "push"; "pop"; "clear" ]);
    ("Dynarray", [ "add_last"; "set"; "remove_last"; "clear"; "append" ]);
    ("Weak", [ "set"; "fill"; "blit" ]);
  ]

let mutator_path = function
  | [ m; f ] -> (
      match List.assoc_opt m mutator_names with
      | Some fns -> List.mem f fns
      | None -> false)
  | [ ("incr" | "decr") ] -> true
  | _ -> false

let rec access_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } ->
      Option.map (fun p -> String.concat "." p) (Option.map norm (ident_path txt))
  | Pexp_field (inner, { txt; _ }) -> (
      match (access_path inner, ident_path txt) with
      | Some base, Some p ->
          Some (base ^ "." ^ List.nth p (List.length p - 1))
      | _ -> None)
  | Pexp_constraint (inner, _) -> access_path inner
  | _ -> None

let last_seg s =
  match String.rindex_opt s '.' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> s

let has_race_attr attrs =
  List.exists
    (fun (a : attribute) -> String.starts_with ~prefix:"race." a.attr_name.txt)
    attrs
