open Parsetree

let rules =
  [
    ( "race-unguarded-global",
      "mutable global accessed from domain-reachable code without a declared \
       discipline" );
    ( "race-wrong-mutex",
      "access to [@race.guarded_by] state without holding the named mutex" );
    ( "race-captured-escape",
      "local mutable state captured and written across a domain boundary" );
    ( "race-locked-caller",
      "call to a [@race.locked] function without holding its mutex" );
    ( "race-bad-annotation",
      "malformed or unverifiable [@race.*] annotation" );
  ]

let rule_ids = List.map fst rules

let annot_hint =
  "see the [@race.*] annotation table in docs/lint.md (Interprocedural \
   passes)"

(* ------------------------------------------------------------------ *)
(* Annotations. *)

type ann = Guarded_by of string | Atomic | Domain_local | Read_only

type parsed = {
  ann : ann option;
  locked : string option;
  bad : (Location.t * string) list;
}

let string_payload (a : attribute) =
  match a.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

(* [kinds] restricts which annotations make sense at this position
   (e.g. [@race.locked] only on bindings, [@race.read_only] not on
   type declarations). *)
let parse_attrs ~kinds attrs =
  let ann = ref None and locked = ref None and bad = ref [] in
  let reject loc msg = bad := (loc, msg) :: !bad in
  List.iter
    (fun (a : attribute) ->
      let name = a.attr_name.txt in
      if String.starts_with ~prefix:"race." name then begin
        let sub = String.sub name 5 (String.length name - 5) in
        let loc = a.attr_name.loc in
        if not (List.mem sub kinds) then
          reject loc
            (Printf.sprintf "[@race.%s] does not apply to this position" sub)
        else
          match sub with
          | "guarded_by" -> (
              match string_payload a with
              | Some g -> ann := Some (Guarded_by g)
              | None ->
                  reject loc
                    "[@race.guarded_by] needs a string payload naming the \
                     mutex")
          | "atomic" -> ann := Some Atomic
          | "domain_local" -> ann := Some Domain_local
          | "read_only" -> ann := Some Read_only
          | "locked" -> (
              match string_payload a with
              | Some g -> locked := Some g
              | None ->
                  reject loc
                    "[@race.locked] needs a string payload naming the mutex \
                     the caller must hold")
          | _ ->
              reject loc
                (Printf.sprintf
                   "unknown annotation [@race.%s] (known: guarded_by, atomic, \
                    domain_local, read_only, locked)"
                   sub)
      end)
    attrs;
  { ann = !ann; locked = !locked; bad = !bad }

let binding_kinds =
  [ "guarded_by"; "atomic"; "domain_local"; "read_only"; "locked" ]

let type_kinds = [ "guarded_by"; "atomic"; "domain_local" ]

let field_kinds = [ "guarded_by"; "atomic"; "domain_local" ]

(* ------------------------------------------------------------------ *)
(* Lock acquisitions. *)

let positional args =
  List.filter_map
    (fun (l, a) -> match l with Asttypes.Nolabel -> Some a | _ -> None)
    args

(* Mutexes this expression acquires directly, as dotted source paths
   ("registry_mutex", "t.mutex"). *)
let direct_acqs body =
  let acc = ref [] in
  Astq.iter_expr body (fun e ->
      match e.pexp_desc with
      | Pexp_apply (head, args) -> (
          match (Astq.path_of_expr head, positional args) with
          | Some [ "Mutex"; ("lock" | "protect") ], m :: _ ->
              Option.iter (fun p -> acc := p :: !acc) (Astq.access_path m)
          | Some [ "Condition"; "wait" ], _ :: m :: _ ->
              Option.iter (fun p -> acc := p :: !acc) (Astq.access_path m)
          | _ -> ())
      | _ -> ());
  List.sort_uniq String.compare !acc

(* A lock wrapper ([with_lock t f] and friends): acquires a mutex and
   runs a function parameter inside.  Callers of a wrapper inherit its
   acquisitions; the parameter is recognised either as the head of an
   application or as a positional argument to [Fun.protect]. *)
let applies_param body params =
  let found = ref false in
  Astq.iter_expr body (fun e ->
      match e.pexp_desc with
      | Pexp_apply (head, args) -> (
          match Astq.path_of_expr head with
          | Some [ p ] when List.mem p params -> found := true
          | Some [ "Fun"; "protect" ] ->
              if
                List.exists
                  (fun a ->
                    match Astq.path_of_expr a with
                    | Some [ p ] -> List.mem p params
                    | _ -> false)
                  (positional args)
              then found := true
          | _ -> ())
      | _ -> ());
  !found

(* Guard names are matched by dotted-path suffix: the type-level guard
   "mutex" matches an acquisition of "t.mutex" or "team.mutex".  This
   deliberately conflates same-named mutexes of different values — the
   per-file, per-record naming in this repo keeps that unambiguous, and
   docs/lint.md lists it as a known approximation. *)
let guard_matches ~guard a =
  String.equal guard a || String.equal (Astq.last_seg guard) (Astq.last_seg a)

(* ------------------------------------------------------------------ *)
(* The analysis. *)

type dinfo = {
  d : Callgraph.decl;
  acqs : string list;  (** direct acquisitions of the body *)
  wrapper : bool;
  ann : ann option;
  locked : string option;
  kind : string option;  (** [mutable_maker] description of the RHS *)
}

let analyze ~files ~libs ~parallel_reachable =
  let cg = Callgraph.build ~files ~libs in
  let out = ref [] in
  let emit ~rule ~file ~loc ~message ~hint =
    out := Diagnostic.make ~rule ~file ~loc ~message ~hint :: !out
  in
  let bad_annot ~file (loc, message) =
    emit ~rule:"race-bad-annotation" ~file ~loc ~message ~hint:annot_hint
  in
  let lib_reachable =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (file, _) ->
        Hashtbl.replace tbl file
          (match Deps.lib_of_file libs file with
          | Some l -> parallel_reachable l.Deps.name
          | None -> false))
      files;
    fun file -> Option.value ~default:false (Hashtbl.find_opt tbl file)
  in
  (* Per-binding info: annotations, acquisitions, wrapper-ness. *)
  let dinfos =
    Array.of_list
      (List.map
         (fun (d : Callgraph.decl) ->
           let attrs =
             d.Callgraph.attrs
             @ (Astq.peel_constraint d.Callgraph.body).pexp_attributes
           in
           let parsed = parse_attrs ~kinds:binding_kinds attrs in
           List.iter (bad_annot ~file:d.Callgraph.file) parsed.bad;
           let params, _ = Astq.fun_params d.Callgraph.body in
           let acqs = direct_acqs d.Callgraph.body in
           {
             d;
             acqs;
             wrapper =
               acqs <> [] && params <> [] && applies_param d.Callgraph.body params;
             ann = parsed.ann;
             locked = parsed.locked;
             kind = Astq.mutable_maker d.Callgraph.body;
           })
         (Callgraph.decls cg))
  in
  (* All mutexes acquired anywhere in a file, to validate that a
     declared guard is real. *)
  let file_acqs =
    let tbl = Hashtbl.create 64 in
    Array.iter
      (fun info ->
        Hashtbl.replace tbl info.d.Callgraph.file
          (info.acqs
          @ Option.value ~default:[]
              (Hashtbl.find_opt tbl info.d.Callgraph.file)))
      dinfos;
    tbl
  in
  let guard_acquired ~file guard =
    List.exists
      (fun a -> guard_matches ~guard a)
      (Option.value ~default:[] (Hashtbl.find_opt file_acqs file))
  in
  let check_guard_real ~file ~loc guard =
    if not (guard_acquired ~file guard) then
      bad_annot ~file
        ( loc,
          Printf.sprintf
            "guard %S is never acquired (Mutex.lock/protect, Condition.wait) \
             in %s"
            guard file )
  in
  (* Binding-level declaration checks. *)
  Array.iter
    (fun info ->
      let file = info.d.Callgraph.file in
      let loc = info.d.Callgraph.loc in
      (match info.ann with
      | Some Atomic -> (
          match
            (Astq.peel_constraint info.d.Callgraph.body).pexp_desc
          with
          | Pexp_apply (head, _)
            when Astq.path_of_expr head = Some [ "Atomic"; "make" ] ->
              ()
          | _ ->
              bad_annot ~file
                ( loc,
                  "[@race.atomic] on a binding whose right-hand side is not \
                   Atomic.make" ))
      | Some (Guarded_by g) -> check_guard_real ~file ~loc g
      | Some Domain_local | Some Read_only | None -> ());
      match info.locked with
      | Some g -> check_guard_real ~file ~loc g
      | None -> ())
    dinfos;
  (* Type declarations: collect guarded fields, validate annotations. *)
  let guarded_fields_of_file = Hashtbl.create 64 in
  let atomic_leaf ct =
    List.for_all
      (fun p -> p = [ "Atomic"; "t" ])
      (Astq.mutable_paths_of_core_type ct)
  in
  let mentions_atomic ct =
    List.exists
      (fun p -> p = [ "Atomic"; "t" ])
      (Astq.mutable_paths_of_core_type ct)
  in
  let process_type ~file (decl : type_declaration) =
    let parsed = parse_attrs ~kinds:type_kinds decl.ptype_attributes in
    List.iter (bad_annot ~file) parsed.bad;
    let fields =
      match Hashtbl.find_opt guarded_fields_of_file file with
      | Some tbl -> tbl
      | None ->
          let tbl = Hashtbl.create 16 in
          Hashtbl.add guarded_fields_of_file file tbl;
          tbl
    in
    let add_guard fname guard =
      Hashtbl.replace fields fname
        (guard :: Option.value ~default:[] (Hashtbl.find_opt fields fname))
    in
    match decl.ptype_kind with
    | Ptype_record labels ->
        List.iter
          (fun l ->
            let fparsed = parse_attrs ~kinds:field_kinds l.pld_attributes in
            List.iter (bad_annot ~file) fparsed.bad;
            let guardable =
              l.pld_mutable = Asttypes.Mutable || not (atomic_leaf l.pld_type)
            in
            match fparsed.ann with
            | Some (Guarded_by g) ->
                check_guard_real ~file ~loc:l.pld_loc g;
                add_guard l.pld_name.txt g
            | Some Atomic ->
                if not (mentions_atomic l.pld_type) then
                  bad_annot ~file
                    ( l.pld_loc,
                      Printf.sprintf
                        "[@race.atomic] field %s has no Atomic.t in its type"
                        l.pld_name.txt )
            | Some Domain_local -> ()
            | Some Read_only | None -> (
                match parsed.ann with
                | Some (Guarded_by g) when guardable ->
                    add_guard l.pld_name.txt g
                | Some Atomic when guardable ->
                    bad_annot ~file
                      ( l.pld_loc,
                        Printf.sprintf
                          "field %s of the [@race.atomic] type %s is not \
                           Atomic-based; guard it with a field-level \
                           [@race.guarded_by] or make it Atomic"
                          l.pld_name.txt decl.ptype_name.txt )
                | _ -> ())
          )
          labels;
        (match parsed.ann with
        | Some (Guarded_by g) ->
            check_guard_real ~file ~loc:decl.ptype_loc g
        | _ -> ())
    | _ -> (
        match (parsed.ann, decl.ptype_manifest) with
        | Some Atomic, Some ct when not (atomic_leaf ct) ->
            bad_annot ~file
              ( decl.ptype_loc,
                Printf.sprintf
                  "[@race.atomic] type %s has non-Atomic mutable structure"
                  decl.ptype_name.txt )
        | Some (Guarded_by _), _ ->
            bad_annot ~file
              ( decl.ptype_loc,
                Printf.sprintf
                  "[@race.guarded_by] on type %s cannot be checked without \
                   record fields; annotate the record or the bindings"
                  decl.ptype_name.txt )
        | _ -> ())
  in
  List.iter
    (fun (file, str) ->
      let rec walk_items items =
        List.iter
          (fun item ->
            match item.pstr_desc with
            | Pstr_type (_, decls) -> List.iter (process_type ~file) decls
            | Pstr_module mb -> walk_module mb.pmb_expr
            | Pstr_recmodule mbs ->
                List.iter (fun mb -> walk_module mb.pmb_expr) mbs
            | Pstr_include i -> walk_module i.pincl_mod
            | _ -> ())
          items
      and walk_module me =
        match me.pmod_desc with
        | Pmod_structure items -> walk_items items
        | Pmod_constraint (m, _) -> walk_module m
        | Pmod_functor (_, m) -> walk_module m
        | _ -> ()
      in
      walk_items str)
    files;
  (* Effective acquisitions of one binding: its own, those of the lock
     wrappers it calls, and its [@race.locked] precondition. *)
  let eff_acqs info =
    let acc = ref info.acqs in
    Astq.iter_expr info.d.Callgraph.body (fun e ->
        match e.pexp_desc with
        | Pexp_apply (head, _) -> (
            match Astq.path_of_expr head with
            | Some p -> (
                match Callgraph.resolve cg ~file:info.d.Callgraph.file p with
                | Some callee ->
                    let ci = dinfos.(callee.Callgraph.did) in
                    if ci.wrapper then acc := ci.acqs @ !acc
                | None -> ())
            | None -> ())
        | _ -> ());
    (match info.locked with Some g -> acc := g :: !acc | None -> ());
    List.sort_uniq String.compare !acc
  in
  (* The per-binding access walk. *)
  let check_decl info =
    let d = info.d in
    let file = d.Callgraph.file in
    let eff = eff_acqs info in
    let holds guard = List.exists (fun a -> guard_matches ~guard a) eff in
    let reach_here = Callgraph.reachable cg d in
    let held_desc =
      match eff with
      | [] -> "no mutex is held"
      | l -> "held: " ^ String.concat ", " l
    in
    let guarded_fields = Hashtbl.find_opt guarded_fields_of_file file in
    let resolve_scoped scope path =
      match path with
      | [ x ] when List.mem x scope -> None
      | _ -> Callgraph.resolve cg ~file path
    in
    let check_global loc (g : dinfo) =
      match g.ann with
      | Some Atomic | Some Domain_local | Some Read_only -> ()
      | Some (Guarded_by guard) ->
          if not (holds guard) then
            emit ~rule:"race-wrong-mutex" ~file ~loc
              ~message:
                (Printf.sprintf
                   "access to %s ([@race.guarded_by %S]) in a function where \
                    %s"
                   g.d.Callgraph.name guard held_desc)
              ~hint:
                (Printf.sprintf
                   "acquire %S on the syntactic path (Mutex.lock/protect or a \
                    with_lock wrapper), or mark the enclosing function \
                    [@@race.locked %S]"
                   guard guard)
      | None -> (
          match g.kind with
          | Some kind
            when reach_here
                 && lib_reachable g.d.Callgraph.file
                 && g.d.Callgraph.did <> d.Callgraph.did ->
              emit ~rule:"race-unguarded-global" ~file ~loc
                ~message:
                  (Printf.sprintf
                     "mutable global %s (%s, defined in %s) accessed from \
                      domain-reachable code without a declared discipline"
                     g.d.Callgraph.name kind g.d.Callgraph.file)
                ~hint:
                  "declare the discipline: [@@race.guarded_by \"m\"], \
                   [@@race.atomic], [@@race.domain_local] or \
                   [@@race.read_only] (machine-checked by --pass race)"
          | _ -> ())
    in
    let check_field lid loc =
      match guarded_fields with
      | None -> ()
      | Some fields -> (
          match Astq.ident_path lid with
          | Some p -> (
              let fname = List.nth p (List.length p - 1) in
              match Hashtbl.find_opt fields fname with
              | Some guards when not (List.exists holds guards) ->
                  emit ~rule:"race-wrong-mutex" ~file ~loc
                    ~message:
                      (Printf.sprintf
                         "access to guarded field %s ([@race.guarded_by %s]) \
                          in a function where %s"
                         fname
                         (String.concat "/"
                            (List.map (Printf.sprintf "%S") guards))
                         held_desc)
                    ~hint:
                      "acquire the guard on the syntactic path, or mark the \
                       enclosing function [@@race.locked \"m\"] if every \
                       caller holds it"
              | _ -> ())
          | None -> ())
    in
    let check_readonly_write scope loc a =
      match Astq.path_of_expr a with
      | Some path -> (
          match resolve_scoped scope path with
          | Some g when dinfos.(g.Callgraph.did).ann = Some Read_only ->
              emit ~rule:"race-unguarded-global" ~file ~loc
                ~message:
                  (Printf.sprintf
                     "write to %s, which is declared [@race.read_only]"
                     g.Callgraph.name)
                ~hint:
                  "read-only state must be fully initialised at its \
                   definition; drop the annotation if mutation is intended"
          | _ -> ())
      | None -> ()
    in
    let rec walk scope sync e =
      match e.pexp_desc with
      | Pexp_ident { txt; _ } ->
          if not sync then (
            match Option.map Astq.norm (Astq.ident_path txt) with
            | Some path -> (
                match resolve_scoped scope path with
                | Some g -> check_global e.pexp_loc dinfos.(g.Callgraph.did)
                | None -> ())
            | None -> ())
      | Pexp_apply (head, args) ->
          let hp = Astq.path_of_expr head in
          (* [@race.locked] preconditions at resolvable call heads. *)
          (match hp with
          | Some path -> (
              match resolve_scoped scope path with
              | Some callee -> (
                  match dinfos.(callee.Callgraph.did).locked with
                  | Some g when not (holds g) ->
                      emit ~rule:"race-locked-caller" ~file ~loc:head.pexp_loc
                        ~message:
                          (Printf.sprintf
                             "call to %s ([@race.locked %S]) in a function \
                              where %s"
                             callee.Callgraph.name g held_desc)
                        ~hint:
                          "acquire the mutex before the call, or propagate \
                           [@@race.locked] to this function if its own \
                           callers hold it"
                  | _ -> ())
              | None -> ())
          | None -> ());
          (* Writes to [@race.read_only] state. *)
          (match hp with
          | Some p when Astq.mutator_path p ->
              List.iter
                (fun a -> check_readonly_write scope a.pexp_loc a)
                (positional args)
          | _ -> ());
          (* Arguments of Mutex/Condition primitives are lock-handle
             uses, not data accesses — but closure arguments (the body
             of [Mutex.protect m f]) are still real code. *)
          let sync_head =
            match hp with
            | Some (m :: _ :: _) -> List.mem m [ "Mutex"; "Condition" ]
            | _ -> false
          in
          walk scope sync head;
          List.iter
            (fun (_, a) ->
              walk scope
                (sync || (sync_head && not (Astq.is_function_expr a)))
                a)
            args
      | Pexp_field (e0, lid) ->
          if not sync then check_field lid.txt e.pexp_loc;
          walk scope sync e0
      | Pexp_setfield (e0, lid, v) ->
          if not sync then check_field lid.txt e.pexp_loc;
          check_readonly_write scope e.pexp_loc e0;
          walk scope sync e0;
          walk scope sync v
      | Pexp_let (rf, vbs, inner) ->
          let names =
            List.concat_map (fun vb -> Astq.pat_vars vb.pvb_pat) vbs
          in
          let rhs_scope =
            match rf with
            | Asttypes.Recursive -> names @ scope
            | Asttypes.Nonrecursive -> scope
          in
          List.iter
            (fun vb ->
              (* Validate local [@race.*] annotations (the escape pass
                 honours them as exemptions). *)
              let parsed =
                parse_attrs ~kinds:binding_kinds
                  (vb.pvb_attributes @ vb.pvb_expr.pexp_attributes)
              in
              List.iter (bad_annot ~file) parsed.bad;
              walk rhs_scope sync vb.pvb_expr)
            vbs;
          walk (names @ scope) sync inner
      | Pexp_fun (_, default, pat, inner) ->
          Option.iter (walk scope sync) default;
          walk (Astq.pat_vars pat @ scope) sync inner
      | Pexp_function cases -> walk_cases scope sync cases
      | Pexp_match (e0, cases) | Pexp_try (e0, cases) ->
          walk scope sync e0;
          walk_cases scope sync cases
      | Pexp_for (pat, a, b, _, inner) ->
          walk scope sync a;
          walk scope sync b;
          walk (Astq.pat_vars pat @ scope) sync inner
      | _ -> Astq.child_exprs e (walk scope sync)
    and walk_cases scope sync cases =
      List.iter
        (fun c ->
          let scope' = Astq.pat_vars c.pc_lhs @ scope in
          Option.iter (walk scope' sync) c.pc_guard;
          walk scope' sync c.pc_rhs)
        cases
    in
    walk [] false d.Callgraph.body;
    (* Captured-escape: locals written across a spawn boundary. *)
    List.iter
      (fun (h : Escape.hit) ->
        emit ~rule:"race-captured-escape" ~file ~loc:h.loc
          ~message:
            (Printf.sprintf
               "local %s %s is captured and written inside a closure that \
                crosses a domain boundary"
               h.kind h.name)
          ~hint:
            "make it an Atomic, allocate it inside the closure, or annotate \
             the binding [@race.domain_local] when writes are domain-disjoint")
      (Escape.check d.Callgraph.body)
  in
  Array.iter check_decl dinfos;
  !out
