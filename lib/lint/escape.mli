(** Captured-escape analysis for one toplevel binding.

    A local mutable value ([ref], array, [Hashtbl], ...) defined
    *outside* a closure that is handed to a parallel entry point
    ([Domain.spawn], [Pool.run], [Pool.iter], [Kpool.run]) but written
    *inside* it is shared between domains without any discipline the
    checker can see.  [check] finds such writes.

    Approximations: writes through further function calls are not
    followed (the analysis is per-binding), reads are not flagged (a
    racy read needs a concurrent write, which is the flagged side), and
    function parameters are not tracked — a caller passing shared state
    in is responsible at its own allocation site.  Locals carrying any
    [[@race.*]] attribute (on the binding or its right-hand side) are
    exempt: the annotation states the discipline, e.g.
    [@race.domain_local] for arrays written at disjoint indices.
    [Atomic.make] locals are always safe and never flagged. *)

type hit = {
  name : string;  (** the captured local *)
  kind : string;  (** what it is: "ref cell", "array", ... *)
  loc : Location.t;  (** the offending write *)
}

(** [check body] analyses the body of one toplevel binding, following
    locally [let]-bound closures that are passed by name to a spawn
    point as if they were inline closure literals. *)
val check : Parsetree.expression -> hit list
