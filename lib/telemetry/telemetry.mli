(** Domain-safe instrumentation for the verifier: monotonic-clock
    spans, atomic counters and histograms, and per-worker JSONL trace
    buffers — with a no-op mode (one atomic load per site) when
    disabled, which is the default.

    Usage from an instrumented library:
    {[
      let c_nodes = Telemetry.Metrics.counter "verify.regions"

      let process region =
        Telemetry.Metrics.incr c_nodes;
        let sp = Telemetry.Span.enter "verify.region" in
        let result = ... in
        Telemetry.Span.exit sp
          ~attrs:(fun () -> [ ("outcome", Telemetry.Jsonw.Str "split") ]);
        result
    ]}

    Usage from an entry point (the CLI's [--trace]/[--stats]):
    {[
      Telemetry.enable ~path:"out.jsonl" ();
      ... run ...
      print_string (Telemetry.Metrics.summary_table ());
      Telemetry.disable ()
    ]}

    Event schema and reading guide: docs/telemetry.md. *)

module Jsonw = Jsonw
module Metrics = Metrics
module Trace = Trace
module Span = Span

val enable : ?path:string -> unit -> unit
(** See {!Trace.enable}. *)

val disable : unit -> unit
(** See {!Trace.disable}. *)

val enabled : unit -> bool

val tracing : unit -> bool
