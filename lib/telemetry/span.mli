(** Monotonic-clock spans.

    When telemetry is off, [enter]/[exit] cost one atomic load and a
    branch.  With metrics on, every exit records the duration into a
    histogram named after the span (what [--stats] tabulates).  With
    tracing on, a JSONL event is also emitted carrying this domain's
    id/parent/depth nesting and the attributes. *)

type t

val enter : string -> t

val exit : ?attrs:(unit -> (string * Jsonw.t) list) -> t -> unit
(** Close the span.  [attrs] is evaluated only if the event is actually
    written to a trace, so sites may build attribute lists freely. *)

val wrap : ?attrs:(unit -> (string * Jsonw.t) list) -> string -> (unit -> 'a) -> 'a
(** [wrap name f] runs [f] inside a span; exception-safe. *)
