(* The global on/off switch, shared by every instrumentation site.

   Discipline: [level] is a single atomic written only by
   [Trace.enable]/[Trace.disable] (called from quiescent code — the CLI
   or a bench harness, never from inside a worker), and read with one
   relaxed [Atomic.get] per instrumentation site.  A torn read is
   impossible and a stale one only delays the switch by one event, so
   the disabled path costs exactly one load and one branch. *)

(* 0 = off (no-op), 1 = metrics (counters, histograms, span timings),
   2 = metrics + JSONL tracing. *)
let level = Atomic.make 0 [@@race.atomic]

let metrics_on () = Atomic.get level > 0

let tracing_on () = Atomic.get level > 1

let set l = Atomic.set level l

(* Monotonic nanoseconds (CLOCK_MONOTONIC via the bechamel stub).
   The int64 fits a 63-bit int for ~146 years of uptime. *)
let now_ns () = Int64.to_int (Monotonic_clock.now ())
