(* The JSONL trace sink and the per-domain event buffers.

   Every worker domain renders its events into a Domain.DLS-local
   buffer (no locking on the event path); buffers drain to the shared
   out_channel under [sink.mutex] when they grow past a threshold, when
   a Parallel.Pool worker exits, and at [disable].  Events therefore
   appear in the file grouped by flush, not globally time-ordered —
   readers must sort on [ts] (see docs/telemetry.md).

   Enable/disable discipline: both are called from quiescent code (the
   CLI wrapper, a bench harness) — never concurrently with workers.
   The [generation] counter lets a domain detect that the trace was
   re-enabled since it last wrote and discard its stale state. *)

let generation = Atomic.make 0 [@@race.atomic]

(* Trace timestamps are nanoseconds relative to [epoch] (set at
   enable), so traces from different runs line up at 0. *)
let epoch = Atomic.make 0 [@@race.atomic]

type sink_state = { mutex : Mutex.t; mutable oc : out_channel option }
[@@race.guarded_by "mutex"]

let sink = { mutex = Mutex.create (); oc = None }

(* A [local] value is confined to the domain that created it
   (Domain.DLS). *)
type local = {
  buf : Buffer.t;
  mutable stack : int list;  (* open span ids, innermost first *)
  mutable next_id : int;
  mutable gen : int;  (* generation the ids/stack belong to *)
}
[@@race.domain_local]

let dls_key =
  Domain.DLS.new_key (fun () ->
      { buf = Buffer.create 4096; stack = []; next_id = 0; gen = -1 })

let local () =
  let l = Domain.DLS.get dls_key in
  let g = Atomic.get generation in
  if l.gen <> g then begin
    Buffer.clear l.buf;
    l.stack <- [];
    l.next_id <- 0;
    l.gen <- g
  end;
  l

let now_ns = State.now_ns

let rel ts = ts - Atomic.get epoch

let worker_id () = (Domain.self () :> int)

(* ------------------------------------------------------------------ *)
(* Buffered writing *)

let flush_threshold = 32768

let flush_local () =
  let l = local () in
  if Buffer.length l.buf > 0 then begin
    Mutex.lock sink.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock sink.mutex)
      (fun () ->
        match sink.oc with
        | Some oc -> Buffer.output_buffer oc l.buf
        | None -> () (* sink already closed: the events are dropped *));
    Buffer.clear l.buf
  end

let emit_json json =
  let l = local () in
  Buffer.add_string l.buf (Jsonw.to_string json);
  Buffer.add_char l.buf '\n';
  if Buffer.length l.buf >= flush_threshold then flush_local ()

let base_fields ~kind ~name ~ts =
  [
    ("ts", Jsonw.Int (rel ts));
    ("kind", Jsonw.Str kind);
    ("name", Jsonw.Str name);
    ("worker", Jsonw.Int (worker_id ()));
  ]

let attrs_field = function
  | [] -> []
  | attrs -> [ ("attrs", Jsonw.Obj attrs) ]

(* ------------------------------------------------------------------ *)
(* Span bookkeeping (called by Span; only when tracing) *)

let open_span () =
  let l = local () in
  let id = l.next_id in
  l.next_id <- id + 1;
  let parent = match l.stack with [] -> None | p :: _ -> Some p in
  l.stack <- id :: l.stack;
  (id, parent, List.length l.stack - 1)

let close_span () =
  let l = local () in
  match l.stack with [] -> () | _ :: rest -> l.stack <- rest

let emit_span ~name ~start ~dur ~id ~parent ~depth ~attrs =
  emit_json
    (Jsonw.Obj
       (base_fields ~kind:"span" ~name ~ts:start
       @ [
           ("id", Jsonw.Int id);
           ( "parent",
             match parent with Some p -> Jsonw.Int p | None -> Jsonw.Null );
           ("depth", Jsonw.Int depth);
           ("dur", Jsonw.Int dur);
         ]
       @ attrs_field attrs))

let instant ?(attrs = []) name =
  if State.tracing_on () then
    emit_json
      (Jsonw.Obj
         (base_fields ~kind:"instant" ~name ~ts:(now_ns ())
         @ attrs_field attrs))

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let enable ?path () =
  Atomic.incr generation;
  Atomic.set epoch (now_ns ());
  (match path with
  | None -> State.set 1
  | Some p ->
      Mutex.lock sink.mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock sink.mutex)
        (fun () ->
          (match sink.oc with Some oc -> close_out oc | None -> ());
          sink.oc <- Some (open_out p));
      State.set 2;
      emit_json
        (Jsonw.Obj
           (base_fields ~kind:"meta" ~name:"trace.start" ~ts:(now_ns ())
           @ attrs_field
               [
                 ("clock", Jsonw.Str "CLOCK_MONOTONIC");
                 ("unit", Jsonw.Str "ns");
               ])));
  Metrics.reset ()

let tracing = State.tracing_on

let enabled = State.metrics_on

(* Counter and histogram summaries ride in the trace itself, one event
   per instrument, so a trace file is self-contained. *)
let emit_summaries () =
  let ts = now_ns () in
  List.iter
    (fun (name, v) ->
      emit_json
        (Jsonw.Obj
           (base_fields ~kind:"counter" ~name ~ts @ [ ("value", Jsonw.Int v) ])))
    (Metrics.counters ());
  List.iter
    (fun (s : Metrics.histogram_stats) ->
      emit_json
        (Jsonw.Obj
           (base_fields ~kind:"histogram" ~name:s.Metrics.name ~ts
           @ [
               ("count", Jsonw.Int s.Metrics.count);
               ("sum", Jsonw.Int s.Metrics.sum);
               ("min", Jsonw.Int s.Metrics.min);
               ("max", Jsonw.Int s.Metrics.max);
               ("p50", Jsonw.Int s.Metrics.p50);
               ("p90", Jsonw.Int s.Metrics.p90);
               ("p99", Jsonw.Int s.Metrics.p99);
             ])))
    (Metrics.histograms ())

let disable () =
  if State.tracing_on () then emit_summaries ();
  flush_local ();
  Mutex.lock sink.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sink.mutex)
    (fun () ->
      (match sink.oc with Some oc -> close_out oc | None -> ());
      sink.oc <- None);
  State.set 0
