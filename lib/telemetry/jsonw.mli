(** The shared JSON value type and (de)serializer behind every
    machine-readable artifact in the repo: telemetry JSONL traces,
    [BENCH_*.json] archives, and the bench suite records.  Schema
    conventions follow [lib/lint/json_out] (which stays separate only
    because it lives in the compiler-libs build graph). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Compact (single-line) rendering by default; [~pretty:true] indents
    two spaces per level for diff-friendly on-disk artifacts.
    Non-finite floats become [null] — JSON has no NaN/infinity
    literals. *)

exception Parse_error of string

val parse : string -> t
(** Parses one complete JSON document.  @raise Parse_error on malformed
    input or trailing garbage. *)

val member : string -> t -> t option
(** [member key (Obj fields)] is the value bound to [key], if any;
    [None] on non-objects. *)

val to_float_opt : t -> float option
(** Numeric coercion: [Int] and [Float] both map to [Some]. *)

val to_int_opt : t -> int option

val to_string_opt : t -> string option
