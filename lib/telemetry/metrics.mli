(** Atomic counters and log2-bucketed histograms behind a global
    name-keyed registry.

    Handles are find-or-create by name, so libraries register their
    instruments at module toplevel ([let c = Metrics.counter "x.y"])
    and recording is wait-free: a single atomic RMW per event, one load
    and a branch when telemetry is disabled.  All histogram values are
    integers; by convention the verifier records nanoseconds (spans,
    queue waits) or counts (generators per layer). *)

type counter

type histogram

val counter : string -> counter
(** Find-or-create; idempotent and safe from any domain. *)

val histogram : string -> histogram

val incr : counter -> unit
(** No-op unless telemetry is enabled. *)

val add : counter -> int -> unit

val value : counter -> int
(** Current value — readable even when telemetry is disabled. *)

val observe : histogram -> int -> unit
(** Record one observation (negative values clamp to 0).  No-op unless
    telemetry is enabled. *)

type histogram_stats = {
  name : string;
  count : int;
  sum : int;
  min : int;
  max : int;
  p50 : int;  (** quantiles are bucket upper bounds: at most 2x high *)
  p90 : int;
  p99 : int;
}

val counters : unit -> (string * int) list
(** Non-zero counters, sorted by name.  This is the list bench harness
    runs embed in BENCH_*.json next to [wall_seconds]. *)

val histograms : unit -> histogram_stats list
(** Non-empty histograms, sorted by name. *)

val reset : unit -> unit
(** Zero every registered instrument (handles stay valid). *)

val summary_table : unit -> string
(** The aligned text table behind [charon --stats]. *)

val pp_ns : int -> string
(** Human-readable nanoseconds: ["1.2ms"], ["3.4us"], ... *)
