(** The JSONL trace sink and per-domain event buffers.

    Each worker domain renders events into a domain-local buffer;
    buffers drain to the shared file under a mutex when full, when a
    [Parallel.Pool] worker exits, and at [disable].  Lines in the file
    are therefore grouped by flush, not globally time-ordered — sort on
    ["ts"] when reading.  Event schema: docs/telemetry.md. *)

val enable : ?path:string -> unit -> unit
(** Turn telemetry on and reset all metrics.  Without [path], only
    counters/histograms/span timings are recorded (the [--stats] mode);
    with [path], a JSONL trace is also written there.  Call from
    quiescent code only — never concurrently with running workers. *)

val disable : unit -> unit
(** Append counter/histogram summary events to the trace (if tracing),
    flush the calling domain's buffer, close the sink, and switch every
    instrumentation site back to its no-op path. *)

val enabled : unit -> bool
(** Metrics recording is on ([--stats] or [--trace]). *)

val tracing : unit -> bool
(** A JSONL sink is attached. *)

val instant : ?attrs:(string * Jsonw.t) list -> string -> unit
(** Emit a point event (no duration).  No-op unless tracing. *)

val flush_local : unit -> unit
(** Drain this domain's buffer to the sink.  [Parallel.Pool] calls this
    as each worker exits; other long-lived domains should too, or their
    tail events are dropped when the sink closes. *)

val now_ns : unit -> int
(** Monotonic clock, nanoseconds.  Usable even when telemetry is off
    (bench harnesses use it directly). *)

(**/**)

(* Internal plumbing for [Span]. *)

val open_span : unit -> int * int option * int
(** Allocate a span id on this domain's stack: [(id, parent, depth)]. *)

val close_span : unit -> unit

val emit_span :
  name:string ->
  start:int ->
  dur:int ->
  id:int ->
  parent:int option ->
  depth:int ->
  attrs:(string * Jsonw.t) list ->
  unit
