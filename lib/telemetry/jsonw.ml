(* The one JSON value type shared by every machine-readable artifact in
   the repo: telemetry JSONL traces, BENCH_*.json archives, and the
   bench suite records.  Mirrors the conventions of lib/lint/json_out
   (which must stay separate — it lives in the compiler-libs world) and
   adds floats and a reader, so tools like benchdiff can round-trip
   their own output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Writer *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN/infinity literals; a non-finite measurement becomes
   null rather than corrupting the document. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          render buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          render buf (Str k);
          Buffer.add_char buf ':';
          render buf v)
        fields;
      Buffer.add_char buf '}'

(* Pretty mode: 2-space indentation, one field/element per line.  Used
   for the on-disk BENCH_*.json artifacts (diff-friendly); the trace
   path always renders compact (one event per JSONL line). *)
let rec render_pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as v -> render buf v
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
      let inner = indent ^ "  " in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf inner;
          render_pretty buf inner item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      let inner = indent ^ "  " in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf inner;
          render buf (Str k);
          Buffer.add_string buf ": ";
          render_pretty buf inner v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf indent;
      Buffer.add_char buf '}'

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  if pretty then render_pretty buf "" t else render buf t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reader *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then fail "unexpected end of input";
    let c = s.[!pos] in
    incr pos;
    c
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    let got = next () in
    if got <> c then fail "expected %C at offset %d, got %C" c (!pos - 1) got
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          match next () with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'u' ->
              let hex = String.init 4 (fun _ -> next ()) in
              let code =
                try int_of_string ("0x" ^ hex)
                with Failure _ -> fail "bad \\u escape %S" hex
              in
              (* ASCII range only; anything above becomes '?' — traces
                 and bench files never emit non-ASCII. *)
              Buffer.add_char buf (if code < 0x80 then Char.chr code else '?');
              go ()
          | c -> fail "bad escape \\%C" c)
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      incr pos
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '{' ->
        expect '{';
        skip_ws ();
        if peek () = Some '}' then (incr pos; Obj [])
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> fields ((k, v) :: acc)
            | '}' -> Obj (List.rev ((k, v) :: acc))
            | c -> fail "expected ',' or '}', got %C" c
          in
          fields []
        end
    | Some '[' ->
        expect '[';
        skip_ws ();
        if peek () = Some ']' then (incr pos; Arr [])
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> items (v :: acc)
            | ']' -> Arr (List.rev (v :: acc))
            | c -> fail "expected ',' or ']', got %C" c
          in
          items []
        end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage at offset %d" !pos;
  v

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
