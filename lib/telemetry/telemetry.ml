(* Umbrella module: the only entry point client libraries see. *)

module Jsonw = Jsonw
module Metrics = Metrics
module Trace = Trace
module Span = Span

let enable = Trace.enable

let disable = Trace.disable

let enabled = Trace.enabled

let tracing = Trace.tracing
