(* Atomic counters and log2-bucketed histograms behind a global
   name-keyed registry.

   Discipline: the registry tables are only touched with
   [registry_mutex] held; [counter]/[histogram] are find-or-create and
   idempotent, so toplevel registration from any number of libraries
   (and re-registration after the first) is safe.  Counter values and
   histogram cells are atomics updated with fetch_and_add or CAS-max
   loops only — recording never takes the mutex, so worker domains
   cannot contend on anything but the cell itself. *)

type counter = { cname : string; value : int Atomic.t } [@@race.atomic]

(* Buckets: cell [i] counts observations [v] with floor(log2 v) = i
   (v <= 1 lands in cell 0), so quantiles come back with at most 2x
   error — plenty for "where does the time go" questions. *)
type histogram = {
  hname : string;
  count : int Atomic.t;
  sum : int Atomic.t;
  vmin : int Atomic.t;  (** max_int until the first observation *)
  vmax : int Atomic.t;
  buckets : int Atomic.t array;
}
[@@race.atomic]

let nbuckets = 63

let registry_mutex = Mutex.create ()

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64
[@@race.guarded_by "registry_mutex"]

let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 64
[@@race.guarded_by "registry_mutex"]

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let counter name =
  with_registry (fun () ->
      match Hashtbl.find_opt counters_tbl name with
      | Some c -> c
      | None ->
          let c = { cname = name; value = Atomic.make 0 } in
          Hashtbl.add counters_tbl name c;
          c)

let histogram name =
  with_registry (fun () ->
      match Hashtbl.find_opt histograms_tbl name with
      | Some h -> h
      | None ->
          let h =
            {
              hname = name;
              count = Atomic.make 0;
              sum = Atomic.make 0;
              vmin = Atomic.make max_int;
              vmax = Atomic.make 0;
              buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
            }
          in
          Hashtbl.add histograms_tbl name h;
          h)

(* ------------------------------------------------------------------ *)
(* Recording — no-ops (one load, one branch) when telemetry is off. *)

let incr c = if State.metrics_on () then Atomic.incr c.value

let add c n = if State.metrics_on () then ignore (Atomic.fetch_and_add c.value n)

let value c = Atomic.get c.value

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

let rec atomic_min a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then atomic_min a v

let bucket_of v =
  if v <= 1 then 0
  else begin
    let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
    Stdlib.min (nbuckets - 1) (go v 0)
  end

let observe h v =
  if State.metrics_on () then begin
    let v = Stdlib.max 0 v in
    ignore (Atomic.fetch_and_add h.count 1);
    ignore (Atomic.fetch_and_add h.sum v);
    atomic_min h.vmin v;
    atomic_max h.vmax v;
    Atomic.incr h.buckets.(bucket_of v)
  end

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type histogram_stats = {
  name : string;
  count : int;
  sum : int;
  min : int;
  max : int;
  p50 : int;
  p90 : int;
  p99 : int;
}

let quantile (h : histogram) ~count q =
  (* Smallest bucket upper bound covering a [q] fraction of samples. *)
  let target =
    Stdlib.max 1 (int_of_float (ceil (q *. float_of_int count)))
  in
  let rec scan i seen =
    if i >= nbuckets then Atomic.get h.vmax
    else begin
      let seen = seen + Atomic.get h.buckets.(i) in
      if seen >= target then Stdlib.min (1 lsl (i + 1)) (Atomic.get h.vmax)
      else scan (i + 1) seen
    end
  in
  scan 0 0

let stats_of (h : histogram) =
  let count = Atomic.get h.count in
  {
    name = h.hname;
    count;
    sum = Atomic.get h.sum;
    min = (if count = 0 then 0 else Atomic.get h.vmin);
    max = Atomic.get h.vmax;
    p50 = (if count = 0 then 0 else quantile h ~count 0.50);
    p90 = (if count = 0 then 0 else quantile h ~count 0.90);
    p99 = (if count = 0 then 0 else quantile h ~count 0.99);
  }

let by_name f a b = String.compare (f a) (f b)

let counters () =
  with_registry (fun () ->
      Hashtbl.fold
        (fun _ c acc ->
          let v = Atomic.get c.value in
          if v = 0 then acc else (c.cname, v) :: acc)
        counters_tbl [])
  |> List.sort (by_name fst)

let histograms () =
  with_registry (fun () ->
      Hashtbl.fold (fun _ h acc -> stats_of h :: acc) histograms_tbl [])
  |> List.filter (fun s -> s.count > 0)
  |> List.sort (by_name (fun s -> s.name))

let reset () =
  with_registry (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.value 0) counters_tbl;
      Hashtbl.iter
        (fun _ (h : histogram) ->
          Atomic.set h.count 0;
          Atomic.set h.sum 0;
          Atomic.set h.vmin max_int;
          Atomic.set h.vmax 0;
          Array.iter (fun b -> Atomic.set b 0) h.buckets)
        histograms_tbl)

(* ------------------------------------------------------------------ *)
(* The --stats table *)

let pp_ns ns =
  let f = float_of_int ns in
  if ns < 1_000 then Printf.sprintf "%dns" ns
  else if ns < 1_000_000 then Printf.sprintf "%.1fus" (f /. 1e3)
  else if ns < 1_000_000_000 then Printf.sprintf "%.1fms" (f /. 1e6)
  else Printf.sprintf "%.2fs" (f /. 1e9)

let summary_table () =
  let buf = Buffer.create 1024 in
  let cs = counters () in
  if cs <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%-36s %14s\n" "counter" "value");
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "%-36s %14d\n" name v))
      cs
  end;
  let hs = histograms () in
  if hs <> [] then begin
    if cs <> [] then Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%-36s %10s %10s %10s %10s %10s\n" "span/histogram"
         "count" "total" "p50" "p90" "max");
    List.iter
      (fun s ->
        Buffer.add_string buf
          (Printf.sprintf "%-36s %10d %10s %10s %10s %10s\n" s.name s.count
             (pp_ns s.sum) (pp_ns s.p50) (pp_ns s.p90) (pp_ns s.max)))
      hs
  end;
  Buffer.contents buf
