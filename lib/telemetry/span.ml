(* Monotonic-clock spans.  [enter] is one atomic load when telemetry is
   off; when metrics are on every exit feeds a histogram named after
   the span, and when tracing is on it also emits a JSONL event with
   this domain's id/parent nesting.  Attribute thunks are evaluated
   only when the event is actually written, so call sites can build
   rich attributes without taxing the disabled path. *)

type t =
  | Off
  | On of {
      name : string;
      hist : Metrics.histogram;
      start : int;
      id : int;
      parent : int option;
      depth : int;
      traced : bool;
    }

let enter name =
  if not (State.metrics_on ()) then Off
  else begin
    let traced = State.tracing_on () in
    let id, parent, depth =
      if traced then Trace.open_span () else (0, None, 0)
    in
    On
      {
        name;
        hist = Metrics.histogram name;
        start = State.now_ns ();
        id;
        parent;
        depth;
        traced;
      }
  end

let exit ?attrs t =
  match t with
  | Off -> ()
  | On { name; hist; start; id; parent; depth; traced } ->
      let dur = State.now_ns () - start in
      Metrics.observe hist dur;
      if traced then begin
        Trace.close_span ();
        let attrs = match attrs with None -> [] | Some f -> f () in
        Trace.emit_span ~name ~start ~dur ~id ~parent ~depth ~attrs
      end

let wrap ?attrs name f =
  let sp = enter name in
  Fun.protect ~finally:(fun () -> exit ?attrs sp) f
