(* A fixed-size pool of OCaml 5 domains.

   [run ~workers f] executes [f 0], ..., [f (workers - 1)], one call per
   domain, with the calling domain serving as worker 0, and returns once
   every worker has finished.  With [workers <= 1] no domain is spawned
   at all — the sequential path stays exactly the caller's code.

   Exceptions: if any worker raises, the first exception (worker 0's
   first, then spawn order) is re-raised in the caller after all domains
   have been joined, so no domain is ever leaked. *)

let run ~workers f =
  if workers <= 1 then f 0
  else begin
    (* Each worker body runs under a telemetry span and flushes its
       domain-local trace buffer on the way out — a spawned domain dies
       with the pool, so this is its only chance to drain. *)
    let instrumented i =
      Fun.protect ~finally:Telemetry.Trace.flush_local (fun () ->
          Telemetry.Span.wrap "parallel.worker"
            ~attrs:(fun () -> [ ("worker", Telemetry.Jsonw.Int i) ])
            (fun () -> f i))
    in
    let spawned =
      Array.init (workers - 1) (fun i ->
          Domain.spawn (fun () -> instrumented (i + 1)))
    in
    let caller_result =
      match instrumented 0 with () -> Ok () | exception e -> Error e
    in
    let join_results =
      Array.map
        (fun d -> match Domain.join d with () -> Ok () | exception e -> Error e)
        spawned
    in
    match caller_result with
    | Error e -> raise e
    | Ok () ->
        Array.iter
          (function Error e -> raise e | Ok () -> ())
          join_results
  end

(* [iter ~workers n f] applies [f] to every index in [0, n), sharing the
   indices across at most [workers] domains via an atomic cursor.  Each
   index is processed exactly once; the assignment of indices to workers
   is nondeterministic, so [f] must only write worker-private or
   per-index state. *)
let c_tasks = Telemetry.Metrics.counter "parallel.tasks"

let iter ~workers n f =
  if n <= 0 then ()
  else if workers <= 1 || n = 1 then
    for i = 0 to n - 1 do
      Telemetry.Metrics.incr c_tasks;
      f i
    done
  else begin
    let next = Atomic.make 0 in
    run
      ~workers:(Stdlib.min workers n)
      (fun _ ->
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            Telemetry.Metrics.incr c_tasks;
            f i;
            loop ()
          end
        in
        loop ())
  end

let recommended_workers () = Domain.recommended_domain_count ()
