(** Cooperative cancellation token shared between domains.

    One-way and sticky: once cancelled, always cancelled.  Workers poll
    the token between units of work; nothing is interrupted mid-flight. *)

type t

val create : unit -> t

val cancel : t -> unit

val cancelled : t -> bool
