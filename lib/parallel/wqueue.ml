(* A thread-safe priority work queue for divide-and-conquer draining.

   The queue tracks *outstanding* work — items queued plus items handed
   to a worker whose [finish] call is still pending — so [pop] can tell
   "momentarily empty, but a peer may still push children" (block) apart
   from "the whole work tree is drained" (return [None]).  The protocol
   for workers is strict:

     match pop q with
     | None -> exit                      (* drained or closed *)
     | Some x -> ... push children ...; finish q; loop

   [finish] must be called exactly once per popped item, after any
   children have been pushed; forgetting it deadlocks the drain, calling
   it before pushing children can end the drain early.

   Items are served lowest priority first (a min-heap, like
   [Common.Pqueue], but guarded by a mutex/condition pair so any number
   of domains can share one queue).  [close] ends the queue immediately:
   every blocked and future [pop] returns [None].  Built on OCaml 5
   stdlib primitives only. *)

(* [wakeup] is signalled on push/done_one/close. *)
type 'a t = {
  mutex : Mutex.t;
  wakeup : Condition.t;
  mutable data : (float * 'a) array;  (* slots [0, size) are a min-heap *)
  mutable size : int;
  mutable outstanding : int;
  mutable closed : bool;
}
[@@race.guarded_by "mutex"]

let create () =
  {
    mutex = Mutex.create ();
    wakeup = Condition.create ();
    data = [||];
    size = 0;
    outstanding = 0;
    closed = false;
  }

(* Heap helpers; callers hold [mutex]. *)

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp
[@@race.locked "mutex"]

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if fst t.data.(i) < fst t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end
[@@race.locked "mutex"]

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && fst t.data.(l) < fst t.data.(!smallest) then smallest := l;
  if r < t.size && fst t.data.(r) < fst t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end
[@@race.locked "mutex"]

let heap_push t entry =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let data = Array.make (Stdlib.max 8 (2 * cap)) entry in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)
[@@race.locked "mutex"]

let heap_pop t =
  let top = t.data.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.data.(0) <- t.data.(t.size);
    sift_down t 0
  end;
  snd top
[@@race.locked "mutex"]

(* ------------------------------------------------------------------ *)

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let c_pushes = Telemetry.Metrics.counter "parallel.queue.pushes"

let c_pops = Telemetry.Metrics.counter "parallel.queue.pops"

(* Blocked time in [pop] — the per-worker idle/steal-wait signal the
   scheduling PRs tune against. *)
let h_wait = Telemetry.Metrics.histogram "parallel.queue.wait"

let push t ~priority x =
  with_lock t (fun () ->
      if not t.closed then begin
        heap_push t (priority, x);
        t.outstanding <- t.outstanding + 1;
        Telemetry.Metrics.incr c_pushes;
        Condition.signal t.wakeup
      end)

let pop t =
  with_lock t (fun () ->
      (* [wait_start] is set the first time this pop has to block, so
         the observed duration covers the whole idle stretch even
         across spurious wakeups.  Clock reads only happen on the
         blocking path and only with telemetry enabled. *)
      let wait_start = ref 0 in
      let waited = ref false in
      let rec wait () =
        if t.closed then None
        else if t.size > 0 then Some (heap_pop t)
        else if t.outstanding = 0 then None
        else begin
          if (not !waited) && Telemetry.enabled () then begin
            waited := true;
            wait_start := Telemetry.Trace.now_ns ()
          end;
          Condition.wait t.wakeup t.mutex;
          wait ()
        end
      in
      let result = wait () in
      if !waited then
        Telemetry.Metrics.observe h_wait
          (Telemetry.Trace.now_ns () - !wait_start);
      (match result with
      | Some _ -> Telemetry.Metrics.incr c_pops
      | None -> ());
      result)

let finish t =
  with_lock t (fun () ->
      t.outstanding <- t.outstanding - 1;
      if t.outstanding < 0 then
        invalid_arg "Wqueue.finish: more finishes than pops";
      (* Drained: wake every blocked popper so they can all return. *)
      if t.outstanding = 0 then Condition.broadcast t.wakeup)

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.wakeup)

let closed t = with_lock t (fun () -> t.closed)

let outstanding t = with_lock t (fun () -> t.outstanding)

let size t = with_lock t (fun () -> t.size)
