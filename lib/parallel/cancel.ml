(* A cooperative cancellation token shared between domains.

   Cancellation is one-way and sticky: once [cancel] has been called,
   [cancelled] returns true forever.  Workers poll the token between
   units of work; nothing is interrupted mid-flight, so a worker that
   observes cancellation finishes (or abandons) its current item and
   stops picking up new ones. *)

(* Cross-domain sharing is the whole point; the single atomic flag is
   set-once (sticky) and polled, never read-modify-write. *)
type t = bool Atomic.t [@@race.atomic]

let create () = Atomic.make false

let cancel t = Atomic.set t true

let cancelled t = Atomic.get t
