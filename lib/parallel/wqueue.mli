(** Thread-safe priority work queue for divide-and-conquer draining.

    Tracks outstanding work — queued items plus popped items whose
    [finish] is still pending — so [pop] can distinguish "momentarily
    empty while a peer may still push children" (block) from "the whole
    work tree is drained" (return [None]).  Worker protocol:

    {[
      match pop q with
      | None -> (* drained or closed *) ()
      | Some x -> (* ... push children ... *) finish q
    ]}

    [finish] must be called exactly once per popped item, after any
    children have been pushed.  Items are served lowest priority first.
    Built on OCaml 5 stdlib primitives ([Mutex]/[Condition]) only. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> priority:float -> 'a -> unit
(** Enqueue an item.  No-op once the queue is closed. *)

val pop : 'a t -> 'a option
(** Dequeue the lowest-priority item, blocking while the queue is empty
    but work is still outstanding.  Returns [None] once the queue is
    drained (no items, no outstanding work) or closed. *)

val finish : 'a t -> unit
(** Mark one popped item as fully processed.  Raises [Invalid_argument]
    if called more times than [pop] returned items. *)

val close : 'a t -> unit
(** End the queue: every blocked and future [pop] returns [None]
    immediately.  Used for cancellation. *)

val closed : 'a t -> bool

val outstanding : 'a t -> int
(** Queued plus in-flight items (racy by nature; for tests/telemetry). *)

val size : 'a t -> int
(** Currently queued items (racy by nature; for tests/telemetry). *)
