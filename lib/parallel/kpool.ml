(* A persistent team of kernel-helper domains.

   [Pool.run] spawns domains per call, which is right for coarse region
   workers (milliseconds to seconds of work each) but would erase the
   win for intra-kernel parallelism: a 256x256x256 GEMM is ~7 ms
   single-threaded, and [Domain.spawn] costs tens to hundreds of
   microseconds per domain per call.  This module keeps one global team
   of helper domains parked on a condition variable; [run ~jobs ~tasks f]
   wakes up to [jobs - 1] of them for one round of independent tasks and
   parks them again.  Helpers are spawned lazily up to the largest
   [jobs] ever requested (bounded by [max_helpers]) and live until
   process exit.

   Concurrency contract:
   - at most one round is in flight at a time ([busy]); a caller that
     finds the team busy (another domain's round, or a nested call from
     inside a task) runs its tasks sequentially on its own domain —
     callers therefore never deadlock and never over-subscribe;
   - task indices are claimed from an atomic cursor, so the
     task-to-domain assignment is nondeterministic; [f] must write only
     per-task state (for GEMM: disjoint output row panels);
   - exceptions raised by tasks are caught, the round still drains, and
     the first exception is re-raised in the caller.

   [peak_participants] records the largest number of domains that ever
   computed tasks concurrently in one round (caller included); the
   verifier's nesting tests assert it stays within the [-j] budget. *)

(* Hard cap on helper domains, over and above the caller.  Callers pass
   the real budget via [jobs]; this only bounds runaway requests. *)
let max_helpers = 15

(* Round descriptor published by the caller; helpers read it after
   observing a generation change.  [cursor]/[pending] are atomics so
   claiming a task and retiring it need no lock. *)
type round = {
  body : int -> unit;
  tasks : int;
  cursor : int Atomic.t;
  pending : int Atomic.t;
  failure : (exn * Printexc.raw_backtrace) option Atomic.t;
  seats : int Atomic.t;
      (* Helper seats left in this round, [jobs - 1] at publication.
         The wake-up broadcast reaches every parked helper — including
         ones spawned for earlier, wider rounds — so each helper must
         claim a seat before computing, or a [jobs:2] round after a
         [jobs:4] one would burst the caller's domain budget. *)
}
[@@race.atomic]

(* [work] wakes parked helpers on a new round; [idle] wakes the caller
   when the round's last task retires.  The atomics inside a [round]
   are lock-free by design. *)
type team = {
  mutex : Mutex.t;
  work : Condition.t;
  idle : Condition.t;
  mutable generation : int;
  mutable current : round option;
  mutable helpers : int;
  mutable busy : bool;
}
[@@race.guarded_by "mutex"]

(* Shared-mutable on purpose: the one global team below is the point of
   this module; every field follows the guarded_by discipline above. *)
let team =
  {
    mutex = Mutex.create ();
    work = Condition.create ();
    idle = Condition.create ();
    generation = 0;
    current = None;
    helpers = 0;
    busy = false;
  }

(* Peak concurrent participants (helpers actually computing + the
   caller) across all rounds; cleared with [reset_peak].  Atomic
   CAS-max: safe from any domain. *)
let active = Atomic.make 0 [@@race.atomic]

let peak = Atomic.make 0 [@@race.atomic]

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

let peak_participants () = Atomic.get peak

let reset_peak () = Atomic.set peak 0

let c_rounds = Telemetry.Metrics.counter "kernel.pool.rounds"

let c_helper_tasks = Telemetry.Metrics.counter "kernel.pool.helper_tasks"

(* Claim-and-run loop shared by the caller and every helper.  Each task
   index is executed exactly once; the first exception is parked in
   [failure] and the remaining claimed tasks still retire so [pending]
   reaches zero. *)
let drain ~helper (r : round) =
  atomic_max peak (1 + Atomic.fetch_and_add active 1);
  let rec claim () =
    let i = Atomic.fetch_and_add r.cursor 1 in
    if i < r.tasks then begin
      (* Total absorption is intended: the round must drain so
         [pending] reaches zero; the first exception (including
         Out_of_memory etc.) is parked with its backtrace and re-raised
         in the caller by [run]. *)
      (try r.body i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set r.failure None (Some (e, bt))));
      if helper then Telemetry.Metrics.incr c_helper_tasks;
      ignore (Atomic.fetch_and_add r.pending (-1));
      claim ()
    end
  in
  claim ();
  ignore (Atomic.fetch_and_add active (-1))

let helper_loop () =
  let my_generation = ref 0 in
  Mutex.lock team.mutex;
  let rec loop () =
    if team.generation = !my_generation then begin
      Condition.wait team.work team.mutex;
      loop ()
    end
    else begin
      my_generation := team.generation;
      match team.current with
      | None -> loop ()
      | Some r when Atomic.fetch_and_add r.seats (-1) <= 0 ->
          (* No seat: this round is narrower than the helper pool.
             Park again for the next generation. *)
          loop ()
      | Some r ->
          Mutex.unlock team.mutex;
          drain ~helper:true r;
          (* Wake the caller if this helper retired the last task. *)
          if Atomic.get r.pending = 0 then begin
            Mutex.lock team.mutex;
            Condition.broadcast team.idle;
            Mutex.unlock team.mutex
          end
          else Mutex.lock team.mutex;
          loop ()
    end
  in
  loop ()

(* Helpers are daemons: they hold no resources besides a parked domain
   and die with the process, so no join/teardown path is needed. *)
let ensure_helpers wanted =
  let wanted = Stdlib.min wanted max_helpers in
  while team.helpers < wanted do
    team.helpers <- team.helpers + 1;
    ignore (Domain.spawn helper_loop)
  done
[@@race.locked "mutex"]

let run_sequential ~tasks f =
  for i = 0 to tasks - 1 do
    f i
  done

let run ~jobs ~tasks f =
  if tasks <= 0 then true
  else if jobs <= 1 || tasks = 1 then begin
    run_sequential ~tasks f;
    true
  end
  else begin
    Mutex.lock team.mutex;
    if team.busy then begin
      (* Another round is in flight (or this is a nested call from a
         task body): degrade to the caller's domain rather than block.
         Sequential execution of the same task list is always a valid
         schedule, so correctness is unaffected. *)
      Mutex.unlock team.mutex;
      run_sequential ~tasks f;
      false
    end
    else begin
      team.busy <- true;
      ensure_helpers (jobs - 1);
      let r =
        {
          body = f;
          tasks;
          cursor = Atomic.make 0;
          pending = Atomic.make tasks;
          failure = Atomic.make None;
          seats = Atomic.make (Stdlib.min (jobs - 1) max_helpers);
        }
      in
      team.current <- Some r;
      team.generation <- team.generation + 1;
      Telemetry.Metrics.incr c_rounds;
      Condition.broadcast team.work;
      Mutex.unlock team.mutex;
      drain ~helper:false r;
      Mutex.lock team.mutex;
      while Atomic.get r.pending > 0 do
        Condition.wait team.idle team.mutex
      done;
      team.current <- None;
      team.busy <- false;
      Mutex.unlock team.mutex;
      (match Atomic.get r.failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      true
    end
  end

let helpers () =
  Mutex.lock team.mutex;
  let n = team.helpers in
  Mutex.unlock team.mutex;
  n
