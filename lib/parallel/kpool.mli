(** A persistent team of kernel-helper domains for intra-call
    parallelism (tiled GEMM row panels).

    Unlike {!Pool.run}, which spawns domains per call, the team's
    helpers are spawned lazily once and then parked between rounds, so
    fanning a ~millisecond kernel out over the team costs a broadcast,
    not a [Domain.spawn].  At most one round runs at a time; concurrent
    or nested callers degrade to sequential execution on their own
    domain, which keeps the process's total computing-domain count
    bounded by the caller's own budget discipline. *)

val run : jobs:int -> tasks:int -> (int -> unit) -> bool
(** [run ~jobs ~tasks f] executes [f 0], ..., [f (tasks - 1)], each
    exactly once, using the calling domain plus up to [jobs - 1] parked
    helper domains.  Task-to-domain assignment is nondeterministic, so
    [f] must write only per-task state (disjoint output tiles).
    Returns [false] when the team was busy and the tasks ran
    sequentially on the caller instead; [true] otherwise (including the
    trivial [jobs <= 1] and [tasks <= 1] cases).  If tasks raise, the
    round still drains and the first exception is re-raised in the
    caller. *)

val peak_participants : unit -> int
(** Largest number of domains that have computed tasks concurrently in
    any round since the last {!reset_peak} (caller included).  The
    verifier's nesting tests assert this stays within the [-j] budget. *)

val reset_peak : unit -> unit

val helpers : unit -> int
(** Helper domains spawned so far (they persist until process exit). *)
