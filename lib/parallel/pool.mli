(** Fixed-size pool of OCaml 5 domains.

    The calling domain always participates as worker 0, so [workers = 1]
    spawns nothing and runs the caller's code unchanged. *)

val run : workers:int -> (int -> unit) -> unit
(** [run ~workers f] executes [f 0], ..., [f (workers - 1)], one call
    per domain, and returns once all have finished.  If workers raise,
    every domain is still joined and the first exception is re-raised. *)

val iter : workers:int -> int -> (int -> unit) -> unit
(** [iter ~workers n f] applies [f] to every index in [0, n) exactly
    once, sharing indices across at most [workers] domains via an atomic
    cursor.  Index-to-worker assignment is nondeterministic, so [f] must
    only write worker-private or per-index state. *)

val recommended_workers : unit -> int
(** [Domain.recommended_domain_count ()]: a sensible upper bound for
    [workers] on this machine. *)
