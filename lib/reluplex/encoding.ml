open Linalg
open Domains

type relu_unit = { z : int; a : int; z_lo : float; z_hi : float }

type t = {
  nvars : int;
  input_vars : int array;
  output_vars : int array;
  relus : relu_unit array;
  var_bounds : (float * float) array;
  equalities : (Simplex.Lp.row * float) array;
}

exception Unsupported of string

let build net region =
  if Box.dim region <> net.Nn.Network.input_dim then
    invalid_arg "Encoding.build: region dimension mismatch";
  let bounds = ref [] in
  let equalities = ref [] in
  let relus = ref [] in
  let next = ref 0 in
  let alloc (lo, hi) =
    let v = !next in
    incr next;
    bounds := (lo, hi) :: !bounds;
    v
  in
  (* The current segment: variable indices plus their interval bounds. *)
  let seg_vars =
    Array.init (Box.dim region) (fun i ->
        alloc (region.Box.lo.(i), region.Box.hi.(i)))
  in
  let input_vars = Array.copy seg_vars in
  let seg_itv =
    ref (Interval.of_bounds ~lo:region.Box.lo ~hi:region.Box.hi)
  in
  let seg_vars = ref seg_vars in
  let apply_affine w b =
    let itv' = Interval.affine w b !seg_itv in
    let vars' =
      Array.init w.Mat.rows (fun r -> alloc (Interval.bounds itv' r))
    in
    (* z_r - Σ_c w_rc x_c = b_r *)
    for r = 0 to w.Mat.rows - 1 do
      let row = ref [ (vars'.(r), 1.0) ] in
      for c = 0 to w.Mat.cols - 1 do
        let wrc = Mat.get w r c in
        if wrc <> 0.0 then row := (!seg_vars.(c), -.wrc) :: !row
      done;
      equalities := (!row, b.(r)) :: !equalities
    done;
    seg_itv := itv';
    seg_vars := vars'
  in
  List.iter
    (fun layer ->
      match layer with
      | Nn.Layer.Affine { w; b } -> apply_affine w b
      | Nn.Layer.Conv c ->
          let w, b = Nn.Conv.to_affine c in
          apply_affine w b
      | Nn.Layer.Avgpool p ->
          let w, b = Nn.Avgpool.to_affine p in
          apply_affine w b
      | Nn.Layer.Maxpool _ ->
          raise (Unsupported "max pooling is not supported by the LP encoding")
      | Nn.Layer.Relu ->
          let itv' = Interval.relu !seg_itv in
          let vars' =
            Array.init (Interval.dim itv') (fun i -> alloc (Interval.bounds itv' i))
          in
          Array.iteri
            (fun i z ->
              let z_lo, z_hi = Interval.bounds !seg_itv i in
              relus := { z; a = vars'.(i); z_lo; z_hi } :: !relus)
            !seg_vars;
          seg_itv := itv';
          seg_vars := vars')
    net.Nn.Network.layers;
  {
    nvars = !next;
    input_vars;
    output_vars = !seg_vars;
    relus = Array.of_list (List.rev !relus);
    var_bounds = Array.of_list (List.rev !bounds);
    equalities = Array.of_list (List.rev !equalities);
  }

let stable_units t =
  Array.fold_left
    (fun acc u -> if u.z_lo >= 0.0 || u.z_hi <= 0.0 then acc + 1 else acc)
    0 t.relus
