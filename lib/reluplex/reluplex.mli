(** A Reluplex-class complete robustness checker.

    Decides robustness properties exactly (up to floating-point
    tolerances) by combining an LP relaxation of the network with
    case splitting on unstable ReLU units: each branch either closes
    (the LP proves the adversarial objective negative or is infeasible)
    or yields a candidate counterexample that is validated concretely.
    Stable units and triangle relaxations prune the search, and branches
    are explored depth-first on the most-violated unit.

    This plays the role of Reluplex in §7.2's evaluation: a complete
    procedure without abstraction, learned policies, or gradient-based
    counterexample search.  (The original tool's native simplex with
    ReLU pivots is replaced by LP + branching over our own simplex; the
    procedures decide the same theory — see DESIGN.md.) *)

type config = {
  delta : float;  (** accept a candidate [x] as refutation when
                      [F(x) <= delta] *)
  branch_on_first : bool;
      (** ablation: branch on the first undecided unit instead of the
          most-violated one *)
  presolve : bool;
      (** LP-based bound tightening of every unstable pre-activation
          before branching (MILP-style presolve); often stabilizes
          units at the cost of two LP solves per unstable unit *)
}

val default_config : config
(** δ = 1e-4, most-violated branching, no presolve. *)

type report = {
  outcome : Common.Outcome.t;
  elapsed : float;
  lp_calls : int;
  branches : int;  (** case splits performed *)
  stable_units : int;  (** ReLUs fixed by interval bounds up front *)
}

val run :
  ?config:config ->
  ?budget:Common.Budget.t ->
  Nn.Network.t ->
  Common.Property.t ->
  report
(** Decide the property.  [Unknown] is never returned: the procedure is
    complete, so without budget pressure it answers [Verified] or
    [Refuted].  Returns [Timeout] when the budget runs out and
    [Unknown] only if the network contains unsupported layers. *)

module Encoding = Encoding
(** Re-export of the LP encoding for tests and benchmarks. *)
