(** LP encoding of a ReLU network for the complete checker.

    Flattens a network into LP variables: the input vector, then for each
    ReLU layer a pre-activation and a post-activation segment, ending in
    the output scores.  Convolutions are lowered to dense affine layers;
    max pooling is not supported (matching §7.2, where the complete
    baselines are only run on fully-connected networks). *)

type relu_unit = {
  z : int;  (** pre-activation variable index *)
  a : int;  (** post-activation variable index *)
  z_lo : float;  (** interval lower bound of the pre-activation *)
  z_hi : float;
}

type t = {
  nvars : int;
  input_vars : int array;
  output_vars : int array;
  relus : relu_unit array;
  var_bounds : (float * float) array;
  equalities : (Simplex.Lp.row * float) array;
      (** affine-layer constraints, [row · x = b] *)
}

exception Unsupported of string

val build : Nn.Network.t -> Domains.Box.t -> t
(** Encode the network over the given input region.  Pre-activation
    bounds come from interval abstract interpretation of the region.
    @raise Unsupported on max-pooling layers. *)

val stable_units : t -> int
(** Number of ReLU units already decided by their interval bounds. *)
