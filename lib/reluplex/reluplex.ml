open Domains

type config = {
  delta : float;
  branch_on_first : bool;
  presolve : bool;
}

let default_config = { delta = 1e-4; branch_on_first = false; presolve = false }

type report = {
  outcome : Common.Outcome.t;
  elapsed : float;
  lp_calls : int;
  branches : int;
  stable_units : int;
}

(* Branch-local decision for each ReLU unit. *)
type decision = Undecided | Active | Inactive

let tol = 1e-7

(* Build the LP for one branch: network equalities plus per-unit ReLU
   constraints according to the current decisions. *)
let build_lp (enc : Encoding.t) decisions =
  let lp = Simplex.Lp.create ~nvars:enc.Encoding.nvars in
  Array.iteri
    (fun i (lo, hi) -> Simplex.Lp.set_bounds lp i ~lo ~hi)
    enc.Encoding.var_bounds;
  Array.iter
    (fun (row, b) -> Simplex.Lp.add_eq lp row b)
    enc.Encoding.equalities;
  Array.iteri
    (fun i (u : Encoding.relu_unit) ->
      let fixed =
        if u.Encoding.z_lo >= 0.0 then Active
        else if u.Encoding.z_hi <= 0.0 then Inactive
        else decisions.(i)
      in
      match fixed with
      | Active ->
          Simplex.Lp.add_eq lp [ (u.Encoding.a, 1.0); (u.Encoding.z, -1.0) ] 0.0;
          Simplex.Lp.add_ge lp [ (u.Encoding.z, 1.0) ] 0.0
      | Inactive ->
          Simplex.Lp.add_eq lp [ (u.Encoding.a, 1.0) ] 0.0;
          Simplex.Lp.add_le lp [ (u.Encoding.z, 1.0) ] 0.0
      | Undecided ->
          let l = u.Encoding.z_lo and h = u.Encoding.z_hi in
          (* Triangle relaxation: a >= 0 (from bounds), a >= z, and
             a <= h (z - l) / (h - l). *)
          Simplex.Lp.add_le lp [ (u.Encoding.z, 1.0); (u.Encoding.a, -1.0) ] 0.0;
          Simplex.Lp.add_le lp
            [ (u.Encoding.a, h -. l); (u.Encoding.z, -.h) ]
            (-.h *. l))
    enc.Encoding.relus;
  lp

(* LP-based bound tightening: for every unstable unit, maximize and
   minimize its pre-activation over the triangle relaxation and shrink
   its interval bounds accordingly.  Sound because the relaxation
   over-approximates the network's reachable set, and often stabilizes
   units, shrinking the branching space (the MILP-style presolve the
   related work of §8 describes). *)
let tighten_bounds ~budget (enc : Encoding.t) =
  let decisions =
    Array.make (Array.length enc.Encoding.relus) Undecided
  in
  let bounds = Array.copy enc.Encoding.var_bounds in
  let should_stop () = Common.Budget.exhausted budget in
  (try
     Array.iter
       (fun (u : Encoding.relu_unit) ->
         if u.Encoding.z_lo < 0.0 && u.Encoding.z_hi > 0.0 then begin
           let solve sense =
             let lp = build_lp enc decisions in
             let obj = [ (u.Encoding.z, 1.0) ] in
             match sense with
             | `Max -> Simplex.Lp.maximize ~should_stop lp obj
             | `Min -> Simplex.Lp.minimize ~should_stop lp obj
           in
           let lo, hi = bounds.(u.Encoding.z) in
           let hi =
             match solve `Max with
             | Simplex.Lp.Optimal { value; _ } -> Float.min hi value
             | Simplex.Lp.Infeasible | Simplex.Lp.Unbounded -> hi
           in
           let lo =
             match solve `Min with
             | Simplex.Lp.Optimal { value; _ } -> Float.max lo value
             | Simplex.Lp.Infeasible | Simplex.Lp.Unbounded -> lo
           in
           bounds.(u.Encoding.z) <- (lo, hi);
           bounds.(u.Encoding.a) <- (Float.max lo 0.0, Float.max hi 0.0)
         end)
       enc.Encoding.relus
   with Simplex.Tableau.Aborted -> ());
  let relus =
    Array.map
      (fun (u : Encoding.relu_unit) ->
        let z_lo, z_hi = bounds.(u.Encoding.z) in
        { u with Encoding.z_lo; z_hi })
      enc.Encoding.relus
  in
  { enc with Encoding.var_bounds = bounds; relus }

let run ?(config = default_config) ?(budget = Common.Budget.unlimited ()) net
    (prop : Common.Property.t) =
  let started = Unix.gettimeofday () in
  let lp_calls = ref 0 and branches = ref 0 in
  let finish outcome stable_units =
    {
      outcome;
      elapsed = Unix.gettimeofday () -. started;
      lp_calls = !lp_calls;
      branches = !branches;
      stable_units;
    }
  in
  match Encoding.build net prop.Common.Property.region with
  | exception Encoding.Unsupported _ -> finish Common.Outcome.Unknown 0
  | enc ->
      let enc = if config.presolve then tighten_bounds ~budget enc else enc in
      let k = prop.Common.Property.target in
      let objective = Optim.Objective.create net ~k in
      let region = prop.Common.Property.region in
      let num_units = Array.length enc.Encoding.relus in
      (* Depth-first search over ReLU phases for one adversarial class.
         Returns [Verified] when every branch is closed. *)
      let rec dfs obj_row decisions : Common.Outcome.t =
        if Common.Budget.exhausted budget then Common.Outcome.Timeout
        else begin
          incr lp_calls;
          Common.Budget.spend budget 1;
          let should_stop () = Common.Budget.exhausted budget in
          match
            Simplex.Lp.maximize ~should_stop (build_lp enc decisions) obj_row
          with
          | exception Simplex.Tableau.Aborted -> Common.Outcome.Timeout
          | Simplex.Lp.Infeasible -> Common.Outcome.Verified
          | Simplex.Lp.Unbounded ->
              (* All variables are box-bounded, so this is unreachable. *)
              assert false
          | Simplex.Lp.Optimal { x; value } ->
              if value <= tol then Common.Outcome.Verified
              else begin
                let xin =
                  Box.clamp region
                    (Array.map (fun v -> x.(v)) enc.Encoding.input_vars)
                in
                if Optim.Objective.value objective xin <= config.delta then
                  Common.Outcome.Refuted xin
                else begin
                  (* Pick an undecided unit to branch on. *)
                  let pick = ref (-1) and worst = ref tol in
                  for i = 0 to num_units - 1 do
                    let u = enc.Encoding.relus.(i) in
                    let stable = u.Encoding.z_lo >= 0.0 || u.Encoding.z_hi <= 0.0 in
                    if decisions.(i) = Undecided && not stable then begin
                      let viol =
                        abs_float
                          (x.(u.Encoding.a) -. Float.max 0.0 x.(u.Encoding.z))
                      in
                      if config.branch_on_first then begin
                        if !pick < 0 && viol > tol then pick := i
                      end
                      else if viol > !worst then begin
                        worst := viol;
                        pick := i
                      end
                    end
                  done;
                  if !pick < 0 then
                    (* Fully decided (or all relaxations tight): the LP
                       optimum is exact for this linear region, but the
                       concrete check disagreed beyond delta — a
                       floating-point corner.  Close the branch. *)
                    Common.Outcome.Verified
                  else begin
                    incr branches;
                    let i = !pick in
                    let u = enc.Encoding.relus.(i) in
                    (* Explore the phase suggested by the LP point
                       first. *)
                    let first, second =
                      if x.(u.Encoding.z) >= 0.0 then (Active, Inactive)
                      else (Inactive, Active)
                    in
                    let try_phase phase =
                      let d = Array.copy decisions in
                      d.(i) <- phase;
                      dfs obj_row d
                    in
                    match try_phase first with
                    | Common.Outcome.Verified -> try_phase second
                    | other -> other
                  end
                end
              end
        end
      in
      (* Adversarial classes in descending order of their score at the
         region center: likeliest violations first. *)
      let center_scores = Nn.Network.eval net (Box.center region) in
      let classes =
        List.init net.Nn.Network.output_dim Fun.id
        |> List.filter (fun j -> j <> k)
        |> List.sort (fun a b ->
               Float.compare center_scores.(b) center_scores.(a))
      in
      let rec all_classes = function
        | [] -> Common.Outcome.Verified
        | j :: rest -> begin
            let obj_row =
              [ (enc.Encoding.output_vars.(j), 1.0);
                (enc.Encoding.output_vars.(k), -1.0) ]
            in
            match dfs obj_row (Array.make num_units Undecided) with
            | Common.Outcome.Verified -> all_classes rest
            | other -> other
          end
      in
      finish (all_classes classes) (Encoding.stable_units enc)

module Encoding = Encoding
