(** Hyper-rectangular input regions.

    Robustness properties in the paper are pairs [(I, K)] where [I] is a
    box in the input space; this module is the concrete representation of
    [I], including the splitting operations used by the refinement loop. *)

type t = private { lo : Linalg.Vec.t; hi : Linalg.Vec.t }

val create : lo:Linalg.Vec.t -> hi:Linalg.Vec.t -> t
(** @raise Invalid_argument unless [lo] and [hi] have equal dimension,
    every bound is finite, and [lo.(i) <= hi.(i)] for every [i]. *)

val of_center_radius : Linalg.Vec.t -> float -> t
(** L-infinity ball: [\[c - r, c + r\]] in every dimension. *)

val of_point : Linalg.Vec.t -> t
(** Degenerate box containing exactly one point. *)

val dim : t -> int

val center : t -> Linalg.Vec.t

val widths : t -> Linalg.Vec.t
(** Per-dimension side lengths [hi - lo]. *)

val width : t -> int -> float

val diameter : t -> float
(** Euclidean diameter [‖hi - lo‖₂], matching Definition 5.1. *)

val mean_width : t -> float
(** Average side length: the "size of the input space" feature of §6. *)

val longest_dim : t -> int
(** Dimension with the largest side (first on ties). *)

val contains : t -> Linalg.Vec.t -> bool

val clamp : t -> Linalg.Vec.t -> Linalg.Vec.t
(** Euclidean projection onto the box (used by projected gradient
    descent). *)

val split : t -> dim:int -> at:float -> t * t
(** [split b ~dim ~at] cuts [b] with the hyperplane [x_dim = at].  The
    cut point is clamped strictly inside the side (by a small fraction of
    its width) so that both halves have diameter strictly less than the
    parent's, enforcing Assumption 1 of the paper.
    @raise Invalid_argument if side [dim] has zero width. *)

val bisect : t -> t * t
(** Split at the midpoint of the longest dimension. *)

val sample : Linalg.Rng.t -> t -> Linalg.Vec.t
(** Uniform sample from the box. *)

val corner : t -> int -> Linalg.Vec.t
(** [corner b mask] maps bit [i] of [mask] to the low (0) or high (1) end
    of dimension [i]; meaningful for [dim b <= 30]. *)

val equal : t -> t -> bool
(** Bit-exact equality of the bounds: true exactly when every bound is
    the same IEEE double, so [-0.0] and [0.0] bounds are distinct —
    matching the proof cache's key scheme
    ({!Partition.key_of_box}), which digests the bits.  Polymorphic
    [=] (and [Float.equal]) would conflate the two. *)

val pp : Format.formatter -> t -> unit

val hull : t -> t -> t
(** Smallest box containing both arguments. *)
