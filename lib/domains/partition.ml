(* Canonical split partition.

   The refinement loop (Algorithm 1) is free to cut a region anywhere,
   and the default policy cuts toward the PGD candidate — which makes
   every subregion's bounds a function of the query that produced it.
   Two overlapping queries then never agree on a single sub-box, and a
   subregion-granular proof cache can never hit across queries.

   This module makes cut points *canonical*: [canonical_cut ~lo ~hi]
   returns the unique coarsest dyadic rational k * 2^p strictly inside
   the open interval (lo, hi).  Coarsest means the largest spacing 2^p
   with a multiple inside; at that spacing the multiple is unique
   (an open interval shorter than the spacing holds at most one grid
   point), and of two adjacent multiples of a spacing one is always a
   multiple of the next-coarser spacing, so the maximal one is unique —
   the interval, not the query, determines the cut.  Splitting on
   canonical cuts therefore snaps every search tree onto one global
   dyadic partition of the input space: interior subregions of
   different, overlapping root boxes coincide bit-for-bit, which is
   what lets the proof cache key them by their bounds alone.

   This is the midpoint split_half discipline generalised: for a
   power-of-two-aligned interval the canonical cut *is* the midpoint.
   The cut can land near a face (the coarsest point of (1-e, 2-2e) is
   1.0), in which case Box.split's safety margin clamps it — still a
   deterministic function of the interval, so equal parent regions keep
   producing equal children; the clamped child merely sits off the
   global dyadic grid until its own later cuts re-snap.  Assumption 1's
   shrink guarantee is the split's clamp, untouched here. *)

let canonical_cut ~lo ~hi =
  if not (Float.is_finite lo && Float.is_finite hi) then
    invalid_arg "Partition.canonical_cut: non-finite bound";
  if not (lo < hi) then invalid_arg "Partition.canonical_cut: empty interval";
  let mid = 0.5 *. (lo +. hi) in
  let w = hi -. lo in
  (* frexp gives w = m * 2^e with m in [0.5, 1), so 2^e is the smallest
     power of two strictly wider than the interval: at spacing 2^e the
     open interval holds at most one grid point.  Descending from e, the
     first spacing with a point inside yields the coarsest point; by
     spacing 2^(e-2) (strictly narrower than w) a point is guaranteed,
     so the loop takes at most three steps on well-scaled input.  The
     [p < e - 4] fallback only fires when k * s is too large to round
     back inside (bounds astronomically far from 0 relative to their
     width); the midpoint keeps the split sound, merely uncacheable. *)
  let _, e = Float.frexp w in
  let rec find p =
    if p < e - 4 then mid
    else
      let s = Float.ldexp 1.0 p in
      let k = Float.ceil (lo /. s) in
      (* ceil can land on lo itself when lo is a grid point; the cut
         must be strictly inside. *)
      let k = if k *. s <= lo then k +. 1.0 else k in
      let cut = k *. s in
      if cut > lo && cut < hi then cut else find (p - 1)
  in
  let cut = find e in
  (* Normalise -0.0 (from k = -0. at negative lo) so the two bounds the
     split produces are bit-identical however the interval straddles
     zero. *)
  if cut = 0.0 then 0.0 else cut

let snap_split box ~dim =
  let lo = box.Box.lo.(dim) and hi = box.Box.hi.(dim) in
  canonical_cut ~lo ~hi

(* Bit-exact bound encoding: 16 opaque bytes per dimension.  Two
   subregions get equal keys exactly when every bound is the same IEEE
   double (with -0.0 distinct from 0.0, which canonical_cut never
   emits). *)
let key_of_box box =
  let d = Box.dim box in
  let buf = Buffer.create ((16 * d) + 2) in
  for i = 0 to d - 1 do
    Buffer.add_int64_le buf (Int64.bits_of_float box.Box.lo.(i));
    Buffer.add_int64_le buf (Int64.bits_of_float box.Box.hi.(i))
  done;
  Buffer.contents buf
