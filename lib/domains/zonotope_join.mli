(** The AI2-style zonotope domain.

    Identical to {!Zonotope} except for the ReLU transformer: instead of
    the DeepZ-style relaxation (one fresh noise symbol per crossing
    unit), each crossing unit is handled by case-splitting on the branch
    hyperplane and joining the two resulting zonotopes — the transformer
    described in the AI2 paper and in §2.3/Figure 4 of this paper.  It
    is generally less precise than {!Zonotope}'s, which is what makes
    the bounded powerset domain (which keeps the split pieces separate)
    pay off in Example 2.3.  Joins use the interval hull, matching AI2's
    observable precision on the paper's examples. *)

include Domain_sig.BASE with type t = Zonotope.t
