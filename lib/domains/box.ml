open Linalg

type t = { lo : Vec.t; hi : Vec.t }

let create ~lo ~hi =
  if Vec.dim lo <> Vec.dim hi then
    invalid_arg "Box.create: lo and hi must have the same dimension";
  if Vec.dim lo = 0 then invalid_arg "Box.create: empty dimension";
  Array.iteri
    (fun i l ->
      if not (Float.is_finite l && Float.is_finite hi.(i)) then
        invalid_arg (Printf.sprintf "Box.create: non-finite bound at %d" i);
      if l > hi.(i) then
        invalid_arg
          (Printf.sprintf "Box.create: lo.(%d) = %g > hi.(%d) = %g" i l i hi.(i)))
    lo;
  { lo; hi }

let of_center_radius c r =
  if r < 0.0 then invalid_arg "Box.of_center_radius: negative radius";
  create ~lo:(Vec.map (fun x -> x -. r) c) ~hi:(Vec.map (fun x -> x +. r) c)

let of_point x = create ~lo:(Vec.copy x) ~hi:(Vec.copy x)

let dim b = Vec.dim b.lo

let center b = Vec.init (dim b) (fun i -> 0.5 *. (b.lo.(i) +. b.hi.(i)))

let widths b = Vec.sub b.hi b.lo

let width b i = b.hi.(i) -. b.lo.(i)

let diameter b = Vec.norm2 (widths b)

let mean_width b = Vec.mean (widths b)

let longest_dim b = Vec.argmax (widths b)

let contains b x =
  Vec.dim x = dim b
  && begin
       let ok = ref true in
       Array.iteri
         (fun i v -> if v < b.lo.(i) || v > b.hi.(i) then ok := false)
         x;
       !ok
     end

let clamp b x = Vec.clamp ~lo:b.lo ~hi:b.hi x

(* Keep the cut at least this fraction of the side width away from either
   face, so both halves shrink (Assumption 1). *)
let cut_margin = 0.05

let split b ~dim:d ~at =
  if d < 0 || d >= dim b then invalid_arg "Box.split: dimension out of range";
  let w = width b d in
  if w <= 0.0 then invalid_arg "Box.split: zero-width dimension";
  let lo_cut = b.lo.(d) +. (cut_margin *. w) in
  let hi_cut = b.hi.(d) -. (cut_margin *. w) in
  let at = Float.min hi_cut (Float.max lo_cut at) in
  let hi1 = Vec.copy b.hi in
  hi1.(d) <- at;
  let lo2 = Vec.copy b.lo in
  lo2.(d) <- at;
  (create ~lo:(Vec.copy b.lo) ~hi:hi1, create ~lo:lo2 ~hi:(Vec.copy b.hi))

let bisect b =
  let d = longest_dim b in
  split b ~dim:d ~at:(0.5 *. (b.lo.(d) +. b.hi.(d)))

let sample rng b =
  Vec.init (dim b) (fun i ->
      if b.hi.(i) > b.lo.(i) then Rng.uniform rng ~lo:b.lo.(i) ~hi:b.hi.(i)
      else b.lo.(i))

let corner b mask =
  Vec.init (dim b) (fun i ->
      if (mask lsr i) land 1 = 1 then b.hi.(i) else b.lo.(i))

(* Bounds are compared per element on their IEEE bits, not with
   polymorphic [=] on the arrays (and not with Float.equal either):
   both go through the float compare path, where [-0.0 = 0.0] holds —
   yet the two bounds key differently in the proof cache
   (Partition.key_of_box digests the bits).  Equality here must agree
   with the key scheme, so two boxes are equal exactly when every
   bound is the same IEEE double.  Bounds are always finite (see
   [create]), so NaN payload subtleties cannot arise. *)
let equal a b =
  let bits_eq x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y) in
  let d = dim a in
  d = dim b
  && begin
       let ok = ref true in
       for i = 0 to d - 1 do
         if not (bits_eq a.lo.(i) b.lo.(i) && bits_eq a.hi.(i) b.hi.(i)) then
           ok := false
       done;
       !ok
     end

let pp fmt b =
  Format.fprintf fmt "@[<h>";
  for i = 0 to dim b - 1 do
    if i > 0 then Format.fprintf fmt " x ";
    Format.fprintf fmt "[%g, %g]" b.lo.(i) b.hi.(i)
  done;
  Format.fprintf fmt "@]"

let hull a b =
  if dim a <> dim b then invalid_arg "Box.hull: dimension mismatch";
  create
    ~lo:(Vec.map2 Float.min a.lo b.lo)
    ~hi:(Vec.map2 Float.max a.hi b.hi)
