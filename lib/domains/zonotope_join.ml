include (Zonotope : Domain_sig.BASE with type t = Zonotope.t)

let name = "zonotope-ai2"

(* AI2's observable join behaviour on the paper's own examples is the
   interval hull (Figure 4's joined zonotope contains the unsafe
   corner); Girard's generator-pairing join is strictly tighter and
   would hide the powerset domain's advantage, so this domain uses the
   hull. *)
let join a b = of_box (Box.hull (to_box a) (to_box b))

(* Case-split-and-join ReLU on one crossing dimension: meet with each
   branch half-space, zero the negative branch, join the results. *)
let relu_dim t i =
  let lo, hi = bounds t i in
  if lo >= 0.0 then t
  else if hi <= 0.0 then project_zero t i
  else begin
    let pos = meet_ge0 t i in
    let neg = Option.map (fun z -> project_zero z i) (meet_le0 t i) in
    match (pos, neg) with
    | Some a, Some b -> join a b
    | Some a, None -> a
    | None, Some b -> b
    | None, None ->
        (* Both meets empty is numerically impossible for a crossing
           dimension; fall back to the sound DeepZ transformer. *)
        Zonotope.relu_dim t i
  end

let relu t =
  let d = dim t in
  let acc = ref t in
  for i = 0 to d - 1 do
    acc := relu_dim !acc i
  done;
  !acc
