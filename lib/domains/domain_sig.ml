(** Abstract-domain signatures.

    {!S} is what the network abstract interpreter consumes; {!BASE}
    extends it with the case-split operations the bounded powerset
    functor needs (meets against the ReLU branch hyperplanes
    [x_i >= 0] / [x_i <= 0]). *)

module type S = sig
  type t
  (** An abstract element over R^d for some dimension [d]. *)

  val name : string

  val of_box : Box.t -> t
  (** Exact abstraction of a box region. *)

  val to_box : t -> Box.t
  (** Tightest enclosing box of the concretization. *)

  val dim : t -> int

  val bounds : t -> int -> float * float
  (** [(lower, upper)] bounds of component [i] over the concretization. *)

  val linear_lower : t -> coeffs:Linalg.Vec.t -> float
  (** Lower bound of [coeffs · x] over the concretization; the key query
      for robustness checking ([coeffs = e_K - e_j]). *)

  val affine : Linalg.Mat.t -> Linalg.Vec.t -> t -> t
  (** Abstract transformer for [x ↦ W x + b]; exact for boxes only up to
      interval precision, exact for zonotopes. *)

  val relu : t -> t
  (** Sound abstract transformer for component-wise ReLU, without case
      splitting. *)

  val maxpool : Nn.Pool.t -> t -> t
  (** Sound abstract transformer for max pooling. *)

  val join : t -> t -> t
  (** Sound upper bound of two elements (least upper bound for boxes;
      an over-approximation for zonotopes). *)

  val sample : Linalg.Rng.t -> t -> Linalg.Vec.t
  (** A concrete point guaranteed to lie in the concretization; used by
      soundness tests. *)

  val disjuncts : t -> int
  (** Number of disjuncts (1 for base domains). *)

  val num_generators : t -> int
  (** Representation size statistic (0 for boxes). *)
end

module type BASE = sig
  include S

  val meet_ge0 : t -> int -> t option
  (** Sound over-approximation of the meet with the half-space
      [x_i >= 0]; [None] when the intersection is provably empty. *)

  val meet_le0 : t -> int -> t option
  (** Likewise for [x_i <= 0]. *)

  val project_zero : t -> int -> t
  (** Set component [i] to exactly 0 (the negative ReLU branch). *)

  val relu_dim : t -> int -> t
  (** Sound single-element ReLU approximation applied to the (crossing)
      component [i] only. *)
end
