(** Runtime abstract-domain selection.

    The domain policy of the paper chooses a pair [(d, k)]: the base
    domain (intervals or zonotopes) and the number of powerset disjuncts
    (§4.1).  This module reifies that choice and produces the matching
    first-class domain module. *)

type base =
  | Interval_base
  | Zonotope_base  (** DeepZ-style ReLU relaxation *)
  | Zonotope_join_base  (** AI2-style case-split-and-join ReLU *)
  | Symbolic_base
      (** ReluVal-style symbolic intervals; only valid with one
          disjunct *)

type spec = { base : base; disjuncts : int }

val interval : spec
(** [(I, 1)]: the plain interval domain. *)

val zonotope : spec
(** [(Z, 1)]: the plain zonotope domain. *)

val zonotope_join : spec
(** The AI2-style zonotope domain (join-based ReLU); used by the AI2
    baseline and by ablations. *)

val symbolic : spec
(** The ReluVal-style symbolic-interval domain — an extension beyond the
    paper, whose engine lacked this domain (§7.4, footnote 8). *)

val powerset : base -> int -> spec
(** [powerset b k] with [k >= 1] disjuncts.
    @raise Invalid_argument if [k < 1], or if [b] is [Symbolic_base]
    with [k > 1]. *)

val get : spec -> (module Domain_sig.S)
(** The abstract-domain module implementing the spec. *)

val to_string : spec -> string
(** E.g. ["I1"], ["Z2"], ["Z64"], ["ZJ64"]. *)

val of_string : string -> spec option
(** Inverse of {!to_string}. *)

val equal : spec -> spec -> bool

val pp : Format.formatter -> spec -> unit

val all_cheap : spec list
(** The candidate menu used by learned policies:
    [I1; I2; I4; Z1; Z2; Z4]. *)
