(** The interval (box) abstract domain.

    Component-wise lower/upper bounds; the cheapest and least precise
    domain available to the verification policy. *)

include Domain_sig.BASE

val of_bounds : lo:Linalg.Vec.t -> hi:Linalg.Vec.t -> t
(** Direct construction (checked like {!Box.create}). *)
