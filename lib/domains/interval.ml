open Linalg

type t = { lo : Vec.t; hi : Vec.t }

let name = "interval"

let of_bounds ~lo ~hi =
  let b = Box.create ~lo ~hi in
  { lo = b.Box.lo; hi = b.Box.hi }

let of_box (b : Box.t) = { lo = Vec.copy b.Box.lo; hi = Vec.copy b.Box.hi }

let to_box t = Box.create ~lo:(Vec.copy t.lo) ~hi:(Vec.copy t.hi)

let dim t = Vec.dim t.lo

let bounds t i = (t.lo.(i), t.hi.(i))

let linear_lower t ~coeffs =
  if Vec.dim coeffs <> dim t then
    invalid_arg "Interval.linear_lower: dimension mismatch";
  let acc = ref 0.0 in
  Array.iteri
    (fun i c -> acc := !acc +. if c >= 0.0 then c *. t.lo.(i) else c *. t.hi.(i))
    coeffs;
  !acc

let affine w b t =
  if w.Mat.cols <> dim t then invalid_arg "Interval.affine: dimension mismatch";
  let lo = Array.make w.Mat.rows 0.0 and hi = Array.make w.Mat.rows 0.0 in
  for r = 0 to w.Mat.rows - 1 do
    let l = ref b.(r) and u = ref b.(r) in
    for c = 0 to w.Mat.cols - 1 do
      let wrc = Mat.get w r c in
      if wrc >= 0.0 then begin
        l := !l +. (wrc *. t.lo.(c));
        u := !u +. (wrc *. t.hi.(c))
      end
      else begin
        l := !l +. (wrc *. t.hi.(c));
        u := !u +. (wrc *. t.lo.(c))
      end
    done;
    lo.(r) <- !l;
    hi.(r) <- !u
  done;
  { lo; hi }

let relu t =
  {
    lo = Vec.map (fun x -> Float.max x 0.0) t.lo;
    hi = Vec.map (fun x -> Float.max x 0.0) t.hi;
  }

let maxpool p t =
  let wins = Nn.Pool.windows p in
  {
    lo =
      Array.map
        (fun w -> Array.fold_left (fun acc i -> Float.max acc t.lo.(i)) neg_infinity w)
        wins;
    hi =
      Array.map
        (fun w -> Array.fold_left (fun acc i -> Float.max acc t.hi.(i)) neg_infinity w)
        wins;
  }

let join a b =
  if dim a <> dim b then invalid_arg "Interval.join: dimension mismatch";
  { lo = Vec.map2 Float.min a.lo b.lo; hi = Vec.map2 Float.max a.hi b.hi }

let sample rng t = Box.sample rng (to_box t)

let disjuncts _ = 1

let num_generators _ = 0

let meet_ge0 t i =
  if t.hi.(i) < 0.0 then None
  else begin
    let lo = Vec.copy t.lo in
    lo.(i) <- Float.max lo.(i) 0.0;
    Some { t with lo }
  end

let meet_le0 t i =
  if t.lo.(i) > 0.0 then None
  else begin
    let hi = Vec.copy t.hi in
    hi.(i) <- Float.min hi.(i) 0.0;
    Some { t with hi }
  end

let project_zero t i =
  let lo = Vec.copy t.lo and hi = Vec.copy t.hi in
  lo.(i) <- 0.0;
  hi.(i) <- 0.0;
  { lo; hi }

let relu_dim t i =
  let lo = Vec.copy t.lo and hi = Vec.copy t.hi in
  lo.(i) <- Float.max lo.(i) 0.0;
  hi.(i) <- Float.max hi.(i) 0.0;
  { lo; hi }
