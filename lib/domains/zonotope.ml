open Linalg

(* The generator set is stored as one row-major matrix — one generator
   per row, [gens.cols = dim center] — so an affine layer pushes the
   whole set through a single cache-blocked GEMM ([G W^T]) instead of
   re-streaming the weight matrix once per generator.  The matrix may
   have zero rows (a degenerate point zonotope). *)
type t = { center : Vec.t; gens : Mat.t }

let name = "zonotope"

(* Generators with L1 norm below this threshold are dropped; they
   contribute nothing observable and only slow the analysis down. *)
let tiny = 1e-300

let dim t = Vec.dim t.center

let num_gens t = t.gens.Mat.rows

(* unsafe-array audit: [base + j] ranges over row [r] of a row-major
   [rows x cols] buffer; callers pass [r < g.rows] (prune/order_reduce
   iterate r over [0, rows)). *)
let row_norm1 (g : Mat.t) r =
  let base = r * g.Mat.cols in
  let acc = ref 0.0 in
  for j = 0 to g.Mat.cols - 1 do
    acc := !acc +. abs_float (Array.unsafe_get g.Mat.data (base + j))
  done;
  !acc
[@@lint.allow "unsafe-array"]

let c_pruned = Telemetry.Metrics.counter "zonotope.pruned_generators"

let h_gens_after_prune = Telemetry.Metrics.histogram "zonotope.generators_after_prune"

let c_reduce_calls = Telemetry.Metrics.counter "zonotope.order_reduce_calls"

let c_reduced = Telemetry.Metrics.counter "zonotope.reduced_generators"

let h_gens_after_reduce = Telemetry.Metrics.histogram "zonotope.generators_after_reduce"

(* Drop generator rows with L1 norm below [tiny], preserving order.
   Returns the input unchanged when nothing is dropped — the common
   case on the affine hot path, where the old array -> list -> array
   round trip was pure overhead. *)
let prune (g : Mat.t) =
  let n = g.Mat.rows and d = g.Mat.cols in
  let keep = Array.make (Stdlib.max n 1) false in
  let kept = ref 0 in
  for r = 0 to n - 1 do
    if row_norm1 g r > tiny then begin
      keep.(r) <- true;
      incr kept
    end
  done;
  Telemetry.Metrics.observe h_gens_after_prune !kept;
  if !kept = n then g
  else begin
    Telemetry.Metrics.add c_pruned (n - !kept);
    let out = Mat.zeros !kept d in
    let next = ref 0 in
    for r = 0 to n - 1 do
      if keep.(r) then begin
        Array.blit g.Mat.data (r * d) out.Mat.data (!next * d) d;
        incr next
      end
    done;
    out
  end

(* Build a generator matrix from an array of row vectors (which may be
   empty, hence the explicit dimension). *)
let mat_of_rows ~dim rows =
  let n = Array.length rows in
  let m = Mat.zeros n dim in
  Array.iteri (fun r g -> Array.blit g 0 m.Mat.data (r * dim) dim) rows;
  m

(* Append sparse one-hot rows [(i, v)] (a fresh noise symbol with
   magnitude [v] in dimension [i]) below the rows of [g]. *)
let append_one_hot_rows (g : Mat.t) pairs =
  match pairs with
  | [] -> g
  | _ ->
      let extra = List.length pairs in
      let d = g.Mat.cols in
      let out = Mat.zeros (g.Mat.rows + extra) d in
      Array.blit g.Mat.data 0 out.Mat.data 0 (g.Mat.rows * d);
      List.iteri
        (fun k (i, v) -> Mat.set out (g.Mat.rows + k) i v)
        pairs;
      out

(* unsafe-array audit: [r*d + j] with [r < rows] and [j < cols] stays
   inside the row-major buffer; the only caller (relu_crossing) passes a
   dimension index [j < cols]. *)
let scale_col (g : Mat.t) j c =
  let d = g.Mat.cols in
  for r = 0 to g.Mat.rows - 1 do
    let idx = (r * d) + j in
    Array.unsafe_set g.Mat.data idx (c *. Array.unsafe_get g.Mat.data idx)
  done
[@@lint.allow "unsafe-array"]

let zero_col (g : Mat.t) j =
  let d = g.Mat.cols in
  for r = 0 to g.Mat.rows - 1 do
    g.Mat.data.((r * d) + j) <- 0.0
  done

let create ~center ~gens =
  Array.iter
    (fun g ->
      if Vec.dim g <> Vec.dim center then
        invalid_arg "Zonotope.create: generator dimension mismatch")
    gens;
  { center; gens = prune (mat_of_rows ~dim:(Vec.dim center) gens) }

let center t = t.center

let generators t = Array.init (num_gens t) (fun r -> Mat.row t.gens r)

let of_box (b : Box.t) =
  let c = Box.center b in
  let w = Box.widths b in
  let d = Vec.dim c in
  let count = ref 0 in
  Array.iter (fun wi -> if wi > 0.0 then incr count) w;
  let gens = Mat.zeros !count d in
  let next = ref 0 in
  Array.iteri
    (fun i wi ->
      if wi > 0.0 then begin
        Mat.set gens !next i (0.5 *. wi);
        incr next
      end)
    w;
  { center = c; gens }

(* Per-dimension deviation radius: r.(i) = Σ_g |g.(i)|.  One linear
   sweep over the generator matrix. *)
(* unsafe-array audit: [r] has length [d]; [base + i] sweeps row [g] of
   the [num_gens x d] generator buffer.  Innermost loop of every bound
   query, hence unsafe. *)
let radii t =
  let d = dim t in
  let r = Vec.zeros d in
  let data = t.gens.Mat.data in
  for g = 0 to num_gens t - 1 do
    let base = g * d in
    for i = 0 to d - 1 do
      Array.unsafe_set r i
        (Array.unsafe_get r i
        +. abs_float (Array.unsafe_get data (base + i)))
    done
  done;
  r
[@@lint.allow "unsafe-array"]

(* unsafe-array audit: callers guarantee [i < d] (a dimension index), so
   [g*d + i] stays inside the row-major generator buffer. *)
let bounds t i =
  let d = dim t in
  let data = t.gens.Mat.data in
  let r = ref 0.0 in
  for g = 0 to num_gens t - 1 do
    r := !r +. abs_float (Array.unsafe_get data ((g * d) + i))
  done;
  (t.center.(i) -. !r, t.center.(i) +. !r)
[@@lint.allow "unsafe-array"]

let to_box t =
  let r = radii t in
  Box.create ~lo:(Vec.sub t.center r) ~hi:(Vec.add t.center r)

let linear_lower t ~coeffs =
  if Vec.dim coeffs <> dim t then
    invalid_arg "Zonotope.linear_lower: dimension mismatch";
  let base = Vec.dot coeffs t.center in
  (* The per-generator dot products are one matvec of the generator
     matrix. *)
  let dots = Mat.matvec t.gens coeffs in
  let dev = Array.fold_left (fun acc x -> acc +. abs_float x) 0.0 dots in
  base -. dev

let affine w b t =
  let center = Vec.add (Mat.matvec w t.center) b in
  let out = Mat.zeros (num_gens t) w.Mat.rows in
  if num_gens t > 0 then Mat.gemm ~transb:true t.gens w out;
  { center; gens = prune out }

(* The DeepZ/AI2 single-zonotope ReLU approximation on one crossing
   dimension: y_i ∈ [λ x_i, λ x_i + 2μ] with λ = u/(u-l), μ = -λl/2.
   Mutates [center]/[gens] in place and returns the fresh symbol's
   magnitude for dimension [i]. *)
let relu_crossing ~center ~gens i ~lo ~hi =
  let lambda = hi /. (hi -. lo) in
  let mu = -.lambda *. lo /. 2.0 in
  center.(i) <- (lambda *. center.(i)) +. mu;
  scale_col gens i lambda;
  mu

let zero_dim ~center ~gens i =
  center.(i) <- 0.0;
  zero_col gens i

let relu t =
  let r = radii t in
  let n = num_gens t and d = dim t in
  (* Count crossing dimensions first so the output generator matrix —
     original rows plus one one-hot row per fresh noise symbol — is
     allocated once, instead of the old copy-then-append double
     allocation.  Values (and hence results) are unchanged: the same
     column transforms run in the same ascending-dimension order. *)
  let extra = ref 0 in
  for i = 0 to d - 1 do
    let lo = t.center.(i) -. r.(i) and hi = t.center.(i) +. r.(i) in
    if hi > 0.0 && lo < 0.0 then incr extra
  done;
  let center = Vec.copy t.center in
  let gens = Mat.zeros (n + !extra) d in
  Array.blit t.gens.Mat.data 0 gens.Mat.data 0 (n * d);
  (* View of the original rows only: the column transforms must not
     touch the one-hot rows written below them. *)
  let top = { Mat.rows = n; cols = d; data = gens.Mat.data } in
  let next = ref n in
  for i = 0 to d - 1 do
    let lo = t.center.(i) -. r.(i) and hi = t.center.(i) +. r.(i) in
    if hi <= 0.0 then zero_dim ~center ~gens:top i
    else if lo < 0.0 then begin
      let mu = relu_crossing ~center ~gens:top i ~lo ~hi in
      Mat.set gens !next i mu;
      incr next
    end
  done;
  { center; gens = prune gens }

let maxpool p t =
  let wins = Nn.Pool.windows p in
  let out_dim = Array.length wins in
  let r = radii t in
  let lo i = t.center.(i) -. r.(i) and hi i = t.center.(i) +. r.(i) in
  let center = Vec.zeros out_dim in
  let selected = Array.make out_dim (-1) in
  (* For each window, if one input dominates all others (its lower bound
     beats every other upper bound) the max is exactly that input and the
     output keeps its generator column; otherwise fall back to the
     interval hull with a fresh symbol. *)
  let fresh = ref [] in
  Array.iteri
    (fun o window ->
      let best = ref window.(0) in
      Array.iter (fun i -> if lo i > lo !best then best := i) window;
      let dominated =
        Array.for_all (fun i -> i = !best || hi i <= lo !best) window
      in
      if dominated then begin
        selected.(o) <- !best;
        center.(o) <- t.center.(!best)
      end
      else begin
        let wlo = Array.fold_left (fun acc i -> Float.max acc (lo i)) neg_infinity window in
        let whi = Array.fold_left (fun acc i -> Float.max acc (hi i)) neg_infinity window in
        center.(o) <- 0.5 *. (wlo +. whi);
        fresh := (o, 0.5 *. (whi -. wlo)) :: !fresh
      end)
    wins;
  let d = dim t in
  let projected = Mat.zeros (num_gens t) out_dim in
  let data = t.gens.Mat.data in
  for g = 0 to num_gens t - 1 do
    let src = g * d and dst = g * out_dim in
    for o = 0 to out_dim - 1 do
      if selected.(o) >= 0 then
        projected.Mat.data.(dst + o) <- data.(src + selected.(o))
    done
  done;
  { center; gens = prune (append_one_hot_rows projected (List.rev !fresh)) }

let order_reduce t ~max_gens =
  let n = num_gens t in
  if n <= max_gens then t
  else begin
    let d = dim t in
    let keep = Stdlib.max 0 (max_gens - d) in
    let order = Array.init n Fun.id in
    (* Norms are computed once up front: recomputing them inside the
       sort comparator costs O(n log n * dim) instead of O(n * dim). *)
    let norms = Array.init n (row_norm1 t.gens) in
    Array.sort (fun a b -> Float.compare norms.(b) norms.(a)) order;
    let box_r = Vec.zeros d in
    let data = t.gens.Mat.data in
    for k = keep to n - 1 do
      let base = order.(k) * d in
      for i = 0 to d - 1 do
        box_r.(i) <- box_r.(i) +. abs_float data.(base + i)
      done
    done;
    let extra = ref 0 in
    Array.iter (fun ri -> if ri > 0.0 then incr extra) box_r;
    let out = Mat.zeros (keep + !extra) d in
    for k = 0 to keep - 1 do
      Array.blit data (order.(k) * d) out.Mat.data (k * d) d
    done;
    let next = ref keep in
    Array.iteri
      (fun i ri ->
        if ri > 0.0 then begin
          Mat.set out !next i ri;
          incr next
        end)
      box_r;
    Telemetry.Metrics.incr c_reduce_calls;
    Telemetry.Metrics.add c_reduced (n - (keep + !extra));
    Telemetry.Metrics.observe h_gens_after_reduce (keep + !extra);
    { t with gens = out }
  end

let join_gen_cap = 128

let join a b =
  if dim a <> dim b then invalid_arg "Zonotope.join: dimension mismatch";
  let d = dim a in
  let na = num_gens a and nb = num_gens b in
  let n = Stdlib.max na nb in
  let get gens k i =
    if k < gens.Mat.rows then gens.Mat.data.((k * d) + i) else 0.0
  in
  let center = Vec.init d (fun i -> 0.5 *. (a.center.(i) +. b.center.(i))) in
  (* Rows [0, n): averages; rows [n, 2n): differences; last row: the
     center shift — Girard's generator-pairing join. *)
  let gens = Mat.zeros ((2 * n) + 1) d in
  for k = 0 to n - 1 do
    for i = 0 to d - 1 do
      let ga = get a.gens k i and gb = get b.gens k i in
      gens.Mat.data.((k * d) + i) <- 0.5 *. (ga +. gb);
      gens.Mat.data.(((n + k) * d) + i) <- 0.5 *. (ga -. gb)
    done
  done;
  for i = 0 to d - 1 do
    gens.Mat.data.((2 * n * d) + i) <- 0.5 *. (a.center.(i) -. b.center.(i))
  done;
  order_reduce { center; gens = prune gens } ~max_gens:join_gen_cap

let sample rng t =
  let x = Vec.copy t.center in
  let d = dim t in
  let data = t.gens.Mat.data in
  for g = 0 to num_gens t - 1 do
    let eps = Rng.uniform rng ~lo:(-1.0) ~hi:1.0 in
    let base = g * d in
    for i = 0 to d - 1 do
      x.(i) <- x.(i) +. (eps *. data.(base + i))
    done
  done;
  x

let disjuncts _ = 1

let num_generators = num_gens

let contains_sample t =
  let pts = ref [ Vec.copy t.center ] in
  Array.iter
    (fun g -> pts := Vec.add t.center g :: Vec.sub t.center g :: !pts)
    (generators t);
  Array.of_list !pts

(* Meet with the half-space [sign * x_i >= 0], implemented by tightening
   the ranges of the noise symbols against the induced linear constraint
   [Σ_g sign*g.(i) ε_g >= -sign*c.(i)] and renormalizing symbols back to
   [-1, 1].  Sound: only regions violating the constraint are cut. *)
let meet_halfspace t ~dim:i ~sign =
  let d = dim t in
  let n = num_gens t in
  let a = Array.init n (fun g -> sign *. t.gens.Mat.data.((g * d) + i)) in
  let r = -.sign *. t.center.(i) in
  let lo = Array.make n (-1.0) and hi = Array.make n 1.0 in
  let term_max g = Float.max (a.(g) *. lo.(g)) (a.(g) *. hi.(g)) in
  let feasible = ref true in
  (* Two full tightening passes are enough in practice; each pass only
     shrinks ranges, so soundness does not depend on the pass count. *)
  for _pass = 1 to 2 do
    if !feasible then begin
      let total = ref 0.0 in
      for g = 0 to n - 1 do
        total := !total +. term_max g
      done;
      if !total < r then feasible := false
      else
        for g = 0 to n - 1 do
          if a.(g) <> 0.0 then begin
            let others = !total -. term_max g in
            let bound = (r -. others) /. a.(g) in
            let before = term_max g in
            if a.(g) > 0.0 then lo.(g) <- Float.max lo.(g) bound
            else hi.(g) <- Float.min hi.(g) bound;
            if lo.(g) > hi.(g) then feasible := false
            else total := !total -. before +. term_max g
          end
        done
    end
  done;
  if not !feasible then None
  else begin
    let center = Vec.copy t.center in
    let gens = Mat.copy t.gens in
    for g = 0 to n - 1 do
      let m = 0.5 *. (lo.(g) +. hi.(g)) and w = 0.5 *. (hi.(g) -. lo.(g)) in
      (* Bit-exact identity test: a symbol whose range stayed exactly
         [-1, 1] needs no rewrite; any rounded-but-close range must
         still be rewritten for soundness, so an epsilon is wrong here. *)
      if m <> 0.0 || (w <> 1.0 [@lint.allow "float-eq"]) then begin
        let base = g * d in
        for j = 0 to d - 1 do
          let gj = gens.Mat.data.(base + j) in
          center.(j) <- center.(j) +. (m *. gj);
          gens.Mat.data.(base + j) <- w *. gj
        done
      end
    done;
    Some { center; gens = prune gens }
  end

let meet_ge0 t i = meet_halfspace t ~dim:i ~sign:1.0

let meet_le0 t i = meet_halfspace t ~dim:i ~sign:(-1.0)

let project_zero t i =
  let center = Vec.copy t.center in
  let gens = Mat.copy t.gens in
  zero_dim ~center ~gens i;
  { center; gens = prune gens }

let relu_dim t i =
  let lo, hi = bounds t i in
  if lo >= 0.0 then t
  else if hi <= 0.0 then project_zero t i
  else begin
    let center = Vec.copy t.center in
    let gens = Mat.copy t.gens in
    let mu = relu_crossing ~center ~gens i ~lo ~hi in
    { center; gens = prune (append_one_hot_rows gens [ (i, mu) ]) }
  end
