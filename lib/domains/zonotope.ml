open Linalg

type t = { center : Vec.t; gens : Vec.t array }

let name = "zonotope"

(* Generators with L1 norm below this threshold are dropped; they
   contribute nothing observable and only slow the analysis down. *)
let tiny = 1e-300

let norm1 g = Array.fold_left (fun acc x -> acc +. abs_float x) 0.0 g

let prune gens =
  Array.of_list
    (List.filter (fun g -> norm1 g > tiny) (Array.to_list gens))

let create ~center ~gens =
  Array.iter
    (fun g ->
      if Vec.dim g <> Vec.dim center then
        invalid_arg "Zonotope.create: generator dimension mismatch")
    gens;
  { center; gens = prune gens }

let center t = t.center

let generators t = t.gens

let dim t = Vec.dim t.center

let of_box (b : Box.t) =
  let c = Box.center b in
  let w = Box.widths b in
  let gens = ref [] in
  Array.iteri
    (fun i wi ->
      if wi > 0.0 then begin
        let g = Vec.zeros (Vec.dim c) in
        g.(i) <- 0.5 *. wi;
        gens := g :: !gens
      end)
    w;
  { center = c; gens = Array.of_list (List.rev !gens) }

(* Per-dimension deviation radius: r.(i) = Σ_g |g.(i)|. *)
let radii t =
  let r = Vec.zeros (dim t) in
  Array.iter (fun g -> Array.iteri (fun i x -> r.(i) <- r.(i) +. abs_float x) g) t.gens;
  r

let bounds t i =
  let r = ref 0.0 in
  Array.iter (fun g -> r := !r +. abs_float g.(i)) t.gens;
  (t.center.(i) -. !r, t.center.(i) +. !r)

let to_box t =
  let r = radii t in
  Box.create ~lo:(Vec.sub t.center r) ~hi:(Vec.add t.center r)

let linear_lower t ~coeffs =
  if Vec.dim coeffs <> dim t then
    invalid_arg "Zonotope.linear_lower: dimension mismatch";
  let base = Vec.dot coeffs t.center in
  let dev =
    Array.fold_left (fun acc g -> acc +. abs_float (Vec.dot coeffs g)) 0.0 t.gens
  in
  base -. dev

let affine w b t =
  {
    center = Vec.add (Mat.matvec w t.center) b;
    gens = prune (Array.map (fun g -> Mat.matvec w g) t.gens);
  }

(* The DeepZ/AI2 single-zonotope ReLU approximation on one crossing
   dimension: y_i ∈ [λ x_i, λ x_i + 2μ] with λ = u/(u-l), μ = -λl/2.
   Mutates copies, returning the new generator for dimension [i]. *)
let relu_crossing ~center ~gens i ~lo ~hi =
  let lambda = hi /. (hi -. lo) in
  let mu = -.lambda *. lo /. 2.0 in
  center.(i) <- (lambda *. center.(i)) +. mu;
  Array.iter (fun g -> g.(i) <- lambda *. g.(i)) gens;
  let fresh = Vec.zeros (Vec.dim center) in
  fresh.(i) <- mu;
  fresh

let zero_dim ~center ~gens i =
  center.(i) <- 0.0;
  Array.iter (fun g -> g.(i) <- 0.0) gens

let relu t =
  let r = radii t in
  let center = Vec.copy t.center in
  let gens = Array.map Vec.copy t.gens in
  let fresh = ref [] in
  for i = 0 to dim t - 1 do
    let lo = t.center.(i) -. r.(i) and hi = t.center.(i) +. r.(i) in
    if hi <= 0.0 then zero_dim ~center ~gens i
    else if lo < 0.0 then fresh := relu_crossing ~center ~gens i ~lo ~hi :: !fresh
  done;
  { center; gens = prune (Array.append gens (Array.of_list (List.rev !fresh))) }

let maxpool p t =
  let wins = Nn.Pool.windows p in
  let out_dim = Array.length wins in
  let r = radii t in
  let lo i = t.center.(i) -. r.(i) and hi i = t.center.(i) +. r.(i) in
  let center = Vec.zeros out_dim in
  let selected = Array.make out_dim (-1) in
  (* For each window, if one input dominates all others (its lower bound
     beats every other upper bound) the max is exactly that input and the
     output keeps its generator row; otherwise fall back to the interval
     hull with a fresh symbol. *)
  let fresh = ref [] in
  Array.iteri
    (fun o window ->
      let best = ref window.(0) in
      Array.iter (fun i -> if lo i > lo !best then best := i) window;
      let dominated =
        Array.for_all (fun i -> i = !best || hi i <= lo !best) window
      in
      if dominated then begin
        selected.(o) <- !best;
        center.(o) <- t.center.(!best)
      end
      else begin
        let wlo = Array.fold_left (fun acc i -> Stdlib.max acc (lo i)) neg_infinity window in
        let whi = Array.fold_left (fun acc i -> Stdlib.max acc (hi i)) neg_infinity window in
        center.(o) <- 0.5 *. (wlo +. whi);
        let g = Vec.zeros out_dim in
        g.(o) <- 0.5 *. (whi -. wlo);
        fresh := g :: !fresh
      end)
    wins;
  let projected =
    Array.map
      (fun g ->
        Vec.init out_dim (fun o -> if selected.(o) >= 0 then g.(selected.(o)) else 0.0))
      t.gens
  in
  { center; gens = prune (Array.append projected (Array.of_list (List.rev !fresh))) }

let order_reduce t ~max_gens =
  let n = Array.length t.gens in
  if n <= max_gens then t
  else begin
    let keep = Stdlib.max 0 (max_gens - dim t) in
    let order = Array.init n Fun.id in
    (* Norms are computed once up front: recomputing them inside the
       sort comparator costs O(n log n * dim) instead of O(n * dim). *)
    let norms = Array.map norm1 t.gens in
    Array.sort (fun a b -> compare norms.(b) norms.(a)) order;
    let kept = Array.init keep (fun k -> t.gens.(order.(k))) in
    let box_r = Vec.zeros (dim t) in
    for k = keep to n - 1 do
      let g = t.gens.(order.(k)) in
      Array.iteri (fun i x -> box_r.(i) <- box_r.(i) +. abs_float x) g
    done;
    let box_gens = ref [] in
    Array.iteri
      (fun i ri ->
        if ri > 0.0 then begin
          let g = Vec.zeros (dim t) in
          g.(i) <- ri;
          box_gens := g :: !box_gens
        end)
      box_r;
    { t with gens = Array.append kept (Array.of_list (List.rev !box_gens)) }
  end

let join_gen_cap = 128

let join a b =
  if dim a <> dim b then invalid_arg "Zonotope.join: dimension mismatch";
  let na = Array.length a.gens and nb = Array.length b.gens in
  let n = Stdlib.max na nb in
  let get gens k i = if k < Array.length gens then gens.(k).(i) else 0.0 in
  let center = Vec.init (dim a) (fun i -> 0.5 *. (a.center.(i) +. b.center.(i))) in
  let avg = Array.init n (fun k -> Vec.init (dim a) (fun i -> 0.5 *. (get a.gens k i +. get b.gens k i))) in
  let diff = Array.init n (fun k -> Vec.init (dim a) (fun i -> 0.5 *. (get a.gens k i -. get b.gens k i))) in
  let shift = Vec.init (dim a) (fun i -> 0.5 *. (a.center.(i) -. b.center.(i))) in
  let z = create ~center ~gens:(Array.concat [ avg; diff; [| shift |] ]) in
  order_reduce z ~max_gens:join_gen_cap

let sample rng t =
  let x = Vec.copy t.center in
  Array.iter
    (fun g ->
      let eps = Rng.uniform rng ~lo:(-1.0) ~hi:1.0 in
      Vec.axpy eps g x)
    t.gens;
  x

let disjuncts _ = 1

let num_generators t = Array.length t.gens

let contains_sample t =
  let pts = ref [ Vec.copy t.center ] in
  Array.iter
    (fun g ->
      pts := Vec.add t.center g :: Vec.sub t.center g :: !pts)
    t.gens;
  Array.of_list !pts

(* Meet with the half-space [sign * x_i >= 0], implemented by tightening
   the ranges of the noise symbols against the induced linear constraint
   [Σ_g sign*g.(i) ε_g >= -sign*c.(i)] and renormalizing symbols back to
   [-1, 1].  Sound: only regions violating the constraint are cut. *)
let meet_halfspace t ~dim:i ~sign =
  let n = Array.length t.gens in
  let a = Array.init n (fun g -> sign *. t.gens.(g).(i)) in
  let r = -.sign *. t.center.(i) in
  let lo = Array.make n (-1.0) and hi = Array.make n 1.0 in
  let term_max g = Stdlib.max (a.(g) *. lo.(g)) (a.(g) *. hi.(g)) in
  let feasible = ref true in
  (* Two full tightening passes are enough in practice; each pass only
     shrinks ranges, so soundness does not depend on the pass count. *)
  for _pass = 1 to 2 do
    if !feasible then begin
      let total = ref 0.0 in
      for g = 0 to n - 1 do
        total := !total +. term_max g
      done;
      if !total < r then feasible := false
      else
        for g = 0 to n - 1 do
          if a.(g) <> 0.0 then begin
            let others = !total -. term_max g in
            let bound = (r -. others) /. a.(g) in
            let before = term_max g in
            if a.(g) > 0.0 then lo.(g) <- Stdlib.max lo.(g) bound
            else hi.(g) <- Stdlib.min hi.(g) bound;
            if lo.(g) > hi.(g) then feasible := false
            else total := !total -. before +. term_max g
          end
        done
    end
  done;
  if not !feasible then None
  else begin
    let center = Vec.copy t.center in
    let gens = Array.map Vec.copy t.gens in
    for g = 0 to n - 1 do
      let m = 0.5 *. (lo.(g) +. hi.(g)) and w = 0.5 *. (hi.(g) -. lo.(g)) in
      if m <> 0.0 || w <> 1.0 then begin
        Vec.axpy m gens.(g) center;
        Array.iteri (fun j x -> gens.(g).(j) <- w *. x) gens.(g)
      end
    done;
    Some { center; gens = prune gens }
  end

let meet_ge0 t i = meet_halfspace t ~dim:i ~sign:1.0

let meet_le0 t i = meet_halfspace t ~dim:i ~sign:(-1.0)

let project_zero t i =
  let center = Vec.copy t.center in
  let gens = Array.map Vec.copy t.gens in
  zero_dim ~center ~gens i;
  { center; gens = prune gens }

let relu_dim t i =
  let lo, hi = bounds t i in
  if lo >= 0.0 then t
  else if hi <= 0.0 then project_zero t i
  else begin
    let center = Vec.copy t.center in
    let gens = Array.map Vec.copy t.gens in
    let fresh = relu_crossing ~center ~gens i ~lo ~hi in
    { center; gens = prune (Array.append gens [| fresh |]) }
  end
