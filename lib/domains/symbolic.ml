open Linalg

(* Row i of [lo_w] / [lo_b] is an affine lower bound for neuron i over
   [box]; [up_w] / [up_b] bound it from above. *)
type t = {
  box : Box.t;
  lo_w : Mat.t;
  lo_b : Vec.t;
  up_w : Mat.t;
  up_b : Vec.t;
}

let name = "symbolic-interval"

let of_box box =
  let n = Box.dim box in
  {
    box;
    lo_w = Mat.identity n;
    lo_b = Vec.zeros n;
    up_w = Mat.identity n;
    up_b = Vec.zeros n;
  }

let dim t = t.lo_w.Mat.rows

let forms_dim t = Box.dim t.box

let form_min box w_row b =
  let acc = ref b in
  Array.iteri
    (fun j c ->
      acc := !acc +. if c >= 0.0 then c *. box.Box.lo.(j) else c *. box.Box.hi.(j))
    w_row;
  !acc

let form_max box w_row b =
  let acc = ref b in
  Array.iteri
    (fun j c ->
      acc := !acc +. if c >= 0.0 then c *. box.Box.hi.(j) else c *. box.Box.lo.(j))
    w_row;
  !acc

let bounds t i =
  ( form_min t.box (Mat.row t.lo_w i) t.lo_b.(i),
    form_max t.box (Mat.row t.up_w i) t.up_b.(i) )

let to_box t =
  let n = dim t in
  let lo = Vec.zeros n and hi = Vec.zeros n in
  for i = 0 to n - 1 do
    let l, h = bounds t i in
    lo.(i) <- l;
    hi.(i) <- h
  done;
  Box.create ~lo ~hi

let linear_lower t ~coeffs =
  if Vec.dim coeffs <> dim t then
    invalid_arg "Symbolic.linear_lower: dimension mismatch";
  (* Combine the lower form for positive coefficients with the upper
     form for negative ones, then minimize the combined affine form over
     the box: strictly tighter than combining concretized bounds. *)
  let n = forms_dim t in
  let w = Vec.zeros n in
  let b = ref 0.0 in
  Array.iteri
    (fun i c ->
      if c > 0.0 then begin
        for j = 0 to n - 1 do
          w.(j) <- w.(j) +. (c *. Mat.get t.lo_w i j)
        done;
        b := !b +. (c *. t.lo_b.(i))
      end
      else if c < 0.0 then begin
        for j = 0 to n - 1 do
          w.(j) <- w.(j) +. (c *. Mat.get t.up_w i j)
        done;
        b := !b +. (c *. t.up_b.(i))
      end)
    coeffs;
  form_min t.box w !b

let affine wm bv t =
  if wm.Mat.cols <> dim t then invalid_arg "Symbolic.affine: dimension mismatch";
  let n = forms_dim t in
  let rows = wm.Mat.rows in
  let lo_w = Mat.zeros rows n and up_w = Mat.zeros rows n in
  let lo_b = Vec.zeros rows and up_b = Vec.zeros rows in
  for r = 0 to rows - 1 do
    let lb = ref bv.(r) and ub = ref bv.(r) in
    for c = 0 to wm.Mat.cols - 1 do
      let wrc = Mat.get wm r c in
      if wrc > 0.0 then begin
        for j = 0 to n - 1 do
          Mat.set lo_w r j (Mat.get lo_w r j +. (wrc *. Mat.get t.lo_w c j));
          Mat.set up_w r j (Mat.get up_w r j +. (wrc *. Mat.get t.up_w c j))
        done;
        lb := !lb +. (wrc *. t.lo_b.(c));
        ub := !ub +. (wrc *. t.up_b.(c))
      end
      else if wrc < 0.0 then begin
        for j = 0 to n - 1 do
          Mat.set lo_w r j (Mat.get lo_w r j +. (wrc *. Mat.get t.up_w c j));
          Mat.set up_w r j (Mat.get up_w r j +. (wrc *. Mat.get t.lo_w c j))
        done;
        lb := !lb +. (wrc *. t.up_b.(c));
        ub := !ub +. (wrc *. t.lo_b.(c))
      end
    done;
    lo_b.(r) <- !lb;
    up_b.(r) <- !ub
  done;
  { t with lo_w; lo_b; up_w; up_b }

let scale_row w b i s =
  for j = 0 to w.Mat.cols - 1 do
    Mat.set w i j (s *. Mat.get w i j)
  done;
  b.(i) <- s *. b.(i)

let zero_row w b i =
  for j = 0 to w.Mat.cols - 1 do
    Mat.set w i j 0.0
  done;
  b.(i) <- 0.0

let relu t =
  let lo_w = Mat.copy t.lo_w and up_w = Mat.copy t.up_w in
  let lo_b = Vec.copy t.lo_b and up_b = Vec.copy t.up_b in
  for i = 0 to dim t - 1 do
    let l_lo = form_min t.box (Mat.row t.lo_w i) t.lo_b.(i) in
    let u_up = form_max t.box (Mat.row t.up_w i) t.up_b.(i) in
    if l_lo >= 0.0 then ()
    else if u_up <= 0.0 then begin
      zero_row lo_w lo_b i;
      zero_row up_w up_b i
    end
    else begin
      let l_up = form_min t.box (Mat.row t.up_w i) t.up_b.(i) in
      if l_up < 0.0 then begin
        let s = u_up /. (u_up -. l_up) in
        scale_row up_w up_b i s;
        up_b.(i) <- up_b.(i) -. (s *. l_up)
      end;
      let u_lo = form_max t.box (Mat.row t.lo_w i) t.lo_b.(i) in
      if u_lo <= 0.0 then zero_row lo_w lo_b i
      else begin
        let s = u_lo /. (u_lo -. l_lo) in
        scale_row lo_w lo_b i s
      end
    end
  done;
  { t with lo_w; lo_b; up_w; up_b }

(* Relational information cannot survive max pooling or joins in this
   representation; restart from the interval hull. *)
let maxpool p t = of_box (Interval.to_box (Interval.maxpool p (Interval.of_box (to_box t))))

let join a b = of_box (Box.hull (to_box a) (to_box b))

let sample rng t =
  (* Any point between the two forms evaluated at the same input is in
     the concretization. *)
  let x = Box.sample rng t.box in
  Vec.init (dim t) (fun i ->
      let lo = t.lo_b.(i) +. Vec.dot (Mat.row t.lo_w i) x in
      let hi = t.up_b.(i) +. Vec.dot (Mat.row t.up_w i) x in
      if hi > lo then Rng.uniform rng ~lo ~hi else lo)

let disjuncts _ = 1

let num_generators t = forms_dim t
