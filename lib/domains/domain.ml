type base =
  | Interval_base
  | Zonotope_base
  | Zonotope_join_base
  | Symbolic_base

type spec = { base : base; disjuncts : int }

let interval = { base = Interval_base; disjuncts = 1 }

let zonotope = { base = Zonotope_base; disjuncts = 1 }

let zonotope_join = { base = Zonotope_join_base; disjuncts = 1 }

let symbolic = { base = Symbolic_base; disjuncts = 1 }

let powerset base disjuncts =
  if disjuncts < 1 then invalid_arg "Domain.powerset: need at least 1 disjunct";
  if base = Symbolic_base && disjuncts > 1 then
    invalid_arg
      "Domain.powerset: the symbolic-interval domain has no half-space meet \
       and cannot be lifted to a powerset";
  { base; disjuncts }

let get spec : (module Domain_sig.S) =
  match (spec.base, spec.disjuncts) with
  | Interval_base, 1 -> (module Interval)
  | Zonotope_base, 1 -> (module Zonotope)
  | Zonotope_join_base, 1 -> (module Zonotope_join)
  | Symbolic_base, _ -> (module Symbolic)
  | Interval_base, k ->
      (module Powerset.Over
                (Interval)
                (struct
                  let max = k
                end))
  | Zonotope_base, k ->
      (module Powerset.Over
                (Zonotope)
                (struct
                  let max = k
                end))
  | Zonotope_join_base, k ->
      (module Powerset.Over
                (Zonotope_join)
                (struct
                  let max = k
                end))

let to_string spec =
  let b =
    match spec.base with
    | Interval_base -> "I"
    | Zonotope_base -> "Z"
    | Zonotope_join_base -> "ZJ"
    | Symbolic_base -> "S"
  in
  Printf.sprintf "%s%d" b spec.disjuncts

let of_string s =
  let parse base rest =
    match int_of_string_opt rest with
    | Some k when k >= 1 -> Some { base; disjuncts = k }
    | Some _ | None -> None
  in
  let n = String.length s in
  if n >= 3 && String.sub s 0 2 = "ZJ" then
    parse Zonotope_join_base (String.sub s 2 (n - 2))
  else if s = "S1" then Some symbolic
  else if n >= 2 && s.[0] = 'I' then parse Interval_base (String.sub s 1 (n - 1))
  else if n >= 2 && s.[0] = 'Z' then parse Zonotope_base (String.sub s 1 (n - 1))
  else None

let equal a b = a.base = b.base && a.disjuncts = b.disjuncts

let pp fmt spec = Format.pp_print_string fmt (to_string spec)

let all_cheap =
  [
    interval;
    powerset Interval_base 2;
    powerset Interval_base 4;
    zonotope;
    powerset Zonotope_base 2;
    powerset Zonotope_base 4;
  ]
