open Linalg

module Over
    (D : Domain_sig.BASE) (K : sig
      val max : int
    end) =
struct
  (* Invariant: a powerset element is a non-empty list of at most K.max
     base-domain disjuncts whose union covers the concrete set. *)
  type t = D.t list

  let () = if K.max < 1 then invalid_arg "Powerset.Over: max must be >= 1"

  let name = Printf.sprintf "%s-powerset-%d" D.name K.max

  let of_box b = [ D.of_box b ]

  let dim = function
    | [] -> invalid_arg "Powerset: empty element"
    | d :: _ -> D.dim d

  let to_box = function
    | [] -> invalid_arg "Powerset: empty element"
    | d :: rest ->
        let box =
          List.fold_left
            (fun acc d ->
              let b = D.to_box d in
              Box.create
                ~lo:(Vec.map2 Float.min acc.Box.lo b.Box.lo)
                ~hi:(Vec.map2 Float.max acc.Box.hi b.Box.hi))
            (D.to_box d) rest
        in
        box

  let bounds t i =
    List.fold_left
      (fun (lo, hi) d ->
        let l, h = D.bounds d i in
        (Float.min lo l, Float.max hi h))
      (infinity, neg_infinity) t

  let linear_lower t ~coeffs =
    List.fold_left
      (fun acc d -> Float.min acc (D.linear_lower d ~coeffs))
      infinity t

  let affine w b t = List.map (D.affine w b) t

  (* Merge down to the disjunct budget by repeatedly joining the two
     disjuncts whose box hulls are closest, which loses the least
     precision among the cheap strategies. *)
  let compact t =
    let arr = ref (Array.of_list t) in
    while Array.length !arr > K.max do
      let a = !arr in
      let n = Array.length a in
      let centers = Array.map (fun d -> Box.center (D.to_box d)) a in
      let bi = ref 0 and bj = ref 1 in
      let best = ref infinity in
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          let dist = Vec.dist2 centers.(i) centers.(j) in
          if dist < !best then begin
            best := dist;
            bi := i;
            bj := j
          end
        done
      done;
      let merged = D.join a.(!bi) a.(!bj) in
      let out = Array.make (n - 1) merged in
      let k = ref 1 in
      for i = 0 to n - 1 do
        if i <> !bi && i <> !bj then begin
          out.(!k) <- a.(i);
          incr k
        end
      done;
      arr := out
    done;
    Array.to_list !arr

  let relu t =
    let d = dim t in
    let pieces = ref t in
    for i = 0 to d - 1 do
      let next =
        List.concat_map
          (fun piece ->
            let lo, hi = D.bounds piece i in
            if lo >= 0.0 then [ piece ]
            else if hi <= 0.0 then [ D.project_zero piece i ]
            else if List.length !pieces < K.max then begin
              (* Case split: positive branch keeps the unit, negative
                 branch zeroes it.  Infeasible branches vanish. *)
              let pos =
                match D.meet_ge0 piece i with Some p -> [ p ] | None -> []
              in
              let neg =
                match D.meet_le0 piece i with
                | Some p -> [ D.project_zero p i ]
                | None -> []
              in
              match pos @ neg with
              | [] -> [ D.relu_dim piece i ] (* numeric corner: stay sound *)
              | branches -> branches
            end
            else [ D.relu_dim piece i ])
          !pieces
      in
      pieces := compact next
    done;
    !pieces

  let maxpool p t = List.map (D.maxpool p) t

  let join a b = compact (a @ b)

  let sample rng t =
    let arr = Array.of_list t in
    D.sample rng (Rng.choose rng arr)

  let disjuncts t = List.length t

  let num_generators t =
    List.fold_left (fun acc d -> acc + D.num_generators d) 0 t
end
