(** Canonical split partition: deterministic, query-independent cut
    points, and bit-exact subregion keys for the proof cache.

    Splitting every region at its canonical cut snaps all search trees
    onto one global dyadic partition of the input space (in the spirit
    of GAIO's [BoxPartition] and midpoint [split_half]): the cut is a
    function of the interval alone, so equal regions always split
    identically, and interior subregions of different overlapping root
    boxes coincide bit-for-bit.  That coincidence is what makes a
    subregion proof cache hit across queries: the key of a subregion is
    just its bounds, no root or split path required. *)

val canonical_cut : lo:float -> hi:float -> float
(** The unique coarsest dyadic rational [k * 2^p] strictly inside the
    open interval [(lo, hi)] — the largest spacing [2^p] with a grid
    point inside has exactly one such point, and it is the same point
    for every interval that contains it at that coarseness.  Falls back
    to the midpoint on pathological scaling (bounds astronomically far
    from zero relative to the width), which keeps the split sound but
    off the canonical grid.
    @raise Invalid_argument when the bounds are non-finite or
    [lo >= hi]. *)

val snap_split : Box.t -> dim:int -> float
(** [snap_split box ~dim] is [canonical_cut] applied to side [dim] of
    the box: the cut point to pass to [Box.split] so the children land
    on the canonical partition. *)

val key_of_box : Box.t -> string
(** Bit-exact encoding of the box bounds (16 opaque bytes per
    dimension).  Keys are equal exactly when every bound is the same
    IEEE double; intended to be digested together with the network and
    property identity by the proof cache. *)
