(** The zonotope abstract domain.

    A zonotope is an affine image of the unit hypercube: the set
    [{ c + Σ_g ε_g · g  |  ε ∈ [-1,1]^G }] for a center [c] and
    generators [g].  Affine transformations are exact; ReLU uses the
    standard single-zonotope approximation that introduces one fresh
    noise symbol per crossing unit, and case splits against the ReLU
    branch hyperplanes tighten the noise symbols' ranges (Ghorbal et
    al.-style constrained-zonotope meet), which is what the bounded
    powerset domain of the paper builds on. *)

include Domain_sig.BASE

val create : center:Linalg.Vec.t -> gens:Linalg.Vec.t array -> t
(** Direct construction.
    @raise Invalid_argument if a generator's dimension differs from the
    center's. *)

val center : t -> Linalg.Vec.t

val generators : t -> Linalg.Vec.t array

val meet_halfspace : t -> dim:int -> sign:float -> t option
(** Sound over-approximation of the meet with the half-space
    [sign * x_dim >= 0], by tightening the noise symbols' ranges against
    the induced linear constraint.  [None] when the intersection is
    provably empty.  [meet_ge0]/[meet_le0] are the [sign = ±1.0]
    instances. *)

val order_reduce : t -> max_gens:int -> t
(** Sound generator-count reduction: keeps the [max_gens - dim] largest
    generators and over-approximates the rest by per-dimension box
    generators.  Identity if the zonotope already fits. *)

val contains_sample : t -> Linalg.Vec.t array
(** A small deterministic set of concretization points (center and
    extreme points along each generator); used by tests. *)
