(** Symbolic-interval abstract domain (ReluVal-style bounds as a
    first-class domain).

    The paper compares against ReluVal externally because "our abstract
    interpretation engine does not support the domain used by ReluVal"
    (§7.4, footnote 8).  This module removes that limitation: every
    neuron is bounded below and above by affine forms over the
    {e element's input space}, which preserves input correlations that
    both intervals and (post-ReLU) zonotopes lose.

    The element tracks the affine forms relative to the box it was
    created from.  Operations that cannot be expressed relationally
    (max pooling, joins) soundly fall back to the interval hull, after
    which the forms restart as the identity over the hull box. *)

include Domain_sig.S

val forms_dim : t -> int
(** Dimension of the input space the current forms refer to (changes
    after an interval-hull fallback). *)
