(** Bounded powerset (finite disjunction) domains.

    [Over (D) (K)] lifts a base domain [D] to sets of at most [K.max]
    disjuncts.  The ReLU transformer case-splits each crossing unit into
    its two branches (meeting with the branch half-space) while the
    disjunct budget lasts, then falls back to [D]'s approximate ReLU —
    exactly the role of AI2's bounded powerset domains in the paper. *)

module Over (D : Domain_sig.BASE) (K : sig
  val max : int
  (** Maximum number of disjuncts; must be at least 1. *)
end) : Domain_sig.S
