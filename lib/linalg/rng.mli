(** Deterministic pseudo-random number generation.

    All randomness in the project flows through this module so that
    experiments, training runs and property tests are reproducible
    bit-for-bit from an explicit seed.  The generator is splitmix64,
    which is small, fast, and has no global state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream.  Used to
    hand child components their own seeds. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform over [0, n).  Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform over [0, x). *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform over [\[lo, hi\]]. *)

val gaussian : t -> float
(** Standard normal deviate (Box-Muller). *)

val bool : t -> bool
(** Fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly chosen element.  Requires a non-empty array. *)
