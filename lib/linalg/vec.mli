(** Dense float vectors.

    A thin layer over [float array] providing the operations the rest of
    the project needs.  All binary operations require equal lengths and
    raise [Invalid_argument] otherwise. *)

type t = float array

val create : int -> float -> t
(** [create n x] is the length-[n] vector filled with [x]. *)

val zeros : int -> t

val init : int -> (int -> float) -> t

val copy : t -> t

val dim : t -> int

val of_list : float list -> t

val to_list : t -> float list

val add : t -> t -> t

val sub : t -> t -> t

val mul : t -> t -> t
(** Component-wise product. *)

val scale : float -> t -> t

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float

val dist2 : t -> t -> float
(** Euclidean distance. *)

val sum : t -> float

val mean : t -> float

val max : t -> float
(** Largest component.  Requires a non-empty vector. *)

val min : t -> float

val argmax : t -> int
(** Index of the largest component (first on ties).  Requires non-empty. *)

val argmin : t -> int

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t

val iteri : (int -> float -> unit) -> t -> unit

val clamp : lo:t -> hi:t -> t -> t
(** Component-wise projection of a point into the box [\[lo, hi\]]. *)

val relu : t -> t
(** Component-wise [max 0]. *)

val approx_equal : ?eps:float -> t -> t -> bool
(** Component-wise comparison with absolute tolerance [eps]
    (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
