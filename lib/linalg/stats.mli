(** Small descriptive-statistics helpers used by the experiment harness. *)

val mean : float array -> float
(** Arithmetic mean.  Requires a non-empty array. *)

val variance : float array -> float
(** Unbiased sample variance (zero for arrays of length < 2). *)

val stddev : float array -> float

val median : float array -> float
(** Median of a copy of the input (the input is not mutated).
    Requires a non-empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]], linear interpolation.
    Requires a non-empty array. *)

val geometric_mean : float array -> float
(** Geometric mean.  Requires all entries positive. *)
