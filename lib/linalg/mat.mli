(** Dense row-major float matrices. *)

type t = {
  rows : int;
  cols : int;
  data : float array;  (** row-major, length [rows * cols] *)
}

val create : int -> int -> float -> t

val zeros : int -> int -> t

val identity : int -> t

val init : int -> int -> (int -> int -> float) -> t
(** [init r c f] builds the matrix with entry [(i, j)] equal to [f i j]. *)

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val copy : t -> t

val of_rows : float array array -> t
(** Build from an array of equal-length rows.  Requires at least one row. *)

val row : t -> int -> Vec.t

val col : t -> int -> Vec.t

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val add_into : t -> t -> into:t -> unit
(** [add_into a b ~into] writes [a + b] into [into] without allocating.
    [into] may alias [a] or [b]. *)

val scale : float -> t -> t

val scale_inplace : float -> t -> unit
(** [scale_inplace c a] performs [a <- c * a] in place. *)

val axpy : float -> t -> t -> unit
(** [axpy alpha x y] performs [y <- alpha * x + y] in place.  Requires
    matching shapes. *)

val matvec : t -> Vec.t -> Vec.t
(** [matvec m x] is [m * x].  Requires [m.cols = dim x]. *)

val matvec_t : t -> Vec.t -> Vec.t
(** [matvec_t m x] is [transpose m * x] without materialising the
    transpose.  Requires [m.rows = dim x]. *)

val gemm :
  ?jobs:int ->
  ?transa:bool -> ?transb:bool -> ?alpha:float -> ?beta:float -> t -> t -> t -> unit
(** [gemm ?jobs ?transa ?transb ~alpha ~beta a b c] performs the BLAS-3
    update [c <- alpha * op(a) * op(b) + beta * c] in place, where [op]
    is the transpose when the corresponding flag is set (default
    [false]).  [alpha] defaults to [1.0] and [beta] to [0.0]
    (overwrite).  The kernel is cache-blocked with a register-tiled 4x4
    inner loop; a transposed [a] is staged once into a per-domain
    scratch buffer.

    [jobs > 1] splits the output into row panels executed on the
    persistent kernel-helper team ({!Parallel.Kpool}).  Panel bounds
    are multiples of 4 rows and each output cell is written by exactly
    one panel, so the result is {b bit-identical} for every worker
    count (including sequential execution).  An explicit [~jobs] always
    engages the panels; when omitted, the ambient default from
    {!with_default_jobs} applies, subject to a flop-count threshold
    that keeps small products sequential.
    @raise Invalid_argument on shape mismatch. *)

val default_jobs : unit -> int
(** The calling domain's ambient worker count for [gemm] calls that
    omit [?jobs] (default [1]). *)

val with_default_jobs : int -> (unit -> 'a) -> 'a
(** [with_default_jobs jobs f] runs [f] with the calling domain's
    ambient [gemm] worker count set to [max 1 jobs], restoring the
    previous value afterwards (also on exceptions).  This is how the
    verifier grants kernel parallelism to a region worker without
    threading [?jobs] through every [Domain_sig.S] operation. *)

val with_scratch : int -> int -> (t -> 'a) -> 'a
(** [with_scratch rows cols f] calls [f] with a zero-filled
    [rows * cols] matrix backed by the per-domain {!Scratch} arena and
    recycles the buffer when [f] returns.  The matrix must not escape
    [f]; see {!Scratch.with_floats}. *)

val matmul : t -> t -> t
(** [matmul a b] is [op-free gemm] into a fresh matrix: [a * b]. *)

val outer : Vec.t -> Vec.t -> t
(** [outer u v] is the rank-one matrix [u v^T]. *)

val abs_row_sums : t -> Vec.t
(** Vector of L1 norms of each row; used for interval propagation. *)

val frobenius : t -> float

val approx_equal : ?eps:float -> t -> t -> bool

val cholesky : t -> t
(** [cholesky a] returns the lower-triangular [l] with [l * l^T = a] for a
    symmetric positive-definite [a].
    @raise Failure if the matrix is not numerically positive definite. *)

val cholesky_solve : t -> Vec.t -> Vec.t
(** [cholesky_solve l b] solves [l l^T x = b] given the Cholesky factor
    [l] (forward then backward substitution). *)

val solve_lower : t -> Vec.t -> Vec.t
(** Forward substitution with a lower-triangular matrix. *)

val solve_upper_from_lower_t : t -> Vec.t -> Vec.t
(** [solve_upper_from_lower_t l b] solves [l^T x = b] by backward
    substitution, reading [l] as the transposed upper factor. *)

val pp : Format.formatter -> t -> unit
