(** Dense row-major float matrices. *)

type t = {
  rows : int;
  cols : int;
  data : float array;  (** row-major, length [rows * cols] *)
}

val create : int -> int -> float -> t

val zeros : int -> int -> t

val identity : int -> t

val init : int -> int -> (int -> int -> float) -> t
(** [init r c f] builds the matrix with entry [(i, j)] equal to [f i j]. *)

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val copy : t -> t

val of_rows : float array array -> t
(** Build from an array of equal-length rows.  Requires at least one row. *)

val row : t -> int -> Vec.t

val col : t -> int -> Vec.t

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val matvec : t -> Vec.t -> Vec.t
(** [matvec m x] is [m * x].  Requires [m.cols = dim x]. *)

val matvec_t : t -> Vec.t -> Vec.t
(** [matvec_t m x] is [transpose m * x] without materialising the
    transpose.  Requires [m.rows = dim x]. *)

val matmul : t -> t -> t

val outer : Vec.t -> Vec.t -> t
(** [outer u v] is the rank-one matrix [u v^T]. *)

val abs_row_sums : t -> Vec.t
(** Vector of L1 norms of each row; used for interval propagation. *)

val frobenius : t -> float

val approx_equal : ?eps:float -> t -> t -> bool

val cholesky : t -> t
(** [cholesky a] returns the lower-triangular [l] with [l * l^T = a] for a
    symmetric positive-definite [a].
    @raise Failure if the matrix is not numerically positive definite. *)

val cholesky_solve : t -> Vec.t -> Vec.t
(** [cholesky_solve l b] solves [l l^T x = b] given the Cholesky factor
    [l] (forward then backward substitution). *)

val solve_lower : t -> Vec.t -> Vec.t
(** Forward substitution with a lower-triangular matrix. *)

val solve_upper_from_lower_t : t -> Vec.t -> Vec.t
(** [solve_upper_from_lower_t l b] solves [l^T x = b] by backward
    substitution, reading [l] as the transposed upper factor. *)

val pp : Format.formatter -> t -> unit
