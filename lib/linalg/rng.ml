(* One stream per owner — parallel workers get their own stream via
   [split] at push time and never touch the parent's. *)
type t = { mutable state : int64 } [@@race.domain_local]

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = s }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for the
     small bounds used in this project, but we still mask to 62 bits to
     stay non-negative. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let float t x =
  (* 53 random bits scaled to [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  let u = float_of_int bits /. 9007199254740992.0 in
  u *. x

let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let gaussian t =
  (* Box-Muller; we draw until u1 is nonzero to avoid log 0. *)
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () in
  let u2 = float t 1.0 in
  sqrt (-2.0 *. Stdlib.log u1) *. cos (2.0 *. Float.pi *. u2)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
