type t = { rows : int; cols : int; data : float array }

let create rows cols x =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) x }

let zeros rows cols = create rows cols 0.0

let init rows cols f =
  let data = Array.make (rows * cols) 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let get m i j = m.data.((i * m.cols) + j)

let set m i j x = m.data.((i * m.cols) + j) <- x

let copy m = { m with data = Array.copy m.data }

let of_rows rows =
  let r = Array.length rows in
  if r = 0 then invalid_arg "Mat.of_rows: no rows";
  let c = Array.length rows.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> c then invalid_arg "Mat.of_rows: ragged rows")
    rows;
  init r c (fun i j -> rows.(i).(j))

let row m i = Array.sub m.data (i * m.cols) m.cols

let col m j = Array.init m.rows (fun i -> get m i j)

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: shape mismatch (%dx%d vs %dx%d)" name a.rows
         a.cols b.rows b.cols)

let add a b =
  check_same "add" a b;
  let n = Array.length a.data in
  let data = Array.make n 0.0 in
  let ad = a.data and bd = b.data in
  for i = 0 to n - 1 do
    Array.unsafe_set data i
      (Array.unsafe_get ad i +. Array.unsafe_get bd i)
  done;
  { a with data }

let sub a b =
  check_same "sub" a b;
  let n = Array.length a.data in
  let data = Array.make n 0.0 in
  let ad = a.data and bd = b.data in
  for i = 0 to n - 1 do
    Array.unsafe_set data i
      (Array.unsafe_get ad i -. Array.unsafe_get bd i)
  done;
  { a with data }

let add_into a b ~into =
  check_same "add_into" a b;
  check_same "add_into" a into;
  let ad = a.data and bd = b.data and dst = into.data in
  for i = 0 to Array.length ad - 1 do
    Array.unsafe_set dst i (Array.unsafe_get ad i +. Array.unsafe_get bd i)
  done

let scale c a = { a with data = Array.map (fun x -> c *. x) a.data }

let scale_inplace c a =
  let d = a.data in
  for i = 0 to Array.length d - 1 do
    Array.unsafe_set d i (c *. Array.unsafe_get d i)
  done

let axpy alpha x y =
  check_same "axpy" x y;
  let xd = x.data and yd = y.data in
  for i = 0 to Array.length xd - 1 do
    Array.unsafe_set yd i
      ((alpha *. Array.unsafe_get xd i) +. Array.unsafe_get yd i)
  done

let matvec m x =
  if m.cols <> Array.length x then
    invalid_arg
      (Printf.sprintf "Mat.matvec: %dx%d with vector of dim %d" m.rows m.cols
         (Array.length x));
  let y = Array.make m.rows 0.0 in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let acc = ref 0.0 in
    for j = 0 to m.cols - 1 do
      acc := !acc +. (m.data.(base + j) *. x.(j))
    done;
    y.(i) <- !acc
  done;
  y

let matvec_t m x =
  if m.rows <> Array.length x then
    invalid_arg
      (Printf.sprintf "Mat.matvec_t: %dx%d with vector of dim %d" m.rows
         m.cols (Array.length x));
  let y = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let xi = x.(i) in
    if xi <> 0.0 then
      for j = 0 to m.cols - 1 do
        y.(j) <- y.(j) +. (m.data.(base + j) *. xi)
      done
  done;
  y

(* ------------------------------------------------------------------ *)
(* Batched GEMM.

   [gemm] computes [c <- alpha * op(a) * op(b) + beta * c] where [op]
   is the identity or the transpose.  Two register-tiled inner kernels
   cover the storage layouts without ever packing [b]:

   - [B^T] products ([transb]) use a 4x4 tile of dot products — both
     operands are then streamed along contiguous rows, so the hot
     zonotope case [G W^T] (and single-row layer forwards) needs no
     transpose copy at all;
   - plain products use a 4x4 tile that broadcasts [a] values over
     contiguous row segments of [b].

   Each tile is unrolled twice over the inner dimension: 16
   accumulators live in unboxed float cells while 16 operand loads feed
   32 multiply-adds per unrolled step, instead of the 1 load : 1
   multiply ratio of a row-at-a-time matvec sweep.  A transposed [a] is
   packed once into a contiguous buffer (O(m*k), amortized over all of
   [n]).  Outer loops block the [n] and [k] dimensions so the streamed
   panel of [b] stays cache-resident for every row block of [a]. *)

(* Transpose staging for [transa]: writes [m]^T into [t] (a scratch
   borrow of exactly [rows * cols] floats, so no allocation on the hot
   path). *)
let transpose_into m t =
  let r = m.rows and c = m.cols in
  for i = 0 to r - 1 do
    let base = i * c in
    for j = 0 to c - 1 do
      Array.unsafe_set t ((j * r) + i) (Array.unsafe_get m.data (base + j))
    done
  done

(* Blocking parameters: a [block_n]-wide panel of [b] over [block_k]
   inner steps is ~512KB of doubles, sized to stay within L2 (and to
   keep the inner dimension of typical verifier layers in one block, so
   accumulator tiles are loaded and flushed only once per output). *)
let block_n = 128

let block_k = 512

(* cd rows [i_lo, i_hi) of an (m x n) output += alpha * (rows [i_lo,
   i_hi) of ad, an m x k row-major matrix) * bd^T, where bd holds n rows
   of length k.  Every row is streamed contiguously.

   The row range is the parallel partition axis: [gemm ~jobs] hands
   each task a panel whose bounds are multiples of 4 (except [i_hi] of
   the last panel, which is [m]), so every row goes through exactly the
   same inner kernel — 4x4 tile or edge — and the same k-blocked
   accumulation order as the sequential [i_lo = 0, i_hi = m] sweep.
   That is the whole bit-identity argument: each output cell is written
   by exactly one task, via the identical float operation sequence. *)
let gemm_nt ~i_lo ~i_hi ~n ~k ~alpha ad bd cd =
  (* Dot-product edge kernel for tile remainders. *)
  let edge i_lo i_hi j_lo j_hi p_lo p_hi =
    for i = i_lo to i_hi - 1 do
      let abase = i * k and cbase = i * n in
      for j = j_lo to j_hi - 1 do
        let bbase = j * k in
        let acc = ref 0.0 in
        for p = p_lo to p_hi - 1 do
          acc :=
            !acc
            +. (Array.unsafe_get ad (abase + p)
                *. Array.unsafe_get bd (bbase + p))
        done;
        Array.unsafe_set cd (cbase + j)
          (Array.unsafe_get cd (cbase + j) +. (alpha *. !acc))
      done
    done
  in
  let tile4x4 i0 j0 p_lo p_hi =
    let r0 = i0 * k and r1 = (i0 + 1) * k
    and r2 = (i0 + 2) * k and r3 = (i0 + 3) * k in
    let s0 = j0 * k and s1 = (j0 + 1) * k
    and s2 = (j0 + 2) * k and s3 = (j0 + 3) * k in
    let c00 = ref 0.0 and c01 = ref 0.0 and c02 = ref 0.0 and c03 = ref 0.0
    and c10 = ref 0.0 and c11 = ref 0.0 and c12 = ref 0.0 and c13 = ref 0.0
    and c20 = ref 0.0 and c21 = ref 0.0 and c22 = ref 0.0 and c23 = ref 0.0
    and c30 = ref 0.0 and c31 = ref 0.0 and c32 = ref 0.0 and c33 = ref 0.0
    in
    (* 4-way k-unroll: without flambda each accumulator [:=] is a heap
       store, so folding four multiply-adds into one update quarters
       the accumulator traffic per flop.  The tile is processed as two
       2x4 halves so only ~12 float values are live at once (8 hoisted
       [a] values plus one [b] quad) — a full 4x4 body keeps 32 values
       live against 16 xmm registers and spills.  Products are summed
       as a tree to keep the accumulator dependency chain one add
       deep. *)
    let p = ref p_lo in
    while !p + 3 < p_hi do
      let pa = !p in
      (* Rows i0, i0+1. *)
      let a00 = Array.unsafe_get ad (r0 + pa)
      and a01 = Array.unsafe_get ad (r0 + pa + 1)
      and a02 = Array.unsafe_get ad (r0 + pa + 2)
      and a03 = Array.unsafe_get ad (r0 + pa + 3)
      and a10 = Array.unsafe_get ad (r1 + pa)
      and a11 = Array.unsafe_get ad (r1 + pa + 1)
      and a12 = Array.unsafe_get ad (r1 + pa + 2)
      and a13 = Array.unsafe_get ad (r1 + pa + 3) in
      (let b0 = Array.unsafe_get bd (s0 + pa)
       and b1 = Array.unsafe_get bd (s0 + pa + 1)
       and b2 = Array.unsafe_get bd (s0 + pa + 2)
       and b3 = Array.unsafe_get bd (s0 + pa + 3) in
       c00 := !c00 +. (((a00 *. b0) +. (a01 *. b1)) +. ((a02 *. b2) +. (a03 *. b3)));
       c10 := !c10 +. (((a10 *. b0) +. (a11 *. b1)) +. ((a12 *. b2) +. (a13 *. b3))));
      (let b0 = Array.unsafe_get bd (s1 + pa)
       and b1 = Array.unsafe_get bd (s1 + pa + 1)
       and b2 = Array.unsafe_get bd (s1 + pa + 2)
       and b3 = Array.unsafe_get bd (s1 + pa + 3) in
       c01 := !c01 +. (((a00 *. b0) +. (a01 *. b1)) +. ((a02 *. b2) +. (a03 *. b3)));
       c11 := !c11 +. (((a10 *. b0) +. (a11 *. b1)) +. ((a12 *. b2) +. (a13 *. b3))));
      (let b0 = Array.unsafe_get bd (s2 + pa)
       and b1 = Array.unsafe_get bd (s2 + pa + 1)
       and b2 = Array.unsafe_get bd (s2 + pa + 2)
       and b3 = Array.unsafe_get bd (s2 + pa + 3) in
       c02 := !c02 +. (((a00 *. b0) +. (a01 *. b1)) +. ((a02 *. b2) +. (a03 *. b3)));
       c12 := !c12 +. (((a10 *. b0) +. (a11 *. b1)) +. ((a12 *. b2) +. (a13 *. b3))));
      (let b0 = Array.unsafe_get bd (s3 + pa)
       and b1 = Array.unsafe_get bd (s3 + pa + 1)
       and b2 = Array.unsafe_get bd (s3 + pa + 2)
       and b3 = Array.unsafe_get bd (s3 + pa + 3) in
       c03 := !c03 +. (((a00 *. b0) +. (a01 *. b1)) +. ((a02 *. b2) +. (a03 *. b3)));
       c13 := !c13 +. (((a10 *. b0) +. (a11 *. b1)) +. ((a12 *. b2) +. (a13 *. b3))));
      (* Rows i0+2, i0+3. *)
      let a20 = Array.unsafe_get ad (r2 + pa)
      and a21 = Array.unsafe_get ad (r2 + pa + 1)
      and a22 = Array.unsafe_get ad (r2 + pa + 2)
      and a23 = Array.unsafe_get ad (r2 + pa + 3)
      and a30 = Array.unsafe_get ad (r3 + pa)
      and a31 = Array.unsafe_get ad (r3 + pa + 1)
      and a32 = Array.unsafe_get ad (r3 + pa + 2)
      and a33 = Array.unsafe_get ad (r3 + pa + 3) in
      (let b0 = Array.unsafe_get bd (s0 + pa)
       and b1 = Array.unsafe_get bd (s0 + pa + 1)
       and b2 = Array.unsafe_get bd (s0 + pa + 2)
       and b3 = Array.unsafe_get bd (s0 + pa + 3) in
       c20 := !c20 +. (((a20 *. b0) +. (a21 *. b1)) +. ((a22 *. b2) +. (a23 *. b3)));
       c30 := !c30 +. (((a30 *. b0) +. (a31 *. b1)) +. ((a32 *. b2) +. (a33 *. b3))));
      (let b0 = Array.unsafe_get bd (s1 + pa)
       and b1 = Array.unsafe_get bd (s1 + pa + 1)
       and b2 = Array.unsafe_get bd (s1 + pa + 2)
       and b3 = Array.unsafe_get bd (s1 + pa + 3) in
       c21 := !c21 +. (((a20 *. b0) +. (a21 *. b1)) +. ((a22 *. b2) +. (a23 *. b3)));
       c31 := !c31 +. (((a30 *. b0) +. (a31 *. b1)) +. ((a32 *. b2) +. (a33 *. b3))));
      (let b0 = Array.unsafe_get bd (s2 + pa)
       and b1 = Array.unsafe_get bd (s2 + pa + 1)
       and b2 = Array.unsafe_get bd (s2 + pa + 2)
       and b3 = Array.unsafe_get bd (s2 + pa + 3) in
       c22 := !c22 +. (((a20 *. b0) +. (a21 *. b1)) +. ((a22 *. b2) +. (a23 *. b3)));
       c32 := !c32 +. (((a30 *. b0) +. (a31 *. b1)) +. ((a32 *. b2) +. (a33 *. b3))));
      (let b0 = Array.unsafe_get bd (s3 + pa)
       and b1 = Array.unsafe_get bd (s3 + pa + 1)
       and b2 = Array.unsafe_get bd (s3 + pa + 2)
       and b3 = Array.unsafe_get bd (s3 + pa + 3) in
       c23 := !c23 +. (((a20 *. b0) +. (a21 *. b1)) +. ((a22 *. b2) +. (a23 *. b3)));
       c33 := !c33 +. (((a30 *. b0) +. (a31 *. b1)) +. ((a32 *. b2) +. (a33 *. b3))));
      p := !p + 4
    done;
    while !p < p_hi do
      let pa = !p in
      let a0 = Array.unsafe_get ad (r0 + pa)
      and a1 = Array.unsafe_get ad (r1 + pa)
      and a2 = Array.unsafe_get ad (r2 + pa)
      and a3 = Array.unsafe_get ad (r3 + pa) in
      let b0 = Array.unsafe_get bd (s0 + pa)
      and b1 = Array.unsafe_get bd (s1 + pa)
      and b2 = Array.unsafe_get bd (s2 + pa)
      and b3 = Array.unsafe_get bd (s3 + pa) in
      c00 := !c00 +. (a0 *. b0);
      c01 := !c01 +. (a0 *. b1);
      c02 := !c02 +. (a0 *. b2);
      c03 := !c03 +. (a0 *. b3);
      c10 := !c10 +. (a1 *. b0);
      c11 := !c11 +. (a1 *. b1);
      c12 := !c12 +. (a1 *. b2);
      c13 := !c13 +. (a1 *. b3);
      c20 := !c20 +. (a2 *. b0);
      c21 := !c21 +. (a2 *. b1);
      c22 := !c22 +. (a2 *. b2);
      c23 := !c23 +. (a2 *. b3);
      c30 := !c30 +. (a3 *. b0);
      c31 := !c31 +. (a3 *. b1);
      c32 := !c32 +. (a3 *. b2);
      c33 := !c33 +. (a3 *. b3);
      incr p
    done;
    let st row v0 v1 v2 v3 =
      let base = (row * n) + j0 in
      Array.unsafe_set cd base (Array.unsafe_get cd base +. (alpha *. v0));
      Array.unsafe_set cd (base + 1)
        (Array.unsafe_get cd (base + 1) +. (alpha *. v1));
      Array.unsafe_set cd (base + 2)
        (Array.unsafe_get cd (base + 2) +. (alpha *. v2));
      Array.unsafe_set cd (base + 3)
        (Array.unsafe_get cd (base + 3) +. (alpha *. v3))
    in
    st i0 !c00 !c01 !c02 !c03;
    st (i0 + 1) !c10 !c11 !c12 !c13;
    st (i0 + 2) !c20 !c21 !c22 !c23;
    st (i0 + 3) !c30 !c31 !c32 !c33
  in
  let jj = ref 0 in
  while !jj < n do
    let j_hi = Stdlib.min n (!jj + block_n) in
    let j_tiled = !jj + ((j_hi - !jj) / 4 * 4) in
    let pp = ref 0 in
    while !pp < k do
      let p_hi = Stdlib.min k (!pp + block_k) in
      let i = ref i_lo in
      while !i + 3 < i_hi do
        let j = ref !jj in
        while !j < j_tiled do
          tile4x4 !i !j !pp p_hi;
          j := !j + 4
        done;
        if j_tiled < j_hi then edge !i (!i + 4) j_tiled j_hi !pp p_hi;
        i := !i + 4
      done;
      if !i < i_hi then edge !i i_hi !jj j_hi !pp p_hi;
      pp := p_hi
    done;
    jj := j_hi
  done

(* cd rows [i_lo, i_hi) += alpha * (rows [i_lo, i_hi) of ad, m x k
   row-major) * bd (k x n, row-major).  Same row-range contract as
   [gemm_nt]. *)
let gemm_nn ~i_lo ~i_hi ~n ~k ~alpha ad bd cd =
  (* Broadcast-accumulate edge kernel: streams contiguous [b] and [c]
     row segments (matvec_t style) for row remainders of the tiling. *)
  let edge i_lo i_hi j_lo j_hi p_lo p_hi =
    for i = i_lo to i_hi - 1 do
      let abase = i * k and cbase = i * n in
      for p = p_lo to p_hi - 1 do
        let av = alpha *. Array.unsafe_get ad (abase + p) in
        if av <> 0.0 then begin
          let bbase = p * n in
          for j = j_lo to j_hi - 1 do
            Array.unsafe_set cd (cbase + j)
              (Array.unsafe_get cd (cbase + j)
              +. (av *. Array.unsafe_get bd (bbase + j)))
          done
        end
      done
    done
  in
  let tile4x4 i0 j0 p_lo p_hi =
    let r0 = i0 * k and r1 = (i0 + 1) * k
    and r2 = (i0 + 2) * k and r3 = (i0 + 3) * k in
    let c00 = ref 0.0 and c01 = ref 0.0 and c02 = ref 0.0 and c03 = ref 0.0
    and c10 = ref 0.0 and c11 = ref 0.0 and c12 = ref 0.0 and c13 = ref 0.0
    and c20 = ref 0.0 and c21 = ref 0.0 and c22 = ref 0.0 and c23 = ref 0.0
    and c30 = ref 0.0 and c31 = ref 0.0 and c32 = ref 0.0 and c33 = ref 0.0
    in
    let p = ref p_lo in
    while !p + 1 < p_hi do
      let pa = !p and pb = !p + 1 in
      let a0 = Array.unsafe_get ad (r0 + pa)
      and a1 = Array.unsafe_get ad (r1 + pa)
      and a2 = Array.unsafe_get ad (r2 + pa)
      and a3 = Array.unsafe_get ad (r3 + pa)
      and a0' = Array.unsafe_get ad (r0 + pb)
      and a1' = Array.unsafe_get ad (r1 + pb)
      and a2' = Array.unsafe_get ad (r2 + pb)
      and a3' = Array.unsafe_get ad (r3 + pb) in
      let ba = (pa * n) + j0 and bb = (pb * n) + j0 in
      let b0 = Array.unsafe_get bd ba
      and b1 = Array.unsafe_get bd (ba + 1)
      and b2 = Array.unsafe_get bd (ba + 2)
      and b3 = Array.unsafe_get bd (ba + 3)
      and b0' = Array.unsafe_get bd bb
      and b1' = Array.unsafe_get bd (bb + 1)
      and b2' = Array.unsafe_get bd (bb + 2)
      and b3' = Array.unsafe_get bd (bb + 3) in
      c00 := !c00 +. (a0 *. b0) +. (a0' *. b0');
      c01 := !c01 +. (a0 *. b1) +. (a0' *. b1');
      c02 := !c02 +. (a0 *. b2) +. (a0' *. b2');
      c03 := !c03 +. (a0 *. b3) +. (a0' *. b3');
      c10 := !c10 +. (a1 *. b0) +. (a1' *. b0');
      c11 := !c11 +. (a1 *. b1) +. (a1' *. b1');
      c12 := !c12 +. (a1 *. b2) +. (a1' *. b2');
      c13 := !c13 +. (a1 *. b3) +. (a1' *. b3');
      c20 := !c20 +. (a2 *. b0) +. (a2' *. b0');
      c21 := !c21 +. (a2 *. b1) +. (a2' *. b1');
      c22 := !c22 +. (a2 *. b2) +. (a2' *. b2');
      c23 := !c23 +. (a2 *. b3) +. (a2' *. b3');
      c30 := !c30 +. (a3 *. b0) +. (a3' *. b0');
      c31 := !c31 +. (a3 *. b1) +. (a3' *. b1');
      c32 := !c32 +. (a3 *. b2) +. (a3' *. b2');
      c33 := !c33 +. (a3 *. b3) +. (a3' *. b3');
      p := !p + 2
    done;
    if !p < p_hi then begin
      let pa = !p in
      let a0 = Array.unsafe_get ad (r0 + pa)
      and a1 = Array.unsafe_get ad (r1 + pa)
      and a2 = Array.unsafe_get ad (r2 + pa)
      and a3 = Array.unsafe_get ad (r3 + pa) in
      let ba = (pa * n) + j0 in
      let b0 = Array.unsafe_get bd ba
      and b1 = Array.unsafe_get bd (ba + 1)
      and b2 = Array.unsafe_get bd (ba + 2)
      and b3 = Array.unsafe_get bd (ba + 3) in
      c00 := !c00 +. (a0 *. b0);
      c01 := !c01 +. (a0 *. b1);
      c02 := !c02 +. (a0 *. b2);
      c03 := !c03 +. (a0 *. b3);
      c10 := !c10 +. (a1 *. b0);
      c11 := !c11 +. (a1 *. b1);
      c12 := !c12 +. (a1 *. b2);
      c13 := !c13 +. (a1 *. b3);
      c20 := !c20 +. (a2 *. b0);
      c21 := !c21 +. (a2 *. b1);
      c22 := !c22 +. (a2 *. b2);
      c23 := !c23 +. (a2 *. b3);
      c30 := !c30 +. (a3 *. b0);
      c31 := !c31 +. (a3 *. b1);
      c32 := !c32 +. (a3 *. b2);
      c33 := !c33 +. (a3 *. b3)
    end;
    let st row v0 v1 v2 v3 =
      let base = (row * n) + j0 in
      Array.unsafe_set cd base (Array.unsafe_get cd base +. (alpha *. v0));
      Array.unsafe_set cd (base + 1)
        (Array.unsafe_get cd (base + 1) +. (alpha *. v1));
      Array.unsafe_set cd (base + 2)
        (Array.unsafe_get cd (base + 2) +. (alpha *. v2));
      Array.unsafe_set cd (base + 3)
        (Array.unsafe_get cd (base + 3) +. (alpha *. v3))
    in
    st i0 !c00 !c01 !c02 !c03;
    st (i0 + 1) !c10 !c11 !c12 !c13;
    st (i0 + 2) !c20 !c21 !c22 !c23;
    st (i0 + 3) !c30 !c31 !c32 !c33
  in
  let jj = ref 0 in
  while !jj < n do
    let j_hi = Stdlib.min n (!jj + block_n) in
    let j_tiled = !jj + ((j_hi - !jj) / 4 * 4) in
    let pp = ref 0 in
    while !pp < k do
      let p_hi = Stdlib.min k (!pp + block_k) in
      let i = ref i_lo in
      while !i + 3 < i_hi do
        let j = ref !jj in
        while !j < j_tiled do
          tile4x4 !i !j !pp p_hi;
          j := !j + 4
        done;
        if j_tiled < j_hi then edge !i (!i + 4) j_tiled j_hi !pp p_hi;
        i := !i + 4
      done;
      if !i < i_hi then edge !i i_hi !jj j_hi !pp p_hi;
      pp := p_hi
    done;
    jj := j_hi
  done

(* ------------------------------------------------------------------ *)
(* Parallel driver.

   [gemm ~jobs] splits the output into row panels and runs them on the
   persistent kernel-helper team ({!Parallel.Kpool}).  Panels start at
   multiples of 4 rows so each row meets exactly the kernel (4x4 tile
   vs edge) and accumulation order it would meet sequentially, and each
   output cell is written by exactly one panel — results are therefore
   bit-identical for every worker count, including 1.

   When [?jobs] is omitted the ambient default applies (set by
   {!with_default_jobs}, the verifier's nesting policy): kernels then
   fan out only above [parallel_min_flops], so the many small products
   of a narrow layer stay on the calling domain.  An explicit
   [~jobs:n] bypasses the threshold (benchmarks, tests). *)

let ambient_jobs = Domain.DLS.new_key (fun () -> 1)

let default_jobs () = Domain.DLS.get ambient_jobs

let with_default_jobs jobs f =
  let saved = Domain.DLS.get ambient_jobs in
  Domain.DLS.set ambient_jobs (Stdlib.max 1 jobs);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_jobs saved) f

(* Ambient fan-out threshold, in flops (2*m*n*k): below this a
   broadcast + park round-trip costs more than the kernel itself. *)
let parallel_min_flops = 4_000_000.0

let c_parallel = Telemetry.Metrics.counter "kernel.gemm.parallel_calls"

let c_fallback = Telemetry.Metrics.counter "kernel.gemm.sequential_fallbacks"

let gemm ?jobs ?(transa = false) ?(transb = false) ?(alpha = 1.0)
    ?(beta = 0.0) a b c =
  let m = if transa then a.cols else a.rows
  and kd = if transa then a.rows else a.cols
  and kb = if transb then b.cols else b.rows
  and n = if transb then b.rows else b.cols in
  if kd <> kb then
    invalid_arg
      (Printf.sprintf "Mat.gemm: inner dimension mismatch (%d vs %d)" kd kb);
  if c.rows <> m || c.cols <> n then
    invalid_arg
      (Printf.sprintf "Mat.gemm: output is %dx%d, expected %dx%d" c.rows
         c.cols m n);
  let cd = c.data in
  (* Bit-exact BLAS convention: beta = 1.0 exactly means "accumulate
     into C unscaled"; a near-1.0 beta must still scale, so no epsilon. *)
  if beta = 0.0 then Array.fill cd 0 (m * n) 0.0
  else if (beta <> 1.0 [@lint.allow "float-eq"]) then
    for i = 0 to (m * n) - 1 do
      Array.unsafe_set cd i (beta *. Array.unsafe_get cd i)
    done;
  if m > 0 && n > 0 && kd > 0 && alpha <> 0.0 then begin
    let explicit = jobs <> None in
    let jobs =
      match jobs with
      | Some j -> Stdlib.max 1 j
      | None -> Domain.DLS.get ambient_jobs
    in
    let kernel ad i_lo i_hi =
      if transb then gemm_nt ~i_lo ~i_hi ~n ~k:kd ~alpha ad b.data cd
      else gemm_nn ~i_lo ~i_hi ~n ~k:kd ~alpha ad b.data cd
    in
    let compute ad =
      (* Partition the 4-row tile groups; the last panel also takes the
         edge tail [m/4*4, m), exactly as the sequential sweep would. *)
      let quads = m / 4 in
      let tasks = Stdlib.min jobs (Stdlib.max 1 quads) in
      let big =
        explicit || 2.0 *. float m *. float n *. float kd >= parallel_min_flops
      in
      if jobs > 1 && tasks > 1 && big then begin
        let chunk = 4 * ((quads + tasks - 1) / tasks) in
        let ran_parallel =
          Parallel.Kpool.run ~jobs ~tasks (fun t ->
              let i_lo = t * chunk in
              let i_hi = if t = tasks - 1 then m else Stdlib.min m (i_lo + chunk) in
              if i_lo < i_hi then kernel ad i_lo i_hi)
        in
        if ran_parallel then Telemetry.Metrics.incr c_parallel
        else Telemetry.Metrics.incr c_fallback
      end
      else begin
        if jobs > 1 then Telemetry.Metrics.incr c_fallback;
        kernel ad 0 m
      end
    in
    if transa then
      Scratch.with_floats (m * kd) (fun t ->
          transpose_into a t;
          compute t)
    else compute a.data
  end

let matmul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.matmul: %dx%d with %dx%d" a.rows a.cols b.rows
         b.cols);
  let c = zeros a.rows b.cols in
  gemm a b c;
  c

(* A scratch-backed matrix for internal hot-path temporaries (im2col
   patch buffers, generator staging).  Same contract as
   {!Scratch.with_floats}: zero-filled, must not escape [f]. *)
let with_scratch rows cols f =
  if rows < 0 || cols < 0 then invalid_arg "Mat.with_scratch: negative dimension";
  Scratch.with_floats (rows * cols) (fun data -> f { rows; cols; data })

let outer u v = init (Array.length u) (Array.length v) (fun i j -> u.(i) *. v.(j))

let abs_row_sums m =
  Array.init m.rows (fun i ->
      let base = i * m.cols in
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. abs_float m.data.(base + j)
      done;
      !acc)

let frobenius m = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let approx_equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && begin
       let ok = ref true in
       for i = 0 to Array.length a.data - 1 do
         if abs_float (a.data.(i) -. b.data.(i)) > eps then ok := false
       done;
       !ok
     end

let cholesky a =
  if a.rows <> a.cols then invalid_arg "Mat.cholesky: non-square matrix";
  let n = a.rows in
  let l = zeros n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (get l i k *. get l j k)
      done;
      if i = j then begin
        if !acc <= 0.0 then failwith "Mat.cholesky: matrix not positive definite";
        set l i j (sqrt !acc)
      end
      else set l i j (!acc /. get l j j)
    done
  done;
  l

let solve_lower l b =
  let n = l.rows in
  if Array.length b <> n then invalid_arg "Mat.solve_lower: dimension mismatch";
  let x = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let acc = ref b.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (get l i j *. x.(j))
    done;
    x.(i) <- !acc /. get l i i
  done;
  x

let solve_upper_from_lower_t l b =
  let n = l.rows in
  if Array.length b <> n then
    invalid_arg "Mat.solve_upper_from_lower_t: dimension mismatch";
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let acc = ref b.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (get l j i *. x.(j))
    done;
    x.(i) <- !acc /. get l i i
  done;
  x

let cholesky_solve l b = solve_upper_from_lower_t l (solve_lower l b)

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "%a@," Vec.pp (row m i)
  done;
  Format.fprintf fmt "@]"
