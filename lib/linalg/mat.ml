type t = { rows : int; cols : int; data : float array }

let create rows cols x =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) x }

let zeros rows cols = create rows cols 0.0

let init rows cols f =
  let data = Array.make (rows * cols) 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let get m i j = m.data.((i * m.cols) + j)

let set m i j x = m.data.((i * m.cols) + j) <- x

let copy m = { m with data = Array.copy m.data }

let of_rows rows =
  let r = Array.length rows in
  if r = 0 then invalid_arg "Mat.of_rows: no rows";
  let c = Array.length rows.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> c then invalid_arg "Mat.of_rows: ragged rows")
    rows;
  init r c (fun i j -> rows.(i).(j))

let row m i = Array.sub m.data (i * m.cols) m.cols

let col m j = Array.init m.rows (fun i -> get m i j)

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: shape mismatch (%dx%d vs %dx%d)" name a.rows
         a.cols b.rows b.cols)

let add a b =
  check_same "add" a b;
  { a with data = Array.init (Array.length a.data) (fun i -> a.data.(i) +. b.data.(i)) }

let sub a b =
  check_same "sub" a b;
  { a with data = Array.init (Array.length a.data) (fun i -> a.data.(i) -. b.data.(i)) }

let scale c a = { a with data = Array.map (fun x -> c *. x) a.data }

let matvec m x =
  if m.cols <> Array.length x then
    invalid_arg
      (Printf.sprintf "Mat.matvec: %dx%d with vector of dim %d" m.rows m.cols
         (Array.length x));
  let y = Array.make m.rows 0.0 in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let acc = ref 0.0 in
    for j = 0 to m.cols - 1 do
      acc := !acc +. (m.data.(base + j) *. x.(j))
    done;
    y.(i) <- !acc
  done;
  y

let matvec_t m x =
  if m.rows <> Array.length x then
    invalid_arg
      (Printf.sprintf "Mat.matvec_t: %dx%d with vector of dim %d" m.rows
         m.cols (Array.length x));
  let y = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let xi = x.(i) in
    if xi <> 0.0 then
      for j = 0 to m.cols - 1 do
        y.(j) <- y.(j) +. (m.data.(base + j) *. xi)
      done
  done;
  y

let matmul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.matmul: %dx%d with %dx%d" a.rows a.cols b.rows
         b.cols);
  let c = zeros a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0.0 then begin
        let base_b = k * b.cols and base_c = i * b.cols in
        for j = 0 to b.cols - 1 do
          c.data.(base_c + j) <- c.data.(base_c + j) +. (aik *. b.data.(base_b + j))
        done
      end
    done
  done;
  c

let outer u v = init (Array.length u) (Array.length v) (fun i j -> u.(i) *. v.(j))

let abs_row_sums m =
  Array.init m.rows (fun i ->
      let base = i * m.cols in
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. abs_float m.data.(base + j)
      done;
      !acc)

let frobenius m = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let approx_equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && begin
       let ok = ref true in
       for i = 0 to Array.length a.data - 1 do
         if abs_float (a.data.(i) -. b.data.(i)) > eps then ok := false
       done;
       !ok
     end

let cholesky a =
  if a.rows <> a.cols then invalid_arg "Mat.cholesky: non-square matrix";
  let n = a.rows in
  let l = zeros n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (get l i k *. get l j k)
      done;
      if i = j then begin
        if !acc <= 0.0 then failwith "Mat.cholesky: matrix not positive definite";
        set l i j (sqrt !acc)
      end
      else set l i j (!acc /. get l j j)
    done
  done;
  l

let solve_lower l b =
  let n = l.rows in
  if Array.length b <> n then invalid_arg "Mat.solve_lower: dimension mismatch";
  let x = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let acc = ref b.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (get l i j *. x.(j))
    done;
    x.(i) <- !acc /. get l i i
  done;
  x

let solve_upper_from_lower_t l b =
  let n = l.rows in
  if Array.length b <> n then
    invalid_arg "Mat.solve_upper_from_lower_t: dimension mismatch";
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let acc = ref b.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (get l j i *. x.(j))
    done;
    x.(i) <- !acc /. get l i i
  done;
  x

let cholesky_solve l b = solve_upper_from_lower_t l (solve_lower l b)

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "%a@," Vec.pp (row m i)
  done;
  Format.fprintf fmt "@]"
