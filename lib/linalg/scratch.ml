(* Per-domain scratch buffers for the kernel hot path.

   The abstract interpreter re-runs the same network over thousands of
   subregions, and every conv layer used to allocate a fresh im2col
   patch matrix (and every [transa] GEMM a fresh transpose staging
   buffer) per call — megabytes of short-lived garbage per region that
   the GC then has to walk.  This arena recycles those buffers: each
   domain owns a private size-keyed free list, [with_floats] pops a
   buffer of the exact requested length (zero-filled, matching
   [Array.make n 0.0] semantics) and returns it on exit.  Because the
   propagation loop replays the same layer shapes over and over, the
   exact-size pools hit from the second propagation onward.

   Ownership: the arena lives in domain-local storage, so borrow and
   release always happen on the owning domain and need no locking.  A
   borrowed buffer MAY be read or written by other domains inside the
   borrowing scope (GEMM row panels write disjoint slices) — the arena
   only manages lifetime, and the buffer is never reused until the
   scope returns, by which time every kernel round has completed.

   Bounds: buffers above [max_pooled_words] are allocated fresh and not
   retained; at most [max_per_size] buffers are kept per size class, so
   a pathological shape sweep cannot pin unbounded memory.  [trim]
   drops the calling domain's free lists (tests, long-lived servers). *)

(* Buffers larger than this (in floats; 8 MB) are not worth pinning
   between calls. *)
let max_pooled_words = 1 lsl 20

let max_per_size = 4

(* Per-domain via [Domain.DLS]; [free], [words] and the hashtable are
   touched only by the owning domain. *)
type arena = {
  free : (int, float array list) Hashtbl.t;
  mutable words : int;  (* total floats allocated by this arena *)
  mutable borrows : int;
}
[@@race.domain_local]

let arena_key =
  Domain.DLS.new_key (fun () ->
      { free = Hashtbl.create 16; words = 0; borrows = 0 })

(* Global footprint accounting.  [global_words] sums every arena's
   allocation; [highwater] is its CAS-max.  The telemetry counter
   mirrors the high-water mark by adding only the winning delta, so
   [Metrics.value c_highwater] equals the mark when telemetry is on;
   both are updated on the (rare) allocation path only. *)
let global_words = Atomic.make 0 [@@race.atomic]

let highwater = Atomic.make 0 [@@race.atomic]

let c_highwater = Telemetry.Metrics.counter "kernel.scratch.highwater_words"

let c_reuses = Telemetry.Metrics.counter "kernel.scratch.reuses"

let rec raise_highwater v =
  let cur = Atomic.get highwater in
  if v > cur then
    if Atomic.compare_and_set highwater cur v then
      Telemetry.Metrics.add c_highwater (v - cur)
    else raise_highwater v

let account arena n =
  arena.words <- arena.words + n;
  raise_highwater (n + Atomic.fetch_and_add global_words n)

let borrow arena n =
  match Hashtbl.find_opt arena.free n with
  | Some (buf : float array list) -> begin
      match buf with
      | b :: rest ->
          Hashtbl.replace arena.free n rest;
          Telemetry.Metrics.incr c_reuses;
          Array.fill b 0 n 0.0;
          b
      | [] ->
          account arena n;
          Array.make n 0.0
    end
  | None ->
      account arena n;
      Array.make n 0.0

let release arena n b =
  if n <= max_pooled_words then begin
    let existing = Option.value ~default:[] (Hashtbl.find_opt arena.free n) in
    if List.length existing < max_per_size then
      Hashtbl.replace arena.free n (b :: existing)
    else begin
      arena.words <- arena.words - n;
      ignore (Atomic.fetch_and_add global_words (-n))
    end
  end
  else begin
    arena.words <- arena.words - n;
    ignore (Atomic.fetch_and_add global_words (-n))
  end

let with_floats n f =
  if n < 0 then invalid_arg "Scratch.with_floats: negative length";
  if n = 0 then f [||]
  else begin
    let arena = Domain.DLS.get arena_key in
    let b = borrow arena n in
    arena.borrows <- arena.borrows + 1;
    Fun.protect
      ~finally:(fun () ->
        arena.borrows <- arena.borrows - 1;
        release arena n b)
      (fun () -> f b)
  end

let live_words () = (Domain.DLS.get arena_key).words

let highwater_words () = Atomic.get highwater

let trim () =
  let arena = Domain.DLS.get arena_key in
  let freed = ref 0 in
  Hashtbl.iter
    (fun n bufs -> freed := !freed + (n * List.length bufs))
    arena.free;
  Hashtbl.reset arena.free;
  arena.words <- arena.words - !freed;
  ignore (Atomic.fetch_and_add global_words (- !freed))
