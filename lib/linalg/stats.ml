let nonempty name a =
  if Array.length a = 0 then invalid_arg ("Stats." ^ name ^ ": empty array")

let mean a =
  nonempty "mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  if Array.length a < 2 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    acc /. float_of_int (Array.length a - 1)
  end

let stddev a = sqrt (variance a)

let sorted a =
  let b = Array.copy a in
  Array.sort Float.compare b;
  b

let percentile a p =
  nonempty "percentile" a;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let b = sorted a in
  let n = Array.length b in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then b.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (b.(lo) *. (1.0 -. frac)) +. (b.(hi) *. frac)
  end

let median a = percentile a 50.0

let geometric_mean a =
  nonempty "geometric_mean" a;
  let acc =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive entry"
        else acc +. log x)
      0.0 a
  in
  exp (acc /. float_of_int (Array.length a))
