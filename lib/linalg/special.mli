(** Special functions needed by the Gaussian-process machinery. *)

val erf : float -> float
(** Error function, Abramowitz & Stegun 7.1.26 rational approximation
    (absolute error below 1.5e-7, adequate for acquisition functions). *)

val normal_pdf : float -> float
(** Standard normal density. *)

val normal_cdf : float -> float
(** Standard normal cumulative distribution function. *)

val log1p : float -> float
(** [log (1 + x)], accurate near zero. *)
