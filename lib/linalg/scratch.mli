(** Per-domain scratch buffers for the kernel hot path.

    Recycles the large, short-lived float buffers of the propagation
    loop — im2col patch matrices, GEMM transpose staging — across
    calls, instead of allocating them fresh every layer.  Each domain
    owns a private size-keyed free list in domain-local storage, so no
    locking is involved; a buffer is never handed out twice before its
    borrowing scope returns. *)

val with_floats : int -> (float array -> 'a) -> 'a
(** [with_floats n f] calls [f] with a zero-filled buffer of exactly
    [n] floats (semantics of [Array.make n 0.0]) and reclaims it for
    reuse when [f] returns or raises.  The buffer must not escape [f].
    Nesting is fine; other domains may access the buffer inside the
    scope (e.g. GEMM row panels), because reuse only happens after the
    scope — and therefore any kernel round — has finished. *)

val live_words : unit -> int
(** Floats currently held by the calling domain's arena (free and
    borrowed). *)

val highwater_words : unit -> int
(** Largest total footprint, in floats, ever reached across all
    domains' arenas — the scratch-arena high-water-mark gauge, also
    exported as the telemetry counter [kernel.scratch.highwater_words]. *)

val trim : unit -> unit
(** Drop the calling domain's free buffers (long-lived servers,
    tests).  Borrowed buffers are unaffected. *)
