type t = float array

let create n x = Array.make n x

let zeros n = Array.make n 0.0

let init = Array.init

let copy = Array.copy

let dim = Array.length

let of_list = Array.of_list

let to_list = Array.to_list

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
                   (Array.length a) (Array.length b))

let add a b =
  check_dims "add" a b;
  Array.init (Array.length a) (fun i -> a.(i) +. b.(i))

let sub a b =
  check_dims "sub" a b;
  Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let mul a b =
  check_dims "mul" a b;
  Array.init (Array.length a) (fun i -> a.(i) *. b.(i))

let scale c a = Array.map (fun x -> c *. x) a

let axpy a x y =
  check_dims "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let dot a b =
  check_dims "dot" a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun m x -> Float.max m (abs_float x)) 0.0 a

let dist2 a b = norm2 (sub a b)

let sum a = Array.fold_left ( +. ) 0.0 a

let mean a =
  if Array.length a = 0 then invalid_arg "Vec.mean: empty vector";
  sum a /. float_of_int (Array.length a)

let nonempty name a =
  if Array.length a = 0 then invalid_arg ("Vec." ^ name ^ ": empty vector")

let max a =
  nonempty "max" a;
  Array.fold_left Float.max a.(0) a

let min a =
  nonempty "min" a;
  Array.fold_left Float.min a.(0) a

let argmax a =
  nonempty "argmax" a;
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) > a.(!best) then best := i
  done;
  !best

let argmin a =
  nonempty "argmin" a;
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) < a.(!best) then best := i
  done;
  !best

let map = Array.map

let map2 f a b =
  check_dims "map2" a b;
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let iteri = Array.iteri

let clamp ~lo ~hi x =
  check_dims "clamp" lo x;
  check_dims "clamp" hi x;
  Array.init (Array.length x) (fun i ->
      if x.(i) < lo.(i) then lo.(i) else if x.(i) > hi.(i) then hi.(i) else x.(i))

let relu a = Array.map (fun x -> if x > 0.0 then x else 0.0) a

let approx_equal ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       for i = 0 to Array.length a - 1 do
         if abs_float (a.(i) -. b.(i)) > eps then ok := false
       done;
       !ok
     end

let pp fmt a =
  Format.fprintf fmt "[@[%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f ";@ ")
       (fun f x -> Format.fprintf f "%g" x))
    (Array.to_list a)
