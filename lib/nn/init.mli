(** Network constructors: paper examples and random initialisation. *)

val xor : unit -> Network.t
(** The 2-layer XOR network of Figure 3 / Example 2.1. *)

val example_2_2 : unit -> Network.t
(** The two-layer network of Example 2.2 (1 input, 2 classes). *)

val example_2_3 : unit -> Network.t
(** The network of Example 2.3 / Figure 4, verifiable with a 2-disjunct
    zonotope powerset but not with plain zonotopes. *)

val dense :
  Linalg.Rng.t -> layer_sizes:int list -> Network.t
(** He-initialised fully-connected ReLU network.  [layer_sizes] lists
    every dimension including input and output, e.g.
    [\[784; 100; 100; 10\]]; requires at least two entries.  ReLU is
    applied after every layer except the last, as in the paper. *)

val lenet_like :
  ?pooling:[ `Max | `Avg ] ->
  Linalg.Rng.t ->
  input:Shape.t ->
  classes:int ->
  Network.t
(** A small LeNet-style convolutional network: two conv+ReLU blocks, a
    pooling layer, two more conv+ReLU blocks, another pooling layer,
    then three fully-connected layers (§7's convolutional benchmark
    architecture, scaled to the given input shape).  [pooling] defaults
    to [`Max] as in the paper; [`Avg] gives the original LeNet's
    average pooling, which every domain (and the complete checkers)
    handles exactly. *)
