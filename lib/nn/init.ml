open Linalg

let xor () =
  (* A ReLU reconstruction of Figure 3: hidden units compute x1+x2 and
     relu(x1+x2-1); the readout maps the XOR value to a one-hot-ish score
     pair.  Classifies [0;0] and [1;1] as class 0, [0;1] and [1;0] as
     class 1, and satisfies the robustness property of Example 3.1. *)
  let w1 = Mat.of_rows [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let b1 = [| 0.0; -1.0 |] in
  let w2 = Mat.of_rows [| [| -1.0; 2.0 |]; [| 1.0; -2.0 |] |] in
  let b2 = [| 1.0; 0.0 |] in
  Network.create ~input_dim:2
    [ Layer.affine w1 b1; Layer.Relu; Layer.affine w2 b2 ]

let example_2_2 () =
  let w1 = Mat.of_rows [| [| 1.0 |]; [| 2.0 |] |] in
  let b1 = [| -1.0; 1.0 |] in
  let w2 = Mat.of_rows [| [| 2.0; 1.0 |]; [| -1.0; 1.0 |] |] in
  let b2 = [| 1.0; 2.0 |] in
  Network.create ~input_dim:1
    [ Layer.affine w1 b1; Layer.Relu; Layer.affine w2 b2 ]

let example_2_3 () =
  let w1 = Mat.of_rows [| [| 1.0; -3.0 |]; [| 0.0; 3.0 |] |] in
  let b1 = [| 1.0; 1.0 |] in
  let w2 = Mat.of_rows [| [| 1.0; 1.1 |]; [| -1.0; 1.0 |] |] in
  let b2 = [| -3.0; 1.2 |] in
  Network.create ~input_dim:2
    [ Layer.affine w1 b1; Layer.Relu; Layer.affine w2 b2 ]

let he_affine rng ~fan_in ~fan_out =
  let scale = sqrt (2.0 /. float_of_int fan_in) in
  let w = Mat.init fan_out fan_in (fun _ _ -> scale *. Rng.gaussian rng) in
  let b = Vec.zeros fan_out in
  Layer.affine w b

let dense rng ~layer_sizes =
  match layer_sizes with
  | [] | [ _ ] -> invalid_arg "Init.dense: need at least input and output sizes"
  | input_dim :: rest ->
      let rec build fan_in = function
        | [] -> []
        | [ last ] -> [ he_affine rng ~fan_in ~fan_out:last ]
        | next :: tail ->
            he_affine rng ~fan_in ~fan_out:next :: Layer.Relu
            :: build next tail
      in
      Network.create ~input_dim (build input_dim rest)

let he_conv rng ~input ~out_channels ~kernel ~stride ~padding =
  let in_channels = input.Shape.channels in
  let fan_in = in_channels * kernel * kernel in
  let scale = sqrt (2.0 /. float_of_int fan_in) in
  let count = out_channels * in_channels * kernel * kernel in
  let weights = Array.init count (fun _ -> scale *. Rng.gaussian rng) in
  let bias = Vec.zeros out_channels in
  Conv.create ~input ~out_channels ~kernel ~stride ~padding ~weights ~bias

let lenet_like ?(pooling = `Max) rng ~input ~classes =
  if input.Shape.height mod 4 <> 0 || input.Shape.width mod 4 <> 0 then
    invalid_arg "Init.lenet_like: spatial dims must be divisible by 4";
  let conv_block input out_channels =
    let c = he_conv rng ~input ~out_channels ~kernel:3 ~stride:1 ~padding:1 in
    (c, Conv.output_shape c)
  in
  let pool input =
    match pooling with
    | `Max ->
        let p = Pool.create ~input ~kernel:2 ~stride:2 in
        (Layer.Maxpool p, Pool.output_shape p)
    | `Avg ->
        let p = Avgpool.create ~input ~kernel:2 ~stride:2 in
        (Layer.Avgpool p, Avgpool.output_shape p)
  in
  let c1, s1 = conv_block input 4 in
  let c2, s2 = conv_block s1 4 in
  let p1, s3 = pool s2 in
  let c3, s4 = conv_block s3 8 in
  let c4, s5 = conv_block s4 8 in
  let p2, s6 = pool s5 in
  let flat = Shape.size s6 in
  Network.create ~input_dim:(Shape.size input)
    [
      Layer.Conv c1;
      Layer.Relu;
      Layer.Conv c2;
      Layer.Relu;
      p1;
      Layer.Conv c3;
      Layer.Relu;
      Layer.Conv c4;
      Layer.Relu;
      p2;
      he_affine rng ~fan_in:flat ~fan_out:32;
      Layer.Relu;
      he_affine rng ~fan_in:32 ~fan_out:16;
      Layer.Relu;
      he_affine rng ~fan_in:16 ~fan_out:classes;
    ]
