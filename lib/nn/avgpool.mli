(** Average-pooling layers.

    Unlike max pooling, average pooling is a linear map, so it lowers to
    an affine transformation and every abstract domain handles it
    exactly (the original LeNet used average pooling; the paper's conv
    benchmark uses max pooling, and we support both). *)

type t = {
  input : Shape.t;
  kernel : int;  (** square window side *)
  stride : int;
}

val create : input:Shape.t -> kernel:int -> stride:int -> t
(** @raise Invalid_argument if the window geometry does not tile. *)

val output_shape : t -> Shape.t

val forward : t -> Linalg.Vec.t -> Linalg.Vec.t

val backward : t -> dout:Linalg.Vec.t -> Linalg.Vec.t
(** Gradient with respect to the input: each output gradient spreads
    uniformly over its window. *)

val to_affine : t -> Linalg.Mat.t * Linalg.Vec.t
(** Dense lowering: [(w, b)] with [b = 0] such that
    [forward t x = w x]. *)
