(** Plain-text (de)serialization of networks.

    The format is a line-oriented token stream, stable across runs, so
    trained networks can be saved by the CLI and reloaded by examples and
    benchmarks.  Floats are printed with ["%.17g"] and round-trip
    exactly. *)

val to_string : Network.t -> string

val of_string : string -> Network.t
(** @raise Failure with a descriptive message on malformed input. *)

val save : string -> Network.t -> unit
(** [save path net] writes the network to [path]. *)

val load : string -> Network.t
(** @raise Sys_error if the file cannot be read; [Failure] if it cannot
    be parsed. *)
