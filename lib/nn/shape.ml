type t = { channels : int; height : int; width : int }

let create ~channels ~height ~width =
  if channels <= 0 || height <= 0 || width <= 0 then
    invalid_arg "Shape.create: dimensions must be positive";
  { channels; height; width }

let size t = t.channels * t.height * t.width

let index t ~c ~i ~j =
  if c < 0 || c >= t.channels || i < 0 || i >= t.height || j < 0 || j >= t.width
  then
    invalid_arg
      (Printf.sprintf "Shape.index: (%d,%d,%d) out of %dx%dx%d" c i j
         t.channels t.height t.width);
  (c * t.height * t.width) + (i * t.width) + j

let in_bounds t ~i ~j = i >= 0 && i < t.height && j >= 0 && j < t.width

let conv_output t ~kernel ~stride ~padding ~out_channels =
  if kernel <= 0 || stride <= 0 || padding < 0 then
    invalid_arg "Shape.conv_output: bad window geometry";
  let span d = d + (2 * padding) - kernel in
  let sh = span t.height and sw = span t.width in
  if sh < 0 || sw < 0 then
    invalid_arg "Shape.conv_output: kernel larger than padded input";
  if sh mod stride <> 0 || sw mod stride <> 0 then
    invalid_arg "Shape.conv_output: stride does not tile the input";
  create ~channels:out_channels ~height:((sh / stride) + 1)
    ~width:((sw / stride) + 1)

let pp fmt t = Format.fprintf fmt "%dx%dx%d" t.channels t.height t.width

let equal a b =
  a.channels = b.channels && a.height = b.height && a.width = b.width
