(** Stochastic gradient descent training with softmax cross-entropy.

    The paper evaluates on networks trained on MNIST and CIFAR; this
    module lets us produce comparably structured trained networks from
    synthetic datasets (see the [datasets] library). *)

type sample = { x : Linalg.Vec.t; label : int }

type config = {
  epochs : int;
  batch_size : int;
  learning_rate : float;
  weight_decay : float;  (** L2 coefficient, 0 to disable *)
  momentum : float;  (** classical momentum coefficient, 0 to disable *)
}

val default_config : config
(** 10 epochs, batch 32, lr 0.05, momentum 0.9, no weight decay. *)

val softmax : Linalg.Vec.t -> Linalg.Vec.t

val cross_entropy_loss : Linalg.Vec.t -> int -> float
(** [cross_entropy_loss scores label] is the softmax cross-entropy of raw
    scores against the label. *)

val train :
  ?config:config ->
  rng:Linalg.Rng.t ->
  Network.t ->
  sample array ->
  Network.t
(** Returns a newly trained network; the input network provides the
    architecture and initial weights. *)

val accuracy : Network.t -> sample array -> float
(** Fraction of samples classified correctly. *)

val mean_loss : Network.t -> sample array -> float
