(** 2-D convolution layers.

    A convolution is stored in structured form (kernel weights indexed by
    output channel, input channel and kernel position) and can be lowered
    to a dense affine transformation [(W, b)], which is how the abstract
    interpreter consumes it (the paper, following AI2, treats both dense
    and convolutional layers as affine transformations). *)

type t = {
  input : Shape.t;
  out_channels : int;
  kernel : int;  (** square kernel side *)
  stride : int;
  padding : int;
  weights : float array;
      (** indexed \[oc\]\[ic\]\[ki\]\[kj\] flattened in that order *)
  bias : Linalg.Vec.t;  (** length [out_channels] *)
}

val create :
  input:Shape.t ->
  out_channels:int ->
  kernel:int ->
  stride:int ->
  padding:int ->
  weights:float array ->
  bias:Linalg.Vec.t ->
  t
(** Validates geometry and weight/bias lengths. *)

val output_shape : t -> Shape.t

val weight_count : out_channels:int -> in_channels:int -> kernel:int -> int
(** Number of kernel weights for the given geometry. *)

val weight : t -> oc:int -> ic:int -> ki:int -> kj:int -> float

val forward : t -> Linalg.Vec.t -> Linalg.Vec.t
(** Convolution of a flattened CHW input, lowered to im2col + GEMM. *)

val backward : t -> dout:Linalg.Vec.t -> Linalg.Vec.t
(** Vector-Jacobian product: gradient with respect to the input given the
    gradient [dout] with respect to the output ([W^T dY] on the patch
    matrix, scattered back with col2im). *)

val grad_params : t -> x:Linalg.Vec.t -> dout:Linalg.Vec.t -> float array * Linalg.Vec.t
(** [(dweights, dbias)] for SGD training, with the same layouts as
    [weights] and [bias] ([dW = dY P^T] over the im2col patch matrix). *)

val forward_direct : t -> Linalg.Vec.t -> Linalg.Vec.t
(** Direct nested-loop convolution: the reference oracle for [forward]. *)

val backward_direct : t -> dout:Linalg.Vec.t -> Linalg.Vec.t
(** Direct nested-loop oracle for [backward]. *)

val grad_params_direct :
  t -> x:Linalg.Vec.t -> dout:Linalg.Vec.t -> float array * Linalg.Vec.t
(** Direct nested-loop oracle for [grad_params]. *)

val update : t -> dweights:float array -> dbias:Linalg.Vec.t -> lr:float -> t
(** Gradient-descent step returning a new layer. *)

val to_affine : t -> Linalg.Mat.t * Linalg.Vec.t
(** Dense lowering: [(w, b)] such that [forward t x = w x + b] for every
    [x].  The matrix has [size (output_shape t)] rows. *)
