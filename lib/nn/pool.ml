type t = { input : Shape.t; kernel : int; stride : int }

let create ~input ~kernel ~stride =
  ignore
    (Shape.conv_output input ~kernel ~stride ~padding:0
       ~out_channels:input.Shape.channels);
  { input; kernel; stride }

let output_shape t =
  Shape.conv_output t.input ~kernel:t.kernel ~stride:t.stride ~padding:0
    ~out_channels:t.input.Shape.channels

let windows t =
  let out = output_shape t in
  let result = Array.make (Shape.size out) [||] in
  for c = 0 to out.Shape.channels - 1 do
    for oi = 0 to out.Shape.height - 1 do
      for oj = 0 to out.Shape.width - 1 do
        let members = ref [] in
        for ki = t.kernel - 1 downto 0 do
          for kj = t.kernel - 1 downto 0 do
            let ii = (oi * t.stride) + ki and ij = (oj * t.stride) + kj in
            members := Shape.index t.input ~c ~i:ii ~j:ij :: !members
          done
        done;
        result.(Shape.index out ~c ~i:oi ~j:oj) <- Array.of_list !members
      done
    done
  done;
  result

let forward t x =
  if Array.length x <> Shape.size t.input then
    invalid_arg "Pool.forward: input dimension mismatch";
  Array.map
    (fun window ->
      Array.fold_left (fun acc i -> Stdlib.max acc x.(i)) x.(window.(0)) window)
    (windows t)

let backward t ~x ~dout =
  let wins = windows t in
  if Array.length dout <> Array.length wins then
    invalid_arg "Pool.backward: output gradient dimension mismatch";
  let dx = Array.make (Shape.size t.input) 0.0 in
  Array.iteri
    (fun o window ->
      let best = ref window.(0) in
      Array.iter (fun i -> if x.(i) > x.(!best) then best := i) window;
      dx.(!best) <- dx.(!best) +. dout.(o))
    wins;
  dx
