type t = {
  input : Shape.t;
  out_channels : int;
  kernel : int;
  stride : int;
  padding : int;
  weights : float array;
  bias : Linalg.Vec.t;
}

let weight_count ~out_channels ~in_channels ~kernel =
  out_channels * in_channels * kernel * kernel

let create ~input ~out_channels ~kernel ~stride ~padding ~weights ~bias =
  (* Validate geometry eagerly so malformed layers fail at construction. *)
  ignore
    (Shape.conv_output input ~kernel ~stride ~padding ~out_channels);
  let expected =
    weight_count ~out_channels ~in_channels:input.Shape.channels ~kernel
  in
  if Array.length weights <> expected then
    invalid_arg
      (Printf.sprintf "Conv.create: expected %d weights, got %d" expected
         (Array.length weights));
  if Array.length bias <> out_channels then
    invalid_arg "Conv.create: bias length must equal out_channels";
  { input; out_channels; kernel; stride; padding; weights; bias }

let output_shape t =
  Shape.conv_output t.input ~kernel:t.kernel ~stride:t.stride
    ~padding:t.padding ~out_channels:t.out_channels

let widx t ~oc ~ic ~ki ~kj =
  let k = t.kernel in
  (((((oc * t.input.Shape.channels) + ic) * k) + ki) * k) + kj

let weight t ~oc ~ic ~ki ~kj = t.weights.(widx t ~oc ~ic ~ki ~kj)

(* Iterate over every (output element, contributing input element) pair.
   [f ~oc ~oi ~oj ~ic ~ii ~ij ~ki ~kj] is called only for in-bounds input
   coordinates; padded positions contribute zero and are skipped. *)
let iter_taps t f =
  let out = output_shape t in
  for oc = 0 to out.Shape.channels - 1 do
    for oi = 0 to out.Shape.height - 1 do
      for oj = 0 to out.Shape.width - 1 do
        for ic = 0 to t.input.Shape.channels - 1 do
          for ki = 0 to t.kernel - 1 do
            for kj = 0 to t.kernel - 1 do
              let ii = (oi * t.stride) + ki - t.padding in
              let ij = (oj * t.stride) + kj - t.padding in
              if Shape.in_bounds t.input ~i:ii ~j:ij then
                f ~oc ~oi ~oj ~ic ~ii ~ij ~ki ~kj
            done
          done
        done
      done
    done
  done

(* Direct nested-loop kernels, kept as the reference oracle for the
   im2col + GEMM implementations below (and exercised by tests and the
   kernel benchmark harness). *)

let forward_direct t x =
  if Array.length x <> Shape.size t.input then
    invalid_arg "Conv.forward: input dimension mismatch";
  let out = output_shape t in
  let y = Array.make (Shape.size out) 0.0 in
  for oc = 0 to out.Shape.channels - 1 do
    for oi = 0 to out.Shape.height - 1 do
      for oj = 0 to out.Shape.width - 1 do
        y.(Shape.index out ~c:oc ~i:oi ~j:oj) <- t.bias.(oc)
      done
    done
  done;
  iter_taps t (fun ~oc ~oi ~oj ~ic ~ii ~ij ~ki ~kj ->
      let o = Shape.index out ~c:oc ~i:oi ~j:oj in
      let i = Shape.index t.input ~c:ic ~i:ii ~j:ij in
      y.(o) <- y.(o) +. (t.weights.(widx t ~oc ~ic ~ki ~kj) *. x.(i)));
  y

let backward_direct t ~dout =
  let out = output_shape t in
  if Array.length dout <> Shape.size out then
    invalid_arg "Conv.backward: output gradient dimension mismatch";
  let dx = Array.make (Shape.size t.input) 0.0 in
  iter_taps t (fun ~oc ~oi ~oj ~ic ~ii ~ij ~ki ~kj ->
      let o = Shape.index out ~c:oc ~i:oi ~j:oj in
      let i = Shape.index t.input ~c:ic ~i:ii ~j:ij in
      dx.(i) <- dx.(i) +. (t.weights.(widx t ~oc ~ic ~ki ~kj) *. dout.(o)));
  dx

let grad_params_direct t ~x ~dout =
  let out = output_shape t in
  if Array.length x <> Shape.size t.input then
    invalid_arg "Conv.grad_params: input dimension mismatch";
  if Array.length dout <> Shape.size out then
    invalid_arg "Conv.grad_params: output gradient dimension mismatch";
  let dw = Array.make (Array.length t.weights) 0.0 in
  let db = Array.make t.out_channels 0.0 in
  iter_taps t (fun ~oc ~oi ~oj ~ic ~ii ~ij ~ki ~kj ->
      let o = Shape.index out ~c:oc ~i:oi ~j:oj in
      let i = Shape.index t.input ~c:ic ~i:ii ~j:ij in
      let w = widx t ~oc ~ic ~ki ~kj in
      dw.(w) <- dw.(w) +. (x.(i) *. dout.(o)));
  for oc = 0 to out.Shape.channels - 1 do
    for oi = 0 to out.Shape.height - 1 do
      for oj = 0 to out.Shape.width - 1 do
        db.(oc) <- db.(oc) +. dout.(Shape.index out ~c:oc ~i:oi ~j:oj)
      done
    done
  done;
  (dw, db)

(* ------------------------------------------------------------------ *)
(* im2col lowering.

   The patch matrix [P] has one row per (input channel, kernel offset)
   triple — row [((ic*K)+ki)*K + kj] — and one column per output
   spatial position [oi*OW + oj]; padded taps stay zero.  The weight
   array, reinterpreted as an [OC x (IC*K*K)] row-major matrix, then
   turns the convolution into [Y = W_mat * P], whose row-major result
   is exactly the CHW-flattened output.  Backward and the weight
   gradient reuse the same lowering: [dP = W^T dY] (scattered back with
   col2im) and [dW = dY P^T]. *)

let patch_rows t = t.input.Shape.channels * t.kernel * t.kernel

(* Iterate the in-bounds taps of the lowering: calls
   [f ~row ~col ~input_idx] for every nonzero cell of [P]. *)
let iter_patch_cells t f =
  let out = output_shape t in
  let ow = out.Shape.width in
  let ohow = out.Shape.height * ow in
  let k = t.kernel in
  for ic = 0 to t.input.Shape.channels - 1 do
    for ki = 0 to k - 1 do
      for kj = 0 to k - 1 do
        let row = (((ic * k) + ki) * k) + kj in
        let base = row * ohow in
        for oi = 0 to out.Shape.height - 1 do
          let ii = (oi * t.stride) + ki - t.padding in
          if ii >= 0 && ii < t.input.Shape.height then
            for oj = 0 to ow - 1 do
              let ij = (oj * t.stride) + kj - t.padding in
              if ij >= 0 && ij < t.input.Shape.width then
                f ~cell:(base + (oi * ow) + oj)
                  ~input_idx:(Shape.index t.input ~c:ic ~i:ii ~j:ij)
            done
        done
      done
    done
  done

(* Scratch-backed im2col for the hot paths: the patch matrix of a given
   layer has the same shape on every call, so the per-domain arena
   serves the same buffer back instead of allocating megabytes of
   short-lived garbage per propagation.  The buffer never escapes [f]. *)
let with_im2col t x f =
  let out = output_shape t in
  let ohow = out.Shape.height * out.Shape.width in
  Linalg.Mat.with_scratch (patch_rows t) ohow (fun p ->
      iter_patch_cells t (fun ~cell ~input_idx ->
          p.Linalg.Mat.data.(cell) <- x.(input_idx));
      f p)

(* The weight array viewed as an [OC x (IC*K*K)] matrix (shares the
   underlying storage; treat as read-only). *)
let weight_mat t =
  { Linalg.Mat.rows = t.out_channels; cols = patch_rows t; data = t.weights }

let forward t x =
  if Array.length x <> Shape.size t.input then
    invalid_arg "Conv.forward: input dimension mismatch";
  let out = output_shape t in
  let ohow = out.Shape.height * out.Shape.width in
  let y = Linalg.Mat.zeros t.out_channels ohow in
  with_im2col t x (fun p -> Linalg.Mat.gemm (weight_mat t) p y);
  let yd = y.Linalg.Mat.data in
  for oc = 0 to t.out_channels - 1 do
    let base = oc * ohow and b = t.bias.(oc) in
    for s = 0 to ohow - 1 do
      yd.(base + s) <- yd.(base + s) +. b
    done
  done;
  yd

let backward t ~dout =
  let out = output_shape t in
  if Array.length dout <> Shape.size out then
    invalid_arg "Conv.backward: output gradient dimension mismatch";
  let ohow = out.Shape.height * out.Shape.width in
  let dy = { Linalg.Mat.rows = t.out_channels; cols = ohow; data = dout } in
  let dx = Array.make (Shape.size t.input) 0.0 in
  Linalg.Mat.with_scratch (patch_rows t) ohow (fun dp ->
      Linalg.Mat.gemm ~transa:true (weight_mat t) dy dp;
      (* col2im: scatter-add the patch gradient back onto the input. *)
      iter_patch_cells t (fun ~cell ~input_idx ->
          dx.(input_idx) <- dx.(input_idx) +. dp.Linalg.Mat.data.(cell)));
  dx

let grad_params t ~x ~dout =
  let out = output_shape t in
  if Array.length x <> Shape.size t.input then
    invalid_arg "Conv.grad_params: input dimension mismatch";
  if Array.length dout <> Shape.size out then
    invalid_arg "Conv.grad_params: output gradient dimension mismatch";
  let ohow = out.Shape.height * out.Shape.width in
  let dy = { Linalg.Mat.rows = t.out_channels; cols = ohow; data = dout } in
  let dw = Linalg.Mat.zeros t.out_channels (patch_rows t) in
  with_im2col t x (fun p -> Linalg.Mat.gemm ~transb:true dy p dw);
  let db = Array.make t.out_channels 0.0 in
  for oc = 0 to t.out_channels - 1 do
    let base = oc * ohow in
    let acc = ref 0.0 in
    for s = 0 to ohow - 1 do
      acc := !acc +. dout.(base + s)
    done;
    db.(oc) <- !acc
  done;
  (dw.Linalg.Mat.data, db)

let update t ~dweights ~dbias ~lr =
  {
    t with
    weights = Array.mapi (fun i w -> w -. (lr *. dweights.(i))) t.weights;
    bias = Array.mapi (fun i b -> b -. (lr *. dbias.(i))) t.bias;
  }

let to_affine t =
  let out = output_shape t in
  let w = Linalg.Mat.zeros (Shape.size out) (Shape.size t.input) in
  let b = Array.make (Shape.size out) 0.0 in
  for oc = 0 to out.Shape.channels - 1 do
    for oi = 0 to out.Shape.height - 1 do
      for oj = 0 to out.Shape.width - 1 do
        b.(Shape.index out ~c:oc ~i:oi ~j:oj) <- t.bias.(oc)
      done
    done
  done;
  iter_taps t (fun ~oc ~oi ~oj ~ic ~ii ~ij ~ki ~kj ->
      let o = Shape.index out ~c:oc ~i:oi ~j:oj in
      let i = Shape.index t.input ~c:ic ~i:ii ~j:ij in
      Linalg.Mat.set w o i
        (Linalg.Mat.get w o i +. t.weights.(widx t ~oc ~ic ~ki ~kj)));
  (w, b)
