(** Feed-forward classification networks.

    A network is a dimension-checked composition of layers mapping
    [R^input_dim] to a vector of [output_dim] class scores.  The class
    assigned to an input is the argmax of the scores, as in §2.1 of the
    paper. *)

type t = private {
  layers : Layer.t list;
  input_dim : int;
  output_dim : int;
}

val create : input_dim:int -> Layer.t list -> t
(** Builds a network, checking that consecutive layer dimensions agree.
    @raise Invalid_argument on a dimension mismatch or an empty layer
    list. *)

val eval : t -> Linalg.Vec.t -> Linalg.Vec.t
(** Forward evaluation of the class scores. *)

val classify : t -> Linalg.Vec.t -> int
(** Argmax class of [eval]. *)

val forward_trace : t -> Linalg.Vec.t -> Linalg.Vec.t array
(** [forward_trace n x] returns the activations before each layer plus
    the final output: element 0 is [x], element [i] is the input to layer
    [i], and the last element is the network output.  Length is
    [num_layers n + 1]. *)

val num_layers : t -> int

val num_parameters : t -> int
(** Total count of trainable scalars (affine and conv weights/biases). *)

val num_relu_units : t -> int
(** Total width of all ReLU activations; the size of the case-split space
    explored by complete checkers. *)

val lipschitz_upper : t -> float
(** A crude upper bound on the network's Lipschitz constant with respect
    to the infinity norm: the product of the layers' induced norms
    (activations are 1-Lipschitz).  Used as a feature scale. *)

val describe : t -> string
(** Multi-line summary: one line per layer. *)

val map_affine : t -> (Linalg.Mat.t -> Linalg.Mat.t) -> (Linalg.Vec.t -> Linalg.Vec.t) -> t
(** Rebuild the network transforming every dense affine layer's weight
    and bias; convolutional and activation layers are kept as-is.  Used
    by training updates and by tests. *)
