(** Tensor shapes for convolutional layers.

    Flattened vectors use channel-major (CHW) layout: the value of channel
    [c], row [i], column [j] lives at index [c*h*w + i*w + j]. *)

type t = { channels : int; height : int; width : int }

val create : channels:int -> height:int -> width:int -> t
(** Validates that all dimensions are positive. *)

val size : t -> int
(** Number of scalars in a tensor of this shape. *)

val index : t -> c:int -> i:int -> j:int -> int
(** Flattened index of element [(c, i, j)]; bounds-checked. *)

val in_bounds : t -> i:int -> j:int -> bool
(** Whether a spatial coordinate lies inside the plane. *)

val conv_output : t -> kernel:int -> stride:int -> padding:int -> out_channels:int -> t
(** Output shape of a convolution/pooling window sweep.
    @raise Invalid_argument if the geometry does not tile. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
