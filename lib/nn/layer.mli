(** Network layers.

    A network is a composition of these layers.  Affine and convolutional
    layers are the differentiable transformations of the paper's
    [L1 ∘ σ1 ∘ ... ∘ Lk] decomposition; [Relu] and [Maxpool] are the
    non-linear activations. *)

type t =
  | Affine of { w : Linalg.Mat.t; b : Linalg.Vec.t }
      (** [y = w x + b]; requires [Mat.rows w = dim b]. *)
  | Relu  (** component-wise [max(x, 0)] *)
  | Conv of Conv.t
  | Maxpool of Pool.t
  | Avgpool of Avgpool.t
      (** linear, so abstract domains treat it exactly via lowering *)

val affine : Linalg.Mat.t -> Linalg.Vec.t -> t
(** Checked constructor for [Affine]. *)

val input_dim : t -> int option
(** Input dimension when the layer fixes one ([Relu] works at any
    dimension, hence [None]). *)

val output_dim : given:int -> t -> int
(** Output dimension of the layer applied to an input of dimension
    [given].
    @raise Invalid_argument if [given] is incompatible with the layer. *)

val forward : t -> Linalg.Vec.t -> Linalg.Vec.t

val backward : t -> x:Linalg.Vec.t -> dout:Linalg.Vec.t -> Linalg.Vec.t
(** Vector-Jacobian product at input [x].  For [Relu] the subgradient at
    zero is taken to be zero; for [Maxpool], ties route to the first
    maximal input. *)

val forward_batch : ?jobs:int -> t -> Linalg.Mat.t -> Linalg.Mat.t
(** [forward] over a batch, one sample per row: affine layers run as a
    single GEMM [Y = X W^T + b]; non-affine layers apply row by row.
    [?jobs] forwards to {!Linalg.Mat.gemm} (bit-identical row-panel
    parallelism). *)

val backward_batch :
  ?jobs:int -> t -> x:Linalg.Mat.t -> dout:Linalg.Mat.t -> Linalg.Mat.t
(** [backward] over a batch, one sample per row ([dX = dY W] for affine
    layers).  [?jobs] as in {!forward_batch}. *)

val as_affine : t -> (Linalg.Mat.t * Linalg.Vec.t) option
(** Dense affine view of the layer if it is affine ([Affine], [Conv]
    or [Avgpool]); [None] for non-linear layers. *)

val describe : t -> string
(** One-line human-readable description. *)
