(** Max-pooling layers.

    Unlike convolutions, max pooling is piecewise-linear but not affine,
    so abstract domains need the structured window description; this
    module exposes window enumeration for that purpose. *)

type t = {
  input : Shape.t;
  kernel : int;  (** square window side *)
  stride : int;
}

val create : input:Shape.t -> kernel:int -> stride:int -> t
(** @raise Invalid_argument if the window geometry does not tile. *)

val output_shape : t -> Shape.t

val windows : t -> int array array
(** [windows t] has one entry per output element (in flattened CHW
    order); entry [o] lists the flattened input indices feeding output
    [o].  Every window is non-empty. *)

val forward : t -> Linalg.Vec.t -> Linalg.Vec.t

val backward : t -> x:Linalg.Vec.t -> dout:Linalg.Vec.t -> Linalg.Vec.t
(** Routes each output gradient to the argmax input of its window (first
    index on ties), the standard subgradient choice. *)
