open Linalg

let add_floats buf a =
  Array.iter (fun x -> Buffer.add_string buf (Printf.sprintf " %.17g" x)) a

let to_string net =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "network %d\n" net.Network.input_dim);
  List.iter
    (fun layer ->
      (match layer with
      | Layer.Affine { w; b } ->
          Buffer.add_string buf (Printf.sprintf "affine %d %d" w.Mat.rows w.Mat.cols);
          add_floats buf w.Mat.data;
          add_floats buf b
      | Layer.Relu -> Buffer.add_string buf "relu"
      | Layer.Conv c ->
          Buffer.add_string buf
            (Printf.sprintf "conv %d %d %d %d %d %d %d" c.Conv.input.Shape.channels
               c.Conv.input.Shape.height c.Conv.input.Shape.width c.Conv.out_channels
               c.Conv.kernel c.Conv.stride c.Conv.padding);
          add_floats buf c.Conv.weights;
          add_floats buf c.Conv.bias
      | Layer.Maxpool p ->
          Buffer.add_string buf
            (Printf.sprintf "maxpool %d %d %d %d %d" p.Pool.input.Shape.channels
               p.Pool.input.Shape.height p.Pool.input.Shape.width p.Pool.kernel
               p.Pool.stride)
      | Layer.Avgpool p ->
          Buffer.add_string buf
            (Printf.sprintf "avgpool %d %d %d %d %d"
               p.Avgpool.input.Shape.channels p.Avgpool.input.Shape.height
               p.Avgpool.input.Shape.width p.Avgpool.kernel p.Avgpool.stride));
      Buffer.add_char buf '\n')
    net.Network.layers;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

(* A simple cursor over whitespace-separated tokens; a cursor is local
   to one [of_string] call on one domain. *)
type cursor = { tokens : string array; mutable pos : int }
[@@race.domain_local]

let cursor_of_string s =
  let tokens =
    String.split_on_char '\n' s
    |> List.concat_map (String.split_on_char ' ')
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "")
    |> Array.of_list
  in
  { tokens; pos = 0 }

let next c =
  if c.pos >= Array.length c.tokens then failwith "Serial: unexpected end of input";
  let t = c.tokens.(c.pos) in
  c.pos <- c.pos + 1;
  t

let next_int c =
  let t = next c in
  match int_of_string_opt t with
  | Some n -> n
  | None -> failwith (Printf.sprintf "Serial: expected integer, got %S" t)

let next_float c =
  let t = next c in
  match float_of_string_opt t with
  | Some x -> x
  | None -> failwith (Printf.sprintf "Serial: expected float, got %S" t)

let next_floats c n = Array.init n (fun _ -> next_float c)

let expect c tok =
  let t = next c in
  if t <> tok then failwith (Printf.sprintf "Serial: expected %S, got %S" tok t)

let read_shape c =
  let channels = next_int c in
  let height = next_int c in
  let width = next_int c in
  Shape.create ~channels ~height ~width

let of_string s =
  let c = cursor_of_string s in
  expect c "network";
  let input_dim = next_int c in
  let rec layers acc =
    match next c with
    | "end" -> List.rev acc
    | "relu" -> layers (Layer.Relu :: acc)
    | "affine" ->
        let rows = next_int c in
        let cols = next_int c in
        let data = next_floats c (rows * cols) in
        let w = Mat.init rows cols (fun i j -> data.((i * cols) + j)) in
        let b = next_floats c rows in
        layers (Layer.affine w b :: acc)
    | "conv" ->
        let input = read_shape c in
        let out_channels = next_int c in
        let kernel = next_int c in
        let stride = next_int c in
        let padding = next_int c in
        let count = out_channels * input.Shape.channels * kernel * kernel in
        let weights = next_floats c count in
        let bias = next_floats c out_channels in
        layers
          (Layer.Conv
             (Conv.create ~input ~out_channels ~kernel ~stride ~padding
                ~weights ~bias)
          :: acc)
    | "maxpool" ->
        let input = read_shape c in
        let kernel = next_int c in
        let stride = next_int c in
        layers (Layer.Maxpool (Pool.create ~input ~kernel ~stride) :: acc)
    | "avgpool" ->
        let input = read_shape c in
        let kernel = next_int c in
        let stride = next_int c in
        layers (Layer.Avgpool (Avgpool.create ~input ~kernel ~stride) :: acc)
    | tok -> failwith (Printf.sprintf "Serial: unknown layer kind %S" tok)
  in
  Network.create ~input_dim (layers [])

let save path net =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string net))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
