open Linalg

let vjp net ~x ~dout =
  if Vec.dim dout <> net.Network.output_dim then
    invalid_arg "Grad.vjp: cotangent dimension mismatch";
  let trace = Network.forward_trace net x in
  let layers = Array.of_list net.Network.layers in
  let g = ref dout in
  for i = Array.length layers - 1 downto 0 do
    g := Layer.backward layers.(i) ~x:trace.(i) ~dout:!g
  done;
  !g

let grad_output net ~x ~k =
  if k < 0 || k >= net.Network.output_dim then
    invalid_arg "Grad.grad_output: class index out of range";
  let dout = Vec.init net.Network.output_dim (fun i -> if i = k then 1.0 else 0.0) in
  vjp net ~x ~dout

let grad_norm net x =
  let dout = Vec.create net.Network.output_dim 1.0 in
  Vec.norm2 (vjp net ~x ~dout)

let finite_diff f x ~eps =
  Vec.init (Vec.dim x) (fun i ->
      let bump s =
        let y = Vec.copy x in
        y.(i) <- y.(i) +. s;
        f y
      in
      (bump eps -. bump (-.eps)) /. (2.0 *. eps))
