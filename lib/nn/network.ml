open Linalg

type t = { layers : Layer.t list; input_dim : int; output_dim : int }

let create ~input_dim layers =
  if layers = [] then invalid_arg "Network.create: no layers";
  if input_dim <= 0 then invalid_arg "Network.create: input_dim must be positive";
  let output_dim =
    List.fold_left
      (fun dim layer ->
        match Layer.input_dim layer with
        | Some d when d <> dim ->
            invalid_arg
              (Printf.sprintf
                 "Network.create: layer '%s' expects input dim %d, got %d"
                 (Layer.describe layer) d dim)
        | Some _ | None -> Layer.output_dim ~given:dim layer)
      input_dim layers
  in
  { layers; input_dim; output_dim }

let eval t x =
  if Vec.dim x <> t.input_dim then
    invalid_arg "Network.eval: input dimension mismatch";
  List.fold_left (fun acc layer -> Layer.forward layer acc) x t.layers

let classify t x = Vec.argmax (eval t x)

let forward_trace t x =
  if Vec.dim x <> t.input_dim then
    invalid_arg "Network.forward_trace: input dimension mismatch";
  let rec go acc x = function
    | [] -> List.rev (x :: acc)
    | layer :: rest -> go (x :: acc) (Layer.forward layer x) rest
  in
  Array.of_list (go [] x t.layers)

let num_layers t = List.length t.layers

let num_parameters t =
  List.fold_left
    (fun acc layer ->
      match layer with
      | Layer.Affine { w; b } -> acc + (w.Mat.rows * w.Mat.cols) + Vec.dim b
      | Layer.Conv c -> acc + Array.length c.Conv.weights + Vec.dim c.Conv.bias
      | Layer.Relu | Layer.Maxpool _ | Layer.Avgpool _ -> acc)
    0 t.layers

let num_relu_units t =
  let dim = ref t.input_dim in
  List.fold_left
    (fun acc layer ->
      let acc = match layer with Layer.Relu -> acc + !dim | _ -> acc in
      dim := Layer.output_dim ~given:!dim layer;
      acc)
    0 t.layers

let lipschitz_upper t =
  List.fold_left
    (fun acc layer ->
      match layer with
      | Layer.Relu | Layer.Maxpool _ -> acc
      | Layer.Avgpool _ -> acc (* averaging is 1-Lipschitz in sup norm *)
      | Layer.Affine { w; _ } -> acc *. Vec.max (Mat.abs_row_sums w)
      | Layer.Conv c ->
          let w, _ = Conv.to_affine c in
          acc *. Vec.max (Mat.abs_row_sums w))
    1.0 t.layers

let describe t =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "network: %d -> %d (%d layers, %d params)\n" t.input_dim
       t.output_dim (num_layers t) (num_parameters t));
  List.iter
    (fun layer -> Buffer.add_string b ("  " ^ Layer.describe layer ^ "\n"))
    t.layers;
  Buffer.contents b

let map_affine t fw fb =
  let layers =
    List.map
      (fun layer ->
        match layer with
        | Layer.Affine { w; b } -> Layer.affine (fw w) (fb b)
        | Layer.Relu | Layer.Conv _ | Layer.Maxpool _ | Layer.Avgpool _ ->
            layer)
      t.layers
  in
  create ~input_dim:t.input_dim layers
