open Linalg

type t =
  | Affine of { w : Mat.t; b : Vec.t }
  | Relu
  | Conv of Conv.t
  | Maxpool of Pool.t
  | Avgpool of Avgpool.t

let affine w b =
  if w.Mat.rows <> Vec.dim b then
    invalid_arg "Layer.affine: bias length must equal row count";
  Affine { w; b }

let input_dim = function
  | Affine { w; _ } -> Some w.Mat.cols
  | Relu -> None
  | Conv c -> Some (Shape.size c.Conv.input)
  | Maxpool p -> Some (Shape.size p.Pool.input)
  | Avgpool p -> Some (Shape.size p.Avgpool.input)

let output_dim ~given = function
  | Affine { w; b = _ } ->
      if w.Mat.cols <> given then
        invalid_arg
          (Printf.sprintf "Layer.output_dim: affine expects %d, got %d"
             w.Mat.cols given);
      w.Mat.rows
  | Relu -> given
  | Conv c ->
      if Shape.size c.Conv.input <> given then
        invalid_arg "Layer.output_dim: conv input shape mismatch";
      Shape.size (Conv.output_shape c)
  | Maxpool p ->
      if Shape.size p.Pool.input <> given then
        invalid_arg "Layer.output_dim: maxpool input shape mismatch";
      Shape.size (Pool.output_shape p)
  | Avgpool p ->
      if Shape.size p.Avgpool.input <> given then
        invalid_arg "Layer.output_dim: avgpool input shape mismatch";
      Shape.size (Avgpool.output_shape p)

let forward layer x =
  match layer with
  | Affine { w; b } -> Vec.add (Mat.matvec w x) b
  | Relu -> Vec.relu x
  | Conv c -> Conv.forward c x
  | Maxpool p -> Pool.forward p x
  | Avgpool p -> Avgpool.forward p x

let backward layer ~x ~dout =
  match layer with
  | Affine { w; _ } -> Mat.matvec_t w dout
  | Relu -> Vec.init (Vec.dim x) (fun i -> if x.(i) > 0.0 then dout.(i) else 0.0)
  | Conv c -> Conv.backward c ~dout
  | Maxpool p -> Pool.backward p ~x ~dout
  | Avgpool p -> Avgpool.backward p ~dout

let as_affine = function
  | Affine { w; b } -> Some (w, b)
  | Conv c -> Some (Conv.to_affine c)
  | Avgpool p -> Some (Avgpool.to_affine p)
  | Relu | Maxpool _ -> None

let describe = function
  | Affine { w; _ } -> Printf.sprintf "affine %dx%d" w.Mat.rows w.Mat.cols
  | Relu -> "relu"
  | Conv c ->
      let out = Conv.output_shape c in
      Format.asprintf "conv %a -> %a (k=%d s=%d p=%d)" Shape.pp c.Conv.input
        Shape.pp out c.Conv.kernel c.Conv.stride c.Conv.padding
  | Maxpool p ->
      let out = Pool.output_shape p in
      Format.asprintf "maxpool %a -> %a (k=%d s=%d)" Shape.pp p.Pool.input
        Shape.pp out p.Pool.kernel p.Pool.stride
  | Avgpool p ->
      let out = Avgpool.output_shape p in
      Format.asprintf "avgpool %a -> %a (k=%d s=%d)" Shape.pp p.Avgpool.input
        Shape.pp out p.Avgpool.kernel p.Avgpool.stride
