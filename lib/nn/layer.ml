open Linalg

type t =
  | Affine of { w : Mat.t; b : Vec.t }
  | Relu
  | Conv of Conv.t
  | Maxpool of Pool.t
  | Avgpool of Avgpool.t

let affine w b =
  if w.Mat.rows <> Vec.dim b then
    invalid_arg "Layer.affine: bias length must equal row count";
  Affine { w; b }

let input_dim = function
  | Affine { w; _ } -> Some w.Mat.cols
  | Relu -> None
  | Conv c -> Some (Shape.size c.Conv.input)
  | Maxpool p -> Some (Shape.size p.Pool.input)
  | Avgpool p -> Some (Shape.size p.Avgpool.input)

let output_dim ~given = function
  | Affine { w; b = _ } ->
      if w.Mat.cols <> given then
        invalid_arg
          (Printf.sprintf "Layer.output_dim: affine expects %d, got %d"
             w.Mat.cols given);
      w.Mat.rows
  | Relu -> given
  | Conv c ->
      if Shape.size c.Conv.input <> given then
        invalid_arg "Layer.output_dim: conv input shape mismatch";
      Shape.size (Conv.output_shape c)
  | Maxpool p ->
      if Shape.size p.Pool.input <> given then
        invalid_arg "Layer.output_dim: maxpool input shape mismatch";
      Shape.size (Pool.output_shape p)
  | Avgpool p ->
      if Shape.size p.Avgpool.input <> given then
        invalid_arg "Layer.output_dim: avgpool input shape mismatch";
      Shape.size (Avgpool.output_shape p)

let forward layer x =
  match layer with
  | Affine { w; b } ->
      (* One-row GEMM [y = x W^T + b]: hits the unchecked dot-product
         edge kernel, accumulating over [k] in the same order as a
         matvec (bitwise-identical results, no bounds checks). *)
      if w.Mat.cols <> Vec.dim x then
        invalid_arg "Layer.forward: affine input dimension mismatch";
      let y = Array.copy b in
      Mat.gemm ~transb:true ~beta:1.0
        { Mat.rows = 1; cols = Vec.dim x; data = x }
        w
        { Mat.rows = 1; cols = w.Mat.rows; data = y };
      y
  | Relu -> Vec.relu x
  | Conv c -> Conv.forward c x
  | Maxpool p -> Pool.forward p x
  | Avgpool p -> Avgpool.forward p x

let backward layer ~x ~dout =
  match layer with
  | Affine { w; _ } ->
      (* One-row GEMM [dx = dout W]: the broadcast-accumulate edge
         kernel streams rows of [w] exactly like [Mat.matvec_t]. *)
      if w.Mat.rows <> Vec.dim dout then
        invalid_arg "Layer.backward: affine gradient dimension mismatch";
      let dx = Array.make w.Mat.cols 0.0 in
      Mat.gemm
        { Mat.rows = 1; cols = Vec.dim dout; data = dout }
        w
        { Mat.rows = 1; cols = w.Mat.cols; data = dx };
      dx
  | Relu -> Vec.init (Vec.dim x) (fun i -> if x.(i) > 0.0 then dout.(i) else 0.0)
  | Conv c -> Conv.backward c ~dout
  | Maxpool p -> Pool.backward p ~x ~dout
  | Avgpool p -> Avgpool.backward p ~dout

(* Batched variants: one sample per row, so affine layers run as a
   single GEMM over the whole batch ([Y = X W^T + b] forward, [dX =
   dY W] backward) instead of one matvec per sample.  Non-affine layers
   fall back to the per-sample path row by row.  [?jobs] forwards to
   {!Mat.gemm}'s row-panel parallelism (bit-identical results); omitted,
   the ambient default applies. *)

let forward_batch ?jobs layer (x : Mat.t) =
  match layer with
  | Affine { w; b } ->
      (* Seed y with the broadcast bias, then accumulate X W^T on top. *)
      let y = Mat.init x.Mat.rows w.Mat.rows (fun _ j -> b.(j)) in
      Mat.gemm ?jobs ~transb:true ~beta:1.0 x w y;
      y
  | Relu ->
      {
        Mat.rows = x.Mat.rows;
        cols = x.Mat.cols;
        data = Array.map (fun v -> if v > 0.0 then v else 0.0) x.Mat.data;
      }
  | Conv _ | Maxpool _ | Avgpool _ ->
      let out_dim = output_dim ~given:x.Mat.cols layer in
      let y = Mat.zeros x.Mat.rows out_dim in
      for r = 0 to x.Mat.rows - 1 do
        Array.blit (forward layer (Mat.row x r)) 0 y.Mat.data (r * out_dim)
          out_dim
      done;
      y

let backward_batch ?jobs layer ~(x : Mat.t) ~(dout : Mat.t) =
  match layer with
  | Affine { w; _ } ->
      let dx = Mat.zeros dout.Mat.rows w.Mat.cols in
      Mat.gemm ?jobs dout w dx;
      dx
  | Relu ->
      {
        Mat.rows = x.Mat.rows;
        cols = x.Mat.cols;
        data =
          (* unsafe-array audit: [i] indexes [dout.data], and backward's
             contract is that [dout] has the shape of [forward x] — for
             Relu that is exactly x's shape, checked by the gemm callers. *)
          (Array.mapi
             (fun i v -> if Array.unsafe_get x.Mat.data i > 0.0 then v else 0.0)
             dout.Mat.data
           [@lint.allow "unsafe-array"]);
      }
  | Conv _ | Maxpool _ | Avgpool _ ->
      let dx = Mat.zeros x.Mat.rows x.Mat.cols in
      for r = 0 to x.Mat.rows - 1 do
        let g = backward layer ~x:(Mat.row x r) ~dout:(Mat.row dout r) in
        Array.blit g 0 dx.Mat.data (r * x.Mat.cols) x.Mat.cols
      done;
      dx

let as_affine = function
  | Affine { w; b } -> Some (w, b)
  | Conv c -> Some (Conv.to_affine c)
  | Avgpool p -> Some (Avgpool.to_affine p)
  | Relu | Maxpool _ -> None

let describe = function
  | Affine { w; _ } -> Printf.sprintf "affine %dx%d" w.Mat.rows w.Mat.cols
  | Relu -> "relu"
  | Conv c ->
      let out = Conv.output_shape c in
      Format.asprintf "conv %a -> %a (k=%d s=%d p=%d)" Shape.pp c.Conv.input
        Shape.pp out c.Conv.kernel c.Conv.stride c.Conv.padding
  | Maxpool p ->
      let out = Pool.output_shape p in
      Format.asprintf "maxpool %a -> %a (k=%d s=%d)" Shape.pp p.Pool.input
        Shape.pp out p.Pool.kernel p.Pool.stride
  | Avgpool p ->
      let out = Avgpool.output_shape p in
      Format.asprintf "avgpool %a -> %a (k=%d s=%d)" Shape.pp p.Avgpool.input
        Shape.pp out p.Avgpool.kernel p.Avgpool.stride
