(** Gradients of network outputs by reverse-mode differentiation.

    Networks are piecewise-linear, so gradients exist almost everywhere;
    at kinks we use the standard subgradient conventions documented in
    {!Layer.backward}. *)

val vjp : Network.t -> x:Linalg.Vec.t -> dout:Linalg.Vec.t -> Linalg.Vec.t
(** [vjp n ~x ~dout] is the vector-Jacobian product
    [dout^T . J_N(x)], i.e. the gradient of [dout . N(x)] with respect
    to [x]. *)

val grad_output : Network.t -> x:Linalg.Vec.t -> k:int -> Linalg.Vec.t
(** Gradient of the single output score [N(x)_k]. *)

val grad_norm : Network.t -> Linalg.Vec.t -> float
(** Euclidean norm of the full output-sum gradient at a point; this is
    the "magnitude of the gradient of the network" feature from §6. *)

val finite_diff : (Linalg.Vec.t -> float) -> Linalg.Vec.t -> eps:float -> Linalg.Vec.t
(** Central finite-difference gradient of a scalar function; used by
    tests to validate backprop. *)
