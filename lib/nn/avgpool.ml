type t = { input : Shape.t; kernel : int; stride : int }

let create ~input ~kernel ~stride =
  ignore
    (Shape.conv_output input ~kernel ~stride ~padding:0
       ~out_channels:input.Shape.channels);
  { input; kernel; stride }

let output_shape t =
  Shape.conv_output t.input ~kernel:t.kernel ~stride:t.stride ~padding:0
    ~out_channels:t.input.Shape.channels

(* Shares the window enumeration with max pooling. *)
let windows t =
  Pool.windows (Pool.create ~input:t.input ~kernel:t.kernel ~stride:t.stride)

let forward t x =
  if Array.length x <> Shape.size t.input then
    invalid_arg "Avgpool.forward: input dimension mismatch";
  Array.map
    (fun window ->
      Array.fold_left (fun acc i -> acc +. x.(i)) 0.0 window
      /. float_of_int (Array.length window))
    (windows t)

let backward t ~dout =
  let wins = windows t in
  if Array.length dout <> Array.length wins then
    invalid_arg "Avgpool.backward: output gradient dimension mismatch";
  let dx = Array.make (Shape.size t.input) 0.0 in
  Array.iteri
    (fun o window ->
      let share = dout.(o) /. float_of_int (Array.length window) in
      Array.iter (fun i -> dx.(i) <- dx.(i) +. share) window)
    wins;
  dx

let to_affine t =
  let wins = windows t in
  let out_dim = Array.length wins in
  let w = Linalg.Mat.zeros out_dim (Shape.size t.input) in
  Array.iteri
    (fun o window ->
      let share = 1.0 /. float_of_int (Array.length window) in
      Array.iter
        (fun i -> Linalg.Mat.set w o i (Linalg.Mat.get w o i +. share))
        window)
    wins;
  (w, Linalg.Vec.zeros out_dim)
