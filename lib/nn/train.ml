open Linalg

type sample = { x : Vec.t; label : int }

type config = {
  epochs : int;
  batch_size : int;
  learning_rate : float;
  weight_decay : float;
  momentum : float;
}

let default_config =
  {
    epochs = 10;
    batch_size = 32;
    learning_rate = 0.05;
    weight_decay = 0.0;
    momentum = 0.9;
  }

let softmax scores =
  let m = Vec.max scores in
  let exps = Vec.map (fun s -> exp (s -. m)) scores in
  let z = Vec.sum exps in
  Vec.scale (1.0 /. z) exps

let cross_entropy_loss scores label =
  if label < 0 || label >= Vec.dim scores then
    invalid_arg "Train.cross_entropy_loss: label out of range";
  let m = Vec.max scores in
  let log_z = m +. log (Vec.sum (Vec.map (fun s -> exp (s -. m)) scores)) in
  log_z -. scores.(label)

(* Per-layer gradient accumulators, mirroring the network structure. *)
type grads =
  | Gaffine of { dw : Mat.t; db : Vec.t }
  | Gconv of { dw : float array; db : Vec.t }
  | Gnone

let zero_grads net =
  List.map
    (fun layer ->
      match layer with
      | Layer.Affine { w; b } ->
          Gaffine { dw = Mat.zeros w.Mat.rows w.Mat.cols; db = Vec.zeros (Vec.dim b) }
      | Layer.Conv c ->
          Gconv
            {
              dw = Array.make (Array.length c.Conv.weights) 0.0;
              db = Vec.zeros (Vec.dim c.Conv.bias);
            }
      | Layer.Relu | Layer.Maxpool _ | Layer.Avgpool _ -> Gnone)
    net.Network.layers

(* Forward/backward over a whole minibatch at once, one sample per
   matrix row, accumulating parameter gradients in place.  Affine
   layers run as three GEMMs — [Y = X W^T + b] forward, [dW += dY^T X]
   for the weight gradient and [dX = dY W] for the input gradient —
   instead of a matvec and an outer-product loop per sample;
   convolution and pooling layers fall back to their per-sample
   kernels row by row. *)
let accumulate_batch net grads xs labels =
  let batch = Array.length xs in
  let x0 = Mat.init batch net.Network.input_dim (fun i j -> xs.(i).(j)) in
  let layers = Array.of_list net.Network.layers in
  let nl = Array.length layers in
  let trace = Array.make (nl + 1) x0 in
  for i = 0 to nl - 1 do
    trace.(i + 1) <- Layer.forward_batch layers.(i) trace.(i)
  done;
  let scores = trace.(nl) in
  (* dL/dscores, row per sample. *)
  let dscores = Mat.zeros batch scores.Mat.cols in
  for r = 0 to batch - 1 do
    let probs = softmax (Mat.row scores r) in
    let base = r * scores.Mat.cols in
    for j = 0 to scores.Mat.cols - 1 do
      dscores.Mat.data.(base + j) <-
        probs.(j) -. if j = labels.(r) then 1.0 else 0.0
    done
  done;
  let grads = Array.of_list grads in
  let g = ref dscores in
  for i = nl - 1 downto 0 do
    let x = trace.(i) in
    (match (layers.(i), grads.(i)) with
    | Layer.Affine _, Gaffine { dw; db } ->
        (* dW += dY^T X over the whole batch in one GEMM; db += column
           sums of dY. *)
        Mat.gemm ~transa:true ~beta:1.0 !g x dw;
        let gd = (!g).Mat.data and cols = (!g).Mat.cols in
        for r = 0 to batch - 1 do
          let base = r * cols in
          for c = 0 to cols - 1 do
            db.(c) <- db.(c) +. gd.(base + c)
          done
        done
    | Layer.Conv c, Gconv { dw; db } ->
        for r = 0 to batch - 1 do
          let dwc, dbc =
            Conv.grad_params c ~x:(Mat.row x r) ~dout:(Mat.row !g r)
          in
          Array.iteri (fun i v -> dw.(i) <- dw.(i) +. v) dwc;
          Array.iteri (fun i v -> db.(i) <- db.(i) +. v) dbc
        done
    | (Layer.Relu | Layer.Maxpool _ | Layer.Avgpool _), Gnone -> ()
    | _ -> assert false);
    if i > 0 then g := Layer.backward_batch layers.(i) ~x ~dout:!g
  done

(* Momentum buffers share the accumulator shape; [Gnone] for
   parameterless layers. *)
let apply_update net grads velocities ~lr ~decay ~mu ~batch =
  let inv_batch = 1.0 /. float_of_int batch in
  let layers =
    List.map2
      (fun layer (grad, vel) ->
        match (layer, grad, vel) with
        | Layer.Affine { w; b }, Gaffine { dw; db }, Gaffine { dw = vw; db = vb }
          ->
            let w' =
              Mat.init w.Mat.rows w.Mat.cols (fun i j ->
                  let wij = Mat.get w i j in
                  let g = (inv_batch *. Mat.get dw i j) +. (decay *. wij) in
                  let v = (mu *. Mat.get vw i j) +. g in
                  Mat.set vw i j v;
                  wij -. (lr *. v))
            in
            let b' =
              Vec.init (Vec.dim b) (fun i ->
                  let v = (mu *. vb.(i)) +. (inv_batch *. db.(i)) in
                  vb.(i) <- v;
                  b.(i) -. (lr *. v))
            in
            Layer.affine w' b'
        | Layer.Conv c, Gconv { dw; db }, Gconv { dw = vw; db = vb } ->
            let dweights =
              Array.mapi
                (fun i g ->
                  let v = (mu *. vw.(i)) +. (inv_batch *. g) in
                  vw.(i) <- v;
                  v)
                dw
            in
            let dbias =
              Array.mapi
                (fun i g ->
                  let v = (mu *. vb.(i)) +. (inv_batch *. g) in
                  vb.(i) <- v;
                  v)
                db
            in
            Layer.Conv (Conv.update c ~dweights ~dbias ~lr)
        | (Layer.Relu | Layer.Maxpool _ | Layer.Avgpool _), Gnone, Gnone ->
            layer
        | _ -> assert false)
      net.Network.layers
      (List.combine grads velocities)
  in
  Network.create ~input_dim:net.Network.input_dim layers

let train ?(config = default_config) ~rng net samples =
  if Array.length samples = 0 then invalid_arg "Train.train: no samples";
  let net = ref net in
  let velocities = zero_grads !net in
  let order = Array.init (Array.length samples) Fun.id in
  for _epoch = 1 to config.epochs do
    Rng.shuffle rng order;
    let i = ref 0 in
    while !i < Array.length order do
      let batch = Stdlib.min config.batch_size (Array.length order - !i) in
      let grads = zero_grads !net in
      let xs = Array.init batch (fun j -> samples.(order.(!i + j)).x) in
      let labels =
        Array.init batch (fun j -> samples.(order.(!i + j)).label)
      in
      accumulate_batch !net grads xs labels;
      net :=
        apply_update !net grads velocities ~lr:config.learning_rate
          ~decay:config.weight_decay ~mu:config.momentum ~batch;
      i := !i + batch
    done
  done;
  !net

let accuracy net samples =
  if Array.length samples = 0 then invalid_arg "Train.accuracy: no samples";
  let correct =
    Array.fold_left
      (fun acc s -> if Network.classify net s.x = s.label then acc + 1 else acc)
      0 samples
  in
  float_of_int correct /. float_of_int (Array.length samples)

let mean_loss net samples =
  if Array.length samples = 0 then invalid_arg "Train.mean_loss: no samples";
  let total =
    Array.fold_left
      (fun acc s -> acc +. cross_entropy_loss (Network.eval net s.x) s.label)
      0.0 samples
  in
  total /. float_of_int (Array.length samples)
