(** The selection functions φα and φI of §4.1/§6.

    They convert the raw policy outputs [θ · ρ(ι)] into an abstract
    domain choice and an input-region split, respectively. *)

val domain_dim : int
(** Length of the vector consumed by {!domain_of_vector} (2). *)

val partition_dim : int
(** Length of the vector consumed by {!partition_of_vector} (3). *)

val clip01 : float -> float
(** Clamp into [\[0, 1\]], the discretization preamble described in §6. *)

val domain_of_vector : Linalg.Vec.t -> Domains.Domain.spec
(** First component selects the base domain (interval below 0.5,
    zonotope above); second selects the disjunct count from {1, 2, 4}. *)

val influence_dim : Features.input -> int
(** The input dimension with the largest influence on the target score:
    the magnitude of ∂N(xstar)_K/∂x_i times the region's width in
    dimension [i] (the
    ReluVal-style influence measure referenced in §6). *)

val partition_of_vector : Features.input -> Linalg.Vec.t -> int * float
(** [(dim, at)]: the split hyperplane [x_dim = at].  The first two
    components arbitrate between the longest dimension and the
    most-influential dimension; the third is the offset ratio from the
    region center toward [x*] (0 bisects, 1 cuts through [x*]).
    Falls back to the longest dimension if the chosen one has zero
    width. *)
