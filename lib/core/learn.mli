(** The training phase: learning a verification policy with Bayesian
    optimization (§4.2).

    Given a set of representative training problems, searches the policy
    parameter space for a θ minimizing the total cost
    [Σ_s cost_θ(s)] where [cost_θ(s)] is the solving cost if [s] is
    solved within the per-problem limit and [penalty × limit]
    otherwise — the objective of §4.2 (the paper uses p = 2). *)

type problem = { net : Nn.Network.t; property : Common.Property.t }

type limit =
  | Seconds of float  (** wall-clock per-problem limit, as in the paper *)
  | Steps of int
      (** deterministic per-problem limit in abstract transformer calls;
          used by tests and reproducible experiments *)

type config = {
  per_problem : limit;
  penalty : float;  (** the paper's p (default 2.0) *)
  verify : Verify.config;
  bopt : Bayesopt.Bopt.config;
  theta_range : float;  (** search box [-r, r]^num_params (default 1.0) *)
}

val default_config : config

val cost : config -> seed:int -> problem list -> Policy.t -> float
(** Total cost of solving the training problems with the given policy;
    lower is better.  Deterministic for a fixed seed under a [Steps]
    limit. *)

type result = {
  policy : Policy.t;
  best_score : float;  (** the maximized objective, i.e. negated cost *)
  evaluations : int;
  bopt : Bayesopt.Bopt.result;
}

val train : ?config:config -> rng:Linalg.Rng.t -> problem list -> result
(** Run Bayesian optimization over policy parameters and return the best
    policy found.
    @raise Invalid_argument on an empty problem list. *)
