open Linalg
open Domains

let domain_dim = 2

let partition_dim = 3

let clip01 x = if x < 0.0 then 0.0 else if x > 1.0 then 1.0 else x

let domain_of_vector v =
  if Vec.dim v <> domain_dim then
    invalid_arg "Select.domain_of_vector: expected a 2-vector";
  let base =
    if clip01 v.(0) < 0.5 then Domain.Interval_base else Domain.Zonotope_base
  in
  let k_raw = clip01 v.(1) in
  let disjuncts = if k_raw < 1.0 /. 3.0 then 1 else if k_raw < 2.0 /. 3.0 then 2 else 4 in
  Domain.powerset base disjuncts

let influence_dim (input : Features.input) =
  let g =
    Nn.Grad.grad_output input.Features.net ~x:input.Features.xstar
      ~k:input.Features.target
  in
  let region = input.Features.region in
  let best = ref 0 and best_score = ref neg_infinity in
  for i = 0 to Vec.dim g - 1 do
    let score = abs_float g.(i) *. Box.width region i in
    if score > !best_score then begin
      best_score := score;
      best := i
    end
  done;
  !best

let partition_of_vector (input : Features.input) v =
  if Vec.dim v <> partition_dim then
    invalid_arg "Select.partition_of_vector: expected a 3-vector";
  let region = input.Features.region in
  let longest = Box.longest_dim region in
  let chosen =
    if clip01 v.(0) >= clip01 v.(1) then longest else influence_dim input
  in
  let dim = if Box.width region chosen > 0.0 then chosen else longest in
  let ratio = clip01 v.(2) in
  let center = Box.center region in
  let at = center.(dim) +. (ratio *. (input.Features.xstar.(dim) -. center.(dim))) in
  (dim, at)
