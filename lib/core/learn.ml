open Linalg
open Domains

type problem = { net : Nn.Network.t; property : Common.Property.t }

type limit = Seconds of float | Steps of int

type config = {
  per_problem : limit;
  penalty : float;
  verify : Verify.config;
  bopt : Bayesopt.Bopt.config;
  theta_range : float;
}

let default_config =
  {
    per_problem = Steps 2000;
    penalty = 2.0;
    verify = Verify.default_config;
    bopt = Bayesopt.Bopt.default_config;
    theta_range = 1.0;
  }

let cost config ~seed problems policy =
  List.fold_left
    (fun acc p ->
      let rng = Rng.create seed in
      let budget =
        match config.per_problem with
        | Seconds s -> Common.Budget.of_seconds s
        | Steps n -> Common.Budget.of_steps n
      in
      let report =
        Verify.run ~config:config.verify ~budget ~rng ~policy p.net p.property
      in
      let solved = Common.Outcome.is_solved report.Verify.outcome in
      let c =
        match (config.per_problem, solved) with
        | Seconds s, false -> config.penalty *. s
        | Seconds _, true -> report.Verify.elapsed
        | Steps n, false -> config.penalty *. float_of_int n
        | Steps _, true -> float_of_int (Common.Budget.steps_used budget)
      in
      acc +. c)
    0.0 problems

type result = {
  policy : Policy.t;
  best_score : float;
  evaluations : int;
  bopt : Bayesopt.Bopt.result;
}

let train ?(config = default_config) ~rng problems =
  if problems = [] then invalid_arg "Learn.train: no training problems";
  let d = Policy.num_params in
  let r = config.theta_range in
  let space =
    Box.create ~lo:(Vec.create d (-.r)) ~hi:(Vec.create d r)
  in
  (* Each objective evaluation must be deterministic in θ alone so the
     surrogate model sees a consistent function: the verifier RNG seed is
     fixed across evaluations. *)
  let seed = Int64.to_int (Rng.bits64 rng) land 0x3FFFFFFF in
  let objective theta =
    -.cost config ~seed problems (Policy.of_vector theta)
  in
  let bopt = Bayesopt.Bopt.maximize ~config:config.bopt ~rng space objective in
  {
    policy = Policy.of_vector bopt.Bayesopt.Bopt.best.Bayesopt.Bopt.point;
    best_score = bopt.Bayesopt.Bopt.best.Bayesopt.Bopt.value;
    evaluations = List.length bopt.Bayesopt.Bopt.history;
    bopt;
  }
