(** The subregion proof cache.

    Remembers, across runs and across queries, every sub-box the
    decision procedure has *proved*: an entry means "the property
    (network, target, δ) holds on this exact region", which is
    independent of the budget, depth limit, policy and RNG of the run
    that proved it — so replaying it later is sound.  Refutations,
    timeouts and unknowns are run-relative and are never stored.

    Keys digest the network weights, target class, δ and the bit-exact
    region bounds ([Domains.Partition.key_of_box]); a changed network
    changes the digest, so stale proofs are invalidated structurally
    rather than by flushing.  [Verify.run] consults the cache before
    each abstract-interpretation call and records proved subregions
    (including internal split nodes once both halves are proved), and
    snaps its split cuts onto the canonical partition whenever a cache
    is attached so overlapping queries reach bit-identical subregions.

    Domain-safe; shareable between all scheduler workers.  Lookup/hit
    tallies are mirrored into the telemetry counters
    [proofcache.lookups] / [.hits] / [.records] / [.evictions]. *)

type t

val create : ?capacity:int -> ?persist:string -> unit -> t
(** [capacity] (default 65536) bounds the in-memory LRU.  [persist]
    names an append-only JSONL journal (one [{"v":1,"proved":"<hex>"}]
    per line): existing facts are replayed into the LRU on create
    (unparseable lines skipped) and new facts are appended and flushed
    as they are recorded.
    @raise Invalid_argument when [capacity < 1]. *)

val net_digest : Nn.Network.t -> string
(** Hex digest of the serialized weights ([Nn.Serial] renders floats
    with [%.17g], so the digest is bit-faithful).  Compute once per run
    and pass to [key]. *)

val key :
  net_digest:string ->
  target:int ->
  delta:float ->
  region:Domains.Box.t ->
  string
(** The cache key for one subregion proof fact. *)

val lookup : t -> string -> bool
(** [true] exactly when the fact is cached (a prior run proved this
    region for this network/target/δ).  Refreshes LRU recency and
    counts a lookup, plus a hit when found. *)

val record : t -> string -> unit
(** Insert a proved fact, appending it to the journal (if any) unless
    it was already present. *)

val loaded : t -> int
(** Facts replayed from the journal at [create] time. *)

val persist_path : t -> string option

val close : t -> unit
(** Close the journal channel (facts already flushed survive).  The
    cache remains usable in memory; further records are not journaled. *)

type stats = {
  entries : int;
  capacity : int;
  lookups : int;
  hits : int;
  evictions : int;
}

val stats : t -> stats
(** Lifetime tallies from the underlying LRU ([lookups = hits +
    misses]); readable from any domain without blocking writers. *)
