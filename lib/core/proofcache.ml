(* The subregion proof cache.

   Algorithm 1 re-proves the same sub-boxes over and over across
   overlapping queries; this cache remembers them.  An entry is a
   *proof fact*: "the property (network, target class, delta) holds on
   this exact region".  Only [Verified] is ever stored — a proof is
   independent of the budget, depth limit, policy and RNG that happened
   to produce it, so replaying it later (or for a different query that
   reaches the same subregion) is sound.  Refutations, timeouts and
   unknowns are all run-relative and are never cached here.

   The key digests the network weights (the Nn.Serial text, which
   renders every float with %.17g and so round-trips bit-for-bit), the
   target class, delta, and the bit-exact region bounds from
   Domains.Partition.key_of_box.  A changed network changes the digest
   and silently invalidates every entry — no epochs or flush calls.
   Cross-query hits come from Verify splitting on canonical partition
   cuts whenever a cache is attached: interior subregions of
   overlapping root boxes then coincide bit-for-bit.

   Persistence is an append-only JSONL journal: one {"v":1,"proved":
   "<hex>"} object per line, appended (and flushed) as facts are
   recorded, replayed into the LRU on [create].  The journal may hold
   more facts than [capacity]; the most recent [capacity] survive the
   load.  Unparseable lines are skipped, so a torn tail write cannot
   poison a restart.

   Domain-safe: the LRU has its own lock; the journal channel is
   guarded by [io_mutex].  Hit/lookup tallies live in the LRU's atomics
   and are mirrored into the telemetry counters proofcache.lookups /
   .hits / .records / .evictions. *)

type t = {
  lru : unit Common.Lru.t;
  io_mutex : Mutex.t;
  mutable journal : out_channel option;
  path : string option;
  loaded : int;
}
[@@race.guarded_by "io_mutex"]

let c_lookups = Telemetry.Metrics.counter "proofcache.lookups"

let c_hits = Telemetry.Metrics.counter "proofcache.hits"

let c_records = Telemetry.Metrics.counter "proofcache.records"

let c_evictions = Telemetry.Metrics.counter "proofcache.evictions"

let net_digest net = Digest.to_hex (Digest.string (Nn.Serial.to_string net))

let key ~net_digest ~target ~delta ~(region : Domains.Box.t) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf net_digest;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (string_of_int target);
  Buffer.add_char buf '\n';
  Buffer.add_int64_le buf (Int64.bits_of_float delta);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Domains.Partition.key_of_box region);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* One journal line.  Keys are hex digests, so no JSON escaping is ever
   needed on the write side, and the read side can scan for the quoted
   value without a full parser. *)
let journal_line k = Printf.sprintf "{\"v\":1,\"proved\":\"%s\"}" k

let parse_journal_line line =
  let marker = "\"proved\":\"" in
  let n = String.length line and m = String.length marker in
  let rec find i =
    if i + m > n then None
    else if String.sub line i m = marker then
      let j = i + m in
      match String.index_from_opt line j '"' with
      | Some close when close > j -> Some (String.sub line j (close - j))
      | _ -> None
    else find (i + 1)
  in
  find 0

let load_journal lru path =
  if Sys.file_exists path then begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = ref 0 in
        (try
           while true do
             match parse_journal_line (input_line ic) with
             | Some k ->
                 ignore (Common.Lru.put lru k ());
                 incr n
             | None -> ()
           done
         with End_of_file -> ());
        !n)
  end
  else 0

let create ?(capacity = 65536) ?persist () =
  let lru = Common.Lru.create ~capacity () in
  let loaded =
    match persist with Some p -> load_journal lru p | None -> 0
  in
  let journal =
    match persist with
    | Some p ->
        Some (open_out_gen [ Open_append; Open_creat ] 0o644 p)
    | None -> None
  in
  { lru; io_mutex = Mutex.create (); journal; path = persist; loaded }

let loaded t = t.loaded

let persist_path t = t.path

let lookup t k =
  Telemetry.Metrics.incr c_lookups;
  match Common.Lru.get t.lru k with
  | Some () ->
      Telemetry.Metrics.incr c_hits;
      true
  | None -> false

let record t k =
  (* [mem] first so a warm run does not re-journal facts it just
     loaded; the mem/put race across domains can at worst duplicate a
     line on disk, and the load path dedupes through the LRU anyway. *)
  let known = Common.Lru.mem t.lru k in
  if Common.Lru.put t.lru k () then Telemetry.Metrics.incr c_evictions;
  Telemetry.Metrics.incr c_records;
  if not known then
    match t.journal with
    | None -> ()
    | Some oc ->
        Mutex.lock t.io_mutex;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.io_mutex)
          (fun () ->
            output_string oc (journal_line k);
            output_char oc '\n';
            flush oc)

let close t =
  Mutex.lock t.io_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.io_mutex)
    (fun () ->
      match t.journal with
      | Some oc ->
          t.journal <- None;
          close_out_noerr oc
      | None -> ())

type stats = {
  entries : int;
  capacity : int;
  lookups : int;
  hits : int;
  evictions : int;
}

let stats t =
  let s = Common.Lru.stats t.lru in
  {
    entries = s.Common.Lru.size;
    capacity = s.Common.Lru.capacity;
    lookups = s.Common.Lru.hits + s.Common.Lru.misses;
    hits = s.Common.Lru.hits;
    evictions = s.Common.Lru.evictions;
  }
