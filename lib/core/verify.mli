(** The Charon decision procedure (Algorithm 1).

    Interleaves PGD counterexample search with abstract-interpretation
    proof attempts, splitting the input region under the guidance of a
    verification policy when neither succeeds.  With the δ-relaxed
    counterexample test (Eq. 4) the procedure is sound and δ-complete
    (Theorems 5.2 and 5.4): given enough budget it terminates with either
    a proof or a δ-counterexample. *)

val log_src : Logs.Src.t
(** Logs source ["charon.verify"]: per-node traces at debug level,
    refutations at info level. *)

type strategy =
  | Depth_first  (** Algorithm 1's recursion order (left branch first) *)
  | Best_first
      (** refine the pending region whose parent PGD value was closest
          to violating the property first; an anytime-flavoured
          extension useful when hunting counterexamples *)

type config = {
  delta : float;
      (** δ of Eq. 4; refute as soon as [F(xstar) <= delta].  Must be
          positive for the termination guarantee. *)
  max_depth : int;  (** recursion-depth safety limit *)
  pgd : Optim.Pgd.config;  (** counterexample-search configuration *)
  use_cex_search : bool;
      (** when false, skip PGD entirely (the RQ2 ablation); only the
          region center is checked as a candidate counterexample *)
  strategy : strategy;
}

val default_config : config
(** δ = 1e-4, depth 60, default PGD with early stop at δ, depth-first. *)

type report = {
  outcome : Common.Outcome.t;
  elapsed : float;  (** seconds *)
  nodes : int;  (** recursion-tree nodes explored *)
  analyze_calls : int;  (** abstract-interpretation attempts *)
  pgd_calls : int;
  transformer_calls : int;  (** total abstract layer applications *)
  peak_depth : int;
  workers : int;  (** worker domains used for the region search *)
  domains_used : (Domains.Domain.spec * int) list;
      (** how often the policy chose each abstract domain *)
  cache_lookups : int;
      (** proof-cache consultations this run (0 without [?proofcache]) *)
  cache_hits : int;
      (** subtrees discharged from the proof cache without an analyze
          call *)
  kernel_fanouts : int;
      (** regions analyzed with kernel parallelism granted by the
          solo-in-flight nesting policy (always 0 when [workers = 1]) *)
  kernel_peak_domains : int;
      (** process-wide high-water mark of domains concurrently computing
          GEMM panels ({!Parallel.Kpool.peak_participants}); the nesting
          policy keeps it within the [-j] budget *)
}

val run :
  ?config:config ->
  ?budget:Common.Budget.t ->
  ?workers:int ->
  ?cancel:Parallel.Cancel.t ->
  ?on_progress:(nodes:int -> depth:int -> unit) ->
  ?proofcache:Proofcache.t ->
  rng:Linalg.Rng.t ->
  policy:Policy.t ->
  Nn.Network.t ->
  Common.Property.t ->
  report
(** Verify or refute the property.  [Refuted x] guarantees
    [F(x) <= delta] with [x] in the input region (δ-completeness);
    [Verified] guarantees the property holds (soundness).  [Timeout] is
    returned only for genuine resource exhaustion — the step/wall
    budget ran out or the run was cancelled.  [Unknown] means a
    precision limit was hit with budget to spare: the region cannot be
    split further (a zero-width dimension), or the split depth reached
    [config.max_depth], yet the abstract proof still fails.

    [proofcache] attaches a subregion proof cache: before each abstract
    proof attempt the region's fact is looked up (a hit discharges the
    whole subtree), every proved region — including internal split
    nodes once both halves are proved — is recorded, and split cuts
    snap onto the canonical partition ([Domains.Partition]) so
    overlapping queries reach bit-identical subregions.  Without it the
    search is bit-identical to earlier releases, PGD-guided cuts and
    all.

    [workers] (default 1) drains the region worklist on that many OCaml
    domains.  [workers = 1] is exactly the sequential Algorithm 1 path.
    With more workers the first [Refuted]/[Timeout]/[Unknown] answer
    cancels outstanding work — with the one exception that a
    concurrently found [Refuted x] upgrades a just-settled
    [Timeout]/[Unknown] (a counterexample in hand is never dropped;
    the reverse downgrade can never happen) — while [Verified] requires
    the shared queue to drain empty; each work item carries an RNG
    split off its parent's, so a fixed (seed, workers) pair reproduces
    the same search tree regardless of scheduling.  A worker that holds
    the only outstanding region (tail of the search, or a tree that
    never fans out) re-spends the [-j] budget on kernel parallelism
    inside its abstract pass ({!Linalg.Mat.gemm} row panels,
    bit-identical results); under full region parallelism kernels stay
    sequential, so domains computing at once never exceed [workers].
    Raises [Invalid_argument] when [workers < 1].

    [cancel] is a cooperative external stop: the token is polled once
    per region, and a run that observes it abandons the search and
    returns [Timeout] (the caller that asked for cancellation is the
    one who can tell the difference).  [on_progress] is invoked once
    per explored region with the running node count and the region's
    depth; it may be called concurrently from every worker domain, so
    the callback must be domain-safe (the serving layer stores the
    numbers in atomics).  Both hooks default to off and cost nothing
    when absent. *)

(** {1 Resumable subtree verification}

    The unit of work of a charon-dverify shard: verify the subtree
    rooted at one sub-box of a property, with the ability to stop
    between regions and hand the unexplored frontier back to the
    coordinator (for budget escalation or work-stealing). *)

type subtree_outcome =
  | Subtree_proved  (** every region of the subtree was proved *)
  | Subtree_refuted of Linalg.Vec.t
      (** counterexample found; [F(x) <= delta] *)
  | Subtree_unknown
      (** a region hit a precision limit (depth cap or zero-width
          split); refining harder will not help *)
  | Subtree_yielded
      (** stopped early — budget exhausted, [yield] asked, or [cancel]
          fired; the undecided regions are in [frontier] *)

type subtree_report = {
  subtree_outcome : subtree_outcome;
  frontier : (Domains.Box.t * int) list;
      (** unexplored [(region, absolute depth)] pairs, left-most first;
          non-empty only for [Subtree_yielded].  Re-running each entry
          (at its recorded depth) completes the original obligation —
          nothing is dropped by stopping early. *)
  subtree_nodes : int;
  subtree_analyze_calls : int;
  subtree_pgd_calls : int;
  subtree_transformer_calls : int;
  subtree_cache_lookups : int;
  subtree_cache_hits : int;
  subtree_elapsed : float;  (** seconds *)
}

val run_subtree :
  ?config:config ->
  ?budget:Common.Budget.t ->
  ?cancel:Parallel.Cancel.t ->
  ?yield:(unit -> bool) ->
  ?proofcache:Proofcache.t ->
  ?root_depth:int ->
  rng:Linalg.Rng.t ->
  policy:Policy.t ->
  Nn.Network.t ->
  Common.Property.t ->
  subtree_report
(** Sequential depth-first verification of the subtree rooted at
    [prop.region], entering the recursion at [root_depth] (default 0):
    regions count against [config.max_depth] from there, and with
    [?proofcache] the split cuts snap onto the canonical partition, so
    a shard started at the depth that produced its sub-box explores
    bit-identical regions (with bit-identical cache keys) to a
    single-process run that descended to it.

    [yield] is polled once per region *before* the region is processed;
    returning [true] stops the drain with the pending regions — the
    polled one included — in [frontier].  [budget] exhaustion and
    [cancel] stop the same way, so a shard interrupted for any reason
    loses no proof obligation.  Raises [Invalid_argument] when
    [root_depth] is negative. *)
