open Linalg
open Domains

type linear = { theta_domain : Mat.t; theta_partition : Mat.t }

type t =
  | Linear of linear
  | Custom of {
      name : string;
      domain : Features.input -> Domain.spec;
      split : Features.input -> int * float;
    }

let num_params = (Select.domain_dim + Select.partition_dim) * Features.dim

let of_theta ~theta_domain ~theta_partition =
  if theta_domain.Mat.rows <> Select.domain_dim
     || theta_domain.Mat.cols <> Features.dim then
    invalid_arg "Policy.of_theta: bad domain-matrix shape";
  if theta_partition.Mat.rows <> Select.partition_dim
     || theta_partition.Mat.cols <> Features.dim then
    invalid_arg "Policy.of_theta: bad partition-matrix shape";
  Linear { theta_domain; theta_partition }

let of_vector v =
  if Vec.dim v <> num_params then
    invalid_arg
      (Printf.sprintf "Policy.of_vector: expected %d params, got %d" num_params
         (Vec.dim v));
  let f = Features.dim in
  let theta_domain = Mat.init Select.domain_dim f (fun i j -> v.((i * f) + j)) in
  let off = Select.domain_dim * f in
  let theta_partition =
    Mat.init Select.partition_dim f (fun i j -> v.(off + (i * f) + j))
  in
  Linear { theta_domain; theta_partition }

let to_vector = function
  | Custom _ -> None
  | Linear { theta_domain; theta_partition } ->
      Some (Array.append theta_domain.Mat.data theta_partition.Mat.data)

let default =
  Custom
    {
      name = "default";
      domain =
        (fun input ->
          (* The closer x* is to violating the property, the more
             precision we buy. *)
          let f = input.Features.fstar in
          if f > 1.0 then Domain.zonotope
          else if f > 0.25 then Domain.powerset Domain.Zonotope_base 2
          else Domain.powerset Domain.Zonotope_base 4);
      split =
        (fun input ->
          let region = input.Features.region in
          let d = Box.longest_dim region in
          let center = Box.center region in
          let at =
            center.(d) +. (0.5 *. (input.Features.xstar.(d) -. center.(d)))
          in
          (d, at));
    }

let fixed_domain spec =
  Custom
    {
      name = "fixed-" ^ Domain.to_string spec;
      domain = (fun _ -> spec);
      split =
        (fun input ->
          let region = input.Features.region in
          let d = Box.longest_dim region in
          let center = Box.center region in
          (d, center.(d)));
    }

let bisection =
  Custom
    {
      name = "bisection";
      domain =
        (fun input ->
          match default with
          | Custom { domain; _ } -> domain input
          | Linear _ -> assert false);
      split =
        (fun input ->
          let region = input.Features.region in
          let d = Box.longest_dim region in
          let center = Box.center region in
          (d, center.(d)));
    }

let choose_domain t input =
  match t with
  | Custom { domain; _ } -> domain input
  | Linear { theta_domain; _ } ->
      Select.domain_of_vector (Mat.matvec theta_domain (Features.compute input))

let choose_split t input =
  match t with
  | Custom { split; _ } -> split input
  | Linear { theta_partition; _ } ->
      Select.partition_of_vector input
        (Mat.matvec theta_partition (Features.compute input))

let save path t =
  match to_vector t with
  | None -> invalid_arg "Policy.save: cannot persist a hand-written policy"
  | Some v ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc "charon-policy 1\n";
          Array.iter (fun x -> output_string oc (Printf.sprintf "%.17g\n" x)) v)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header = input_line ic in
      if header <> "charon-policy 1" then
        failwith "Policy.load: unrecognized header";
      let params =
        Array.init num_params (fun _ ->
            let line = input_line ic in
            match float_of_string_opt (String.trim line) with
            | Some x -> x
            | None -> failwith "Policy.load: malformed parameter line")
      in
      of_vector params)
