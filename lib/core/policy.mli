(** Verification policies πθ = (πα, πI) (§4.1).

    A policy decides, for each unsolved sub-problem, (a) which abstract
    domain to attempt verification with and (b) where to split the input
    region.  The learned representation is a pair of parameter matrices
    applied to the feature vector of {!Features}; a few hand-written
    policies are provided for ablations and as baselines. *)

type t

val of_theta : theta_domain:Linalg.Mat.t -> theta_partition:Linalg.Mat.t -> t
(** Linear policy [φ(θ · ρ(ι))].  [theta_domain] must be
    [Select.domain_dim × Features.dim] and [theta_partition]
    [Select.partition_dim × Features.dim]. *)

val of_vector : Linalg.Vec.t -> t
(** Policy from a flat parameter vector of length {!num_params}
    (row-major [theta_domain] followed by row-major [theta_partition]);
    the encoding used by the Bayesian-optimization learner. *)

val to_vector : t -> Linalg.Vec.t option
(** Flat parameters of a linear policy; [None] for hand-written
    policies. *)

val num_params : int
(** Dimension of the learnable parameter space
    [(Select.domain_dim + Select.partition_dim) * Features.dim]. *)

val default : t
(** A reasonable hand-crafted policy: zonotopes with a disjunct budget
    that grows as the PGD solution gets closer to violating the
    property, splitting the longest dimension toward [x*]. *)

val fixed_domain : Domains.Domain.spec -> t
(** Ablation policy: always the given domain, bisecting the longest
    dimension (a ReluVal-style static refinement strategy). *)

val bisection : t
(** Ablation policy: default domain choice but always bisect the longest
    dimension (ignores [x*] when splitting). *)

val choose_domain : t -> Features.input -> Domains.Domain.spec

val choose_split : t -> Features.input -> int * float
(** [(dim, at)] for the splitting hyperplane. *)

val save : string -> t -> unit
(** Persist a linear policy's parameters to a text file.
    @raise Invalid_argument for hand-written policies. *)

val load : string -> t
(** @raise Failure on parse errors. *)
