open Domains

let log_src = Logs.Src.create "charon.verify" ~doc:"Charon's decision procedure"

module Log = (val Logs.src_log log_src)

type strategy = Depth_first | Best_first

type config = {
  delta : float;
  max_depth : int;
  pgd : Optim.Pgd.config;
  use_cex_search : bool;
  strategy : strategy;
}

let default_config =
  {
    delta = 1e-4;
    max_depth = 60;
    pgd = { Optim.Pgd.default_config with early_stop = Some 1e-4 };
    use_cex_search = true;
    strategy = Depth_first;
  }

type report = {
  outcome : Common.Outcome.t;
  elapsed : float;
  nodes : int;
  analyze_calls : int;
  pgd_calls : int;
  transformer_calls : int;
  peak_depth : int;
  domains_used : (Domain.spec * int) list;
}

type counters = {
  mutable nodes : int;
  mutable analyze_calls : int;
  mutable pgd_calls : int;
  mutable transformer_calls : int;
  mutable peak_depth : int;
  domains : (Domain.spec, int) Hashtbl.t;
}

let run ?(config = default_config) ?(budget = Common.Budget.unlimited ()) ~rng
    ~policy net (prop : Common.Property.t) =
  if config.delta <= 0.0 then invalid_arg "Verify.run: delta must be positive";
  let started = Unix.gettimeofday () in
  let counters =
    {
      nodes = 0;
      analyze_calls = 0;
      pgd_calls = 0;
      transformer_calls = 0;
      peak_depth = 0;
      domains = Hashtbl.create 8;
    }
  in
  let objective = Optim.Objective.create net ~k:prop.Common.Property.target in
  let pgd_config =
    { config.pgd with Optim.Pgd.early_stop = Some config.delta }
  in
  let search_candidate region =
    if config.use_cex_search then begin
      counters.pgd_calls <- counters.pgd_calls + 1;
      Optim.Pgd.minimize ~config:pgd_config ~rng objective region
    end
    else begin
      let c = Box.center region in
      (c, Optim.Objective.value objective c)
    end
  in
  (* Process one region of the worklist: PGD counterexample search
     (lines 2-4), a proof attempt with the policy's domain (lines 5-7),
     and on failure a policy-guided split (lines 8-12).  Returns the
     sub-regions still to be proven. *)
  let process region depth : (Common.Outcome.t, (Box.t * int * float) list) Either.t =
    counters.nodes <- counters.nodes + 1;
    counters.peak_depth <- Stdlib.max counters.peak_depth depth;
    if Common.Budget.exhausted budget then Either.Left Common.Outcome.Timeout
    else if depth > config.max_depth then Either.Left Common.Outcome.Timeout
    else begin
      let xstar, fstar = search_candidate region in
      Log.debug (fun m ->
          m "node %d depth %d region %a: F(x*) = %g" counters.nodes depth
            Box.pp region fstar);
      if fstar <= config.delta then begin
        Log.info (fun m ->
            m "refuted at depth %d with F = %g <= delta = %g" depth fstar
              config.delta);
        Either.Left (Common.Outcome.Refuted xstar)
      end
      else begin
        let input =
          {
            Features.net;
            region;
            target = prop.Common.Property.target;
            xstar;
            fstar;
          }
        in
        let spec = Policy.choose_domain policy input in
        Hashtbl.replace counters.domains spec
          (1 + Option.value ~default:0 (Hashtbl.find_opt counters.domains spec));
        let stats = Absint.Analyzer.fresh_stats () in
        counters.analyze_calls <- counters.analyze_calls + 1;
        let verdict =
          Absint.Analyzer.analyze ~stats ~budget net region
            ~k:prop.Common.Property.target spec
        in
        counters.transformer_calls <-
          counters.transformer_calls + stats.Absint.Analyzer.transformer_calls;
        Common.Budget.spend budget stats.Absint.Analyzer.transformer_calls;
        Log.debug (fun m ->
            m "domain %a -> %s" Domain.pp spec
              (match verdict with
              | Absint.Analyzer.Verified -> "verified"
              | Absint.Analyzer.Unknown -> "unknown"));
        match verdict with
        | Absint.Analyzer.Verified -> Either.Right []
        | Absint.Analyzer.Unknown ->
            let dim, at = Policy.choose_split policy input in
            if Box.width region dim <= 0.0 then
              Either.Left Common.Outcome.Timeout
            else begin
              let left, right = Box.split region ~dim ~at in
              Either.Right
                [ (left, depth + 1, fstar); (right, depth + 1, fstar) ]
            end
      end
    end
  in
  (* The worklist realises the strategy: LIFO for the paper's recursion
     (Algorithm 1, left branch first), a min-priority queue on the
     parent's PGD value for best-first (regions closest to a violation
     are refined first). *)
  let outcome =
    match config.strategy with
    | Depth_first ->
        let rec drain = function
          | [] -> Common.Outcome.Verified
          | (region, depth) :: rest -> begin
              match process region depth with
              | Either.Left outcome -> outcome
              | Either.Right children ->
                  drain
                    (List.map (fun (r, d, _) -> (r, d)) children @ rest)
            end
        in
        drain [ (prop.Common.Property.region, 0) ]
    | Best_first ->
        let heap = Common.Pqueue.create () in
        Common.Pqueue.push heap ~priority:0.0
          (prop.Common.Property.region, 0);
        let rec drain () =
          match Common.Pqueue.pop heap with
          | None -> Common.Outcome.Verified
          | Some (_, (region, depth)) -> begin
              match process region depth with
              | Either.Left outcome -> outcome
              | Either.Right children ->
                  List.iter
                    (fun (r, d, fstar) ->
                      Common.Pqueue.push heap ~priority:fstar (r, d))
                    children;
                  drain ()
            end
        in
        drain ()
  in
  {
    outcome;
    elapsed = Unix.gettimeofday () -. started;
    nodes = counters.nodes;
    analyze_calls = counters.analyze_calls;
    pgd_calls = counters.pgd_calls;
    transformer_calls = counters.transformer_calls;
    peak_depth = counters.peak_depth;
    domains_used =
      Hashtbl.fold (fun spec n acc -> (spec, n) :: acc) counters.domains [];
  }
