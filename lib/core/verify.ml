open Domains

let log_src = Logs.Src.create "charon.verify" ~doc:"Charon's decision procedure"

module Log = (val Logs.src_log log_src)

type strategy = Depth_first | Best_first

type config = {
  delta : float;
  max_depth : int;
  pgd : Optim.Pgd.config;
  use_cex_search : bool;
  strategy : strategy;
}

let default_config =
  {
    delta = 1e-4;
    max_depth = 60;
    pgd = { Optim.Pgd.default_config with early_stop = Some 1e-4 };
    use_cex_search = true;
    strategy = Depth_first;
  }

type report = {
  outcome : Common.Outcome.t;
  elapsed : float;
  nodes : int;
  analyze_calls : int;
  pgd_calls : int;
  transformer_calls : int;
  peak_depth : int;
  workers : int;
  domains_used : (Domain.spec * int) list;
  cache_lookups : int;
  cache_hits : int;
  kernel_fanouts : int;
  kernel_peak_domains : int;
}

(* Counters are shared by every worker domain, so the integer ones are
   atomics and the per-domain-spec histogram hides behind a mutex.  In
   the sequential (workers = 1) case the atomics are uncontended and the
   numbers are bit-for-bit what the old mutable-record code produced.
   The atomics are updated with fetch_and_add / [atomic_max] only. *)
type counters = {
  nodes : int Atomic.t;
  analyze_calls : int Atomic.t;
  pgd_calls : int Atomic.t;
  transformer_calls : int Atomic.t;
  peak_depth : int Atomic.t;
  cache_lookups : int Atomic.t;
  cache_hits : int Atomic.t;
  kernel_fanouts : int Atomic.t;
  domains_mutex : Mutex.t;
  domains : (Domain.spec, int) Hashtbl.t;
}
[@@race.guarded_by "domains_mutex"]

let fresh_counters () =
  {
    nodes = Atomic.make 0;
    analyze_calls = Atomic.make 0;
    pgd_calls = Atomic.make 0;
    transformer_calls = Atomic.make 0;
    peak_depth = Atomic.make 0;
    cache_lookups = Atomic.make 0;
    cache_hits = Atomic.make 0;
    kernel_fanouts = Atomic.make 0;
    domains_mutex = Mutex.create ();
    domains = Hashtbl.create 8;
  }

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

(* Telemetry instruments (no-ops unless the CLI/bench enabled them). *)
let c_regions = Telemetry.Metrics.counter "verify.regions"

let c_splits = Telemetry.Metrics.counter "verify.splits"

let c_refuted = Telemetry.Metrics.counter "verify.refuted_regions"

let c_proved = Telemetry.Metrics.counter "verify.proved_regions"

let c_unsplittable = Telemetry.Metrics.counter "verify.unsplittable_regions"

let c_pgd = Telemetry.Metrics.counter "verify.pgd_calls"

let c_analyze = Telemetry.Metrics.counter "verify.analyze_calls"

let h_region_depth = Telemetry.Metrics.histogram "verify.region_depth"

(* Parent-completion links for the proof cache.  Every split region
   gets a node holding its own cache key and a countdown of unproved
   children; when a child is proved (directly, or by a cache hit that
   covers its whole subtree) it decrements the parent, and the worker
   that brings a node to zero records the parent's region as Verified
   and continues upward.  This is what lets a warm re-run of the same
   query hit at (or near) the root instead of re-walking the frontier:
   internal regions become cached facts, not just leaves.

   Each node is decremented exactly once per child (a region is popped
   and processed by exactly one worker), so [pending] reaching zero is
   a sound "both halves proved" signal even under parallel drains.
   Abandoned subtrees (budget, cancel, refutation) simply leave the
   countdown above zero and nothing is recorded. *)
type pnode = {
  pkey : string;
  pending : int Atomic.t;
  parent : pnode option;
}
[@@race.atomic]

let rec subtree_proved cache = function
  | None -> ()
  | Some n ->
      if Atomic.fetch_and_add n.pending (-1) = 1 then begin
        Proofcache.record cache n.pkey;
        subtree_proved cache n.parent
      end

(* A unit of work: one sub-region of the input, the split depth that
   produced it, its own RNG stream, and its proof-cache parent link.
   Carrying the RNG in the item (split off the parent's at push time)
   makes the search tree a pure function of the root seed — independent
   of which worker processes which region, so a fixed (seed, workers)
   pair is reproducible. *)
type item = {
  region : Box.t;
  depth : int;
  rng : Linalg.Rng.t;
  pnode : pnode option;
}

(* Everything one region step needs, bundled so the in-process drains
   ([run]'s sequential and parallel paths) and the distributed subtree
   entry point ([run_subtree], charon-dverify's worker loop) share a
   single implementation of the PGD / analyze / split pipeline. *)
type ctx = {
  cfg : config;
  budget : Common.Budget.t;
  ctrs : counters;
  ext_cancelled : unit -> bool;
  progress : (nodes:int -> depth:int -> unit) option;
  cpc : (Proofcache.t * string) option;  (* cache, network digest *)
  policy : Policy.t;
  net : Nn.Network.t;
  prop : Common.Property.t;
  objective : Optim.Objective.t;
  pgd_config : Optim.Pgd.config;
}

let make_ctx ~config ~budget ~cancel ~on_progress ~proofcache ~policy net
    (prop : Common.Property.t) =
  if config.delta <= 0.0 then
    invalid_arg "Verify.run: delta must be positive";
  let ext_cancelled () =
    match cancel with
    | Some c -> Parallel.Cancel.cancelled c
    | None -> false
  in
  (* The network digest is the expensive part of a cache key; compute
     it once per run.  [cpc = None] keeps every cache branch below dead
     and the search bit-identical to an uncached run (including the
     PGD-guided, un-snapped split cuts). *)
  let cpc =
    Option.map (fun cache -> (cache, Proofcache.net_digest net)) proofcache
  in
  let objective = Optim.Objective.create net ~k:prop.Common.Property.target in
  let pgd_config =
    { config.pgd with Optim.Pgd.early_stop = Some config.delta }
  in
  {
    cfg = config;
    budget;
    ctrs = fresh_counters ();
    ext_cancelled;
    progress = on_progress;
    cpc;
    policy;
    net;
    prop;
    objective;
    pgd_config;
  }

let region_key ctx region =
  Option.map
    (fun (cache, dg) ->
      ( cache,
        Proofcache.key ~net_digest:dg ~target:ctx.prop.Common.Property.target
          ~delta:ctx.cfg.delta ~region ))
    ctx.cpc

let search_candidate ctx ~rng region =
  if ctx.cfg.use_cex_search then begin
    Atomic.incr ctx.ctrs.pgd_calls;
    Telemetry.Metrics.incr c_pgd;
    Optim.Pgd.minimize ~config:ctx.pgd_config ~rng ctx.objective region
  end
  else begin
    let c = Box.center region in
    (c, Optim.Objective.value ctx.objective c)
  end

(* Process one region of the worklist: PGD counterexample search
   (lines 2-4), a proof attempt with the policy's domain (lines 5-7),
   and on failure a policy-guided split (lines 8-12).  Returns the
   sub-regions still to be proven. *)
let process ctx ~kjobs ~rng ~pnode region depth :
    (Common.Outcome.t, (Box.t * int * float) list * pnode option) Either.t =
  let counters = ctx.ctrs in
  Atomic.incr counters.nodes;
  atomic_max counters.peak_depth depth;
  Telemetry.Metrics.incr c_regions;
  Telemetry.Metrics.observe h_region_depth depth;
  (match ctx.progress with
  | Some f -> f ~nodes:(Atomic.get counters.nodes) ~depth
  | None -> ());
  let sp = Telemetry.Span.enter "verify.region" in
  (* Attributes for the region span, filled in as the region is
     processed.  The thunks passed to [Span.exit] run only when a
     trace file is attached, so the refs cost two words per region
     and zero formatting work otherwise. *)
  let sp_fstar = ref nan in
  let sp_domain = ref "" in
  let sp_split = ref None in
  let sp_outcome = ref "unknown" in
  let finish_span result =
    Telemetry.Span.exit sp
      ~attrs:(fun () ->
        let base =
          [
            ("depth", Telemetry.Jsonw.Int depth);
            ("outcome", Telemetry.Jsonw.Str !sp_outcome);
          ]
        in
        let base =
          if Float.is_nan !sp_fstar then base
          else ("fstar", Telemetry.Jsonw.Float !sp_fstar) :: base
        in
        let base =
          if String.equal !sp_domain "" then base
          else ("domain", Telemetry.Jsonw.Str !sp_domain) :: base
        in
        match !sp_split with
        | None -> base
        | Some (dim, at) ->
            ("split_dim", Telemetry.Jsonw.Int dim)
            :: ("split_at", Telemetry.Jsonw.Float at)
            :: base);
    result
  in
  if Common.Budget.exhausted ctx.budget || ctx.ext_cancelled () then begin
    sp_outcome := "timeout";
    finish_span (Either.Left Common.Outcome.Timeout)
  end
  else if depth > ctx.cfg.max_depth then begin
    (* The depth cap is a precision limit, not resource exhaustion:
       there may be plenty of budget left, we are just refusing to
       refine further — the same contract as the unsplittable branch
       below, so the answer is Unknown, not Timeout. *)
    sp_outcome := "depth_limit";
    finish_span (Either.Left Common.Outcome.Unknown)
  end
  else begin
    let pkey = region_key ctx region in
    let cached =
      match pkey with
      | None -> false
      | Some (cache, k) ->
          Atomic.incr counters.cache_lookups;
          let hit = Proofcache.lookup cache k in
          if hit then Atomic.incr counters.cache_hits;
          hit
    in
    if cached then begin
      (* A prior run proved this exact (network, target, delta,
         region) fact; the whole subtree is discharged without PGD or
         an analyze call. *)
      (match pkey with
      | Some (cache, _) -> subtree_proved cache pnode
      | None -> ());
      sp_outcome := "cached";
      finish_span (Either.Right ([], None))
    end
    else begin
      let xstar, fstar = search_candidate ctx ~rng region in
      sp_fstar := fstar;
      Log.debug (fun m ->
          m "node %d depth %d region %a: F(x*) = %g"
            (Atomic.get counters.nodes)
            depth Box.pp region fstar);
      if fstar <= ctx.cfg.delta then begin
        Log.info (fun m ->
            m "refuted at depth %d with F = %g <= delta = %g" depth fstar
              ctx.cfg.delta);
        Telemetry.Metrics.incr c_refuted;
        sp_outcome := "refuted";
        finish_span (Either.Left (Common.Outcome.Refuted xstar))
      end
      else begin
        let input =
          {
            Features.net = ctx.net;
            region;
            target = ctx.prop.Common.Property.target;
            xstar;
            fstar;
          }
        in
        let spec = Policy.choose_domain ctx.policy input in
        if Telemetry.tracing () then
          sp_domain := Format.asprintf "%a" Domain.pp spec;
        Mutex.lock counters.domains_mutex;
        Hashtbl.replace counters.domains spec
          (1 + Option.value ~default:0 (Hashtbl.find_opt counters.domains spec));
        Mutex.unlock counters.domains_mutex;
        let stats = Absint.Analyzer.fresh_stats () in
        Atomic.incr counters.analyze_calls;
        Telemetry.Metrics.incr c_analyze;
        if kjobs > 1 then Atomic.incr counters.kernel_fanouts;
        let verdict =
          Absint.Analyzer.analyze ~jobs:kjobs ~stats ~budget:ctx.budget ctx.net
            region ~k:ctx.prop.Common.Property.target spec
        in
        ignore
          (Atomic.fetch_and_add counters.transformer_calls
             stats.Absint.Analyzer.transformer_calls);
        Common.Budget.spend ctx.budget stats.Absint.Analyzer.transformer_calls;
        Log.debug (fun m ->
            m "domain %a -> %s" Domain.pp spec
              (match verdict with
              | Absint.Analyzer.Verified -> "verified"
              | Absint.Analyzer.Unknown -> "unknown"));
        match verdict with
        | Absint.Analyzer.Verified ->
            Telemetry.Metrics.incr c_proved;
            (match pkey with
            | Some (cache, k) ->
                Proofcache.record cache k;
                subtree_proved cache pnode
            | None -> ());
            sp_outcome := "proved";
            finish_span (Either.Right ([], None))
        | Absint.Analyzer.Unknown ->
            let dim, at = Policy.choose_split ctx.policy input in
            if Box.width region dim <= 0.0 then begin
              (* An unsplittable (zero-width) dimension is a precision
                 failure, not resource exhaustion: budget and depth may
                 both have headroom, we just cannot refine further. *)
              Telemetry.Metrics.incr c_unsplittable;
              sp_outcome := "unsplittable";
              finish_span (Either.Left Common.Outcome.Unknown)
            end
            else begin
              (* With a proof cache attached the cut snaps onto the
                 canonical partition, so the same subregions reappear
                 across overlapping queries; without one, the policy's
                 PGD-guided cut is used untouched. *)
              let at =
                match ctx.cpc with
                | Some _ -> Partition.snap_split region ~dim
                | None -> at
              in
              let left, right = Box.split region ~dim ~at in
              Telemetry.Metrics.incr c_splits;
              sp_outcome := "split";
              sp_split := Some (dim, at);
              let child_pnode =
                match pkey with
                | Some (_, k) ->
                    Some { pkey = k; pending = Atomic.make 2; parent = pnode }
                | None -> None
              in
              finish_span
                (Either.Right
                   ( [ (left, depth + 1, fstar); (right, depth + 1, fstar) ],
                     child_pnode ))
            end
      end
    end
  end

let run ?(config = default_config) ?(budget = Common.Budget.unlimited ())
    ?(workers = 1) ?cancel ?on_progress ?proofcache ~rng ~policy net
    (prop : Common.Property.t) =
  if workers < 1 then invalid_arg "Verify.run: workers must be at least 1";
  let started = Unix.gettimeofday () in
  let ctx =
    make_ctx ~config ~budget ~cancel ~on_progress ~proofcache ~policy net prop
  in
  let counters = ctx.ctrs in
  let process ~kjobs ~rng ~pnode region depth =
    process ctx ~kjobs ~rng ~pnode region depth
  in
  (* The worklist realises the strategy: LIFO for the paper's recursion
     (Algorithm 1, left branch first), a min-priority queue on the
     parent's PGD value for best-first (regions closest to a violation
     are refined first). *)
  let sequential () =
    match config.strategy with
    | Depth_first ->
        let rec drain = function
          | [] -> Common.Outcome.Verified
          | (region, depth, pnode) :: rest -> begin
              match process ~kjobs:1 ~rng ~pnode region depth with
              | Either.Left outcome -> outcome
              | Either.Right (children, child_pnode) ->
                  drain
                    (List.map (fun (r, d, _) -> (r, d, child_pnode)) children
                    @ rest)
            end
        in
        drain [ (prop.Common.Property.region, 0, None) ]
    | Best_first ->
        let heap = Common.Pqueue.create () in
        Common.Pqueue.push heap ~priority:0.0
          (prop.Common.Property.region, 0, None);
        let rec drain () =
          match Common.Pqueue.pop heap with
          | None -> Common.Outcome.Verified
          | Some (_, (region, depth, pnode)) -> begin
              match process ~kjobs:1 ~rng ~pnode region depth with
              | Either.Left outcome -> outcome
              | Either.Right (children, child_pnode) ->
                  List.iter
                    (fun (r, d, fstar) ->
                      Common.Pqueue.push heap ~priority:fstar
                        (r, d, child_pnode))
                    children;
                  drain ()
            end
        in
        drain ()
  in
  (* Parallel drain: the worklist becomes a shared work-sharing queue
     and [workers] domains race on it.  A [Refuted]/[Timeout]/[Unknown]
     answer from any worker settles the result and cancels outstanding
     work (with Refuted allowed to upgrade a raced Timeout/Unknown, see
     [settle]); [Verified] requires the queue to drain empty, because
     every sub-region carries part of the proof obligation. *)
  let parallel () =
    let queue = Parallel.Wqueue.create () in
    let cancel = Parallel.Cancel.create () in
    let result = Atomic.make None in
    (* First settle wins the cancellation, but not unconditionally the
       answer: a worker that exhausts its budget races workers still
       probing their regions, and first-settle-wins would let its
       Timeout/Unknown beat a concurrently found counterexample —
       silently dropping a real refutation.  So Refuted may upgrade an
       already-settled Timeout/Unknown (never the reverse: once a
       counterexample is in, it stays).  The CAS loop re-reads the
       stored value so the swap only replaces the exact outcome it
       inspected. *)
    let rec settle outcome =
      match Atomic.get result with
      | None ->
          if Atomic.compare_and_set result None (Some outcome) then begin
            Parallel.Cancel.cancel cancel;
            Parallel.Wqueue.close queue
          end
          else settle outcome
      | Some (Common.Outcome.Timeout | Common.Outcome.Unknown) as cur -> (
          match outcome with
          | Common.Outcome.Refuted _ ->
              if not (Atomic.compare_and_set result cur (Some outcome)) then
                settle outcome
          | _ -> ())
      | Some (Common.Outcome.Verified | Common.Outcome.Refuted _) -> ()
    in
    let priority ~depth ~fstar =
      match config.strategy with
      (* Deepest-first approximates the sequential LIFO order and keeps
         the frontier small. *)
      | Depth_first -> -.float_of_int depth
      | Best_first -> fstar
    in
    Parallel.Wqueue.push queue ~priority:0.0
      {
        region = prop.Common.Property.region;
        depth = 0;
        rng = Linalg.Rng.split rng;
        pnode = None;
      };
    let worker id =
      let my_tasks = ref 0 in
      let rec loop () =
        match Parallel.Wqueue.pop queue with
        | None -> ()
        | Some it ->
            incr my_tasks;
            if not (Parallel.Cancel.cancelled cancel) then begin
              (* Solo-in-flight nesting policy: grant this region the
                 full [-j] budget for its GEMM kernels only when it is
                 the single outstanding work item — no queued regions,
                 no other worker mid-region.  The check is race-free:
                 only in-flight workers push, so with outstanding = 1
                 (us) nobody can concurrently add work or start a
                 region.  Any other time the budget is spent on region
                 parallelism and kernels stay sequential, so computing
                 domains never exceed [workers]. *)
              let kjobs =
                if Parallel.Wqueue.outstanding queue = 1 then workers else 1
              in
              match
                process ~kjobs ~rng:it.rng ~pnode:it.pnode it.region it.depth
              with
              | Either.Left outcome -> settle outcome
              | Either.Right (children, child_pnode) ->
                  List.iter
                    (fun (r, d, fstar) ->
                      Parallel.Wqueue.push queue
                        ~priority:(priority ~depth:d ~fstar)
                        {
                          region = r;
                          depth = d;
                          rng = Linalg.Rng.split it.rng;
                          pnode = child_pnode;
                        })
                    children
            end;
            Parallel.Wqueue.finish queue;
            loop ()
      in
      loop ();
      if Telemetry.tracing () then
        Telemetry.Trace.instant "verify.worker"
          ~attrs:
            [
              ("worker", Telemetry.Jsonw.Int id);
              ("tasks", Telemetry.Jsonw.Int !my_tasks);
            ]
    in
    Parallel.Pool.run ~workers worker;
    match Atomic.get result with
    | Some outcome -> outcome
    | None -> Common.Outcome.Verified
  in
  let outcome =
    Telemetry.Span.wrap "verify.run"
      ~attrs:(fun () ->
        [
          ("workers", Telemetry.Jsonw.Int workers);
          ("nodes", Telemetry.Jsonw.Int (Atomic.get counters.nodes));
          ("strategy",
           Telemetry.Jsonw.Str
             (match config.strategy with
             | Depth_first -> "depth_first"
             | Best_first -> "best_first"));
        ])
      (fun () -> if workers = 1 then sequential () else parallel ())
  in
  {
    outcome;
    elapsed = Unix.gettimeofday () -. started;
    nodes = Atomic.get counters.nodes;
    analyze_calls = Atomic.get counters.analyze_calls;
    pgd_calls = Atomic.get counters.pgd_calls;
    transformer_calls = Atomic.get counters.transformer_calls;
    peak_depth = Atomic.get counters.peak_depth;
    workers;
    domains_used =
      (* Workers have all joined, so the lock is uncontended — it is
         taken anyway to keep the guard discipline machine-checkable. *)
      (Mutex.lock counters.domains_mutex;
       let used =
         Hashtbl.fold (fun spec n acc -> (spec, n) :: acc) counters.domains []
       in
       Mutex.unlock counters.domains_mutex;
       used);
    cache_lookups = Atomic.get counters.cache_lookups;
    cache_hits = Atomic.get counters.cache_hits;
    kernel_fanouts = Atomic.get counters.kernel_fanouts;
    kernel_peak_domains = Parallel.Kpool.peak_participants ();
  }

(* ------------------------------------------------------------------ *)
(* Resumable subtree verification (charon-dverify's worker unit).

   One shard of a distributed split-and-conquer run verifies a subtree
   rooted at some sub-box of the original property, entering the
   recursion at the depth that produced the sub-box so depth caps and
   canonical-partition keys line up with a single-process run.  The
   drain is the sequential depth-first one, with two extra stop
   conditions checked between regions: the budget (per-shard, escalated
   by the coordinator across re-deals) and a cooperative [yield] hook
   (the coordinator's work-stealing request).  Stopping early is not an
   answer — the unexplored frontier travels back to the caller so no
   region's proof obligation is ever dropped. *)

type subtree_outcome =
  | Subtree_proved
  | Subtree_refuted of Linalg.Vec.t
  | Subtree_unknown
  | Subtree_yielded

type subtree_report = {
  subtree_outcome : subtree_outcome;
  frontier : (Box.t * int) list;
  subtree_nodes : int;
  subtree_analyze_calls : int;
  subtree_pgd_calls : int;
  subtree_transformer_calls : int;
  subtree_cache_lookups : int;
  subtree_cache_hits : int;
  subtree_elapsed : float;
}

let run_subtree ?(config = default_config)
    ?(budget = Common.Budget.unlimited ()) ?cancel ?(yield = fun () -> false)
    ?proofcache ?(root_depth = 0) ~rng ~policy net
    (prop : Common.Property.t) =
  if root_depth < 0 then
    invalid_arg "Verify.run_subtree: root_depth must be non-negative";
  let started = Unix.gettimeofday () in
  let ctx =
    make_ctx ~config ~budget ~cancel ~on_progress:None ~proofcache ~policy net
      prop
  in
  let finish subtree_outcome frontier =
    let c = ctx.ctrs in
    {
      subtree_outcome;
      frontier;
      subtree_nodes = Atomic.get c.nodes;
      subtree_analyze_calls = Atomic.get c.analyze_calls;
      subtree_pgd_calls = Atomic.get c.pgd_calls;
      subtree_transformer_calls = Atomic.get c.transformer_calls;
      subtree_cache_lookups = Atomic.get c.cache_lookups;
      subtree_cache_hits = Atomic.get c.cache_hits;
      subtree_elapsed = Unix.gettimeofday () -. started;
    }
  in
  let frontier_of worklist =
    List.map (fun (region, depth, _) -> (region, depth)) worklist
  in
  let rec drain = function
    | [] -> finish Subtree_proved []
    | ((region, depth, pnode) :: rest) as worklist ->
        (* Stop *between* regions, never mid-region: the current item
           has not been processed yet, so it belongs to the frontier. *)
        if
          yield ()
          || Common.Budget.exhausted ctx.budget
          || ctx.ext_cancelled ()
        then finish Subtree_yielded (frontier_of worklist)
        else begin
          match process ctx ~kjobs:1 ~rng ~pnode region depth with
          | Either.Left Common.Outcome.Timeout ->
              (* The budget ran out (or cancellation landed) in the
                 window between our check and the region's own: the
                 region was counted but not decided, so it stays on the
                 frontier. *)
              finish Subtree_yielded (frontier_of worklist)
          | Either.Left Common.Outcome.Unknown ->
              finish Subtree_unknown (frontier_of rest)
          | Either.Left (Common.Outcome.Refuted x) ->
              finish (Subtree_refuted x) []
          | Either.Left Common.Outcome.Verified ->
              (* [process] never returns Verified directly (a proved
                 region comes back as Right ([], _)); drain the rest. *)
              drain rest
          | Either.Right (children, child_pnode) ->
              drain
                (List.map (fun (r, d, _) -> (r, d, child_pnode)) children
                @ rest)
        end
  in
  drain [ (prop.Common.Property.region, root_depth, None) ]
