(** The featurization function ρ of §4.1/§6.

    Converts a verification sub-problem — network, region, target class
    and the PGD solution [x*] — into a small feature vector.  We use the
    four features named in §6, each squashed into [\[0, 1\]] (or
    [\[-1, 1\]] for the objective value) so that a policy matrix with
    entries in [\[-1, 1\]] spans a meaningful range of behaviours, plus a
    constant bias feature. *)

type input = {
  net : Nn.Network.t;
  region : Domains.Box.t;
  target : int;
  xstar : Linalg.Vec.t;  (** PGD solution *)
  fstar : float;  (** objective value at [xstar] *)
}

val dim : int
(** Length of the feature vector (5: four features plus bias). *)

val compute : input -> Linalg.Vec.t
(** The feature vector:
    - relative distance from the region center to [xstar];
    - squashed objective value [fstar];
    - squashed gradient magnitude of the network at [xstar];
    - squashed mean side length of the region;
    - constant 1 (bias). *)
