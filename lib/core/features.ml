open Linalg
open Domains

type input = {
  net : Nn.Network.t;
  region : Box.t;
  target : int;
  xstar : Vec.t;
  fstar : float;
}

let dim = 5

(* Squash an unbounded non-negative quantity into [0, 1). *)
let squash x = x /. (1.0 +. x)

(* Squash a signed quantity into (-1, 1). *)
let squash_signed x = x /. (1.0 +. abs_float x)

let compute t =
  let diameter = Box.diameter t.region in
  let center_dist =
    if diameter > 0.0 then Vec.dist2 (Box.center t.region) t.xstar /. diameter
    else 0.0
  in
  let gmag = Nn.Grad.grad_norm t.net t.xstar in
  [|
    center_dist;
    squash_signed t.fstar;
    squash gmag;
    squash (Box.mean_width t.region);
    1.0;
  |]
