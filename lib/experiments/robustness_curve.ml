(* Report generator: the paper tables/figures it produces ARE stdout,
   so printing here is the module's contract, not stray debug output. *)
[@@@lint.allow "printf-in-lib"]

open Linalg
open Domains

type point = {
  epsilon : float;
  certified : int;
  falsified : int;
  undecided : int;
}

let compute ?(timeout = 1.0) ?(policy = Charon.Policy.default) ~seed net
    ~images ~epsilons =
  List.map
    (fun epsilon ->
      let certified = ref 0 and falsified = ref 0 and undecided = ref 0 in
      Array.iter
        (fun image ->
          let target = Nn.Network.classify net image in
          let prop =
            Common.Property.create
              ~region:(Box.of_center_radius image epsilon)
              ~target ()
          in
          let rng = Rng.create seed in
          let report =
            Charon.Verify.run
              ~budget:(Common.Budget.of_seconds timeout)
              ~rng ~policy net prop
          in
          match report.Charon.Verify.outcome with
          | Common.Outcome.Verified -> incr certified
          | Common.Outcome.Refuted _ -> incr falsified
          | Common.Outcome.Timeout | Common.Outcome.Unknown -> incr undecided)
        images;
      { epsilon; certified = !certified; falsified = !falsified;
        undecided = !undecided })
    epsilons

let print ~total points =
  Printf.printf "\n== Certified accuracy curve ==\n";
  Printf.printf "%-10s %11s %11s %11s\n" "epsilon" "certified" "falsified"
    "undecided";
  let pct n = 100.0 *. float_of_int n /. float_of_int (Stdlib.max 1 total) in
  List.iter
    (fun p ->
      Printf.printf "%-10g %10.1f%% %10.1f%% %10.1f%%\n" p.epsilon
        (pct p.certified) (pct p.falsified) (pct p.undecided))
    points;
  print_string
    (Ascii_plot.render ~x_label:"epsilon" ~y_label:"% of images"
       [
         ("certified", List.map (fun p -> (p.epsilon, pct p.certified)) points);
         ("falsified", List.map (fun p -> (p.epsilon, pct p.falsified)) points);
       ])
