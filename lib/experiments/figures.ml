(* Report generator: the paper tables/figures it produces ARE stdout,
   so printing here is the module's contract, not stray debug output. *)
[@@@lint.allow "printf-in-lib"]

let tools_of results =
  List.fold_left
    (fun acc (r : Runner.result) ->
      if List.mem r.Runner.tool acc then acc else acc @ [ r.Runner.tool ])
    [] results

let count p l = List.length (List.filter p l)

let pct n total = if total = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int total

let fig6 results =
  let tools = tools_of results in
  Printf.printf "\n== Figure 6: summary of results ==\n";
  Printf.printf "%-16s %9s %9s %9s %9s %9s\n" "tool" "verified" "falsified"
    "timeout" "unknown" "total";
  let classify (r : Runner.result) = Common.Outcome.label r.Runner.outcome in
  List.iter
    (fun tool ->
      let rs = Runner.by_tool results tool in
      let total = List.length rs in
      let c label = count (fun r -> classify r = label) rs in
      Printf.printf "%-16s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %9d\n" tool
        (pct (c "verified") total)
        (pct (c "falsified") total)
        (pct (c "timeout") total)
        (pct (c "unknown") total)
        total)
    tools;
  (* §7.1's derived statistics, relative to the first tool (Charon). *)
  match tools with
  | [] | [ _ ] -> ()
  | charon :: others ->
      let charon_rs = Runner.by_tool results charon in
      let solved_set rs =
        Runner.solved rs
        |> List.map (fun (r : Runner.result) -> (r.Runner.network, r.Runner.property))
      in
      let charon_solved = solved_set charon_rs in
      List.iter
        (fun other ->
          let other_rs = Runner.by_tool results other in
          let other_solved = solved_set other_rs in
          let more =
            if other_solved = [] then infinity
            else
              100.0
              *. (float_of_int (List.length charon_solved)
                  /. float_of_int (List.length other_solved)
                 -. 1.0)
          in
          (* Speedup on commonly solved benchmarks. *)
          let common =
            List.filter (fun k -> List.mem k other_solved) charon_solved
          in
          let time_of rs k =
            List.fold_left
              (fun acc (r : Runner.result) ->
                if (r.Runner.network, r.Runner.property) = k then
                  acc +. r.Runner.time
                else acc)
              0.0 rs
          in
          let t_charon =
            List.fold_left (fun acc k -> acc +. time_of charon_rs k) 0.0 common
          in
          let t_other =
            List.fold_left (fun acc k -> acc +. time_of other_rs k) 0.0 common
          in
          Printf.printf
            "%s solves %.1f%% more benchmarks than %s; on the %d commonly \
             solved ones it is %.2fx faster\n"
            charon more other (List.length common)
            (if t_charon > 0.0 then t_other /. t_charon else infinity))
        others

let cactus_per_network results =
  List.iter
    (fun network ->
      let rs = Runner.by_network results network in
      let series =
        List.map (fun tool -> Cactus.of_results rs ~tool) (tools_of rs)
      in
      Cactus.print ~title:(Printf.sprintf "Figures 7-13: %s" network) series)
    (Runner.networks results)

let fig14 results =
  let series =
    List.map (fun tool -> Cactus.of_results results ~tool) (tools_of results)
  in
  Cactus.print ~title:"Figure 14: comparison with complete tools" series;
  (match series with
  | charon :: others ->
      List.iter
        (fun s ->
          let n = Cactus.solved_count s in
          Printf.printf "%s solves %.1fx as many benchmarks as %s\n"
            charon.Cactus.tool
            (if n = 0 then infinity
             else float_of_int (Cactus.solved_count charon) /. float_of_int n)
            s.Cactus.tool)
        others
  | [] -> ());
  (* §7.2: the set ReluVal solves should be a subset of Charon's. *)
  let solved_keys tool =
    Runner.solved (Runner.by_tool results tool)
    |> List.map (fun (r : Runner.result) -> (r.Runner.network, r.Runner.property))
  in
  match tools_of results with
  | charon :: rest when List.mem "ReluVal" rest ->
      let ck = solved_keys charon and rk = solved_keys "ReluVal" in
      let missing = List.filter (fun k -> not (List.mem k ck)) rk in
      Printf.printf
        "ReluVal-solved benchmarks not solved by %s: %d (paper: 0, strict \
         superset)\n"
        charon (List.length missing)
  | _ -> ()

let fig15 results =
  match tools_of results with
  | [] -> ()
  | charon :: _ ->
      Printf.printf "\n== Figure 15: ReluVal on Charon-verified benchmarks ==\n";
      Printf.printf "%-16s %18s %18s %8s\n" "network" "charon-verified"
        "reluval-solved" "ratio";
      List.iter
        (fun network ->
          let rs = Runner.by_network results network in
          let charon_verified =
            Runner.by_tool rs charon
            |> List.filter (fun (r : Runner.result) ->
                   r.Runner.outcome = Common.Outcome.Verified)
            |> List.map (fun (r : Runner.result) -> r.Runner.property)
          in
          let reluval_solved =
            Runner.solved (Runner.by_tool rs "ReluVal")
            |> List.map (fun (r : Runner.result) -> r.Runner.property)
            |> List.filter (fun p -> List.mem p charon_verified)
          in
          let cv = List.length charon_verified in
          if cv > 0 then
            Printf.printf "%-16s %18d %18d %7.1f%%\n" network cv
              (List.length reluval_solved)
              (pct (List.length reluval_solved) cv))
        (Runner.networks results)

let rq2 results =
  Printf.printf "\n== §7.3: falsified properties per tool ==\n";
  List.iter
    (fun tool ->
      let falsified =
        count
          (fun (r : Runner.result) ->
            match r.Runner.outcome with
            | Common.Outcome.Refuted _ -> true
            | _ -> false)
          (Runner.by_tool results tool)
      in
      Printf.printf "%-16s %d\n" tool falsified)
    (tools_of results)

let consistency results =
  match Runner.consistency_errors results with
  | [] -> Printf.printf "\nconsistency: all solver verdicts agree\n"
  | errors ->
      Printf.printf "\nconsistency: %d DISAGREEMENTS\n" (List.length errors);
      List.iter
        (fun (prop, a, b) -> Printf.printf "  %s: %s vs %s\n" prop a b)
        errors
