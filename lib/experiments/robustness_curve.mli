(** Certified-accuracy curves: the standard presentation of robustness
    results in this literature, built on Charon as the certifier.

    For a grid of perturbation radii ε, measures on a set of test
    images: the fraction whose L∞ ε-ball Charon *verifies* (certified
    accuracy), the fraction it *falsifies* (an adversarial example
    exists), and the undecided remainder.  Certified accuracy is
    monotonically non-increasing in ε and lower-bounds true robust
    accuracy; the falsified fraction upper-bounds it from the other
    side. *)

type point = {
  epsilon : float;
  certified : int;  (** verified robust at this radius *)
  falsified : int;
  undecided : int;  (** timeout at this radius *)
}

val compute :
  ?timeout:float ->
  ?policy:Charon.Policy.t ->
  seed:int ->
  Nn.Network.t ->
  images:Linalg.Vec.t array ->
  epsilons:float list ->
  point list
(** One Charon run per image per ε, with the network's own
    classification of each image as the target class.  Images whose
    classification is not strict (ties) count as falsified at every ε. *)

val print : total:int -> point list -> unit
(** Render the curve as an aligned table of percentages. *)
