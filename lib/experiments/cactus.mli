(** Cactus ("survival") plot data: cumulative solving time against the
    number of benchmarks solved, the presentation used by Figures 7–14.
    A line extending further right means more benchmarks solved; lower
    means faster. *)

type series = {
  tool : string;
  points : (int * float) list;
      (** [(n, t)]: the [n] fastest solved benchmarks take cumulative
          time [t]; includes the origin (0, 0). *)
}

val of_results : Runner.result list -> tool:string -> series
(** Builds the series from the tool's solved benchmarks, sorted by
    per-benchmark time as in the paper's plots. *)

val solved_count : series -> int

val total_time : series -> float

val print : title:string -> series list -> unit
(** Render the series as aligned text columns (one row per solved-count
    step) followed by a summary line per tool. *)
