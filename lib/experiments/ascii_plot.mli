(** Minimal ASCII line charts, so the harness's cactus plots and
    certified-accuracy curves read as figures directly in the terminal
    (and in the recorded bench output). *)

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  (string * (float * float) list) list ->
  string
(** [render series] plots each named series of (x, y) points on one
    shared character grid (default 64×16).  Each series gets a distinct
    marker, shown in the legend; axes are annotated with the data
    ranges.  Series with fewer than one point are skipped; an empty
    input renders an empty-plot notice. *)
