(* Report generator: the paper tables/figures it produces ARE stdout,
   so printing here is the module's contract, not stray debug output. *)
[@@@lint.allow "printf-in-lib"]

type series = { tool : string; points : (int * float) list }

let of_results results ~tool =
  let times =
    Runner.solved (Runner.by_tool results tool)
    |> List.map (fun r -> r.Runner.time)
    |> List.sort Float.compare
  in
  let _, acc, points =
    List.fold_left
      (fun (n, total, pts) t ->
        let total = total +. t in
        (n + 1, total, (n + 1, total) :: pts))
      (0, 0.0, [ (0, 0.0) ])
      times
  in
  ignore acc;
  { tool; points = List.rev points }

let solved_count s = match s.points with [] -> 0 | _ -> fst (List.hd (List.rev s.points))

let total_time s = match s.points with [] -> 0.0 | _ -> snd (List.hd (List.rev s.points))

let print ~title series =
  Printf.printf "\n== %s ==\n" title;
  let max_n =
    List.fold_left (fun acc s -> Stdlib.max acc (solved_count s)) 0 series
  in
  Printf.printf "%-8s" "solved";
  List.iter (fun s -> Printf.printf " %14s" s.tool) series;
  print_newline ();
  for n = 0 to max_n do
    (* Only print rows where at least one series has a point, thinning
       long tables to at most ~25 rows. *)
    let stride = Stdlib.max 1 (max_n / 25) in
    if n mod stride = 0 || n = max_n then begin
      Printf.printf "%-8d" n;
      List.iter
        (fun s ->
          match List.assoc_opt n s.points with
          | Some t -> Printf.printf " %14.2f" t
          | None -> Printf.printf " %14s" "-")
        series;
      print_newline ()
    end
  done;
  List.iter
    (fun s ->
      Printf.printf "%s: solved %d, cumulative %.2fs\n" s.tool (solved_count s)
        (total_time s))
    series;
  (* The paper's cactus plots put cumulative time on the y-axis and the
     number of solved benchmarks on the x-axis. *)
  print_string
    (Ascii_plot.render ~x_label:"benchmarks solved" ~y_label:"cumulative seconds"
       (List.map
          (fun s ->
            ( s.tool,
              List.map (fun (n, t) -> (float_of_int n, t)) s.points ))
          series))
