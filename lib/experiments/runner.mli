(** Benchmark execution: every tool on every property with a per-
    benchmark budget, producing the flat result records the figure
    generators aggregate. *)

type result = {
  tool : string;
  network : string;
  property : string;
  outcome : Common.Outcome.t;
  time : float;  (** seconds spent on this benchmark *)
}

val run_one :
  seed:int ->
  timeout:float ->
  Tool.t ->
  Datasets.Suite.entry ->
  Common.Property.t ->
  result

val run_suite :
  ?progress:(result -> unit) ->
  ?jobs:int ->
  seed:int ->
  timeout:float ->
  Tool.t list ->
  (Datasets.Suite.entry * Common.Property.t list) list ->
  result list
(** Runs each tool on each benchmark.  Tools that do not support
    convolutional networks are recorded as [Unknown] with zero time on
    those, mirroring §7.2's exclusion.

    [jobs] (default 1) runs the independent (tool, network, property)
    instances on that many worker domains.  Results always come back in
    deterministic input order; [progress] calls are serialized, but fire
    in completion order when [jobs > 1]. *)

val by_tool : result list -> string -> result list

val by_network : result list -> string -> result list

val solved : result list -> result list

val networks : result list -> string list
(** Distinct network names in first-appearance order. *)

val to_csv : result list -> string
(** Flat CSV ([tool,network,property,outcome,time_seconds]) with a
    header row, for plotting with external tools. *)

val save_csv : string -> result list -> unit

val to_json :
  ?workers:int ->
  ?wall_seconds:float ->
  ?counters:(string * int) list ->
  result list ->
  string
(** JSON document with the per-instance rows plus the run configuration
    ([workers], default 1) and optional end-to-end [wall_seconds], so
    benchmark archives can track the parallel speedup trajectory.
    [counters] (typically [Telemetry.Metrics.counters ()]) embeds
    aggregate work-done metrics as a ["counters"] object, which
    [bin/benchdiff.exe] compares alongside the timings. *)

val save_json :
  ?workers:int ->
  ?wall_seconds:float ->
  ?counters:(string * int) list ->
  string ->
  result list ->
  unit

val consistency_errors : result list -> (string * string * string) list
(** Cross-tool disagreements: benchmarks where one tool verified and
    another refuted.  Returns [(property, tool_a, tool_b)] triples; an
    empty list is a global sanity check on all solvers. *)
