(** The training phase of the pipeline (§6 "Training"): learn a
    verification policy on 12 properties of an ACAS-Xu-like network,
    then deploy it on the image benchmarks. *)

val acas_problems : seed:int -> Charon.Learn.problem list
(** An ACAS-like advisory network plus 12 robustness properties centred
    on points the network classifies correctly. *)

val learn :
  ?config:Charon.Learn.config -> seed:int -> unit -> Charon.Learn.result
(** Run Bayesian optimization over the policy parameters on the ACAS
    problems.  The default config uses deterministic step budgets so
    training is reproducible. *)

val learned_policy : ?cache:string -> seed:int -> unit -> Charon.Policy.t
(** The trained policy; with [cache], parameters are persisted to disk
    and reloaded on later runs. *)
