type result = {
  tool : string;
  network : string;
  property : string;
  outcome : Common.Outcome.t;
  time : float;
}

let run_one ~seed ~timeout (tool : Tool.t) (entry : Datasets.Suite.entry) prop =
  let budget = Common.Budget.of_seconds timeout in
  let started = Unix.gettimeofday () in
  let outcome =
    tool.Tool.run ~seed entry.Datasets.Suite.net prop ~budget
  in
  {
    tool = tool.Tool.name;
    network = entry.Datasets.Suite.name;
    property = prop.Common.Property.name;
    outcome;
    time = Unix.gettimeofday () -. started;
  }

let run_suite ?(progress = fun _ -> ()) ~seed ~timeout tools workload =
  List.concat_map
    (fun (entry, props) ->
      List.concat_map
        (fun prop ->
          List.map
            (fun (tool : Tool.t) ->
              let result =
                if entry.Datasets.Suite.convolutional
                   && not tool.Tool.supports_conv
                then
                  {
                    tool = tool.Tool.name;
                    network = entry.Datasets.Suite.name;
                    property = prop.Common.Property.name;
                    outcome = Common.Outcome.Unknown;
                    time = 0.0;
                  }
                else run_one ~seed ~timeout tool entry prop
              in
              progress result;
              result)
            tools)
        props)
    workload

let by_tool results name = List.filter (fun r -> r.tool = name) results

let by_network results name = List.filter (fun r -> r.network = name) results

let solved results =
  List.filter (fun r -> Common.Outcome.is_solved r.outcome) results

let networks results =
  List.fold_left
    (fun acc r -> if List.mem r.network acc then acc else acc @ [ r.network ])
    [] results

let to_csv results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "tool,network,property,outcome,time_seconds\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%s,%.6f\n" r.tool r.network r.property
           (Common.Outcome.label r.outcome)
           r.time))
    results;
  Buffer.contents buf

let save_csv path results =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv results))

let consistency_errors results =
  let errors = ref [] in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let key = (r.network, r.property) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
      List.iter
        (fun (other : result) ->
          if not (Common.Outcome.agrees r.outcome other.outcome) then
            errors := (r.property, r.tool, other.tool) :: !errors)
        prev;
      Hashtbl.replace tbl key (r :: prev))
    results;
  !errors
