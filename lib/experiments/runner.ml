type result = {
  tool : string;
  network : string;
  property : string;
  outcome : Common.Outcome.t;
  time : float;
}

let run_one ~seed ~timeout (tool : Tool.t) (entry : Datasets.Suite.entry) prop =
  let budget = Common.Budget.of_seconds timeout in
  let started = Unix.gettimeofday () in
  let outcome =
    tool.Tool.run ~seed entry.Datasets.Suite.net prop ~budget
  in
  {
    tool = tool.Tool.name;
    network = entry.Datasets.Suite.name;
    property = prop.Common.Property.name;
    outcome;
    time = Unix.gettimeofday () -. started;
  }

(* [run_suite ~jobs:n] runs the independent (tool, network, property)
   instances of the workload on [n] worker domains; results come back in
   deterministic input order (entry-major, then property, then tool —
   the same order the sequential path produces) regardless of which
   worker finished first.  [progress] is serialized under a mutex but
   fires in completion order when [jobs > 1]. *)
let run_suite ?(progress = fun _ -> ()) ?(jobs = 1) ~seed ~timeout tools
    workload =
  let instances =
    List.concat_map
      (fun (entry, props) ->
        List.concat_map
          (fun prop -> List.map (fun (tool : Tool.t) -> (entry, prop, tool)) tools)
          props)
      workload
  in
  let execute ((entry : Datasets.Suite.entry), prop, (tool : Tool.t)) =
    if entry.Datasets.Suite.convolutional && not tool.Tool.supports_conv then
      {
        tool = tool.Tool.name;
        network = entry.Datasets.Suite.name;
        property = prop.Common.Property.name;
        outcome = Common.Outcome.Unknown;
        time = 0.0;
      }
    else run_one ~seed ~timeout tool entry prop
  in
  if jobs <= 1 then
    List.map
      (fun instance ->
        let result = execute instance in
        progress result;
        result)
      instances
  else begin
    let instances = Array.of_list instances in
    (* Each worker writes only its own index, so the slots are
       domain-disjoint by construction. *)
    let results = (Array.make (Array.length instances) None [@race.domain_local]) in
    let progress_mutex = Mutex.create () in
    Parallel.Pool.iter ~workers:jobs (Array.length instances) (fun i ->
        let result = execute instances.(i) in
        results.(i) <- Some result;
        Mutex.lock progress_mutex;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock progress_mutex)
          (fun () -> progress result));
    Array.to_list results
    |> List.map (function
         | Some r -> r
         | None -> failwith "Runner.run_suite: missing result")
  end

let by_tool results name = List.filter (fun r -> r.tool = name) results

let by_network results name = List.filter (fun r -> r.network = name) results

let solved results =
  List.filter (fun r -> Common.Outcome.is_solved r.outcome) results

let networks results =
  List.rev
    (List.fold_left
       (fun acc r -> if List.mem r.network acc then acc else r.network :: acc)
       [] results)

let to_csv results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "tool,network,property,outcome,time_seconds\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%s,%.6f\n" r.tool r.network r.property
           (Common.Outcome.label r.outcome)
           r.time))
    results;
  Buffer.contents buf

let save_csv path results =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv results))

(* JSON output carries the run configuration alongside the per-instance
   rows, so BENCH_*.json files can track the speedup trajectory as the
   worker count grows.  [counters] embeds aggregate telemetry counters
   (Telemetry.Metrics.counters ()) next to [wall_seconds], giving
   bin/benchdiff.exe work-done metrics to compare as well as time. *)
let to_json ?(workers = 1) ?wall_seconds ?(counters = []) results =
  let open Telemetry.Jsonw in
  let fields = [ ("workers", Int workers) ] in
  let fields =
    match wall_seconds with
    | Some w -> fields @ [ ("wall_seconds", Float w) ]
    | None -> fields
  in
  let fields =
    match counters with
    | [] -> fields
    | cs -> fields @ [ ("counters", Obj (List.map (fun (k, v) -> (k, Int v)) cs)) ]
  in
  let row r =
    Obj
      [
        ("tool", Str r.tool);
        ("network", Str r.network);
        ("property", Str r.property);
        ("outcome", Str (Common.Outcome.label r.outcome));
        ("time_seconds", Float r.time);
      ]
  in
  to_string ~pretty:true (Obj (fields @ [ ("results", Arr (List.map row results)) ]))
  ^ "\n"

let save_json ?workers ?wall_seconds ?counters path results =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json ?workers ?wall_seconds ?counters results))

let consistency_errors results =
  let errors = ref [] in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let key = (r.network, r.property) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
      List.iter
        (fun (other : result) ->
          if not (Common.Outcome.agrees r.outcome other.outcome) then
            errors := (r.property, r.tool, other.tool) :: !errors)
        prev;
      Hashtbl.replace tbl key (r :: prev))
    results;
  !errors
