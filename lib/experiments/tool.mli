(** Uniform interface over the verification tools compared in §7. *)

type t = {
  name : string;
  supports_conv : bool;
      (** whether the tool can handle max-pooling networks; ReluVal and
          Reluplex cannot (§7.2 excludes the conv net for them) *)
  can_falsify : bool;  (** AI2 cannot produce counterexamples *)
  run :
    seed:int ->
    Nn.Network.t ->
    Common.Property.t ->
    budget:Common.Budget.t ->
    Common.Outcome.t;
}

val charon : ?policy:Charon.Policy.t -> ?config:Charon.Verify.config -> unit -> t
(** The full system; defaults to the hand-crafted default policy (use a
    learned policy from {!Training} for the headline experiments). *)

val charon_no_cex : ?policy:Charon.Policy.t -> unit -> t
(** RQ2 ablation: counterexample search disabled. *)

val charon_fixed : Domains.Domain.spec -> t
(** RQ3 ablation: static domain and bisection splits instead of a
    learned policy. *)

val ai2 : Domains.Domain.spec -> t
(** The AI2 baseline: a single abstract-interpretation pass with a fixed
    domain; incomplete ([Unknown] when the domain cannot prove the
    property) and unable to falsify.  [ai2 Domain.zonotope_join] and
    [ai2 (Domain.powerset Zonotope_join_base 64)] are the paper's
    AI2-Zonotope and AI2-Bounded64 configurations. *)

val reluval : t

val reluplex : t

val charon_then_reluplex : ?policy:Charon.Policy.t -> split:float -> unit -> t
(** The solver-portfolio extension sketched in §9 ("one can view
    solver-based techniques as a perfectly precise abstract domain"):
    run Charon for the first [split] fraction of the budget, then hand
    unsolved problems to the complete checker for the remainder.
    [split] must be in (0, 1). *)

val all_figure6 : policy:Charon.Policy.t -> t list
(** Charon, AI2-Zonotope, AI2-Bounded64 (Figure 6's tools). *)

val all_complete : policy:Charon.Policy.t -> t list
(** Charon, ReluVal, Reluplex (Figure 14's tools). *)
