(* Report generator: the paper tables/figures it produces ARE stdout,
   so printing here is the module's contract, not stray debug output. *)
[@@@lint.allow "printf-in-lib"]

open Domains

let policies ~seed ~timeout ~policy workload =
  let tools =
    [
      Tool.charon ~policy ();
      Tool.charon_no_cex ~policy ();
      { (Tool.charon ()) with Tool.name = "Charon-Default" };
      Tool.charon_fixed Domain.zonotope;
      Tool.charon_fixed Domain.interval;
      Tool.charon_then_reluplex ~policy ~split:0.5 ();
    ]
  in
  let results = Runner.run_suite ~seed ~timeout tools workload in
  Printf.printf "\n== Ablation: policy and counterexample search ==\n";
  Printf.printf "%-18s %9s %10s %9s %12s\n" "variant" "verified" "falsified"
    "timeout" "total-time";
  List.iter
    (fun (tool : Tool.t) ->
      let rs = Runner.by_tool results tool.Tool.name in
      let c pred = List.length (List.filter pred rs) in
      Printf.printf "%-18s %9d %10d %9d %11.2fs\n" tool.Tool.name
        (c (fun r -> r.Runner.outcome = Common.Outcome.Verified))
        (c (fun (r : Runner.result) ->
             match r.Runner.outcome with
             | Common.Outcome.Refuted _ -> true
             | _ -> false))
        (c (fun r -> r.Runner.outcome = Common.Outcome.Timeout))
        (List.fold_left (fun acc r -> acc +. r.Runner.time) 0.0 rs))
    tools;
  results

let transformers net props =
  let specs =
    [
      ("I1 (interval)", Domain.interval);
      ("S1 (symbolic)", Domain.symbolic);
      ("Z1 (DeepZ)", Domain.zonotope);
      ("ZJ1 (AI2 join)", Domain.zonotope_join);
      ("Z2", Domain.powerset Domain.Zonotope_base 2);
      ("ZJ2", Domain.powerset Domain.Zonotope_join_base 2);
    ]
  in
  Printf.printf "\n== Ablation: ReLU transformer precision ==\n";
  Printf.printf "%-16s %9s %14s\n" "domain" "verified" "median-margin";
  List.iter
    (fun (name, spec) ->
      let margins =
        List.map
          (fun (p : Common.Property.t) ->
            Absint.Analyzer.margin_lower net p.Common.Property.region
              ~k:p.Common.Property.target spec)
          props
      in
      let verified = List.length (List.filter (fun m -> m > 0.0) margins) in
      let finite = List.filter Float.is_finite margins in
      let median =
        if finite = [] then nan
        else Linalg.Stats.median (Array.of_list finite)
      in
      Printf.printf "%-16s %9d %14.4f\n" name verified median)
    specs
