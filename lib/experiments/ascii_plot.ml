let markers = "*o+x#@%&"

let render ?(width = 64) ?(height = 16) ?(x_label = "x") ?(y_label = "y")
    series =
  let series = List.filter (fun (_, pts) -> pts <> []) series in
  if series = [] then "(no data to plot)\n"
  else begin
    let all = List.concat_map snd series in
    let xs = List.map fst all and ys = List.map snd all in
    let fold f = function [] -> 0.0 | h :: t -> List.fold_left f h t in
    let x_min = fold Float.min xs and x_max = fold Float.max xs in
    let y_min = fold Float.min ys and y_max = fold Float.max ys in
    let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
    let y_span = if y_max > y_min then y_max -. y_min else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si (_, pts) ->
        let marker = markers.[si mod String.length markers] in
        List.iter
          (fun (x, y) ->
            let c =
              int_of_float ((x -. x_min) /. x_span *. float_of_int (width - 1))
            in
            let r =
              height - 1
              - int_of_float
                  ((y -. y_min) /. y_span *. float_of_int (height - 1))
            in
            if r >= 0 && r < height && c >= 0 && c < width then
              grid.(r).(c) <- marker)
          pts)
      series;
    let buf = Buffer.create ((width + 12) * (height + 4)) in
    Array.iteri
      (fun r row ->
        let y_tick =
          if r = 0 then Printf.sprintf "%10.3g" y_max
          else if r = height - 1 then Printf.sprintf "%10.3g" y_min
          else String.make 10 ' '
        in
        Buffer.add_string buf y_tick;
        Buffer.add_string buf " |";
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make 11 ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%11s %-10.3g%*s%10.3g\n" "" x_min
         (width - 10) "" x_max);
    Buffer.add_string buf
      (Printf.sprintf "%11s x: %s, y: %s\n" "" x_label y_label);
    List.iteri
      (fun si (name, _) ->
        Buffer.add_string buf
          (Printf.sprintf "%11s %c = %s\n" "" markers.[si mod String.length markers]
             name))
      series;
    Buffer.contents buf
  end
