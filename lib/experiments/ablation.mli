(** Ablation studies for the design choices DESIGN.md calls out:
    counterexample search (RQ2), the learned policy versus static
    strategies (RQ3), and the ReLU transformer variant. *)

val policies :
  seed:int ->
  timeout:float ->
  policy:Charon.Policy.t ->
  (Datasets.Suite.entry * Common.Property.t list) list ->
  Runner.result list
(** Runs Charon with the learned policy, with counterexample search
    disabled, with the hand-crafted default policy, and with fixed
    domains (Z1 and I1 plus bisection splits), and prints a comparison
    table; returns the raw results. *)

val transformers :
  Nn.Network.t -> Common.Property.t list -> unit
(** Compares the DeepZ-style and AI2-join zonotope ReLU transformers:
    for each property, the margin lower bound each (and each with a
    2-disjunct powerset) proves.  Prints per-domain verified counts. *)
