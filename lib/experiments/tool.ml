open Domains

type t = {
  name : string;
  supports_conv : bool;
  can_falsify : bool;
  run :
    seed:int ->
    Nn.Network.t ->
    Common.Property.t ->
    budget:Common.Budget.t ->
    Common.Outcome.t;
}

let charon ?(policy = Charon.Policy.default) ?config () =
  {
    name = "Charon";
    supports_conv = true;
    can_falsify = true;
    run =
      (fun ~seed net prop ~budget ->
        let rng = Linalg.Rng.create seed in
        let report = Charon.Verify.run ?config ~budget ~rng ~policy net prop in
        report.Charon.Verify.outcome);
  }

let charon_no_cex ?(policy = Charon.Policy.default) () =
  let config =
    { Charon.Verify.default_config with Charon.Verify.use_cex_search = false }
  in
  { (charon ~policy ~config ()) with name = "Charon-NoCex" }

let charon_fixed spec =
  let t = charon ~policy:(Charon.Policy.fixed_domain spec) () in
  { t with name = Printf.sprintf "Charon-Fixed-%s" (Domain.to_string spec) }

let ai2 spec =
  {
    name =
      (if Domain.equal spec Domain.zonotope_join then "AI2-Zonotope"
       else if spec.Domain.disjuncts > 1 then
         Printf.sprintf "AI2-Bounded%d" spec.Domain.disjuncts
       else Printf.sprintf "AI2-%s" (Domain.to_string spec));
    supports_conv = true;
    can_falsify = false;
    run =
      (fun ~seed:_ net prop ~budget ->
        (* AI2 is a single abstract-interpretation pass; the analyzer
           polls the budget between layers so even a 64-disjunct pass
           on the conv net is abandoned once the budget expires. *)
        let verdict =
          Absint.Analyzer.analyze ~budget net prop.Common.Property.region
            ~k:prop.Common.Property.target spec
        in
        if Common.Budget.exhausted budget then Common.Outcome.Timeout
        else
          match verdict with
          | Absint.Analyzer.Verified -> Common.Outcome.Verified
          | Absint.Analyzer.Unknown -> Common.Outcome.Unknown);
  }

let reluval =
  {
    name = "ReluVal";
    supports_conv = false;
    can_falsify = true;
    run =
      (fun ~seed:_ net prop ~budget ->
        let report = Reluval.run ~budget net prop in
        report.Reluval.outcome);
  }

let reluplex =
  {
    name = "Reluplex";
    supports_conv = false;
    can_falsify = true;
    run =
      (fun ~seed:_ net prop ~budget ->
        let report = Reluplex.run ~budget net prop in
        report.Reluplex.outcome);
  }

let charon_then_reluplex ?(policy = Charon.Policy.default) ~split () =
  if split <= 0.0 || split >= 1.0 then
    invalid_arg "Tool.charon_then_reluplex: split must be in (0, 1)";
  {
    name = "Charon+Reluplex";
    supports_conv = false;
    can_falsify = true;
    run =
      (fun ~seed net prop ~budget ->
        (* Charon gets its share of the outer budget's remaining wall
           clock (or a step budget when the outer budget has no
           deadline); the complete checker then inherits whatever is
           left of the outer budget. *)
        let rng = Linalg.Rng.create seed in
        let charon_budget =
          match Common.Budget.remaining_seconds budget with
          | Some s -> Common.Budget.of_seconds (split *. s)
          | None -> Common.Budget.of_steps 5_000
        in
        let charon_report =
          Charon.Verify.run ~budget:charon_budget ~rng ~policy net prop
        in
        match charon_report.Charon.Verify.outcome with
        | (Common.Outcome.Verified | Common.Outcome.Refuted _) as solved ->
            solved
        | Common.Outcome.Timeout | Common.Outcome.Unknown ->
            let report = Reluplex.run ~budget net prop in
            report.Reluplex.outcome);
  }

let all_figure6 ~policy =
  [
    charon ~policy ();
    ai2 Domain.zonotope_join;
    ai2 (Domain.powerset Domain.Zonotope_join_base 64);
  ]

let all_complete ~policy = [ charon ~policy (); reluval; reluplex ]
