open Linalg

let acas_problems ~seed =
  let rng = Rng.create seed in
  let net = Datasets.Acas.network rng ~hidden:[ 16; 16; 16 ] in
  let props = Datasets.Acas.training_properties rng net ~n:12 ~radius:0.05 in
  List.map (fun property -> { Charon.Learn.net; property }) props

let default_train_config =
  {
    Charon.Learn.default_config with
    Charon.Learn.per_problem = Charon.Learn.Steps 3000;
    bopt =
      {
        Bayesopt.Bopt.default_config with
        Bayesopt.Bopt.init_samples = 10;
        iterations = 20;
      };
  }

let learn ?(config = default_train_config) ~seed () =
  let rng = Rng.create (seed + 1) in
  Charon.Learn.train ~config ~rng (acas_problems ~seed)

let learned_policy ?cache ~seed () =
  match cache with
  | Some path when Sys.file_exists path -> Charon.Policy.load path
  | cache ->
      let result = learn ~seed () in
      (match cache with
      | Some path -> (
          try Charon.Policy.save path result.Charon.Learn.policy
          with Invalid_argument _ | Sys_error _ -> ())
      | None -> ());
      result.Charon.Learn.policy
