(* Report generator: the paper tables/figures it produces ARE stdout,
   so printing here is the module's contract, not stray debug output. *)
[@@@lint.allow "printf-in-lib"]

open Linalg

let run ~seed ~timeout ~policy ~deltas workload =
  Printf.printf "\n== Ablation: the delta of Eq. 4 ==\n";
  Printf.printf "%-10s %9s %10s %9s %10s\n" "delta" "verified" "falsified"
    "timeout" "spurious";
  List.iter
    (fun delta ->
      let config = { Charon.Verify.default_config with Charon.Verify.delta } in
      let verified = ref 0
      and falsified = ref 0
      and timeouts = ref 0
      and spurious = ref 0 in
      List.iter
        (fun ((entry : Datasets.Suite.entry), props) ->
          List.iter
            (fun (prop : Common.Property.t) ->
              let rng = Rng.create seed in
              let report =
                Charon.Verify.run ~config
                  ~budget:(Common.Budget.of_seconds timeout)
                  ~rng ~policy entry.Datasets.Suite.net prop
              in
              match report.Charon.Verify.outcome with
              | Common.Outcome.Verified -> incr verified
              | Common.Outcome.Timeout | Common.Outcome.Unknown ->
                  incr timeouts
              | Common.Outcome.Refuted x ->
                  incr falsified;
                  let obj =
                    Optim.Objective.create entry.Datasets.Suite.net
                      ~k:prop.Common.Property.target
                  in
                  if Optim.Objective.value obj x > 0.0 then incr spurious)
            props)
        workload;
      Printf.printf "%-10g %9d %10d %9d %10d\n" delta !verified !falsified
        !timeouts !spurious)
    deltas
