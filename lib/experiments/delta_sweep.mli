(** The δ-completeness trade-off of §5 (Eq. 4) as an experiment.

    Larger δ makes the algorithm refute earlier — guaranteeing
    termination and cutting timeouts — at the cost of possible spurious
    refutations: returned points that are δ-counterexamples but not true
    ones.  This sweep measures both effects, an ablation of the design
    choice the paper analyses theoretically. *)

val run :
  seed:int ->
  timeout:float ->
  policy:Charon.Policy.t ->
  deltas:float list ->
  (Datasets.Suite.entry * Common.Property.t list) list ->
  unit
(** Prints, for each δ: verified / falsified / timeout counts and the
    number of refutations whose witness is not a true counterexample
    (positive objective value). *)
