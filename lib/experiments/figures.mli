(** Figure and table generators for every §7 artefact.

    Each function takes the flat benchmark results and prints the rows
    or series the corresponding paper figure reports; EXPERIMENTS.md
    records what to compare them against. *)

val fig6 : Runner.result list -> unit
(** Figure 6: per-tool verified / falsified / timeout / unknown
    percentages over the whole suite, plus §7.1's derived statistics
    (relative solved counts and speedups on commonly-solved
    benchmarks). *)

val cactus_per_network : Runner.result list -> unit
(** Figures 7–13: one cactus table per network, over whichever tools
    appear in the results. *)

val fig14 : Runner.result list -> unit
(** Figure 14: a single cactus table across all (non-convolutional)
    benchmarks for Charon, ReluVal and Reluplex, plus §7.2's solved
    multipliers and the strict-superset check against ReluVal. *)

val fig15 : Runner.result list -> unit
(** Figure 15: per network, the percentage of Charon-verified
    benchmarks that ReluVal also solves (the RQ3 policy-learning
    comparison). *)

val rq2 : Runner.result list -> unit
(** §7.3's falsification table: how many properties each tool refutes. *)

val consistency : Runner.result list -> unit
(** Cross-tool verdict agreement check; prints any verified-vs-refuted
    conflicts (there should be none). *)
