open Linalg
open Domains

let region x ~tau ~severity =
  if severity < 0.0 || severity > 1.0 then
    invalid_arg "Brightening.region: severity must be in [0, 1]";
  let lo = Vec.copy x in
  let hi =
    Vec.map (fun v -> if v >= tau then v +. (severity *. (1.0 -. v)) else v) x
  in
  Box.create ~lo ~hi

let property ?name net x ~tau ~severity =
  let target = Nn.Network.classify net x in
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "brighten-tau%.2f-sev%.2f" tau severity
  in
  Common.Property.create ~name ~region:(region x ~tau ~severity) ~target ()
