(** Synthetic image classification datasets.

    Stand-ins for MNIST and CIFAR (see DESIGN.md's substitution table):
    each class has a fixed prototype pattern; samples are prototypes
    plus bounded pixel noise, clipped to [\[0, 1\]].  The resulting
    classification problems are non-trivial (prototypes overlap) but
    learnable by the small networks we train, giving the verification
    benchmarks the same structure as the paper's: a trained ReLU net,
    a box of images around a test point, and a target class. *)

type spec = {
  shape : Nn.Shape.t;
  classes : int;
  noise : float;  (** per-pixel uniform noise amplitude *)
}

val mnist_like : spec
(** 1×10×10 grey images, 10 classes, noise 0.15. *)

val cifar_like : spec
(** 3×8×8 colour images, 10 classes, noise 0.15. *)

val tiny : spec
(** 1×4×4, 3 classes; used by fast unit tests. *)

val prototype : spec -> int -> Linalg.Vec.t
(** Deterministic class prototype (independent of any RNG), with pixel
    values in [\[0.1, 0.9\]].
    @raise Invalid_argument if the class is out of range. *)

val sample : Linalg.Rng.t -> spec -> int -> Linalg.Vec.t
(** A noisy instance of the class prototype, clipped to [\[0, 1\]]. *)

val dataset : Linalg.Rng.t -> spec -> per_class:int -> Nn.Train.sample array
(** Balanced labelled dataset, shuffled. *)
