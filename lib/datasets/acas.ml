open Linalg

let num_inputs = 5

let num_advisories = 5

let advisory_name = function
  | 0 -> "clear-of-conflict"
  | 1 -> "weak-left"
  | 2 -> "strong-left"
  | 3 -> "weak-right"
  | 4 -> "strong-right"
  | _ -> invalid_arg "Acas.advisory_name: out of range"

(* Inputs (all normalized to [0,1]):
     x0 = rho    distance to intruder (0 = on top of us, 1 = far)
     x1 = theta  bearing of intruder (0 = hard left, 0.5 = dead ahead,
                 1 = hard right)
     x2 = psi    relative heading (0.5 = parallel, <0.5 converging left)
     x3 = v_own  own speed
     x4 = v_int  intruder speed
   The rule: traffic that is far or strongly diverging is
   clear-of-conflict; otherwise turn away from the intruder's side, with
   strength growing as the (speed-scaled) distance shrinks. *)
let oracle x =
  if Vec.dim x <> num_inputs then invalid_arg "Acas.oracle: need 5 inputs";
  let rho = x.(0) and theta = x.(1) and psi = x.(2) in
  let v_own = x.(3) and v_int = x.(4) in
  let closing = 0.5 +. ((v_own +. v_int) /. 2.0) -. abs_float (psi -. 0.5) in
  let urgency = (1.0 -. rho) *. closing in
  if urgency < 0.55 then 0 (* clear of conflict *)
  else begin
    let intruder_right = theta >= 0.5 in
    let strong = urgency >= 0.85 in
    match (intruder_right, strong) with
    | true, false -> 1 (* weak left *)
    | true, true -> 2 (* strong left *)
    | false, false -> 3 (* weak right *)
    | false, true -> 4 (* strong right *)
  end

let dataset rng ~n =
  if n <= 0 then invalid_arg "Acas.dataset: n <= 0";
  Array.init n (fun _ ->
      let x = Vec.init num_inputs (fun _ -> Rng.float rng 1.0) in
      { Nn.Train.x; label = oracle x })

let network rng ~hidden =
  let layer_sizes = (num_inputs :: hidden) @ [ num_advisories ] in
  let net = Nn.Init.dense rng ~layer_sizes in
  let samples = dataset rng ~n:4000 in
  let config =
    {
      Nn.Train.epochs = 30;
      batch_size = 32;
      learning_rate = 0.05;
      weight_decay = 1e-4;
      momentum = 0.9;
    }
  in
  Nn.Train.train ~config ~rng net samples

let training_properties rng net ~n ~radius =
  if n <= 0 then invalid_arg "Acas.training_properties: n <= 0";
  let rec gather acc count attempts =
    if count = n || attempts > 10_000 then List.rev acc
    else begin
      let x = Vec.init num_inputs (fun _ -> Rng.uniform rng ~lo:radius ~hi:(1.0 -. radius)) in
      let label = oracle x in
      if Nn.Network.classify net x = label then begin
        let region = Domains.Box.of_center_radius x radius in
        let prop =
          Common.Property.create
            ~name:(Printf.sprintf "acas-train-%02d-%s" count (advisory_name label))
            ~region ~target:label ()
        in
        gather (prop :: acc) (count + 1) (attempts + 1)
      end
      else gather acc count (attempts + 1)
    end
  in
  gather [] 0 0
