(** Brightening attacks (§7.1, following DeepXplore).

    For an image [x] and threshold [τ], the attacked region lets every
    pixel with value at least [τ] range from its current value up to 1
    (scaled by a severity factor), leaving all other pixels fixed.  The
    property asks that everything in the region keeps [x]'s class. *)

val region :
  Linalg.Vec.t -> tau:float -> severity:float -> Domains.Box.t
(** [region x ~tau ~severity] brightens pixels [x_i >= tau] up to
    [x_i + severity * (1 - x_i)]; [severity = 1] is the full brightening
    attack of the paper.
    @raise Invalid_argument unless [severity] is in [\[0, 1\]]. *)

val property :
  ?name:string ->
  Nn.Network.t ->
  Linalg.Vec.t ->
  tau:float ->
  severity:float ->
  Common.Property.t
(** The robustness property for the brightened region around [x], with
    the network's own classification of [x] as the target class. *)
