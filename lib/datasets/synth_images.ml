open Linalg

type spec = { shape : Nn.Shape.t; classes : int; noise : float }

let mnist_like =
  {
    shape = Nn.Shape.create ~channels:1 ~height:10 ~width:10;
    classes = 10;
    noise = 0.15;
  }

let cifar_like =
  {
    shape = Nn.Shape.create ~channels:3 ~height:8 ~width:8;
    classes = 10;
    noise = 0.15;
  }

let tiny =
  {
    shape = Nn.Shape.create ~channels:1 ~height:4 ~width:4;
    classes = 3;
    noise = 0.1;
  }

(* Prototypes are derived from a per-class hash so they are stable across
   runs without carrying an RNG.  Pixel values are mapped into
   [0.1, 0.9]: a smooth class-specific wave pattern plus a class-specific
   bright blob, which gives classes distinct low- and high-frequency
   structure. *)
let prototype spec label =
  if label < 0 || label >= spec.classes then
    invalid_arg "Synth_images.prototype: label out of range";
  let { Nn.Shape.channels = _; height; width } = spec.shape in
  let fl = float_of_int label in
  let cx = 0.5 +. (0.35 *. cos (2.0 *. Float.pi *. fl /. float_of_int spec.classes)) in
  let cy = 0.5 +. (0.35 *. sin (2.0 *. Float.pi *. fl /. float_of_int spec.classes)) in
  Vec.init (Nn.Shape.size spec.shape) (fun idx ->
      let per_plane = height * width in
      let c = idx / per_plane in
      let r = idx mod per_plane in
      let i = r / width and j = r mod width in
      let u = float_of_int i /. float_of_int (Stdlib.max 1 (height - 1)) in
      let v = float_of_int j /. float_of_int (Stdlib.max 1 (width - 1)) in
      let wave =
        0.5
        +. 0.25
           *. sin ((fl +. 1.0) *. (u +. (0.7 *. v)) *. 3.0
                   +. (0.9 *. float_of_int c))
      in
      let du = u -. cy and dv = v -. cx in
      let blob = 0.35 *. exp (-.((du *. du) +. (dv *. dv)) /. 0.02) in
      let x = wave +. blob in
      0.1 +. (0.8 *. Float.min 1.0 (Float.max 0.0 x)))

let clip01 x = if x < 0.0 then 0.0 else if x > 1.0 then 1.0 else x

let sample rng spec label =
  let proto = prototype spec label in
  Vec.map
    (fun p -> clip01 (p +. Rng.uniform rng ~lo:(-.spec.noise) ~hi:spec.noise))
    proto

let dataset rng spec ~per_class =
  if per_class <= 0 then invalid_arg "Synth_images.dataset: per_class <= 0";
  let samples =
    Array.init (spec.classes * per_class) (fun i ->
        let label = i mod spec.classes in
        { Nn.Train.x = sample rng spec label; label })
  in
  Rng.shuffle rng samples;
  samples
