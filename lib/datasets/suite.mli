(** The benchmark suite of §7: seven networks (six fully connected, one
    convolutional) trained on the MNIST-like and CIFAR-like datasets,
    with around a hundred brightening-attack robustness properties per
    network.

    Layer counts match the paper ("NxM" = N fully-connected layers);
    interior widths and image resolutions are scaled down so the whole
    suite runs on one machine without the authors' cluster budgets —
    DESIGN.md documents the substitution.  Networks are trained
    deterministically from a seed and can be cached on disk. *)

type entry = {
  name : string;  (** paper-style name, e.g. ["mnist-3x100"] *)
  description : string;  (** actual architecture summary *)
  net : Nn.Network.t;
  image_spec : Synth_images.spec;
  convolutional : bool;
      (** true for the LeNet-style network, which the complete baselines
          (ReluVal, Reluplex) cannot handle — they are excluded from it
          in §7.2, as here *)
  test_accuracy : float;
}

val network_names : string list
(** The seven benchmark networks, in the paper's order:
    mnist-3x100, mnist-6x100, mnist-9x200, cifar-3x100, cifar-6x100,
    cifar-9x100, conv-lenet. *)

val build_network : seed:int -> string -> entry
(** Train one benchmark network from scratch (deterministic in the
    seed).
    @raise Invalid_argument for an unknown name. *)

val build : ?cache_dir:string -> seed:int -> unit -> entry list
(** All seven networks.  With [cache_dir], trained networks are stored
    as ["<dir>/<name>.net"] and reloaded on subsequent calls. *)

val properties : seed:int -> entry -> count:int -> Common.Property.t list
(** [count] brightening-attack properties for the network, cycling
    through a grid of thresholds and severities so the set mixes
    easily-verified, hard, and falsifiable instances (the paper's suite
    also contains all three, cf. Figure 6). *)

val benchmark : ?cache_dir:string -> seed:int -> per_network:int -> unit
  -> (entry * Common.Property.t list) list
(** The full evaluation workload: every network paired with its
    properties ([per_network = 86] reproduces the paper's 602-benchmark
    scale). *)
