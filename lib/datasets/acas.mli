(** An ACAS-Xu-like collision-avoidance substrate.

    The paper trains its verification policy on 12 robustness properties
    of an ACAS Xu network (§6).  The real networks are not available, so
    we build the closest synthetic equivalent: a 5-input advisory
    function with the same flavour as the collision-avoidance logic
    (inputs: distance, bearing of the intruder, relative heading, own
    and intruder speeds; outputs: 5 advisories), networks trained on it,
    and a set of 12 training properties over advisory-stable input
    boxes. *)

val num_inputs : int
(** 5; inputs are normalized to [\[0, 1\]]. *)

val num_advisories : int
(** 5: clear-of-conflict, weak left, strong left, weak right, strong
    right. *)

val advisory_name : int -> string

val oracle : Linalg.Vec.t -> int
(** The ground-truth advisory for a normalized input: a hand-written
    geometric rule (close and converging traffic triggers a turn away
    from the intruder, stronger the closer it is). *)

val dataset : Linalg.Rng.t -> n:int -> Nn.Train.sample array
(** [n] uniform samples labelled by the oracle. *)

val network : Linalg.Rng.t -> hidden:int list -> Nn.Network.t
(** A trained advisory network with the given hidden sizes (e.g.
    [\[16; 16; 16\]]), trained until it fits the oracle reasonably
    well. *)

val training_properties :
  Linalg.Rng.t -> Nn.Network.t -> n:int -> radius:float -> Common.Property.t list
(** [n] robustness properties centred at points where the network and
    oracle agree, with L∞ radius [radius] — the analogue of the paper's
    12 ACAS training properties (use [n = 12]). *)
