open Linalg

type entry = {
  name : string;
  description : string;
  net : Nn.Network.t;
  image_spec : Synth_images.spec;
  convolutional : bool;
  test_accuracy : float;
}

(* The conv network needs spatial dims divisible by 4. *)
let conv_spec =
  {
    Synth_images.shape = Nn.Shape.create ~channels:1 ~height:8 ~width:8;
    classes = 10;
    noise = 0.15;
  }

type arch =
  | Dense of { spec : Synth_images.spec; hidden : int list }
  | Lenet of { spec : Synth_images.spec }

let catalog =
  [
    ("mnist-3x100", Dense { spec = Synth_images.mnist_like; hidden = [ 24; 24 ] });
    ( "mnist-6x100",
      Dense { spec = Synth_images.mnist_like; hidden = [ 32; 32; 32; 32; 32 ] }
    );
    ( "mnist-9x200",
      Dense
        {
          spec = Synth_images.mnist_like;
          hidden = [ 48; 48; 48; 48; 48; 48; 48; 48 ];
        } );
    ("cifar-3x100", Dense { spec = Synth_images.cifar_like; hidden = [ 24; 24 ] });
    ( "cifar-6x100",
      Dense { spec = Synth_images.cifar_like; hidden = [ 32; 32; 32; 32; 32 ] }
    );
    ( "cifar-9x100",
      Dense
        {
          spec = Synth_images.cifar_like;
          hidden = [ 32; 32; 32; 32; 32; 32; 32; 32 ];
        } );
    ("conv-lenet", Lenet { spec = conv_spec });
  ]

let network_names = List.map fst catalog

let arch_of_name name =
  match List.assoc_opt name catalog with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Suite: unknown network %S" name)

let spec_of_arch = function Dense { spec; _ } | Lenet { spec } -> spec

let describe_arch = function
  | Dense { spec; hidden } ->
      Printf.sprintf "dense %d-%s-%d on %dx%dx%d images"
        (Nn.Shape.size spec.Synth_images.shape)
        (String.concat "-" (List.map string_of_int hidden))
        spec.Synth_images.classes spec.Synth_images.shape.Nn.Shape.channels
        spec.Synth_images.shape.Nn.Shape.height
        spec.Synth_images.shape.Nn.Shape.width
  | Lenet { spec } ->
      Printf.sprintf "LeNet-style conv net on %dx%dx%d images"
        spec.Synth_images.shape.Nn.Shape.channels
        spec.Synth_images.shape.Nn.Shape.height
        spec.Synth_images.shape.Nn.Shape.width

(* Mix the network name into the seed so each net trains on its own
   stream but everything is reproducible from one seed. *)
let net_seed ~seed name = seed + Hashtbl.hash name mod 100_000

let train_network ~seed name =
  let arch = arch_of_name name in
  let spec = spec_of_arch arch in
  let rng = Rng.create (net_seed ~seed name) in
  let untrained =
    match arch with
    | Dense { spec; hidden } ->
        let layer_sizes =
          (Nn.Shape.size spec.Synth_images.shape :: hidden)
          @ [ spec.Synth_images.classes ]
        in
        Nn.Init.dense rng ~layer_sizes
    | Lenet { spec } ->
        Nn.Init.lenet_like rng ~input:spec.Synth_images.shape
          ~classes:spec.Synth_images.classes
  in
  let train_set = Synth_images.dataset rng spec ~per_class:40 in
  (* Deep narrow nets need the gentler schedule; the conv net converges
     quickly and its epochs are much more expensive. *)
  let config =
    match arch with
    | Dense _ ->
        {
          Nn.Train.epochs = 60;
          batch_size = 32;
          learning_rate = 0.01;
          weight_decay = 1e-4;
          momentum = 0.9;
        }
    | Lenet _ ->
        {
          Nn.Train.epochs = 25;
          batch_size = 32;
          learning_rate = 0.02;
          weight_decay = 1e-4;
          momentum = 0.9;
        }
  in
  Nn.Train.train ~config ~rng untrained train_set

let build_network ~seed name =
  let arch = arch_of_name name in
  let spec = spec_of_arch arch in
  let net = train_network ~seed name in
  let test_rng = Rng.create (net_seed ~seed name + 77) in
  let test_set = Synth_images.dataset test_rng spec ~per_class:20 in
  {
    name;
    description = describe_arch arch;
    net;
    image_spec = spec;
    convolutional = (match arch with Lenet _ -> true | Dense _ -> false);
    test_accuracy = Nn.Train.accuracy net test_set;
  }

let cached_network ~cache_dir ~seed name =
  let path = Filename.concat cache_dir (name ^ ".net") in
  if Sys.file_exists path then begin
    let arch = arch_of_name name in
    let spec = spec_of_arch arch in
    let net = Nn.Serial.load path in
    let test_rng = Rng.create (net_seed ~seed name + 77) in
    let test_set = Synth_images.dataset test_rng spec ~per_class:20 in
    {
      name;
      description = describe_arch arch;
      net;
      image_spec = spec;
      convolutional = (match arch with Lenet _ -> true | Dense _ -> false);
      test_accuracy = Nn.Train.accuracy net test_set;
    }
  end
  else begin
    let entry = build_network ~seed name in
    (try
       if not (Sys.file_exists cache_dir) then Sys.mkdir cache_dir 0o755;
       Nn.Serial.save path entry.net
     with Sys_error _ -> ());
    entry
  end

let build ?cache_dir ~seed () =
  List.map
    (fun name ->
      match cache_dir with
      | Some dir -> cached_network ~cache_dir:dir ~seed name
      | None -> build_network ~seed name)
    network_names

(* Threshold/severity grid: low severities give small, mostly-verifiable
   regions; severity 1.0 is the paper's full brightening attack and is
   frequently falsifiable. *)
(* Read-only lookup table: initialized once here and only ever indexed,
   never written, so sharing it across domains is safe. *)
let attack_grid =
  [|
    (0.55, 1.00);
    (0.65, 1.00);
    (0.75, 1.00);
    (0.85, 1.00);
    (0.70, 0.50);
    (0.80, 0.25);
  |]
[@@race.read_only]

let properties ~seed entry ~count =
  if count <= 0 then invalid_arg "Suite.properties: count <= 0";
  let rng = Rng.create (net_seed ~seed entry.name + 999) in
  (* Benchmark images carry more noise than the training set so a
     fraction of them sit near decision boundaries, where brightening
     attacks genuinely flip the classification — the suite then mixes
     verifiable, falsifiable, and hard instances like the paper's. *)
  let noisy = { entry.image_spec with Synth_images.noise = 0.45 } in
  List.init count (fun i ->
      let label = i mod entry.image_spec.Synth_images.classes in
      let x = Synth_images.sample rng noisy label in
      let tau, severity = attack_grid.(i mod Array.length attack_grid) in
      Brightening.property
        ~name:(Printf.sprintf "%s-p%03d" entry.name i)
        entry.net x ~tau ~severity)

let benchmark ?cache_dir ~seed ~per_network () =
  List.map
    (fun entry -> (entry, properties ~seed entry ~count:per_network))
    (build ?cache_dir ~seed ())
