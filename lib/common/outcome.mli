(** Solver outcomes, shared by Charon and the baseline tools so the
    experiment harness can tabulate them uniformly (Figure 6's verified /
    falsified / timeout / unknown categories). *)

type t =
  | Verified  (** the property is proven to hold *)
  | Refuted of Linalg.Vec.t  (** a (δ-)counterexample *)
  | Timeout  (** budget exhausted *)
  | Unknown  (** the solver gave up without a verdict (incomplete tools) *)

val is_solved : t -> bool
(** [Verified] or [Refuted]. *)

val label : t -> string
(** ["verified"], ["falsified"], ["timeout"] or ["unknown"]. *)

val pp : Format.formatter -> t -> unit

val agrees : t -> t -> bool
(** Whether two outcomes are consistent with each other (solved verdicts
    must match; [Timeout]/[Unknown] are consistent with anything). *)
