(** Property files: a line-oriented format for robustness properties, so
    benchmark suites can be exported, shared, and replayed from the CLI.

    Format (one or more records, [#] comments and blank lines ignored):
    {v
    property <name>
    network <path>          # optional: network file this applies to
    target <K>
    box <l1:h1,l2:h2,...>   # or: center <x1,x2,...> + radius <r>
    end
    v} *)

type entry = {
  property : Property.t;
  network : string option;  (** path of the network file, if recorded *)
}

val parse : string -> entry list
(** @raise Failure with a line-numbered message on malformed input. *)

val print : entry list -> string

val load : string -> entry list
(** @raise Sys_error / [Failure] like {!parse}. *)

val save : string -> entry list -> unit
