open Domains

type t = { name : string; region : Box.t; target : int }

let create ?(name = "property") ~region ~target () =
  if target < 0 then invalid_arg "Property.create: negative target class";
  { name; region; target }

let holds_at net t x =
  let scores = Nn.Network.eval net x in
  let ok = ref true in
  Array.iteri
    (fun j s -> if j <> t.target && s >= scores.(t.target) then ok := false)
    scores;
  !ok

let check_samples rng net t ~n =
  let rec go i =
    if i >= n then None
    else begin
      let x = Box.sample rng t.region in
      if holds_at net t x then go (i + 1) else Some x
    end
  in
  go 0

let pp fmt t =
  Format.fprintf fmt "%s: region %a, class %d" t.name Box.pp t.region t.target
