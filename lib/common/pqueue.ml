(* Array-backed binary min-heap.

   Unsynchronized by design — this is the sequential verifier's
   frontier; the parallel path uses [Parallel.Wqueue] (mutex/condition
   guarded) instead.  Never share one across domains. *)
type 'a t = {
  mutable data : (float * 'a) array;  (** slots [0, size) are live *)
  mutable size : int;
}
[@@race.domain_local]

let create () = { data = [||]; size = 0 }

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let grow t entry =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let data = Array.make (Stdlib.max 8 (2 * cap)) entry in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if fst t.data.(i) < fst t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && fst t.data.(l) < fst t.data.(!smallest) then smallest := l;
  if r < t.size && fst t.data.(r) < fst t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~priority x =
  let entry = (priority, x) in
  grow t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some top
  end

let peek t = if t.size = 0 then None else Some t.data.(0)

let size t = t.size

let is_empty t = t.size = 0
