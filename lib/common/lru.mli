(** A generic, domain-safe, string-keyed LRU table.

    The shared machinery behind the charon-serve verdict cache and the
    subregion proof cache: an intrusive doubly-linked recency list over
    a hashtable, one mutex, LRU eviction at a fixed capacity.  Both
    [get] and [put] refresh recency.  Hit/miss/eviction tallies are kept
    in atomics readable without the lock; the module has no telemetry
    dependency — callers mirror events into named counters from the
    return values. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] (default 256) is the maximum number of entries; the
    least-recently-used entry is evicted on overflow.
    @raise Invalid_argument when [capacity < 1]. *)

val get : 'a t -> string -> 'a option
(** Lookup, refreshing recency and counting a hit or a miss. *)

val put : 'a t -> string -> 'a -> bool
(** Insert, or refresh the value and recency of an existing key (which
    never evicts).  Returns [true] when the insert evicted the
    least-recently-used entry to make room. *)

val mem : 'a t -> string -> bool
(** Presence test; does not refresh recency and counts nothing. *)

val length : 'a t -> int

val keys : 'a t -> string list
(** Keys from most to least recently used (a locked snapshot). *)

type stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

val stats : 'a t -> stats
(** Size and counter snapshot; the counters are monotone across the
    table's lifetime ([hits + misses] equals the number of [get]s). *)
