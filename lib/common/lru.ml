(* A generic string-keyed LRU table.

   Extracted from the charon-serve verdict cache so the subregion proof
   cache and any future memo table share one audited implementation of
   the tricky part: the intrusive doubly-linked recency list.  [get] and
   [put] both move the touched entry to the front; inserting into a full
   table drops the back.

   Domain-safe by one mutex over the table and the list.  The
   hit/miss/eviction tallies are atomics, fetch-and-add only, so they
   can be read without the lock (status polls never contend with
   workers).  This module deliberately knows nothing about telemetry:
   callers that want named counters mirror events from the return values
   ([get]'s option, [put]'s eviction flag). *)

type 'a entry = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a entry option;  (* toward the front (most recent) *)
  mutable next : 'a entry option;  (* toward the back (eviction end) *)
}
[@@race.guarded_by "mutex"]

type 'a t = {
  mutex : Mutex.t;
  table : (string, 'a entry) Hashtbl.t;
  capacity : int;
  mutable front : 'a entry option;
  mutable back : 'a entry option;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
}
[@@race.guarded_by "mutex"]

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be positive";
  {
    mutex = Mutex.create ();
    table = Hashtbl.create (2 * capacity);
    capacity;
    front = None;
    back = None;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* List surgery; callers hold [mutex]. *)

let unlink t e =
  (match e.prev with
  | Some p -> p.next <- e.next
  | None -> t.front <- e.next);
  (match e.next with
  | Some n -> n.prev <- e.prev
  | None -> t.back <- e.prev);
  e.prev <- None;
  e.next <- None
[@@race.locked "mutex"]

let push_front t e =
  e.prev <- None;
  e.next <- t.front;
  (match t.front with Some f -> f.prev <- Some e | None -> t.back <- Some e);
  t.front <- Some e
[@@race.locked "mutex"]

let get t k =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some e ->
          unlink t e;
          push_front t e;
          ignore (Atomic.fetch_and_add t.hits 1);
          Some e.value
      | None ->
          ignore (Atomic.fetch_and_add t.misses 1);
          None)

let put t k v =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some e ->
          (* Refresh in place: no growth, so no eviction either. *)
          e.value <- v;
          unlink t e;
          push_front t e;
          false
      | None ->
          let evicted =
            if Hashtbl.length t.table >= t.capacity then begin
              match t.back with
              | Some victim ->
                  unlink t victim;
                  Hashtbl.remove t.table victim.key;
                  ignore (Atomic.fetch_and_add t.evictions 1);
                  true
              | None -> false
            end
            else false
          in
          let e = { key = k; value = v; prev = None; next = None } in
          Hashtbl.replace t.table k e;
          push_front t e;
          evicted)

let mem t k = with_lock t (fun () -> Hashtbl.mem t.table k)

let length t = with_lock t (fun () -> Hashtbl.length t.table)

(* Front-to-back walk; the snapshot is taken under the lock. *)
let keys t =
  with_lock t (fun () ->
      let rec walk acc = function
        | None -> List.rev acc
        | Some e -> walk (e.key :: acc) e.next
      in
      walk [] t.front)

type stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

let stats t =
  with_lock t (fun () ->
      {
        size = Hashtbl.length t.table;
        capacity = t.capacity;
        hits = Atomic.get t.hits;
        misses = Atomic.get t.misses;
        evictions = Atomic.get t.evictions;
      })
