(** Textual input-region specifications, shared by the CLI and tests.

    Two forms are accepted:
    - center/radius: a comma-separated center and an L∞ radius;
    - box: comma-separated [lo:hi] pairs, one per input dimension. *)

val parse_floats : string -> Linalg.Vec.t
(** Comma-separated float list.
    @raise Failure on malformed entries. *)

val parse_box : string -> Domains.Box.t
(** ["l1:h1,l2:h2,..."].
    @raise Failure on malformed entries or inverted bounds. *)

val of_options :
  center:string option ->
  radius:float ->
  box:string option ->
  Domains.Box.t
(** Resolve the CLI's mutually exclusive region options.
    @raise Failure if both or neither form is given. *)

val to_box_string : Domains.Box.t -> string
(** Inverse of {!parse_box} (round-trips through [%.17g]). *)
