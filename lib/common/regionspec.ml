open Domains

let parse_floats s =
  String.split_on_char ',' s
  |> List.map (fun tok ->
         match float_of_string_opt (String.trim tok) with
         | Some x -> x
         | None -> failwith (Printf.sprintf "Regionspec: not a number: %S" tok))
  |> Array.of_list

let parse_box s =
  let bounds =
    String.split_on_char ',' s
    |> List.map (fun part ->
           match String.split_on_char ':' part with
           | [ lo; hi ] -> begin
               match
                 ( float_of_string_opt (String.trim lo),
                   float_of_string_opt (String.trim hi) )
               with
               | Some l, Some h -> (l, h)
               | _ ->
                   failwith
                     (Printf.sprintf "Regionspec: malformed bound %S" part)
             end
           | _ ->
               failwith
                 (Printf.sprintf "Regionspec: expected lo:hi, got %S" part))
  in
  match
    Box.create
      ~lo:(Array.of_list (List.map fst bounds))
      ~hi:(Array.of_list (List.map snd bounds))
  with
  | box -> box
  | exception Invalid_argument msg -> failwith ("Regionspec: " ^ msg)

let of_options ~center ~radius ~box =
  match (center, box) with
  | Some c, None ->
      if radius < 0.0 then failwith "Regionspec: negative radius";
      Box.of_center_radius (parse_floats c) radius
  | None, Some b -> parse_box b
  | Some _, Some _ ->
      failwith "Regionspec: give either a center/radius or a box, not both"
  | None, None -> failwith "Regionspec: a region is required"

let to_box_string box =
  String.concat ","
    (List.init (Box.dim box) (fun i ->
         Printf.sprintf "%.17g:%.17g" box.Box.lo.(i) box.Box.hi.(i)))
