(** Analysis budgets.

    The paper gives every solver a wall-clock time limit per benchmark
    (1000 s in §7).  For deterministic tests we additionally support a
    budget counted in abstract "steps" (solver-defined work units), which
    behaves identically across machines. *)

type t

val unlimited : unit -> t

val of_seconds : float -> t
(** Wall-clock budget starting now. *)

val of_steps : int -> t
(** Deterministic step budget. *)

val create : ?seconds:float -> ?steps:int -> unit -> t
(** Combined budget; whichever limit is hit first exhausts it. *)

val spend : t -> int -> unit
(** Consume work units from the step budget.  Thread-safe: budgets may
    be shared across parallel verifier workers. *)

val exhausted : t -> bool
(** Whether either limit has been hit.  Step-budget checks are exact on
    every call; the wall clock is only re-read on every [poll_stride]-th
    call (and sticky once past the deadline), so deadline expiry is
    detected within a bounded number of polls rather than on the very
    next one.  Thread-safe. *)

val poll_stride : int
(** Number of [exhausted] polls between wall-clock reads. *)

val elapsed : t -> float
(** Seconds since the budget was created. *)

val remaining_seconds : t -> float option
(** Seconds until the wall-clock deadline ([None] if there is none);
    never negative. *)

val steps_used : t -> int
