type t = {
  deadline : float option;
  max_steps : int option;
  started : float;
  mutable used : int;
}

let now () = Unix.gettimeofday ()

let create ?seconds ?steps () =
  let started = now () in
  {
    deadline = Option.map (fun s -> started +. s) seconds;
    max_steps = steps;
    started;
    used = 0;
  }

let unlimited () = create ()

let of_seconds s = create ~seconds:s ()

let of_steps n = create ~steps:n ()

let spend t n = t.used <- t.used + n

let exhausted t =
  (match t.max_steps with Some m -> t.used >= m | None -> false)
  || match t.deadline with Some d -> now () > d | None -> false

let elapsed t = now () -. t.started

let remaining_seconds t =
  Option.map (fun d -> Stdlib.max 0.0 (d -. now ())) t.deadline

let steps_used t = t.used
