(* Budgets are shared by every parallel verifier worker, so the mutable
   pieces are atomics: [spend] and [exhausted] may be called from any
   domain concurrently.

   Lock-free by design:
   - [used] and [polls] are only ever fetch_and_add'ed — no
     read-modify-write cycles that could lose updates;
   - [expired] is sticky: it transitions false -> true exactly once and
     is never reset, so a stale read only delays expiry by one poll;
   - the immutable fields are set at creation and safely shared. *)
type t = {
  deadline : float option;
  max_steps : int option;
  started : float;
  used : int Atomic.t;
  polls : int Atomic.t;  (** wall-clock polls since creation *)
  expired : bool Atomic.t;  (** sticky once the deadline passes *)
}
[@@race.atomic]

let now () = Unix.gettimeofday ()

(* The analyzer polls once per layer per region (and parallel workers
   multiply that), so re-reading the wall clock on every poll costs real
   time on the hot path.  Only every [poll_stride]-th poll reads the
   clock; step-budget checks stay exact.  Deadline detection is thereby
   delayed by at most [poll_stride - 1] polls and is sticky once seen —
   callers must poll in a loop rather than rely on the very next call. *)
let poll_stride = 32

let create ?seconds ?steps () =
  let started = now () in
  {
    deadline = Option.map (fun s -> started +. s) seconds;
    max_steps = steps;
    started;
    used = Atomic.make 0;
    polls = Atomic.make 0;
    expired = Atomic.make false;
  }

let unlimited () = create ()

let of_seconds s = create ~seconds:s ()

let of_steps n = create ~steps:n ()

let spend t n = ignore (Atomic.fetch_and_add t.used n)

let past_deadline t d =
  Atomic.get t.expired
  ||
  let p = Atomic.fetch_and_add t.polls 1 in
  if p mod poll_stride = 0 && now () > d then Atomic.set t.expired true;
  Atomic.get t.expired

let exhausted t =
  (match t.max_steps with Some m -> Atomic.get t.used >= m | None -> false)
  || match t.deadline with Some d -> past_deadline t d | None -> false

let elapsed t = now () -. t.started

let remaining_seconds t =
  Option.map (fun d -> Float.max 0.0 (d -. now ())) t.deadline

let steps_used t = Atomic.get t.used
