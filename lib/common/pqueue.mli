(** A mutable binary min-heap keyed by float priorities.

    Used by the best-first variant of the verification loop (regions
    closest to violating the property are refined first). *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> priority:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-priority element; [None] when
    empty.  Ties are broken arbitrarily. *)

val peek : 'a t -> (float * 'a) option

val size : 'a t -> int

val is_empty : 'a t -> bool
