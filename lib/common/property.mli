(** Robustness properties.

    A property [(I, K)] asserts that the network classifies every point
    of the input region [I] as class [K] (§2.2). *)

type t = {
  name : string;  (** identifier used in reports and benchmark tables *)
  region : Domains.Box.t;  (** the input region [I] *)
  target : int;  (** the class [K] *)
}

val create : ?name:string -> region:Domains.Box.t -> target:int -> unit -> t
(** @raise Invalid_argument if [target < 0]. *)

val holds_at : Nn.Network.t -> t -> Linalg.Vec.t -> bool
(** Whether a single concrete point (assumed to lie in the region) is
    classified as the target class with a strictly greater score than
    every other class. *)

val check_samples : Linalg.Rng.t -> Nn.Network.t -> t -> n:int -> Linalg.Vec.t option
(** Randomized falsification oracle used by tests: samples [n] points
    from the region and returns the first violating point found. *)

val pp : Format.formatter -> t -> unit
