type entry = { property : Property.t; network : string option }

(* Partially parsed record fields.  A [draft] lives only inside one
   [parse] call on one domain; it never escapes the parser. *)
type draft = {
  mutable name : string option;
  mutable network : string option;
  mutable target : int option;
  mutable box : Domains.Box.t option;
  mutable center : Linalg.Vec.t option;
  mutable radius : float option;
}
[@@race.domain_local]

let fresh () =
  { name = None; network = None; target = None; box = None; center = None;
    radius = None }

let fail_line n msg = failwith (Printf.sprintf "Propfile: line %d: %s" n msg)

let finish n d =
  let name = Option.value ~default:"property" d.name in
  let region =
    match (d.box, d.center, d.radius) with
    | Some b, None, None -> b
    | None, Some c, Some r -> Domains.Box.of_center_radius c r
    | None, Some _, None -> fail_line n "center given without radius"
    | None, None, Some _ -> fail_line n "radius given without center"
    | None, None, None -> fail_line n "no region (box or center/radius)"
    | Some _, _, _ -> fail_line n "both box and center/radius given"
  in
  let target =
    match d.target with
    | Some k -> k
    | None -> fail_line n "missing target class"
  in
  { property = Property.create ~name ~region ~target (); network = d.network }

let parse text =
  let lines = String.split_on_char '\n' text in
  let entries = ref [] in
  let current = ref None in
  List.iteri
    (fun idx raw ->
      let n = idx + 1 in
      let line =
        match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let line = String.trim line in
      if line <> "" then begin
        let keyword, rest =
          match String.index_opt line ' ' with
          | Some i ->
              ( String.sub line 0 i,
                String.trim (String.sub line i (String.length line - i)) )
          | None -> (line, "")
        in
        match (keyword, !current) with
        | "property", Some _ -> fail_line n "unterminated record (missing 'end')"
        | "property", None ->
            let d = fresh () in
            d.name <- (if rest = "" then None else Some rest);
            current := Some d
        | "end", Some d ->
            entries := finish n d :: !entries;
            current := None
        | "end", None -> fail_line n "'end' without a record"
        | _, None ->
            fail_line n (Printf.sprintf "%S outside of a property record" keyword)
        | "network", Some d -> d.network <- Some rest
        | "target", Some d -> begin
            match int_of_string_opt rest with
            | Some k -> d.target <- Some k
            | None -> fail_line n "target must be an integer"
          end
        | "box", Some d -> begin
            match Regionspec.parse_box rest with
            | b -> d.box <- Some b
            | exception Failure msg -> fail_line n msg
          end
        | "center", Some d -> begin
            match Regionspec.parse_floats rest with
            | c -> d.center <- Some c
            | exception Failure msg -> fail_line n msg
          end
        | "radius", Some d -> begin
            match float_of_string_opt rest with
            | Some r when r >= 0.0 -> d.radius <- Some r
            | Some _ -> fail_line n "radius must be non-negative"
            | None -> fail_line n "radius must be a number"
          end
        | other, Some _ ->
            fail_line n (Printf.sprintf "unknown keyword %S" other)
      end)
    lines;
  (match !current with
  | Some _ -> failwith "Propfile: unterminated record at end of file"
  | None -> ());
  List.rev !entries

let print entries =
  let buf = Buffer.create 512 in
  List.iter
    (fun { property; network } ->
      Buffer.add_string buf
        (Printf.sprintf "property %s\n" property.Property.name);
      Option.iter
        (fun path -> Buffer.add_string buf (Printf.sprintf "network %s\n" path))
        network;
      Buffer.add_string buf
        (Printf.sprintf "target %d\n" property.Property.target);
      Buffer.add_string buf
        (Printf.sprintf "box %s\n"
           (Regionspec.to_box_string property.Property.region));
      Buffer.add_string buf "end\n\n")
    entries;
  Buffer.contents buf

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (In_channel.input_all ic))

let save path entries =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (print entries))
