type t = Verified | Refuted of Linalg.Vec.t | Timeout | Unknown

let is_solved = function
  | Verified | Refuted _ -> true
  | Timeout | Unknown -> false

let label = function
  | Verified -> "verified"
  | Refuted _ -> "falsified"
  | Timeout -> "timeout"
  | Unknown -> "unknown"

let pp fmt t =
  match t with
  | Refuted x -> Format.fprintf fmt "falsified at %a" Linalg.Vec.pp x
  | Verified | Timeout | Unknown -> Format.pp_print_string fmt (label t)

let agrees a b =
  match (a, b) with
  | Verified, Refuted _ | Refuted _, Verified -> false
  | _ -> true
