open Linalg
open Domains

(* ------------------------------------------------------------------ *)
(* Objective *)

let test_objective_value_definition () =
  Util.repeat ~seed:90 ~count:20 (fun rng _ ->
      let net = Util.small_net rng in
      let k = Rng.int rng net.Nn.Network.output_dim in
      let obj = Optim.Objective.create net ~k in
      let x = Vec.init net.Nn.Network.input_dim (fun _ -> Rng.gaussian rng) in
      let scores = Nn.Network.eval net x in
      let best_other = ref neg_infinity in
      Array.iteri
        (fun j s -> if j <> k && s > !best_other then best_other := s)
        scores;
      Util.check_close ~eps:1e-9 "F = s_k - max_other"
        (scores.(k) -. !best_other)
        (Optim.Objective.value obj x))

let test_objective_sign_matches_classification () =
  Util.repeat ~seed:91 ~count:20 (fun rng _ ->
      let net = Util.small_net rng in
      let x = Vec.init net.Nn.Network.input_dim (fun _ -> Rng.gaussian rng) in
      let predicted = Nn.Network.classify net x in
      let obj = Optim.Objective.create net ~k:predicted in
      Util.check_true "argmax class has F >= 0"
        (Optim.Objective.value obj x >= 0.0))

let test_objective_grad_matches_finite_diff () =
  Util.repeat ~seed:92 ~count:15 (fun rng _ ->
      let net = Util.small_net rng in
      let k = Rng.int rng net.Nn.Network.output_dim in
      let obj = Optim.Objective.create net ~k in
      let x =
        Vec.init net.Nn.Network.input_dim (fun _ ->
            Rng.uniform rng ~lo:(-1.0) ~hi:1.0)
      in
      let g = Optim.Objective.grad obj x in
      let fd =
        Nn.Grad.finite_diff (fun y -> Optim.Objective.value obj y) x ~eps:1e-5
      in
      (* Finite differences can disagree exactly at a runner-up tie or a
         ReLU kink; tolerate by checking closeness of the directional
         derivative along a random direction instead of each component. *)
      let d = Vec.init (Vec.dim x) (fun _ -> Rng.gaussian rng) in
      Util.check_close ~eps:1e-3 "directional derivative" (Vec.dot fd d)
        (Vec.dot g d))

let test_objective_delta_counterexample () =
  let net = Nn.Init.example_2_2 () in
  let obj = Optim.Objective.create net ~k:1 in
  (* At x = 2, F = 6 - 8 = -2: a true counterexample. *)
  Util.check_true "true cex" (Optim.Objective.is_counterexample obj [| 2.0 |]);
  Util.check_true "also a delta cex"
    (Optim.Objective.is_delta_counterexample obj ~delta:0.1 [| 2.0 |]);
  (* At x = 0, F = 1 > 0.1: not even a delta counterexample. *)
  Util.check_true "not a cex"
    (not (Optim.Objective.is_delta_counterexample obj ~delta:0.1 [| 0.0 |]))

let test_objective_rejects_bad_class () =
  let net = Nn.Init.xor () in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Objective.create: class out of range") (fun () ->
      ignore (Optim.Objective.create net ~k:2))

(* ------------------------------------------------------------------ *)
(* PGD *)

let test_pgd_stays_inside () =
  Util.repeat ~seed:93 ~count:20 (fun rng _ ->
      let net = Util.small_net rng in
      let k = Rng.int rng net.Nn.Network.output_dim in
      let obj = Optim.Objective.create net ~k in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let x, v = Optim.Pgd.minimize ~rng obj box in
      Util.check_true "inside region" (Box.contains box x);
      Util.check_close ~eps:1e-9 "reported value is F(x)" (Optim.Objective.value obj x) v)

let test_pgd_finds_known_counterexample () =
  (* Example 2.2 on [-1, 2]: the violating set [x > 5/3] is large, PGD
     must find it. *)
  let net = Nn.Init.example_2_2 () in
  let obj = Optim.Objective.create net ~k:1 in
  let box = Box.create ~lo:[| -1.0 |] ~hi:[| 2.0 |] in
  let rng = Rng.create 94 in
  let x, v = Optim.Pgd.minimize ~rng obj box in
  Util.check_true "found violation" (v <= 0.0);
  Util.check_true "witness misclassified" (Nn.Network.classify net x <> 1)

let test_pgd_beats_center_value () =
  Util.repeat ~seed:95 ~count:20 (fun rng _ ->
      let net = Util.small_net rng in
      let k = Rng.int rng net.Nn.Network.output_dim in
      let obj = Optim.Objective.create net ~k in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let _, v = Optim.Pgd.minimize ~rng obj box in
      Util.check_true "no worse than the center start"
        (v <= Optim.Objective.value obj (Box.center box) +. 1e-9))

let test_pgd_early_stop () =
  let net = Nn.Init.example_2_2 () in
  let obj = Optim.Objective.create net ~k:1 in
  let box = Box.create ~lo:[| -1.0 |] ~hi:[| 2.0 |] in
  let config =
    { Optim.Pgd.default_config with Optim.Pgd.early_stop = Some 0.0 }
  in
  let _, v = Optim.Pgd.minimize ~config ~rng:(Rng.create 96) obj box in
  Util.check_true "stopped at a violation" (v <= 0.0)

let test_pgd_point_region () =
  (* A degenerate region: PGD must return the point itself. *)
  let net = Nn.Init.xor () in
  let obj = Optim.Objective.create net ~k:1 in
  let p = [| 0.4; 0.6 |] in
  let x, v = Optim.Pgd.minimize ~rng:(Rng.create 97) obj (Box.of_point p) in
  Util.check_vec "returns the point" p x;
  Util.check_close ~eps:1e-9 "value at point" (Optim.Objective.value obj p) v

(* ------------------------------------------------------------------ *)
(* FGSM *)

let test_fgsm_stays_inside () =
  Util.repeat ~seed:98 ~count:20 (fun rng _ ->
      let net = Util.small_net rng in
      let k = Rng.int rng net.Nn.Network.output_dim in
      let obj = Optim.Objective.create net ~k in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let x, v = Optim.Fgsm.attack_center obj box in
      Util.check_true "inside" (Box.contains box x);
      Util.check_close ~eps:1e-9 "value" (Optim.Objective.value obj x) v)

let test_fgsm_moves_to_faces () =
  (* On a linear objective FGSM reaches the exact minimizing corner. *)
  let w = Mat.of_rows [| [| 1.0; -1.0 |]; [| 0.0; 0.0 |] |] in
  let net = Nn.Network.create ~input_dim:2 [ Nn.Layer.affine w (Vec.zeros 2) ] in
  let obj = Optim.Objective.create net ~k:0 in
  let box = Box.create ~lo:[| 0.0; 0.0 |] ~hi:[| 1.0; 1.0 |] in
  let x, _ = Optim.Fgsm.attack_center obj box in
  (* F = y0 - y1 = x0 - x1; minimized at (0, 1). *)
  Util.check_vec "exact corner" [| 0.0; 1.0 |] x

(* ------------------------------------------------------------------ *)
(* MI-FGSM *)

let test_mifgsm_stays_inside () =
  Util.repeat ~seed:99 ~count:20 (fun rng _ ->
      let net = Util.small_net rng in
      let k = Rng.int rng net.Nn.Network.output_dim in
      let obj = Optim.Objective.create net ~k in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let x, v = Optim.Mifgsm.attack_center obj box in
      Util.check_true "inside" (Box.contains box x);
      Util.check_close ~eps:1e-9 "value" (Optim.Objective.value obj x) v)

let test_mifgsm_finds_known_counterexample () =
  (* Start where the objective has a slope (F is flat below x = 1, so a
     center start at 0.5 sees zero gradient and stays put — momentum is
     not a global optimizer). *)
  let net = Nn.Init.example_2_2 () in
  let obj = Optim.Objective.create net ~k:1 in
  let box = Box.create ~lo:[| -1.0 |] ~hi:[| 2.0 |] in
  let _, v = Optim.Mifgsm.attack obj box ~from:[| 1.2 |] in
  Util.check_true "found violation" (v <= 0.0)

let test_mifgsm_no_worse_than_start () =
  Util.repeat ~seed:100 ~count:20 (fun rng _ ->
      let net = Util.small_net rng in
      let k = Rng.int rng net.Nn.Network.output_dim in
      let obj = Optim.Objective.create net ~k in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let start = Box.sample rng box in
      let _, v = Optim.Mifgsm.attack obj box ~from:start in
      Util.check_true "no worse than start"
        (v <= Optim.Objective.value obj start +. 1e-9))

let () =
  Alcotest.run "optim"
    [
      ( "objective",
        [
          Util.case "value definition" test_objective_value_definition;
          Util.case "sign matches classification" test_objective_sign_matches_classification;
          Util.case "gradient vs finite diff" test_objective_grad_matches_finite_diff;
          Util.case "delta counterexamples" test_objective_delta_counterexample;
          Util.case "rejects bad class" test_objective_rejects_bad_class;
        ] );
      ( "pgd",
        [
          Util.case "stays inside region" test_pgd_stays_inside;
          Util.case "finds known counterexample" test_pgd_finds_known_counterexample;
          Util.case "beats center value" test_pgd_beats_center_value;
          Util.case "early stop" test_pgd_early_stop;
          Util.case "degenerate region" test_pgd_point_region;
        ] );
      ( "fgsm",
        [
          Util.case "stays inside region" test_fgsm_stays_inside;
          Util.case "reaches minimizing corner" test_fgsm_moves_to_faces;
        ] );
      ( "mifgsm",
        [
          Util.case "stays inside region" test_mifgsm_stays_inside;
          Util.case "finds known counterexample" test_mifgsm_finds_known_counterexample;
          Util.case "no worse than start" test_mifgsm_no_worse_than_start;
        ] );
    ]
