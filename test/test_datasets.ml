open Linalg
open Domains

(* ------------------------------------------------------------------ *)
(* Synthetic images *)

let test_prototype_ranges () =
  List.iter
    (fun spec ->
      for label = 0 to spec.Datasets.Synth_images.classes - 1 do
        let p = Datasets.Synth_images.prototype spec label in
        Alcotest.(check int) "dimension"
          (Nn.Shape.size spec.Datasets.Synth_images.shape)
          (Vec.dim p);
        Array.iter
          (fun v -> Util.check_true "pixel in [0.1, 0.9]" (v >= 0.1 && v <= 0.9))
          p
      done)
    [ Datasets.Synth_images.tiny; Datasets.Synth_images.mnist_like;
      Datasets.Synth_images.cifar_like ]

let test_prototypes_distinct () =
  let spec = Datasets.Synth_images.mnist_like in
  for a = 0 to spec.Datasets.Synth_images.classes - 1 do
    for b = a + 1 to spec.Datasets.Synth_images.classes - 1 do
      let pa = Datasets.Synth_images.prototype spec a in
      let pb = Datasets.Synth_images.prototype spec b in
      Util.check_true "classes distinguishable" (Vec.dist2 pa pb > 0.3)
    done
  done

let test_prototype_deterministic () =
  let spec = Datasets.Synth_images.tiny in
  Util.check_vec ~eps:0.0 "stable across calls"
    (Datasets.Synth_images.prototype spec 1)
    (Datasets.Synth_images.prototype spec 1)

let test_samples_clipped () =
  let rng = Rng.create 160 in
  let spec = Datasets.Synth_images.mnist_like in
  for _ = 1 to 50 do
    let x = Datasets.Synth_images.sample rng spec (Rng.int rng 10) in
    Array.iter
      (fun v -> Util.check_true "pixel in [0,1]" (v >= 0.0 && v <= 1.0))
      x
  done

let test_dataset_balanced () =
  let rng = Rng.create 161 in
  let spec = Datasets.Synth_images.tiny in
  let data = Datasets.Synth_images.dataset rng spec ~per_class:7 in
  Alcotest.(check int) "size" 21 (Array.length data);
  let counts = Array.make 3 0 in
  Array.iter
    (fun s -> counts.(s.Nn.Train.label) <- counts.(s.Nn.Train.label) + 1)
    data;
  Alcotest.(check (array int)) "balanced" [| 7; 7; 7 |] counts

(* ------------------------------------------------------------------ *)
(* ACAS substrate *)

let test_acas_oracle_advisories_valid () =
  let rng = Rng.create 162 in
  for _ = 1 to 500 do
    let x = Vec.init Datasets.Acas.num_inputs (fun _ -> Rng.float rng 1.0) in
    let a = Datasets.Acas.oracle x in
    Util.check_true "valid advisory" (a >= 0 && a < Datasets.Acas.num_advisories);
    ignore (Datasets.Acas.advisory_name a)
  done

let test_acas_oracle_geometry () =
  (* Far-away traffic is clear of conflict. *)
  Alcotest.(check int) "far traffic" 0
    (Datasets.Acas.oracle [| 1.0; 0.5; 0.5; 0.5; 0.5 |]);
  (* Close, fast, head-on traffic on the right demands a strong left turn. *)
  Alcotest.(check int) "close traffic turns strongly" 2
    (Datasets.Acas.oracle [| 0.0; 0.9; 0.5; 1.0; 1.0 |]);
  (* Same situation with the intruder on the left turns right. *)
  Alcotest.(check int) "mirrored" 4
    (Datasets.Acas.oracle [| 0.0; 0.1; 0.5; 1.0; 1.0 |])

let test_acas_network_learns_oracle () =
  let rng = Rng.create 163 in
  let net = Datasets.Acas.network rng ~hidden:[ 12; 12 ] in
  let test = Datasets.Acas.dataset (Rng.create 164) ~n:500 in
  Util.check_true "fits the advisory function" (Nn.Train.accuracy net test > 0.85)

let test_acas_training_properties () =
  let rng = Rng.create 165 in
  let net = Datasets.Acas.network rng ~hidden:[ 12; 12 ] in
  let props = Datasets.Acas.training_properties rng net ~n:12 ~radius:0.05 in
  Alcotest.(check int) "twelve properties" 12 (List.length props);
  List.iter
    (fun (p : Common.Property.t) ->
      (* Each property is centred where the network already agrees, so
         its center never violates it. *)
      let c = Box.center p.Common.Property.region in
      Util.check_true "center satisfies" (Common.Property.holds_at net p c);
      Util.check_close ~eps:1e-9 "radius as requested" 0.1
        (Box.width p.Common.Property.region 0))
    props

(* ------------------------------------------------------------------ *)
(* Brightening attacks *)

let test_brightening_region_shape () =
  let x = [| 0.2; 0.8; 0.95; 0.5 |] in
  let region = Datasets.Brightening.region x ~tau:0.7 ~severity:1.0 in
  (* Pixels below tau are frozen; others may brighten to 1. *)
  Util.check_vec "lo is the image" x region.Box.lo;
  Util.check_vec "hi brightens >= tau pixels" [| 0.2; 1.0; 1.0; 0.5 |]
    region.Box.hi

let test_brightening_severity_scales () =
  let x = [| 0.8 |] in
  let half = Datasets.Brightening.region x ~tau:0.5 ~severity:0.5 in
  Util.check_close ~eps:1e-12 "half brightening" 0.9 half.Box.hi.(0);
  let zero = Datasets.Brightening.region x ~tau:0.5 ~severity:0.0 in
  Util.check_close ~eps:1e-12 "no brightening" 0.8 zero.Box.hi.(0)

let test_brightening_rejects_bad_severity () =
  Alcotest.check_raises "severity > 1"
    (Invalid_argument "Brightening.region: severity must be in [0, 1]")
    (fun () ->
      ignore (Datasets.Brightening.region [| 0.5 |] ~tau:0.5 ~severity:1.5))

let test_brightening_property_targets_own_class () =
  let rng = Rng.create 166 in
  let net = Util.random_dense rng [ 4; 8; 3 ] in
  let x = Vec.init 4 (fun _ -> Rng.float rng 1.0) in
  let p = Datasets.Brightening.property net x ~tau:0.6 ~severity:0.5 in
  Alcotest.(check int) "target = classification" (Nn.Network.classify net x)
    p.Common.Property.target;
  Util.check_true "image in region" (Box.contains p.Common.Property.region x)

(* ------------------------------------------------------------------ *)
(* Suite *)

let test_suite_catalog () =
  Alcotest.(check int) "seven networks" 7 (List.length Datasets.Suite.network_names);
  Util.check_true "has the conv net"
    (List.mem "conv-lenet" Datasets.Suite.network_names)

let test_suite_network_trains () =
  let entry = Datasets.Suite.build_network ~seed:7 "mnist-3x100" in
  Util.check_true "accurate" (entry.Datasets.Suite.test_accuracy > 0.9);
  Util.check_true "dense" (not entry.Datasets.Suite.convolutional);
  Alcotest.(check int) "input dim" 100 entry.Datasets.Suite.net.Nn.Network.input_dim

let test_suite_build_deterministic () =
  let a = Datasets.Suite.build_network ~seed:7 "cifar-3x100" in
  let b = Datasets.Suite.build_network ~seed:7 "cifar-3x100" in
  let x = Vec.create 192 0.5 in
  Util.check_vec ~eps:0.0 "same trained network"
    (Nn.Network.eval a.Datasets.Suite.net x)
    (Nn.Network.eval b.Datasets.Suite.net x)

let test_suite_properties_well_formed () =
  let entry = Datasets.Suite.build_network ~seed:7 "mnist-3x100" in
  let props = Datasets.Suite.properties ~seed:7 entry ~count:12 in
  Alcotest.(check int) "count" 12 (List.length props);
  List.iter
    (fun (p : Common.Property.t) ->
      Alcotest.(check int) "region dimension" 100 (Box.dim p.Common.Property.region);
      Util.check_true "target valid"
        (p.Common.Property.target >= 0 && p.Common.Property.target < 10);
      (* The unperturbed image (the region's low corner) must satisfy
         the property by construction. *)
      Util.check_true "base image satisfies"
        (Common.Property.holds_at entry.Datasets.Suite.net p
           p.Common.Property.region.Box.lo))
    props

let test_suite_cache_roundtrip () =
  let dir = Filename.temp_file "charon_cache" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let a = Datasets.Suite.build ~cache_dir:dir ~seed:7 () in
      let b = Datasets.Suite.build ~cache_dir:dir ~seed:7 () in
      List.iter2
        (fun (ea : Datasets.Suite.entry) (eb : Datasets.Suite.entry) ->
          let x = Vec.create ea.Datasets.Suite.net.Nn.Network.input_dim 0.4 in
          Util.check_vec ~eps:0.0
            ("cached network matches: " ^ ea.Datasets.Suite.name)
            (Nn.Network.eval ea.Datasets.Suite.net x)
            (Nn.Network.eval eb.Datasets.Suite.net x))
        a b)

let () =
  Alcotest.run "datasets"
    [
      ( "synth-images",
        [
          Util.case "prototype ranges" test_prototype_ranges;
          Util.case "prototypes distinct" test_prototypes_distinct;
          Util.case "prototype deterministic" test_prototype_deterministic;
          Util.case "samples clipped" test_samples_clipped;
          Util.case "dataset balanced" test_dataset_balanced;
        ] );
      ( "acas",
        [
          Util.case "oracle advisories valid" test_acas_oracle_advisories_valid;
          Util.case "oracle geometry" test_acas_oracle_geometry;
          Util.case "network learns oracle" test_acas_network_learns_oracle;
          Util.case "training properties" test_acas_training_properties;
        ] );
      ( "brightening",
        [
          Util.case "region shape" test_brightening_region_shape;
          Util.case "severity scaling" test_brightening_severity_scales;
          Util.case "rejects bad severity" test_brightening_rejects_bad_severity;
          Util.case "targets own class" test_brightening_property_targets_own_class;
        ] );
      ( "suite",
        [
          Util.case "catalog" test_suite_catalog;
          Util.case "network trains" test_suite_network_trains;
          Util.case "build deterministic" test_suite_build_deterministic;
          Util.case "properties well-formed" test_suite_properties_well_formed;
          Util.slow_case "cache roundtrip" test_suite_cache_roundtrip;
        ] );
    ]
