open Linalg
open Domains

let unit_box dim = Box.create ~lo:(Vec.zeros dim) ~hi:(Vec.create dim 1.0)

let default_policy = Charon.Policy.default

let run ?budget ?config ~seed net prop =
  Charon.Verify.run ?budget ?config ~rng:(Rng.create seed) ~policy:default_policy
    net prop

(* ------------------------------------------------------------------ *)
(* Features and selection *)

let feature_input ~seed =
  let rng = Rng.create seed in
  let net = Util.small_net rng in
  let region = Util.small_box rng net.Nn.Network.input_dim in
  let xstar = Box.sample rng region in
  let obj = Optim.Objective.create net ~k:0 in
  {
    Charon.Features.net;
    region;
    target = 0;
    xstar;
    fstar = Optim.Objective.value obj xstar;
  }

let test_features_shape_and_range () =
  for seed = 1 to 20 do
    let input = feature_input ~seed in
    let f = Charon.Features.compute input in
    Alcotest.(check int) "dimension" Charon.Features.dim (Vec.dim f);
    Util.check_close ~eps:0.0 "bias feature" 1.0 f.(Charon.Features.dim - 1);
    Array.iter
      (fun v ->
        Util.check_true "bounded features" (v >= -1.0 && v <= 1.0))
      f
  done

let test_select_clip () =
  Util.check_close ~eps:0.0 "below" 0.0 (Charon.Select.clip01 (-3.0));
  Util.check_close ~eps:0.0 "above" 1.0 (Charon.Select.clip01 7.0);
  Util.check_close ~eps:0.0 "inside" 0.4 (Charon.Select.clip01 0.4)

let test_select_domain_mapping () =
  let d v = Charon.Select.domain_of_vector v in
  Util.check_true "low first coord = interval"
    (Domain.equal (d [| 0.0; 0.0 |]) Domain.interval);
  Util.check_true "high first coord = zonotope"
    (Domain.equal (d [| 1.0; 0.0 |]) Domain.zonotope);
  Util.check_true "mid second coord = 2 disjuncts"
    (Domain.equal (d [| 1.0; 0.5 |]) (Domain.powerset Domain.Zonotope_base 2));
  Util.check_true "high second coord = 4 disjuncts"
    (Domain.equal (d [| 0.0; 1.0 |]) (Domain.powerset Domain.Interval_base 4))

let test_select_partition_in_region () =
  for seed = 1 to 20 do
    let input = feature_input ~seed in
    let rng = Rng.create (seed * 31) in
    let v = Vec.init Charon.Select.partition_dim (fun _ -> Rng.gaussian rng) in
    let dim, at = Charon.Select.partition_of_vector input v in
    let region = input.Charon.Features.region in
    Util.check_true "valid dimension" (dim >= 0 && dim < Box.dim region);
    (* The split point may be requested anywhere; Box.split clamps, so
       the resulting halves are always valid. *)
    let l, r = Box.split region ~dim ~at in
    Util.check_true "halves shrink"
      (Box.diameter l < Box.diameter region && Box.diameter r < Box.diameter region)
  done

(* ------------------------------------------------------------------ *)
(* Policy *)

let test_policy_vector_roundtrip () =
  let rng = Rng.create 140 in
  let v = Vec.init Charon.Policy.num_params (fun _ -> Rng.gaussian rng) in
  match Charon.Policy.to_vector (Charon.Policy.of_vector v) with
  | Some v' -> Util.check_vec ~eps:0.0 "roundtrip" v v'
  | None -> Alcotest.fail "linear policy must expose parameters"

let test_policy_file_roundtrip () =
  let rng = Rng.create 141 in
  let v = Vec.init Charon.Policy.num_params (fun _ -> Rng.gaussian rng) in
  let policy = Charon.Policy.of_vector v in
  let path = Filename.temp_file "charon_policy" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Charon.Policy.save path policy;
      match Charon.Policy.to_vector (Charon.Policy.load path) with
      | Some v' -> Util.check_vec ~eps:0.0 "file roundtrip" v v'
      | None -> Alcotest.fail "expected linear policy")

let test_policy_custom_not_serializable () =
  Alcotest.check_raises "hand-written policies have no parameters"
    (Invalid_argument "Policy.save: cannot persist a hand-written policy")
    (fun () -> Charon.Policy.save "/dev/null" Charon.Policy.default)

let test_policy_decisions_well_formed () =
  for seed = 1 to 20 do
    let input = feature_input ~seed in
    let rng = Rng.create (seed * 77) in
    let v = Vec.init Charon.Policy.num_params (fun _ -> Rng.gaussian rng) in
    let policy = Charon.Policy.of_vector v in
    let spec = Charon.Policy.choose_domain policy input in
    Util.check_true "sane disjunct count"
      (spec.Domain.disjuncts >= 1 && spec.Domain.disjuncts <= 4);
    let dim, _ = Charon.Policy.choose_split policy input in
    Util.check_true "dim in range"
      (dim >= 0 && dim < Box.dim input.Charon.Features.region)
  done

(* ------------------------------------------------------------------ *)
(* Verify: paper examples *)

let test_verify_xor () =
  let net = Nn.Init.xor () in
  let region = Box.create ~lo:[| 0.3; 0.3 |] ~hi:[| 0.7; 0.7 |] in
  let good = Common.Property.create ~region ~target:1 () in
  let report = run ~seed:1 net good in
  Util.check_true "verified" (report.Charon.Verify.outcome = Common.Outcome.Verified);
  let bad = Common.Property.create ~region ~target:0 () in
  match (run ~seed:1 net bad).Charon.Verify.outcome with
  | Common.Outcome.Refuted x ->
      Util.check_true "witness in region" (Box.contains region x)
  | _ -> Alcotest.fail "expected refutation"

let test_verify_example_2_2 () =
  let net = Nn.Init.example_2_2 () in
  let robust =
    Common.Property.create ~region:(Box.create ~lo:[| -1.0 |] ~hi:[| 1.0 |]) ~target:1 ()
  in
  Util.check_true "robust interval verified"
    ((run ~seed:2 net robust).Charon.Verify.outcome = Common.Outcome.Verified);
  let fragile =
    Common.Property.create ~region:(Box.create ~lo:[| -1.0 |] ~hi:[| 2.0 |]) ~target:1 ()
  in
  match (run ~seed:2 net fragile).Charon.Verify.outcome with
  | Common.Outcome.Refuted _ -> ()
  | _ -> Alcotest.fail "expected refutation"

let test_verify_example_2_3 () =
  let net = Nn.Init.example_2_3 () in
  let prop = Common.Property.create ~region:(unit_box 2) ~target:1 () in
  Util.check_true "verified"
    ((run ~seed:3 net prop).Charon.Verify.outcome = Common.Outcome.Verified)

(* ------------------------------------------------------------------ *)
(* Verify: soundness and delta-completeness on random problems
   (Theorems 5.2 and 5.4 as executable properties) *)

let test_verify_soundness_and_delta_completeness () =
  Util.repeat ~seed:142 ~count:40 (fun rng i ->
      let net = Util.small_net rng in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let k = Rng.int rng net.Nn.Network.output_dim in
      let prop = Common.Property.create ~region:box ~target:k () in
      let delta = 1e-4 in
      let report =
        run ~seed:i ~budget:(Common.Budget.of_steps 20_000) net prop
      in
      match report.Charon.Verify.outcome with
      | Common.Outcome.Verified ->
          (* Soundness: no sampled point violates the property. *)
          (match Common.Property.check_samples rng net prop ~n:500 with
          | None -> ()
          | Some x ->
              Alcotest.failf "unsound! verified but %s violates"
                (Format.asprintf "%a" Vec.pp x))
      | Common.Outcome.Refuted x ->
          (* Delta-completeness: the witness is a delta-counterexample. *)
          Util.check_true "witness in region" (Box.contains box x);
          Util.check_true "witness is a delta-cex"
            (Optim.Objective.is_delta_counterexample
               (Optim.Objective.create net ~k)
               ~delta x)
      | Common.Outcome.Timeout -> ()
      | Common.Outcome.Unknown ->
          (* Precision limit (depth cap or zero-width region): allowed,
             it just must never masquerade as a verdict. *)
          ())

let test_verify_terminates_with_budget () =
  (* Termination in practice: a generous step budget always ends the
     recursion on tiny problems (Theorem 5.2's guarantee needs finite
     diameter and delta > 0, both true here). *)
  Util.repeat ~seed:143 ~count:10 (fun rng i ->
      let net = Util.small_net rng in
      let box = Box.of_center_radius (Vec.zeros net.Nn.Network.input_dim) 0.05 in
      let k = Rng.int rng net.Nn.Network.output_dim in
      let prop = Common.Property.create ~region:box ~target:k () in
      let report = run ~seed:i net prop in
      Util.check_true "no timeout on tiny regions"
        (report.Charon.Verify.outcome <> Common.Outcome.Timeout))

let test_verify_respects_step_budget () =
  let rng = Rng.create 144 in
  let net = Util.random_dense rng [ 6; 16; 16; 3 ] in
  let prop = Common.Property.create ~region:(unit_box 6) ~target:0 () in
  let budget = Common.Budget.of_steps 5 in
  let report = run ~budget ~seed:9 net prop in
  match report.Charon.Verify.outcome with
  | Common.Outcome.Timeout -> Util.check_true "few nodes" (report.Charon.Verify.nodes <= 10)
  | _ -> ()

let test_verify_no_cex_search_still_sound () =
  let config =
    { Charon.Verify.default_config with Charon.Verify.use_cex_search = false }
  in
  Util.repeat ~seed:145 ~count:15 (fun rng i ->
      let net = Util.small_net rng in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let k = Rng.int rng net.Nn.Network.output_dim in
      let prop = Common.Property.create ~region:box ~target:k () in
      let report =
        run ~config ~seed:i ~budget:(Common.Budget.of_steps 20_000) net prop
      in
      match report.Charon.Verify.outcome with
      | Common.Outcome.Verified ->
          Util.check_true "sound without PGD"
            (Common.Property.check_samples rng net prop ~n:300 = None)
      | Common.Outcome.Refuted x ->
          Util.check_true "delta cex without PGD"
            (Optim.Objective.is_delta_counterexample
               (Optim.Objective.create net ~k)
               ~delta:1e-4 x)
      | Common.Outcome.Timeout -> ()
      | Common.Outcome.Unknown -> ());
  (* And the ablation must not call PGD at all. *)
  let rng = Rng.create 146 in
  let net = Util.small_net rng in
  let prop =
    Common.Property.create
      ~region:(Util.small_box rng net.Nn.Network.input_dim)
      ~target:0 ()
  in
  let report = run ~config ~seed:10 net prop in
  Alcotest.(check int) "no pgd calls" 0 report.Charon.Verify.pgd_calls

let test_verify_best_first_agrees () =
  (* The refinement strategy must not change verdicts, only order. *)
  let config =
    { Charon.Verify.default_config with
      Charon.Verify.strategy = Charon.Verify.Best_first }
  in
  Util.repeat ~seed:147 ~count:15 (fun rng i ->
      let net = Util.small_net rng in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let k = Rng.int rng net.Nn.Network.output_dim in
      let prop = Common.Property.create ~region:box ~target:k () in
      let budget () = Common.Budget.of_steps 20_000 in
      let dfs = (run ~seed:i ~budget:(budget ()) net prop).Charon.Verify.outcome in
      let bfs =
        (run ~config ~seed:i ~budget:(budget ()) net prop).Charon.Verify.outcome
      in
      Util.check_true
        (Printf.sprintf "strategies agree (%s vs %s)" (Common.Outcome.label dfs)
           (Common.Outcome.label bfs))
        (Common.Outcome.agrees dfs bfs);
      (* Best-first refutations are still delta-counterexamples. *)
      match bfs with
      | Common.Outcome.Refuted x ->
          Util.check_true "delta cex"
            (Optim.Objective.is_delta_counterexample
               (Optim.Objective.create net ~k)
               ~delta:1e-4 x)
      | _ -> ())

let test_verify_rejects_nonpositive_delta () =
  let net = Nn.Init.xor () in
  let prop = Common.Property.create ~region:(unit_box 2) ~target:1 () in
  let config = { Charon.Verify.default_config with Charon.Verify.delta = 0.0 } in
  Alcotest.check_raises "delta must be positive"
    (Invalid_argument "Verify.run: delta must be positive") (fun () ->
      ignore (run ~config ~seed:1 net prop))

let test_verify_depth_cap_answers_unknown () =
  (* Regression: hitting max_depth used to be reported as Timeout, but
     it is a precision limit — budget to spare, we just refuse to
     refine further — so the answer must be Unknown, same as the
     zero-width-dimension branch. *)
  let net = Nn.Init.dense (Rng.create 11) ~layer_sizes:[ 3; 24; 24; 3 ] in
  let center = [| 0.2; -0.4; 0.6 |] in
  let region = Box.of_center_radius center 0.55 in
  let prop =
    Common.Property.create ~region ~target:(Nn.Network.classify net center) ()
  in
  (* Provable with splitting (about 400 nodes), but never at the root:
     with the cap at 0 the first split already overruns it. *)
  let config = { Charon.Verify.default_config with Charon.Verify.max_depth = 0 } in
  let report = run ~config ~seed:5 net prop in
  (match report.Charon.Verify.outcome with
  | Common.Outcome.Unknown -> ()
  | o ->
      Alcotest.failf "expected unknown at the depth cap, got %s"
        (Common.Outcome.label o));
  (* The generous default budget rules out a genuine timeout. *)
  Util.check_true "budget not exhausted" (report.Charon.Verify.nodes < 100)

let test_verify_settle_keeps_refutation () =
  (* Regression for the parallel settle race: a worker that exhausts
     the step budget settles Timeout while another worker is still
     probing a refutable corner.  The counterexample, once found, must
     win — so whenever the refuted-regions counter moved, the run's
     outcome has to be Refuted, never the raced Timeout/Unknown.  The
     telemetry counter is the oracle for "a refutation was found". *)
  let c_refuted = Telemetry.Metrics.counter "verify.refuted_regions" in
  let config =
    { Charon.Verify.default_config with Charon.Verify.use_cex_search = false }
  in
  Telemetry.enable ();
  Fun.protect ~finally:Telemetry.disable (fun () ->
      let refuted_runs = ref 0 in
      Util.repeat ~seed:148 ~count:12 (fun rng i ->
          let net = Util.small_net rng in
          let box = Util.small_box rng net.Nn.Network.input_dim in
          let k = Rng.int rng net.Nn.Network.output_dim in
          let prop = Common.Property.create ~region:box ~target:k () in
          let before = Telemetry.Metrics.value c_refuted in
          let report =
            Charon.Verify.run ~config ~workers:4
              ~budget:(Common.Budget.of_steps 2_000)
              ~rng:(Rng.create i) ~policy:default_policy net prop
          in
          let found = Telemetry.Metrics.value c_refuted - before in
          if found > 0 then begin
            incr refuted_runs;
            match report.Charon.Verify.outcome with
            | Common.Outcome.Refuted _ -> ()
            | o ->
                Alcotest.failf
                  "settle dropped a found counterexample: %d refuted \
                   region(s) but outcome %s"
                  found (Common.Outcome.label o)
          end);
      (* The oracle must actually fire, or this test checks nothing. *)
      Util.check_true "at least one run found a counterexample"
        (!refuted_runs > 0))

let test_verify_report_counters () =
  let net = Nn.Init.xor () in
  let region = Box.create ~lo:[| 0.3; 0.3 |] ~hi:[| 0.7; 0.7 |] in
  let prop = Common.Property.create ~region ~target:1 () in
  let report = run ~seed:4 net prop in
  Util.check_true "nodes >= 1" (report.Charon.Verify.nodes >= 1);
  Util.check_true "analyze calls >= 1" (report.Charon.Verify.analyze_calls >= 1);
  Util.check_true "pgd calls >= 1" (report.Charon.Verify.pgd_calls >= 1);
  Util.check_true "domains recorded" (report.Charon.Verify.domains_used <> []);
  Util.check_true "transformer calls counted"
    (report.Charon.Verify.transformer_calls >= Nn.Network.num_layers net)

(* ------------------------------------------------------------------ *)
(* Learn *)

let tiny_problems ~seed =
  let rng = Rng.create seed in
  let net = Util.random_dense rng [ 2; 6; 2 ] in
  List.init 4 (fun i ->
      let c = [| 0.2 +. (0.2 *. float_of_int i); 0.5 |] in
      let region = Box.of_center_radius c 0.08 in
      let target = Nn.Network.classify net c in
      { Charon.Learn.net; property = Common.Property.create ~region ~target () })

let fast_learn_config =
  {
    Charon.Learn.default_config with
    Charon.Learn.per_problem = Charon.Learn.Steps 400;
    bopt =
      {
        Bayesopt.Bopt.default_config with
        Bayesopt.Bopt.init_samples = 4;
        iterations = 4;
        candidates = 64;
        local_candidates = 16;
      };
  }

let test_learn_returns_linear_policy () =
  let result =
    Charon.Learn.train ~config:fast_learn_config ~rng:(Rng.create 150)
      (tiny_problems ~seed:150)
  in
  Util.check_true "linear policy"
    (Charon.Policy.to_vector result.Charon.Learn.policy <> None);
  Alcotest.(check int) "evaluation count" 8 result.Charon.Learn.evaluations

let test_learn_cost_deterministic () =
  let problems = tiny_problems ~seed:151 in
  let policy = Charon.Policy.of_vector (Vec.create Charon.Policy.num_params 0.1) in
  let c1 = Charon.Learn.cost fast_learn_config ~seed:5 problems policy in
  let c2 = Charon.Learn.cost fast_learn_config ~seed:5 problems policy in
  Util.check_close ~eps:0.0 "deterministic" c1 c2

let test_learn_best_score_is_best_in_history () =
  let result =
    Charon.Learn.train ~config:fast_learn_config ~rng:(Rng.create 152)
      (tiny_problems ~seed:152)
  in
  List.iter
    (fun (e : Bayesopt.Bopt.evaluation) ->
      Util.check_true "best dominates history"
        (result.Charon.Learn.best_score >= e.Bayesopt.Bopt.value))
    result.Charon.Learn.bopt.Bayesopt.Bopt.history

let () =
  Alcotest.run "charon"
    [
      ( "features-select",
        [
          Util.case "feature vector shape" test_features_shape_and_range;
          Util.case "clip01" test_select_clip;
          Util.case "domain selection mapping" test_select_domain_mapping;
          Util.case "partition stays in region" test_select_partition_in_region;
        ] );
      ( "policy",
        [
          Util.case "vector roundtrip" test_policy_vector_roundtrip;
          Util.case "file roundtrip" test_policy_file_roundtrip;
          Util.case "custom not serializable" test_policy_custom_not_serializable;
          Util.case "decisions well-formed" test_policy_decisions_well_formed;
        ] );
      ( "verify-examples",
        [
          Util.case "xor both ways" test_verify_xor;
          Util.case "example 2.2 both ways" test_verify_example_2_2;
          Util.case "example 2.3" test_verify_example_2_3;
        ] );
      ( "verify-theorems",
        [
          Util.case "soundness and delta-completeness"
            test_verify_soundness_and_delta_completeness;
          Util.case "terminates on tiny regions" test_verify_terminates_with_budget;
          Util.case "respects step budget" test_verify_respects_step_budget;
          Util.case "sound without cex search" test_verify_no_cex_search_still_sound;
          Util.case "best-first agrees with depth-first" test_verify_best_first_agrees;
          Util.case "rejects nonpositive delta" test_verify_rejects_nonpositive_delta;
          Util.case "depth cap answers unknown" test_verify_depth_cap_answers_unknown;
          Util.case "parallel settle keeps refutations"
            test_verify_settle_keeps_refutation;
          Util.case "report counters" test_verify_report_counters;
        ] );
      ( "learn",
        [
          Util.case "returns linear policy" test_learn_returns_linear_policy;
          Util.case "cost deterministic" test_learn_cost_deterministic;
          Util.case "best dominates history" test_learn_best_score_is_best_in_history;
        ] );
    ]
