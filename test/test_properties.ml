(* QCheck property-based tests over the core data structures and the
   key soundness invariants, with shrinking generators (complementing
   the seeded-loop style checks in the other suites). *)

open Linalg
open Domains
open QCheck2

(* ------------------------------------------------------------------ *)
(* Generators *)

let finite_float = Gen.float_range (-100.0) 100.0

let vec_gen dim = Gen.array_size (Gen.return dim) finite_float

let sized_vec_gen = Gen.(2 -- 5 >>= fun d -> vec_gen d)

let box_gen dim =
  Gen.map2
    (fun lo deltas ->
      let hi = Array.mapi (fun i d -> lo.(i) +. (1e-3 +. abs_float d)) deltas in
      Box.create ~lo ~hi)
    (Gen.array_size (Gen.return dim) (Gen.float_range (-2.0) 2.0))
    (Gen.array_size (Gen.return dim) (Gen.float_range 0.0 1.5))

(* A small random ReLU network together with an input box and a target
   class, seeded through our own deterministic generator so shapes and
   weights shrink together. *)
let problem_gen =
  Gen.map2
    (fun seed dim ->
      let rng = Rng.create seed in
      let hidden = 3 + Rng.int rng 4 in
      let classes = 2 + Rng.int rng 2 in
      let net = Nn.Init.dense rng ~layer_sizes:[ dim; hidden; classes ] in
      let center = Vec.init dim (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
      let box = Box.of_center_radius center (0.05 +. Rng.float rng 0.4) in
      (net, box, Rng.int rng classes))
    (Gen.int_range 0 1_000_000) (Gen.int_range 2 4)

let qtest name ?(count = 100) gen prop =
  QCheck_alcotest.to_alcotest (Test.make ~name ~count gen prop)

(* ------------------------------------------------------------------ *)
(* Vector algebra laws *)

let vec_pair_gen = Gen.(2 -- 5 >>= fun d -> pair (vec_gen d) (vec_gen d))

let prop_add_commutative =
  qtest "vec add commutes" vec_pair_gen (fun (a, b) ->
      Vec.approx_equal (Vec.add a b) (Vec.add b a))

let prop_dot_symmetric =
  qtest "dot symmetric" vec_pair_gen (fun (a, b) ->
      abs_float (Vec.dot a b -. Vec.dot b a) < 1e-9)

let prop_triangle_inequality =
  qtest "triangle inequality" vec_pair_gen (fun (a, b) ->
      Vec.norm2 (Vec.add a b) <= Vec.norm2 a +. Vec.norm2 b +. 1e-9)

let prop_cauchy_schwarz =
  qtest "cauchy-schwarz" vec_pair_gen (fun (a, b) ->
      abs_float (Vec.dot a b) <= (Vec.norm2 a *. Vec.norm2 b) +. 1e-6)

let prop_relu_idempotent =
  qtest "relu idempotent" sized_vec_gen (fun v ->
      Vec.approx_equal (Vec.relu v) (Vec.relu (Vec.relu v)))

let prop_argmax_is_max =
  qtest "argmax picks the max" sized_vec_gen (fun v ->
      v.(Vec.argmax v) = Vec.max v)

(* ------------------------------------------------------------------ *)
(* Box laws *)

let prop_box_center_inside =
  qtest "box center inside"
    Gen.(2 -- 5 >>= box_gen)
    (fun b -> Box.contains b (Box.center b))

let prop_box_clamp_fixpoint =
  qtest "clamp is a projection"
    Gen.(2 -- 4 >>= fun d -> pair (box_gen d) (vec_gen d))
    (fun (b, x) ->
      let c = Box.clamp b x in
      Box.contains b c && Vec.approx_equal c (Box.clamp b c))

let prop_box_hull_contains =
  qtest "hull contains both boxes"
    Gen.(2 -- 4 >>= fun d -> pair (box_gen d) (box_gen d))
    (fun (a, b) ->
      let h = Box.hull a b in
      Box.contains h (Box.center a) && Box.contains h (Box.center b)
      && Box.contains h a.Box.lo && Box.contains h b.Box.hi)

let prop_box_split_diameters =
  qtest "split shrinks diameters (Assumption 1)"
    Gen.(2 -- 4 >>= fun d -> pair (box_gen d) (Gen.float_range 0.0 1.0))
    (fun (b, frac) ->
      let d = Box.longest_dim b in
      let at = b.Box.lo.(d) +. (frac *. Box.width b d) in
      let l, r = Box.split b ~dim:d ~at in
      Box.diameter l < Box.diameter b && Box.diameter r < Box.diameter b)

(* ------------------------------------------------------------------ *)
(* Abstract-domain soundness on generated verification problems *)

let sound_against_samples spec (net, box, _k) =
  let (module D) = Domain.get spec in
  let out = Absint.Analyzer.propagate (module D) net (D.of_box box) in
  let rng = Rng.create 99 in
  let ok = ref true in
  for _ = 1 to 15 do
    let y = Nn.Network.eval net (Box.sample rng box) in
    for i = 0 to net.Nn.Network.output_dim - 1 do
      let lo, hi = D.bounds out i in
      if not (y.(i) >= lo -. 1e-6 && y.(i) <= hi +. 1e-6) then ok := false
    done
  done;
  !ok

let prop_interval_sound =
  qtest "interval domain sound" ~count:60 problem_gen
    (sound_against_samples Domain.interval)

let prop_zonotope_sound =
  qtest "zonotope domain sound" ~count:60 problem_gen
    (sound_against_samples Domain.zonotope)

let prop_symbolic_sound =
  qtest "symbolic domain sound" ~count:60 problem_gen
    (sound_against_samples Domain.symbolic)

let prop_powerset_sound =
  qtest "powerset domain sound" ~count:40 problem_gen
    (sound_against_samples (Domain.powerset Domain.Zonotope_join_base 3))

let prop_symbolic_at_least_interval_linear =
  (* Without ReLU the symbolic forms are exact, so they dominate
     interval propagation.  (Through ReLU the linear lower relaxation
     s*x can locally be weaker than the interval clamp at 0 — the same
     caveat as for DeepZ zonotopes — so domination is only asserted for
     the linear case.) *)
  qtest "symbolic dominates interval on linear nets" ~count:60
    (Gen.map
       (fun seed ->
         let rng = Rng.create seed in
         let d = 2 + Rng.int rng 3 in
         let m = 2 + Rng.int rng 2 in
         let w1 = Mat.init d d (fun _ _ -> Rng.gaussian rng) in
         let w2 = Mat.init m d (fun _ _ -> Rng.gaussian rng) in
         let net =
           Nn.Network.create ~input_dim:d
             [ Nn.Layer.affine w1 (Vec.zeros d);
               Nn.Layer.affine w2 (Vec.zeros m) ]
         in
         let center = Vec.init d (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
         (net, Box.of_center_radius center 0.3, Rng.int rng m))
       (Gen.int_range 0 1_000_000))
    (fun (net, box, k) ->
      let mi = Absint.Analyzer.margin_lower net box ~k Domain.interval in
      let ms = Absint.Analyzer.margin_lower net box ~k Domain.symbolic in
      ms >= mi -. 1e-6)

(* ------------------------------------------------------------------ *)
(* Pqueue: heap behaviour against a sorted-list model under random
   push/pop interleavings (it backs the contended parallel worklist) *)

let pqueue_ops_gen =
  Gen.(list_size (1 -- 80) (pair bool (float_range (-100.0) 100.0)))

let prop_pqueue_matches_model =
  qtest "pqueue matches sorted-list model" ~count:200 pqueue_ops_gen
    (fun ops ->
      let q = Common.Pqueue.create () in
      (* The model is the sorted multiset of pending priorities. *)
      let model = ref [] in
      let ok = ref true in
      let check_peek () =
        match (Common.Pqueue.peek q, !model) with
        | None, [] -> ()
        | Some (p, ()), m :: _ -> if p <> m then ok := false
        | Some _, [] | None, _ :: _ -> ok := false
      in
      List.iter
        (fun (is_pop, priority) ->
          if is_pop then (
            match (Common.Pqueue.pop q, !model) with
            | None, [] -> ()
            | Some (p, ()), m :: rest ->
                if p <> m then ok := false;
                model := rest
            | Some _, [] | None, _ :: _ -> ok := false)
          else begin
            Common.Pqueue.push q ~priority ();
            model := List.merge compare [ priority ] !model
          end;
          check_peek ();
          if Common.Pqueue.size q <> List.length !model then ok := false)
        ops;
      (* Drain what is left: pops must come out exactly as the sorted
         model (min-first ordering = the heap property, observed through
         the API). *)
      List.iter
        (fun m ->
          match Common.Pqueue.pop q with
          | Some (p, ()) -> if p <> m then ok := false
          | None -> ok := false)
        !model;
      !ok && Common.Pqueue.is_empty q)

(* ------------------------------------------------------------------ *)
(* Zonotope meet_halfspace soundness *)

let halfspace_gen =
  Gen.map
    (fun seed ->
      let rng = Rng.create seed in
      let dim = 1 + Rng.int rng 3 in
      let ngens = 1 + Rng.int rng 4 in
      let center = Vec.init dim (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
      let gens =
        Array.init ngens (fun _ ->
            Vec.init dim (fun _ -> 0.5 *. Rng.gaussian rng))
      in
      let z = Zonotope.create ~center ~gens in
      (z, Rng.int rng dim, (if Rng.bool rng then 1.0 else -1.0), seed))
    (Gen.int_range 0 1_000_000)

let prop_meet_halfspace_sound =
  (* Soundness of the constrained-zonotope meet: every concrete point of
     the zonotope that satisfies the half-space must stay inside the
     meet (so concrete execution through a ReLU branch split stays
     inside the branch's abstract value), and the meet never grows
     beyond the original zonotope. *)
  qtest "meet_halfspace sound" ~count:200 halfspace_gen
    (fun (z, i, sign, seed) ->
      let rng = Rng.create (seed + 17) in
      let zb = Zonotope.to_box z in
      match Zonotope.meet_halfspace z ~dim:i ~sign with
      | Some m ->
          let mb = Zonotope.to_box m in
          let inside b (p : Vec.t) =
            let ok = ref true in
            Array.iteri
              (fun j v ->
                if not (v >= b.Box.lo.(j) -. 1e-7 && v <= b.Box.hi.(j) +. 1e-7)
                then ok := false)
              p;
            !ok
          in
          let ok = ref (inside zb (Box.center mb)) in
          for _ = 1 to 40 do
            let p = Zonotope.sample rng z in
            if sign *. p.(i) >= 0.0 && not (inside mb p) then ok := false
          done;
          !ok
      | None ->
          (* Provably empty meet: no sampled point of the zonotope may
             satisfy the half-space. *)
          let ok = ref true in
          for _ = 1 to 40 do
            let p = Zonotope.sample rng z in
            if sign *. p.(i) > 1e-7 then ok := false
          done;
          !ok)

(* ------------------------------------------------------------------ *)
(* Matrix-backed zonotope vs per-row reference transformers

   The zonotope stores its generator set as one matrix so affine maps
   run as a single GEMM.  These properties pin the matrix-backed
   transformers against straightforward per-row reference
   implementations (the representation the domain used before), so a
   kernel or layout bug cannot silently change the abstraction. *)

let ref_norm1 g = Array.fold_left (fun acc x -> acc +. abs_float x) 0.0 g

let ref_prune gens =
  Array.of_list
    (List.filter (fun g -> ref_norm1 g > 1e-300) (Array.to_list gens))

let ref_radii ~dimz ~gens =
  let r = Vec.zeros dimz in
  Array.iter
    (fun g -> Array.iteri (fun i x -> r.(i) <- r.(i) +. abs_float x) g)
    gens;
  r

let ref_affine w b ~center ~gens =
  ( Vec.add (Mat.matvec w center) b,
    ref_prune (Array.map (fun g -> Mat.matvec w g) gens) )

let ref_relu ~center ~gens =
  let d = Vec.dim center in
  let r = ref_radii ~dimz:d ~gens in
  let c = Vec.copy center and gs = Array.map Vec.copy gens in
  let fresh = ref [] in
  for i = 0 to d - 1 do
    let lo = center.(i) -. r.(i) and hi = center.(i) +. r.(i) in
    if hi <= 0.0 then begin
      c.(i) <- 0.0;
      Array.iter (fun g -> g.(i) <- 0.0) gs
    end
    else if lo < 0.0 then begin
      let lambda = hi /. (hi -. lo) in
      let mu = -.lambda *. lo /. 2.0 in
      c.(i) <- (lambda *. c.(i)) +. mu;
      Array.iter (fun g -> g.(i) <- lambda *. g.(i)) gs;
      fresh := (i, mu) :: !fresh
    end
  done;
  (* [fresh] is in descending-dimension order; rev_map restores the
     ascending order in which the implementation appends fresh rows. *)
  let fresh_rows =
    List.rev_map
      (fun (i, mu) ->
        let g = Vec.zeros d in
        g.(i) <- mu;
        g)
      !fresh
  in
  (c, ref_prune (Array.append gs (Array.of_list fresh_rows)))

let ref_order_reduce ~max_gens ~center ~gens =
  let n = Array.length gens in
  if n <= max_gens then (center, gens)
  else begin
    let d = Vec.dim center in
    let keep = Stdlib.max 0 (max_gens - d) in
    let norms = Array.map ref_norm1 gens in
    let order = Array.init n Fun.id in
    Array.sort (fun a b -> Float.compare norms.(b) norms.(a)) order;
    let box_r = Vec.zeros d in
    for k = keep to n - 1 do
      Array.iteri
        (fun i x -> box_r.(i) <- box_r.(i) +. abs_float x)
        gens.(order.(k))
    done;
    let kept = Array.init keep (fun k -> gens.(order.(k))) in
    let extra = ref [] in
    Array.iteri
      (fun i ri ->
        if ri > 0.0 then begin
          let g = Vec.zeros d in
          g.(i) <- ri;
          extra := g :: !extra
        end)
      box_r;
    (center, Array.append kept (Array.of_list (List.rev !extra)))
  end

let same_zonotope (c, gens) z =
  Vec.approx_equal ~eps:1e-9 c (Zonotope.center z)
  &&
  let zg = Zonotope.generators z in
  Array.length gens = Array.length zg
  && Array.for_all Fun.id
       (Array.mapi (fun i g -> Vec.approx_equal ~eps:1e-9 g zg.(i)) gens)

let zono_case_gen =
  Gen.map
    (fun seed ->
      let rng = Rng.create seed in
      let d = 1 + Rng.int rng 4 in
      let ngens = Rng.int rng 7 in
      let center = Vec.init d (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
      let gens =
        Array.init ngens (fun _ ->
            Vec.init d (fun _ -> 0.5 *. Rng.gaussian rng))
      in
      (center, gens, seed))
    (Gen.int_range 0 1_000_000)

let prop_matrix_affine_matches_per_row =
  qtest "matrix affine = per-row affine" ~count:200 zono_case_gen
    (fun (center, gens, seed) ->
      let rng = Rng.create (seed + 1) in
      let d = Vec.dim center in
      let rows = 1 + Rng.int rng 5 in
      let w = Mat.init rows d (fun _ _ -> Rng.gaussian rng) in
      let b = Vec.init rows (fun _ -> Rng.gaussian rng) in
      let z = Zonotope.affine w b (Zonotope.create ~center ~gens) in
      same_zonotope (ref_affine w b ~center ~gens) z)

let prop_matrix_relu_matches_per_row =
  qtest "matrix relu = per-row relu" ~count:200 zono_case_gen
    (fun (center, gens, _) ->
      same_zonotope (ref_relu ~center ~gens)
        (Zonotope.relu (Zonotope.create ~center ~gens)))

let prop_matrix_order_reduce_matches_per_row =
  qtest "matrix order_reduce = per-row order_reduce" ~count:200 zono_case_gen
    (fun (center, gens, seed) ->
      let rng = Rng.create (seed + 2) in
      let max_gens = 1 + Rng.int rng (Array.length gens + 2) in
      same_zonotope
        (ref_order_reduce ~max_gens ~center ~gens)
        (Zonotope.order_reduce (Zonotope.create ~center ~gens) ~max_gens))

(* ------------------------------------------------------------------ *)
(* End-to-end: Algorithm 1 verdicts against ground truth sampling *)

let prop_verify_verdicts_consistent =
  qtest "verify verdicts consistent with sampling" ~count:40 problem_gen
    (fun (net, box, k) ->
      let prop = Common.Property.create ~region:box ~target:k () in
      let report =
        Charon.Verify.run
          ~budget:(Common.Budget.of_steps 5_000)
          ~rng:(Rng.create 7) ~policy:Charon.Policy.default net prop
      in
      match report.Charon.Verify.outcome with
      | Common.Outcome.Verified ->
          Common.Property.check_samples (Rng.create 8) net prop ~n:200 = None
      | Common.Outcome.Refuted x ->
          Box.contains box x
          && Optim.Objective.is_delta_counterexample
               (Optim.Objective.create net ~k)
               ~delta:1e-4 x
      | Common.Outcome.Timeout -> true
      | Common.Outcome.Unknown -> false)

let prop_pgd_never_beats_abstract_lower_bound =
  (* The abstract margin is a lower bound on F; PGD's achieved value can
     never fall below it. *)
  qtest "pgd value >= abstract margin" ~count:60 problem_gen
    (fun (net, box, k) ->
      let margin = Absint.Analyzer.margin_lower net box ~k Domain.zonotope in
      let obj = Optim.Objective.create net ~k in
      let _, v = Optim.Pgd.minimize ~rng:(Rng.create 3) obj box in
      v >= margin -. 1e-6)

let () =
  Alcotest.run "properties"
    [
      ( "vector-laws",
        [
          prop_add_commutative;
          prop_dot_symmetric;
          prop_triangle_inequality;
          prop_cauchy_schwarz;
          prop_relu_idempotent;
          prop_argmax_is_max;
        ] );
      ( "box-laws",
        [
          prop_box_center_inside;
          prop_box_clamp_fixpoint;
          prop_box_hull_contains;
          prop_box_split_diameters;
        ] );
      ("pqueue", [ prop_pqueue_matches_model ]);
      ( "domain-soundness",
        [
          prop_interval_sound;
          prop_zonotope_sound;
          prop_symbolic_sound;
          prop_powerset_sound;
          prop_symbolic_at_least_interval_linear;
          prop_meet_halfspace_sound;
        ] );
      ( "matrix-vs-per-row",
        [
          prop_matrix_affine_matches_per_row;
          prop_matrix_relu_matches_per_row;
          prop_matrix_order_reduce_matches_per_row;
        ] );
      ( "end-to-end",
        [ prop_verify_verdicts_consistent; prop_pgd_never_beats_abstract_lower_bound ] );
    ]
