(* Multi-tenant soak for charon-serve (docs/serving.md): a real TCP
   daemon, three tenants hammering it concurrently with a
   duplicate-heavy workload for a time-boxed window.

   What the soak locks in, beyond what the deterministic lifecycle
   tests already pin:

   - request coalescing fires under real concurrency (identical
     in-flight questions share one run),
   - backpressure: a full run queue answers structured, *retryable*
     busy rejects and the daemon keeps serving,
   - fair share: tenants with equal weights and identical workloads
     see comparable p95 queue ages — no lane starves,
   - the daemon survives the whole storm and shuts down cleanly.

   Time box: CHARON_SOAK_SECONDS (default 3, a smoke run for the tier-1
   suite; the CI soak job runs longer).  CHARON_SOAK_STATS=FILE writes
   the final per-tenant stats JSON for the CI job summary. *)

open Linalg

module J = Telemetry.Jsonw

let soak_seconds =
  match Sys.getenv_opt "CHARON_SOAK_SECONDS" with
  | None -> 3.0
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some x when x > 0.0 -> x
      | _ -> 3.0)

let eps = 0.05

(* The staircase family from test_server.ml: difficulty dials with the
   dimension, the property always holds. *)
let staircase dim =
  let w1 =
    Mat.init (2 * dim) dim (fun r c ->
        if r = c || r - dim = c then 1.0 else 0.0)
  in
  let b1 = Vec.init (2 * dim) (fun r -> if r < dim then 0.0 else -1.0) in
  let w2 =
    Mat.init 2 (2 * dim) (fun r c ->
        if r = 1 then 0.0 else if c < dim then 1.0 else -1.0)
  in
  Nn.Network.create ~input_dim:dim
    [
      Nn.Layer.affine w1 b1;
      Nn.Layer.Relu;
      Nn.Layer.affine w2 [| 0.0; -.eps |];
    ]

let networks = [| Nn.Serial.to_string (staircase 3); Nn.Serial.to_string (staircase 5) |]

let spec ~dim_idx ~delta_bump ~name =
  {
    Server.Protocol.name;
    network = networks.(dim_idx);
    box =
      Domains.Box.of_center_radius
        (Vec.create (if dim_idx = 0 then 3 else 5) 0.25)
        1.25;
    target = 0;
    delta = 1e-4 +. (1e-9 *. float_of_int delta_bump);
    timeout = None;
    max_steps = None;
    seed = 1;
  }

let slow_spec i =
  {
    (spec ~dim_idx:1 ~delta_bump:0 ~name:(Printf.sprintf "pin-%d" i)) with
    Server.Protocol.network = Nn.Serial.to_string (staircase 20);
    box = Domains.Box.of_center_radius (Vec.create 20 0.25) 1.25;
    delta = 1e-4 +. (1e-7 *. float_of_int i);
  }

let jint json path =
  let rec go json = function
    | [] -> J.to_int_opt json
    | k :: rest -> Option.bind (J.member k json) (fun v -> go v rest)
  in
  match go json path with
  | Some i -> i
  | None -> Alcotest.failf "no int at %s" (String.concat "." path)

let jfloat json path =
  let rec go json = function
    | [] -> J.to_float_opt json
    | k :: rest -> Option.bind (J.member k json) (fun v -> go v rest)
  in
  match go json path with
  | Some f -> f
  | None -> Alcotest.failf "no number at %s" (String.concat "." path)

let jstr json path =
  let rec go json = function
    | [] -> J.to_string_opt json
    | k :: rest -> Option.bind (J.member k json) (fun v -> go v rest)
  in
  match go json path with
  | Some s -> s
  | None -> Alcotest.failf "no string at %s" (String.concat "." path)

(* Per-thread tallies, merged after the join. *)
type tally = {
  mutable submitted : int;
  mutable completed : int;
  mutable coalesced_seen : int;
  mutable busy : int;
  mutable quota : int;
  mutable other_rejects : int;
  mutable first_other : string;
}

let test_soak () =
  let tenants =
    Server.Tenant.of_json
      (J.parse
         {|{"tenants":[
             {"name":"t-a","key":"key-a","quota":16},
             {"name":"t-b","key":"key-b","quota":16},
             {"name":"t-c","key":"key-c","quota":16}]}|})
  in
  let handle =
    Server.Daemon.start ~tcp:("127.0.0.1", 0) ~workers:2 ~queue_capacity:4
      ~cache_capacity:64 ~tenants ()
  in
  Fun.protect
    ~finally:(fun () ->
      try Server.Daemon.stop handle
      with e ->
        Printf.eprintf "daemon stop raised: %s\n%!" (Printexc.to_string e))
    (fun () ->
      let port =
        match Server.Daemon.tcp_port handle with
        | Some p -> p
        | None -> Alcotest.fail "no TCP port"
      in
      let addr = Server.Client.Tcp ("127.0.0.1", port) in

      (* ---- Phase 1 (deterministic): backpressure and coalescing.
         Endless jobs pin both workers and fill the bounded queue;
         submits past the bound must be structured *retryable* busy
         rejects.  Submission itself may already trip the bound (the
         pool races the submitter for the first claims), so accepted
         ids and the reject are collected from one tolerant loop. *)
      let pins = ref [] in
      let saw_busy = ref false in
      let attempts = ref 0 in
      while (not !saw_busy) && !attempts < 20 do
        (match Server.Client.submit ~api_key:"key-a" ~addr (slow_spec !attempts)
         with
        | id, _ -> pins := id :: !pins
        | exception Server.Client.Rejected r ->
            Alcotest.(check string) "busy code" "busy" r.code;
            Util.check_true "busy is retryable" r.retryable;
            saw_busy := true);
        incr attempts
      done;
      Util.check_true "a full queue answered busy" !saw_busy;
      (* An identical question from another tenant while the original
         run is still in flight must coalesce, not queue a second run
         (the queue is full — an un-coalesced submit would be busy). *)
      let dup =
        fst (Server.Client.submit ~api_key:"key-b" ~addr (slow_spec 0))
      in
      let st = Server.Client.stats ~api_key:"key-b" ~addr () in
      Util.check_true "duplicate coalesced onto the in-flight run"
        (jint st [ "coalesce"; "coalesced_total" ] >= 1);
      (* Unpin: cancel the lot and wait them out. *)
      ignore (Server.Client.cancel ~api_key:"key-b" ~addr dup);
      List.iter
        (fun id ->
          ignore (Server.Client.cancel ~api_key:"key-a" ~addr id))
        !pins;
      ignore (Server.Client.wait ~api_key:"key-b" ~addr ~deadline:60.0 dup);
      List.iter
        (fun id ->
          ignore (Server.Client.wait ~api_key:"key-a" ~addr ~deadline:60.0 id))
        !pins;

      (* ---- Phase 2 (time-boxed storm): three tenant threads, equal
         weights, identical duplicate-heavy workloads.  Every round
         submits the *same fresh question twice* back-to-back — with
         both workers often busy, the second submit reliably attaches
         to the first one's run, exercising coalescing; repeats of
         *old* rounds hit the verdict cache instead. *)
      let stop_at = Unix.gettimeofday () +. soak_seconds in
      let worker tid key =
        let tally =
          {
            submitted = 0;
            completed = 0;
            coalesced_seen = 0;
            busy = 0;
            quota = 0;
            other_rejects = 0;
            first_other = "";
          }
        in
        let rng = Rng.create (Util.effective_seed (7000 + tid)) in
        let round = ref 0 in
        while Unix.gettimeofday () < stop_at do
          incr round;
          (* Fresh question ~2/3 of the time (unique bump per tenant
             and round), an old round's question otherwise (cache
             fodder). *)
          let bump =
            if Rng.int rng 3 < 2 then (tid * 1_000_000) + !round
            else (tid * 1_000_000) + 1 + Rng.int rng (max 1 !round)
          in
          let s =
            spec
              ~dim_idx:(if Rng.int rng 4 = 0 then 1 else 0)
              ~delta_bump:bump
              ~name:(Printf.sprintf "%s-r%d" key !round)
          in
          let submit_once () =
            match Server.Client.submit ~api_key:key ~addr s with
            | id, response ->
                tally.submitted <- tally.submitted + 1;
                (match J.member "events" response with
                | Some (J.Arr events) ->
                    if
                      List.exists
                        (fun e ->
                          match
                            Option.bind (J.member "label" e) J.to_string_opt
                          with
                          | Some l ->
                              String.length l >= 9
                              && String.sub l 0 9 = "coalesced"
                          | None -> false)
                        events
                    then tally.coalesced_seen <- tally.coalesced_seen + 1
                | _ -> ());
                Some id
            | exception Server.Client.Rejected r ->
                (match r.code with
                | "busy" ->
                    Util.check_true "busy reject is retryable" r.retryable;
                    tally.busy <- tally.busy + 1
                | "quota" ->
                    Util.check_true "quota reject is retryable" r.retryable;
                    tally.quota <- tally.quota + 1
                | code ->
                    if tally.first_other = "" then
                      tally.first_other <-
                        Printf.sprintf "%s: %s" code r.message;
                    tally.other_rejects <- tally.other_rejects + 1);
                Unix.sleepf 0.002;
                None
          in
          let first = submit_once () in
          let second = submit_once () in
          List.iter
            (fun id ->
              match
                Server.Client.wait ~api_key:key ~addr ~deadline:60.0 id
              with
              | final ->
                  let state = jstr final [ "state" ] in
                  if state = "done" then tally.completed <- tally.completed + 1
              | exception Server.Client.Server_error _ -> ())
            (List.filter_map Fun.id [ first; second ])
        done;
        tally
      in
      let threads =
        List.mapi
          (fun tid key -> Stdlib.Domain.spawn (fun () -> worker tid key))
          [ "key-a"; "key-b"; "key-c" ]
      in
      let tallies = List.map Stdlib.Domain.join threads in
      let total f = List.fold_left (fun acc t -> acc + f t) 0 tallies in

      (* ---- Verdicts over the storm. *)
      Util.check_true "storm did real work" (total (fun t -> t.completed) > 0);
      let first_other =
        List.fold_left
          (fun acc t -> if acc = "" then t.first_other else acc)
          "" tallies
      in
      Alcotest.(check int)
        (if first_other = "" then "no unexpected reject codes"
         else "no unexpected reject codes (first: " ^ first_other ^ ")")
        0
        (total (fun t -> t.other_rejects));
      let st = Server.Client.stats ~api_key:"key-a" ~addr () in
      Util.check_true "coalescing fired under load"
        (jint st [ "coalesce"; "coalesced_total" ] >= 1);
      Util.check_true "verdict cache fired under load"
        (jint st [ "cache"; "hits" ] >= 1);
      Alcotest.(check int)
        "nothing left in flight after the join" 0
        (jint st [ "in_flight" ]);

      (* Fair share: equal weights, identical workloads — no tenant's
         p95 queue age may dwarf another's.  The bound is deliberately
         loose (10x + 250ms slack): this is a starvation alarm, not a
         latency SLO. *)
      let p95s =
        match J.member "tenants" st with
        | Some (J.Arr ts) ->
            List.filter_map
              (fun t ->
                let name = jstr t [ "name" ] in
                if String.length name >= 2 && String.sub name 0 2 = "t-" then
                  Some (name, jfloat t [ "queue_age"; "p95_seconds" ])
                else None)
              ts
        | _ -> Alcotest.fail "stats carry no tenants array"
      in
      Alcotest.(check int) "three tenants reporting" 3 (List.length p95s);
      List.iter
        (fun (ni, pi) ->
          List.iter
            (fun (nj, pj) ->
              Util.check_true
                (Printf.sprintf
                   "fair share: %s p95 %.4fs within bounds of %s p95 %.4fs" ni
                   pi nj pj)
                (pi <= (10.0 *. pj) +. 0.25))
            p95s)
        p95s;

      (* The CI soak job publishes the per-tenant block. *)
      let stats_doc =
        J.Obj
          [
            ("soak_seconds", J.Float soak_seconds);
            ("submitted", J.Int (total (fun t -> t.submitted)));
            ("completed", J.Int (total (fun t -> t.completed)));
            ("busy_rejects", J.Int (total (fun t -> t.busy)));
            ("quota_rejects", J.Int (total (fun t -> t.quota)));
            ( "coalesced_total",
              J.Int (jint st [ "coalesce"; "coalesced_total" ]) );
            ("cache_hits", J.Int (jint st [ "cache"; "hits" ]));
            ( "tenants",
              match J.member "tenants" st with
              | Some t -> t
              | None -> J.Null );
          ]
      in
      print_endline (J.to_string ~pretty:true stats_doc);
      (match Sys.getenv_opt "CHARON_SOAK_STATS" with
      | Some path when path <> "" ->
          Out_channel.with_open_text path (fun oc ->
              output_string oc (J.to_string ~pretty:true stats_doc);
              output_char oc '\n')
      | Some _ | None -> ()));
  (* Fun.protect already stopped the daemon; a second stop must not be
     needed — the handle's loop domain is joined exactly once. *)
  ()

let () =
  Alcotest.run "soak"
    [ ( "multi-tenant storm",
        [ Util.slow_case "tcp soak: coalescing, backpressure, fairness"
            test_soak ] ) ]
