(* Tests for charon-dverify: the distributed split-and-conquer
   coordinator/worker pair (docs/serving.md, "Distributed
   split-and-conquer").

   Real processes, real pipes: the coordinator under test spawns THIS
   test binary re-executing itself with [--charon-dverify-worker] (the
   same self-exec trick `charon dverify` uses), so the full stack —
   handshake, assignment, steal, crash, reassignment — is exercised
   exactly as in production.  The workload is the staircase family from
   test_server.ml: always Verified, never refutable by PGD, and
   geometrically harder with dimension, so verdicts are deterministic.

   The worker-mode intercepts at the top MUST run before Alcotest gets
   anywhere near argv. *)

(* Re-exec mode 1: a real dverify worker on stdin/stdout. *)
let () =
  if Array.exists (String.equal "--charon-dverify-worker") Sys.argv then
    exit (Server.Worker.main ())

(* Re-exec mode 2: a worker from the future — says hello with a bogus
   protocol version, then reports via its exit code whether the
   coordinator rejected it cleanly (0) or answered nonsense (9). *)
let () =
  if Array.exists (String.equal "--charon-bad-hello") Sys.argv then begin
    let module D = Server.Protocol.Dist in
    Server.Protocol.send stdout
      (D.from_worker_to_json (D.Hello { version = 999; pid = Unix.getpid () }));
    match Server.Protocol.recv stdin with
    | Some json when D.is_rejection json -> exit 0
    | Some _ | None -> exit 9
    | exception _ -> exit 9
  end

open Linalg
module D = Server.Protocol.Dist

let eps = 0.05

(* The staircase network of test_server.ml (copied, not referenced:
   test modules run their suites at load).  Margin y_0 - y_1 >= eps
   everywhere on the box, but interval/zonotope analyses only prove it
   after splitting essentially every dimension. *)
let staircase dim =
  let w1 =
    Mat.init (2 * dim) dim (fun r c ->
        if r = c || r - dim = c then 1.0 else 0.0)
  in
  let b1 = Vec.init (2 * dim) (fun r -> if r < dim then 0.0 else -1.0) in
  let w2 =
    Mat.init 2 (2 * dim) (fun r c ->
        if r = 1 then 0.0 else if c < dim then 1.0 else -1.0)
  in
  Nn.Network.create ~input_dim:dim
    [
      Nn.Layer.affine w1 b1;
      Nn.Layer.Relu;
      Nn.Layer.affine w2 [| 0.0; -.eps |];
    ]

let staircase_box dim = Domains.Box.of_center_radius (Vec.create dim 0.25) 1.25

let staircase_spec ?(name = "staircase") ?(target = 0) ?timeout ?(seed = 1) dim
    =
  {
    Server.Protocol.name;
    network = Nn.Serial.to_string (staircase dim);
    box = staircase_box dim;
    target;
    delta = 1e-4;
    timeout;
    max_steps = None;
    seed;
  }

(* CI points this at a directory to collect worker JSONL traces as
   artifacts; locally it is unset and no traces are written. *)
let trace_dir = Sys.getenv_opt "CHARON_DVERIFY_TRACE_DIR"

let config ?(workers = 2) ?initial_splits ?initial_steps ?crash_injection () =
  let c = Server.Coordinator.default_config ~workers in
  {
    c with
    Server.Coordinator.initial_splits =
      Option.value initial_splits ~default:c.Server.Coordinator.initial_splits;
    initial_steps =
      Option.value initial_steps ~default:c.Server.Coordinator.initial_steps;
    crash_injection;
    trace_dir;
  }

let self_worker = [| Sys.executable_name; "--charon-dverify-worker" |]

let dverify ?workers ?initial_splits ?initial_steps ?crash_injection spec =
  Server.Coordinator.run ~worker_cmd:self_worker
    ~config:(config ?workers ?initial_splits ?initial_steps ?crash_injection ())
    spec

(* The single-process oracle the distributed verdict must match. *)
let oracle ?(target = 0) ?(seed = 1) dim =
  let prop =
    Common.Property.create ~name:"oracle" ~region:(staircase_box dim) ~target ()
  in
  let config =
    { Charon.Verify.default_config with Charon.Verify.delta = 1e-4 }
  in
  let r =
    Charon.Verify.run ~config
      ~budget:(Common.Budget.create ~seconds:60.0 ())
      ~rng:(Rng.create seed) ~policy:Charon.Policy.default (staircase dim) prop
  in
  r.Charon.Verify.outcome

let outcome_label = function
  | Common.Outcome.Verified -> "verified"
  | Common.Outcome.Refuted _ -> "falsified"
  | Common.Outcome.Timeout -> "timeout"
  | Common.Outcome.Unknown -> "unknown"

let check_outcome msg expected actual =
  Alcotest.(check string) msg (outcome_label expected) (outcome_label actual)

(* ------------------------------------------------------------------ *)
(* Fixture process plumbing *)

let spawn_fixture args =
  let c2w_read, c2w_write = Unix.pipe ~cloexec:false () in
  let w2c_read, w2c_write = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process Sys.executable_name
      (Array.append [| Sys.executable_name |] args)
      c2w_read w2c_write Unix.stderr
  in
  Unix.close c2w_read;
  Unix.close w2c_write;
  (pid, Unix.out_channel_of_descr c2w_write, Unix.in_channel_of_descr w2c_read)

(* Bounded wait: a protocol bug must fail the test, not wedge CI. *)
let wait_exit ?(timeout = 30.0) pid =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () -. t0 > timeout then begin
          Unix.kill pid Sys.sigkill;
          ignore (Unix.waitpid [] pid);
          Alcotest.fail "fixture process hung"
        end
        else begin
          Unix.sleepf 0.02;
          go ()
        end
    | _, status -> status
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Framing: strict recv must tell a clean EOF from a torn message *)

let recv_of_string s =
  let path = Filename.temp_file "charon-recv" ".txt" in
  Out_channel.with_open_bin path (fun oc -> output_string oc s);
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () ->
      close_in_noerr ic;
      Sys.remove path)
    (fun () ->
      let first = Server.Protocol.recv ic in
      let second =
        match Server.Protocol.recv ic with
        | None -> "eof"
        | Some _ -> "msg"
        | exception Server.Protocol.Torn_line n ->
            Printf.sprintf "torn:%d" n
      in
      (first, second))

let test_recv_framing () =
  (* A complete line followed by a clean EOF. *)
  let first, second = recv_of_string "{\"ok\": true}\n" in
  Util.check_true "first message parses" (Option.is_some first);
  Alcotest.(check string) "clean EOF" "eof" second;
  (* A complete line followed by a torn one: the peer died mid-write. *)
  let tail = "{\"op\": \"pro" in
  let first, second = recv_of_string ("{\"ok\": true}\n" ^ tail) in
  Util.check_true "first message parses" (Option.is_some first);
  Alcotest.(check string)
    "torn tail detected"
    (Printf.sprintf "torn:%d" (String.length tail))
    second

(* ------------------------------------------------------------------ *)
(* Handshake: version mismatches reject cleanly in both directions *)

let test_worker_rejects_version () =
  let pid, oc, ic = spawn_fixture [| "--charon-dverify-worker" |] in
  let finally () =
    close_out_noerr oc;
    close_in_noerr ic
  in
  Fun.protect ~finally (fun () ->
      (match Server.Protocol.recv ic with
      | Some json -> (
          match D.from_worker_of_json json with
          | D.Hello { version; _ } ->
              Alcotest.(check int) "worker speaks v1" D.version version
          | _ -> Alcotest.fail "expected hello first")
      | None -> Alcotest.fail "worker closed without hello");
      (* A coordinator from the future: same op, incompatible version. *)
      Server.Protocol.send oc
        (D.to_worker_to_json
           (D.Hello_ok
              { version = 999; job = staircase_spec 2; proofcache = None }));
      match wait_exit pid with
      | Unix.WEXITED code ->
          Alcotest.(check int) "handshake-refused exit code" 3 code
      | _ -> Alcotest.fail "worker did not exit normally")

let test_coordinator_rejects_version () =
  (* The fixture exits 0 only if it received a {"ok": false} rejection;
     the coordinator must then fail fast (whole fleet rejected), not
     hang waiting for splits to finish. *)
  let spec = staircase_spec ~timeout:30.0 4 in
  match
    Server.Coordinator.run
      ~worker_cmd:[| Sys.executable_name; "--charon-bad-hello" |]
      ~config:(config ~workers:1 ()) spec
  with
  | _ -> Alcotest.fail "expected the coordinator to refuse the fleet"
  | exception Failure msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.equal (String.sub hay i nn) needle || at (i + 1)) in
        at 0
      in
      Util.check_true "failure names the version mismatch"
        (contains msg "version mismatch")

(* ------------------------------------------------------------------ *)
(* End-to-end verdicts *)

let test_two_workers_match_oracle () =
  let dim = 6 in
  check_outcome "oracle proves the staircase" Common.Outcome.Verified
    (oracle dim);
  let r = dverify (staircase_spec ~timeout:120.0 dim) in
  check_outcome "distributed verdict" Common.Outcome.Verified
    r.Server.Coordinator.outcome;
  let s = r.Server.Coordinator.stats in
  Util.check_true "all initial splits were dealt"
    (s.Server.Coordinator.dealt >= s.Server.Coordinator.initial_splits);
  Alcotest.(check int)
    "both shards report wall time" 2
    (List.length s.Server.Coordinator.shard_walls)

let test_refuted_matches_oracle () =
  (* Target class 1 loses by at least eps everywhere: PGD refutes it in
     the first region of whichever shard gets there first, and the
     coordinator must broadcast cancel and surface the witness. *)
  let dim = 6 in
  (match oracle ~target:1 dim with
  | Common.Outcome.Refuted _ -> ()
  | o -> Alcotest.failf "oracle: expected falsified, got %s" (outcome_label o));
  let r = dverify (staircase_spec ~target:1 ~timeout:120.0 dim) in
  match r.Server.Coordinator.outcome with
  | Common.Outcome.Refuted x ->
      Util.check_true "witness lies in the input region"
        (Domains.Box.contains (staircase_box dim) x);
      let obj = Optim.Objective.create (staircase dim) ~k:1 in
      Util.check_true "witness is a delta-counterexample"
        (Optim.Objective.is_delta_counterexample obj ~delta:1e-4 x)
  | o -> Alcotest.failf "expected falsified, got %s" (outcome_label o)

let test_crash_recovery () =
  (* Worker 0 SIGKILLs itself on receiving its second split, leaving
     that split outstanding.  The verdict must still be Verified — i.e.
     the coordinator re-dealt the dead worker's split — and the death
     and reassignment must show in the stats. *)
  let dim = 6 in
  let r =
    dverify ~crash_injection:(0, 1) (staircase_spec ~timeout:120.0 dim)
  in
  check_outcome "verdict survives a SIGKILLed worker" Common.Outcome.Verified
    r.Server.Coordinator.outcome;
  let s = r.Server.Coordinator.stats in
  Util.check_true "the death was observed"
    (s.Server.Coordinator.worker_deaths >= 1);
  Util.check_true "the outstanding split was re-dealt"
    (s.Server.Coordinator.reassigned >= 1);
  Util.check_true "a replacement worker was spawned"
    (s.Server.Coordinator.respawns >= 1)

let test_steal () =
  (* One initial split and two workers: the second worker can only ever
     get work by the coordinator stealing the first one's unexplored
     frontier.  The per-split budget is effectively unlimited so the
     only yield reason available is the steal itself. *)
  let dim = 6 in
  let r =
    dverify ~initial_splits:1 ~initial_steps:10_000_000
      (staircase_spec ~timeout:120.0 dim)
  in
  let s = r.Server.Coordinator.stats in
  check_outcome "verdict with stealing" Common.Outcome.Verified
    r.Server.Coordinator.outcome;
  Alcotest.(check int) "single initial split" 1
    s.Server.Coordinator.initial_splits;
  Util.check_true "frontier entries were stolen"
    (s.Server.Coordinator.stolen >= 1)

let test_escalation () =
  (* A starvation-level initial budget forces Budget yields; the
     coordinator must escalate geometrically until the proof lands
     rather than giving up.  (Dim 6, not less: the canonical initial
     partition alone makes smaller staircases provable in one analyze
     call per shard, and nothing would ever yield.) *)
  let dim = 6 in
  let r =
    dverify ~initial_steps:40 (staircase_spec ~timeout:120.0 dim)
  in
  check_outcome "verdict under escalation" Common.Outcome.Verified
    r.Server.Coordinator.outcome;
  Util.check_true "budgets were escalated"
    (r.Server.Coordinator.stats.Server.Coordinator.escalated >= 1)

let () =
  Alcotest.run "dverify"
    [
      ( "protocol",
        [
          Alcotest.test_case "recv framing" `Quick test_recv_framing;
          Alcotest.test_case "worker rejects bad version" `Quick
            test_worker_rejects_version;
          Alcotest.test_case "coordinator rejects bad version" `Quick
            test_coordinator_rejects_version;
        ] );
      ( "verdicts",
        [
          Alcotest.test_case "two workers match the oracle" `Slow
            test_two_workers_match_oracle;
          Alcotest.test_case "refutation matches the oracle" `Slow
            test_refuted_matches_oracle;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "crash recovery" `Slow test_crash_recovery;
          Alcotest.test_case "steal" `Slow test_steal;
          Alcotest.test_case "escalation" `Slow test_escalation;
        ] );
    ]
