open Linalg

(* The parallel runtime: work queue, cancellation, domain pool, and the
   determinism contract of the parallel verifier.  The whole suite runs
   twice from dune: once with the default worker count below and once
   with CHARON_TEST_WORKERS=2 (see test/dune). *)

let workers_under_test =
  match Sys.getenv_opt "CHARON_TEST_WORKERS" with
  | Some s -> ( try max 2 (int_of_string (String.trim s)) with _ -> 4)
  | None -> 4

(* ------------------------------------------------------------------ *)
(* Wqueue *)

let test_wqueue_pop_min_first () =
  let q = Parallel.Wqueue.create () in
  Parallel.Wqueue.push q ~priority:3.0 "c";
  Parallel.Wqueue.push q ~priority:1.0 "a";
  Parallel.Wqueue.push q ~priority:2.0 "b";
  Alcotest.(check int) "size" 3 (Parallel.Wqueue.size q);
  List.iter
    (fun expected ->
      (match Parallel.Wqueue.pop q with
      | Some v -> Alcotest.(check string) "min first" expected v
      | None -> Alcotest.fail "queue drained early");
      Parallel.Wqueue.finish q)
    [ "a"; "b"; "c" ];
  Util.check_true "drained" (Parallel.Wqueue.pop q = None)

let test_wqueue_drain_tracks_outstanding () =
  let q = Parallel.Wqueue.create () in
  Parallel.Wqueue.push q ~priority:0.0 0;
  (match Parallel.Wqueue.pop q with
  | Some 0 -> ()
  | _ -> Alcotest.fail "expected the root item");
  (* The root is in flight: the queue is empty but not drained. *)
  Alcotest.(check int) "in flight" 1 (Parallel.Wqueue.outstanding q);
  Parallel.Wqueue.push q ~priority:1.0 1;
  Parallel.Wqueue.push q ~priority:2.0 2;
  Parallel.Wqueue.finish q;
  Alcotest.(check int) "children pending" 2 (Parallel.Wqueue.outstanding q);
  (match Parallel.Wqueue.pop q with
  | Some 1 -> Parallel.Wqueue.finish q
  | _ -> Alcotest.fail "expected child 1");
  (match Parallel.Wqueue.pop q with
  | Some 2 -> Parallel.Wqueue.finish q
  | _ -> Alcotest.fail "expected child 2");
  Util.check_true "fully drained" (Parallel.Wqueue.pop q = None);
  Alcotest.(check int) "nothing outstanding" 0 (Parallel.Wqueue.outstanding q)

let test_wqueue_close_cancels () =
  let q = Parallel.Wqueue.create () in
  Parallel.Wqueue.push q ~priority:0.0 0;
  Parallel.Wqueue.close q;
  Util.check_true "closed" (Parallel.Wqueue.closed q);
  Util.check_true "pop after close" (Parallel.Wqueue.pop q = None);
  Parallel.Wqueue.push q ~priority:1.0 1;
  Util.check_true "push after close is a no-op" (Parallel.Wqueue.pop q = None)

let test_wqueue_finish_overcall_raises () =
  let q : int Parallel.Wqueue.t = Parallel.Wqueue.create () in
  Alcotest.check_raises "finish without pop"
    (Invalid_argument "Wqueue.finish: more finishes than pops") (fun () ->
      Parallel.Wqueue.finish q)

let test_wqueue_blocking_handoff () =
  (* A consumer blocked on an empty-but-not-drained queue must wake up
     when a peer pushes a child. *)
  let q = Parallel.Wqueue.create () in
  Parallel.Wqueue.push q ~priority:0.0 0;
  (match Parallel.Wqueue.pop q with
  | Some 0 -> ()
  | _ -> Alcotest.fail "expected the root item");
  let consumer =
    Domain.spawn (fun () ->
        match Parallel.Wqueue.pop q with
        | Some v ->
            Parallel.Wqueue.finish q;
            Some v
        | None -> None)
  in
  Unix.sleepf 0.02;
  Parallel.Wqueue.push q ~priority:1.0 42;
  Parallel.Wqueue.finish q;
  (match Domain.join consumer with
  | Some 42 -> ()
  | _ -> Alcotest.fail "blocked consumer did not receive the pushed item");
  Util.check_true "drained" (Parallel.Wqueue.pop q = None)

(* ------------------------------------------------------------------ *)
(* Cancel *)

let test_cancel_token () =
  let c = Parallel.Cancel.create () in
  Util.check_true "fresh" (not (Parallel.Cancel.cancelled c));
  Parallel.Cancel.cancel c;
  Util.check_true "cancelled" (Parallel.Cancel.cancelled c);
  Parallel.Cancel.cancel c;
  Util.check_true "sticky" (Parallel.Cancel.cancelled c)

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_iter_covers_exactly_once () =
  let n = 200 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Parallel.Pool.iter ~workers:workers_under_test n (fun i ->
      Atomic.incr hits.(i));
  Array.iteri
    (fun i h -> Alcotest.(check int) (Printf.sprintf "index %d" i) 1 (Atomic.get h))
    hits

let test_pool_run_spawns_each_worker_once () =
  let w = workers_under_test in
  let calls = Array.init w (fun _ -> Atomic.make 0) in
  Parallel.Pool.run ~workers:w (fun i -> Atomic.incr calls.(i));
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "worker %d" i) 1 (Atomic.get c))
    calls

exception Boom

let test_pool_run_reraises () =
  Alcotest.check_raises "worker exception propagates" Boom (fun () ->
      Parallel.Pool.run ~workers:(max 2 workers_under_test) (fun i ->
          if i = 1 then raise Boom))

(* ------------------------------------------------------------------ *)
(* Parallel verification: determinism and cancellation *)

let verdict_kind = function
  | Common.Outcome.Verified -> "verified"
  | Common.Outcome.Refuted _ -> "refuted"
  | Common.Outcome.Timeout -> "timeout"
  | Common.Outcome.Unknown -> "unknown"

let outcome ?budget ~workers ~seed net property =
  (Charon.Verify.run ?budget ~workers ~rng:(Rng.create seed)
     ~policy:Charon.Policy.default net property)
    .Charon.Verify.outcome

let check_workers_agree ~name ?budget ~seed net property =
  let seq = outcome ?budget ~workers:1 ~seed net property in
  let par = outcome ?budget ~workers:workers_under_test ~seed net property in
  Alcotest.(check string)
    (name ^ ": workers agree")
    (verdict_kind seq) (verdict_kind par);
  (* Soundness of both runs: a refutation must be a real witness. *)
  (match par with
  | Common.Outcome.Refuted x ->
      Util.check_true (name ^ ": parallel witness violates")
        (not (Common.Property.holds_at net property x))
  | _ -> ());
  seq

let test_workers_agree_xor () =
  let net = Nn.Init.xor () in
  let region =
    Domains.Box.create ~lo:[| 0.3; 0.3 |] ~hi:[| 0.7; 0.7 |]
  in
  let good = Common.Property.create ~region ~target:1 () in
  let bad = Common.Property.create ~region ~target:0 () in
  Util.check_true "xor good verified"
    (check_workers_agree ~name:"xor-good" ~seed:1 net good
    = Common.Outcome.Verified);
  match check_workers_agree ~name:"xor-bad" ~seed:1 net bad with
  | Common.Outcome.Refuted _ -> ()
  | o -> Alcotest.failf "xor-bad: expected refutation, got %s" (verdict_kind o)

let test_workers_agree_acas () =
  let problems = Experiments.Training.acas_problems ~seed:5 in
  List.iteri
    (fun i (p : Charon.Learn.problem) ->
      let budget = Common.Budget.of_steps 200_000 in
      let o =
        check_workers_agree
          ~name:(Printf.sprintf "acas-%d" i)
          ~budget ~seed:(100 + i) p.Charon.Learn.net p.Charon.Learn.property
      in
      (* The budget is sized so both runs finish; a timeout here would
         make the agreement check vacuous. *)
      Util.check_true
        (Printf.sprintf "acas-%d solved" i)
        (Common.Outcome.is_solved o))
    problems

let test_workers_agree_random_problems () =
  (* Multi-node searches: random problems whose trees genuinely split,
     compared under Outcome.agrees (a timeout is consistent with
     anything — the step budget is shared, so the exhaustion point moves
     with scheduling, but Verified/Refuted may never conflict). *)
  Util.repeat ~seed:142 ~count:15 (fun rng i ->
      let net = Util.small_net rng in
      let box = Util.small_box rng net.Nn.Network.input_dim in
      let k = Rng.int rng net.Nn.Network.output_dim in
      let prop = Common.Property.create ~region:box ~target:k () in
      let budget () = Common.Budget.of_steps 20_000 in
      let seq = outcome ~budget:(budget ()) ~workers:1 ~seed:i net prop in
      let par =
        outcome ~budget:(budget ()) ~workers:workers_under_test ~seed:i net
          prop
      in
      Util.check_true
        (Printf.sprintf "random-%d agrees (%s vs %s)" i
           (Common.Outcome.label seq) (Common.Outcome.label par))
        (Common.Outcome.agrees seq par);
      match par with
      | Common.Outcome.Refuted x ->
          Util.check_true
            (Printf.sprintf "random-%d witness violates" i)
            (not (Common.Property.holds_at net prop x))
      | _ -> ())

(* The [n]-th problem of a [Util.repeat]-style seeded stream.  Splits
   are independent, so skipping the first [n - 1] without materializing
   them reproduces exactly the problem the agreement sweep above sees. *)
let nth_small_problem ~seed n =
  let rng = Rng.create seed in
  let pick = ref None in
  for i = 1 to n do
    let r = Rng.split rng in
    if i = n then
      let net = Util.small_net r in
      let box = Util.small_box r net.Nn.Network.input_dim in
      let k = Rng.int r net.Nn.Network.output_dim in
      pick := Some (net, Common.Property.create ~region:box ~target:k ())
  done;
  Option.get !pick

let test_parallel_timeout_terminates () =
  (* A starved shared budget must cancel the parallel drain and return
     Timeout rather than hang or crash.  The chosen problem is verified
     with a 7-node tree under a generous budget (so no refutation can
     race the budget check), and its root is inconclusive (so one step
     of budget cannot be enough). *)
  let net, prop = nth_small_problem ~seed:142 37 in
  let budget = Common.Budget.of_steps 1 in
  match outcome ~budget ~workers:workers_under_test ~seed:37 net prop with
  | Common.Outcome.Timeout -> ()
  | o -> Alcotest.failf "expected timeout, got %s" (verdict_kind o)

let test_workers_validated () =
  let net = Nn.Init.xor () in
  let region = Domains.Box.create ~lo:[| 0.4; 0.4 |] ~hi:[| 0.6; 0.6 |] in
  let prop = Common.Property.create ~region ~target:1 () in
  Alcotest.check_raises "workers must be >= 1"
    (Invalid_argument "Verify.run: workers must be at least 1") (fun () ->
      ignore (outcome ~workers:0 ~seed:1 net prop))

(* ------------------------------------------------------------------ *)
(* Parallel suite runner *)

let tiny_workload () =
  let net = Nn.Init.xor () in
  let entry =
    {
      Datasets.Suite.name = "xor";
      description = "xor test network";
      net;
      image_spec = Datasets.Synth_images.tiny;
      convolutional = false;
      test_accuracy = 1.0;
    }
  in
  let region = Domains.Box.create ~lo:[| 0.3; 0.3 |] ~hi:[| 0.7; 0.7 |] in
  let props =
    [
      Common.Property.create ~name:"holds" ~region ~target:1 ();
      Common.Property.create ~name:"fails" ~region ~target:0 ();
    ]
  in
  [ (entry, props) ]

let test_run_suite_jobs_preserves_order () =
  let tools =
    [ Experiments.Tool.charon (); Experiments.Tool.ai2 Domains.Domain.interval ]
  in
  let run jobs =
    Experiments.Runner.run_suite ~jobs ~seed:1 ~timeout:10.0 tools
      (tiny_workload ())
  in
  let seq = run 1 in
  let par = run workers_under_test in
  Alcotest.(check int) "same length" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Experiments.Runner.result) (b : Experiments.Runner.result) ->
      Alcotest.(check string) "tool order" a.tool b.tool;
      Alcotest.(check string) "network order" a.network b.network;
      Alcotest.(check string) "property order" a.property b.property;
      Alcotest.(check string) "same verdict" (verdict_kind a.outcome)
        (verdict_kind b.outcome))
    seq par

let () =
  Alcotest.run "parallel"
    [
      Util.suite "wqueue"
        [
          Util.case "pop min first" test_wqueue_pop_min_first;
          Util.case "drain tracks outstanding" test_wqueue_drain_tracks_outstanding;
          Util.case "close cancels" test_wqueue_close_cancels;
          Util.case "finish overcall raises" test_wqueue_finish_overcall_raises;
          Util.case "blocking handoff" test_wqueue_blocking_handoff;
        ];
      Util.suite "cancel" [ Util.case "token" test_cancel_token ];
      Util.suite "pool"
        [
          Util.case "iter covers exactly once" test_pool_iter_covers_exactly_once;
          Util.case "run spawns each worker once"
            test_pool_run_spawns_each_worker_once;
          Util.case "run re-raises" test_pool_run_reraises;
        ];
      Util.suite "verify-parallel"
        [
          Util.case "workers agree on xor" test_workers_agree_xor;
          Util.slow_case "workers agree on acas" test_workers_agree_acas;
          Util.slow_case "workers agree on random problems"
            test_workers_agree_random_problems;
          Util.case "starved budget times out" test_parallel_timeout_terminates;
          Util.case "workers validated" test_workers_validated;
        ];
      Util.suite "runner-parallel"
        [ Util.case "jobs preserve order" test_run_suite_jobs_preserves_order ];
    ]
